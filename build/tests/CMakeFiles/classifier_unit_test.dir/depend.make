# Empty dependencies file for classifier_unit_test.
# This may be replaced when dependencies are built.
