file(REMOVE_RECURSE
  "CMakeFiles/classifier_unit_test.dir/classifier_unit_test.cpp.o"
  "CMakeFiles/classifier_unit_test.dir/classifier_unit_test.cpp.o.d"
  "classifier_unit_test"
  "classifier_unit_test.pdb"
  "classifier_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classifier_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
