file(REMOVE_RECURSE
  "CMakeFiles/dataflow_prop_test.dir/dataflow_prop_test.cpp.o"
  "CMakeFiles/dataflow_prop_test.dir/dataflow_prop_test.cpp.o.d"
  "dataflow_prop_test"
  "dataflow_prop_test.pdb"
  "dataflow_prop_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataflow_prop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
