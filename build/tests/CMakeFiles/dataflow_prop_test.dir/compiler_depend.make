# Empty compiler generated dependencies file for dataflow_prop_test.
# This may be replaced when dependencies are built.
