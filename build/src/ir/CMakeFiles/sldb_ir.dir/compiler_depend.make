# Empty compiler generated dependencies file for sldb_ir.
# This may be replaced when dependencies are built.
