file(REMOVE_RECURSE
  "CMakeFiles/sldb_ir.dir/IR.cpp.o"
  "CMakeFiles/sldb_ir.dir/IR.cpp.o.d"
  "CMakeFiles/sldb_ir.dir/IRGen.cpp.o"
  "CMakeFiles/sldb_ir.dir/IRGen.cpp.o.d"
  "CMakeFiles/sldb_ir.dir/IRPrinter.cpp.o"
  "CMakeFiles/sldb_ir.dir/IRPrinter.cpp.o.d"
  "CMakeFiles/sldb_ir.dir/Interp.cpp.o"
  "CMakeFiles/sldb_ir.dir/Interp.cpp.o.d"
  "CMakeFiles/sldb_ir.dir/Verifier.cpp.o"
  "CMakeFiles/sldb_ir.dir/Verifier.cpp.o.d"
  "libsldb_ir.a"
  "libsldb_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sldb_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
