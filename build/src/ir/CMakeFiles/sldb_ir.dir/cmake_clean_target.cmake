file(REMOVE_RECURSE
  "libsldb_ir.a"
)
