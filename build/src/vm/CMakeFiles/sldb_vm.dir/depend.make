# Empty dependencies file for sldb_vm.
# This may be replaced when dependencies are built.
