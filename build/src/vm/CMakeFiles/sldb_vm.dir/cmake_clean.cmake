file(REMOVE_RECURSE
  "CMakeFiles/sldb_vm.dir/Machine.cpp.o"
  "CMakeFiles/sldb_vm.dir/Machine.cpp.o.d"
  "libsldb_vm.a"
  "libsldb_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sldb_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
