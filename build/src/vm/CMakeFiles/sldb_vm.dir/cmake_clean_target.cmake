file(REMOVE_RECURSE
  "libsldb_vm.a"
)
