file(REMOVE_RECURSE
  "CMakeFiles/sldb_opt.dir/BranchOpt.cpp.o"
  "CMakeFiles/sldb_opt.dir/BranchOpt.cpp.o.d"
  "CMakeFiles/sldb_opt.dir/DeadCodeElimination.cpp.o"
  "CMakeFiles/sldb_opt.dir/DeadCodeElimination.cpp.o.d"
  "CMakeFiles/sldb_opt.dir/GlobalCSE.cpp.o"
  "CMakeFiles/sldb_opt.dir/GlobalCSE.cpp.o.d"
  "CMakeFiles/sldb_opt.dir/InductionVariableOpt.cpp.o"
  "CMakeFiles/sldb_opt.dir/InductionVariableOpt.cpp.o.d"
  "CMakeFiles/sldb_opt.dir/LocalSimplify.cpp.o"
  "CMakeFiles/sldb_opt.dir/LocalSimplify.cpp.o.d"
  "CMakeFiles/sldb_opt.dir/LoopOpts.cpp.o"
  "CMakeFiles/sldb_opt.dir/LoopOpts.cpp.o.d"
  "CMakeFiles/sldb_opt.dir/PartialDeadCodeElim.cpp.o"
  "CMakeFiles/sldb_opt.dir/PartialDeadCodeElim.cpp.o.d"
  "CMakeFiles/sldb_opt.dir/PartialRedundancyElim.cpp.o"
  "CMakeFiles/sldb_opt.dir/PartialRedundancyElim.cpp.o.d"
  "CMakeFiles/sldb_opt.dir/Pipeline.cpp.o"
  "CMakeFiles/sldb_opt.dir/Pipeline.cpp.o.d"
  "CMakeFiles/sldb_opt.dir/Propagation.cpp.o"
  "CMakeFiles/sldb_opt.dir/Propagation.cpp.o.d"
  "libsldb_opt.a"
  "libsldb_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sldb_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
