file(REMOVE_RECURSE
  "libsldb_opt.a"
)
