
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/BranchOpt.cpp" "src/opt/CMakeFiles/sldb_opt.dir/BranchOpt.cpp.o" "gcc" "src/opt/CMakeFiles/sldb_opt.dir/BranchOpt.cpp.o.d"
  "/root/repo/src/opt/DeadCodeElimination.cpp" "src/opt/CMakeFiles/sldb_opt.dir/DeadCodeElimination.cpp.o" "gcc" "src/opt/CMakeFiles/sldb_opt.dir/DeadCodeElimination.cpp.o.d"
  "/root/repo/src/opt/GlobalCSE.cpp" "src/opt/CMakeFiles/sldb_opt.dir/GlobalCSE.cpp.o" "gcc" "src/opt/CMakeFiles/sldb_opt.dir/GlobalCSE.cpp.o.d"
  "/root/repo/src/opt/InductionVariableOpt.cpp" "src/opt/CMakeFiles/sldb_opt.dir/InductionVariableOpt.cpp.o" "gcc" "src/opt/CMakeFiles/sldb_opt.dir/InductionVariableOpt.cpp.o.d"
  "/root/repo/src/opt/LocalSimplify.cpp" "src/opt/CMakeFiles/sldb_opt.dir/LocalSimplify.cpp.o" "gcc" "src/opt/CMakeFiles/sldb_opt.dir/LocalSimplify.cpp.o.d"
  "/root/repo/src/opt/LoopOpts.cpp" "src/opt/CMakeFiles/sldb_opt.dir/LoopOpts.cpp.o" "gcc" "src/opt/CMakeFiles/sldb_opt.dir/LoopOpts.cpp.o.d"
  "/root/repo/src/opt/PartialDeadCodeElim.cpp" "src/opt/CMakeFiles/sldb_opt.dir/PartialDeadCodeElim.cpp.o" "gcc" "src/opt/CMakeFiles/sldb_opt.dir/PartialDeadCodeElim.cpp.o.d"
  "/root/repo/src/opt/PartialRedundancyElim.cpp" "src/opt/CMakeFiles/sldb_opt.dir/PartialRedundancyElim.cpp.o" "gcc" "src/opt/CMakeFiles/sldb_opt.dir/PartialRedundancyElim.cpp.o.d"
  "/root/repo/src/opt/Pipeline.cpp" "src/opt/CMakeFiles/sldb_opt.dir/Pipeline.cpp.o" "gcc" "src/opt/CMakeFiles/sldb_opt.dir/Pipeline.cpp.o.d"
  "/root/repo/src/opt/Propagation.cpp" "src/opt/CMakeFiles/sldb_opt.dir/Propagation.cpp.o" "gcc" "src/opt/CMakeFiles/sldb_opt.dir/Propagation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/sldb_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/sldb_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/sldb_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sldb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
