# Empty compiler generated dependencies file for sldb_opt.
# This may be replaced when dependencies are built.
