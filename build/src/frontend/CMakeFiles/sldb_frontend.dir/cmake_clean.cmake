file(REMOVE_RECURSE
  "CMakeFiles/sldb_frontend.dir/Lexer.cpp.o"
  "CMakeFiles/sldb_frontend.dir/Lexer.cpp.o.d"
  "CMakeFiles/sldb_frontend.dir/Parser.cpp.o"
  "CMakeFiles/sldb_frontend.dir/Parser.cpp.o.d"
  "CMakeFiles/sldb_frontend.dir/Sema.cpp.o"
  "CMakeFiles/sldb_frontend.dir/Sema.cpp.o.d"
  "libsldb_frontend.a"
  "libsldb_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sldb_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
