file(REMOVE_RECURSE
  "libsldb_frontend.a"
)
