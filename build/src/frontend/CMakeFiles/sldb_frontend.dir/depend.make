# Empty dependencies file for sldb_frontend.
# This may be replaced when dependencies are built.
