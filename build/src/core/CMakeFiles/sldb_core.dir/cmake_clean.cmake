file(REMOVE_RECURSE
  "CMakeFiles/sldb_core.dir/Classifier.cpp.o"
  "CMakeFiles/sldb_core.dir/Classifier.cpp.o.d"
  "CMakeFiles/sldb_core.dir/Debugger.cpp.o"
  "CMakeFiles/sldb_core.dir/Debugger.cpp.o.d"
  "libsldb_core.a"
  "libsldb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sldb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
