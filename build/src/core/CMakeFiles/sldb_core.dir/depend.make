# Empty dependencies file for sldb_core.
# This may be replaced when dependencies are built.
