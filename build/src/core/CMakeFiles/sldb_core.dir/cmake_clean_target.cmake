file(REMOVE_RECURSE
  "libsldb_core.a"
)
