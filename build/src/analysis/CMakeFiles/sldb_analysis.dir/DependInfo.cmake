
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/CFGContext.cpp" "src/analysis/CMakeFiles/sldb_analysis.dir/CFGContext.cpp.o" "gcc" "src/analysis/CMakeFiles/sldb_analysis.dir/CFGContext.cpp.o.d"
  "/root/repo/src/analysis/Dataflow.cpp" "src/analysis/CMakeFiles/sldb_analysis.dir/Dataflow.cpp.o" "gcc" "src/analysis/CMakeFiles/sldb_analysis.dir/Dataflow.cpp.o.d"
  "/root/repo/src/analysis/Dominators.cpp" "src/analysis/CMakeFiles/sldb_analysis.dir/Dominators.cpp.o" "gcc" "src/analysis/CMakeFiles/sldb_analysis.dir/Dominators.cpp.o.d"
  "/root/repo/src/analysis/InstrInfo.cpp" "src/analysis/CMakeFiles/sldb_analysis.dir/InstrInfo.cpp.o" "gcc" "src/analysis/CMakeFiles/sldb_analysis.dir/InstrInfo.cpp.o.d"
  "/root/repo/src/analysis/Liveness.cpp" "src/analysis/CMakeFiles/sldb_analysis.dir/Liveness.cpp.o" "gcc" "src/analysis/CMakeFiles/sldb_analysis.dir/Liveness.cpp.o.d"
  "/root/repo/src/analysis/LoopInfo.cpp" "src/analysis/CMakeFiles/sldb_analysis.dir/LoopInfo.cpp.o" "gcc" "src/analysis/CMakeFiles/sldb_analysis.dir/LoopInfo.cpp.o.d"
  "/root/repo/src/analysis/ReachingDefs.cpp" "src/analysis/CMakeFiles/sldb_analysis.dir/ReachingDefs.cpp.o" "gcc" "src/analysis/CMakeFiles/sldb_analysis.dir/ReachingDefs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/sldb_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/sldb_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sldb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
