file(REMOVE_RECURSE
  "CMakeFiles/sldb_analysis.dir/CFGContext.cpp.o"
  "CMakeFiles/sldb_analysis.dir/CFGContext.cpp.o.d"
  "CMakeFiles/sldb_analysis.dir/Dataflow.cpp.o"
  "CMakeFiles/sldb_analysis.dir/Dataflow.cpp.o.d"
  "CMakeFiles/sldb_analysis.dir/Dominators.cpp.o"
  "CMakeFiles/sldb_analysis.dir/Dominators.cpp.o.d"
  "CMakeFiles/sldb_analysis.dir/InstrInfo.cpp.o"
  "CMakeFiles/sldb_analysis.dir/InstrInfo.cpp.o.d"
  "CMakeFiles/sldb_analysis.dir/Liveness.cpp.o"
  "CMakeFiles/sldb_analysis.dir/Liveness.cpp.o.d"
  "CMakeFiles/sldb_analysis.dir/LoopInfo.cpp.o"
  "CMakeFiles/sldb_analysis.dir/LoopInfo.cpp.o.d"
  "CMakeFiles/sldb_analysis.dir/ReachingDefs.cpp.o"
  "CMakeFiles/sldb_analysis.dir/ReachingDefs.cpp.o.d"
  "libsldb_analysis.a"
  "libsldb_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sldb_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
