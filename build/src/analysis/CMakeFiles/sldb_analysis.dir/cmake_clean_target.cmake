file(REMOVE_RECURSE
  "libsldb_analysis.a"
)
