# Empty compiler generated dependencies file for sldb_analysis.
# This may be replaced when dependencies are built.
