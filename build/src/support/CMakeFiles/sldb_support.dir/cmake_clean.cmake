file(REMOVE_RECURSE
  "CMakeFiles/sldb_support.dir/BitVector.cpp.o"
  "CMakeFiles/sldb_support.dir/BitVector.cpp.o.d"
  "CMakeFiles/sldb_support.dir/Casting.cpp.o"
  "CMakeFiles/sldb_support.dir/Casting.cpp.o.d"
  "CMakeFiles/sldb_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/sldb_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/sldb_support.dir/StringInterner.cpp.o"
  "CMakeFiles/sldb_support.dir/StringInterner.cpp.o.d"
  "libsldb_support.a"
  "libsldb_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sldb_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
