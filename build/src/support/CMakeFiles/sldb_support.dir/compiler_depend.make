# Empty compiler generated dependencies file for sldb_support.
# This may be replaced when dependencies are built.
