file(REMOVE_RECURSE
  "libsldb_support.a"
)
