# Empty compiler generated dependencies file for sldb_eval.
# This may be replaced when dependencies are built.
