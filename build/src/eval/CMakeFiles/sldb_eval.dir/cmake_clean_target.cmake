file(REMOVE_RECURSE
  "libsldb_eval.a"
)
