file(REMOVE_RECURSE
  "CMakeFiles/sldb_eval.dir/Measure.cpp.o"
  "CMakeFiles/sldb_eval.dir/Measure.cpp.o.d"
  "CMakeFiles/sldb_eval.dir/Programs.cpp.o"
  "CMakeFiles/sldb_eval.dir/Programs.cpp.o.d"
  "libsldb_eval.a"
  "libsldb_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sldb_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
