file(REMOVE_RECURSE
  "CMakeFiles/sldb_codegen.dir/ISel.cpp.o"
  "CMakeFiles/sldb_codegen.dir/ISel.cpp.o.d"
  "CMakeFiles/sldb_codegen.dir/MachineIR.cpp.o"
  "CMakeFiles/sldb_codegen.dir/MachineIR.cpp.o.d"
  "CMakeFiles/sldb_codegen.dir/MachineVerifier.cpp.o"
  "CMakeFiles/sldb_codegen.dir/MachineVerifier.cpp.o.d"
  "CMakeFiles/sldb_codegen.dir/RegAlloc.cpp.o"
  "CMakeFiles/sldb_codegen.dir/RegAlloc.cpp.o.d"
  "CMakeFiles/sldb_codegen.dir/Scheduler.cpp.o"
  "CMakeFiles/sldb_codegen.dir/Scheduler.cpp.o.d"
  "libsldb_codegen.a"
  "libsldb_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sldb_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
