file(REMOVE_RECURSE
  "libsldb_codegen.a"
)
