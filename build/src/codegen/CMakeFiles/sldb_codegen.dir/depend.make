# Empty dependencies file for sldb_codegen.
# This may be replaced when dependencies are built.
