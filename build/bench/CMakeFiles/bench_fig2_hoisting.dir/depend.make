# Empty dependencies file for bench_fig2_hoisting.
# This may be replaced when dependencies are built.
