# Empty dependencies file for bench_fig5a_noregalloc.
# This may be replaced when dependencies are built.
