file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5a_noregalloc.dir/bench_fig5a_noregalloc.cpp.o"
  "CMakeFiles/bench_fig5a_noregalloc.dir/bench_fig5a_noregalloc.cpp.o.d"
  "bench_fig5a_noregalloc"
  "bench_fig5a_noregalloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5a_noregalloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
