file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_recovery.dir/bench_fig4_recovery.cpp.o"
  "CMakeFiles/bench_fig4_recovery.dir/bench_fig4_recovery.cpp.o.d"
  "bench_fig4_recovery"
  "bench_fig4_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
