# Empty dependencies file for bench_fig3_sinking.
# This may be replaced when dependencies are built.
