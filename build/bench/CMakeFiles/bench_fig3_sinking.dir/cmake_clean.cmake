file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_sinking.dir/bench_fig3_sinking.cpp.o"
  "CMakeFiles/bench_fig3_sinking.dir/bench_fig3_sinking.cpp.o.d"
  "bench_fig3_sinking"
  "bench_fig3_sinking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_sinking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
