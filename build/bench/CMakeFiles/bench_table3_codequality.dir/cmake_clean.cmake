file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_codequality.dir/bench_table3_codequality.cpp.o"
  "CMakeFiles/bench_table3_codequality.dir/bench_table3_codequality.cpp.o.d"
  "bench_table3_codequality"
  "bench_table3_codequality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_codequality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
