# Empty dependencies file for bench_table3_codequality.
# This may be replaced when dependencies are built.
