# Empty compiler generated dependencies file for bench_fig5b_regalloc.
# This may be replaced when dependencies are built.
