file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5b_regalloc.dir/bench_fig5b_regalloc.cpp.o"
  "CMakeFiles/bench_fig5b_regalloc.dir/bench_fig5b_regalloc.cpp.o.d"
  "bench_fig5b_regalloc"
  "bench_fig5b_regalloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5b_regalloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
