file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_suspect.dir/bench_table4_suspect.cpp.o"
  "CMakeFiles/bench_table4_suspect.dir/bench_table4_suspect.cpp.o.d"
  "bench_table4_suspect"
  "bench_table4_suspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_suspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
