# Empty dependencies file for bench_table4_suspect.
# This may be replaced when dependencies are built.
