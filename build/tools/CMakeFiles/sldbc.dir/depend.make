# Empty dependencies file for sldbc.
# This may be replaced when dependencies are built.
