file(REMOVE_RECURSE
  "CMakeFiles/sldbc.dir/sldbc.cpp.o"
  "CMakeFiles/sldbc.dir/sldbc.cpp.o.d"
  "sldbc"
  "sldbc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sldbc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
