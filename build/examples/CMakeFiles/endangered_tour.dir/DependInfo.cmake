
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/endangered_tour.cpp" "examples/CMakeFiles/endangered_tour.dir/endangered_tour.cpp.o" "gcc" "examples/CMakeFiles/endangered_tour.dir/endangered_tour.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/sldb_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sldb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/sldb_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/sldb_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/sldb_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/sldb_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/sldb_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/sldb_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sldb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
