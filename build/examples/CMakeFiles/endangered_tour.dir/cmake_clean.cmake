file(REMOVE_RECURSE
  "CMakeFiles/endangered_tour.dir/endangered_tour.cpp.o"
  "CMakeFiles/endangered_tour.dir/endangered_tour.cpp.o.d"
  "endangered_tour"
  "endangered_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/endangered_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
