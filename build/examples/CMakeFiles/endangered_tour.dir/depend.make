# Empty dependencies file for endangered_tour.
# This may be replaced when dependencies are built.
