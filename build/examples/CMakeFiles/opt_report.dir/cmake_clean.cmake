file(REMOVE_RECURSE
  "CMakeFiles/opt_report.dir/opt_report.cpp.o"
  "CMakeFiles/opt_report.dir/opt_report.cpp.o.d"
  "opt_report"
  "opt_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opt_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
