# Empty compiler generated dependencies file for opt_report.
# This may be replaced when dependencies are built.
