//===- bench/bench_ablation_opts.cpp - Design-choice ablations -*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
// Ablations behind the paper's two design arguments (§4, Conclusions):
//
//  1. Per-optimization contribution to endangerment: which transformation
//     actually endangers variables?  The paper found code hoisting
//     contributes almost nothing — endangerment comes from elimination
//     and sinking of assignments — so "a combination of residence
//     detection and the simple dead-reach analysis is good enough for
//     most practical situations".
//
//  2. Value recovery (§2.5): how much endangerment does recovery absorb?
//     With recovery off, recovered variables fall back to noncurrent,
//     restoring the noncurrent-majority shape of the paper's Table 4.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "eval/Measure.h"

using namespace sldb;

namespace {

struct Config {
  const char *Name;
  OptOptions Opts;
  bool Recovery;
};

std::vector<Config> configs() {
  OptOptions DceOnly = OptOptions::none();
  DceOnly.ConstProp = DceOnly.CopyProp = true; // Feed the eliminators.
  DceOnly.DCE = true;
  DceOnly.BranchOpt = true;

  OptOptions PdeOnly = DceOnly;
  PdeOnly.PDE = true;

  OptOptions PreOnly = OptOptions::none();
  PreOnly.ConstProp = PreOnly.CopyProp = true;
  PreOnly.PRE = true;
  PreOnly.BranchOpt = true;

  return {
      {"none (baseline)", OptOptions::none(), true},
      {"hoisting only (PRE)", PreOnly, true},
      {"elimination only (DCE)", DceOnly, true},
      {"elimination + sinking (DCE+PDE)", PdeOnly, true},
      {"full pipeline", OptOptions::all(), true},
      {"full pipeline, recovery OFF", OptOptions::all(), false},
  };
}

} // namespace

static void printAblation() {
  std::printf("Ablation: which optimizations endanger variables, and what "
              "recovery absorbs\n(averages per breakpoint across the 8 "
              "programs; no register allocation)\n");
  bench::rule('-', 78);
  std::printf("%-32s %10s %9s %9s %9s\n", "Configuration", "Noncurrent",
              "Suspect", "Recovered", "Endgr+Rec");
  bench::rule('-', 78);
  for (const Config &C : configs()) {
    double Noncur = 0, Susp = 0, Rec = 0;
    for (const BenchProgram &P : benchmarkPrograms()) {
      ClassAverages A = measureClassification(P, C.Opts,
                                              /*Promote=*/false,
                                              C.Recovery);
      Noncur += A.Noncurrent;
      Susp += A.Suspect;
      Rec += A.Recovered;
    }
    Noncur /= 8;
    Susp /= 8;
    Rec /= 8;
    std::printf("%-32s %10.3f %9.3f %9.3f %9.3f\n", C.Name, Noncur, Susp,
                Rec, Noncur + Susp + Rec);
  }
  bench::rule('-', 78);
  std::printf(
      "(Paper: hoisting 'did not affect source-level debugging for these\n"
      "programs'; endangerment comes from elimination and sinking.  With\n"
      "recovery off, the noncurrent majority of Table 4 reappears.)\n\n");
}

static void BM_AblationSweep(benchmark::State &State) {
  auto Cs = configs();
  const Config &C = Cs[static_cast<std::size_t>(State.range(0))];
  for (auto _ : State) {
    ClassAverages A = measureClassification(
        benchmarkPrograms()[0], C.Opts, /*Promote=*/false, C.Recovery);
    benchmark::DoNotOptimize(A.Noncurrent);
  }
  State.SetLabel(C.Name);
}
BENCHMARK(BM_AblationSweep)->DenseRange(0, 5);

SLDB_BENCH_MAIN(printAblation)
