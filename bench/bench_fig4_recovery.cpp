//===- bench/bench_fig4_recovery.cpp - Paper Figure 4 ----------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
// Regenerates Figure 4: the recovery chain.  Copy propagation strips the
// uses off `x = y + z`, CSE shares the computation through a temporary,
// dead-code elimination deletes the assignment and records the temporary
// as x's recovery value — the debugger then reconstructs x's expected
// value from the temporary's register ("these two variables are
// aliased", paper §2.5).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "core/Debugger.h"

using namespace sldb;

namespace {

const char *Fig4 = R"(
  int main() {
    int y = 11; int z = 31;
    int x = y + z;        // S1: propagated + CSE'd + eliminated
    int a = x * 2;        // S2 (uses rewritten to the shared temp)
    int b = x + 5;        // S3
    print(a);             // s5
    print(b);
    return 0;
  }
)";

} // namespace

static void printFigure4() {
  std::printf("Figure 4: Recovery of an eliminated variable from a CSE "
              "temporary\n");
  bench::rule();
  auto M = bench::compile(Fig4);
  runPipeline(*M, OptOptions::all());
  MachineModule MM = compileToMachine(*M, CodegenOptions());
  Debugger Dbg(MM);
  FuncId Main = MM.Info->findFunc("main");
  bool Set = Dbg.setBreakpointAtStmt(Main, 5); // print(a).
  if (Set && Dbg.run() == StopReason::Breakpoint) {
    auto X = Dbg.queryVariable("x");
    if (X) {
      std::printf("at print(a): x classified %s%s\n",
                  varClassName(X->Class.Kind),
                  X->Class.Recoverable ? " (recovered from temporary)"
                                       : "");
      if (X->HasValue)
        std::printf("displayed value of x = %lld (expected 42)\n",
                    static_cast<long long>(X->IntValue));
      if (!X->Warning.empty())
        std::printf("warning: %s\n", X->Warning.c_str());
    }
  }
  bench::rule();
  std::printf("(Paper: after copy propagation, DCE and CSE, x is aliased "
              "to tmp; the debugger displays tmp's value for x.)\n\n");
}

static void BM_RecoveryPipeline(benchmark::State &State) {
  for (auto _ : State) {
    auto M = bench::compile(Fig4);
    runPipeline(*M, OptOptions::all());
    MachineModule MM = compileToMachine(*M, CodegenOptions());
    benchmark::DoNotOptimize(MM.Funcs.size());
  }
}
BENCHMARK(BM_RecoveryPipeline);

static void BM_DebuggerQuery(benchmark::State &State) {
  auto M = bench::compile(Fig4);
  runPipeline(*M, OptOptions::all());
  MachineModule MM = compileToMachine(*M, CodegenOptions());
  Debugger Dbg(MM);
  Dbg.setBreakpointAtStmt(MM.Info->findFunc("main"), 5);
  Dbg.run();
  for (auto _ : State) {
    auto X = Dbg.queryVariable("x");
    benchmark::DoNotOptimize(X.has_value());
  }
}
BENCHMARK(BM_DebuggerQuery);

SLDB_BENCH_MAIN(printFigure4)
