//===- bench/bench_fig5a_noregalloc.cpp - Paper Figure 5(a) ----*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
// Regenerates Figure 5(a): average number of local variables at a
// breakpoint per class, compiled with global optimizations only (no
// register allocation of user variables).  Expected shape (paper §4):
// nonresident is impossible, roughly 10-30% of in-scope locals are
// endangered, and most endangered variables are noncurrent.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "eval/Measure.h"

using namespace sldb;

static void printFigure5a() {
  std::printf("Figure 5(a): Average number of local variables at a "
              "breakpoint\n            (global optimizations only)\n");
  bench::rule();
  std::printf("%-10s %8s %8s %9s %11s %8s %12s %7s\n", "Program",
              "Uninit", "Current", "Recovered", "Endangered", "Nonres",
              "(Noncur/Susp)", "%Endgr");
  bench::rule('-', 84);
  for (const BenchProgram &P : benchmarkPrograms()) {
    ClassAverages A =
        measureClassification(P, OptOptions::all(), /*Promote=*/false);
    double Total = A.Uninitialized + A.Current + A.endangered() +
                   A.Nonresident;
    std::printf(
        "%-10s %8.2f %8.2f %9.2f %11.2f %8.2f  %5.2f/%-5.2f %6.1f%%\n",
        P.Name, A.Uninitialized, A.Current, A.Recovered, A.endangered(),
        A.Nonresident, A.Noncurrent, A.Suspect,
        Total > 0 ? 100.0 * (A.endangered() + A.Recovered) / Total : 0.0);
  }
  bench::rule('-', 84);
  std::printf(
      "%%Endgr counts endangered + recovered: 'Recovered' variables were\n"
      "endangered by dead-code elimination but the debugger reconstructs\n"
      "their expected value (paper 2.5), so they display as current.\n"
      "(Paper: ~10-30%% endangered per breakpoint; cmcc's recovery was\n"
      "narrower, so more of its endangered variables stayed visible.)\n\n");
}

static void BM_ClassifySweepNoRegalloc(benchmark::State &State) {
  const BenchProgram &P =
      benchmarkPrograms()[static_cast<std::size_t>(State.range(0))];
  for (auto _ : State) {
    ClassAverages A =
        measureClassification(P, OptOptions::all(), /*Promote=*/false);
    benchmark::DoNotOptimize(A.Current);
  }
  State.SetLabel(P.Name);
}
BENCHMARK(BM_ClassifySweepNoRegalloc)->DenseRange(0, 7);

SLDB_BENCH_MAIN(printFigure5a)
