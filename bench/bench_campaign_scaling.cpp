//===- bench/bench_campaign_scaling.cpp ------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Strong-scaling curve of the parallel campaign runner, emitted as one
/// machine-readable line:
///
///   BENCH {"bench":"campaign_scaling","cores":...,"jobs":[...],...}
///
/// The same fixed-seed campaign runs at --jobs 1/2/4/8; for each point
/// the minimum wall time over repetitions is reported together with the
/// speedup over the serial run and the report digest hash — a scaling
/// win that changes the report is a determinism regression, not a win.
/// The acceptance target (>= 3x at --jobs 8) only applies on a machine
/// with 8 hardware threads; "cores" is in the output so single-core CI
/// readings are not misread as a scaling failure.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Campaign.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>

using namespace sldb;

namespace {

using Clock = std::chrono::steady_clock;

CampaignConfig campaign(unsigned Jobs) {
  CampaignConfig C;
  C.Seed = 7;
  C.Count = 40;
  C.Shrink = false;
  C.WriteFailures = false;
  C.Jobs = Jobs;
  return C;
}

/// FNV-1a over the deterministic report fields; equal hashes across job
/// counts certify the aggregation stayed deterministic during timing.
std::uint64_t digestHash(const CampaignResult &R) {
  std::ostringstream D;
  D << R.Programs << ' ' << R.Runs << ' ' << R.FailedCompiles << ' '
    << R.Stops << ' ' << R.Observations << ' ' << R.Failures.size();
  for (const PassFiring &F : R.Coverage.Firings)
    D << ' ' << F.Name << ':' << F.Changed;
  std::uint64_t H = 1469598103934665603ull;
  for (char C : D.str()) {
    H ^= static_cast<unsigned char>(C);
    H *= 1099511628211ull;
  }
  return H;
}

} // namespace

int main() {
  const unsigned JobCounts[] = {1, 2, 4, 8};
  double Ms[4];
  std::uint64_t Hash[4];

  for (int J = 0; J < 4; ++J) {
    Ms[J] = 1e300;
    for (int Rep = 0; Rep < 3; ++Rep) {
      auto T0 = Clock::now();
      CampaignResult R = runCampaign(campaign(JobCounts[J]));
      Ms[J] = std::min(
          Ms[J], std::chrono::duration<double, std::milli>(Clock::now() - T0)
                     .count());
      Hash[J] = digestHash(R);
    }
  }

  bool Deterministic = Hash[1] == Hash[0] && Hash[2] == Hash[0] &&
                       Hash[3] == Hash[0];
  std::printf(
      "BENCH {\"bench\":\"campaign_scaling\",\"cores\":%u,"
      "\"jobs\":[1,2,4,8],"
      "\"ms\":[%.1f,%.1f,%.1f,%.1f],"
      "\"speedup\":[%.2f,%.2f,%.2f,%.2f],"
      "\"deterministic\":%s,\"digest\":\"%016llx\"}\n",
      ThreadPool::hardwareJobs(), Ms[0], Ms[1], Ms[2], Ms[3], Ms[0] / Ms[0],
      Ms[0] / Ms[1], Ms[0] / Ms[2], Ms[0] / Ms[3],
      Deterministic ? "true" : "false",
      static_cast<unsigned long long>(Hash[0]));
  return Deterministic ? 0 : 1;
}
