//===- bench/bench_fig5b_regalloc.cpp - Paper Figure 5(b) ------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
// Regenerates Figure 5(b): average number of local variables at a
// breakpoint per class, with global optimizations AND graph-coloring
// register allocation.  Expected shape (paper §4): about half the
// variables current or uninitialized; almost all problem variables are
// *nonresident* rather than endangered — dead-code elimination's effect
// manifests as register reuse.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "eval/Measure.h"

using namespace sldb;

static void printFigure5b() {
  std::printf("Figure 5(b): Average number of local variables at a "
              "breakpoint\n            (global optimizations + register "
              "allocation)\n");
  bench::rule();
  std::printf("%-10s %8s %8s %11s %8s %12s\n", "Program", "Uninit",
              "Current", "Endangered", "Nonres", "(Noncur/Susp)");
  bench::rule();
  double SumEndangered = 0, SumNonres = 0;
  for (const BenchProgram &P : benchmarkPrograms()) {
    ClassAverages A =
        measureClassification(P, OptOptions::all(), /*Promote=*/true);
    std::printf("%-10s %8.2f %8.2f %11.2f %8.2f  %5.2f/%-5.2f\n", P.Name,
                A.Uninitialized, A.Current, A.endangered(), A.Nonresident,
                A.Noncurrent, A.Suspect);
    SumEndangered += A.endangered();
    SumNonres += A.Nonresident;
  }
  bench::rule();
  std::printf("Aggregate endangered %.2f vs nonresident %.2f per "
              "breakpoint.\n",
              SumEndangered / 8, SumNonres / 8);
  std::printf("(Paper: with register allocation the debugger is affected "
              "mostly by nonresident variables, few endangered.)\n\n");
}

static void BM_ClassifySweepRegalloc(benchmark::State &State) {
  const BenchProgram &P =
      benchmarkPrograms()[static_cast<std::size_t>(State.range(0))];
  for (auto _ : State) {
    ClassAverages A =
        measureClassification(P, OptOptions::all(), /*Promote=*/true);
    benchmark::DoNotOptimize(A.Nonresident);
  }
  State.SetLabel(P.Name);
}
BENCHMARK(BM_ClassifySweepRegalloc)->DenseRange(0, 7);

SLDB_BENCH_MAIN(printFigure5b)
