//===- bench/BenchUtil.h - Shared benchmark helpers -------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the per-table/per-figure benchmark binaries: each
/// binary first regenerates its table/figure (printed to stdout in the
/// paper's row format), then runs google-benchmark timings of the
/// machinery behind it.
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_BENCH_BENCHUTIL_H
#define SLDB_BENCH_BENCHUTIL_H

#include "codegen/ISel.h"
#include "ir/IRGen.h"
#include "opt/Pass.h"

#include "bench/BenchSnapshot.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>

namespace sldb::bench {

inline std::unique_ptr<IRModule> compile(std::string_view Src) {
  DiagnosticEngine Diags;
  auto M = compileToIR(Src, Diags);
  if (!M) {
    std::fprintf(stderr, "benchmark source failed to compile:\n%s\n",
                 Diags.str().c_str());
    std::abort();
  }
  return M;
}

inline void rule(char C = '-', int Width = 72) {
  for (int I = 0; I < Width; ++I)
    std::putchar(C);
  std::putchar('\n');
}

/// Standard main: print the table (via \p PrintTable), then run timings.
/// Accepts --json=FILE (consumed before google-benchmark sees argv).
#define SLDB_BENCH_MAIN(PrintTable)                                           \
  int main(int argc, char **argv) {                                           \
    ::sldb::bench::parseSnapshotFlag(argc, argv);                             \
    PrintTable();                                                             \
    ::benchmark::Initialize(&argc, argv);                                     \
    ::benchmark::RunSpecifiedBenchmarks();                                    \
    return 0;                                                                 \
  }

} // namespace sldb::bench

#endif // SLDB_BENCH_BENCHUTIL_H
