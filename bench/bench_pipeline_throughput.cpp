//===- bench/bench_pipeline_throughput.cpp ---------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end throughput of the fuzz-campaign compile loop (IR gen +
/// cached-analysis pipeline + codegen) and of the classifier query sweep,
/// emitted as one machine-readable line:
///
///   BENCH {"bench":"pipeline_throughput","compile_ms":...,...}
///
/// Three comparisons in one run:
///  * speedup_vs_baseline — against the committed pre-refactor numbers in
///    bench/baseline_pipeline_throughput.json (or the embedded copy when
///    the file is not reachable from the working directory),
///  * cache_speedup — in-binary ratio against the same pipeline with
///    PipelineConfig::DisableAnalysisCache, which models the pre-manager
///    behavior of rebuilding every analysis at every pass boundary,
///  * campaign digest fields — so a run that got faster by computing
///    different answers is immediately visible.
///
/// Every phase is repeated and the minimum is reported: the minimum over
/// repetitions is the standard noise-robust estimator of true cost on a
/// shared machine.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchSnapshot.h"
#include "codegen/ISel.h"
#include "core/Classifier.h"
#include "eval/Levels.h"
#include "eval/Programs.h"
#include "fuzz/Campaign.h"
#include "ir/IRGen.h"
#include "opt/Pass.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace sldb;

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - T0)
      .count();
}

/// The corpus the compile loop runs over: same generator seeds as the
/// fuzz campaign's smoke corpus.
std::vector<std::string> corpus() {
  std::vector<std::string> Srcs;
  for (unsigned I = 0; I < 60; ++I) {
    GenOptions G;
    Srcs.push_back(generateProgram(1000 + I, G));
  }
  return Srcs;
}

/// Same corpus shape with the aliasing grammar on: arrays, pointers,
/// address-taken locals, indirect stores.  Times the alias-analysis and
/// Load/Store lowering overhead the scalar corpus never exercises.
std::vector<std::string> aliasCorpus() {
  std::vector<std::string> Srcs;
  for (unsigned I = 0; I < 60; ++I) {
    GenOptions G;
    G.Alias = true;
    Srcs.push_back(generateProgram(1000 + I, G));
  }
  return Srcs;
}

/// One timed compile sweep: 3 x 60 programs through the pipeline with
/// the given pass selection.
double compileSweep(const std::vector<std::string> &Srcs,
                    const OptOptions &Opts, bool Cached, unsigned &Funcs) {
  PipelineConfig Config;
  Config.DisableAnalysisCache = !Cached;
  auto T0 = Clock::now();
  Funcs = 0;
  for (int Rep = 0; Rep < 3; ++Rep)
    for (const std::string &S : Srcs) {
      DiagnosticEngine D;
      auto M = compileToIR(S, D);
      runPipelineEx(*M, Opts, Config);
      MachineModule MM = compileToMachine(*M, CodegenOptions());
      Funcs += static_cast<unsigned>(MM.Funcs.size());
    }
  return msSince(T0);
}

/// One timed classifier sweep: every (statement, scope var) query of the
/// 8 eval programs, 3 times.
double querySweep(std::uint64_t &Queries) {
  auto T0 = Clock::now();
  Queries = 0;
  for (int Rep = 0; Rep < 3; ++Rep)
    for (const BenchProgram &P : benchmarkPrograms()) {
      DiagnosticEngine D;
      auto M = compileToIR(P.Source, D);
      runPipeline(*M, OptOptions::all());
      MachineModule MM = compileToMachine(*M, CodegenOptions());
      for (const MachineFunction &MF : MM.Funcs) {
        Classifier CL(MF, *MM.Info);
        const FuncInfo &FI = MM.Info->func(MF.Id);
        for (StmtId S = 0; S < MF.StmtAddr.size(); ++S) {
          if (MF.StmtAddr[S] < 0)
            continue;
          for (VarId V : FI.Stmts[S].ScopeVars) {
            CL.classify(static_cast<std::uint32_t>(MF.StmtAddr[S]), V);
            ++Queries;
          }
        }
      }
    }
  return msSince(T0);
}

/// Minimal extraction of `"key": <number>` from the baseline JSON.
bool jsonNumber(const std::string &Text, const std::string &Key,
                double &Out) {
  auto Pos = Text.find("\"" + Key + "\"");
  if (Pos == std::string::npos)
    return false;
  Pos = Text.find(':', Pos);
  if (Pos == std::string::npos)
    return false;
  return std::sscanf(Text.c_str() + Pos + 1, "%lf", &Out) == 1;
}

void loadBaseline(double &CompileMs, double &SweepMs) {
  // Embedded copy of bench/baseline_pipeline_throughput.json, used when
  // the file is not reachable from the working directory.
  CompileMs = 223.4;
  SweepMs = 83.7;
  for (const char *Path : {"bench/baseline_pipeline_throughput.json",
                           "../bench/baseline_pipeline_throughput.json",
                           "baseline_pipeline_throughput.json"}) {
    std::ifstream In(Path);
    if (!In)
      continue;
    std::stringstream Buf;
    Buf << In.rdbuf();
    std::string Text = Buf.str();
    double C, S;
    if (jsonNumber(Text, "compile_ms", C) &&
        jsonNumber(Text, "sweep_ms", S)) {
      CompileMs = C;
      SweepMs = S;
    }
    return;
  }
}

} // namespace

int main(int Argc, char **Argv) {
  sldb::bench::parseSnapshotFlag(Argc, Argv);
  const std::vector<std::string> Srcs = corpus();
  const std::vector<std::string> AliasSrcs = aliasCorpus();
  unsigned Funcs = 0;
  std::uint64_t Queries = 0;

  double CompileMs = 1e300, UncachedMs = 1e300, SweepMs = 1e300;
  double SsaCompileMs = 1e300, AliasCompileMs = 1e300;
  for (int Rep = 0; Rep < 5; ++Rep)
    CompileMs =
        std::min(CompileMs, compileSweep(Srcs, OptOptions::all(), true, Funcs));
  for (int Rep = 0; Rep < 3; ++Rep)
    UncachedMs = std::min(UncachedMs,
                          compileSweep(Srcs, OptOptions::all(), false, Funcs));
  // The SSA tier's cost on top of the lockstep set: same corpus through
  // the O2nl-ssa level (construct + GVN + sparse prop + destruct).
  const LevelSpec *Ssa = findLevel("O2nl-ssa");
  unsigned SsaFuncs = 0;
  for (int Rep = 0; Rep < 3; ++Rep)
    SsaCompileMs =
        std::min(SsaCompileMs, compileSweep(Srcs, Ssa->Opts, true, SsaFuncs));
  // Aliasing corpus through the full lockstep set: how much the
  // arrays/pointers grammar costs end to end.
  unsigned AliasFuncs = 0;
  for (int Rep = 0; Rep < 3; ++Rep)
    AliasCompileMs = std::min(
        AliasCompileMs, compileSweep(AliasSrcs, OptOptions::all(), true,
                                     AliasFuncs));
  for (int Rep = 0; Rep < 5; ++Rep)
    SweepMs = std::min(SweepMs, querySweep(Queries));

  // Fixed-seed campaign digest: a faster pipeline that changes verdicts
  // is a regression, not a win (the golden test checks the full digest;
  // the headline counts ride along here for visibility).
  CampaignConfig CC;
  CC.Seed = 7;
  CC.Count = 40;
  CC.Shrink = false;
  CC.WriteFailures = false;
  CampaignResult CR = runCampaign(CC);

  double BaseCompile, BaseSweep;
  loadBaseline(BaseCompile, BaseSweep);
  double Speedup =
      (BaseCompile + BaseSweep) / (CompileMs + SweepMs);
  double CacheSpeedup = UncachedMs / CompileMs;

  char Json[768];
  std::snprintf(
      Json, sizeof(Json),
      "{\"bench\":\"pipeline_throughput\","
      "\"compile_ms\":%.1f,\"sweep_ms\":%.1f,"
      "\"uncached_compile_ms\":%.1f,\"cache_speedup\":%.2f,"
      "\"ssa_level\":\"%s\",\"ssa_compile_ms\":%.1f,"
      "\"ssa_overhead\":%.2f,"
      "\"alias_compile_ms\":%.1f,\"alias_overhead\":%.2f,"
      "\"baseline_compile_ms\":%.1f,\"baseline_sweep_ms\":%.1f,"
      "\"speedup_vs_baseline\":%.2f,"
      "\"funcs\":%u,\"queries\":%llu,"
      "\"campaign_runs\":%u,\"campaign_stops\":%llu,"
      "\"campaign_observations\":%llu,\"campaign_failures\":%zu}",
      CompileMs, SweepMs, UncachedMs, CacheSpeedup, Ssa->Name, SsaCompileMs,
      SsaCompileMs / CompileMs, AliasCompileMs, AliasCompileMs / CompileMs,
      BaseCompile, BaseSweep,
      Speedup, Funcs, static_cast<unsigned long long>(Queries), CR.Runs,
      static_cast<unsigned long long>(CR.Stops),
      static_cast<unsigned long long>(CR.Observations),
      CR.Failures.size());
  sldb::bench::emitBench(Json);
  return 0;
}
