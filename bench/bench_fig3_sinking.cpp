//===- bench/bench_fig3_sinking.cpp - Paper Figure 3 -----------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
// Regenerates Figure 3: the dead-code-elimination / assignment-sinking
// example.  Partial dead-code elimination sinks `x = y + z` onto the path
// that reads it, leaving a dead marker at the source position; the
// classifier reports x noncurrent between the marker and the sunk copy,
// suspect at the join of a stale and a fresh path, and current after a
// real redefinition — the six breakpoints of the figure.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "core/Classifier.h"

using namespace sldb;

namespace {

const char *Fig3 = R"(
  int main() {
    int u = 5; int v = 2; int y = 3; int z = 4;
    int x = y + z;       // s4 = E0: partially dead -> marker here (Bkpt1)
    if (u > v) {         // s5 (Bkpt2-ish: x noncurrent)
      u = u + 9;         // s6: x stays stale on this path (Bkpt3)
    } else {
      print(x);          // s7: sunk copy lands before this use (Bkpt4)
    }
    print(u);            // s8: join (Bkpt5: suspect)
    x = u - v;           // s9 = E1
    print(x);            // s10 (Bkpt6: current)
    return 0;
  }
)";

MachineModule buildFig3(std::unique_ptr<IRModule> &Keep) {
  Keep = bench::compile(Fig3);
  OptOptions O = OptOptions::none();
  O.PDE = true;
  runPipeline(*Keep, O);
  CodegenOptions CG;
  CG.PromoteVars = false; // Figure 5(a) configuration: all resident.
  return compileToMachine(*Keep, CG);
}

} // namespace

static void printFigure3() {
  std::printf("Figure 3: Example of dead code elimination (sinking)\n");
  bench::rule();
  std::unique_ptr<IRModule> Keep;
  MachineModule MM = buildFig3(Keep);
  const MachineFunction &MF = *MM.findFunc("main");
  Classifier C(MF, *MM.Info);
  VarId X = InvalidVar;
  for (VarId V : MM.Info->func(MF.Id).Locals)
    if (MM.Info->var(V).Name == "x")
      X = V;

  struct Row {
    const char *Bkpt;
    StmtId Stmt;
    const char *PaperSays;
  };
  const Row Rows[] = {{"Bkpt2", 5, "noncurrent"}, {"Bkpt3", 6, "noncurrent"},
                      {"Bkpt4", 7, "current"},    {"Bkpt5", 8, "suspect"},
                      {"Bkpt6", 10, "current"}};
  for (const Row &R : Rows) {
    if (R.Stmt >= MF.StmtAddr.size() || MF.StmtAddr[R.Stmt] < 0)
      continue;
    Classification CC =
        C.classify(static_cast<std::uint32_t>(MF.StmtAddr[R.Stmt]), X);
    std::printf("%-6s stmt %2u: x is %-11s (paper: %-10s) %s\n", R.Bkpt,
                R.Stmt, varClassName(CC.Kind), R.PaperSays,
                C.warningText(CC, X).c_str());
  }
  bench::rule();
  std::printf("\n");
}

static void BM_PDEOnFig3(benchmark::State &State) {
  for (auto _ : State) {
    auto M = bench::compile(Fig3);
    OptOptions O = OptOptions::none();
    O.PDE = true;
    runPipeline(*M, O);
    benchmark::DoNotOptimize(M->Funcs.size());
  }
}
BENCHMARK(BM_PDEOnFig3);

static void BM_DeadReachAnalysis(benchmark::State &State) {
  std::unique_ptr<IRModule> Keep;
  MachineModule MM = buildFig3(Keep);
  for (auto _ : State) {
    Classifier C(MM.Funcs[0], *MM.Info);
    benchmark::DoNotOptimize(&C);
  }
}
BENCHMARK(BM_DeadReachAnalysis);

SLDB_BENCH_MAIN(printFigure3)
