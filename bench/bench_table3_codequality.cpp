//===- bench/bench_table3_codequality.cpp - Paper Table 3 ------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
// Table 3 of the paper compares cmcc's optimized code against gcc -O2 and
// MIPS cc -O2 on a DECstation (ratios around 0.84-1.13).  Those compilers
// and that hardware are unavailable; per the reproduction's substitution
// rule we measure the same sanity property — "the optimizer produces
// meaningfully better code" — as the dynamic-instruction-count ratio of
// optimized vs. unoptimized code on the R3K simulator.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "eval/Measure.h"
#include "vm/Machine.h"

using namespace sldb;

static void printTable3() {
  std::printf("Table 3 (substituted): dynamic instruction count, optimized "
              "vs unoptimized\n");
  bench::rule();
  std::printf("%-10s %14s %14s %8s %8s\n", "Program", "Instrs -O0",
              "Instrs -O2", "Ratio", "Match");
  bench::rule();
  double Product = 1.0;
  for (const BenchProgram &P : benchmarkPrograms()) {
    CodeQuality Q = measureCodeQuality(P);
    std::printf("%-10s %14llu %14llu %8.3f %8s\n", P.Name,
                static_cast<unsigned long long>(Q.InstrUnoptimized),
                static_cast<unsigned long long>(Q.InstrOptimized),
                Q.ratio(), Q.OutputsMatch ? "yes" : "NO");
    Product *= Q.ratio();
  }
  bench::rule();
  double GeoMean = 1.0;
  // 8th root via three square roots.
  GeoMean = Product;
  for (int I = 0; I < 3; ++I) {
    double X = GeoMean, R = GeoMean / 2 + 0.5;
    for (int J = 0; J < 30; ++J)
      R = (R + X / R) / 2;
    GeoMean = R;
  }
  std::printf("Geometric-mean ratio: %.3f (lower is better; a number "
              "well below 1 plays Table 3's role of showing the\noptimizer "
              "produces competitive code).\n\n",
              GeoMean);
}

static void BM_RunOptimized(benchmark::State &State) {
  const BenchProgram &P =
      benchmarkPrograms()[static_cast<std::size_t>(State.range(0))];
  auto M = bench::compile(P.Source);
  runPipeline(*M, OptOptions::all());
  MachineModule MM = compileToMachine(*M, CodegenOptions());
  for (auto _ : State) {
    Machine VM(MM);
    VM.run();
    benchmark::DoNotOptimize(VM.instrCount());
  }
  State.SetLabel(P.Name);
}
BENCHMARK(BM_RunOptimized)->DenseRange(0, 7);

static void BM_RunUnoptimized(benchmark::State &State) {
  const BenchProgram &P =
      benchmarkPrograms()[static_cast<std::size_t>(State.range(0))];
  auto M = bench::compile(P.Source);
  CodegenOptions CG;
  CG.PromoteVars = false;
  CG.Schedule = false;
  MachineModule MM = compileToMachine(*M, CG);
  for (auto _ : State) {
    Machine VM(MM);
    VM.run();
    benchmark::DoNotOptimize(VM.instrCount());
  }
  State.SetLabel(P.Name);
}
BENCHMARK(BM_RunUnoptimized)->DenseRange(0, 7);

SLDB_BENCH_MAIN(printTable3)
