//===- bench/bench_crosslevel_sweep.cpp - Level-lattice sweep --*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
// Sweeps the eight benchmark programs across the whole pipeline-level
// lattice (eval/Levels.h) and prints the quality-metrics table: line
// coverage, variable availability, and endangerment per level, plus any
// availability-regression candidates.  The timed benchmarks measure the
// cost of one full-corpus sweep and of one single-program sweep.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "eval/CrossLevel.h"

#include <algorithm>
#include <chrono>

using namespace sldb;

static void printCrossLevelSweep() {
  std::printf("Cross-level sweep: quality metrics per pipeline level\n"
              "            (all %zu levels, eight-program corpus)\n",
              pipelineLevels().size());
  bench::rule();
  CrossLevelReport R = sweepCorpus(benchmarkPrograms());
  std::fputs(renderSweepReport(R).c_str(), stdout);
  bench::rule('-', 84);
  std::printf(
      "A regression candidate names a (statement, variable) the debugger\n"
      "shows at a more-optimized level but refuses at a less-optimized\n"
      "one; `sldb-fuzz --oracle=crosslevel` judges candidates against the\n"
      "lockstep ground-truth oracle.\n\n");

  // Machine-readable summary (min of 3 full-corpus sweeps), feeding the
  // --json snapshot the same way bench_pipeline_throughput does.
  using Clock = std::chrono::steady_clock;
  double SweepMs = 1e300;
  for (int Rep = 0; Rep < 3; ++Rep) {
    auto T0 = Clock::now();
    CrossLevelReport Timed = sweepCorpus(benchmarkPrograms());
    benchmark::DoNotOptimize(Timed.Programs);
    SweepMs = std::min(
        SweepMs,
        std::chrono::duration<double, std::milli>(Clock::now() - T0)
            .count());
  }
  char Json[256];
  std::snprintf(Json, sizeof(Json),
                "{\"bench\":\"crosslevel_sweep\","
                "\"corpus_sweep_ms\":%.1f,\"levels\":%zu,\"programs\":%zu,"
                "\"regression_candidates\":%zu}",
                SweepMs, pipelineLevels().size(), static_cast<std::size_t>(R.Programs),
                R.Regressions.size());
  bench::emitBench(Json);
}

static void BM_SweepCorpusAllLevels(benchmark::State &State) {
  const auto &Ps = benchmarkPrograms();
  for (auto _ : State) {
    CrossLevelReport R = sweepCorpus(Ps);
    benchmark::DoNotOptimize(R.Programs);
  }
}
BENCHMARK(BM_SweepCorpusAllLevels)->Unit(benchmark::kMillisecond);

static void BM_SweepOneProgram(benchmark::State &State) {
  const BenchProgram &P =
      benchmarkPrograms()[static_cast<std::size_t>(State.range(0))];
  for (auto _ : State) {
    ProgramSweep S = sweepProgram(P.Name, P.Source);
    benchmark::DoNotOptimize(S.Compiled);
  }
  State.SetLabel(P.Name);
}
BENCHMARK(BM_SweepOneProgram)->DenseRange(0, 7)->Unit(benchmark::kMillisecond);

SLDB_BENCH_MAIN(printCrossLevelSweep)
