//===- bench/bench_fig2_hoisting.cpp - Paper Figure 2 ----------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
// Regenerates Figure 2: the code-hoisting example.  Partial redundancy
// elimination inserts a hoisted instance of `x = y + z` on the else path
// and deletes the redundant copy; the classifier then reports x as
// noncurrent right after the hoisted instance (Bkpt1), suspect at the
// join (Bkpt2), and current after the redundant copy's position (Bkpt3).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "core/Classifier.h"

using namespace sldb;

namespace {

const char *Fig2 = R"(
  int main() {
    int u = 7; int v = 3; int y = 2; int z = 4;
    int x = u - v;        // E0
    if (u > v) {
      x = y + z;          // E1
    } else {
      u = u + 1;          // hoisted E3 lands at the end of this block
    }
    x = y + z;            // E2: deleted as redundant (avail marker)
    print(x);             // Bkpt3
    print(u);
    return 0;
  }
)";

MachineModule buildFig2(std::unique_ptr<IRModule> &Keep) {
  Keep = bench::compile(Fig2);
  OptOptions O = OptOptions::none();
  O.PRE = true;
  runPipeline(*Keep, O);
  return compileToMachine(*Keep, CodegenOptions());
}

} // namespace

static void printFigure2() {
  std::printf("Figure 2: Example of code hoisting\n");
  bench::rule();
  std::unique_ptr<IRModule> Keep;
  MachineModule MM = buildFig2(Keep);
  const MachineFunction &MF = *MM.findFunc("main");
  Classifier C(MF, *MM.Info);
  VarId X = InvalidVar;
  for (VarId V : MM.Info->func(MF.Id).Locals)
    if (MM.Info->var(V).Name == "x")
      X = V;

  // Bkpt1: right after the hoisted instance.
  std::uint32_t Addr = 0;
  std::int64_t HoistAddr = -1;
  for (const MachineBlock &B : MF.Blocks)
    for (const MInstr &I : B.Insts) {
      if (I.IsHoisted && I.DestVar == X && HoistAddr < 0)
        HoistAddr = Addr;
      ++Addr;
    }
  auto Show = [&](const char *Bkpt, std::uint32_t A) {
    Classification CC = C.classify(A, X);
    std::printf("%-6s addr %3u: x is %-11s %s\n", Bkpt, A,
                varClassName(CC.Kind), C.warningText(CC, X).c_str());
  };
  if (HoistAddr >= 0)
    Show("Bkpt1", static_cast<std::uint32_t>(HoistAddr + 1));
  Show("Bkpt2", static_cast<std::uint32_t>(MF.StmtAddr[8])); // E2 marker.
  Show("Bkpt3", static_cast<std::uint32_t>(MF.StmtAddr[9])); // print(x).
  bench::rule();
  std::printf("(Paper: x noncurrent at Bkpt1, suspect at Bkpt2, current at "
              "Bkpt3.)\n\n");
}

static void BM_PREOnFig2(benchmark::State &State) {
  for (auto _ : State) {
    auto M = bench::compile(Fig2);
    OptOptions O = OptOptions::none();
    O.PRE = true;
    runPipeline(*M, O);
    benchmark::DoNotOptimize(M->Funcs.size());
  }
}
BENCHMARK(BM_PREOnFig2);

static void BM_ClassifierConstruction(benchmark::State &State) {
  std::unique_ptr<IRModule> Keep;
  MachineModule MM = buildFig2(Keep);
  for (auto _ : State) {
    Classifier C(MM.Funcs[0], *MM.Info);
    benchmark::DoNotOptimize(&C);
  }
}
BENCHMARK(BM_ClassifierConstruction);

static void BM_SingleClassification(benchmark::State &State) {
  std::unique_ptr<IRModule> Keep;
  MachineModule MM = buildFig2(Keep);
  Classifier C(MM.Funcs[0], *MM.Info);
  VarId X = 4; // x.
  for (auto _ : State) {
    Classification CC =
        C.classify(static_cast<std::uint32_t>(MM.Funcs[0].StmtAddr[8]), X);
    benchmark::DoNotOptimize(CC.Kind);
  }
}
BENCHMARK(BM_SingleClassification);

SLDB_BENCH_MAIN(printFigure2)
