//===- bench/bench_table1_passes.cpp - Paper Table 1 -----------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
// Regenerates Table 1: the optimizations performed by the compiler, in
// pipeline order, and times each one over the benchmark corpus.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "eval/Programs.h"

using namespace sldb;

static void printTable1() {
  std::printf("Table 1: Optimizations performed (cmcc's list -> this "
              "reproduction)\n");
  bench::rule();
  for (const std::string &Name : pipelinePassNames(OptOptions::all()))
    std::printf("  %s\n", Name.c_str());
  std::printf("  global-register-allocation(graph-coloring)   [back end]\n");
  std::printf("  register-coalescing                          [back end]\n");
  std::printf("  instruction-scheduling(list)                 [back end]\n");
  bench::rule();
  std::printf("(Induction-variable expansion/simplification/elimination "
              "live in the\nstrength-reduction pass + dead-code "
              "elimination, as in cmcc.)\n\n");
}

static void BM_SinglePass(benchmark::State &State) {
  auto Names = pipelinePassNames(OptOptions::all());
  // Time the full pipeline per program (per-pass timing via labels would
  // need pass-manager instrumentation; pipeline time is the headline).
  const BenchProgram &P =
      benchmarkPrograms()[static_cast<std::size_t>(State.range(0))];
  for (auto _ : State) {
    State.PauseTiming();
    auto M = bench::compile(P.Source);
    State.ResumeTiming();
    runPipeline(*M, OptOptions::all());
    benchmark::DoNotOptimize(M->Funcs.size());
  }
  State.SetLabel(P.Name);
}
BENCHMARK(BM_SinglePass)->DenseRange(0, 7);

static void BM_PipelineNoPRE(benchmark::State &State) {
  const BenchProgram &P =
      benchmarkPrograms()[static_cast<std::size_t>(State.range(0))];
  OptOptions O = OptOptions::all();
  O.PRE = false;
  for (auto _ : State) {
    State.PauseTiming();
    auto M = bench::compile(P.Source);
    State.ResumeTiming();
    runPipeline(*M, O);
    benchmark::DoNotOptimize(M->Funcs.size());
  }
  State.SetLabel(P.Name);
}
BENCHMARK(BM_PipelineNoPRE)->DenseRange(0, 7);

SLDB_BENCH_MAIN(printTable1)
