//===- bench/bench_table4_suspect.cpp - Paper Table 4 ----------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
// Regenerates Table 4: percentage of endangered variables that are
// suspect, in the Figure 5(a) configuration (global optimizations, no
// register allocation).  Expected shape: the majority of endangered
// variables are noncurrent (suspect share small).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "eval/Measure.h"

using namespace sldb;

static void printTable4() {
  std::printf("Table 4: Percentage of endangered variables that are "
              "suspect\n         (global optimizations, no register "
              "allocation)\n");
  bench::rule();
  std::printf("%-10s %12s %12s %10s\n", "Program", "Noncurrent", "Suspect",
              "%Suspect");
  bench::rule();
  for (const BenchProgram &P : benchmarkPrograms()) {
    ClassAverages A =
        measureClassification(P, OptOptions::all(), /*Promote=*/false);
    std::printf("%-10s %12.3f %12.3f %9.1f%%\n", P.Name, A.Noncurrent,
                A.Suspect, A.pctSuspectOfEndangered());
  }
  bench::rule();
  std::printf("(Paper reports e.g. sc at 9.6%% suspect: the majority of "
              "endangered variables are noncurrent.)\n\n");
}

static void BM_SuspectMeasurement(benchmark::State &State) {
  const BenchProgram &P =
      benchmarkPrograms()[static_cast<std::size_t>(State.range(0))];
  for (auto _ : State) {
    ClassAverages A =
        measureClassification(P, OptOptions::all(), /*Promote=*/false);
    benchmark::DoNotOptimize(A.Suspect);
  }
  State.SetLabel(P.Name);
}
BENCHMARK(BM_SuspectMeasurement)->DenseRange(0, 7);

SLDB_BENCH_MAIN(printTable4)
