//===- bench/bench_table2_programs.cpp - Paper Table 2 ---------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
// Regenerates Table 2: "Programs used in this study" — lines of code,
// total source breakpoints, breakpoints per function, and the average
// number of local variables in scope at each source-level breakpoint.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "eval/Measure.h"

using namespace sldb;

static void printTable2() {
  std::printf("Table 2: Programs used in this study (SPEC92 stand-ins)\n");
  bench::rule();
  std::printf("%-10s %8s %12s %14s %10s\n", "Program", "LoC",
              "Breakpoints", "Bkpts/func", "Vars/bkpt");
  bench::rule();
  for (const BenchProgram &P : benchmarkPrograms()) {
    SourceStats S = sourceStats(P);
    std::printf("%-10s %8u %12u %14.1f %10.1f\n", S.Name.c_str(),
                S.LinesOfCode, S.Breakpoints, S.BreakpointsPerFunction,
                S.VarsPerBreakpoint);
  }
  bench::rule();
  std::printf("(Paper: 322-102389 LoC, 7.4-26.9 bkpts/func, 5.1-9.4 "
              "vars/bkpt; stand-ins are laptop-scale but keep the shape.)\n\n");
}

static void BM_FrontendAndStats(benchmark::State &State) {
  const BenchProgram &P =
      benchmarkPrograms()[static_cast<std::size_t>(State.range(0))];
  for (auto _ : State) {
    SourceStats S = sourceStats(P);
    benchmark::DoNotOptimize(S.Breakpoints);
  }
  State.SetLabel(P.Name);
}
BENCHMARK(BM_FrontendAndStats)->DenseRange(0, 7);

SLDB_BENCH_MAIN(printTable2)
