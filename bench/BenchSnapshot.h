//===- bench/BenchSnapshot.h - --json=FILE snapshot writer ------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The perf-trajectory capture shared by every benchmark binary (via
/// BenchUtil.h) and by the google-benchmark-free ones (directly):
/// benchmarks emit machine-readable `BENCH {...}` lines; with
/// `--json=FILE` each line's JSON object is also appended to FILE (one
/// object per line).  CI runs `bench_foo --json=BENCH_foo.json` and
/// commits the snapshot next to the checked-in baseline, so regressions
/// are a diff, not an archaeology dig.
///
/// Kept free of benchmark.h so binaries that do not link google-benchmark
/// can use it too.
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_BENCH_BENCHSNAPSHOT_H
#define SLDB_BENCH_BENCHSNAPSHOT_H

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

namespace sldb::bench {

/// Snapshot destination ("" = stdout only).  Set by parseSnapshotFlag.
inline std::string &snapshotPath() {
  static std::string Path;
  return Path;
}

/// Extracts and removes a `--json=FILE` argument (the remaining argv is
/// later handed to google-benchmark, which rejects unknown flags).
/// Truncates FILE so each run produces a fresh snapshot.
inline void parseSnapshotFlag(int &Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I) {
    if (std::strncmp(Argv[I], "--json=", 7) != 0)
      continue;
    snapshotPath() = Argv[I] + 7;
    for (int J = I; J + 1 < Argc; ++J)
      Argv[J] = Argv[J + 1];
    --Argc;
    std::ofstream(snapshotPath(), std::ios::trunc);
    return;
  }
}

/// Emits one benchmark result: `BENCH <Json>` on stdout, plus `<Json>`
/// appended to the --json snapshot file when one was requested.
inline void emitBench(const std::string &Json) {
  std::printf("BENCH %s\n", Json.c_str());
  if (!snapshotPath().empty()) {
    std::ofstream Out(snapshotPath(), std::ios::app);
    Out << Json << '\n';
  }
}

} // namespace sldb::bench

#endif // SLDB_BENCH_BENCHSNAPSHOT_H
