//===- examples/debug_session.cpp - Full session on a real kernel -*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
// A scripted source-level debugging session over one of the SPEC92
// stand-in benchmarks (the LZW compressor), compiled at full optimization
// with register allocation: stop inside the hot loop across several
// iterations and watch variables move between current, recovered,
// and nonresident as execution progresses.
//
// Build & run:  ./build/examples/debug_session
//
//===----------------------------------------------------------------------===//

#include "codegen/ISel.h"
#include "core/Debugger.h"
#include "eval/Programs.h"
#include "ir/IRGen.h"
#include "opt/Pass.h"

#include <cstdio>

using namespace sldb;

int main() {
  const BenchProgram &Compress = benchmarkPrograms()[5];
  std::printf("debugging '%s' (%s)\ncompiled with the full optimization "
              "pipeline + register allocation\n\n",
              Compress.Name, Compress.Description);

  DiagnosticEngine Diags;
  auto Module = compileToIR(Compress.Source, Diags);
  if (!Module) {
    std::fprintf(stderr, "compile error:\n%s", Diags.str().c_str());
    return 1;
  }
  runPipeline(*Module, OptOptions::all());
  MachineModule MM = compileToMachine(*Module, CodegenOptions());

  Debugger Dbg(MM);
  FuncId CompressFn = MM.Info->findFunc("compress");
  if (CompressFn == InvalidFunc) {
    std::fprintf(stderr, "no compress() in the benchmark\n");
    return 1;
  }

  // Break on every statement of compress() and sample the first stops.
  const MachineFunction &MF = MM.Funcs[CompressFn];
  unsigned Set = 0;
  for (StmtId S = 0; S < MF.StmtAddr.size(); ++S)
    if (Dbg.setBreakpointAtStmt(CompressFn, S))
      ++Set;
  std::printf("%u syntactic breakpoints set in compress() (%u statements "
              "had their code optimized away entirely)\n\n",
              Set, static_cast<unsigned>(MF.StmtAddr.size()) - Set);

  StopReason R = Dbg.run();
  unsigned Stop = 0;
  unsigned Shown = 0;
  while (R == StopReason::Breakpoint && Stop < 4000) {
    ++Stop;
    if (Dbg.currentFunction() == CompressFn && Stop % 37 == 1 &&
        Shown < 6) {
      ++Shown;
      auto S = Dbg.currentStmt();
      std::printf("stop #%u at compress() statement %d:\n", Stop,
                  S ? static_cast<int>(*S) : -1);
      for (const VarReport &V : Dbg.reportScope()) {
        std::printf("  %-8s %-11s", V.Name.c_str(),
                    varClassName(V.Class.Kind));
        if (V.HasValue)
          std::printf(" = %-10lld", static_cast<long long>(V.IntValue));
        else
          std::printf("   %-10s", "--");
        if (V.Class.Recoverable)
          std::printf(" [recovered]");
        if (!V.Warning.empty())
          std::printf(" ! %s", V.Warning.c_str());
        std::printf("\n");
      }
      std::printf("\n");
    }
    R = Dbg.resume();
  }

  std::printf("session ended after %u stops (%s)\n", Stop,
              R == StopReason::Exited ? "program exited" : "limit");
  std::printf("program output:\n%s", Dbg.machine().outputText().c_str());
  return 0;
}
