//===- examples/endangered_tour.cpp - All five classifications --*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
// A guided tour producing every classification of the paper's Figure 1 —
// uninitialized, nonresident, noncurrent (premature and stale), suspect,
// current, and recovery — each with the program that triggers it and the
// debugger's report.
//
// Build & run:  ./build/examples/endangered_tour
//
//===----------------------------------------------------------------------===//

#include "codegen/ISel.h"
#include "core/Debugger.h"
#include "ir/IRGen.h"
#include "opt/Pass.h"

#include <cstdio>
#include <memory>

using namespace sldb;

namespace {

/// Pool keeping IRModules alive behind their MachineModules.
std::vector<std::unique_ptr<IRModule>> Pool;

MachineModule build(const char *Source, OptOptions Opts,
                    bool Promote = true) {
  DiagnosticEngine Diags;
  auto Module = compileToIR(Source, Diags);
  if (!Module) {
    std::fprintf(stderr, "compile error:\n%s", Diags.str().c_str());
    std::abort();
  }
  runPipeline(*Module, Opts);
  CodegenOptions CG;
  CG.PromoteVars = Promote;
  MachineModule MM = compileToMachine(*Module, CG);
  Pool.push_back(std::move(Module));
  return MM;
}

void show(Debugger &Dbg, const char *Var) {
  auto R = Dbg.queryVariable(Var);
  if (!R) {
    std::printf("    %s: <no such variable>\n", Var);
    return;
  }
  std::printf("    %-8s -> %-11s", Var, varClassName(R->Class.Kind));
  if (R->HasValue)
    std::printf(" (value %lld%s)", static_cast<long long>(R->IntValue),
                R->Class.Recoverable ? ", recovered" : "");
  std::printf("\n");
  if (!R->Warning.empty())
    std::printf("      %s\n", R->Warning.c_str());
}

void banner(const char *Title) {
  std::printf("\n=== %s\n", Title);
}

} // namespace

int main() {
  // ------------------------------------------------------------------
  banner("uninitialized: no assignment reaches the breakpoint");
  {
    MachineModule MM = build(R"(
      int main() {
        int pending;
        int base = 10;        // s1: break here; pending not yet assigned
        pending = base * 2;
        print(pending);
        return 0;
      }
    )",
                             OptOptions::none());
    Debugger Dbg(MM);
    Dbg.setBreakpointAtStmt(MM.Info->findFunc("main"), 1);
    Dbg.run();
    show(Dbg, "pending");
  }

  // ------------------------------------------------------------------
  banner("noncurrent (premature): PRE hoisted the assignment (Figure 2)");
  {
    OptOptions O = OptOptions::none();
    O.PRE = true;
    MachineModule MM = build(R"(
      int main() {
        int u = 7; int v = 3; int y = 2; int z = 4;
        int x = u - v;
        if (u > v) { x = y + z; } else { u = u + 1; }
        x = y + z;            // s8: redundant; breakpoint = marker
        print(x); print(u);
        return 0;
      }
    )",
                             O);
    Debugger Dbg(MM);
    Dbg.setBreakpointAtStmt(MM.Info->findFunc("main"), 8);
    Dbg.run();
    std::printf("  at the deleted redundant assignment (join point):\n");
    show(Dbg, "x"); // Suspect here (hoisted on one path only).
  }

  // ------------------------------------------------------------------
  banner("noncurrent (stale) and suspect: PDE sank the assignment "
         "(Figure 3)");
  {
    OptOptions O = OptOptions::none();
    O.PDE = true;
    MachineModule MM = build(R"(
      int main() {
        int u = 5; int v = 2; int y = 3; int z = 4;
        int x = y + z;        // sunk into the else branch
        if (u > v) {          // s5: x is stale here
          u = u + 9;
        } else {
          print(x);
        }
        print(u);             // s8: join -> suspect
        x = u - v;
        print(x);
        return 0;
      }
    )",
                             O, /*Promote=*/false);
    Debugger Dbg(MM);
    FuncId Main = MM.Info->findFunc("main");
    Dbg.setBreakpointAtStmt(Main, 5);
    Dbg.setBreakpointAtStmt(Main, 8);
    Dbg.run();
    std::printf("  at the if (before the sunk copy executes):\n");
    show(Dbg, "x");
    Dbg.resume();
    std::printf("  at the join (stale on one path, fresh on the other):\n");
    show(Dbg, "x");
  }

  // ------------------------------------------------------------------
  banner("recovery: DCE'd variable reconstructed from an alias "
         "(Figure 4)");
  {
    MachineModule MM = build(R"(
      int main() {
        int a = 7;
        int c = a;            // dead; c aliases a
        print(a);             // s2
        return a;
      }
    )",
                             OptOptions::all());
    Debugger Dbg(MM);
    Dbg.setBreakpointAtStmt(MM.Info->findFunc("main"), 2);
    Dbg.run();
    show(Dbg, "c");
  }

  // ------------------------------------------------------------------
  banner("nonresident: the register allocator reused the register");
  {
    std::string Src = "int main() {\n  int first = 77;\n  int acc = first;\n";
    for (int I = 0; I < 30; ++I)
      Src += "  int t" + std::to_string(I) + " = acc + " +
             std::to_string(I) + "; acc = t" + std::to_string(I) +
             " * 2 - acc;\n";
    Src += "  print(acc);\n  return 0;\n}\n"; // `first` long dead here.
    MachineModule MM = build(Src.c_str(), OptOptions::none());
    Debugger Dbg(MM);
    const MachineFunction *Main = MM.findFunc("main");
    StmtId Last = 0;
    for (StmtId S = 0; S < Main->StmtAddr.size(); ++S)
      if (Main->StmtAddr[S] >= 0)
        Last = S;
    Debugger Dbg2(MM);
    Dbg2.setBreakpointAtStmt(MM.Info->findFunc("main"), Last);
    Dbg2.run();
    std::printf("  at the final print (register pressure forced reuse):\n");
    show(Dbg2, "first");
    (void)Dbg;
  }

  // ------------------------------------------------------------------
  banner("current: shown without warnings");
  {
    MachineModule MM = build(R"(
      int main() {
        int a = 3;
        int b = a * 7;
        print(b);             // s2
        return 0;
      }
    )",
                             OptOptions::all());
    Debugger Dbg(MM);
    Dbg.setBreakpointAtStmt(MM.Info->findFunc("main"), 2);
    Dbg.run();
    show(Dbg, "b");
  }

  std::printf("\nEvery endangered value above came with a warning — the "
              "debugger never misleads (paper Figure 1).\n");
  return 0;
}
