//===- examples/quickstart.cpp - 60-second tour -----------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
// Quickstart: compile a MiniC program with full optimization, run it under
// the R3K simulator, stop at a source breakpoint, and query variables —
// the debugger classifies each one per the paper's Figure 1 and never
// shows an optimized-away value without a warning.
//
// Build & run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "codegen/ISel.h"
#include "core/Debugger.h"
#include "ir/IRGen.h"
#include "opt/Pass.h"

#include <cstdio>

using namespace sldb;

int main() {
  const char *Source = R"(
    int main() {
      int price = 120;
      int tax = price / 10;      // becomes dead after propagation
      int total = price + tax;
      int discount = total / 4;  // partially dead: only used when large
      if (total > 100) {
        total = total - discount; // statement 5: our breakpoint
      }
      print(total);
      return total;
    }
  )";

  // 1. Compile with the full cmcc-style optimization pipeline.
  DiagnosticEngine Diags;
  auto Module = compileToIR(Source, Diags);
  if (!Module) {
    std::fprintf(stderr, "compile error:\n%s", Diags.str().c_str());
    return 1;
  }
  runPipeline(*Module, OptOptions::all());

  // 2. Generate R3K machine code (graph-coloring register allocation,
  //    list scheduling) with the debug tables of paper §3.
  MachineModule Machine = compileToMachine(*Module, CodegenOptions());

  // 3. Debug the *optimized* code, non-invasively.
  Debugger Dbg(Machine);
  FuncId Main = Machine.Info->findFunc("main");
  StmtId PrintStmt = 5; // The `total = total - discount` assignment.
  if (!Dbg.setBreakpointAtStmt(Main, PrintStmt)) {
    std::fprintf(stderr, "statement %u emitted no code\n", PrintStmt);
    return 1;
  }

  if (Dbg.run() != StopReason::Breakpoint) {
    std::fprintf(stderr, "program did not reach the breakpoint\n");
    return 1;
  }

  std::printf("stopped at statement %u of main()\n\n", PrintStmt);
  for (const VarReport &R : Dbg.reportScope()) {
    std::printf("  %-9s : %-11s", R.Name.c_str(),
                varClassName(R.Class.Kind));
    if (R.HasValue) {
      if (R.IsDouble)
        std::printf(" value = %g", R.DoubleValue);
      else
        std::printf(" value = %lld", static_cast<long long>(R.IntValue));
      if (R.Class.Recoverable)
        std::printf(" (recovered)");
    }
    if (!R.Warning.empty())
      std::printf("\n              %s", R.Warning.c_str());
    std::printf("\n");
  }

  Dbg.resume();
  std::printf("\nprogram output: %s", Dbg.machine().outputText().c_str());
  std::printf("exit value: %lld\n",
              static_cast<long long>(Dbg.machine().exitValue()));
  return 0;
}
