//===- examples/opt_report.cpp - Compiler-explorer style dump ---*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
// Shows the compiler's work: the IR after each optimization pass (with
// the paper's §3 bookkeeping — hoisted/sunk flags and dead/avail markers
// visible inline), then the final annotated R3K machine code with the
// statement map and per-variable storage.
//
// Build & run:  ./build/examples/opt_report
//
//===----------------------------------------------------------------------===//

#include "codegen/ISel.h"
#include "codegen/MachineIR.h"
#include "ir/IRGen.h"
#include "ir/IRPrinter.h"
#include "opt/Pass.h"

#include <cstdio>

using namespace sldb;

int main() {
  const char *Source = R"(
    int main() {
      int u = 7; int v = 3; int y = 2; int z = 4;
      int x = u - v;
      if (u > v) {
        x = y + z;
      } else {
        u = u + 1;
      }
      x = y + z;
      int waste = x * 2;     // dead: never used
      print(x);
      print(u);
      return 0;
    }
  )";

  DiagnosticEngine Diags;
  auto Module = compileToIR(Source, Diags);
  if (!Module) {
    std::fprintf(stderr, "compile error:\n%s", Diags.str().c_str());
    return 1;
  }

  std::printf("==== IR as generated ====\n%s\n",
              printModule(*Module).c_str());

  // Run the interesting passes one at a time and dump after each.
  struct Step {
    const char *Title;
    std::unique_ptr<Pass> P;
  };
  Step Steps[] = {
      {"constant propagation + folding", createConstantPropagationPass()},
      {"local simplification", createLocalSimplifyPass()},
      {"copy propagation", createCopyPropagationPass()},
      {"partial redundancy elimination (hoisting)",
       createPartialRedundancyElimPass()},
      {"partial dead code elimination (sinking)",
       createPartialDeadCodeElimPass()},
      {"dead assignment elimination", createDeadCodeEliminationPass()},
      {"branch optimizations", createBranchOptPass()},
  };
  for (Step &S : Steps) {
    bool Changed = false;
    for (auto &F : Module->Funcs)
      Changed |= S.P->run(*F, *Module);
    if (!Changed)
      continue;
    std::printf("==== after %s ====\n%s\n", S.Title,
                printModule(*Module).c_str());
  }

  MachineModule MM = compileToMachine(*Module, CodegenOptions());
  const MachineFunction &MF = *MM.findFunc("main");
  std::printf("==== final R3K code ====\n%s\n",
              printMachineFunction(MF, MM.Info).c_str());

  std::printf("==== statement map (syntactic breakpoints) ====\n");
  for (StmtId S = 0; S < MF.StmtAddr.size(); ++S) {
    if (MF.StmtAddr[S] >= 0)
      std::printf("  s%-3u -> address %d\n", S, MF.StmtAddr[S]);
    else
      std::printf("  s%-3u -> (optimized away)\n", S);
  }

  std::printf("\n==== variable storage ====\n");
  for (VarId V : MM.Info->func(MF.Id).Locals) {
    auto It = MF.Storage.find(V);
    std::printf("  %-8s : ", MM.Info->var(V).Name.c_str());
    if (It == MF.Storage.end() ||
        It->second.K == VarStorage::Kind::None) {
      std::printf("no runtime storage (optimized away)\n");
      continue;
    }
    switch (It->second.K) {
    case VarStorage::Kind::InReg:
      std::printf("register %s\n", It->second.R.str().c_str());
      break;
    case VarStorage::Kind::Frame:
      std::printf("frame slot %d\n", It->second.Frame);
      break;
    default:
      std::printf("global memory\n");
    }
  }
  return 0;
}
