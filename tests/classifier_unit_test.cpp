//===- tests/classifier_unit_test.cpp - Lemma-level tests ------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
// Tests the classifier against hand-constructed machine functions, giving
// exact control over markers, hoist keys, and annotations — each test
// encodes one of the paper's Definitions/Lemmas directly.
//
//===----------------------------------------------------------------------===//

#include "core/Classifier.h"

#include <gtest/gtest.h>

using namespace sldb;

namespace {

/// Builder for small machine functions + symbol tables.
class MachineBuilder {
public:
  MachineBuilder() {
    Info = std::make_unique<ProgramInfo>();
    FuncInfo FI;
    FI.Name = "f";
    Info->Funcs.push_back(FI);
    MF.Id = 0;
    MF.Name = "f";
  }

  VarId addVar(const std::string &Name, bool InReg = true,
               unsigned RegNum = 10) {
    VarInfo VI;
    VI.Name = Name;
    VI.Ty = QualType::intTy();
    VI.Storage = StorageKind::Local;
    VI.Owner = 0;
    VarId Id = Info->addVar(VI);
    Info->func(0).Locals.push_back(Id);
    VarStorage S;
    if (InReg) {
      S.K = VarStorage::Kind::InReg;
      S.R = Reg::phys(RegClass::Int, RegNum);
    } else {
      S.K = VarStorage::Kind::Frame;
      S.Frame = static_cast<std::int32_t>(Id);
    }
    MF.Storage[Id] = S;
    return Id;
  }

  unsigned addBlock() {
    MachineBlock B;
    B.Id = static_cast<std::uint32_t>(MF.Blocks.size());
    B.Name = "b" + std::to_string(B.Id);
    MF.Blocks.push_back(B);
    return B.Id;
  }

  void edge(unsigned From, unsigned To) {
    MF.Blocks[From].Succs.push_back(To);
    MF.Blocks[To].Preds.push_back(From);
  }

  /// Appends an instruction assigning variable \p V (a real source
  /// assignment at statement \p S).
  MInstr &assign(unsigned Block, VarId V, StmtId S) {
    MInstr I;
    I.Op = MOp::LI;
    I.Dest = MF.Storage[V].K == VarStorage::Kind::InReg
                 ? MF.Storage[V].R
                 : Reg::phys(RegClass::Int, 4);
    I.Imm = 1;
    I.Stmt = S;
    I.DestVar = V;
    MF.Blocks[Block].Insts.push_back(I);
    return MF.Blocks[Block].Insts.back();
  }

  MInstr &hoisted(unsigned Block, VarId V, StmtId S, HoistKeyId Key) {
    MInstr &I = assign(Block, V, S);
    I.IsHoisted = true;
    I.HoistKey = Key;
    return I;
  }

  MInstr &availMarker(unsigned Block, VarId V, StmtId S, HoistKeyId Key) {
    MInstr I;
    I.Op = MOp::MAVAIL;
    I.MarkVar = V;
    I.MarkStmt = S;
    I.Stmt = S;
    I.HoistKey = Key;
    MF.Blocks[Block].Insts.push_back(I);
    return MF.Blocks[Block].Insts.back();
  }

  MInstr &deadMarker(unsigned Block, VarId V, StmtId S,
                     MRecovery R = MRecovery()) {
    MInstr I;
    I.Op = MOp::MDEAD;
    I.MarkVar = V;
    I.MarkStmt = S;
    I.Stmt = S;
    I.Recovery = R;
    MF.Blocks[Block].Insts.push_back(I);
    return MF.Blocks[Block].Insts.back();
  }

  void nop(unsigned Block, StmtId S = InvalidStmt) {
    MInstr I;
    I.Op = MOp::MNOP;
    I.Stmt = S;
    MF.Blocks[Block].Insts.push_back(I);
  }

  void term(unsigned Block, bool Ret = false) {
    MInstr I;
    if (Ret) {
      I.Op = MOp::RET;
    } else {
      I.Op = MOp::J;
      I.TargetBlock = MF.Blocks[Block].Succs.empty()
                          ? 0
                          : MF.Blocks[Block].Succs[0];
    }
    MF.Blocks[Block].Insts.push_back(I);
  }

  HoistKeyId key(VarId V) {
    HoistKey K;
    K.V = V;
    K.Op = Opcode::Add;
    K.Ty = IRType::Int;
    MF.HoistKeys.push_back(K);
    return static_cast<HoistKeyId>(MF.HoistKeys.size() - 1);
  }

  /// Fills the bookkeeping the annotation verifier re-checks at
  /// classifier construction (marker census, frame size) so hand-built
  /// functions verify clean like real codegen output; a census mismatch
  /// would otherwise push every variable into degraded mode.
  void syncVerifierTables() {
    MF.ExpectedDeadMarkers = 0;
    MF.ExpectedAvailMarkers = 0;
    for (const MachineBlock &B : MF.Blocks)
      for (const MInstr &I : B.Insts) {
        if (I.Op == MOp::MDEAD)
          ++MF.ExpectedDeadMarkers;
        else if (I.Op == MOp::MAVAIL)
          ++MF.ExpectedAvailMarkers;
      }
    for (const auto &[V, S] : MF.Storage) {
      (void)V;
      if (S.K == VarStorage::Kind::Frame && S.Frame >= 0 &&
          static_cast<std::uint32_t>(S.Frame) >= MF.FrameSize)
        MF.FrameSize = static_cast<std::uint32_t>(S.Frame) + 1;
    }
  }

  /// Finalizes addresses and returns a classifier.
  Classifier finish(unsigned NumStmts = 16) {
    MF.NumStmts = NumStmts;
    MF.BlockAddr.clear();
    std::uint32_t Addr = 0;
    for (MachineBlock &B : MF.Blocks) {
      MF.BlockAddr.push_back(Addr);
      Addr += static_cast<std::uint32_t>(B.Insts.size());
    }
    MF.StmtAddr.assign(NumStmts, -1);
    // Register-homed vars: resident everywhere unless a test overrides.
    for (auto &[V, S] : MF.Storage)
      if (S.K == VarStorage::Kind::InReg &&
          !MF.ResidentAt.count(V)) {
        BitVector Bits(Addr, true);
        MF.ResidentAt[V] = Bits;
      }
    syncVerifierTables();
    return Classifier(MF, *Info);
  }

  std::uint32_t addr(unsigned Block, unsigned Index) const {
    std::uint32_t A = 0;
    for (unsigned B = 0; B < Block; ++B)
      A += static_cast<std::uint32_t>(MF.Blocks[B].Insts.size());
    return A + Index;
  }

  std::unique_ptr<ProgramInfo> Info;
  MachineFunction MF;
};

} // namespace

//===----------------------------------------------------------------------===//
// Hoist reach: Definition 1, Lemmas 1-3
//===----------------------------------------------------------------------===//

TEST(HoistReach, Lemma2NoncurrentOnAllPaths) {
  // b0: hoisted x; nop; avail-marker x; ret.
  MachineBuilder B;
  VarId X = B.addVar("x");
  unsigned B0 = B.addBlock();
  HoistKeyId K = B.key(X);
  B.assign(B0, X, 0);       // Initialize x.
  B.hoisted(B0, X, 3, K);   // Premature assignment.
  B.nop(B0, 1);             // <-- breakpoint here.
  B.availMarker(B0, X, 3, K);
  B.nop(B0, 2);             // <-- and here (after the marker).
  B.term(B0, /*Ret=*/true);
  Classifier C = B.finish();

  Classification Mid = C.classify(B.addr(B0, 2), X);
  EXPECT_EQ(Mid.Kind, VarClass::Noncurrent);
  EXPECT_EQ(Mid.Cause, EndangerCause::Premature);
  EXPECT_EQ(Mid.CulpritStmt, 3u);

  Classification After = C.classify(B.addr(B0, 4), X);
  EXPECT_EQ(After.Kind, VarClass::Current);
}

TEST(HoistReach, Lemma3SuspectOnSomePaths) {
  // Diamond: b0 -> b1 (hoisted) / b2 (plain) -> b3 (join, breakpoint).
  MachineBuilder B;
  VarId X = B.addVar("x");
  unsigned B0 = B.addBlock(), B1 = B.addBlock(), B2 = B.addBlock(),
           B3 = B.addBlock();
  B.edge(B0, B1);
  B.edge(B0, B2);
  B.edge(B1, B3);
  B.edge(B2, B3);
  HoistKeyId K = B.key(X);
  B.assign(B0, X, 0);
  B.term(B0); // (jump shape is irrelevant; Succs drive the analysis)
  B.hoisted(B1, X, 5, K);
  B.term(B1);
  B.nop(B2);
  B.term(B2);
  B.nop(B3, 6); // <-- breakpoint at join.
  B.availMarker(B3, X, 5, K);
  B.term(B3, /*Ret=*/true);
  Classifier C = B.finish();

  Classification AtJoin = C.classify(B.addr(B3, 0), X);
  EXPECT_EQ(AtJoin.Kind, VarClass::Suspect);
  EXPECT_EQ(AtJoin.Cause, EndangerCause::MaybePremature);

  // After the avail marker: current on every path.
  Classification After = C.classify(B.addr(B3, 2), X);
  EXPECT_EQ(After.Kind, VarClass::Current);
}

TEST(HoistReach, RealAssignmentKillsHoistReach) {
  MachineBuilder B;
  VarId X = B.addVar("x");
  unsigned B0 = B.addBlock();
  HoistKeyId K = B.key(X);
  B.assign(B0, X, 0);
  B.hoisted(B0, X, 4, K);
  B.assign(B0, X, 2); // A real assignment overwrites the premature value.
  B.nop(B0, 3);       // <-- breakpoint.
  B.term(B0, true);
  Classifier C = B.finish();
  Classification CC = C.classify(B.addr(B0, 3), X);
  EXPECT_EQ(CC.Kind, VarClass::Current);
}

//===----------------------------------------------------------------------===//
// Dead reach: Definition 2, Lemmas 4-6
//===----------------------------------------------------------------------===//

TEST(DeadReach, Lemma5NoncurrentOnAllPaths) {
  MachineBuilder B;
  VarId X = B.addVar("x");
  unsigned B0 = B.addBlock();
  B.assign(B0, X, 0);
  B.deadMarker(B0, X, 2);
  B.nop(B0, 3); // <-- breakpoint: stale.
  B.assign(B0, X, 4);
  B.nop(B0, 5); // <-- breakpoint: fresh.
  B.term(B0, true);
  Classifier C = B.finish();

  Classification Stale = C.classify(B.addr(B0, 2), X);
  EXPECT_EQ(Stale.Kind, VarClass::Noncurrent);
  EXPECT_EQ(Stale.Cause, EndangerCause::Stale);
  EXPECT_EQ(Stale.CulpritStmt, 2u);

  Classification Fresh = C.classify(B.addr(B0, 4), X);
  EXPECT_EQ(Fresh.Kind, VarClass::Current);
}

TEST(DeadReach, Lemma6SuspectAtJoin) {
  // b0 -> b1 (marker) / b2 (assign) -> b3.
  MachineBuilder B;
  VarId X = B.addVar("x");
  unsigned B0 = B.addBlock(), B1 = B.addBlock(), B2 = B.addBlock(),
           B3 = B.addBlock();
  B.edge(B0, B1);
  B.edge(B0, B2);
  B.edge(B1, B3);
  B.edge(B2, B3);
  B.assign(B0, X, 0);
  B.term(B0);
  B.deadMarker(B1, X, 2);
  B.term(B1);
  B.assign(B2, X, 3);
  B.term(B2);
  B.nop(B3, 4); // <-- breakpoint.
  B.term(B3, true);
  Classifier C = B.finish();
  Classification CC = C.classify(B.addr(B3, 0), X);
  EXPECT_EQ(CC.Kind, VarClass::Suspect);
  EXPECT_EQ(CC.Cause, EndangerCause::MaybeStale);
}

TEST(DeadReach, NewerMarkerSupersedesOlder) {
  // Two markers for x in sequence with different recovery constants: the
  // expected value at the end comes from the *last* eliminated
  // assignment (Definition 2, "the last occurrence of Ed").
  MachineBuilder B;
  VarId X = B.addVar("x");
  unsigned B0 = B.addBlock();
  B.assign(B0, X, 0);
  MRecovery R1;
  R1.K = MRecovery::Kind::Imm;
  R1.Imm = 111;
  B.deadMarker(B0, X, 1, R1);
  MRecovery R2;
  R2.K = MRecovery::Kind::Imm;
  R2.Imm = 222;
  B.deadMarker(B0, X, 2, R2);
  B.nop(B0, 3); // <-- breakpoint.
  B.term(B0, true);
  Classifier C = B.finish();
  Classification CC = C.classify(B.addr(B0, 3), X);
  ASSERT_EQ(CC.Kind, VarClass::Current); // Recovered.
  ASSERT_TRUE(CC.Recoverable);
  EXPECT_EQ(CC.Recovery.Imm, 222);
  EXPECT_EQ(CC.CulpritStmt, 2u);
}

TEST(DeadReach, HoistPrematureTakesPrecedenceOverStale) {
  // Lemma 4: "V is noncurrent because the actual value is stale" only
  // applies if V is not already noncurrent due to premature execution.
  MachineBuilder B;
  VarId X = B.addVar("x");
  unsigned B0 = B.addBlock();
  HoistKeyId K = B.key(X);
  B.assign(B0, X, 0);
  B.deadMarker(B0, X, 1);  // Dead reach gen.
  B.hoisted(B0, X, 4, K);  // Kills dead reach, gens hoist reach.
  B.nop(B0, 2);            // <-- breakpoint.
  B.availMarker(B0, X, 4, K);
  B.term(B0, true);
  Classifier C = B.finish();
  Classification CC = C.classify(B.addr(B0, 3), X);
  EXPECT_EQ(CC.Kind, VarClass::Noncurrent);
  EXPECT_EQ(CC.Cause, EndangerCause::Premature);
}

//===----------------------------------------------------------------------===//
// Initialization and residence
//===----------------------------------------------------------------------===//

TEST(InitReach, UninitializedBeforeAnyDef) {
  MachineBuilder B;
  VarId X = B.addVar("x");
  unsigned B0 = B.addBlock();
  B.nop(B0, 0); // <-- breakpoint before any def of x.
  B.assign(B0, X, 1);
  B.nop(B0, 2);
  B.term(B0, true);
  Classifier C = B.finish();
  EXPECT_EQ(C.classify(B.addr(B0, 0), X).Kind, VarClass::Uninitialized);
  EXPECT_EQ(C.classify(B.addr(B0, 2), X).Kind, VarClass::Current);
}

TEST(InitReach, MarkerCountsAsSourceDefinition) {
  // An eliminated assignment still *initializes* the variable in source
  // terms: the classification after the marker is noncurrent, never
  // uninitialized.
  MachineBuilder B;
  VarId X = B.addVar("x", /*InReg=*/false);
  unsigned B0 = B.addBlock();
  B.deadMarker(B0, X, 0);
  B.nop(B0, 1); // <-- breakpoint.
  B.term(B0, true);
  Classifier C = B.finish();
  Classification CC = C.classify(B.addr(B0, 1), X);
  EXPECT_EQ(CC.Kind, VarClass::Noncurrent);
}

TEST(Residence, NonresidentOutsideOwnershipBits) {
  MachineBuilder B;
  VarId X = B.addVar("x");
  unsigned B0 = B.addBlock();
  B.assign(B0, X, 0);
  B.nop(B0, 1);
  B.nop(B0, 2);
  B.term(B0, true);
  // Craft residence: only addresses 0..1 resident.
  BitVector Bits(4);
  Bits.set(0);
  Bits.set(1);
  B.MF.ResidentAt[X] = Bits;
  Classifier C = B.finish();
  EXPECT_EQ(C.classify(1, X).Kind, VarClass::Current);
  EXPECT_EQ(C.classify(2, X).Kind, VarClass::Nonresident);
}

TEST(Recovery, InvalidWhenValidityBitClear) {
  MachineBuilder B;
  VarId X = B.addVar("x");
  unsigned B0 = B.addBlock();
  B.assign(B0, X, 0);
  MRecovery R;
  R.K = MRecovery::Kind::InReg;
  R.R = Reg::phys(RegClass::Int, 9);
  B.deadMarker(B0, X, 1, R);
  B.nop(B0, 2);
  B.term(B0, true);
  // Recovery register valid only at the marker itself.
  BitVector Valid(4);
  Valid.set(1);
  B.MF.RecoveryValidAt[1] = Valid;
  Classifier C = B.finish();
  Classification CC = C.classify(B.addr(B0, 2), X);
  EXPECT_EQ(CC.Kind, VarClass::Noncurrent); // Not recoverable here.
  EXPECT_FALSE(CC.Recoverable);
}

TEST(Classifier, RecoveryDisabledByAblationSwitch) {
  MachineBuilder B;
  VarId X = B.addVar("x");
  unsigned B0 = B.addBlock();
  B.assign(B0, X, 0);
  MRecovery R;
  R.K = MRecovery::Kind::Imm;
  R.Imm = 5;
  B.deadMarker(B0, X, 1, R);
  B.nop(B0, 2);
  B.term(B0, true);
  B.MF.NumStmts = 16;
  B.MF.BlockAddr = {0};
  B.MF.StmtAddr.assign(16, -1);
  BitVector Bits(4, true);
  B.MF.ResidentAt[X] = Bits;
  B.syncVerifierTables();
  Classifier WithRecovery(B.MF, *B.Info, /*EnableRecovery=*/true);
  Classifier NoRecovery(B.MF, *B.Info, /*EnableRecovery=*/false);
  EXPECT_EQ(WithRecovery.classify(2, X).Kind, VarClass::Current);
  EXPECT_EQ(NoRecovery.classify(2, X).Kind, VarClass::Noncurrent);
}

//===----------------------------------------------------------------------===//
// Loops
//===----------------------------------------------------------------------===//

TEST(HoistReach, LoopSuspectOnFirstIterationRegion) {
  // preheader (hoisted) -> header -> body (marker) -> header | exit.
  // At the header, the hoisted instance reaches via the preheader (first
  // iteration) but is killed via the back edge: suspect.
  MachineBuilder B;
  VarId X = B.addVar("x");
  unsigned PH = B.addBlock(), H = B.addBlock(), Body = B.addBlock(),
           Exit = B.addBlock();
  B.edge(PH, H);
  B.edge(H, Body);
  B.edge(H, Exit);
  B.edge(Body, H);
  HoistKeyId K = B.key(X);
  B.assign(PH, X, 0);
  B.hoisted(PH, X, 4, K);
  B.term(PH);
  B.nop(H, 2); // <-- breakpoint at loop header.
  B.term(H);
  B.availMarker(Body, X, 4, K);
  B.term(Body);
  B.nop(Exit, 5); // <-- breakpoint after the loop.
  B.term(Exit, true);
  Classifier C = B.finish();

  EXPECT_EQ(C.classify(B.addr(H, 0), X).Kind, VarClass::Suspect);
  // After the loop: the marker killed the reach on the looping path, but
  // the zero-iteration path (header -> exit) still carries it: suspect.
  EXPECT_EQ(C.classify(B.addr(Exit, 0), X).Kind, VarClass::Suspect);
}
