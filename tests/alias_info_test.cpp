//===- tests/alias_info_test.cpp - May-alias analysis tests ----*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for AliasInfo: points-to roots born at AddrOf, escape
/// through calls/stores/returns, the store-kill refinement (a store
/// through a known pointer kills exactly its root set), and agreement
/// between the AnalysisManager-cached result and a fresh computation.
///
//===----------------------------------------------------------------------===//

#include "analysis/AliasInfo.h"
#include "analysis/AnalysisManager.h"
#include "ir/IRGen.h"

#include <gtest/gtest.h>

using namespace sldb;

namespace {

std::unique_ptr<IRModule> compile(std::string_view Src) {
  DiagnosticEngine Diags;
  auto M = compileToIR(Src, Diags);
  EXPECT_TRUE(M != nullptr) << Diags.str();
  return M;
}

VarId findVar(const IRModule &M, const std::string &Name) {
  for (VarId V = 0; V < M.Info->Vars.size(); ++V)
    if (M.Info->var(V).Name == Name)
      return V;
  return InvalidVar;
}

/// First instruction with opcode \p Op in \p F (nullptr if none).
const Instr *findInstr(const IRFunction &F, Opcode Op, unsigned Skip = 0) {
  for (const BasicBlock *B : F.Blocks)
    for (const Instr &I : B->Insts)
      if (I.Op == Op) {
        if (Skip == 0)
          return &I;
        --Skip;
      }
  return nullptr;
}

} // namespace

//===----------------------------------------------------------------------===//
// Points-to roots and store kills
//===----------------------------------------------------------------------===//

TEST(AliasInfo, StoreThroughPointerKillsExactlyItsRoot) {
  auto M = compile(R"(
    int main() {
      int x = 1;
      int y = 2;
      int* p = &x;
      *p = 7;
      return x + y;
    }
  )");
  IRFunction *F = M->findFunc("main");
  AliasInfo AI(*F, *M->Info);
  VarId X = findVar(*M, "x"), Y = findVar(*M, "y");
  ASSERT_NE(X, InvalidVar);
  ASSERT_NE(Y, InvalidVar);

  EXPECT_TRUE(AI.addressTaken(X));
  EXPECT_FALSE(AI.addressTaken(Y));

  const Instr *St = findInstr(*F, Opcode::Store);
  ASSERT_NE(St, nullptr);
  // The store's pointer has the known root set {x}: it kills x and
  // nothing else.
  EXPECT_TRUE(AI.mayClobber(*St, X));
  EXPECT_FALSE(AI.mayClobber(*St, Y));
}

TEST(AliasInfo, AddressOfInLoopStaysKilledEachIteration) {
  auto M = compile(R"(
    int main() {
      int acc = 0;
      int t = 3;
      int i = 0;
      while (i < 4) {
        int* p = &t;
        *p = i;
        acc = acc + t;
        i = i + 1;
      }
      return acc;
    }
  )");
  IRFunction *F = M->findFunc("main");
  AliasInfo AI(*F, *M->Info);
  VarId T = findVar(*M, "t"), Acc = findVar(*M, "acc");

  // The AddrOf sits inside the loop body; flow-insensitively the store
  // through it must still be seen as a def of t (and only t).
  const Instr *St = findInstr(*F, Opcode::Store);
  ASSERT_NE(St, nullptr);
  EXPECT_TRUE(AI.mayClobber(*St, T));
  EXPECT_FALSE(AI.mayClobber(*St, Acc));
  // t's address never reaches a call or memory: not escaped.
  EXPECT_FALSE(AI.escaped(T));
}

TEST(AliasInfo, ArrayElementStoreDoesNotKillScalars) {
  auto M = compile(R"(
    int main() {
      int v = 5;
      int a[4];
      a[0] = 1;
      a[1] = 2;
      a[2] = 3;
      a[3] = 4;
      int* p = a + 1;
      *p = v;
      return a[1] + v;
    }
  )");
  IRFunction *F = M->findFunc("main");
  AliasInfo AI(*F, *M->Info);
  VarId V = findVar(*M, "v"), A = findVar(*M, "a");
  ASSERT_NE(A, InvalidVar);

  // Every store in this function is rooted at the array: whether it
  // writes one element or another, it may clobber a[*] but never the
  // independent scalar v.
  unsigned NumStores = 0;
  for (const BasicBlock *B : F->Blocks)
    for (const Instr &I : B->Insts)
      if (I.Op == Opcode::Store) {
        ++NumStores;
        EXPECT_FALSE(AI.mayClobber(I, V));
      }
  EXPECT_GE(NumStores, 5u);

  // The pointer `p = a + 1` keeps the whole-array root: the analysis
  // does not pretend to know which element it addresses.
  const Instr *St = findInstr(*F, Opcode::Store, /*Skip=*/4);
  ASSERT_NE(St, nullptr);
  const PointsToSet *PT = AI.pointsTo(St->Ops[0]);
  if (PT) { // Ops[0]=addr unless the backend reordered; root must be a.
    EXPECT_FALSE(PT->Unknown);
    EXPECT_TRUE(PT->contains(A));
    EXPECT_FALSE(PT->contains(V));
  }
}

//===----------------------------------------------------------------------===//
// Escape through calls
//===----------------------------------------------------------------------===//

TEST(AliasInfo, EscapedToCallIsClobberedNonEscapedIsNot) {
  auto M = compile(R"(
    int mut(int* q) { *q = 9; return *q; }
    int main() {
      int e = 1;
      int k = 2;
      int* pe = &e;
      int* pk = &k;
      int r = mut(pe);
      return r + *pk + e + k;
    }
  )");
  IRFunction *F = M->findFunc("main");
  AliasInfo AI(*F, *M->Info);
  VarId E = findVar(*M, "e"), K = findVar(*M, "k");

  // Both addresses are taken, but only e's is passed to foreign code.
  EXPECT_TRUE(AI.addressTaken(E));
  EXPECT_TRUE(AI.addressTaken(K));
  EXPECT_TRUE(AI.escaped(E));
  EXPECT_FALSE(AI.escaped(K));

  const Instr *Call = findInstr(*F, Opcode::Call);
  ASSERT_NE(Call, nullptr);
  EXPECT_TRUE(AI.mayClobber(*Call, E));
  EXPECT_TRUE(AI.mayRead(*Call, E));
  EXPECT_FALSE(AI.mayClobber(*Call, K));
  EXPECT_FALSE(AI.mayRead(*Call, K));
}

TEST(AliasInfo, GlobalPointerAssignmentEscapes) {
  auto M = compile(R"(
    int* gp = 0;
    int peek() { return *gp; }
    int main() {
      int s = 4;
      gp = &s;
      int r = peek();
      return r + s;
    }
  )");
  IRFunction *F = M->findFunc("main");
  AliasInfo AI(*F, *M->Info);
  VarId S = findVar(*M, "s");
  // s's address is stored into a global pointer: any later call may
  // read or write s through it.
  EXPECT_TRUE(AI.escaped(S));
  const Instr *Call = findInstr(*F, Opcode::Call);
  ASSERT_NE(Call, nullptr);
  EXPECT_TRUE(AI.mayClobber(*Call, S));
  EXPECT_TRUE(AI.mayRead(*Call, S));
}

//===----------------------------------------------------------------------===//
// AnalysisManager integration
//===----------------------------------------------------------------------===//

TEST(AliasInfo, CachedResultMatchesFreshComputation) {
  auto M = compile(R"(
    int bump(int* q, int d) { *q = *q + d; return *q; }
    int main() {
      int x = 1;
      int y = 2;
      int a[3];
      a[0] = 0;
      a[1] = 1;
      a[2] = 2;
      int* p = &x;
      *p = bump(&y, a[1]);
      return x + y + a[2];
    }
  )");
  IRFunction *F = M->findFunc("main");
  AnalysisManager AM(*M->Info);
  AliasInfo &Cached = AM.getResult<AliasInfo>(*F);
  // Same object on repeated queries.
  EXPECT_EQ(&Cached, &AM.getResult<AliasInfo>(*F));

  AliasInfo Fresh(*F, *M->Info);
  for (VarId V = 0; V < M->Info->Vars.size(); ++V) {
    EXPECT_EQ(Cached.addressTaken(V), Fresh.addressTaken(V)) << "var " << V;
    EXPECT_EQ(Cached.escaped(V), Fresh.escaped(V)) << "var " << V;
  }
  for (const BasicBlock *B : F->Blocks)
    for (const Instr &I : B->Insts)
      for (VarId V = 0; V < M->Info->Vars.size(); ++V) {
        EXPECT_EQ(Cached.mayClobber(I, V), Fresh.mayClobber(I, V));
        EXPECT_EQ(Cached.mayRead(I, V), Fresh.mayRead(I, V));
      }
}
