//===- tests/recovery_test.cpp - §2.5 recovery vs the O0 oracle -*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
// Paper §2.5 / Figure 4: when dead-code elimination removes an
// assignment whose value still exists elsewhere (a constant, another
// variable's location, or a strength-reduced temporary), the debugger
// *recovers* the expected value and shows the variable as Current
// instead of warning.  Each case here is validated against the
// unoptimized-build oracle: the recovered value must equal the value an
// unoptimized execution would have produced, at every paired stop.
//
//===----------------------------------------------------------------------===//

#include "codegen/ISel.h"
#include "core/Debugger.h"
#include "fuzz/DiffCheck.h"
#include "fuzz/Oracle.h"
#include "ir/IRGen.h"
#include "opt/Pass.h"

#include <gtest/gtest.h>

using namespace sldb;

namespace {

std::string violationText(const std::vector<Violation> &V) {
  std::string S;
  for (const Violation &Viol : V)
    S += Viol.str() + "\n";
  return S;
}

/// Runs the lockstep oracle (both codegen configurations) and asserts the
/// run compiled, paired, and produced zero soundness violations.
/// Returns the promote-on result for further inspection.
LockstepResult soundLockstep(const char *Src) {
  for (bool Promote : {false, true}) {
    LockstepOptions O;
    O.Promote = Promote;
    LockstepResult R = runLockstep(Src, O);
    EXPECT_TRUE(R.Compiled) << R.CompileError;
    EXPECT_TRUE(R.PairError.empty()) << R.PairError;
    std::vector<Violation> V = checkSoundness(R);
    EXPECT_TRUE(V.empty()) << violationText(V);
    if (Promote)
      return R;
  }
  return {};
}

/// The observation of variable \p Name at the first stop on \p Stmt.
[[maybe_unused]] const VarObservation *
findObservation(const LockstepResult &R, StmtId Stmt,
                const std::string &Name) {
  for (const StopObservation &S : R.Stops) {
    if (S.Stmt != Stmt)
      continue;
    for (const VarObservation &VO : S.Vars)
      if (VO.Expected.Name == Name)
        return &VO;
  }
  return nullptr;
}

} // namespace

//===----------------------------------------------------------------------===//
// Figure 4: the eliminated copy's value survives in another variable.
//===----------------------------------------------------------------------===//

// `x = s` is bypassed by copy propagation (print uses s directly), the
// now-dead assignment is eliminated, and the dead marker carries the
// recovery "x's expected value is in s's location".  s is a loop
// accumulator so no constant folding can interfere.
TEST(Recovery, CopyRecoveryFromOtherVariable) {
  const char *Src = R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 4; i = i + 1) { s = s + i; }
      int x = s;
      print(x);
      return 0;
    }
  )";
  LockstepResult R = soundLockstep(Src);

  // Statements: s0 `int s`, s1 for-init, ... `int x = s` and `print(x)`
  // are the last two statements before `return`.  Locate by name at the
  // print stop instead of hard-coding ids.
  const VarObservation *Seen = nullptr;
  for (const StopObservation &S : R.Stops)
    for (const VarObservation &VO : S.Vars)
      if (VO.Expected.Name == "x" && VO.Opt.Class.Recoverable)
        Seen = &VO;
  ASSERT_NE(Seen, nullptr) << "x was never classified as recoverable";
  EXPECT_EQ(Seen->Opt.Class.Kind, VarClass::Current);
  ASSERT_TRUE(Seen->Opt.HasValue);
  ASSERT_TRUE(Seen->Expected.HasValue);
  EXPECT_EQ(Seen->Opt.IntValue, Seen->Expected.IntValue)
      << "recovered value differs from the unoptimized semantics";
  EXPECT_EQ(Seen->Opt.IntValue, 6) << "0+1+2+3";
}

//===----------------------------------------------------------------------===//
// Constant recovery: the eliminated assignment's RHS was a constant.
//===----------------------------------------------------------------------===//

TEST(Recovery, ConstantRecoveryAfterPropagation) {
  const char *Src = R"(
    int main() {
      int x = 5;
      int y = x + 2;
      print(y);
      return 0;
    }
  )";
  // Constant propagation folds y = 7, x = 5 dies, and the marker keeps
  // the immediate.  Direct classifier check at the print stop (s2):
  auto M = [&] {
    DiagnosticEngine Diags;
    auto Mod = compileToIR(Src, Diags);
    EXPECT_TRUE(Mod != nullptr) << Diags.str();
    return Mod;
  }();
  runPipeline(*M, LockstepOptions::lockstepOpts());
  CodegenOptions CG;
  MachineModule MM = compileToMachine(*M, CG);
  const MachineFunction &MF = *MM.findFunc("main");
  Classifier C(MF, *MM.Info);

  VarId X = InvalidVar;
  for (VarId V : MM.Info->func(MM.Info->findFunc("main")).Locals)
    if (MM.Info->var(V).Name == "x")
      X = V;
  ASSERT_NE(X, InvalidVar);
  ASSERT_GE(MF.StmtAddr.size(), 3u);
  ASSERT_GE(MF.StmtAddr[2], 0);
  Classification At = C.classify(static_cast<std::uint32_t>(MF.StmtAddr[2]), X);
  EXPECT_EQ(At.Kind, VarClass::Current);
  EXPECT_TRUE(At.Recoverable);
  EXPECT_EQ(At.Recovery.K, MRecovery::Kind::Imm);
  EXPECT_EQ(At.Recovery.Imm, 5);

  // And the oracle agrees end-to-end in both codegen configurations.
  soundLockstep(Src);
}

//===----------------------------------------------------------------------===//
// Strength reduction: a source IV recovered from the SR temporary.
//===----------------------------------------------------------------------===//

// `j = i * 4` is strength-reduced into an additive temporary; the
// then-redundant source assignment to j is eliminated and the dead
// marker carries "j's expected value is in the SR temporary".  (The
// basic IV i itself survives: its update `i = i + 1` keeps itself live
// under plain liveness, so only derived variables die.)  The oracle
// checks the recovered value at every in-loop stop, iteration by
// iteration — each with a DIFFERENT expected value, so a recovery that
// merely replays a stale snapshot would fail.
TEST(Recovery, StrengthReducedRecoveryFromSRTemp) {
  const char *Src = R"(
    int main() {
      int t = 0;
      for (int i = 0; i < 8; i = i + 1) {
        int j = i * 4;
        t = t + j;
      }
      print(t);
      return 0;
    }
  )";
  LockstepResult R = soundLockstep(Src);
  EXPECT_GT(R.NumSRRecords, 0u) << "strength reduction did not fire";

  unsigned RecoveredStops = 0;
  bool SawNonzero = false;
  for (const StopObservation &S : R.Stops)
    for (const VarObservation &VO : S.Vars)
      if (VO.Expected.Name == "j" && VO.Opt.Class.Recoverable &&
          VO.Opt.Class.Kind == VarClass::Current && VO.Opt.HasValue &&
          VO.Expected.HasValue &&
          VO.Opt.IntValue == VO.Expected.IntValue) {
        ++RecoveredStops;
        if (VO.Opt.IntValue != 0)
          SawNonzero = true;
      }
  EXPECT_GT(RecoveredStops, 4u)
      << "expected j to be recovered across multiple loop iterations";
  EXPECT_TRUE(SawNonzero) << "recovery never tracked the moving SR temp";
}

//===----------------------------------------------------------------------===//
// Negative case: recovery must be DROPPED once the source is overwritten.
//===----------------------------------------------------------------------===//

// The eliminated `x = s` records recovery-from-s, but s is reassigned
// before the stop: recovering would show 14 where the source semantics
// say 6.  The classifier must fall back to an honest warning
// (conservative is OK; recovery here would be unsound).  s is a loop
// accumulator, so copy propagation cannot redirect the recovery to an
// untouched variable and constant propagation cannot fold it away.
TEST(Recovery, TaintedRecoveryFallsBackToWarning) {
  const char *Src = R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 2; i = i + 1) { s = s + 3; }
      int x = s;
      s = s + 8;
      print(s);
      return 0;
    }
  )";
  LockstepResult R = soundLockstep(Src);

  // At the print stop, x must not be presented as Current: its only
  // recovery source was overwritten.
  const VarObservation *AtPrint = nullptr;
  for (const StopObservation &S : R.Stops)
    for (const VarObservation &VO : S.Vars)
      if (VO.Expected.Name == "x")
        AtPrint = &VO; // last stop observing x == the print
  ASSERT_NE(AtPrint, nullptr);
  EXPECT_NE(AtPrint->Opt.Class.Kind, VarClass::Current)
      << "recovery from an overwritten source must be invalidated";
}
