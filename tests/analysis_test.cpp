//===- tests/analysis_test.cpp - Data-flow framework tests -----*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/CFGContext.h"
#include "analysis/Dataflow.h"
#include "analysis/Dominators.h"
#include "analysis/InstrInfo.h"
#include "analysis/AliasInfo.h"
#include "analysis/Liveness.h"
#include "analysis/LoopInfo.h"
#include "analysis/ReachingDefs.h"
#include "ir/IRGen.h"
#include "ir/IRPrinter.h"

#include <gtest/gtest.h>

using namespace sldb;

namespace {

std::unique_ptr<IRModule> compile(std::string_view Src) {
  DiagnosticEngine Diags;
  auto M = compileToIR(Src, Diags);
  EXPECT_TRUE(M != nullptr) << Diags.str();
  return M;
}

/// Finds the tracked index of a named variable.
unsigned varIdx(const IRModule &M, const ValueIndex &VI,
                const std::string &Name) {
  for (VarId V = 0; V < M.Info->Vars.size(); ++V)
    if (M.Info->var(V).Name == Name)
      return VI.varIndex(V);
  return ~0u;
}

} // namespace

TEST(CFGContext, IndicesAndEdges) {
  auto M = compile(R"(
    int main() {
      int x = 0;
      if (x) { x = 1; } else { x = 2; }
      return x;
    }
  )");
  IRFunction *F = M->findFunc("main");
  CFGContext CFG(*F);
  EXPECT_EQ(CFG.numBlocks(), F->Blocks.size());
  EXPECT_EQ(CFG.indexOf(F->entry()), 0u);
  // Edge symmetry.
  for (unsigned B = 0; B < CFG.numBlocks(); ++B)
    for (unsigned S : CFG.succs(B)) {
      bool Found = false;
      for (unsigned P : CFG.preds(S))
        Found |= P == B;
      EXPECT_TRUE(Found);
    }
  EXPECT_EQ(CFG.exits().size(), 1u);
}

TEST(Dominators, DiamondAndLoop) {
  auto M = compile(R"(
    int main() {
      int x = 0;
      if (x) { x = 1; } else { x = 2; }
      while (x < 5) { x = x + 1; }
      return x;
    }
  )");
  IRFunction *F = M->findFunc("main");
  CFGContext CFG(*F);
  Dominators Dom(CFG);
  PostDominators PDom(CFG);

  // Entry dominates everything reachable.
  for (unsigned B = 0; B < CFG.numBlocks(); ++B)
    EXPECT_TRUE(Dom.dominates(0, B)) << B;
  // Every block dominates itself.
  for (unsigned B = 0; B < CFG.numBlocks(); ++B) {
    EXPECT_TRUE(Dom.dominates(B, B));
    EXPECT_TRUE(PDom.postDominates(B, B));
  }
  // The exit post-dominates the entry.
  ASSERT_EQ(CFG.exits().size(), 1u);
  EXPECT_TRUE(PDom.postDominates(CFG.exits()[0], 0));
  // Neither branch arm dominates the join: find the join (2 preds).
  for (unsigned B = 0; B < CFG.numBlocks(); ++B)
    if (CFG.preds(B).size() == 2)
      for (unsigned P : CFG.preds(B))
        if (CFG.preds(P).size() == 1 && P != 0) {
          EXPECT_FALSE(Dom.dominates(P, B) && PDom.postDominates(P, B));
        }
}

TEST(Dataflow, ForwardUnionReachesEverything) {
  auto M = compile(R"(
    int main() {
      int x = 1;
      while (x < 10) x = x + 1;
      return x;
    }
  )");
  IRFunction *F = M->findFunc("main");
  CFGContext CFG(*F);
  DataflowProblem P;
  P.Dir = FlowDir::Forward;
  P.Meet = FlowMeet::Union;
  P.init(CFG, 1);
  P.Gen[0].set(0); // Fact born in entry.
  DataflowResult R = solveDataflow(CFG, P);
  for (unsigned B = 0; B < CFG.numBlocks(); ++B)
    if (!CFG.preds(B).empty() || B == 0) {
      EXPECT_TRUE(R.Out[B].test(0)) << B;
    }
}

TEST(Dataflow, IntersectionRequiresAllPaths) {
  auto M = compile(R"(
    int main() {
      int x = 0;
      if (x) { x = 1; } else { x = 2; }
      return x;
    }
  )");
  IRFunction *F = M->findFunc("main");
  CFGContext CFG(*F);

  // Fact generated on only one branch arm must not intersect-reach the
  // join, but a fact generated before the branch must.
  DataflowProblem P;
  P.Dir = FlowDir::Forward;
  P.Meet = FlowMeet::Intersect;
  P.init(CFG, 2);
  P.Gen[0].set(0);
  // Find a branch arm (single pred == entry).
  unsigned Arm = ~0u;
  for (unsigned B = 1; B < CFG.numBlocks(); ++B)
    if (CFG.preds(B).size() == 1 && CFG.preds(B)[0] == 0)
      Arm = B;
  ASSERT_NE(Arm, ~0u);
  P.Gen[Arm].set(1);
  DataflowResult R = solveDataflow(CFG, P);
  unsigned Join = ~0u;
  for (unsigned B = 1; B < CFG.numBlocks(); ++B)
    if (CFG.preds(B).size() == 2)
      Join = B;
  ASSERT_NE(Join, ~0u);
  EXPECT_TRUE(R.In[Join].test(0));
  EXPECT_FALSE(R.In[Join].test(1));
}

TEST(Liveness, DeadAfterLastUse) {
  auto M = compile(R"(
    int main() {
      int a = 1;
      int b = a + 2;
      int c = b * 3;
      return c;
    }
  )");
  IRFunction *F = M->findFunc("main");
  CFGContext CFG(*F);
  ValueIndex VI(*F, *M->Info);
  AliasInfo AI(*F, *M->Info);
  Liveness LV(CFG, VI, *M->Info, AI);

  unsigned AIdx = varIdx(*M, VI, "a");
  ASSERT_NE(AIdx, ~0u);
  // `a` is dead at function exit.
  unsigned Exit = CFG.exits()[0];
  EXPECT_FALSE(LV.liveOut(Exit).test(AIdx));
}

TEST(Liveness, LiveAroundLoop) {
  auto M = compile(R"(
    int main() {
      int s = 0;
      int i = 0;
      while (i < 10) { s = s + i; i = i + 1; }
      return s;
    }
  )");
  IRFunction *F = M->findFunc("main");
  CFGContext CFG(*F);
  ValueIndex VI(*F, *M->Info);
  AliasInfo AI(*F, *M->Info);
  Liveness LV(CFG, VI, *M->Info, AI);
  unsigned SIdx = varIdx(*M, VI, "s");
  unsigned IIdx = varIdx(*M, VI, "i");
  // Both are live into the loop condition block (the block with 2 preds).
  for (unsigned B = 0; B < CFG.numBlocks(); ++B)
    if (CFG.preds(B).size() == 2) {
      EXPECT_TRUE(LV.liveIn(B).test(SIdx));
      EXPECT_TRUE(LV.liveIn(B).test(IIdx));
    }
}

TEST(Liveness, GlobalsLiveAtExit) {
  auto M = compile(R"(
    int g = 0;
    int main() { g = 5; return 0; }
  )");
  IRFunction *F = M->findFunc("main");
  CFGContext CFG(*F);
  ValueIndex VI(*F, *M->Info);
  AliasInfo AI(*F, *M->Info);
  Liveness LV(CFG, VI, *M->Info, AI);
  unsigned GIdx = varIdx(*M, VI, "g");
  ASSERT_NE(GIdx, ~0u);
  EXPECT_TRUE(LV.liveOut(CFG.exits()[0]).test(GIdx));
}

TEST(ReachingDefs, SingleDefReachesUse) {
  auto M = compile(R"(
    int main() {
      int x = 5;
      int y = x + 1;
      return y;
    }
  )");
  IRFunction *F = M->findFunc("main");
  CFGContext CFG(*F);
  ValueIndex VI(*F, *M->Info);
  AliasInfo AI(*F, *M->Info);
  ReachingDefs RD(CFG, VI, *M->Info, AI);

  unsigned XIdx = varIdx(*M, VI, "x");
  // Walk the entry block: at the `y = x + 1` instruction, exactly one real
  // def of x reaches.
  BitVector Reach = RD.reachIn(0);
  for (const Instr &I : F->entry()->Insts) {
    if (I.Op == Opcode::Add && I.IsSourceAssign) {
      BitVector DefsOfX = RD.defsOfValue(XIdx);
      DefsOfX &= Reach;
      unsigned RealDefs = 0;
      for (unsigned D : DefsOfX)
        if (!RD.isUnknownDef(D))
          ++RealDefs;
      EXPECT_EQ(RealDefs, 1u);
      // The unknown def of x must be killed by `x = 5`.
      EXPECT_FALSE(DefsOfX.test(RD.unknownDef(XIdx)));
    }
    RD.transfer(I, Reach);
  }
}

TEST(ReachingDefs, TwoDefsMergeAtJoin) {
  auto M = compile(R"(
    int main() {
      int x = 0;
      if (x == 0) { x = 1; } else { x = 2; }
      return x;
    }
  )");
  IRFunction *F = M->findFunc("main");
  CFGContext CFG(*F);
  ValueIndex VI(*F, *M->Info);
  AliasInfo AI(*F, *M->Info);
  ReachingDefs RD(CFG, VI, *M->Info, AI);
  unsigned XIdx = varIdx(*M, VI, "x");
  unsigned Join = ~0u;
  for (unsigned B = 0; B < CFG.numBlocks(); ++B)
    if (CFG.preds(B).size() == 2)
      Join = B;
  ASSERT_NE(Join, ~0u);
  BitVector DefsOfX = RD.defsOfValue(XIdx);
  DefsOfX &= RD.reachIn(Join);
  unsigned RealDefs = 0;
  for (unsigned D : DefsOfX)
    if (!RD.isUnknownDef(D))
      ++RealDefs;
  EXPECT_EQ(RealDefs, 2u);
}

TEST(ReachingDefs, CallClobbersAddressTaken) {
  auto M = compile(R"(
    void mut(int* p) { *p = 9; }
    int main() {
      int x = 1;
      mut(&x);
      return x;
    }
  )");
  IRFunction *F = M->findFunc("main");
  CFGContext CFG(*F);
  ValueIndex VI(*F, *M->Info);
  AliasInfo AI(*F, *M->Info);
  ReachingDefs RD(CFG, VI, *M->Info, AI);
  unsigned XIdx = varIdx(*M, VI, "x");
  // After the call, the unknown def of x must reach the return.
  BitVector Reach = RD.reachIn(0);
  bool SawCall = false;
  for (const Instr &I : F->entry()->Insts) {
    RD.transfer(I, Reach);
    if (I.Op == Opcode::Call)
      SawCall = true;
    if (SawCall && I.Op == Opcode::Call) {
      EXPECT_TRUE(Reach.test(RD.unknownDef(XIdx)));
    }
  }
}

TEST(LoopInfo, FindsNaturalLoop) {
  auto M = compile(R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 4; i = i + 1) {
        for (int j = 0; j < 4; j = j + 1) s = s + 1;
      }
      return s;
    }
  )");
  IRFunction *F = M->findFunc("main");
  CFGContext CFG(*F);
  Dominators Dom(CFG);
  LoopInfo LI(CFG, Dom);
  ASSERT_EQ(LI.loops().size(), 2u);
  // One loop contains the other.
  const Loop &A = LI.loops()[0];
  const Loop &B = LI.loops()[1];
  const Loop &Outer = A.Blocks.count() > B.Blocks.count() ? A : B;
  const Loop &Inner = A.Blocks.count() > B.Blocks.count() ? B : A;
  EXPECT_TRUE(Outer.contains(Inner.Header));
  EXPECT_FALSE(Inner.contains(Outer.Header));
  EXPECT_FALSE(Inner.Latches.empty());
  EXPECT_FALSE(Outer.ExitBlocks.empty());
}

TEST(LoopInfo, PreheaderCreation) {
  auto M = compile(R"(
    int main() {
      int i = 0;
      while (i < 10) i = i + 1;
      return i;
    }
  )");
  IRFunction *F = M->findFunc("main");
  CFGContext CFG(*F);
  Dominators Dom(CFG);
  LoopInfo LI(CFG, Dom);
  ASSERT_EQ(LI.loops().size(), 1u);
  bool Changed = false;
  BasicBlock *PH = getOrCreatePreheader(CFG, LI.loops()[0], Changed);
  ASSERT_NE(PH, nullptr);
  // Whether found or created, the preheader's only successor is the header.
  EXPECT_EQ(PH->succs().size(), 1u);
  EXPECT_EQ(PH->succs()[0], CFG.block(LI.loops()[0].Header));
}

TEST(InstrInfo, AddrOfIsNotAUse) {
  auto M = compile(R"(
    int main() {
      int x = 1;
      int* p = &x;
      return *p;
    }
  )");
  IRFunction *F = M->findFunc("main");
  for (const auto &B : F->Blocks)
    for (const Instr &I : B->Insts)
      if (I.Op == Opcode::AddrOf) {
        EXPECT_TRUE(instrUses(I).empty());
      }
}

TEST(InstrInfo, ValueIndexCoversVarsAndTemps) {
  auto M = compile(R"(
    int main() {
      int a = 1;
      int b = a * 2 + 3;
      return b;
    }
  )");
  IRFunction *F = M->findFunc("main");
  ValueIndex VI(*F, *M->Info);
  EXPECT_GE(VI.size(), 2u);
  // Vars occupy the low indices.
  VarId V;
  EXPECT_TRUE(VI.isVarIndex(0, V));
}
