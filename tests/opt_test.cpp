//===- tests/opt_test.cpp - Optimizer + bookkeeping tests ------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/IRGen.h"
#include "ir/IRPrinter.h"
#include "ir/Interp.h"
#include "ir/Verifier.h"
#include "opt/Pass.h"

#include <gtest/gtest.h>

#include <random>

using namespace sldb;

namespace {

std::unique_ptr<IRModule> compile(std::string_view Src) {
  DiagnosticEngine Diags;
  auto M = compileToIR(Src, Diags);
  EXPECT_TRUE(M != nullptr) << Diags.str();
  return M;
}

void expectVerifies(IRModule &M) {
  std::vector<std::string> Errors;
  bool OK = verifyModule(M, Errors);
  std::string Joined;
  for (auto &E : Errors)
    Joined += E + "\n";
  EXPECT_TRUE(OK) << Joined << printModule(M);
}

/// Compiles twice and checks that optimization preserves observable
/// behavior (output, exit value, no new traps).
void differential(std::string_view Src,
                  OptOptions Opts = OptOptions::all()) {
  auto M0 = compile(Src);
  auto M2 = compile(Src);
  ASSERT_TRUE(M0 && M2);
  runPipeline(*M2, Opts);
  expectVerifies(*M2);
  ExecResult R0 = interpretIR(*M0);
  ExecResult R2 = interpretIR(*M2);
  EXPECT_FALSE(R0.Trapped) << R0.TrapMsg;
  EXPECT_FALSE(R2.Trapped) << R2.TrapMsg << "\n" << printModule(*M2);
  EXPECT_EQ(R0.outputText(), R2.outputText()) << printModule(*M2);
  EXPECT_EQ(R0.ExitValue, R2.ExitValue) << printModule(*M2);
}

struct InstrCounts {
  unsigned Hoisted = 0, Sunk = 0, DeadMarkers = 0, AvailMarkers = 0,
           RecoveryMarkers = 0;
};

InstrCounts countAnnotations(const IRModule &M) {
  InstrCounts C;
  for (const auto &F : M.Funcs)
    for (const auto &B : F->Blocks)
      for (const Instr &I : B->Insts) {
        if (I.IsHoisted && I.IsSourceAssign)
          ++C.Hoisted;
        if (I.IsSunk)
          ++C.Sunk;
        if (I.Op == Opcode::DeadMarker) {
          ++C.DeadMarkers;
          if (!I.Recovery.isNone())
            ++C.RecoveryMarkers;
        }
        if (I.Op == Opcode::AvailMarker)
          ++C.AvailMarkers;
      }
  return C;
}

} // namespace

//===----------------------------------------------------------------------===//
// Individual passes
//===----------------------------------------------------------------------===//

TEST(LocalSimplify, FoldsConstants) {
  auto M = compile("int main() { int x = 2 + 3 * 4; return x; }");
  auto P = createLocalSimplifyPass();
  // IRGen already folds nothing; two rounds fold the tree bottom-up.
  P->run(*M->Funcs[0], *M);
  P->run(*M->Funcs[0], *M);
  // After const prop + folding the add of constants becomes a copy.
  auto CP = createConstantPropagationPass();
  CP->run(*M->Funcs[0], *M);
  P->run(*M->Funcs[0], *M);
  ExecResult R = interpretIR(*M);
  EXPECT_EQ(R.ExitValue, 14);
}

TEST(ConstProp, PropagatesAcrossBlocks) {
  auto M = compile(R"(
    int main() {
      int x = 5;
      int y;
      if (x > 0) { y = x + 1; } else { y = x - 1; }
      return y;
    }
  )");
  auto CP = createConstantPropagationPass();
  bool Changed = CP->run(*M->Funcs[0], *M);
  EXPECT_TRUE(Changed);
  // Some use of x became the constant 5.
  bool FoundConst = false;
  for (const auto &B : M->Funcs[0]->Blocks)
    for (const Instr &I : B->Insts)
      for (const Value &Op : I.Ops)
        if (Op.isConstInt() && Op.IntVal == 5)
          FoundConst = true;
  EXPECT_TRUE(FoundConst);
  ExecResult R = interpretIR(*M);
  EXPECT_EQ(R.ExitValue, 6);
}

TEST(ConstProp, DoesNotMergeDifferentConstants) {
  auto M = compile(R"(
    int main() {
      int c = 1;
      int x;
      if (c) { x = 1; } else { x = 2; }
      int y = x + 0;
      return y;
    }
  )");
  ExecResult Before = interpretIR(*M);
  auto CP = createConstantPropagationPass();
  CP->run(*M->Funcs[0], *M);
  ExecResult After = interpretIR(*M);
  EXPECT_EQ(Before.ExitValue, After.ExitValue);
}

TEST(CopyProp, PropagatesThroughChain) {
  differential(R"(
    int main() {
      int a = 10;
      int b = a;
      int c = b;
      print(c);
      return c;
    }
  )");
}

TEST(CopyProp, RespectsRedefinition) {
  differential(R"(
    int main() {
      int a = 1;
      int b = a;
      a = 2;
      print(b);  // must still print 1
      print(a);
      return 0;
    }
  )");
}

TEST(DCE, DeadAssignmentLeavesMarker) {
  auto M = compile(R"(
    int main() {
      int a = 7;
      int b = a + 1;
      int c = a;
      return a;
    }
  )");
  auto DCE = createDeadCodeEliminationPass();
  EXPECT_TRUE(DCE->run(*M->Funcs[0], *M));
  InstrCounts C = countAnnotations(*M);
  EXPECT_EQ(C.DeadMarkers, 2u); // b and c.
  EXPECT_GE(C.RecoveryMarkers, 1u); // c = a recoverable from a.
  ExecResult R = interpretIR(*M);
  EXPECT_EQ(R.ExitValue, 7);
}

TEST(DCE, HoistedCopyDeletedWithoutMarker) {
  auto M = compile("int main() { int a = 1; int b = a; return a; }");
  // Mark the b-assignment as a compiler-inserted sunk copy; DCE must then
  // delete it silently.
  for (auto &B : M->Funcs[0]->Blocks)
    for (Instr &I : B->Insts)
      if (I.IsSourceAssign && I.Dest.isVar() &&
          M->Info->var(I.Dest.Id).Name == "b")
        I.IsSunk = true;
  auto DCE = createDeadCodeEliminationPass();
  DCE->run(*M->Funcs[0], *M);
  EXPECT_EQ(countAnnotations(*M).DeadMarkers, 0u);
}

TEST(DCE, KeepsSideEffects) {
  auto M = compile(R"(
    int f() { print(99); return 1; }
    int main() {
      int unused = f();   // call must survive
      return 0;
    }
  )");
  auto DCE = createDeadCodeEliminationPass();
  DCE->run(*M->Funcs[1], *M);
  ExecResult R = interpretIR(*M);
  EXPECT_EQ(R.outputText(), "99\n");
}

TEST(CSE, EliminatesRedundantExpression) {
  auto M = compile(R"(
    int main() {
      int y = 2; int z = 3;
      int x = y + z;
      int w = y + z;
      print(x); print(w);
      return 0;
    }
  )");
  auto CSE = createGlobalCSEPass();
  EXPECT_TRUE(CSE->run(*M->Funcs[0], *M));
  expectVerifies(*M);
  // The second y+z computation is gone.
  unsigned Adds = 0;
  for (const auto &B : M->Funcs[0]->Blocks)
    for (const Instr &I : B->Insts)
      if (I.Op == Opcode::Add)
        ++Adds;
  EXPECT_EQ(Adds, 1u);
  ExecResult R = interpretIR(*M);
  EXPECT_EQ(R.outputText(), "5\n5\n");
}

TEST(CSE, SelfKillingExpressionNotAvailable) {
  differential(R"(
    int main() {
      int x = 3;
      x = x + 1;
      x = x + 1;
      print(x);  // 5, not 4
      return 0;
    }
  )");
  auto M = compile(R"(
    int main() {
      int x = 3;
      x = x + 1;
      x = x + 1;
      print(x);
      return 0;
    }
  )");
  auto CSE = createGlobalCSEPass();
  CSE->run(*M->Funcs[0], *M);
  ExecResult R = interpretIR(*M);
  EXPECT_EQ(R.outputText(), "5\n");
}

//===----------------------------------------------------------------------===//
// PRE: the paper's Figure 2
//===----------------------------------------------------------------------===//

namespace {
const char *Figure2Program = R"(
  int main() {
    int u = 7; int v = 3; int y = 2; int z = 4;
    int x = u - v;        // E0
    if (u > v) {
      x = y + z;          // E1
    } else {
      u = u + 1;          // B2 (hoisted E3 is inserted here)
    }
    x = y + z;            // E2: partially redundant
    print(x);
    print(u);
    return 0;
  }
)";
} // namespace

TEST(PRE, Figure2HoistsAndMarks) {
  auto M = compile(Figure2Program);
  auto PRE = createPartialRedundancyElimPass();
  EXPECT_TRUE(PRE->run(*M->Funcs[0], *M)) << printModule(*M);
  expectVerifies(*M);
  InstrCounts C = countAnnotations(*M);
  EXPECT_EQ(C.Hoisted, 1u) << printModule(*M);
  EXPECT_EQ(C.AvailMarkers, 1u) << printModule(*M);
  // The hoisted instance and the marker share the hoist key.
  HoistKeyId HK = InvalidHoistKey, MK = InvalidHoistKey;
  for (const auto &B : M->Funcs[0]->Blocks)
    for (const Instr &I : B->Insts) {
      if (I.IsHoisted && I.IsSourceAssign)
        HK = I.HoistKey;
      if (I.Op == Opcode::AvailMarker)
        MK = I.HoistKey;
    }
  EXPECT_EQ(HK, MK);
  EXPECT_NE(HK, InvalidHoistKey);
  ExecResult R = interpretIR(*M);
  EXPECT_EQ(R.outputText(), "6\n7\n");
}

TEST(PRE, Figure2Differential) { differential(Figure2Program); }

TEST(PRE, DoesNotHoistPastUse) {
  // A use of x between the insertion point and the redundant occurrence
  // must block the transformation.
  auto M = compile(R"(
    int main() {
      int u = 7; int v = 3; int y = 2; int z = 4;
      int x = u - v;
      if (u > v) {
        x = y + z;
      } else {
        print(x);        // reads x: hoisting into this block is illegal
      }
      x = y + z;
      print(x);
      return 0;
    }
  )");
  ExecResult Before = interpretIR(*M);
  auto PRE = createPartialRedundancyElimPass();
  PRE->run(*M->Funcs[0], *M);
  expectVerifies(*M);
  ExecResult After = interpretIR(*M);
  EXPECT_EQ(Before.outputText(), After.outputText()) << printModule(*M);
}

TEST(PRE, FullRedundancyDeletedWithoutInsertion) {
  auto M = compile(R"(
    int main() {
      int y = 2; int z = 3;
      int x = y + z;
      print(x);
      x = y + z;      // fully redundant
      print(x);
      return 0;
    }
  )");
  auto PRE = createPartialRedundancyElimPass();
  PRE->run(*M->Funcs[0], *M);
  expectVerifies(*M);
  InstrCounts C = countAnnotations(*M);
  EXPECT_EQ(C.Hoisted, 0u) << printModule(*M);
  EXPECT_EQ(C.AvailMarkers, 1u) << printModule(*M);
  ExecResult R = interpretIR(*M);
  EXPECT_EQ(R.outputText(), "5\n5\n");
}

TEST(PRE, LoopInvariantAssignmentInDoWhile) {
  // In a do-while the body executes at least once, so the invariant
  // assignment is down-safe at the preheader and PRE hoists it out.
  differential(R"(
    int main() {
      int y = 2; int z = 3; int i = 0;
      int x = 0;
      do {
        x = y + z;
        i = i + 1;
      } while (i < 10);
      print(x); print(i);
      return 0;
    }
  )");
}

//===----------------------------------------------------------------------===//
// PDE: the paper's Figure 3
//===----------------------------------------------------------------------===//

namespace {
const char *Figure3Program = R"(
  int main() {
    int u = 5; int v = 2; int y = 3; int z = 4;
    int x = y + z;       // E0: partially dead (B1 path kills it)
    if (u > v) {
      x = u - v;         // E1
      print(x);
    } else {
      print(x);          // uses E0's value
    }
    return 0;
  }
)";
} // namespace

TEST(PDE, Figure3SinksAndMarks) {
  auto M = compile(Figure3Program);
  auto PDE = createPartialDeadCodeElimPass();
  EXPECT_TRUE(PDE->run(*M->Funcs[0], *M)) << printModule(*M);
  expectVerifies(*M);
  InstrCounts C = countAnnotations(*M);
  // Both `x = y + z` and (transitively) `y = 3` are partially dead; the
  // pass may sink either or both.
  EXPECT_GE(C.Sunk, 1u) << printModule(*M);
  EXPECT_GE(C.DeadMarkers, 1u) << printModule(*M);
  EXPECT_EQ(C.Sunk, C.DeadMarkers) << printModule(*M);
  // The sunk x-assignment lands in the branch that reads x.
  bool SunkX = false;
  for (const auto &B : M->Funcs[0]->Blocks)
    for (const Instr &I : B->Insts)
      if (I.IsSunk && I.Dest.isVar() &&
          M->Info->var(I.Dest.Id).Name == "x")
        SunkX = true;
  EXPECT_TRUE(SunkX) << printModule(*M);
  ExecResult R = interpretIR(*M);
  EXPECT_EQ(R.outputText(), "3\n");
}

TEST(PDE, Figure3Differential) { differential(Figure3Program); }

TEST(PDE, NoSinkWhenLiveEverywhere) {
  auto M = compile(R"(
    int main() {
      int y = 1; int z = 2;
      int x = y + z;
      if (y < z) { print(x); } else { print(x + 1); }
      return 0;
    }
  )");
  auto PDE = createPartialDeadCodeElimPass();
  EXPECT_FALSE(PDE->run(*M->Funcs[0], *M)) << printModule(*M);
}

TEST(PDE, SinkOntoSplitEdge) {
  // The live successor is a join block with several predecessors: the
  // sunk copy must land on a split edge, not in the join.
  differential(R"(
    int main() {
      int a = 1; int b = 2;
      int x = a + b;
      if (a < b) {
        if (b > 0) { x = 9; }
        print(x);
      }
      print(a);
      return 0;
    }
  )");
}

//===----------------------------------------------------------------------===//
// Loop optimizations
//===----------------------------------------------------------------------===//

TEST(LICM, HoistsInvariantTemp) {
  auto M = compile(R"(
    int g = 3;
    int main() {
      int s = 0;
      int a[10];
      for (int i = 0; i < 10; i = i + 1) {
        a[i] = i;
        s = s + a[2];   // &a is loop-invariant address computation
      }
      print(s);
      return 0;
    }
  )");
  ExecResult Before = interpretIR(*M);
  auto LICM = createLoopInvariantCodeMotionPass();
  LICM->run(*M->Funcs[0], *M);
  expectVerifies(*M);
  ExecResult After = interpretIR(*M);
  EXPECT_EQ(Before.outputText(), After.outputText());
}

TEST(IVOpt, StrengthReducesMultiplication) {
  auto M = compile(R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 8; i = i + 1) {
        s = s + i * 4;
      }
      print(s);
      return 0;
    }
  )");
  ExecResult Before = interpretIR(*M);
  auto IV = createInductionVariableOptPass();
  bool Changed = IV->run(*M->Funcs[0], *M);
  EXPECT_TRUE(Changed) << printModule(*M);
  expectVerifies(*M);
  ExecResult After = interpretIR(*M);
  EXPECT_EQ(Before.outputText(), After.outputText()) << printModule(*M);
  // An SR record for i exists.
  EXPECT_FALSE(M->Funcs[0]->SRRecords.empty());
}

TEST(IVOpt, FullPipelineEliminatesIV) {
  // After SR + LFTR + propagation, the IV update may die; DCE must attach
  // affine recovery to its marker.
  auto M = compile(R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 8; i = i + 1) {
        s = s + i * 4;
      }
      print(s);
      return 0;
    }
  )");
  runPipeline(*M, OptOptions::all());
  expectVerifies(*M);
  ExecResult R = interpretIR(*M);
  EXPECT_EQ(R.outputText(), "112\n");
}

TEST(LoopPeel, PreservesSemanticsAndDuplicatesMarkers) {
  auto M = compile(R"(
    int main() {
      int s = 0;
      int dead = 1;      // dead: a marker will exist inside the loop? no —
      for (int i = 0; i < 5; i = i + 1) {
        int t = i * 2;   // becomes dead after this stmt? no, used:
        s = s + t;
      }
      print(s);
      return s;
    }
  )");
  ExecResult Before = interpretIR(*M);
  auto Peel = createLoopPeelPass();
  EXPECT_TRUE(Peel->run(*M->Funcs[0], *M));
  expectVerifies(*M);
  ExecResult After = interpretIR(*M);
  EXPECT_EQ(Before.outputText(), After.outputText()) << printModule(*M);
  EXPECT_EQ(Before.ExitValue, After.ExitValue);
}

TEST(LoopUnroll, ReplicatesBodyPreservingSemantics) {
  const char *Src = R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 9; i = i + 1) {
        s = s + i * i;
      }
      print(s);
      return s;
    }
  )";
  auto M = compile(Src);
  ExecResult Before = interpretIR(*M);
  auto Unroll = createLoopUnrollPass();
  EXPECT_TRUE(Unroll->run(*M->Funcs[0], *M));
  expectVerifies(*M);
  ExecResult After = interpretIR(*M);
  EXPECT_EQ(Before.outputText(), After.outputText()) << printModule(*M);
  EXPECT_EQ(Before.ExitValue, After.ExitValue);
  // The body now exists twice: two `i = i + 1` source assignments.
  unsigned IncCopies = 0;
  for (const auto &B : M->Funcs[0]->Blocks)
    for (const Instr &I : B->Insts)
      if (I.Op == Opcode::Add && I.IsSourceAssign && I.Dest.isVar() &&
          M->Info->var(I.Dest.Id).Name == "i")
        ++IncCopies;
  EXPECT_EQ(IncCopies, 2u);
}

TEST(LoopUnroll, DuplicatesMarkersWithCode) {
  // A dead assignment inside the loop leaves a marker; unrolling must
  // duplicate the marker with the body (paper §3, code duplication).
  const char *Src = R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 5; i = i + 1) {
        int scratch = s * 3;   // dead
        s = s + 1;
      }
      print(s);
      return 0;
    }
  )";
  auto M = compile(Src);
  auto DCE = createDeadCodeEliminationPass();
  DCE->run(*M->Funcs[0], *M);
  unsigned MarkersBefore = countAnnotations(*M).DeadMarkers;
  auto Unroll = createLoopUnrollPass();
  ASSERT_TRUE(Unroll->run(*M->Funcs[0], *M));
  unsigned MarkersAfter = countAnnotations(*M).DeadMarkers;
  EXPECT_EQ(MarkersAfter, 2 * MarkersBefore) << printModule(*M);
  ExecResult R = interpretIR(*M);
  EXPECT_EQ(R.outputText(), "5\n");
}

TEST(BranchOptT, FoldsConstantBranchAndRemovesDeadCode) {
  auto M = compile(R"(
    int main() {
      int x;
      if (1 < 2) { x = 10; } else { x = 20; }
      return x;
    }
  )");
  runPipeline(*M, OptOptions::all());
  expectVerifies(*M);
  ExecResult R = interpretIR(*M);
  EXPECT_EQ(R.ExitValue, 10);
}

//===----------------------------------------------------------------------===//
// Full-pipeline differential corpus
//===----------------------------------------------------------------------===//

TEST(PipelineDiff, Fibonacci) {
  differential(R"(
    int fib(int n) {
      if (n < 2) return n;
      return fib(n - 1) + fib(n - 2);
    }
    int main() {
      for (int i = 0; i < 12; i = i + 1) print(fib(i));
      return 0;
    }
  )");
}

TEST(PipelineDiff, PointerHeavy) {
  differential(R"(
    void swap(int* a, int* b) { int t = *a; *a = *b; *b = t; }
    int main() {
      int buf[16];
      for (int i = 0; i < 16; i = i + 1) buf[i] = 16 - i;
      for (int i = 0; i < 15; i = i + 1)
        for (int j = 0; j < 15 - i; j = j + 1)
          if (buf[j] > buf[j + 1]) swap(&buf[j], &buf[j + 1]);
      for (int i = 0; i < 16; i = i + 1) print(buf[i]);
      return 0;
    }
  )");
}

TEST(PipelineDiff, GlobalState) {
  differential(R"(
    int counter = 0;
    int bump(int by) { counter = counter + by; return counter; }
    int main() {
      int total = 0;
      for (int i = 1; i <= 5; i = i + 1) total = total + bump(i);
      print(total); print(counter);
      return 0;
    }
  )");
}

TEST(PipelineDiff, Doubles) {
  differential(R"(
    double avg(double a, double b) { return (a + b) / 2.0; }
    int main() {
      double acc = 0.0;
      for (int i = 0; i < 10; i = i + 1) {
        acc = avg(acc, i * 1.5);
        printd(acc);
      }
      return 0;
    }
  )");
}

TEST(PipelineDiff, ShortCircuitSideEffects) {
  differential(R"(
    int calls = 0;
    int probe(int v) { calls = calls + 1; return v; }
    int main() {
      int a = 0;
      if (probe(1) && probe(0) && probe(1)) a = 5;
      if (probe(0) || probe(1)) a = a + 1;
      print(a); print(calls);
      return 0;
    }
  )");
}

TEST(PipelineDiff, NestedLoopsWithBreaks) {
  differential(R"(
    int main() {
      int hits = 0;
      for (int i = 0; i < 10; i = i + 1) {
        for (int j = 0; j < 10; j = j + 1) {
          if (i * j > 30) break;
          if ((i + j) % 3 == 0) continue;
          hits = hits + 1;
        }
      }
      print(hits);
      return hits;
    }
  )");
}

TEST(PipelineDiff, AddressTakenLocals) {
  differential(R"(
    void addOne(int* p) { *p = *p + 1; }
    int main() {
      int x = 5;
      int y = x + 2;     // candidate for everything
      addOne(&x);
      int z = x + 2;     // NOT redundant: x changed through pointer
      print(y); print(z);
      return 0;
    }
  )");
}

TEST(PipelineDiff, TernaryAndCompound) {
  differential(R"(
    int main() {
      int a = 3; int b = 7;
      int m = a > b ? a : b;
      m += a; m *= 2; m -= b; m /= 3; m %= 11;
      print(m);
      return m;
    }
  )");
}

//===----------------------------------------------------------------------===//
// Randomized differential testing
//===----------------------------------------------------------------------===//

namespace {

/// Generates a random, terminating, division-free MiniC program.
class ProgramGenerator {
public:
  explicit ProgramGenerator(unsigned Seed) : Rng(Seed) {}

  std::string generate() {
    Src.clear();
    Src += "int main() {\n";
    for (int V = 0; V < 6; ++V)
      Src += "  int v" + std::to_string(V) + " = " +
             std::to_string(static_cast<int>(Rng() % 20) - 10) + ";\n";
    genStmts(2, 8);
    for (int V = 0; V < 6; ++V)
      Src += "  print(v" + std::to_string(V) + ");\n";
    Src += "  return 0;\n}\n";
    return Src;
  }

private:
  std::string var() { return "v" + std::to_string(Rng() % 6); }

  std::string expr(int Depth) {
    if (Depth <= 0 || Rng() % 3 == 0) {
      if (Rng() % 2)
        return var();
      return std::to_string(static_cast<int>(Rng() % 10) - 5);
    }
    static const char *Ops[] = {"+", "-", "*", "<", ">", "==", "&", "|"};
    return "(" + expr(Depth - 1) + " " + Ops[Rng() % 8] + " " +
           expr(Depth - 1) + ")";
  }

  void genStmts(int Depth, int Count) {
    for (int S = 0; S < Count; ++S) {
      switch (Rng() % 5) {
      case 0:
      case 1:
        Src += "  " + var() + " = " + expr(2) + ";\n";
        break;
      case 2:
        if (Depth > 0) {
          Src += "  if (" + expr(1) + ") {\n";
          genStmts(Depth - 1, 2 + Rng() % 3);
          Src += "  } else {\n";
          genStmts(Depth - 1, 2 + Rng() % 3);
          Src += "  }\n";
          break;
        }
        Src += "  " + var() + " = " + expr(2) + ";\n";
        break;
      case 3:
        if (Depth > 0) {
          std::string I = "i" + std::to_string(LoopId++);
          Src += "  for (int " + I + " = 0; " + I + " < " +
                 std::to_string(1 + Rng() % 5) + "; " + I + " = " + I +
                 " + 1) {\n";
          genStmts(Depth - 1, 1 + Rng() % 3);
          Src += "  }\n";
          break;
        }
        Src += "  print(" + var() + ");\n";
        break;
      case 4:
        Src += "  print(" + expr(1) + ");\n";
        break;
      }
    }
  }

  std::mt19937 Rng;
  std::string Src;
  int LoopId = 0;
};

class RandomizedOptTest : public ::testing::TestWithParam<unsigned> {};

} // namespace

TEST_P(RandomizedOptTest, OptimizationPreservesSemantics) {
  ProgramGenerator Gen(GetParam());
  std::string Src = Gen.generate();
  SCOPED_TRACE(Src);
  differential(Src);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedOptTest,
                         ::testing::Range(0u, 70u));
