//===- tests/explain_golden_test.cpp ---------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Golden tests for classification explain mode: the provenance text for
/// the paper's worked examples — Figure 2 (hoisting → noncurrent and
/// suspect), Figure 3 (dead-code elimination / sinking), the §2.5
/// recovery example — plus the degraded fail-safe path, is checked in
/// under tests/golden/explain/ and diffed verbatim.  Explain output is a
/// user-facing contract: any wording or fact-ordering change shows up
/// here as a diff and must be deliberate.
///
/// Two scenarios additionally drive the installed sldbc binary
/// (--debug --cmd "explain V", --degrade-all) so the CLI surface is held
/// to the same golden.
///
/// Regenerate deliberately with SLDB_UPDATE_GOLDENS=1 (writes the
/// current output into tests/golden/explain/ and passes).
///
//===----------------------------------------------------------------------===//

#include "codegen/ISel.h"
#include "core/Debugger.h"
#include "eval/Levels.h"
#include "ir/IRGen.h"
#include "ir/IRPrinter.h"
#include "opt/Pass.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace sldb;

namespace {

#ifndef SLDB_GOLDEN_DIR
#error "SLDB_GOLDEN_DIR must point at tests/golden"
#endif

std::string goldenPath(const std::string &Name) {
  return std::string(SLDB_GOLDEN_DIR) + "/explain/" + Name;
}

bool updating() {
  const char *V = std::getenv("SLDB_UPDATE_GOLDENS");
  return V && *V && std::string(V) != "0";
}

/// Diffs \p Got against the named golden (or rewrites the golden under
/// SLDB_UPDATE_GOLDENS=1).
void checkGolden(const std::string &Name, const std::string &Got) {
  if (updating()) {
    std::ofstream Out(goldenPath(Name), std::ios::binary);
    ASSERT_TRUE(Out) << "cannot write " << goldenPath(Name);
    Out << Got;
    return;
  }
  std::ifstream In(goldenPath(Name));
  ASSERT_TRUE(In) << "missing golden file " << goldenPath(Name)
                  << " (regenerate with SLDB_UPDATE_GOLDENS=1)";
  std::stringstream Buf;
  Buf << In.rdbuf();
  EXPECT_EQ(Got, Buf.str())
      << "explain output for '" << Name
      << "' changed; if intended, regenerate with SLDB_UPDATE_GOLDENS=1";
}

std::unique_ptr<IRModule> frontend(std::string_view Src) {
  DiagnosticEngine Diags;
  auto M = compileToIR(Src, Diags);
  EXPECT_TRUE(M != nullptr) << Diags.str();
  return M;
}

MachineModule buildMachine(std::string_view Src, const OptOptions &Opts,
                           bool Promote = true) {
  auto M = frontend(Src);
  runPipeline(*M, Opts);
  CodegenOptions CG;
  CG.PromoteVars = Promote;
  MachineModule MM = compileToMachine(*M, CG);
  static std::vector<std::unique_ptr<IRModule>> Pool; // Keep Info alive.
  Pool.push_back(std::move(M));
  return MM;
}

VarId findVar(const MachineModule &MM, const std::string &Name) {
  FuncId F = MM.Info->findFunc("main");
  for (VarId V : MM.Info->func(F).Locals)
    if (MM.Info->var(V).Name == Name)
      return V;
  return InvalidVar;
}

template <typename PredT>
std::int64_t findAddr(const MachineFunction &MF, PredT Pred) {
  std::uint32_t Addr = 0;
  for (const MachineBlock &B : MF.Blocks)
    for (const MInstr &I : B.Insts) {
      if (Pred(I))
        return Addr;
      ++Addr;
    }
  return -1;
}

// The paper's Figure 2 / Figure 3 programs, as in tests/core_test.cpp.
const char *Fig2 = R"(
  int main() {
    int u = 7; int v = 3; int y = 2; int z = 4;
    int x = u - v;        // s4: E0
    if (u > v) {
      x = y + z;          // s6: E1
    } else {
      u = u + 1;          // s7 (hoisted E3 lands after this)
    }
    x = y + z;            // s8: E2 -> avail marker
    print(x);             // s9: Bkpt3
    print(u);
    return 0;
  }
)";

const char *Fig3 = R"(
  int main() {
    int u = 5; int v = 2; int y = 3; int z = 4;
    int x = y + z;       // s4: E0, partially dead -> sunk, marker here
    if (u > v) {
      x = u - v;         // s6: E1
      print(x);          // s7
    } else {
      print(x);          // s8 (sunk copy lands before this)
    }
    print(u);            // s9: join
    return 0;
  }
)";

const char *Fig4 = R"(
  int main() {
    int a = 7;
    int c = a;          // s1: dead (c never used) -> marker, recover=a
    print(a);           // s2
    return a;
  }
)";

OptOptions preOnly() {
  OptOptions O = OptOptions::none();
  O.PRE = true;
  return O;
}
OptOptions pdeOnly() {
  OptOptions O = OptOptions::none();
  O.PDE = true;
  return O;
}
OptOptions dceOnly() {
  OptOptions O = OptOptions::none();
  O.DCE = true;
  return O;
}

//===----------------------------------------------------------------------===//
// Figure 2: hoisting (PRE)
//===----------------------------------------------------------------------===//

TEST(ExplainGolden, Fig2SuspectAtJoin) {
  MachineModule MM = buildMachine(Fig2, preOnly());
  const MachineFunction &MF = *MM.findFunc("main");
  Classifier C(MF, *MM.Info);
  VarId X = findVar(MM, "x");
  ASSERT_NE(X, InvalidVar);
  ASSERT_GE(MF.StmtAddr.size(), 10u);
  ASSERT_GE(MF.StmtAddr[8], 0); // Bkpt2: the avail-marker statement.
  Explanation E =
      C.explain(static_cast<std::uint32_t>(MF.StmtAddr[8]), X);
  ASSERT_EQ(E.Result.Kind, VarClass::Suspect); // Paper's verdict first.
  checkGolden("fig2_suspect.txt", C.renderExplainText(E));
  checkGolden("fig2_suspect.json", C.renderExplainJson(E) + "\n");
}

TEST(ExplainGolden, Fig2NoncurrentAfterHoistedInstance) {
  MachineModule MM = buildMachine(Fig2, preOnly());
  const MachineFunction &MF = *MM.findFunc("main");
  Classifier C(MF, *MM.Info);
  VarId X = findVar(MM, "x");
  std::int64_t HoistAddr = findAddr(MF, [](const MInstr &I) {
    return I.IsHoisted && I.DestVar != InvalidVar;
  });
  ASSERT_GE(HoistAddr, 0) << printMachineFunction(MF, MM.Info);
  Explanation E =
      C.explain(static_cast<std::uint32_t>(HoistAddr + 1), X);
  ASSERT_EQ(E.Result.Kind, VarClass::Noncurrent);
  checkGolden("fig2_noncurrent.txt", C.renderExplainText(E));
}

//===----------------------------------------------------------------------===//
// Figure 3: dead-code elimination / sinking (PDE)
//===----------------------------------------------------------------------===//

TEST(ExplainGolden, Fig3NoncurrentBetweenMarkerAndSunkCopy) {
  MachineModule MM = buildMachine(Fig3, pdeOnly(), /*Promote=*/false);
  const MachineFunction &MF = *MM.findFunc("main");
  Classifier C(MF, *MM.Info);
  VarId X = findVar(MM, "x");
  ASSERT_NE(X, InvalidVar);
  ASSERT_GE(MF.StmtAddr.size(), 6u);
  ASSERT_GE(MF.StmtAddr[5], 0); // The `if` statement.
  Explanation E =
      C.explain(static_cast<std::uint32_t>(MF.StmtAddr[5]), X);
  ASSERT_EQ(E.Result.Kind, VarClass::Noncurrent);
  checkGolden("fig3_noncurrent.txt", C.renderExplainText(E));
}

//===----------------------------------------------------------------------===//
// Recovery (paper §2.5 / Figure 4)
//===----------------------------------------------------------------------===//

TEST(ExplainGolden, Fig4RecoveredDeadCopy) {
  MachineModule MM = buildMachine(Fig4, dceOnly());
  const MachineFunction &MF = *MM.findFunc("main");
  Classifier C(MF, *MM.Info);
  VarId Cv = findVar(MM, "c");
  ASSERT_NE(Cv, InvalidVar);
  ASSERT_GE(MF.StmtAddr.size(), 3u);
  ASSERT_GE(MF.StmtAddr[2], 0); // print(a).
  Explanation E =
      C.explain(static_cast<std::uint32_t>(MF.StmtAddr[2]), Cv);
  ASSERT_EQ(E.Result.Kind, VarClass::Current);
  ASSERT_TRUE(E.Result.Recoverable);
  checkGolden("fig4_recovery.txt", C.renderExplainText(E));
  checkGolden("fig4_recovery.json", C.renderExplainJson(E) + "\n");
}

//===----------------------------------------------------------------------===//
// SSA tier: the same breakpoint, different verdicts by level
//===----------------------------------------------------------------------===//

/// Builds \p Src at a named pipeline level (eval/Levels.h), with the
/// level's own pass selection and promotion.
MachineModule buildAtLevel(std::string_view Src, const char *LevelName) {
  const LevelSpec *L = findLevel(LevelName);
  EXPECT_TRUE(L != nullptr) << LevelName;
  return buildMachine(Src, L->Opts, L->Promote);
}

/// Explains \p Var at statement \p Stmt of main and goldens the text.
Explanation explainAtLevel(std::string_view Src, const char *LevelName,
                           StmtId Stmt, const std::string &Var,
                           const std::string &Golden) {
  MachineModule MM = buildAtLevel(Src, LevelName);
  const MachineFunction &MF = *MM.findFunc("main");
  Classifier C(MF, *MM.Info);
  VarId V = findVar(MM, Var);
  EXPECT_NE(V, InvalidVar);
  EXPECT_GT(MF.StmtAddr.size(), Stmt);
  EXPECT_GE(MF.StmtAddr[Stmt], 0);
  Explanation E =
      C.explain(static_cast<std::uint32_t>(MF.StmtAddr[Stmt]), V);
  checkGolden(Golden, C.renderExplainText(E));
  return E;
}

// Figure 2's x at the avail-marker statement, walked up the SSA tier.
// The SSA bracket alone round-trips (current); the full scalar set on
// top of it folds x's final value into a recovery constant carried
// through the bracket's phi merges (current, recoverable).  The verdict
// text for the *same* source point differs by level — the transcripts
// are the contract that each level's answer stays put.
TEST(ExplainGolden, SsaTierVerdictShiftsOnFig2) {
  Explanation Plain =
      explainAtLevel(Fig2, "ssa", 8, "x", "ssa_level_fig2_ssa.txt");
  EXPECT_EQ(Plain.Result.Kind, VarClass::Current);
  EXPECT_FALSE(Plain.Result.Recoverable);

  Explanation Rec =
      explainAtLevel(Fig2, "O2nl-ssa", 8, "x", "ssa_level_fig2_o2nlssa.txt");
  EXPECT_EQ(Rec.Result.Kind, VarClass::Current);
  EXPECT_TRUE(Rec.Result.Recoverable);
}

// A redundant recomputation after a two-arm join: both arms assign x,
// the join recomputes one arm's expression.  Under the single-pass SSA
// levels x stays a current frame-resident variable; under O2nl-ssa the
// whole chain constant-folds through the phi, x never materializes, and
// the hoist-key attribution in the transcript names the folded
// phi-merged key ('x = copy 7') rather than the source expression.
const char *PhiJoin = R"(
  int main() {
    int a = 3; int b = 4; int x = 0;
    if (a < b) {
      x = a + b;
    } else {
      x = a - b;
    }
    x = a + b;
    print(x);
    return 0;
  }
)";

TEST(ExplainGolden, SsaTierPhiMergedHoistKeyAttribution) {
  Explanation Sparse =
      explainAtLevel(PhiJoin, "sparse", 7, "x", "ssa_level_phijoin_sparse.txt");
  EXPECT_EQ(Sparse.Result.Kind, VarClass::Current);

  Explanation Top = explainAtLevel(PhiJoin, "O2nl-ssa", 7, "x",
                                   "ssa_level_phijoin_o2nlssa.txt");
  EXPECT_EQ(Top.Result.Kind, VarClass::Nonresident);
}

//===----------------------------------------------------------------------===//
// Degraded fail-safe path
//===----------------------------------------------------------------------===//

TEST(ExplainGolden, DegradedFailSafe) {
  MachineModule MM = buildMachine(Fig3, pdeOnly(), /*Promote=*/false);
  const MachineFunction &MF = *MM.findFunc("main");
  Classifier C(MF, *MM.Info);
  C.degradeAllVariables();
  VarId X = findVar(MM, "x");
  ASSERT_GE(MF.StmtAddr[5], 0);
  Explanation E =
      C.explain(static_cast<std::uint32_t>(MF.StmtAddr[5]), X);
  ASSERT_TRUE(E.Result.Degraded);
  checkGolden("degraded.txt", C.renderExplainText(E));
}

//===----------------------------------------------------------------------===//
// Explain never disagrees with classify (same code path): every
// (breakpoint, variable) point of the scenarios above.
//===----------------------------------------------------------------------===//

TEST(ExplainGolden, ExplainAgreesWithClassifyEverywhere) {
  struct Case {
    const char *Src;
    OptOptions Opts;
    bool Promote;
  } Cases[] = {
      {Fig2, preOnly(), true},
      {Fig3, pdeOnly(), false},
      {Fig4, dceOnly(), true},
      {Fig2, OptOptions::all(), true},
  };
  for (const Case &K : Cases) {
    MachineModule MM = buildMachine(K.Src, K.Opts, K.Promote);
    for (const MachineFunction &MF : MM.Funcs) {
      Classifier C(MF, *MM.Info);
      const FuncInfo &FI = MM.Info->func(MF.Id);
      for (StmtId S = 0; S < MF.StmtAddr.size(); ++S) {
        if (MF.StmtAddr[S] < 0)
          continue;
        std::uint32_t Addr = static_cast<std::uint32_t>(MF.StmtAddr[S]);
        for (VarId V : FI.Stmts[S].ScopeVars) {
          Classification Plain = C.classify(Addr, V);
          Explanation E = C.explain(Addr, V);
          EXPECT_EQ(Plain.Kind, E.Result.Kind);
          EXPECT_EQ(Plain.Cause, E.Result.Cause);
          EXPECT_EQ(Plain.Recoverable, E.Result.Recoverable);
          EXPECT_EQ(Plain.Degraded, E.Result.Degraded);
          EXPECT_EQ(Plain.CulpritStmt, E.Result.CulpritStmt);
          EXPECT_FALSE(E.Rule.empty());
        }
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// CLI surface: the same goldens through the sldbc binary.
//===----------------------------------------------------------------------===//

#ifdef SLDB_SLDBC_PATH

std::string runCommand(const std::string &Cmd) {
  std::string Out;
  FILE *P = popen(Cmd.c_str(), "r");
  EXPECT_TRUE(P != nullptr) << Cmd;
  if (!P)
    return Out;
  char Buf[4096];
  std::size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), P)) > 0)
    Out.append(Buf, N);
  pclose(P);
  return Out;
}

TEST(ExplainGolden, CliExplainRecovery) {
  std::string Cmd = std::string("'") + SLDB_SLDBC_PATH +
                    "' --debug --cmd 'b main 2' --cmd run "
                    "--cmd 'explain c' --cmd q '" SLDB_INPUT_DIR
                    "/recovery.mc' 2>/dev/null";
  checkGolden("fig4_cli.txt", runCommand(Cmd));
}

TEST(ExplainGolden, CliExplainDegraded) {
  std::string Cmd = std::string("'") + SLDB_SLDBC_PATH +
                    "' --debug --degrade-all --cmd 'b main 2' --cmd run "
                    "--cmd 'explain c' --cmd 'p c' --cmd q '" SLDB_INPUT_DIR
                    "/recovery.mc' 2>/dev/null";
  checkGolden("degraded_cli.txt", runCommand(Cmd));
}

#endif // SLDB_SLDBC_PATH

} // namespace
