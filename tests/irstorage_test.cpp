//===- tests/irstorage_test.cpp - InstrPool/InstrList tests ----*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property test for the arena-backed instruction storage: an InstrList
/// driven by a random mutation script must stay element-for-element equal
/// to a std::list<Instr> reference model, and pointers to live
/// instructions must stay stable across unrelated mutations — the
/// contract every pass relies on since the std::list<Instr> replacement.
///
//===----------------------------------------------------------------------===//

#include "ir/IR.h"

#include <gtest/gtest.h>

#include <list>
#include <random>
#include <vector>

using namespace sldb;

namespace {

/// An instruction distinguishable by its statement tag.
Instr tagged(std::uint32_t Tag) {
  Instr I;
  I.Op = Opcode::Copy;
  I.Stmt = Tag;
  return I;
}

std::vector<std::uint32_t> tagsOf(const InstrList &L) {
  std::vector<std::uint32_t> T;
  for (const Instr &I : L)
    T.push_back(I.Stmt);
  return T;
}

std::vector<std::uint32_t> tagsOf(const std::list<Instr> &L) {
  std::vector<std::uint32_t> T;
  for (const Instr &I : L)
    T.push_back(I.Stmt);
  return T;
}

TEST(InstrList, MatchesStdListUnderRandomMutation) {
  Arena A;
  InstrPool Pool(A);
  InstrList L(&Pool);
  std::list<Instr> Ref;

  std::mt19937 Rng(12345);
  std::uint32_t NextTag = 0;
  auto RandPos = [&](std::uint32_t Size) {
    return Size ? Rng() % (Size + 1) : 0;
  };

  for (int Step = 0; Step < 4000; ++Step) {
    ASSERT_EQ(L.size(), Ref.size());
    switch (Rng() % 6) {
    case 0:
    case 1: { // push_back (the common IRGen path).
      std::uint32_t Tag = NextTag++;
      L.push_back(tagged(Tag));
      Ref.push_back(tagged(Tag));
      break;
    }
    case 2: { // insert at a random position.
      std::uint32_t Tag = NextTag++;
      std::uint32_t Pos = RandPos(L.size());
      auto It = L.begin();
      auto RIt = Ref.begin();
      for (std::uint32_t I = 0; I < Pos; ++I, ++It, ++RIt)
        ;
      auto NewIt = L.insert(It, tagged(Tag));
      auto NewRIt = Ref.insert(RIt, tagged(Tag));
      EXPECT_EQ(NewIt->Stmt, NewRIt->Stmt);
      break;
    }
    case 3: { // erase at a random position.
      if (L.empty())
        break;
      std::uint32_t Pos = Rng() % L.size();
      auto It = L.begin();
      auto RIt = Ref.begin();
      for (std::uint32_t I = 0; I < Pos; ++I, ++It, ++RIt)
        ;
      auto NextIt = L.erase(It);
      auto NextRIt = Ref.erase(RIt);
      if (NextRIt != Ref.end()) {
        ASSERT_NE(NextIt, L.end());
        EXPECT_EQ(NextIt->Stmt, NextRIt->Stmt);
      } else {
        EXPECT_EQ(NextIt, L.end());
      }
      break;
    }
    case 4: { // pop_back.
      if (L.empty())
        break;
      L.pop_back();
      Ref.pop_back();
      break;
    }
    case 5: { // splice a freshly built list (same pool) before a position.
      InstrList Other(&Pool);
      std::list<Instr> OtherRef;
      std::uint32_t Len = Rng() % 4;
      for (std::uint32_t I = 0; I < Len; ++I) {
        std::uint32_t Tag = NextTag++;
        Other.push_back(tagged(Tag));
        OtherRef.push_back(tagged(Tag));
      }
      std::uint32_t Pos = RandPos(L.size());
      auto It = L.begin();
      auto RIt = Ref.begin();
      for (std::uint32_t I = 0; I < Pos; ++I, ++It, ++RIt)
        ;
      L.splice(It, Other);
      Ref.splice(RIt, OtherRef);
      EXPECT_TRUE(Other.empty());
      break;
    }
    }
    ASSERT_EQ(tagsOf(L), tagsOf(Ref)) << "diverged at step " << Step;
  }
  EXPECT_EQ(Pool.liveCount(), L.size());
}

TEST(InstrList, PointersStableAcrossUnrelatedMutation) {
  Arena A;
  InstrPool Pool(A);
  InstrList L(&Pool);
  for (std::uint32_t I = 0; I < 10; ++I)
    L.push_back(tagged(I));

  // Pin a pointer to the middle element, then churn everything around it.
  auto It = L.begin();
  for (int I = 0; I < 5; ++I)
    ++It;
  Instr *Pinned = &*It;
  std::uint32_t PinnedTag = Pinned->Stmt;

  for (std::uint32_t I = 100; I < 200; ++I)
    L.push_back(tagged(I));
  for (int I = 0; I < 50; ++I)
    L.pop_back();
  L.insert(L.begin(), tagged(999));
  auto Del = L.begin();
  L.erase(Del);

  EXPECT_EQ(Pinned->Stmt, PinnedTag)
      << "slot moved or was reused while its instruction was live";
}

TEST(InstrList, ErasedSlotsAreRecycled) {
  Arena A;
  InstrPool Pool(A);
  InstrList L(&Pool);
  for (std::uint32_t I = 0; I < 100; ++I)
    L.push_back(tagged(I));
  InstrId BoundBefore = Pool.idBound();
  // Drain and refill: the id space must not grow — every freed slot is
  // reused before a new one is carved from the arena.
  L.clear();
  EXPECT_EQ(Pool.liveCount(), 0u);
  for (std::uint32_t I = 0; I < 100; ++I)
    L.push_back(tagged(I));
  EXPECT_EQ(Pool.idBound(), BoundBefore);
  EXPECT_EQ(Pool.liveCount(), 100u);
}

TEST(InstrList, CopyAssignIsDeep) {
  Arena A;
  InstrPool Pool(A);
  InstrList L(&Pool);
  for (std::uint32_t I = 0; I < 5; ++I)
    L.push_back(tagged(I));

  InstrList Copy(&Pool);
  Copy = L;
  ASSERT_EQ(tagsOf(Copy), tagsOf(L));
  // Mutating the copy leaves the original alone.
  Copy.begin()->Stmt = 777;
  Copy.pop_back();
  EXPECT_EQ(L.front().Stmt, 0u);
  EXPECT_EQ(L.size(), 5u);
}

} // namespace
