//===- tests/irstorage_test.cpp - InstrPool/InstrList tests ----*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property test for the arena-backed instruction storage: an InstrList
/// driven by a random mutation script must stay element-for-element equal
/// to a std::list<Instr> reference model, and pointers to live
/// instructions must stay stable across unrelated mutations — the
/// contract every pass relies on since the std::list<Instr> replacement.
///
//===----------------------------------------------------------------------===//

#include "ir/IR.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <random>
#include <vector>

using namespace sldb;

namespace {

/// An instruction distinguishable by its statement tag.
Instr tagged(std::uint32_t Tag) {
  Instr I;
  I.Op = Opcode::Copy;
  I.Stmt = Tag;
  return I;
}

std::vector<std::uint32_t> tagsOf(const InstrList &L) {
  std::vector<std::uint32_t> T;
  for (const Instr &I : L)
    T.push_back(I.Stmt);
  return T;
}

std::vector<std::uint32_t> tagsOf(const std::list<Instr> &L) {
  std::vector<std::uint32_t> T;
  for (const Instr &I : L)
    T.push_back(I.Stmt);
  return T;
}

TEST(InstrList, MatchesStdListUnderRandomMutation) {
  Arena A;
  InstrPool Pool(A);
  InstrList L(&Pool);
  std::list<Instr> Ref;

  std::mt19937 Rng(12345);
  std::uint32_t NextTag = 0;
  auto RandPos = [&](std::uint32_t Size) {
    return Size ? Rng() % (Size + 1) : 0;
  };

  for (int Step = 0; Step < 4000; ++Step) {
    ASSERT_EQ(L.size(), Ref.size());
    switch (Rng() % 6) {
    case 0:
    case 1: { // push_back (the common IRGen path).
      std::uint32_t Tag = NextTag++;
      L.push_back(tagged(Tag));
      Ref.push_back(tagged(Tag));
      break;
    }
    case 2: { // insert at a random position.
      std::uint32_t Tag = NextTag++;
      std::uint32_t Pos = RandPos(L.size());
      auto It = L.begin();
      auto RIt = Ref.begin();
      for (std::uint32_t I = 0; I < Pos; ++I, ++It, ++RIt)
        ;
      auto NewIt = L.insert(It, tagged(Tag));
      auto NewRIt = Ref.insert(RIt, tagged(Tag));
      EXPECT_EQ(NewIt->Stmt, NewRIt->Stmt);
      break;
    }
    case 3: { // erase at a random position.
      if (L.empty())
        break;
      std::uint32_t Pos = Rng() % L.size();
      auto It = L.begin();
      auto RIt = Ref.begin();
      for (std::uint32_t I = 0; I < Pos; ++I, ++It, ++RIt)
        ;
      auto NextIt = L.erase(It);
      auto NextRIt = Ref.erase(RIt);
      if (NextRIt != Ref.end()) {
        ASSERT_NE(NextIt, L.end());
        EXPECT_EQ(NextIt->Stmt, NextRIt->Stmt);
      } else {
        EXPECT_EQ(NextIt, L.end());
      }
      break;
    }
    case 4: { // pop_back.
      if (L.empty())
        break;
      L.pop_back();
      Ref.pop_back();
      break;
    }
    case 5: { // splice a freshly built list (same pool) before a position.
      InstrList Other(&Pool);
      std::list<Instr> OtherRef;
      std::uint32_t Len = Rng() % 4;
      for (std::uint32_t I = 0; I < Len; ++I) {
        std::uint32_t Tag = NextTag++;
        Other.push_back(tagged(Tag));
        OtherRef.push_back(tagged(Tag));
      }
      std::uint32_t Pos = RandPos(L.size());
      auto It = L.begin();
      auto RIt = Ref.begin();
      for (std::uint32_t I = 0; I < Pos; ++I, ++It, ++RIt)
        ;
      L.splice(It, Other);
      Ref.splice(RIt, OtherRef);
      EXPECT_TRUE(Other.empty());
      break;
    }
    }
    ASSERT_EQ(tagsOf(L), tagsOf(Ref)) << "diverged at step " << Step;
  }
  EXPECT_EQ(Pool.liveCount(), L.size());
}

TEST(InstrList, PointersStableAcrossUnrelatedMutation) {
  Arena A;
  InstrPool Pool(A);
  InstrList L(&Pool);
  for (std::uint32_t I = 0; I < 10; ++I)
    L.push_back(tagged(I));

  // Pin a pointer to the middle element, then churn everything around it.
  auto It = L.begin();
  for (int I = 0; I < 5; ++I)
    ++It;
  Instr *Pinned = &*It;
  std::uint32_t PinnedTag = Pinned->Stmt;

  for (std::uint32_t I = 100; I < 200; ++I)
    L.push_back(tagged(I));
  for (int I = 0; I < 50; ++I)
    L.pop_back();
  L.insert(L.begin(), tagged(999));
  auto Del = L.begin();
  L.erase(Del);

  EXPECT_EQ(Pinned->Stmt, PinnedTag)
      << "slot moved or was reused while its instruction was live";
}

TEST(InstrList, ErasedSlotsAreRecycled) {
  Arena A;
  InstrPool Pool(A);
  InstrList L(&Pool);
  for (std::uint32_t I = 0; I < 100; ++I)
    L.push_back(tagged(I));
  InstrId BoundBefore = Pool.idBound();
  // Drain and refill: the id space must not grow — every freed slot is
  // reused before a new one is carved from the arena.
  L.clear();
  EXPECT_EQ(Pool.liveCount(), 0u);
  for (std::uint32_t I = 0; I < 100; ++I)
    L.push_back(tagged(I));
  EXPECT_EQ(Pool.idBound(), BoundBefore);
  EXPECT_EQ(Pool.liveCount(), 100u);
}

// SSA construction inserts phis at a block's head while a traversal is
// mid-flight and dataflow worklists hold dense InstrIds.  The contract:
// insert-at-head must update Head without disturbing the in-flight
// iterator, the ids of every live instruction, or a backward walk that
// crosses the new head; and the new instruction's id must extend (not
// recycle into) the dense id space so flat arrays sized by the
// *pre-insert* idBound() are detectably stale rather than silently
// aliased.
TEST(InstrList, InsertAtHeadDuringTraversal) {
  Arena A;
  InstrPool Pool(A);
  InstrList L(&Pool);
  for (std::uint32_t I = 0; I < 8; ++I)
    L.push_back(tagged(I));

  // Record every live id, as a dataflow worklist would.
  std::vector<InstrId> Ids;
  for (auto It = L.begin(); It != L.end(); ++It)
    Ids.push_back(It.id());
  const InstrId BoundBefore = Pool.idBound();

  // Walk forward; at element 3, insert two "phis" at the head (newest
  // first, like SsaConstruct), then finish the walk from the pinned
  // iterator.
  std::vector<std::uint32_t> Seen;
  for (auto It = L.begin(); It != L.end(); ++It) {
    Seen.push_back(It->Stmt);
    if (It->Stmt == 3) {
      L.insert(L.begin(), tagged(101));
      L.insert(L.begin(), tagged(100));
    }
  }
  // The traversal saw the original elements exactly once, unperturbed.
  EXPECT_EQ(Seen, (std::vector<std::uint32_t>{0, 1, 2, 3, 4, 5, 6, 7}));

  // Head moved to the newest insert; full order is phis-then-body.
  EXPECT_EQ(L.front().Stmt, 100u);
  EXPECT_EQ(tagsOf(L),
            (std::vector<std::uint32_t>{100, 101, 0, 1, 2, 3, 4, 5, 6, 7}));

  // Every pre-insert id still names the same instruction, and the new
  // ids extend the dense space past the old bound (no recycling while
  // the old slots are live).
  for (std::uint32_t I = 0; I < Ids.size(); ++I)
    EXPECT_EQ(Pool.instr(Ids[I]).Stmt, I);
  EXPECT_EQ(Pool.idBound(), BoundBefore + 2);
  EXPECT_GE(L.begin().id(), BoundBefore);

  // A backward walk crosses the new head cleanly.
  std::vector<std::uint32_t> Rev;
  for (auto It = L.rbegin(); It != L.rend(); ++It)
    Rev.push_back(It->Stmt);
  std::vector<std::uint32_t> Fwd = tagsOf(L);
  std::reverse(Fwd.begin(), Fwd.end());
  EXPECT_EQ(Rev, Fwd);

  // Erase-at-head during traversal is the mirror idiom (DCE's backward
  // block walks): the iterator returned by erase resumes at the next
  // element and Head follows.
  auto It = L.begin();
  It = L.erase(It);
  EXPECT_EQ(It->Stmt, 101u);
  EXPECT_EQ(L.front().Stmt, 101u);
  EXPECT_EQ(L.size(), 9u);
}

TEST(InstrList, CopyAssignIsDeep) {
  Arena A;
  InstrPool Pool(A);
  InstrList L(&Pool);
  for (std::uint32_t I = 0; I < 5; ++I)
    L.push_back(tagged(I));

  InstrList Copy(&Pool);
  Copy = L;
  ASSERT_EQ(tagsOf(Copy), tagsOf(L));
  // Mutating the copy leaves the original alone.
  Copy.begin()->Stmt = 777;
  Copy.pop_back();
  EXPECT_EQ(L.front().Stmt, 0u);
  EXPECT_EQ(L.size(), 5u);
}

} // namespace
