//===- tests/trace_invariance_test.cpp -------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Observer-effect property: tracing and stats are observation only.
/// Turning tracing on (and collecting per-unit traces) must leave every
/// verdict, the whole campaign report, and the transformed modules
/// byte-identical — the debugger may never answer differently because
/// someone is watching it.  Held over a 200-seed differential-fuzzing
/// corpus, the same corpus size as the tier-1 soundness campaign.
///
//===----------------------------------------------------------------------===//

#include "codegen/ISel.h"
#include "fuzz/Campaign.h"
#include "ir/IRGen.h"
#include "ir/IRPrinter.h"
#include "opt/Pass.h"
#include "support/Stats.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace sldb;

namespace {

/// Every report-relevant field of a campaign result, as one string, so
/// "byte-identical report" is a single comparison.
std::string digest(const CampaignResult &R) {
  std::ostringstream D;
  D << "programs " << R.Programs << "\n"
    << "runs " << R.Runs << "\n"
    << "failed_compiles " << R.FailedCompiles << "\n"
    << "stops " << R.Stops << "\n"
    << "observations " << R.Observations << "\n"
    << "config_error " << R.ConfigError << "\n"
    << "with_hoisted " << R.Coverage.WithHoisted << "\n"
    << "with_sunk " << R.Coverage.WithSunk << "\n"
    << "with_dead_marks " << R.Coverage.WithDeadMarks << "\n"
    << "with_avail_marks " << R.Coverage.WithAvailMarks << "\n"
    << "with_sr_records " << R.Coverage.WithSRRecords << "\n";
  for (const PassFiring &F : R.Coverage.Firings)
    D << "firing " << F.Name << " " << F.Changed << "\n";
  for (const CampaignFailure &F : R.Failures) {
    D << "failure seed " << F.Seed << " promote " << F.Promote << "\n";
    for (const Violation &V : F.Violations)
      D << "  " << V.str() << "\n";
  }
  return D.str();
}

CampaignConfig corpus() {
  CampaignConfig C;
  C.Seed = 1;
  C.Count = 200;
  C.Shrink = false;
  C.WriteFailures = false;
  C.Jobs = 4; // Report is --jobs invariant by contract (PR 4).
  return C;
}

TEST(TraceInvariance, CampaignReportByteIdenticalWithTracingOn) {
  // Baseline: tracing off (the default).
  ASSERT_FALSE(Trace::enabled());
  CampaignResult Off = runCampaign(corpus());

  // Same corpus with tracing enabled, per-unit capture, and stats
  // accumulating.
  Trace::clear();
  Trace::enable();
  CampaignConfig C = corpus();
  C.CollectTrace = true;
  CampaignResult On = runCampaign(C);
  Trace::disable();
  Trace::clear();

  EXPECT_EQ(digest(Off), digest(On))
      << "enabling tracing changed the campaign report (observer effect)";

  // The trace itself was produced (when compiled in): campaign.unit
  // spans in seed-major order, tid = 1-based unit ordinal.
  if (Trace::compiledIn()) {
    ASSERT_FALSE(On.Trace.empty());
    std::uint32_t MaxTid = 0;
    for (const TraceEvent &E : On.Trace) {
      ASSERT_GE(E.Tid, 1u);
      ASSERT_GE(E.Tid, MaxTid); // Seed-major merge: tids nondecreasing.
      MaxTid = E.Tid;
    }
    EXPECT_EQ(MaxTid, On.Runs);
  } else {
    EXPECT_TRUE(On.Trace.empty());
  }
}

TEST(TraceInvariance, PerQueryVerdictsIdenticalWithTracingOn) {
  // A direct, classifier-level version of the same property on one
  // program: the verdict stream over every (breakpoint, variable) point
  // is identical with tracing off, on, and on-with-explain.
  const char *Src = R"(
    int main() {
      int u = 7; int v = 3; int y = 2; int z = 4;
      int x = u - v;
      if (u > v) {
        x = y + z;
      } else {
        u = u + 1;
      }
      x = y + z;
      print(x);
      print(u);
      return 0;
    }
  )";
  auto Verdicts = [&]() {
    DiagnosticEngine Diags;
    auto M = compileToIR(Src, Diags);
    EXPECT_TRUE(M != nullptr) << Diags.str();
    runPipeline(*M, OptOptions::all());
    MachineModule MM = compileToMachine(*M, CodegenOptions());
    std::ostringstream D;
    for (const MachineFunction &MF : MM.Funcs) {
      Classifier C(MF, *MM.Info);
      const FuncInfo &FI = MM.Info->func(MF.Id);
      for (StmtId S = 0; S < MF.StmtAddr.size(); ++S) {
        if (MF.StmtAddr[S] < 0)
          continue;
        std::uint32_t Addr = static_cast<std::uint32_t>(MF.StmtAddr[S]);
        for (VarId V : FI.Stmts[S].ScopeVars) {
          Classification CC = C.classify(Addr, V);
          D << S << ":" << V << " " << varClassName(CC.Kind) << " "
            << static_cast<int>(CC.Cause) << " " << CC.Recoverable << "\n";
        }
      }
    }
    return D.str();
  };

  ASSERT_FALSE(Trace::enabled());
  std::string Off = Verdicts();

  Trace::clear();
  Trace::enable();
  std::string On = Verdicts();
  Trace::disable();
  Trace::clear();

  EXPECT_EQ(Off, On) << "tracing perturbed classification verdicts";
}

TEST(TraceInvariance, StatsNeverBranchedOn) {
  // Stats are observation only too: resetting all counters mid-stream
  // must not change verdicts (nothing reads them back on a decision
  // path).  Cheap canary for the "nothing may branch on a counter" rule.
  CampaignConfig C = corpus();
  C.Count = 20;
  CampaignResult A = runCampaign(C);
  Stats::reset();
  CampaignResult B = runCampaign(C);
  EXPECT_EQ(digest(A), digest(B));
}

} // namespace
