//===- tests/debuginfo_test.cpp - DWARF-shaped export tests ----*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the debug-info export (core/DebugInfo.h, schema
/// "sldb-dwarf-0"): golden documents for the paper's Figure 2-4 worked
/// examples plus an aliasing program, structural invariants (range
/// monotonicity, coverage, availability within bounds), determinism,
/// and consistency between exported availability and the interactive
/// classifier.  Goldens live in tests/golden/debuginfo/; regenerate
/// deliberately with SLDB_UPDATE_GOLDENS=1.
///
//===----------------------------------------------------------------------===//

#include "codegen/ISel.h"
#include "core/Classifier.h"
#include "core/DebugInfo.h"
#include "ir/IRGen.h"
#include "opt/Pass.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <sys/stat.h>

using namespace sldb;

namespace {

#ifndef SLDB_GOLDEN_DIR
#error "SLDB_GOLDEN_DIR must point at tests/golden"
#endif

std::string goldenPath(const std::string &Name) {
  return std::string(SLDB_GOLDEN_DIR) + "/debuginfo/" + Name;
}

bool updating() {
  const char *V = std::getenv("SLDB_UPDATE_GOLDENS");
  return V && *V && std::string(V) != "0";
}

void checkGolden(const std::string &Name, const std::string &Got) {
  if (updating()) {
    ::mkdir((std::string(SLDB_GOLDEN_DIR) + "/debuginfo").c_str(), 0755);
    std::ofstream Out(goldenPath(Name), std::ios::binary);
    ASSERT_TRUE(Out) << "cannot write " << goldenPath(Name);
    Out << Got;
    return;
  }
  std::ifstream In(goldenPath(Name));
  ASSERT_TRUE(In) << "missing golden file " << goldenPath(Name)
                  << " (regenerate with SLDB_UPDATE_GOLDENS=1)";
  std::stringstream Buf;
  Buf << In.rdbuf();
  EXPECT_EQ(Got, Buf.str())
      << "debug info for '" << Name
      << "' changed; if intended, regenerate with SLDB_UPDATE_GOLDENS=1";
}

std::unique_ptr<IRModule> frontend(std::string_view Src) {
  DiagnosticEngine Diags;
  auto M = compileToIR(Src, Diags);
  EXPECT_TRUE(M != nullptr) << Diags.str();
  return M;
}

MachineModule buildMachine(std::string_view Src, const OptOptions &Opts,
                           bool Promote = true) {
  auto M = frontend(Src);
  runPipeline(*M, Opts);
  CodegenOptions CG;
  CG.PromoteVars = Promote;
  MachineModule MM = compileToMachine(*M, CG);
  static std::vector<std::unique_ptr<IRModule>> Pool;
  Pool.push_back(std::move(M));
  return MM;
}

// The paper's worked examples (as in tests/crosslevel_test.cpp).
const char *Fig2 = R"(
  int main() {
    int u = 7; int v = 3; int y = 2; int z = 4;
    int x = u - v;        // s4: E0
    if (u > v) {
      x = y + z;          // s6: E1
    } else {
      u = u + 1;          // s7 (hoisted E3 lands after this)
    }
    x = y + z;            // s8: E2 -> avail marker
    print(x);             // s9: Bkpt3
    print(u);
    return 0;
  }
)";

const char *Fig3 = R"(
  int main() {
    int u = 5; int v = 2; int y = 3; int z = 4;
    int x = y + z;       // s4: E0, partially dead -> sunk, marker here
    if (u > v) {
      x = u - v;         // s6: E1
      print(x);          // s7
    } else {
      print(x);          // s8 (sunk copy lands before this)
    }
    print(u);            // s9: join
    return 0;
  }
)";

const char *Fig4 = R"(
  int main() {
    int a = 7;
    int c = a;          // s1: dead (c never used) -> marker, recover=a
    print(a);           // s2
    return a;
  }
)";

// Aliasing coverage: an address-taken scalar pinned to the frame, an
// array written through a walked pointer, and an escape to a call.
const char *AliasProg = R"(
  int bump(int* q, int d) { *q = *q + d; return *q; }
  int main() {
    int x = 1;
    int acc = 0;
    int a[3];
    a[0] = 1;
    a[1] = 2;
    a[2] = 3;
    int* p = a;
    *p = 9;
    p = p + 1;
    *p = 8;
    acc = bump(&x, a[0]);
    print(acc);
    print(x);
    return acc;
  }
)";

//===----------------------------------------------------------------------===//
// Structural schema invariants (mirrors tools/check_debug_info_schema.sh
// for in-process coverage, without a JSON parser: the emitter's output
// is regular enough to scan.)
//===----------------------------------------------------------------------===//

/// Extracts every {"lo":A,"hi":B...} pair following position \p From up
/// to the closing ']' of the list that starts there.
std::vector<std::pair<long, long>> parseRanges(const std::string &S,
                                               std::size_t From) {
  std::vector<std::pair<long, long>> R;
  std::size_t Depth = 0, I = From;
  for (; I < S.size(); ++I) {
    if (S[I] == '[') {
      ++Depth;
      break;
    }
  }
  for (; I < S.size() && Depth; ++I) {
    if (S[I] == '[')
      ++Depth, --Depth; // Flat lists only.
    if (S[I] == ']')
      break;
    if (S.compare(I, 6, "{\"lo\":") == 0) {
      long Lo = std::strtol(S.c_str() + I + 6, nullptr, 10);
      std::size_t Hi = S.find("\"hi\":", I);
      EXPECT_NE(Hi, std::string::npos);
      R.push_back({Lo, std::strtol(S.c_str() + Hi + 5, nullptr, 10)});
      I += 5;
    }
  }
  return R;
}

void checkRangeInvariants(const std::string &Doc) {
  // Every "locations" and "availability" list: half-open, monotone,
  // non-overlapping.
  for (const char *Key : {"\"locations\":", "\"availability\":"}) {
    std::size_t Pos = 0;
    while ((Pos = Doc.find(Key, Pos)) != std::string::npos) {
      auto Ranges = parseRanges(Doc, Pos + std::strlen(Key));
      long PrevHi = -1;
      for (auto [Lo, Hi] : Ranges) {
        EXPECT_LT(Lo, Hi) << "empty or inverted range in " << Key;
        EXPECT_GE(Lo, PrevHi) << "overlapping/unsorted ranges in " << Key;
        PrevHi = Hi;
      }
      ++Pos;
    }
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Goldens
//===----------------------------------------------------------------------===//

TEST(DebugInfoGolden, Fig2) {
  MachineModule MM = buildMachine(Fig2, OptOptions::all());
  std::string Doc = renderDebugInfo(MM);
  checkRangeInvariants(Doc);
  checkGolden("fig2.json", Doc);
}

TEST(DebugInfoGolden, Fig3) {
  MachineModule MM = buildMachine(Fig3, OptOptions::all());
  std::string Doc = renderDebugInfo(MM);
  checkRangeInvariants(Doc);
  checkGolden("fig3.json", Doc);
}

TEST(DebugInfoGolden, Fig4) {
  MachineModule MM = buildMachine(Fig4, OptOptions::all());
  std::string Doc = renderDebugInfo(MM);
  checkRangeInvariants(Doc);
  checkGolden("fig4.json", Doc);
}

TEST(DebugInfoGolden, AliasProgram) {
  MachineModule MM = buildMachine(AliasProg, OptOptions::all());
  std::string Doc = renderDebugInfo(MM);
  checkRangeInvariants(Doc);
  checkGolden("alias.json", Doc);
}

//===----------------------------------------------------------------------===//
// Contracts beyond the goldens
//===----------------------------------------------------------------------===//

TEST(DebugInfo, DeterministicAcrossRenders) {
  MachineModule MM = buildMachine(Fig2, OptOptions::all());
  EXPECT_EQ(renderDebugInfo(MM), renderDebugInfo(MM));
  // A separately compiled module of the same source renders identically
  // too (no pointer values or iteration-order artifacts leak through).
  MachineModule MM2 = buildMachine(Fig2, OptOptions::all());
  EXPECT_EQ(renderDebugInfo(MM), renderDebugInfo(MM2));
}

TEST(DebugInfo, SchemaHeaderAndRequiredKeys) {
  MachineModule MM = buildMachine(Fig4, OptOptions::all());
  std::string Doc = renderDebugInfo(MM);
  EXPECT_EQ(Doc.rfind("{\"schema\":\"sldb-dwarf-0\"", 0), 0u);
  for (const char *Key :
       {"\"globals\":", "\"functions\":", "\"name\":", "\"line_table\":",
        "\"variables\":", "\"locations\":", "\"availability\":",
        "\"frame_size_words\":", "\"num_instrs\":"})
    EXPECT_NE(Doc.find(Key), std::string::npos) << "missing " << Key;
  EXPECT_EQ(Doc.back(), '\n');
}

TEST(DebugInfo, AvailabilityMatchesInteractiveClassifier) {
  // The exported availability ranges must agree, address by address,
  // with what the classifier answers when queried directly.
  MachineModule MM = buildMachine(AliasProg, OptOptions::all());
  std::string Doc = renderDebugInfo(MM);
  const MachineFunction *MF = MM.findFunc("main");
  ASSERT_NE(MF, nullptr);
  const FuncInfo &FI = MM.Info->func(MF->Id);
  Classifier C(*MF, *MM.Info);

  // Locate main's variable entries in the document, in order: FI.Locals.
  std::size_t Pos = Doc.find("\"name\":\"main\"");
  ASSERT_NE(Pos, std::string::npos);
  for (VarId V : FI.Locals) {
    const VarInfo &VI = MM.Info->var(V);
    Pos = Doc.find("{\"name\":\"" + VI.Name + "\"", Pos);
    ASSERT_NE(Pos, std::string::npos) << VI.Name;
    std::size_t APos = Doc.find("\"availability\":", Pos);
    ASSERT_NE(APos, std::string::npos);
    auto Ranges = parseRanges(Doc, APos + 15);
    for (std::uint32_t A = 0; A < MF->numInstrs(); ++A) {
      bool InRange = false;
      for (auto [Lo, Hi] : Ranges)
        InRange |= A >= static_cast<std::uint32_t>(Lo) &&
                   A < static_cast<std::uint32_t>(Hi);
      bool Current = C.classify(A, V).Kind == VarClass::Current;
      EXPECT_EQ(InRange, Current)
          << VI.Name << " at address " << A
          << ": export says " << InRange << ", classifier says " << Current;
    }
  }
}

TEST(DebugInfo, AddressTakenScalarHasFrameHome) {
  // x is address-taken in AliasProg: promotion must leave it in a frame
  // slot, so its location list must contain a frame location and its
  // type must render as "int".
  MachineModule MM = buildMachine(AliasProg, OptOptions::all());
  std::string Doc = renderDebugInfo(MM);
  std::size_t Main = Doc.find("\"name\":\"main\"");
  std::size_t X = Doc.find("{\"name\":\"x\",\"type\":\"int\"", Main);
  ASSERT_NE(X, std::string::npos);
  std::size_t End = Doc.find("}]}", X);
  std::string Entry = Doc.substr(X, Doc.find("\"availability\":", X) - X);
  EXPECT_NE(Entry.find("frame+"), std::string::npos)
      << "address-taken x should live in a frame slot: " << Entry;
  (void)End;
}

TEST(DebugInfo, PointerAndArrayTypesRender) {
  MachineModule MM = buildMachine(AliasProg, OptOptions::all());
  std::string Doc = renderDebugInfo(MM);
  EXPECT_NE(Doc.find("\"type\":\"int[3]\""), std::string::npos);
  EXPECT_NE(Doc.find("\"type\":\"int*\""), std::string::npos);
}
