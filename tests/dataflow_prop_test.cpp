//===- tests/dataflow_prop_test.cpp - Solver vs path oracle ----*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
// Property test of the generic bit-vector solver against a brute-force
// path-enumeration oracle on random small CFGs: for a union-meet forward
// problem, a fact holds at block entry iff it holds along SOME acyclic-
// unrolled path from the entry; for intersection, iff it holds along ALL
// paths.  This is exactly the "some paths" / "all paths" split the
// paper's Lemmas 2/3 and 5/6 rely on.
//
// Structure: each suite is a TEST_P parameterized over a random seed
// (INSTANTIATE_TEST_SUITE_P at the bottom ranges the seeds), so every
// property is checked over many independently generated CFGs of <= 8
// blocks — small enough that the oracle can enumerate every reachable
// (block, state) pair exactly, large enough for joins, diamonds and back
// edges:
//
//   * DataflowVsOracle.* checks the raw solver on arbitrary random
//     Gen/Kill transfers (the lattice-level property);
//   * MarkerReachVsOracle.* rebuilds the transfers the debugger's two
//     reach analyses actually use — hoist reach (Definition 1: a hoisted
//     instance GENs at its landing site and is KILLed at the original
//     position) and dead reach (Definition 2: a marker GENs itself and
//     *supersedes* every other marker of the same variable; real
//     assignments kill) — from per-block EVENT LISTS, and checks that
//     composing events into block Gen/Kill sets agrees with an oracle
//     that replays the raw events along every path.  This validates the
//     composition step the passes rely on, not just the solver.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dataflow.h"

#include <gtest/gtest.h>

#include <random>

using namespace sldb;

namespace {

struct RandomCFG {
  unsigned N;
  std::vector<std::vector<unsigned>> Preds, Succs;
  std::vector<unsigned> Exits;
  // Per-block transfer over a tiny universe: for each bit, Gen or Kill.
  std::vector<BitVector> Gen, Kill;
  unsigned Universe;
};

RandomCFG makeCFG(unsigned Seed, unsigned Universe = 4) {
  std::mt19937 Rng(Seed);
  RandomCFG G;
  G.N = 3 + Rng() % 6;
  G.Universe = Universe;
  G.Preds.resize(G.N);
  G.Succs.resize(G.N);
  // A connected-ish DAG skeleton plus a few random extra/back edges.
  for (unsigned B = 0; B + 1 < G.N; ++B) {
    unsigned T = B + 1 + Rng() % (G.N - B - 1);
    G.Succs[B].push_back(T);
    G.Preds[T].push_back(B);
    if (Rng() % 2) {
      unsigned T2 = B + 1 + Rng() % (G.N - B - 1);
      if (T2 != T) {
        G.Succs[B].push_back(T2);
        G.Preds[T2].push_back(B);
      }
    }
  }
  // Ensure every block is reachable (the compiler deletes unreachable
  // blocks before analysis; the solver is conservative, not exact, at
  // joins fed by unreachable code).
  for (unsigned B = 1; B < G.N; ++B)
    if (G.Preds[B].empty()) {
      unsigned From = Rng() % B;
      G.Succs[From].push_back(B);
      G.Preds[B].push_back(From);
    }
  // One optional back edge for loop coverage.
  if (Rng() % 2 && G.N > 2) {
    unsigned From = 1 + Rng() % (G.N - 1);
    unsigned To = Rng() % From;
    G.Succs[From].push_back(To);
    G.Preds[To].push_back(From);
  }
  for (unsigned B = 0; B < G.N; ++B)
    if (G.Succs[B].empty())
      G.Exits.push_back(B);
  if (G.Exits.empty())
    G.Exits.push_back(G.N - 1);

  G.Gen.assign(G.N, BitVector(Universe));
  G.Kill.assign(G.N, BitVector(Universe));
  for (unsigned B = 0; B < G.N; ++B)
    for (unsigned Bit = 0; Bit < Universe; ++Bit) {
      unsigned R = Rng() % 4;
      if (R == 0)
        G.Gen[B].set(Bit);
      else if (R == 1)
        G.Kill[B].set(Bit);
    }
  return G;
}

/// Oracle: enumerates all paths from the entry of length <= Depth,
/// recording which facts can reach each block entry (Some) and which
/// reach on every enumerated complete visit (All).  Cyclic graphs are
/// handled by unrolling: with Depth >= N * (Universe + 2), the bit-vector
/// fixed point and the path semantics agree on these small graphs.
struct PathOracle {
  std::vector<BitVector> SomeIn;      ///< Union over paths.
  std::vector<BitVector> AllIn;       ///< Intersection over paths.
  std::vector<bool> Reached;

  explicit PathOracle(const RandomCFG &G) {
    SomeIn.assign(G.N, BitVector(G.Universe));
    AllIn.assign(G.N, BitVector(G.Universe, true));
    Reached.assign(G.N, false);
    Seen.assign(G.N, std::vector<bool>(1u << G.Universe, false));
    BitVector Empty(G.Universe);
    walk(G, 0, Empty);
  }

private:
  static unsigned mask(const BitVector &BV) {
    unsigned M = 0;
    for (unsigned I : BV)
      M |= 1u << I;
    return M;
  }

  void walk(const RandomCFG &G, unsigned B, const BitVector &In) {
    // Exact-state memoization: the universe is tiny, so the set of
    // reachable (block, state) pairs is finite and fully enumerable —
    // every distinct arriving state is explored exactly once.
    unsigned M = mask(In);
    if (Seen[B][M])
      return;
    Seen[B][M] = true;
    if (!Reached[B]) {
      Reached[B] = true;
      SomeIn[B] = In;
      AllIn[B] = In;
    } else {
      SomeIn[B] |= In;
      AllIn[B] &= In;
    }
    BitVector Out = In;
    Out.subtract(G.Kill[B]);
    Out |= G.Gen[B];
    for (unsigned Succ : G.Succs[B])
      walk(G, Succ, Out);
  }

  std::vector<std::vector<bool>> Seen;
};

class DataflowVsOracle : public ::testing::TestWithParam<unsigned> {};

} // namespace

TEST_P(DataflowVsOracle, UnionMeetMatchesSomePath) {
  RandomCFG G = makeCFG(GetParam());
  DataflowProblem P;
  P.Dir = FlowDir::Forward;
  P.Meet = FlowMeet::Union;
  P.Universe = G.Universe;
  P.Gen = G.Gen;
  P.Kill = G.Kill;
  P.Boundary = BitVector(G.Universe);
  DataflowResult R = solveDataflowGeneric(G.N, G.Preds, G.Succs, G.Exits, P);

  PathOracle O(G);
  for (unsigned B = 0; B < G.N; ++B) {
    if (!O.Reached[B])
      continue; // Unreachable blocks are don't-care.
    EXPECT_EQ(R.In[B], O.SomeIn[B]) << "block " << B;
  }
}

TEST_P(DataflowVsOracle, IntersectMeetMatchesAllPaths) {
  RandomCFG G = makeCFG(GetParam() + 500);
  DataflowProblem P;
  P.Dir = FlowDir::Forward;
  P.Meet = FlowMeet::Intersect;
  P.Universe = G.Universe;
  P.Gen = G.Gen;
  P.Kill = G.Kill;
  P.Boundary = BitVector(G.Universe);
  DataflowResult R = solveDataflowGeneric(G.N, G.Preds, G.Succs, G.Exits, P);

  PathOracle O(G);
  for (unsigned B = 0; B < G.N; ++B) {
    if (!O.Reached[B])
      continue;
    // The solver must never claim a fact that fails on some path
    // (soundness for the paper's "all paths" = noncurrent claims) ...
    EXPECT_TRUE(R.In[B].isSubsetOf(O.AllIn[B])) << "block " << B;
    // ... and on these small graphs it is exact.
    EXPECT_EQ(R.In[B], O.AllIn[B]) << "block " << B;
  }
}

TEST_P(DataflowVsOracle, SomeAlwaysContainsAll) {
  RandomCFG G = makeCFG(GetParam() + 9000);
  DataflowProblem P;
  P.Dir = FlowDir::Forward;
  P.Universe = G.Universe;
  P.Gen = G.Gen;
  P.Kill = G.Kill;
  P.Boundary = BitVector(G.Universe);
  P.Meet = FlowMeet::Union;
  DataflowResult Some =
      solveDataflowGeneric(G.N, G.Preds, G.Succs, G.Exits, P);
  P.Meet = FlowMeet::Intersect;
  DataflowResult All =
      solveDataflowGeneric(G.N, G.Preds, G.Succs, G.Exits, P);
  // Lattice sanity behind Lemmas 2/3 and 5/6: whatever holds on all
  // paths holds on some path (for reachable blocks).
  PathOracle O(G);
  for (unsigned B = 0; B < G.N; ++B)
    if (O.Reached[B]) {
      EXPECT_TRUE(All.In[B].isSubsetOf(Some.In[B])) << "block " << B;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DataflowVsOracle,
                         ::testing::Range(0u, 50u));

//===----------------------------------------------------------------------===//
// Marker-shaped transfers: hoist reach and dead reach with supersession.
//===----------------------------------------------------------------------===//

namespace {

/// One instruction-like event inside a block, in program order.
struct Event {
  enum KindT {
    Marker, ///< Dead marker of Var with instance id Id: gen self,
            ///< supersede (kill) all other markers of Var.
    Assign, ///< Real assignment to Var: kill all markers of Var.
    HoistLand, ///< Hoisted instance Id lands here: gen Id.
    Original   ///< Original position of instance Id: kill Id.
  } Kind;
  unsigned Var = 0; ///< For Marker/Assign.
  unsigned Id = 0;  ///< Marker / hoisted-instance id.
};

struct EventCFG {
  unsigned N = 0;
  std::vector<std::vector<unsigned>> Preds, Succs;
  std::vector<unsigned> Exits;
  std::vector<std::vector<Event>> Events; ///< Per block, program order.
  unsigned Universe = 0;                  ///< Number of instance ids.
  unsigned NumVars = 0;
  std::vector<unsigned> IdVar; ///< Var of each marker id (dead reach).
};

/// Random <= 8 block topology (same construction as makeCFG).
void makeTopology(std::mt19937 &Rng, EventCFG &G) {
  G.N = 3 + Rng() % 6;
  G.Preds.resize(G.N);
  G.Succs.resize(G.N);
  for (unsigned B = 0; B + 1 < G.N; ++B) {
    unsigned T = B + 1 + Rng() % (G.N - B - 1);
    G.Succs[B].push_back(T);
    G.Preds[T].push_back(B);
    if (Rng() % 2) {
      unsigned T2 = B + 1 + Rng() % (G.N - B - 1);
      if (T2 != T) {
        G.Succs[B].push_back(T2);
        G.Preds[T2].push_back(B);
      }
    }
  }
  for (unsigned B = 1; B < G.N; ++B)
    if (G.Preds[B].empty()) {
      unsigned From = Rng() % B;
      G.Succs[From].push_back(B);
      G.Preds[B].push_back(From);
    }
  if (Rng() % 2 && G.N > 2) {
    unsigned From = 1 + Rng() % (G.N - 1);
    unsigned To = Rng() % From;
    G.Succs[From].push_back(To);
    G.Preds[To].push_back(From);
  }
  for (unsigned B = 0; B < G.N; ++B)
    if (G.Succs[B].empty())
      G.Exits.push_back(B);
  if (G.Exits.empty())
    G.Exits.push_back(G.N - 1);
}

/// Dead-reach shape: markers of NumVars variables plus real assignments.
EventCFG makeDeadReachCFG(unsigned Seed) {
  std::mt19937 Rng(Seed);
  EventCFG G;
  makeTopology(Rng, G);
  G.NumVars = 2;
  unsigned NextId = 0;
  G.Events.resize(G.N);
  for (unsigned B = 0; B < G.N; ++B) {
    unsigned Count = Rng() % 3;
    for (unsigned K = 0; K < Count && NextId < 5; ++K) {
      unsigned V = Rng() % G.NumVars;
      if (Rng() % 2) {
        G.Events[B].push_back({Event::Marker, V, NextId});
        G.IdVar.push_back(V);
        ++NextId;
      } else {
        G.Events[B].push_back({Event::Assign, V, 0});
      }
    }
  }
  G.Universe = NextId;
  return G;
}

/// Hoist-reach shape: each instance lands (gen) in one block and has its
/// original position (kill) in a later-or-equal random block.
EventCFG makeHoistReachCFG(unsigned Seed) {
  std::mt19937 Rng(Seed);
  EventCFG G;
  makeTopology(Rng, G);
  G.Events.resize(G.N);
  unsigned Instances = 1 + Rng() % 4;
  G.Universe = Instances;
  for (unsigned Id = 0; Id < Instances; ++Id) {
    unsigned Land = Rng() % G.N;
    unsigned Orig = Rng() % G.N;
    G.Events[Land].push_back({Event::HoistLand, 0, Id});
    G.Events[Orig].push_back({Event::Original, 0, Id});
  }
  return G;
}

/// Applies one event to a reaching set, mirroring the analyses' rules.
void applyEvent(const EventCFG &G, const Event &E, BitVector &S) {
  switch (E.Kind) {
  case Event::Marker:
    for (unsigned Id = 0; Id < G.Universe; ++Id)
      if (G.IdVar[Id] == E.Var)
        S.reset(Id); // Supersession: newest marker wins.
    S.set(E.Id);
    break;
  case Event::Assign:
    for (unsigned Id = 0; Id < G.Universe; ++Id)
      if (G.IdVar[Id] == E.Var)
        S.reset(Id);
    break;
  case Event::HoistLand:
    S.set(E.Id);
    break;
  case Event::Original:
    S.reset(E.Id);
    break;
  }
}

/// Composes a block's events into Gen/Kill exactly the way the passes
/// build their transfer functions: a kill clears any earlier gen; a gen
/// clears any earlier kill.
void composeBlock(const EventCFG &G, unsigned B, BitVector &Gen,
                  BitVector &Kill) {
  Gen = BitVector(G.Universe);
  Kill = BitVector(G.Universe);
  auto KillId = [&](unsigned Id) {
    Gen.reset(Id);
    Kill.set(Id);
  };
  auto GenId = [&](unsigned Id) {
    Gen.set(Id);
    Kill.reset(Id);
  };
  for (const Event &E : G.Events[B])
    switch (E.Kind) {
    case Event::Marker:
      for (unsigned Id = 0; Id < G.Universe; ++Id)
        if (G.IdVar[Id] == E.Var)
          KillId(Id);
      GenId(E.Id);
      break;
    case Event::Assign:
      for (unsigned Id = 0; Id < G.Universe; ++Id)
        if (G.IdVar[Id] == E.Var)
          KillId(Id);
      break;
    case Event::HoistLand:
      GenId(E.Id);
      break;
    case Event::Original:
      KillId(E.Id);
      break;
    }
}

/// Path oracle replaying raw events (not composed sets) along every
/// path, with exact-state memoization as in PathOracle.
struct EventOracle {
  std::vector<BitVector> SomeIn, AllIn;
  std::vector<bool> Reached;

  explicit EventOracle(const EventCFG &G) {
    SomeIn.assign(G.N, BitVector(G.Universe));
    AllIn.assign(G.N, BitVector(G.Universe, true));
    Reached.assign(G.N, false);
    Seen.assign(G.N, std::vector<bool>(1u << G.Universe, false));
    BitVector Empty(G.Universe);
    walk(G, 0, Empty);
  }

private:
  static unsigned mask(const BitVector &BV) {
    unsigned M = 0;
    for (unsigned I : BV)
      M |= 1u << I;
    return M;
  }

  void walk(const EventCFG &G, unsigned B, const BitVector &In) {
    unsigned M = mask(In);
    if (Seen[B][M])
      return;
    Seen[B][M] = true;
    if (!Reached[B]) {
      Reached[B] = true;
      SomeIn[B] = In;
      AllIn[B] = In;
    } else {
      SomeIn[B] |= In;
      AllIn[B] &= In;
    }
    BitVector Out = In;
    for (const Event &E : G.Events[B])
      applyEvent(G, E, Out);
    for (unsigned Succ : G.Succs[B])
      walk(G, Succ, Out);
  }

  std::vector<std::vector<bool>> Seen;
};

void solveBoth(const EventCFG &G, DataflowResult &Some,
               DataflowResult &All) {
  DataflowProblem P;
  P.Dir = FlowDir::Forward;
  P.Universe = G.Universe;
  P.Gen.resize(G.N);
  P.Kill.resize(G.N);
  for (unsigned B = 0; B < G.N; ++B)
    composeBlock(G, B, P.Gen[B], P.Kill[B]);
  P.Boundary = BitVector(G.Universe);
  P.Meet = FlowMeet::Union;
  Some = solveDataflowGeneric(G.N, G.Preds, G.Succs, G.Exits, P);
  P.Meet = FlowMeet::Intersect;
  All = solveDataflowGeneric(G.N, G.Preds, G.Succs, G.Exits, P);
}

class MarkerReachVsOracle : public ::testing::TestWithParam<unsigned> {};

} // namespace

// Dead reach (Definition 2): DeadSome must equal "some path carries the
// marker"; DeadAll must never claim a marker a path refutes — that claim
// is what lets the classifier report Noncurrent and substitute a
// recovery, so a false positive there is user-visible unsoundness.
TEST_P(MarkerReachVsOracle, DeadReachSupersedeMatchesPathReplay) {
  EventCFG G = makeDeadReachCFG(GetParam());
  if (G.Universe == 0)
    return; // No markers generated for this seed; nothing to check.
  DataflowResult Some, All;
  solveBoth(G, Some, All);
  EventOracle O(G);
  for (unsigned B = 0; B < G.N; ++B) {
    if (!O.Reached[B])
      continue;
    EXPECT_EQ(Some.In[B], O.SomeIn[B]) << "block " << B;
    EXPECT_TRUE(All.In[B].isSubsetOf(O.AllIn[B])) << "block " << B;
    EXPECT_EQ(All.In[B], O.AllIn[B]) << "block " << B;
  }
}

// Hoist reach (Definition 1): gen at the landing site, kill at the
// original position.  HoistAll drives the unconditional Noncurrent/
// Premature verdict, so it must match the all-paths truth exactly.
TEST_P(MarkerReachVsOracle, HoistReachMatchesPathReplay) {
  EventCFG G = makeHoistReachCFG(GetParam() + 1234);
  DataflowResult Some, All;
  solveBoth(G, Some, All);
  EventOracle O(G);
  for (unsigned B = 0; B < G.N; ++B) {
    if (!O.Reached[B])
      continue;
    EXPECT_EQ(Some.In[B], O.SomeIn[B]) << "block " << B;
    EXPECT_TRUE(All.In[B].isSubsetOf(O.AllIn[B])) << "block " << B;
    EXPECT_EQ(All.In[B], O.AllIn[B]) << "block " << B;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MarkerReachVsOracle,
                         ::testing::Range(0u, 50u));
