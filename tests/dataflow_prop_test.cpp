//===- tests/dataflow_prop_test.cpp - Solver vs path oracle ----*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
// Property test of the generic bit-vector solver against a brute-force
// path-enumeration oracle on random small CFGs: for a union-meet forward
// problem, a fact holds at block entry iff it holds along SOME acyclic-
// unrolled path from the entry; for intersection, iff it holds along ALL
// paths.  This is exactly the "some paths" / "all paths" split the
// paper's Lemmas 2/3 and 5/6 rely on.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dataflow.h"

#include <gtest/gtest.h>

#include <random>

using namespace sldb;

namespace {

struct RandomCFG {
  unsigned N;
  std::vector<std::vector<unsigned>> Preds, Succs;
  std::vector<unsigned> Exits;
  // Per-block transfer over a tiny universe: for each bit, Gen or Kill.
  std::vector<BitVector> Gen, Kill;
  unsigned Universe;
};

RandomCFG makeCFG(unsigned Seed, unsigned Universe = 4) {
  std::mt19937 Rng(Seed);
  RandomCFG G;
  G.N = 3 + Rng() % 6;
  G.Universe = Universe;
  G.Preds.resize(G.N);
  G.Succs.resize(G.N);
  // A connected-ish DAG skeleton plus a few random extra/back edges.
  for (unsigned B = 0; B + 1 < G.N; ++B) {
    unsigned T = B + 1 + Rng() % (G.N - B - 1);
    G.Succs[B].push_back(T);
    G.Preds[T].push_back(B);
    if (Rng() % 2) {
      unsigned T2 = B + 1 + Rng() % (G.N - B - 1);
      if (T2 != T) {
        G.Succs[B].push_back(T2);
        G.Preds[T2].push_back(B);
      }
    }
  }
  // Ensure every block is reachable (the compiler deletes unreachable
  // blocks before analysis; the solver is conservative, not exact, at
  // joins fed by unreachable code).
  for (unsigned B = 1; B < G.N; ++B)
    if (G.Preds[B].empty()) {
      unsigned From = Rng() % B;
      G.Succs[From].push_back(B);
      G.Preds[B].push_back(From);
    }
  // One optional back edge for loop coverage.
  if (Rng() % 2 && G.N > 2) {
    unsigned From = 1 + Rng() % (G.N - 1);
    unsigned To = Rng() % From;
    G.Succs[From].push_back(To);
    G.Preds[To].push_back(From);
  }
  for (unsigned B = 0; B < G.N; ++B)
    if (G.Succs[B].empty())
      G.Exits.push_back(B);
  if (G.Exits.empty())
    G.Exits.push_back(G.N - 1);

  G.Gen.assign(G.N, BitVector(Universe));
  G.Kill.assign(G.N, BitVector(Universe));
  for (unsigned B = 0; B < G.N; ++B)
    for (unsigned Bit = 0; Bit < Universe; ++Bit) {
      unsigned R = Rng() % 4;
      if (R == 0)
        G.Gen[B].set(Bit);
      else if (R == 1)
        G.Kill[B].set(Bit);
    }
  return G;
}

/// Oracle: enumerates all paths from the entry of length <= Depth,
/// recording which facts can reach each block entry (Some) and which
/// reach on every enumerated complete visit (All).  Cyclic graphs are
/// handled by unrolling: with Depth >= N * (Universe + 2), the bit-vector
/// fixed point and the path semantics agree on these small graphs.
struct PathOracle {
  std::vector<BitVector> SomeIn;      ///< Union over paths.
  std::vector<BitVector> AllIn;       ///< Intersection over paths.
  std::vector<bool> Reached;

  explicit PathOracle(const RandomCFG &G) {
    SomeIn.assign(G.N, BitVector(G.Universe));
    AllIn.assign(G.N, BitVector(G.Universe, true));
    Reached.assign(G.N, false);
    Seen.assign(G.N, std::vector<bool>(1u << G.Universe, false));
    BitVector Empty(G.Universe);
    walk(G, 0, Empty);
  }

private:
  static unsigned mask(const BitVector &BV) {
    unsigned M = 0;
    for (unsigned I : BV)
      M |= 1u << I;
    return M;
  }

  void walk(const RandomCFG &G, unsigned B, const BitVector &In) {
    // Exact-state memoization: the universe is tiny, so the set of
    // reachable (block, state) pairs is finite and fully enumerable —
    // every distinct arriving state is explored exactly once.
    unsigned M = mask(In);
    if (Seen[B][M])
      return;
    Seen[B][M] = true;
    if (!Reached[B]) {
      Reached[B] = true;
      SomeIn[B] = In;
      AllIn[B] = In;
    } else {
      SomeIn[B] |= In;
      AllIn[B] &= In;
    }
    BitVector Out = In;
    Out.subtract(G.Kill[B]);
    Out |= G.Gen[B];
    for (unsigned Succ : G.Succs[B])
      walk(G, Succ, Out);
  }

  std::vector<std::vector<bool>> Seen;
};

class DataflowVsOracle : public ::testing::TestWithParam<unsigned> {};

} // namespace

TEST_P(DataflowVsOracle, UnionMeetMatchesSomePath) {
  RandomCFG G = makeCFG(GetParam());
  DataflowProblem P;
  P.Dir = FlowDir::Forward;
  P.Meet = FlowMeet::Union;
  P.Universe = G.Universe;
  P.Gen = G.Gen;
  P.Kill = G.Kill;
  P.Boundary = BitVector(G.Universe);
  DataflowResult R = solveDataflowGeneric(G.N, G.Preds, G.Succs, G.Exits, P);

  PathOracle O(G);
  for (unsigned B = 0; B < G.N; ++B) {
    if (!O.Reached[B])
      continue; // Unreachable blocks are don't-care.
    EXPECT_EQ(R.In[B], O.SomeIn[B]) << "block " << B;
  }
}

TEST_P(DataflowVsOracle, IntersectMeetMatchesAllPaths) {
  RandomCFG G = makeCFG(GetParam() + 500);
  DataflowProblem P;
  P.Dir = FlowDir::Forward;
  P.Meet = FlowMeet::Intersect;
  P.Universe = G.Universe;
  P.Gen = G.Gen;
  P.Kill = G.Kill;
  P.Boundary = BitVector(G.Universe);
  DataflowResult R = solveDataflowGeneric(G.N, G.Preds, G.Succs, G.Exits, P);

  PathOracle O(G);
  for (unsigned B = 0; B < G.N; ++B) {
    if (!O.Reached[B])
      continue;
    // The solver must never claim a fact that fails on some path
    // (soundness for the paper's "all paths" = noncurrent claims) ...
    EXPECT_TRUE(R.In[B].isSubsetOf(O.AllIn[B])) << "block " << B;
    // ... and on these small graphs it is exact.
    EXPECT_EQ(R.In[B], O.AllIn[B]) << "block " << B;
  }
}

TEST_P(DataflowVsOracle, SomeAlwaysContainsAll) {
  RandomCFG G = makeCFG(GetParam() + 9000);
  DataflowProblem P;
  P.Dir = FlowDir::Forward;
  P.Universe = G.Universe;
  P.Gen = G.Gen;
  P.Kill = G.Kill;
  P.Boundary = BitVector(G.Universe);
  P.Meet = FlowMeet::Union;
  DataflowResult Some =
      solveDataflowGeneric(G.N, G.Preds, G.Succs, G.Exits, P);
  P.Meet = FlowMeet::Intersect;
  DataflowResult All =
      solveDataflowGeneric(G.N, G.Preds, G.Succs, G.Exits, P);
  // Lattice sanity behind Lemmas 2/3 and 5/6: whatever holds on all
  // paths holds on some path (for reachable blocks).
  PathOracle O(G);
  for (unsigned B = 0; B < G.N; ++B)
    if (O.Reached[B]) {
      EXPECT_TRUE(All.In[B].isSubsetOf(Some.In[B])) << "block " << B;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DataflowVsOracle,
                         ::testing::Range(0u, 50u));
