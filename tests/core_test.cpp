//===- tests/core_test.cpp - Classifier + Debugger tests -------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
// Reproduces the paper's Figure 2 (code hoisting) and Figure 3 (dead code
// elimination / sinking) classifications end-to-end, plus the soundness
// property of Figure 1: a value shown without warning is always the
// source-level expected value.
//
//===----------------------------------------------------------------------===//

#include "codegen/ISel.h"
#include "core/Debugger.h"
#include "ir/IRGen.h"
#include "ir/IRPrinter.h"
#include "opt/Pass.h"

#include <gtest/gtest.h>

#include <random>

using namespace sldb;

namespace {

std::unique_ptr<IRModule> frontend(std::string_view Src) {
  DiagnosticEngine Diags;
  auto M = compileToIR(Src, Diags);
  EXPECT_TRUE(M != nullptr) << Diags.str();
  return M;
}

MachineModule buildMachine(std::string_view Src, const OptOptions &Opts,
                           bool Promote = true) {
  auto M = frontend(Src);
  runPipeline(*M, Opts);
  CodegenOptions CG;
  CG.PromoteVars = Promote;
  MachineModule MM = compileToMachine(*M, CG);
  // NOTE: MachineModule borrows ProgramInfo from the IRModule; keep the
  // IRModule alive by leaking it into a static pool (tests only).
  static std::vector<std::unique_ptr<IRModule>> Pool;
  Pool.push_back(std::move(M));
  return MM;
}

VarId findVar(const MachineModule &MM, const std::string &Name,
              const std::string &Func) {
  FuncId F = MM.Info->findFunc(Func);
  for (VarId V : MM.Info->func(F).Locals)
    if (MM.Info->var(V).Name == Name)
      return V;
  return InvalidVar;
}

/// Finds the first function-local address matching \p Pred in main.
template <typename PredT>
std::int64_t findAddr(const MachineFunction &MF, PredT Pred) {
  std::uint32_t Addr = 0;
  for (const MachineBlock &B : MF.Blocks)
    for (const MInstr &I : B.Insts) {
      if (Pred(I))
        return Addr;
      ++Addr;
    }
  return -1;
}

} // namespace

//===----------------------------------------------------------------------===//
// Figure 2: code hoisting
//===----------------------------------------------------------------------===//

namespace {
OptOptions preOnly() {
  OptOptions O = OptOptions::none();
  O.PRE = true;
  return O;
}
const char *Fig2 = R"(
  int main() {
    int u = 7; int v = 3; int y = 2; int z = 4;
    int x = u - v;        // s4: E0
    if (u > v) {
      x = y + z;          // s6: E1
    } else {
      u = u + 1;          // s7 (hoisted E3 lands after this)
    }
    x = y + z;            // s8: E2 -> avail marker
    print(x);             // s9: Bkpt3
    print(u);
    return 0;
  }
)";
} // namespace

TEST(Figure2, SuspectAtJoinCurrentAfterMarker) {
  MachineModule MM = buildMachine(Fig2, preOnly());
  const MachineFunction &MF = *MM.findFunc("main");
  Classifier C(MF, *MM.Info);
  VarId X = findVar(MM, "x", "main");
  ASSERT_NE(X, InvalidVar);

  // Statement ids: u=0, v=1, y=2, z=3, x=u-v=4, if=5, x=y+z=6, u=u+1=7,
  // x=y+z=8, print(x)=9, print(u)=10, return=11.
  ASSERT_GE(MF.StmtAddr.size(), 10u);

  // Bkpt2 == the avail marker position of E2 (statement 8): x is suspect
  // (premature on the else path, current on the then path).
  std::int32_t Bkpt2 = MF.StmtAddr[8];
  ASSERT_GE(Bkpt2, 0);
  Classification At8 = C.classify(static_cast<std::uint32_t>(Bkpt2), X);
  EXPECT_EQ(At8.Kind, VarClass::Suspect)
      << printMachineFunction(MF, MM.Info);
  EXPECT_EQ(At8.Cause, EndangerCause::MaybePremature);

  // Bkpt3 == print(x) (statement 9): all paths passed the redundant
  // copy's marker; x is current.
  std::int32_t Bkpt3 = MF.StmtAddr[9];
  ASSERT_GE(Bkpt3, 0);
  Classification At9 = C.classify(static_cast<std::uint32_t>(Bkpt3), X);
  EXPECT_EQ(At9.Kind, VarClass::Current)
      << printMachineFunction(MF, MM.Info);
}

TEST(Figure2, NoncurrentRightAfterHoistedInstance) {
  MachineModule MM = buildMachine(Fig2, preOnly());
  const MachineFunction &MF = *MM.findFunc("main");
  Classifier C(MF, *MM.Info);
  VarId X = findVar(MM, "x", "main");

  // Find the hoisted instance; immediately after it (Bkpt1 of the
  // paper), x is noncurrent: the assignment executed prematurely and no
  // path to that point avoids it.
  std::int64_t HoistAddr = findAddr(MF, [](const MInstr &I) {
    return I.IsHoisted && I.DestVar != InvalidVar;
  });
  ASSERT_GE(HoistAddr, 0) << printMachineFunction(MF, MM.Info);
  Classification After =
      C.classify(static_cast<std::uint32_t>(HoistAddr + 1), X);
  EXPECT_EQ(After.Kind, VarClass::Noncurrent)
      << printMachineFunction(MF, MM.Info);
  EXPECT_EQ(After.Cause, EndangerCause::Premature);
  EXPECT_NE(After.CulpritStmt, InvalidStmt);
}

TEST(Figure2, WarningTextMentionsPrematureExecution) {
  MachineModule MM = buildMachine(Fig2, preOnly());
  const MachineFunction &MF = *MM.findFunc("main");
  Classifier C(MF, *MM.Info);
  VarId X = findVar(MM, "x", "main");
  std::int64_t HoistAddr = findAddr(MF, [](const MInstr &I) {
    return I.IsHoisted && I.DestVar != InvalidVar;
  });
  ASSERT_GE(HoistAddr, 0);
  Classification After =
      C.classify(static_cast<std::uint32_t>(HoistAddr + 1), X);
  std::string W = C.warningText(After, X);
  EXPECT_NE(W.find("noncurrent"), std::string::npos);
  EXPECT_NE(W.find("hoisted"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Figure 3: dead-code elimination / sinking
//===----------------------------------------------------------------------===//

namespace {
OptOptions pdeOnly() {
  OptOptions O = OptOptions::none();
  O.PDE = true;
  return O;
}
const char *Fig3 = R"(
  int main() {
    int u = 5; int v = 2; int y = 3; int z = 4;
    int x = y + z;       // s4: E0, partially dead -> sunk, marker here
    if (u > v) {
      x = u - v;         // s6: E1
      print(x);          // s7
    } else {
      print(x);          // s8 (sunk copy lands before this)
    }
    print(u);            // s9: join
    return 0;
  }
)";
} // namespace

TEST(Figure3, NoncurrentBetweenMarkerAndSunkCopy) {
  // Without register promotion (Figure 5(a) configuration) every
  // variable is memory-resident, so dead-code endangerment is visible as
  // noncurrent/suspect rather than being masked by nonresidency (the
  // masking itself is the paper's Figure 5(b) finding).
  MachineModule MM = buildMachine(Fig3, pdeOnly(), /*Promote=*/false);
  const MachineFunction &MF = *MM.findFunc("main");
  Classifier C(MF, *MM.Info);
  VarId X = findVar(MM, "x", "main");
  ASSERT_NE(X, InvalidVar);

  // At the `if` statement (s5), the dead marker for x has been passed on
  // the only path: x is noncurrent (stale), Lemma 5.
  ASSERT_GE(MF.StmtAddr.size(), 6u);
  std::int32_t AtIf = MF.StmtAddr[5];
  ASSERT_GE(AtIf, 0);
  Classification CIf = C.classify(static_cast<std::uint32_t>(AtIf), X);
  EXPECT_EQ(CIf.Kind, VarClass::Noncurrent)
      << printMachineFunction(MF, MM.Info);
  EXPECT_EQ(CIf.Cause, EndangerCause::Stale);
  EXPECT_EQ(CIf.CulpritStmt, 4u);
}

TEST(Figure3, RecoveredOrCurrentAtUses) {
  MachineModule MM = buildMachine(Fig3, pdeOnly(), /*Promote=*/false);
  const MachineFunction &MF = *MM.findFunc("main");
  Classifier C(MF, *MM.Info);
  VarId X = findVar(MM, "x", "main");

  // At print(x) in the else branch (s8), the sunk copy has executed:
  // x is current (the assignment's value arrived, just later).
  std::int32_t AtS8 = MF.StmtAddr[8];
  ASSERT_GE(AtS8, 0);
  Classification C8 = C.classify(static_cast<std::uint32_t>(AtS8), X);
  EXPECT_EQ(C8.Kind, VarClass::Current)
      << printMachineFunction(MF, MM.Info);

  // At print(x) in the then branch (s7), x was redefined by E1: current.
  std::int32_t AtS7 = MF.StmtAddr[7];
  ASSERT_GE(AtS7, 0);
  Classification C7 = C.classify(static_cast<std::uint32_t>(AtS7), X);
  EXPECT_EQ(C7.Kind, VarClass::Current);
}

TEST(Figure3, SuspectAtJoin) {
  // Variant where x stays dead on the then-path all the way to the join:
  // suspect there (Lemma 6 / paper Bkpt5).
  const char *Src = R"(
    int main() {
      int u = 5; int v = 2; int y = 3; int z = 4;
      int x = y + z;
      if (u > v) {
        u = u + 9;        // x stays stale on this path
      } else {
        print(x);         // sunk copy of x lands before this
      }
      print(u);           // join: x suspect (paper Bkpt5)
      x = u - v;          // like the paper's E1: x current again
      print(x);           // paper Bkpt6
      return 0;
    }
  )";
  MachineModule MM = buildMachine(Src, pdeOnly(), /*Promote=*/false);
  const MachineFunction &MF = *MM.findFunc("main");
  Classifier C(MF, *MM.Info);
  VarId X = findVar(MM, "x", "main");

  std::int32_t AtJoin = MF.StmtAddr[8]; // print(u)
  ASSERT_GE(AtJoin, 0);
  Classification CJ = C.classify(static_cast<std::uint32_t>(AtJoin), X);
  EXPECT_EQ(CJ.Kind, VarClass::Suspect)
      << printMachineFunction(MF, MM.Info);
  EXPECT_EQ(CJ.Cause, EndangerCause::MaybeStale);
}

//===----------------------------------------------------------------------===//
// Recovery (paper §2.5 / Figure 4)
//===----------------------------------------------------------------------===//

TEST(Recovery, DeadCopyRecoveredFromSource) {
  // `c = a` is dead; at a breakpoint after its elimination the debugger
  // recovers c's expected value from a (they are aliased).
  const char *Src = R"(
    int main() {
      int a = 7;
      int c = a;          // s1: dead (c never used) -> marker, recover=a
      print(a);           // s2
      return a;
    }
  )";
  OptOptions O = OptOptions::none();
  O.DCE = true;
  MachineModule MM = buildMachine(Src, O);
  Debugger Dbg(MM);
  FuncId Main = MM.Info->findFunc("main");
  ASSERT_TRUE(Dbg.setBreakpointAtStmt(Main, 2)); // print(a)
  ASSERT_EQ(Dbg.run(), StopReason::Breakpoint);
  auto Rep = Dbg.queryVariable("c");
  ASSERT_TRUE(Rep.has_value());
  // Recovery kills the dead reach and provides residence (paper: "the
  // dead reach of V is killed by E"); c displays its expected value.
  EXPECT_EQ(Rep->Class.Kind, VarClass::Current);
  EXPECT_TRUE(Rep->Class.Recoverable);
  EXPECT_TRUE(Rep->HasValue);
  EXPECT_EQ(Rep->IntValue, 7); // Expected value reconstructed.
}

TEST(Recovery, ConstantRecovery) {
  const char *Src = R"(
    int main() {
      int flag = 123;     // s0: dead -> marker, recover=123
      print(9);           // s1
      return 0;
    }
  )";
  OptOptions O = OptOptions::none();
  O.DCE = true;
  MachineModule MM = buildMachine(Src, O);
  Debugger Dbg(MM);
  FuncId Main = MM.Info->findFunc("main");
  ASSERT_TRUE(Dbg.setBreakpointAtStmt(Main, 1));
  ASSERT_EQ(Dbg.run(), StopReason::Breakpoint);
  auto Rep = Dbg.queryVariable("flag");
  ASSERT_TRUE(Rep.has_value());
  EXPECT_TRUE(Rep->Class.Recoverable);
  EXPECT_TRUE(Rep->HasValue);
  EXPECT_EQ(Rep->IntValue, 123);
}

TEST(Recovery, SelfCopyDoesNotLaunderStaleValue) {
  // `v = v` is dead and gets a marker whose "recovery" source is v
  // itself; an earlier eliminated assignment made v stale.  The
  // classifier must not report v current via the self-alias (regression:
  // found by the randomized never-misleads property).
  const char *Src = R"(
    int main() {
      int v = 0;
      int guard = 1;
      if (guard) {
        for (int i = 0; i < 3; i = i + 1) {
          v = -4;          // eliminated: v only self-assigned after
        }
      }
      v = v;               // self-copy, dead
      print(guard);        // breakpoint: v stale, must not show 0 silently
      return 0;
    }
  )";
  OptOptions Opts = OptOptions::all();
  Opts.LoopPeel = false;
  Opts.LoopUnroll = false;
  MachineModule MM = buildMachine(Src, Opts, /*Promote=*/false);
  const MachineFunction &MF = *MM.findFunc("main");
  Classifier C(MF, *MM.Info);
  VarId V = findVar(MM, "v", "main");
  ASSERT_NE(V, InvalidVar);
  // Find the print statement's breakpoint.
  StmtId PrintStmt = 7;
  if (PrintStmt >= MF.StmtAddr.size() || MF.StmtAddr[PrintStmt] < 0)
    GTEST_SKIP() << "statement map shifted";
  Classification CC =
      C.classify(static_cast<std::uint32_t>(MF.StmtAddr[PrintStmt]), V);
  // Whatever the classification, it must not be an unwarned
  // current-with-recovery claiming the stale register value.
  if (CC.Kind == VarClass::Current && CC.Recoverable) {
    EXPECT_NE(CC.Recovery.SrcVar, V)
        << "self-referential recovery accepted";
  }
}

//===----------------------------------------------------------------------===//
// Residence / nonresidency (Figure 5(b) mechanics)
//===----------------------------------------------------------------------===//

TEST(Residence, NonresidentAfterRegisterReuse) {
  // Force register pressure so registers get reused; early variables
  // become nonresident at late breakpoints.
  std::string Src = "int main() {\n  int first = 77;\n  int acc = first;\n";
  for (int I = 0; I < 30; ++I)
    Src += "  int t" + std::to_string(I) + " = acc + " + std::to_string(I) +
           "; acc = t" + std::to_string(I) + " * 2 - acc;\n";
  Src += "  print(acc);\n  return 0;\n}\n";
  MachineModule MM = buildMachine(Src, OptOptions::none());
  const MachineFunction &MF = *MM.findFunc("main");
  Classifier C(MF, *MM.Info);
  VarId First = findVar(MM, "first", "main");
  ASSERT_NE(First, InvalidVar);
  // At the final print statement, `first` is long dead; with promotion
  // and pressure its register was reused.
  std::int32_t LastStmt = -1;
  for (std::size_t S = 0; S < MF.StmtAddr.size(); ++S)
    if (MF.StmtAddr[S] >= 0)
      LastStmt = MF.StmtAddr[S];
  ASSERT_GE(LastStmt, 0);
  Classification CF =
      C.classify(static_cast<std::uint32_t>(LastStmt), First);
  EXPECT_EQ(CF.Kind, VarClass::Nonresident);
}

TEST(Residence, MemoryHomedAlwaysResident) {
  const char *Src = R"(
    int main() {
      int x = 5;
      int* p = &x;        // x is address-taken: memory-homed
      *p = 6;
      print(x);
      return 0;
    }
  )";
  MachineModule MM = buildMachine(Src, OptOptions::none());
  const MachineFunction &MF = *MM.findFunc("main");
  Classifier C(MF, *MM.Info);
  VarId X = findVar(MM, "x", "main");
  for (std::size_t S = 1; S < MF.StmtAddr.size(); ++S) {
    if (MF.StmtAddr[S] < 0)
      continue;
    Classification CC =
        C.classify(static_cast<std::uint32_t>(MF.StmtAddr[S]), X);
    EXPECT_NE(CC.Kind, VarClass::Nonresident) << "stmt " << S;
  }
}

TEST(Residence, UninitializedDetected) {
  const char *Src = R"(
    int main() {
      int ready;          // s0: declared, never assigned before s1
      int a = 1;          // s1
      ready = a + 1;      // s2
      print(ready);       // s3
      return 0;
    }
  )";
  MachineModule MM = buildMachine(Src, OptOptions::none());
  const MachineFunction &MF = *MM.findFunc("main");
  Classifier C(MF, *MM.Info);
  VarId Ready = findVar(MM, "ready", "main");
  Classification C1 =
      C.classify(static_cast<std::uint32_t>(MF.StmtAddr[1]), Ready);
  EXPECT_EQ(C1.Kind, VarClass::Uninitialized);
  Classification C3 =
      C.classify(static_cast<std::uint32_t>(MF.StmtAddr[3]), Ready);
  EXPECT_NE(C3.Kind, VarClass::Uninitialized);
}

//===----------------------------------------------------------------------===//
// Debugger session behavior
//===----------------------------------------------------------------------===//

TEST(Debugger, CurrentVariablesShownWithoutWarnings) {
  const char *Src = R"(
    int main() {
      int a = 3;
      int b = a * 7;
      print(b);          // s2
      return 0;
    }
  )";
  MachineModule MM = buildMachine(Src, OptOptions::all());
  Debugger Dbg(MM);
  ASSERT_TRUE(Dbg.setBreakpointAtStmt(MM.Info->findFunc("main"), 2));
  ASSERT_EQ(Dbg.run(), StopReason::Breakpoint);
  auto B = Dbg.queryVariable("b");
  ASSERT_TRUE(B.has_value());
  if (B->Class.Kind == VarClass::Current) {
    EXPECT_TRUE(B->Warning.empty());
    EXPECT_TRUE(B->HasValue);
    EXPECT_EQ(B->IntValue, 21);
  }
}

TEST(Debugger, ScopeReportCoversVisibleLocals) {
  const char *Src = R"(
    int main() {
      int a = 1;
      {
        int b = 2;
        print(a + b);    // s2: a and b in scope
      }
      print(a);          // s3: only a
      return 0;
    }
  )";
  MachineModule MM = buildMachine(Src, OptOptions::none());
  Debugger Dbg(MM);
  FuncId Main = MM.Info->findFunc("main");
  ASSERT_TRUE(Dbg.setBreakpointAtStmt(Main, 2));
  ASSERT_EQ(Dbg.run(), StopReason::Breakpoint);
  auto Scope = Dbg.reportScope();
  EXPECT_EQ(Scope.size(), 2u);
}

TEST(Debugger, GlobalsAlwaysReadable) {
  const char *Src = R"(
    int counter = 5;
    int main() {
      counter = counter + 1;
      print(counter);    // s1
      return 0;
    }
  )";
  MachineModule MM = buildMachine(Src, OptOptions::all());
  Debugger Dbg(MM);
  ASSERT_TRUE(Dbg.setBreakpointAtStmt(MM.Info->findFunc("main"), 1));
  ASSERT_EQ(Dbg.run(), StopReason::Breakpoint);
  auto G = Dbg.queryVariable("counter");
  ASSERT_TRUE(G.has_value());
  EXPECT_TRUE(G->HasValue);
  EXPECT_EQ(G->IntValue, 6);
}

//===----------------------------------------------------------------------===//
// Soundness property: "never misleads" (Figure 1)
//===----------------------------------------------------------------------===//

namespace {

/// Runs the program twice — unoptimized (oracle of source-level expected
/// values) and fully optimized — stopping at every statement of every
/// function.  Both runs must stop in the same (function, statement)
/// sequence; at each stop, any variable the optimized debugger shows
/// WITHOUT a warning (Current) or as recovered must match the oracle's
/// value.
void checkNeverMisleads(std::string_view Src, const OptOptions &Opts) {
  auto M0 = frontend(Src);
  auto M2 = frontend(Src);
  ASSERT_TRUE(M0 && M2);
  runPipeline(*M2, Opts);

  CodegenOptions CGOracle;
  CGOracle.PromoteVars = false;
  CGOracle.Schedule = false;
  MachineModule MMO = compileToMachine(*M0, CGOracle);
  // Scheduling can interleave the *stop order* of adjacent statements;
  // endangerment from instruction scheduling is the subject of the
  // authors' PLDI'93 paper, explicitly out of scope here (paper §1.3),
  // so the pairing harness runs unscheduled code.
  CodegenOptions CGOpt;
  CGOpt.Schedule = false;
  MachineModule MM2 = compileToMachine(*M2, CGOpt);

  Debugger Oracle(MMO), Opt(MM2);
  Oracle.breakEverywhere();
  Opt.breakEverywhere();

  StopReason RO = Oracle.run();
  StopReason R2 = Opt.run();
  unsigned Steps = 0;
  while (RO == StopReason::Breakpoint && R2 == StopReason::Breakpoint &&
         Steps < 3000) {
    ++Steps;
    auto SO = Oracle.currentStmt();
    auto S2 = Opt.currentStmt();
    ASSERT_TRUE(SO.has_value());
    ASSERT_TRUE(S2.has_value());
    // Statements whose code vanished entirely from the optimized build
    // (folded branches, merged blocks) stop only the oracle: skip them.
    // This is the paper's *code location* problem, out of scope for the
    // data-value analyses ([26], paper §1).
    if (Oracle.currentFunction() != Opt.currentFunction() || *SO != *S2) {
      const MachineFunction &OptF =
          Opt.module().Funcs[Oracle.currentFunction()];
      bool Vanished = *SO >= OptF.StmtAddr.size() ||
                      OptF.StmtAddr[*SO] < 0;
      ASSERT_TRUE(Vanished) << "stop " << Steps << " diverged: oracle s"
                            << *SO << " vs optimized s" << *S2;
      RO = Oracle.resume();
      continue;
    }

    auto ScopeO = Oracle.reportScope();
    auto Scope2 = Opt.reportScope();
    ASSERT_EQ(ScopeO.size(), Scope2.size());
    for (std::size_t I = 0; I < Scope2.size(); ++I) {
      const VarReport &VO = ScopeO[I];
      const VarReport &V2 = Scope2[I];
      ASSERT_EQ(VO.Var, V2.Var);
      if (VO.Class.Kind == VarClass::Uninitialized ||
          V2.Class.Kind == VarClass::Uninitialized)
        continue;
      bool ShownAsTruth = V2.Class.Kind == VarClass::Current ||
                          (V2.Class.Kind == VarClass::Noncurrent &&
                           V2.Class.Recoverable);
      if (!ShownAsTruth || !V2.HasValue || !VO.HasValue)
        continue;
      if (V2.IsDouble)
        EXPECT_DOUBLE_EQ(V2.DoubleValue, VO.DoubleValue)
            << "stmt " << *S2 << " var " << V2.Name << " stop " << Steps;
      else
        EXPECT_EQ(V2.IntValue, VO.IntValue)
            << "stmt " << *S2 << " var " << V2.Name << " stop " << Steps;
    }

    RO = Oracle.resume();
    R2 = Opt.resume();
  }
  EXPECT_EQ(RO, R2);
  if (RO == StopReason::Exited) {
    EXPECT_EQ(Oracle.machine().exitValue(), Opt.machine().exitValue());
  }
  EXPECT_EQ(Oracle.machine().outputText(), Opt.machine().outputText());
}

/// Pipeline without loop peeling (peeling duplicates statements, so the
/// syntactic-breakpoint hit sequences of the two builds cannot be paired
/// step by step).
OptOptions noPeel() {
  OptOptions O = OptOptions::all();
  O.LoopPeel = false;
  O.LoopUnroll = false; // Replication duplicates statements, too.
  return O;
}

} // namespace

TEST(NeverMisleads, StraightLine) {
  checkNeverMisleads(R"(
    int main() {
      int a = 2; int b = 3;
      int c = a + b;
      int d = a + b;
      int e = c * d;
      print(e);
      return e;
    }
  )",
                     noPeel());
}

TEST(NeverMisleads, Figure2Program) {
  checkNeverMisleads(R"(
    int main() {
      int u = 7; int v = 3; int y = 2; int z = 4;
      int x = u - v;
      if (u > v) { x = y + z; } else { u = u + 1; }
      x = y + z;
      print(x); print(u);
      return 0;
    }
  )",
                     noPeel());
}

TEST(NeverMisleads, Figure3Program) {
  checkNeverMisleads(R"(
    int main() {
      int u = 5; int v = 2; int y = 3; int z = 4;
      int x = y + z;
      if (u > v) { x = u - v; print(x); } else { print(x); }
      print(u);
      return 0;
    }
  )",
                     noPeel());
}

TEST(NeverMisleads, LoopsAndCalls) {
  checkNeverMisleads(R"(
    int triple(int k) { return k * 3; }
    int main() {
      int s = 0;
      for (int i = 0; i < 6; i = i + 1) {
        int t = triple(i);
        s = s + t;
      }
      print(s);
      return s;
    }
  )",
                     noPeel());
}

TEST(NeverMisleads, DeadAndPartiallyDead) {
  checkNeverMisleads(R"(
    int main() {
      int a = 10;
      int dead1 = a * 2;
      int pd = a + 5;
      if (a > 3) {
        pd = 1;
      } else {
        print(pd);
      }
      int dead2 = pd;
      print(a);
      return 0;
    }
  )",
                     noPeel());
}

//===----------------------------------------------------------------------===//
// Randomized never-misleads property
//===----------------------------------------------------------------------===//

namespace {

class SoundnessGenerator {
public:
  explicit SoundnessGenerator(unsigned Seed) : Rng(Seed) {}

  std::string generate() {
    Src.clear();
    Src += "int main() {\n";
    for (int V = 0; V < 5; ++V)
      Src += "  int v" + std::to_string(V) + " = " +
             std::to_string(static_cast<int>(Rng() % 20) - 10) + ";\n";
    genStmts(2, 6);
    Src += "  print(v0);\n  return 0;\n}\n";
    return Src;
  }

private:
  std::string var() { return "v" + std::to_string(Rng() % 5); }

  std::string expr(int Depth) {
    if (Depth <= 0 || Rng() % 3 == 0) {
      if (Rng() % 2)
        return var();
      return std::to_string(static_cast<int>(Rng() % 9) - 4);
    }
    static const char *Ops[] = {"+", "-", "*", "<", ">"};
    return "(" + expr(Depth - 1) + " " + Ops[Rng() % 5] + " " +
           expr(Depth - 1) + ")";
  }

  void genStmts(int Depth, int Count) {
    for (int S = 0; S < Count; ++S) {
      switch (Rng() % 4) {
      case 0:
      case 1:
        Src += "  " + var() + " = " + expr(2) + ";\n";
        break;
      case 2:
        if (Depth > 0) {
          Src += "  if (" + expr(1) + ") {\n";
          genStmts(Depth - 1, 1 + Rng() % 3);
          Src += "  } else {\n";
          genStmts(Depth - 1, 1 + Rng() % 3);
          Src += "  }\n";
        } else {
          Src += "  " + var() + " = " + expr(1) + ";\n";
        }
        break;
      case 3:
        if (Depth > 0) {
          std::string I = "i" + std::to_string(LoopId++);
          Src += "  for (int " + I + " = 0; " + I + " < " +
                 std::to_string(1 + Rng() % 4) + "; " + I + " = " + I +
                 " + 1) {\n";
          genStmts(Depth - 1, 1 + Rng() % 2);
          Src += "  }\n";
        } else {
          Src += "  print(" + var() + ");\n";
        }
        break;
      }
    }
  }

  std::mt19937 Rng;
  std::string Src;
  int LoopId = 0;
};

class NeverMisleadsRandom : public ::testing::TestWithParam<unsigned> {};

} // namespace

TEST_P(NeverMisleadsRandom, OptimizedDebuggerNeverLies) {
  SoundnessGenerator Gen(GetParam() + 7777);
  std::string Src = Gen.generate();
  SCOPED_TRACE(Src);
  checkNeverMisleads(Src, noPeel());
}

INSTANTIATE_TEST_SUITE_P(Seeds, NeverMisleadsRandom,
                         ::testing::Range(0u, 60u));
