//===- tests/codegen_test.cpp - Back end + VM tests ------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "codegen/ISel.h"
#include "codegen/MachineVerifier.h"
#include "codegen/RegAlloc.h"
#include "codegen/Scheduler.h"
#include "ir/IRGen.h"
#include "ir/IRPrinter.h"
#include "ir/Interp.h"
#include "opt/Pass.h"
#include "vm/Machine.h"

#include <gtest/gtest.h>

#include <random>

using namespace sldb;

namespace {

std::unique_ptr<IRModule> compile(std::string_view Src, bool Optimize) {
  DiagnosticEngine Diags;
  auto M = compileToIR(Src, Diags);
  EXPECT_TRUE(M != nullptr) << Diags.str();
  if (M && Optimize)
    runPipeline(*M, OptOptions::all());
  return M;
}

/// Runs the source through the IR interpreter (oracle) and through the
/// full back end + VM in the given configuration; compares behavior.
void endToEnd(std::string_view Src, bool Optimize, CodegenOptions CG) {
  auto M = compile(Src, Optimize);
  ASSERT_TRUE(M);
  ExecResult Oracle = interpretIR(*M);
  ASSERT_FALSE(Oracle.Trapped) << Oracle.TrapMsg;

  MachineModule MM = compileToMachine(*M, CG);
  {
    std::vector<std::string> Errors;
    bool OK = verifyMachineModule(MM, Errors);
    std::string Joined;
    for (auto &E : Errors)
      Joined += E + "\n";
    ASSERT_TRUE(OK) << Joined;
  }
  Machine VM(MM);
  StopReason Stop = VM.run();
  std::string Code;
  for (const MachineFunction &F : MM.Funcs)
    Code += printMachineFunction(F, MM.Info);
  EXPECT_EQ(Stop, StopReason::Exited) << VM.trapMessage() << "\n" << Code;
  EXPECT_EQ(VM.outputText(), Oracle.outputText()) << Code;
  EXPECT_EQ(VM.exitValue(), Oracle.ExitValue) << Code;
}

void allConfigs(std::string_view Src) {
  for (bool Optimize : {false, true})
    for (bool Promote : {false, true})
      for (bool Sched : {false, true}) {
        SCOPED_TRACE(std::string("optimize=") + (Optimize ? "1" : "0") +
                     " promote=" + (Promote ? "1" : "0") +
                     " sched=" + (Sched ? "1" : "0"));
        CodegenOptions CG;
        CG.PromoteVars = Promote;
        CG.Schedule = Sched;
        endToEnd(Src, Optimize, CG);
      }
}

} // namespace

TEST(VM, MinimalReturn) {
  allConfigs("int main() { return 42; }");
}

TEST(VM, ArithmeticAndPrint) {
  allConfigs(R"(
    int main() {
      int a = 6; int b = 7;
      print(a * b);
      print(a - b);
      print(a % 4);
      return a + b;
    }
  )");
}

TEST(VM, ControlFlow) {
  allConfigs(R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 20; i = i + 1) {
        if (i % 3 == 0) continue;
        if (i > 15) break;
        s = s + i;
      }
      print(s);
      return s;
    }
  )");
}

TEST(VM, CallsAndRecursion) {
  allConfigs(R"(
    int ack(int m, int n) {
      if (m == 0) return n + 1;
      if (n == 0) return ack(m - 1, 1);
      return ack(m - 1, ack(m, n - 1));
    }
    int main() {
      print(ack(2, 3));
      return 0;
    }
  )");
}

TEST(VM, ArraysAndPointers) {
  allConfigs(R"(
    int sum(int* p, int n) {
      int s = 0;
      for (int i = 0; i < n; i = i + 1) s = s + p[i];
      return s;
    }
    int main() {
      int a[12];
      for (int i = 0; i < 12; i = i + 1) a[i] = i * i;
      print(sum(a, 12));
      int* mid = &a[6];
      print(*mid);
      return 0;
    }
  )");
}

TEST(VM, GlobalsPersistAcrossCalls) {
  allConfigs(R"(
    int hits = 0;
    int tally[4];
    void record(int k) { hits = hits + 1; tally[k % 4] = tally[k % 4] + 1; }
    int main() {
      for (int i = 0; i < 10; i = i + 1) record(i);
      print(hits);
      print(tally[0]); print(tally[1]); print(tally[2]); print(tally[3]);
      return 0;
    }
  )");
}

TEST(VM, Doubles) {
  allConfigs(R"(
    double scale = 0.5;
    double mix(double a, double b) { return a * scale + b * (1.0 - scale); }
    int main() {
      double acc = 0.0;
      for (int i = 1; i <= 6; i = i + 1) {
        acc = mix(acc, i * 2.0);
        printd(acc);
      }
      print(acc > 5.0);
      return 0;
    }
  )");
}

TEST(VM, ManyLiveValuesForcesSpills) {
  // 30+ simultaneously live values exceed the 26 allocatable integer
  // registers and force spilling.
  std::string Src = "int main() {\n";
  for (int I = 0; I < 32; ++I)
    Src += "  int x" + std::to_string(I) + " = " + std::to_string(I * 3 + 1) +
           ";\n";
  Src += "  int s = 0;\n";
  for (int I = 0; I < 32; ++I)
    Src += "  s = s + x" + std::to_string(I) + ";\n";
  // Use everything again so all 32 are live across the first sum.
  for (int I = 0; I < 32; ++I)
    Src += "  s = s + x" + std::to_string(I) + " * 2;\n";
  Src += "  print(s);\n  return 0;\n}\n";
  allConfigs(Src);
}

TEST(VM, DivisionByZeroTraps) {
  auto M = compile("int main() { int z = 0; return 7 / z; }", false);
  MachineModule MM = compileToMachine(*M, CodegenOptions());
  Machine VM(MM);
  EXPECT_EQ(VM.run(), StopReason::Trapped);
  EXPECT_NE(VM.trapMessage().find("division"), std::string::npos);
}

TEST(VM, BreakpointStopsAndResumes) {
  auto M = compile(R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 5; i = i + 1) s = s + i;
      print(s);
      return s;
    }
  )",
                   false);
  MachineModule MM = compileToMachine(*M, CodegenOptions());
  const MachineFunction *Main = MM.findFunc("main");
  ASSERT_NE(Main, nullptr);
  // Break at the `s = s + i` statement (id 2: s=0 is 0, i=0 is 1, for is
  // 2... statement ids: s=0 ->0, i=0 ->1, for ->2, s=s+i ->3, inc ->4,
  // print ->5, return ->6).
  ASSERT_GT(Main->StmtAddr.size(), 3u);
  std::int32_t Addr = Main->StmtAddr[3];
  ASSERT_GE(Addr, 0);
  Machine VM(MM);
  CodeAddr BP{static_cast<std::uint32_t>(Main - &MM.Funcs[0]),
              static_cast<std::uint32_t>(Addr)};
  VM.setBreakpoint(BP);
  unsigned Stops = 0;
  StopReason SR = VM.run();
  while (SR == StopReason::Breakpoint) {
    ++Stops;
    SR = VM.resume();
  }
  EXPECT_EQ(SR, StopReason::Exited);
  EXPECT_EQ(Stops, 5u); // Loop body executes 5 times.
  EXPECT_EQ(VM.exitValue(), 10);
}

TEST(VM, InstrCountLowerWithOptimization) {
  const char *Src = R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 50; i = i + 1) {
        int a = 3 + 4;
        int b = a * 2;
        s = s + b + i * 8;
      }
      return s;
    }
  )";
  auto M0 = compile(Src, false);
  auto M2 = compile(Src, true);
  MachineModule MM0 = compileToMachine(*M0, CodegenOptions());
  MachineModule MM2 = compileToMachine(*M2, CodegenOptions());
  Machine V0(MM0), V2(MM2);
  ASSERT_EQ(V0.run(), StopReason::Exited);
  ASSERT_EQ(V2.run(), StopReason::Exited);
  EXPECT_EQ(V0.exitValue(), V2.exitValue());
  EXPECT_LT(V2.instrCount(), V0.instrCount());
}

TEST(VM, NoPromotionMeansFrameStorage) {
  auto M = compile("int main() { int x = 3; int y = x + 1; return y; }",
                   false);
  CodegenOptions CG;
  CG.PromoteVars = false;
  MachineModule MM = compileToMachine(*M, CG);
  const MachineFunction *Main = MM.findFunc("main");
  unsigned FrameVars = 0;
  for (const auto &[V, S] : Main->Storage)
    if (S.K == VarStorage::Kind::Frame)
      ++FrameVars;
  EXPECT_EQ(FrameVars, 2u);
}

TEST(VM, PromotionKeepsScalarsInRegisters) {
  auto M = compile("int main() { int x = 3; int y = x + 1; return y; }",
                   false);
  MachineModule MM = compileToMachine(*M, CodegenOptions());
  const MachineFunction *Main = MM.findFunc("main");
  unsigned RegVars = 0;
  for (const auto &[V, S] : Main->Storage)
    if (S.K == VarStorage::Kind::InReg) {
      ++RegVars;
      EXPECT_FALSE(S.R.isVirtual());
    }
  EXPECT_EQ(RegVars, 2u);
}

TEST(VM, ResidenceBitsCoverLiveRange) {
  auto M = compile(R"(
    int main() {
      int x = 3;
      int y = x + 1;
      int z = y * 2;
      return z;
    }
  )",
                   false);
  MachineModule MM = compileToMachine(*M, CodegenOptions());
  const MachineFunction *Main = MM.findFunc("main");
  // x must be resident somewhere (between def and last use) and
  // nonresident at the final return.
  VarId X = InvalidVar;
  for (VarId V = 0; V < MM.Info->Vars.size(); ++V)
    if (MM.Info->var(V).Name == "x")
      X = V;
  ASSERT_NE(X, InvalidVar);
  auto It = Main->ResidentAt.find(X);
  ASSERT_NE(It, Main->ResidentAt.end());
  EXPECT_TRUE(It->second.any());
  // The last instruction (ret) is past x's live range.
  EXPECT_FALSE(It->second.test(It->second.size() - 1));
}

TEST(Scheduler, PreservesSemantics) {
  const char *Src = R"(
    int main() {
      int a[8];
      int s = 0;
      for (int i = 0; i < 8; i = i + 1) { a[i] = i * 5; }
      for (int i = 0; i < 8; i = i + 1) { s = s + a[i] * a[7 - i]; }
      print(s);
      return 0;
    }
  )";
  for (bool Sched : {false, true}) {
    auto M = compile(Src, true);
    CodegenOptions CG;
    CG.Schedule = Sched;
    MachineModule MM = compileToMachine(*M, CG);
    Machine VM(MM);
    ASSERT_EQ(VM.run(), StopReason::Exited);
    EXPECT_EQ(VM.outputText(), "1400\n");
  }
}

//===----------------------------------------------------------------------===//
// Randomized end-to-end differential tests
//===----------------------------------------------------------------------===//

namespace {

/// Same generator as in opt_test, reused for the machine pipeline.
class ProgramGenerator {
public:
  explicit ProgramGenerator(unsigned Seed) : Rng(Seed) {}

  std::string generate() {
    Src.clear();
    Src += "int main() {\n";
    for (int V = 0; V < 6; ++V)
      Src += "  int v" + std::to_string(V) + " = " +
             std::to_string(static_cast<int>(Rng() % 20) - 10) + ";\n";
    genStmts(2, 8);
    for (int V = 0; V < 6; ++V)
      Src += "  print(v" + std::to_string(V) + ");\n";
    Src += "  return 0;\n}\n";
    return Src;
  }

private:
  std::string var() { return "v" + std::to_string(Rng() % 6); }

  std::string expr(int Depth) {
    if (Depth <= 0 || Rng() % 3 == 0) {
      if (Rng() % 2)
        return var();
      return std::to_string(static_cast<int>(Rng() % 10) - 5);
    }
    static const char *Ops[] = {"+", "-", "*", "<", ">", "==", "&", "|"};
    return "(" + expr(Depth - 1) + " " + Ops[Rng() % 8] + " " +
           expr(Depth - 1) + ")";
  }

  void genStmts(int Depth, int Count) {
    for (int S = 0; S < Count; ++S) {
      switch (Rng() % 5) {
      case 0:
      case 1:
        Src += "  " + var() + " = " + expr(2) + ";\n";
        break;
      case 2:
        if (Depth > 0) {
          Src += "  if (" + expr(1) + ") {\n";
          genStmts(Depth - 1, 2 + Rng() % 3);
          Src += "  } else {\n";
          genStmts(Depth - 1, 2 + Rng() % 3);
          Src += "  }\n";
          break;
        }
        Src += "  " + var() + " = " + expr(2) + ";\n";
        break;
      case 3:
        if (Depth > 0) {
          std::string I = "i" + std::to_string(LoopId++);
          Src += "  for (int " + I + " = 0; " + I + " < " +
                 std::to_string(1 + Rng() % 5) + "; " + I + " = " + I +
                 " + 1) {\n";
          genStmts(Depth - 1, 1 + Rng() % 3);
          Src += "  }\n";
          break;
        }
        Src += "  print(" + var() + ");\n";
        break;
      case 4:
        Src += "  print(" + expr(1) + ");\n";
        break;
      }
    }
  }

  std::mt19937 Rng;
  std::string Src;
  int LoopId = 0;
};

class RandomizedVMTest : public ::testing::TestWithParam<unsigned> {};

} // namespace

TEST_P(RandomizedVMTest, MachinePipelinePreservesSemantics) {
  ProgramGenerator Gen(GetParam() + 1000);
  std::string Src = Gen.generate();
  SCOPED_TRACE(Src);
  allConfigs(Src);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedVMTest, ::testing::Range(0u, 40u));
