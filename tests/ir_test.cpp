//===- tests/ir_test.cpp - IR generation + interpreter tests ---*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/IRGen.h"
#include "ir/IRPrinter.h"
#include "ir/Interp.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace sldb;

namespace {

std::unique_ptr<IRModule> compile(std::string_view Src) {
  DiagnosticEngine Diags;
  auto M = compileToIR(Src, Diags);
  EXPECT_TRUE(M != nullptr) << Diags.str();
  if (M) {
    std::vector<std::string> Errors;
    EXPECT_TRUE(verifyModule(*M, Errors))
        << "verifier failed:\n"
        << [&] {
             std::string S;
             for (auto &E : Errors)
               S += E + "\n";
             return S + printModule(*M);
           }();
  }
  return M;
}

std::string runProgram(std::string_view Src) {
  auto M = compile(Src);
  if (!M)
    return "<compile error>";
  ExecResult R = interpretIR(*M);
  EXPECT_FALSE(R.Trapped) << R.TrapMsg << "\n" << printModule(*M);
  return R.outputText();
}

std::int64_t runExit(std::string_view Src) {
  auto M = compile(Src);
  if (!M)
    return -999;
  ExecResult R = interpretIR(*M);
  EXPECT_FALSE(R.Trapped) << R.TrapMsg;
  return R.ExitValue;
}

} // namespace

//===----------------------------------------------------------------------===//
// Basic execution semantics
//===----------------------------------------------------------------------===//

TEST(Interp, ReturnsConstant) {
  EXPECT_EQ(runExit("int main() { return 42; }"), 42);
}

TEST(Interp, Arithmetic) {
  EXPECT_EQ(runExit("int main() { return 2 + 3 * 4 - 6 / 2; }"), 11);
  EXPECT_EQ(runExit("int main() { return 17 % 5; }"), 2);
  EXPECT_EQ(runExit("int main() { return (1 << 4) | 3; }"), 19);
  EXPECT_EQ(runExit("int main() { return ~0 & 255; }"), 255);
  EXPECT_EQ(runExit("int main() { return -(5 - 9); }"), 4);
}

TEST(Interp, Comparisons) {
  EXPECT_EQ(runExit("int main() { return (1 < 2) + (2 <= 2) + (3 > 2) + "
                    "(2 >= 3) + (1 == 1) + (1 != 1); }"),
            4);
}

TEST(Interp, ShortCircuit) {
  // Division by zero on the right of && must not execute.
  EXPECT_EQ(runExit("int main() { int x = 0; return x != 0 && 10 / x > 0; }"),
            0);
  EXPECT_EQ(runExit("int main() { int x = 3; return x == 3 || 10 / 0; }"), 1);
}

TEST(Interp, IfElse) {
  EXPECT_EQ(runExit(R"(
    int main() {
      int x = 10;
      if (x > 5) { x = 1; } else { x = 2; }
      return x;
    }
  )"),
            1);
}

TEST(Interp, WhileLoop) {
  EXPECT_EQ(runExit(R"(
    int main() {
      int i = 0; int s = 0;
      while (i < 10) { s = s + i; i = i + 1; }
      return s;
    }
  )"),
            45);
}

TEST(Interp, ForLoopWithBreakContinue) {
  EXPECT_EQ(runExit(R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 100; i = i + 1) {
        if (i % 2 == 0) continue;
        if (i > 10) break;
        s = s + i;
      }
      return s;
    }
  )"),
            1 + 3 + 5 + 7 + 9);
}

TEST(Interp, DoWhile) {
  EXPECT_EQ(runExit(R"(
    int main() {
      int i = 0;
      do { i = i + 1; } while (i < 5);
      return i;
    }
  )"),
            5);
}

TEST(Interp, FunctionCallsAndRecursion) {
  EXPECT_EQ(runExit(R"(
    int fib(int n) {
      if (n < 2) return n;
      return fib(n - 1) + fib(n - 2);
    }
    int main() { return fib(10); }
  )"),
            55);
}

TEST(Interp, GlobalsAndArrays) {
  EXPECT_EQ(runExit(R"(
    int g = 7;
    int table[8];
    int main() {
      for (int i = 0; i < 8; i = i + 1) table[i] = i * i;
      return table[5] + g;
    }
  )"),
            32);
}

TEST(Interp, PointersAndAddressOf) {
  EXPECT_EQ(runExit(R"(
    void bump(int* p) { *p = *p + 1; }
    int main() {
      int x = 41;
      bump(&x);
      return x;
    }
  )"),
            42);
}

TEST(Interp, PointerArithmetic) {
  EXPECT_EQ(runExit(R"(
    int main() {
      int a[5];
      int* p = a;
      *(p + 2) = 9;
      return a[2];
    }
  )"),
            9);
}

TEST(Interp, Doubles) {
  EXPECT_EQ(runProgram(R"(
    int main() {
      double x = 1.5;
      double y = x * 4.0;
      printd(y);
      print(y > 5.0);
      return 0;
    }
  )"),
            "6\n1\n");
}

TEST(Interp, IncDecOperators) {
  EXPECT_EQ(runExit(R"(
    int main() {
      int i = 5;
      int a = i++;
      int b = ++i;
      int c = i--;
      int d = --i;
      return a * 1000 + b * 100 + c * 10 + d;
    }
  )"),
            5 * 1000 + 7 * 100 + 7 * 10 + 5);
}

TEST(Interp, CompoundAssignment) {
  EXPECT_EQ(runExit(R"(
    int main() {
      int x = 10;
      x += 5; x -= 3; x *= 2; x /= 4; x %= 5;
      return x;
    }
  )"),
            1);
}

TEST(Interp, Ternary) {
  EXPECT_EQ(runExit("int main() { int x = 3; return x > 2 ? 10 : 20; }"), 10);
}

TEST(Interp, PrintOutput) {
  EXPECT_EQ(runProgram(R"(
    int main() {
      for (int i = 0; i < 3; i = i + 1) print(i * 10);
      return 0;
    }
  )"),
            "0\n10\n20\n");
}

TEST(Interp, DivisionByZeroTraps) {
  auto M = compile("int main() { int z = 0; return 5 / z; }");
  ExecResult R = interpretIR(*M);
  EXPECT_TRUE(R.Trapped);
  EXPECT_NE(R.TrapMsg.find("division by zero"), std::string::npos);
}

TEST(Interp, InfiniteLoopHitsStepLimit) {
  auto M = compile("int main() { while (1) {} return 0; }");
  ExecResult R = interpretIR(*M, 10000);
  EXPECT_TRUE(R.Trapped);
}

TEST(Interp, NestedScopesShadowing) {
  EXPECT_EQ(runExit(R"(
    int main() {
      int x = 1;
      { int x2 = 10; x = x + x2; }
      return x;
    }
  )"),
            11);
}

TEST(Interp, GlobalDoubleInit) {
  EXPECT_EQ(runProgram(R"(
    double scale = 2.5;
    int main() { printd(scale * 2.0); return 0; }
  )"),
            "5\n");
}

//===----------------------------------------------------------------------===//
// IR structure
//===----------------------------------------------------------------------===//

TEST(IRGen, SourceAssignAnnotations) {
  auto M = compile(R"(
    int main() {
      int x = 1;
      int y = x + 2;
      return y;
    }
  )");
  const IRFunction *F = M->findFunc("main");
  ASSERT_NE(F, nullptr);
  unsigned SourceAssigns = 0;
  for (const auto &B : F->Blocks)
    for (const Instr &I : B->Insts)
      if (I.IsSourceAssign) {
        ++SourceAssigns;
        EXPECT_TRUE(I.Dest.isVar());
        EXPECT_NE(I.Stmt, InvalidStmt);
      }
  EXPECT_EQ(SourceAssigns, 2u);
}

TEST(IRGen, AssignmentsAreSingleInstructions) {
  // `x = y + z` must stay one IR instruction with Dest = x: the unit the
  // paper's hoisting/elimination bookkeeping tracks.
  auto M = compile(R"(
    int main() {
      int y = 1; int z = 2;
      int x = y + z;
      return x;
    }
  )");
  const IRFunction *F = M->findFunc("main");
  bool Found = false;
  for (const auto &B : F->Blocks)
    for (const Instr &I : B->Insts)
      if (I.Op == Opcode::Add && I.Dest.isVar() && I.IsSourceAssign)
        Found = true;
  EXPECT_TRUE(Found) << printFunction(*F, M->Info.get());
}

TEST(IRGen, CFGHasPredsComputed) {
  auto M = compile(R"(
    int main() {
      int x = 0;
      if (x) { x = 1; } else { x = 2; }
      return x;
    }
  )");
  const IRFunction *F = M->findFunc("main");
  // The join block must have two predecessors.
  bool FoundJoin = false;
  for (const auto &B : F->Blocks)
    if (B->Preds.size() == 2)
      FoundJoin = true;
  EXPECT_TRUE(FoundJoin);
}

TEST(IRGen, RPOStartsAtEntry) {
  auto M = compile(R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 3; i = i + 1) s = s + 1;
      return s;
    }
  )");
  IRFunction *F = M->findFunc("main");
  auto Order = F->rpo();
  ASSERT_FALSE(Order.empty());
  EXPECT_EQ(Order.front(), F->entry());
  EXPECT_EQ(Order.size(), F->Blocks.size());
}

TEST(IRGen, PrinterSmoke) {
  auto M = compile(R"(
    int main() {
      int x = 3;
      print(x);
      return 0;
    }
  )");
  std::string S = printModule(*M);
  EXPECT_NE(S.find("func main"), std::string::npos);
  EXPECT_NE(S.find("call print"), std::string::npos);
  EXPECT_NE(S.find("src-assign"), std::string::npos);
}

TEST(IRGen, SplitEdgeMaintainsSemantics) {
  auto M = compile(R"(
    int main() {
      int x = 0;
      if (x == 0) { x = 5; }
      return x;
    }
  )");
  IRFunction *F = M->findFunc("main");
  // Split every critical-ish edge and re-run.
  F->recomputePreds();
  std::vector<std::pair<BasicBlock *, BasicBlock *>> Edges;
  for (auto &B : F->Blocks)
    for (BasicBlock *S : B->succs())
      Edges.emplace_back(B, S);
  for (auto &[From, To] : Edges)
    F->splitEdge(From, To);
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyModule(*M, Errors));
  ExecResult R = interpretIR(*M);
  EXPECT_FALSE(R.Trapped);
  EXPECT_EQ(R.ExitValue, 5);
}

TEST(IRGen, RemoveUnreachableDropsDeadBlocks) {
  auto M = compile(R"(
    int main() {
      return 1;
      return 2;
    }
  )");
  IRFunction *F = M->findFunc("main");
  std::size_t Before = F->Blocks.size();
  F->removeUnreachable();
  EXPECT_LE(F->Blocks.size(), Before);
  ExecResult R = interpretIR(*M);
  EXPECT_EQ(R.ExitValue, 1);
}
