//===- tests/golden_test.cpp -----------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Refactor-safety goldens: the optimized IR of the eight eval programs
/// and the verdict digest of a fixed-seed differential-fuzzing campaign,
/// captured before the pass/analysis-manager refactor and checked in
/// under tests/golden/.  Any infrastructure change that alters what the
/// optimizer produces — not just whether it crashes — fails here with a
/// diff.  Regenerate deliberately (see tests/golden/README note in
/// DESIGN.md §7) only when an *optimization* change is intended.
///
//===----------------------------------------------------------------------===//

#include "codegen/ISel.h"
#include "eval/Programs.h"
#include "fuzz/Campaign.h"
#include "ir/IRGen.h"
#include "ir/IRPrinter.h"
#include "opt/Pass.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

using namespace sldb;

namespace {

#ifndef SLDB_GOLDEN_DIR
#error "SLDB_GOLDEN_DIR must point at tests/golden"
#endif

std::string goldenPath(const std::string &Name) {
  return std::string(SLDB_GOLDEN_DIR) + "/" + Name;
}

std::string readGolden(const std::string &Name) {
  std::ifstream In(goldenPath(Name));
  EXPECT_TRUE(In) << "missing golden file " << goldenPath(Name);
  std::stringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

TEST(Golden, OptimizedIRofEvalPrograms) {
  for (const BenchProgram &P : benchmarkPrograms()) {
    DiagnosticEngine Diags;
    auto M = compileToIR(P.Source, Diags);
    ASSERT_TRUE(M) << P.Name << ": " << Diags.str();
    runPipeline(*M, OptOptions::all());
    std::string Got = printModule(*M);
    std::string Want = readGolden(std::string(P.Name) + ".ir");
    EXPECT_EQ(Got, Want)
        << "optimized IR of eval program '" << P.Name
        << "' changed; if the optimizer change is intentional, regenerate "
           "tests/golden/";
  }
}

TEST(Golden, FixedSeedCampaignDigest) {
  CampaignConfig C;
  C.Seed = 7;
  C.Count = 40;
  C.Shrink = false;
  C.WriteFailures = false;
  CampaignResult R = runCampaign(C);

  std::ostringstream Dig;
  Dig << "programs " << R.Programs << "\n"
      << "runs " << R.Runs << "\n"
      << "failed_compiles " << R.FailedCompiles << "\n"
      << "stops " << R.Stops << "\n"
      << "observations " << R.Observations << "\n"
      << "failures " << R.Failures.size() << "\n"
      << "with_hoisted " << R.Coverage.WithHoisted << "\n"
      << "with_sunk " << R.Coverage.WithSunk << "\n"
      << "with_dead_marks " << R.Coverage.WithDeadMarks << "\n"
      << "with_avail_marks " << R.Coverage.WithAvailMarks << "\n"
      << "with_sr_records " << R.Coverage.WithSRRecords << "\n";
  for (const PassFiring &F : R.Coverage.Firings)
    Dig << "firing " << F.Name << " " << F.Changed << "\n";

  EXPECT_EQ(Dig.str(), readGolden("campaign_digest.txt"))
      << "fixed-seed campaign digest changed: the refactor altered "
         "optimizer decisions or debugger verdicts";
}

// Wider net for storage-layer refactors: 200 generated programs instead
// of 40, captured before the arena/instruction-pool rework.  The digest
// summarizes optimizer firings and debugger verdicts, so it is sensitive
// to any behavioral drift in IR storage, pass order, or classification —
// while staying byte-stable across pure memory-layout changes.
TEST(Golden, ArenaRefactorCampaignDigest200) {
  CampaignConfig C;
  C.Seed = 1;
  C.Count = 200;
  C.Shrink = false;
  C.WriteFailures = false;
  CampaignResult R = runCampaign(C);

  std::ostringstream Dig;
  Dig << "programs " << R.Programs << "\n"
      << "runs " << R.Runs << "\n"
      << "failed_compiles " << R.FailedCompiles << "\n"
      << "stops " << R.Stops << "\n"
      << "observations " << R.Observations << "\n"
      << "failures " << R.Failures.size() << "\n"
      << "with_hoisted " << R.Coverage.WithHoisted << "\n"
      << "with_sunk " << R.Coverage.WithSunk << "\n"
      << "with_dead_marks " << R.Coverage.WithDeadMarks << "\n"
      << "with_avail_marks " << R.Coverage.WithAvailMarks << "\n"
      << "with_sr_records " << R.Coverage.WithSRRecords << "\n";
  for (const PassFiring &F : R.Coverage.Firings)
    Dig << "firing " << F.Name << " " << F.Changed << "\n";

  EXPECT_EQ(Dig.str(), readGolden("campaign_digest_200.txt"))
      << "200-seed campaign digest changed: the arena/instruction-pool "
         "refactor altered optimizer decisions or debugger verdicts";
}

} // namespace
