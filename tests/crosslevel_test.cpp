//===- tests/crosslevel_test.cpp - Cross-level oracle & metrics -*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the cross-level consistency layer (ISSUE 6): the pipeline
/// level table (eval/Levels.h), the static availability-regression sweep
/// (eval/CrossLevel.h), the extended coverage/quality metrics
/// (eval/Measure.h), and the dynamic cross-level fuzz campaign
/// (fuzz/QualityCampaign.h).  The figure-program sweep report and the
/// measured-conservatism table are golden under tests/golden/crosslevel/
/// (regenerate deliberately with SLDB_UPDATE_GOLDENS=1).
///
//===----------------------------------------------------------------------===//

#include "eval/CrossLevel.h"
#include "fuzz/ProgramGen.h"
#include "fuzz/QualityCampaign.h"
#include "fuzz/Reduce.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <sys/stat.h>

using namespace sldb;

namespace {

#ifndef SLDB_GOLDEN_DIR
#error "SLDB_GOLDEN_DIR must point at tests/golden"
#endif

std::string goldenPath(const std::string &Name) {
  return std::string(SLDB_GOLDEN_DIR) + "/crosslevel/" + Name;
}

bool updating() {
  const char *V = std::getenv("SLDB_UPDATE_GOLDENS");
  return V && *V && std::string(V) != "0";
}

void checkGolden(const std::string &Name, const std::string &Got) {
  if (updating()) {
    ::mkdir((std::string(SLDB_GOLDEN_DIR) + "/crosslevel").c_str(), 0755);
    std::ofstream Out(goldenPath(Name), std::ios::binary);
    ASSERT_TRUE(Out) << "cannot write " << goldenPath(Name);
    Out << Got;
    return;
  }
  std::ifstream In(goldenPath(Name));
  ASSERT_TRUE(In) << "missing golden file " << goldenPath(Name)
                  << " (regenerate with SLDB_UPDATE_GOLDENS=1)";
  std::stringstream Buf;
  Buf << In.rdbuf();
  EXPECT_EQ(Got, Buf.str())
      << "report for '" << Name
      << "' changed; if intended, regenerate with SLDB_UPDATE_GOLDENS=1";
}

// The paper's worked examples, as in tests/explain_golden_test.cpp.
const char *Fig2 = R"(
  int main() {
    int u = 7; int v = 3; int y = 2; int z = 4;
    int x = u - v;        // s4: E0
    if (u > v) {
      x = y + z;          // s6: E1
    } else {
      u = u + 1;          // s7 (hoisted E3 lands after this)
    }
    x = y + z;            // s8: E2 -> avail marker
    print(x);             // s9: Bkpt3
    print(u);
    return 0;
  }
)";

const char *Fig3 = R"(
  int main() {
    int u = 5; int v = 2; int y = 3; int z = 4;
    int x = y + z;       // s4: E0, partially dead -> sunk, marker here
    if (u > v) {
      x = u - v;         // s6: E1
      print(x);          // s7
    } else {
      print(x);          // s8 (sunk copy lands before this)
    }
    print(u);            // s9: join
    return 0;
  }
)";

const char *Fig4 = R"(
  int main() {
    int a = 7;
    int c = a;          // s1: dead (c never used) -> marker, recover=a
    print(a);           // s2
    return a;
  }
)";

std::vector<BenchProgram> figurePrograms() {
  return {
      {"fig2", "paper Figure 2 (PRE hoisting)", Fig2},
      {"fig3", "paper Figure 3 (PDE sinking)", Fig3},
      {"fig4", "paper Figure 4 (DCE + recovery)", Fig4},
  };
}

//===----------------------------------------------------------------------===//
// The level table
//===----------------------------------------------------------------------===//

TEST(Levels, TableIsCanonicalAndUnique) {
  const auto &Ls = pipelineLevels();
  ASSERT_EQ(Ls.size(), 22u);
  for (std::size_t I = 0; I < Ls.size(); ++I) {
    // Index == enum value, names unique, findLevel round-trips.
    EXPECT_EQ(static_cast<std::size_t>(Ls[I].Level), I);
    EXPECT_EQ(&levelSpec(Ls[I].Level), &Ls[I]);
    const LevelSpec *Found = findLevel(Ls[I].Name);
    ASSERT_NE(Found, nullptr) << Ls[I].Name;
    EXPECT_EQ(Found, &Ls[I]);
    for (std::size_t J = I + 1; J < Ls.size(); ++J)
      EXPECT_STRNE(Ls[I].Name, Ls[J].Name);
  }
  EXPECT_EQ(findLevel("no-such-level"), nullptr);
}

TEST(Levels, LegacyLabelsKeepTheirConfigurations) {
  // The three labels the pre-table coverage golden used must mean
  // exactly what the free-form strings meant, or tests/golden/coverage.txt
  // silently changes semantics.
  const OptOptions None = OptOptions::none();
  const OptOptions All = OptOptions::all();

  const LevelSpec &O0 = levelSpec(PipelineLevel::O0);
  EXPECT_STREQ(O0.Name, "O0");
  EXPECT_FALSE(O0.Promote);
  EXPECT_EQ(std::memcmp(&O0.Opts, &None, sizeof(OptOptions)), 0);

  const LevelSpec &O2F = levelSpec(PipelineLevel::O2Frame);
  EXPECT_STREQ(O2F.Name, "O2-frame");
  EXPECT_FALSE(O2F.Promote);
  EXPECT_EQ(std::memcmp(&O2F.Opts, &All, sizeof(OptOptions)), 0);

  const LevelSpec &O2 = levelSpec(PipelineLevel::O2);
  EXPECT_STREQ(O2.Name, "O2");
  EXPECT_TRUE(O2.Promote);
  EXPECT_EQ(std::memcmp(&O2.Opts, &All, sizeof(OptOptions)), 0);
}

TEST(Levels, MoreOptimizedIsAStrictPartialOrder) {
  const auto &Ls = pipelineLevels();
  const LevelSpec &O0 = levelSpec(PipelineLevel::O0);
  const LevelSpec &Top = levelSpec(PipelineLevel::O2Ssa);
  for (const LevelSpec &L : Ls) {
    EXPECT_FALSE(moreOptimized(L, L)) << L.Name; // Irreflexive.
    if (L.Level != PipelineLevel::O0) {
      EXPECT_TRUE(moreOptimized(L, O0)) << L.Name; // O0 is the bottom.
    }
    if (L.Level != PipelineLevel::O2Ssa) {
      EXPECT_TRUE(moreOptimized(Top, L)) << L.Name; // O2ssa is the top.
    }
    for (const LevelSpec &M : Ls)
      if (moreOptimized(L, M)) {
        EXPECT_FALSE(moreOptimized(M, L)) // Antisymmetric.
            << L.Name << " vs " << M.Name;
      }
  }
  // Single-pass levels are mutually incomparable.
  const LevelSpec &CP = levelSpec(PipelineLevel::ConstProp);
  const LevelSpec &CSE = levelSpec(PipelineLevel::CSE);
  EXPECT_FALSE(moreOptimized(CP, CSE));
  EXPECT_FALSE(moreOptimized(CSE, CP));
  // The lockstep pipelines sit strictly between singles and O2.
  EXPECT_TRUE(moreOptimized(levelSpec(PipelineLevel::O2nl),
                            levelSpec(PipelineLevel::O2nlFrame)));
  EXPECT_TRUE(moreOptimized(levelSpec(PipelineLevel::O2),
                            levelSpec(PipelineLevel::O2nl)));
  // The SSA lockstep pipeline extends O2nl but is incomparable with O2
  // (each enables passes the other lacks).
  const LevelSpec &O2 = levelSpec(PipelineLevel::O2);
  const LevelSpec &O2nlSsa = levelSpec(PipelineLevel::O2nlSsa);
  EXPECT_TRUE(moreOptimized(O2nlSsa, levelSpec(PipelineLevel::O2nl)));
  EXPECT_FALSE(moreOptimized(O2, O2nlSsa));
  EXPECT_FALSE(moreOptimized(O2nlSsa, O2));
}

TEST(Levels, JudgeableExcludesStatementDuplicators) {
  for (const LevelSpec &L : pipelineLevels()) {
    bool Expect = !L.Opts.LoopPeel && !L.Opts.LoopUnroll && !L.Opts.Inline;
    EXPECT_EQ(judgeable(L), Expect) << L.Name;
  }
  EXPECT_FALSE(judgeable(levelSpec(PipelineLevel::O2)));
  EXPECT_FALSE(judgeable(levelSpec(PipelineLevel::LoopPeel)));
  EXPECT_FALSE(judgeable(levelSpec(PipelineLevel::InlineLevel)));
  EXPECT_FALSE(judgeable(levelSpec(PipelineLevel::O2Ssa)));
  EXPECT_TRUE(judgeable(levelSpec(PipelineLevel::O2nl)));
  EXPECT_TRUE(judgeable(levelSpec(PipelineLevel::O2nlSsa)));
  EXPECT_TRUE(judgeable(levelSpec(PipelineLevel::Ssa)));
  EXPECT_TRUE(judgeable(levelSpec(PipelineLevel::Gvn)));
}

//===----------------------------------------------------------------------===//
// Static sweep over the figure programs (golden)
//===----------------------------------------------------------------------===//

TEST(CrossLevel, GoldenFigureSweep) {
  CrossLevelReport R = sweepCorpus(figurePrograms());
  EXPECT_EQ(R.Programs, 3u);
  EXPECT_EQ(R.CompileErrors, 0u);
  ASSERT_EQ(R.Levels.size(), pipelineLevels().size());

  // Structural invariants before the byte diff: O0 classifies everything
  // Current, every row's class counts partition its points, and the O2
  // rows must actually endanger something or the sweep lost its point.
  const CoverageCounts &O0 = R.Levels[0];
  EXPECT_EQ(O0.endangered(), 0u);
  EXPECT_EQ(O0.Nonresident, 0u);
  EXPECT_EQ(O0.Points, O0.Current + O0.Uninitialized);
  for (const CoverageCounts &C : R.Levels) {
    EXPECT_EQ(C.Points, C.Uninitialized + C.Nonresident + C.Noncurrent +
                            C.Suspect + C.Current)
        << C.Level;
    EXPECT_LE(C.CodeStmts, C.SrcStmts) << C.Level;
    EXPECT_EQ(C.Degraded, 0u) << C.Level;
  }
  EXPECT_GT(R.Levels.back().endangered() + R.Levels.back().Nonresident, 0u);

  checkGolden("figures.txt", renderSweepReport(R));
}

TEST(CrossLevel, SweepNeverAssertsOnBadSource) {
  ProgramSweep S = sweepProgram("bad", "int main( {");
  EXPECT_FALSE(S.Compiled);
  EXPECT_FALSE(S.CompileError.empty());
  EXPECT_TRUE(S.Regressions.empty());
}

//===----------------------------------------------------------------------===//
// measureCoverage edge cases
//===----------------------------------------------------------------------===//

TEST(CoverageEdge, EmptyFunction) {
  std::vector<BenchProgram> P = {
      {"empty", "nothing but a return", "int main() { return 0; }"}};
  CoverageCounts C = measureCoverage(P, levelSpec(PipelineLevel::O2));
  // No locals: nothing to classify, but the statement table still counts.
  EXPECT_EQ(C.Points, 0u);
  EXPECT_GT(C.SrcStmts, 0u);
  EXPECT_LE(C.CodeStmts, C.SrcStmts);
  EXPECT_EQ(C.pctDebuggable(), 0.0); // 0/0 defined as 0, not NaN.
}

TEST(CoverageEdge, AllDeadFunction) {
  // Every assignment is dead (nothing printed, constant return): DCE may
  // remove all of it, but the counts must stay a partition and the line
  // table may only shrink.
  std::vector<BenchProgram> P = {{"alldead", "fully dead stores",
                                  "int main() {\n"
                                  "  int a = 1;\n"
                                  "  int b = 2;\n"
                                  "  a = b + 3;\n"
                                  "  b = a + 4;\n"
                                  "  return 0;\n"
                                  "}\n"}};
  CoverageCounts C = measureCoverage(P, levelSpec(PipelineLevel::O2));
  EXPECT_EQ(C.Points, C.Uninitialized + C.Nonresident + C.Noncurrent +
                          C.Suspect + C.Current);
  EXPECT_LE(C.CodeStmts, C.SrcStmts);
  EXPECT_LE(C.Recovered, C.Current + C.endangered());
  // At O0 nothing is endangered even here.
  CoverageCounts C0 = measureCoverage(P, levelSpec(PipelineLevel::O0));
  EXPECT_EQ(C0.endangered(), 0u);
  EXPECT_EQ(C0.Nonresident, 0u);
}

TEST(CoverageEdge, DegradeAllCountsConservativelyCovered) {
  // Annotation-verification failure forces degraded mode: every verdict
  // must be conservative, so nothing may land in Current/Recovered and
  // every classified point must be marked Degraded.
  CoverageOptions MO;
  MO.DegradeAll = true;
  CoverageCounts C =
      measureCoverage(figurePrograms(), levelSpec(PipelineLevel::O2), MO);
  EXPECT_GT(C.Points, 0u);
  EXPECT_EQ(C.Current, 0u);
  EXPECT_EQ(C.Recovered, 0u);
  EXPECT_EQ(C.Degraded, C.Points);
  EXPECT_EQ(C.Points,
            C.Uninitialized + C.Nonresident + C.Noncurrent + C.Suspect);
}

//===----------------------------------------------------------------------===//
// Property: safe pass prefixes never endanger unpromoted variables
//===----------------------------------------------------------------------===//

// The four passes that neither move, delete, nor re-home assignments:
// with variables in frame slots, no cumulative prefix of them may make
// any verdict worse than Current.  A violating seed is shrunk and
// archived under fuzz-property/ before the test fails.
TEST(CrossLevelProperty, SafePrefixesStayFullyCurrent) {
  bool OptOptions::*const Safe[] = {&OptOptions::ConstProp,
                                    &OptOptions::CopyProp, &OptOptions::CSE,
                                    &OptOptions::BranchOpt};
  const char *SafeNames[] = {"constprop", "copyprop", "cse", "branchopt"};

  auto prefixSpec = [&](unsigned N) {
    LevelSpec S;
    S.Name = "safe-prefix";
    S.Opts = OptOptions::none();
    S.Promote = false;
    for (unsigned I = 0; I < N; ++I)
      S.Opts.*Safe[I] = true;
    return S;
  };
  auto endangeredAt = [&](const std::string &Src, unsigned N) {
    std::vector<BenchProgram> P = {{"prop", "", Src.c_str()}};
    CoverageCounts C = measureCoverage(P, prefixSpec(N));
    return C.endangered() + C.Nonresident;
  };

  GenOptions G;
  for (std::uint32_t Seed = 1; Seed <= 30; ++Seed) {
    std::string Src = generateProgram(Seed, G);
    for (unsigned N = 1; N <= 4; ++N) {
      std::uint64_t Bad = endangeredAt(Src, N);
      if (Bad == 0)
        continue;
      // Shrink while the same prefix still endangers something, then
      // archive the reproducer.
      std::string Reduced = reduceProgram(
          Src, [&](const std::string &S) { return endangeredAt(S, N) > 0; },
          /*MaxChecks=*/400);
      ::mkdir("fuzz-property", 0755);
      std::string Path = std::string("fuzz-property/safe-prefix-seed-") +
                         std::to_string(Seed) + ".mc";
      std::ofstream Out(Path);
      Out << "// property: safe-prefix monotonicity\n// seed: " << Seed
          << "\n// prefix: " << SafeNames[N - 1] << " (first " << N
          << " safe passes)\n// endangered points: " << Bad << "\n"
          << Reduced;
      ADD_FAILURE() << "seed " << Seed << ": safe prefix through "
                    << SafeNames[N - 1] << " endangered " << Bad
                    << " point(s); reproducer: " << Path;
      break;
    }
  }
}

//===----------------------------------------------------------------------===//
// Dynamic cross-level campaign
//===----------------------------------------------------------------------===//

TEST(CrossLevelCampaign, SmallCorpusIsSoundAndGolden) {
  CrossLevelCampaignConfig C;
  C.Seed = 1;
  C.Count = 5;
  C.Shrink = false;
  C.WriteFailures = false;
  CrossLevelCampaignResult R = runCrossLevelCampaign(C);
  EXPECT_TRUE(R.sound()) << renderCrossLevelCampaignReport(R);
  EXPECT_EQ(R.Programs, 5u);
  EXPECT_EQ(R.CompileErrors, 0u);
  EXPECT_GT(R.LockstepRuns, 0u);
  ASSERT_EQ(R.Levels.size(), pipelineLevels().size());

  // Every unexplained regression is counted, never silently dropped.
  unsigned Unexplained = 0;
  for (const JudgedRegression &J : R.Regressions)
    if (J.J == JudgedRegression::Judgment::Unexplained)
      ++Unexplained;
  EXPECT_EQ(R.Unexplained, Unexplained);

  // The measured-conservatism table over this fixed corpus is golden:
  // any classifier or optimizer change that shifts how often a warning
  // verdict hid a recoverable value shows up as a visible diff.
  checkGolden("conservatism.txt", renderConservatismReport(R.Conservatism));
}

TEST(CrossLevelCampaign, ReportIsJobsInvariant) {
  CrossLevelCampaignConfig C;
  C.Seed = 7;
  C.Count = 3;
  C.Shrink = false;
  C.Jobs = 1;
  std::string R1 = renderCrossLevelCampaignReport(runCrossLevelCampaign(C));
  C.Jobs = 4;
  std::string R4 = renderCrossLevelCampaignReport(runCrossLevelCampaign(C));
  EXPECT_EQ(R1, R4);
}

TEST(CrossLevelCampaign, RejectsBadShardSpec) {
  CrossLevelCampaignConfig C;
  C.Count = 4;
  C.ShardIndex = 3;
  C.ShardCount = 2;
  CrossLevelCampaignResult R = runCrossLevelCampaign(C);
  EXPECT_FALSE(R.ConfigError.empty());
  EXPECT_FALSE(R.sound());
}

} // namespace
