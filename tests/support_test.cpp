//===- tests/support_test.cpp - Support library tests ----------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/BitVector.h"
#include "support/Diagnostics.h"
#include "support/StringInterner.h"

#include <gtest/gtest.h>

#include <random>
#include <set>

using namespace sldb;

TEST(BitVector, BasicSetReset) {
  BitVector BV(100);
  EXPECT_EQ(BV.size(), 100u);
  EXPECT_TRUE(BV.none());
  BV.set(0);
  BV.set(63);
  BV.set(64);
  BV.set(99);
  EXPECT_TRUE(BV.test(0));
  EXPECT_TRUE(BV.test(63));
  EXPECT_TRUE(BV.test(64));
  EXPECT_TRUE(BV.test(99));
  EXPECT_FALSE(BV.test(1));
  EXPECT_EQ(BV.count(), 4u);
  BV.reset(63);
  EXPECT_FALSE(BV.test(63));
  EXPECT_EQ(BV.count(), 3u);
}

TEST(BitVector, SetAllRespectsSize) {
  BitVector BV(70);
  BV.set();
  EXPECT_EQ(BV.count(), 70u);
  BV.reset();
  EXPECT_TRUE(BV.none());
}

TEST(BitVector, ResizeWithValue) {
  BitVector BV(10);
  BV.set(3);
  BV.resize(130, true);
  EXPECT_TRUE(BV.test(3));
  EXPECT_FALSE(BV.test(4));
  for (unsigned I = 10; I < 130; ++I)
    EXPECT_TRUE(BV.test(I)) << I;
  EXPECT_EQ(BV.count(), 121u);
}

TEST(BitVector, FindFirstNext) {
  BitVector BV(200);
  EXPECT_EQ(BV.findFirst(), -1);
  BV.set(5);
  BV.set(64);
  BV.set(199);
  EXPECT_EQ(BV.findFirst(), 5);
  EXPECT_EQ(BV.findNext(5), 64);
  EXPECT_EQ(BV.findNext(64), 199);
  EXPECT_EQ(BV.findNext(199), -1);
}

TEST(BitVector, Iteration) {
  BitVector BV(150);
  std::set<unsigned> Expected = {0, 1, 63, 64, 65, 127, 128, 149};
  for (unsigned I : Expected)
    BV.set(I);
  std::set<unsigned> Got;
  for (unsigned I : BV)
    Got.insert(I);
  EXPECT_EQ(Got, Expected);
}

TEST(BitVector, SetAlgebra) {
  BitVector A(80), B(80);
  A.set(1);
  A.set(40);
  B.set(40);
  B.set(70);

  BitVector U = A;
  U |= B;
  EXPECT_TRUE(U.test(1));
  EXPECT_TRUE(U.test(40));
  EXPECT_TRUE(U.test(70));
  EXPECT_EQ(U.count(), 3u);

  BitVector I = A;
  I &= B;
  EXPECT_EQ(I.count(), 1u);
  EXPECT_TRUE(I.test(40));

  BitVector D = A;
  D.subtract(B);
  EXPECT_EQ(D.count(), 1u);
  EXPECT_TRUE(D.test(1));

  EXPECT_TRUE(A.anyCommon(B));
  EXPECT_TRUE(I.isSubsetOf(A));
  EXPECT_TRUE(I.isSubsetOf(B));
  EXPECT_FALSE(A.isSubsetOf(B));
}

TEST(BitVector, EqualityAndCopy) {
  BitVector A(33), B(33);
  EXPECT_EQ(A, B);
  A.set(32);
  EXPECT_NE(A, B);
  B = A;
  EXPECT_EQ(A, B);
}

TEST(BitVector, RandomizedAgainstStdSet) {
  std::mt19937 Rng(42);
  BitVector BV(512);
  std::set<unsigned> Ref;
  for (int Step = 0; Step < 2000; ++Step) {
    unsigned Idx = Rng() % 512;
    if (Rng() % 2) {
      BV.set(Idx);
      Ref.insert(Idx);
    } else {
      BV.reset(Idx);
      Ref.erase(Idx);
    }
  }
  EXPECT_EQ(BV.count(), Ref.size());
  for (unsigned I = 0; I < 512; ++I)
    EXPECT_EQ(BV.test(I), Ref.count(I) != 0) << I;
}

TEST(StringInterner, InternDedupes) {
  StringInterner SI;
  Symbol A = SI.intern("alpha");
  Symbol B = SI.intern("beta");
  Symbol A2 = SI.intern("alpha");
  EXPECT_EQ(A, A2);
  EXPECT_NE(A, B);
  EXPECT_EQ(SI.str(A), "alpha");
  EXPECT_EQ(SI.str(B), "beta");
  EXPECT_EQ(SI.size(), 2u);
}

TEST(Diagnostics, CollectsAndFormats) {
  DiagnosticEngine DE;
  EXPECT_FALSE(DE.hasErrors());
  DE.warning(SourceLoc(1, 2), "watch out");
  EXPECT_FALSE(DE.hasErrors());
  DE.error(SourceLoc(3, 4), "boom");
  EXPECT_TRUE(DE.hasErrors());
  EXPECT_EQ(DE.errorCount(), 1u);
  std::string S = DE.str();
  EXPECT_NE(S.find("1:2: warning: watch out"), std::string::npos);
  EXPECT_NE(S.find("3:4: error: boom"), std::string::npos);
}
