//===- tests/support_test.cpp - Support library tests ----------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Arena.h"
#include "support/BitVector.h"
#include "support/Diagnostics.h"
#include "support/Sharder.h"
#include "support/Stats.h"
#include "support/StringInterner.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <set>
#include <string>
#include <vector>

using namespace sldb;

TEST(BitVector, BasicSetReset) {
  BitVector BV(100);
  EXPECT_EQ(BV.size(), 100u);
  EXPECT_TRUE(BV.none());
  BV.set(0);
  BV.set(63);
  BV.set(64);
  BV.set(99);
  EXPECT_TRUE(BV.test(0));
  EXPECT_TRUE(BV.test(63));
  EXPECT_TRUE(BV.test(64));
  EXPECT_TRUE(BV.test(99));
  EXPECT_FALSE(BV.test(1));
  EXPECT_EQ(BV.count(), 4u);
  BV.reset(63);
  EXPECT_FALSE(BV.test(63));
  EXPECT_EQ(BV.count(), 3u);
}

TEST(BitVector, SetAllRespectsSize) {
  BitVector BV(70);
  BV.set();
  EXPECT_EQ(BV.count(), 70u);
  BV.reset();
  EXPECT_TRUE(BV.none());
}

TEST(BitVector, ResizeWithValue) {
  BitVector BV(10);
  BV.set(3);
  BV.resize(130, true);
  EXPECT_TRUE(BV.test(3));
  EXPECT_FALSE(BV.test(4));
  for (unsigned I = 10; I < 130; ++I)
    EXPECT_TRUE(BV.test(I)) << I;
  EXPECT_EQ(BV.count(), 121u);
}

TEST(BitVector, FindFirstNext) {
  BitVector BV(200);
  EXPECT_EQ(BV.findFirst(), -1);
  BV.set(5);
  BV.set(64);
  BV.set(199);
  EXPECT_EQ(BV.findFirst(), 5);
  EXPECT_EQ(BV.findNext(5), 64);
  EXPECT_EQ(BV.findNext(64), 199);
  EXPECT_EQ(BV.findNext(199), -1);
}

TEST(BitVector, Iteration) {
  BitVector BV(150);
  std::set<unsigned> Expected = {0, 1, 63, 64, 65, 127, 128, 149};
  for (unsigned I : Expected)
    BV.set(I);
  std::set<unsigned> Got;
  for (unsigned I : BV)
    Got.insert(I);
  EXPECT_EQ(Got, Expected);
}

TEST(BitVector, SetAlgebra) {
  BitVector A(80), B(80);
  A.set(1);
  A.set(40);
  B.set(40);
  B.set(70);

  BitVector U = A;
  U |= B;
  EXPECT_TRUE(U.test(1));
  EXPECT_TRUE(U.test(40));
  EXPECT_TRUE(U.test(70));
  EXPECT_EQ(U.count(), 3u);

  BitVector I = A;
  I &= B;
  EXPECT_EQ(I.count(), 1u);
  EXPECT_TRUE(I.test(40));

  BitVector D = A;
  D.subtract(B);
  EXPECT_EQ(D.count(), 1u);
  EXPECT_TRUE(D.test(1));

  EXPECT_TRUE(A.anyCommon(B));
  EXPECT_TRUE(I.isSubsetOf(A));
  EXPECT_TRUE(I.isSubsetOf(B));
  EXPECT_FALSE(A.isSubsetOf(B));
}

TEST(BitVector, EqualityAndCopy) {
  BitVector A(33), B(33);
  EXPECT_EQ(A, B);
  A.set(32);
  EXPECT_NE(A, B);
  B = A;
  EXPECT_EQ(A, B);
}

TEST(BitVector, RandomizedAgainstStdSet) {
  std::mt19937 Rng(42);
  BitVector BV(512);
  std::set<unsigned> Ref;
  for (int Step = 0; Step < 2000; ++Step) {
    unsigned Idx = Rng() % 512;
    if (Rng() % 2) {
      BV.set(Idx);
      Ref.insert(Idx);
    } else {
      BV.reset(Idx);
      Ref.erase(Idx);
    }
  }
  EXPECT_EQ(BV.count(), Ref.size());
  for (unsigned I = 0; I < 512; ++I)
    EXPECT_EQ(BV.test(I), Ref.count(I) != 0) << I;
}

TEST(StringInterner, InternDedupes) {
  StringInterner SI;
  Symbol A = SI.intern("alpha");
  Symbol B = SI.intern("beta");
  Symbol A2 = SI.intern("alpha");
  EXPECT_EQ(A, A2);
  EXPECT_NE(A, B);
  EXPECT_EQ(SI.str(A), "alpha");
  EXPECT_EQ(SI.str(B), "beta");
  EXPECT_EQ(SI.size(), 2u);
}

TEST(Diagnostics, CollectsAndFormats) {
  DiagnosticEngine DE;
  EXPECT_FALSE(DE.hasErrors());
  DE.warning(SourceLoc(1, 2), "watch out");
  EXPECT_FALSE(DE.hasErrors());
  DE.error(SourceLoc(3, 4), "boom");
  EXPECT_TRUE(DE.hasErrors());
  EXPECT_EQ(DE.errorCount(), 1u);
  std::string S = DE.str();
  EXPECT_NE(S.find("1:2: warning: watch out"), std::string::npos);
  EXPECT_NE(S.find("3:4: error: boom"), std::string::npos);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (unsigned Jobs : {1u, 2u, 4u, 7u}) {
    constexpr std::size_t Count = 257;
    std::vector<std::atomic<unsigned>> Hits(Count);
    ThreadPool Pool(Jobs);
    std::vector<WorkerStats> WS =
        Pool.parallelFor(Count, [&](std::size_t I, unsigned) {
          Hits[I].fetch_add(1, std::memory_order_relaxed);
        });
    for (std::size_t I = 0; I < Count; ++I)
      EXPECT_EQ(Hits[I].load(), 1u) << "jobs " << Jobs << " index " << I;
    unsigned Tasks = 0, Queued = 0;
    for (const WorkerStats &S : WS) {
      Tasks += S.Tasks;
      Queued += S.InitialQueue;
    }
    EXPECT_EQ(Tasks, Count) << "jobs " << Jobs;
    EXPECT_EQ(Queued, Count) << "jobs " << Jobs;
  }
}

TEST(ThreadPool, MoreJobsThanWorkAndEmptyWork) {
  std::atomic<unsigned> Ran{0};
  ThreadPool Pool(16);
  Pool.parallelFor(3, [&](std::size_t, unsigned) { ++Ran; });
  EXPECT_EQ(Ran.load(), 3u);
  std::vector<WorkerStats> WS =
      Pool.parallelFor(0, [&](std::size_t, unsigned) { ++Ran; });
  EXPECT_EQ(Ran.load(), 3u);
  ASSERT_FALSE(WS.empty());
  EXPECT_EQ(WS.front().Tasks, 0u);
}

TEST(ThreadPool, ZeroJobsClampsToOneAndRunsInline) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.jobs(), 1u);
  unsigned Ran = 0; // Not atomic: the serial path must stay inline.
  std::vector<WorkerStats> WS =
      Pool.parallelFor(5, [&](std::size_t, unsigned W) {
        EXPECT_EQ(W, 0u);
        ++Ran;
      });
  EXPECT_EQ(Ran, 5u);
  ASSERT_EQ(WS.size(), 1u);
  EXPECT_EQ(WS[0].Tasks, 5u);
  EXPECT_EQ(WS[0].Steals, 0u);
}

TEST(ThreadPool, StealingDrainsImbalancedLoad) {
  // One giant task at index 0: its owner is pinned while the others
  // finish their blocks, so any further progress on worker 0's block
  // must come from steals.
  constexpr std::size_t Count = 64;
  std::vector<std::atomic<unsigned>> Hits(Count);
  std::atomic<bool> Release{false};
  std::atomic<unsigned> Done{0};
  ThreadPool Pool(4);
  std::vector<WorkerStats> WS =
      Pool.parallelFor(Count, [&](std::size_t I, unsigned) {
        if (I == 0) {
          // Busy-wait until every other index has run.
          while (!Release.load(std::memory_order_acquire)) {
          }
        }
        Hits[I].fetch_add(1, std::memory_order_relaxed);
        if (Done.fetch_add(1, std::memory_order_acq_rel) + 1 == Count - 1)
          Release.store(true, std::memory_order_release);
      });
  for (std::size_t I = 0; I < Count; ++I)
    EXPECT_EQ(Hits[I].load(), 1u) << I;
  unsigned Steals = 0;
  for (const WorkerStats &S : WS)
    Steals += S.Steals;
  EXPECT_GT(Steals, 0u);
}

TEST(Sharder, SlicesAreContiguousDisjointAndComplete) {
  for (std::size_t Count : {0u, 1u, 7u, 100u, 101u}) {
    for (unsigned K : {1u, 2u, 3u, 8u}) {
      std::size_t Next = 0;
      for (unsigned I = 0; I < K; ++I) {
        ShardRange R = Sharder::slice(Count, I, K);
        EXPECT_EQ(R.Begin, Next) << Count << " " << I << "/" << K;
        EXPECT_LE(R.Begin, R.End);
        Next = R.End;
      }
      EXPECT_EQ(Next, Count) << Count << " /" << K;
    }
  }
  // Sizes differ by at most one.
  for (unsigned I = 0; I < 8; ++I) {
    std::size_t N = Sharder::slice(101, I, 8).size();
    EXPECT_TRUE(N == 12 || N == 13) << I;
  }
}

TEST(Sharder, ParseSpec) {
  unsigned I = 9, K = 9;
  EXPECT_TRUE(Sharder::parseSpec("0/1", I, K));
  EXPECT_EQ(I, 0u);
  EXPECT_EQ(K, 1u);
  EXPECT_TRUE(Sharder::parseSpec("2/8", I, K));
  EXPECT_EQ(I, 2u);
  EXPECT_EQ(K, 8u);
  for (const char *Bad :
       {"", "/", "1/", "/2", "3/3", "4/2", "a/2", "1/b", "1/0", "1//2"}) {
    unsigned I2 = 0, K2 = 0;
    EXPECT_FALSE(Sharder::parseSpec(Bad, I2, K2)) << Bad;
  }
}

//===----------------------------------------------------------------------===//
// Stats: named counters / histograms (support/Stats.h)
//===----------------------------------------------------------------------===//

TEST(Stats, CounterInternsAndAccumulates) {
  Stats::reset();
  StatCounter &A = Stats::counter("test.stats.a");
  StatCounter &B = Stats::counter("test.stats.a");
  EXPECT_EQ(&A, &B) << "same name must intern to the same counter";
  A.add();
  B.add(41);
  EXPECT_EQ(A.value(), 42u);
  Stats::reset();
  EXPECT_EQ(A.value(), 0u) << "reset zeroes in place, identity survives";
}

TEST(Stats, HistogramBucketsMinMaxMean) {
  Stats::reset();
  StatHistogram &H = Stats::histogram("test.stats.hist");
  for (std::uint64_t V : {0ull, 1ull, 2ull, 3ull, 1024ull})
    H.record(V);
  EXPECT_EQ(H.count(), 5u);
  EXPECT_EQ(H.sum(), 1030u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 1024u);
  EXPECT_DOUBLE_EQ(H.mean(), 206.0);
  // Power-of-two buckets: 0,1 -> bucket 0; 2,3 -> bucket 1; 1024 -> 10.
  EXPECT_EQ(H.bucket(0), 2u);
  EXPECT_EQ(H.bucket(1), 2u);
  EXPECT_EQ(H.bucket(10), 1u);
  Stats::reset();
}

TEST(Stats, SnapshotIsNameSortedAndSkipsNothing) {
  Stats::reset();
  Stats::counter("test.zz").add(7);
  Stats::counter("test.aa").add(3);
  auto Snap = Stats::snapshot();
  // Name-sorted regardless of registration order.
  for (std::size_t I = 1; I < Snap.size(); ++I)
    EXPECT_LT(Snap[I - 1].Name, Snap[I].Name);
  bool SawAa = false, SawZz = false;
  for (const StatSnapshot &S : Snap) {
    if (S.Name == "test.aa") {
      SawAa = true;
      EXPECT_EQ(S.Value, 3u);
    }
    if (S.Name == "test.zz") {
      SawZz = true;
      EXPECT_EQ(S.Value, 7u);
    }
  }
  EXPECT_TRUE(SawAa);
  EXPECT_TRUE(SawZz);
  Stats::reset();
}

TEST(Stats, ReportSkipsZeroActivityAndIsDeterministic) {
  Stats::reset();
  Stats::counter("test.report.quiet"); // Registered, never bumped.
  Stats::counter("test.report.busy").add(5);
  std::string R1 = Stats::report();
  std::string R2 = Stats::report();
  EXPECT_EQ(R1, R2);
  EXPECT_EQ(R1.find("test.report.quiet"), std::string::npos);
  EXPECT_NE(R1.find("test.report.busy"), std::string::npos);
  Stats::reset();
}

TEST(Stats, ConcurrentAddsAreLossless) {
  Stats::reset();
  StatCounter &C = Stats::counter("test.stats.mt");
  ThreadPool Pool(4);
  Pool.parallelFor(1000, [&](std::size_t, unsigned) { C.add(); });
  EXPECT_EQ(C.value(), 1000u);
  Stats::reset();
}

TEST(Stats, PercentHelper) {
  EXPECT_DOUBLE_EQ(Stats::percent(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(Stats::percent(1, 3), 25.0);
  EXPECT_DOUBLE_EQ(Stats::percent(5, 0), 100.0);
}

//===----------------------------------------------------------------------===//
// Trace: spans, capture, Chrome-trace JSON (support/Trace.h)
//===----------------------------------------------------------------------===//

TEST(Trace, DisabledRecordsNothing) {
  Trace::clear();
  ASSERT_FALSE(Trace::enabled());
  {
    TraceSpan S("noop", "test");
    S.arg("k", "v");
  }
  Trace::instant("noop", "test");
  EXPECT_TRUE(Trace::take().empty());
}

TEST(Trace, SpansAndInstantsRecordWhenEnabled) {
  if (!Trace::compiledIn())
    GTEST_SKIP() << "tracing compiled out (SLDB_TRACE=OFF)";
  Trace::clear();
  Trace::enable();
  {
    TraceSpan S("outer", "test");
    S.arg("k", "v").arg("n", std::uint64_t(7));
    TraceSpan Inner("inner", "test");
  }
  Trace::instant("mark", "test");
  Trace::disable();
  auto Events = Trace::take();
  ASSERT_EQ(Events.size(), 3u);
  // Spans are recorded at close: inner lands before outer.
  EXPECT_EQ(Events[0].Name, "inner");
  EXPECT_EQ(Events[0].Ph, 'X');
  EXPECT_EQ(Events[1].Name, "outer");
  ASSERT_EQ(Events[1].Args.size(), 2u);
  EXPECT_EQ(Events[1].Args[0].first, "k");
  EXPECT_EQ(Events[1].Args[0].second, "v");
  EXPECT_EQ(Events[1].Args[1].second, "7");
  EXPECT_EQ(Events[2].Name, "mark");
  EXPECT_EQ(Events[2].Ph, 'i');
  // The outer span covers the inner one.
  EXPECT_LE(Events[1].Ts, Events[0].Ts);
  EXPECT_GE(Events[1].Ts + Events[1].Dur, Events[0].Ts + Events[0].Dur);
}

TEST(Trace, CaptureDivertsAndRebasesTimestamps) {
  if (!Trace::compiledIn())
    GTEST_SKIP() << "tracing compiled out (SLDB_TRACE=OFF)";
  Trace::clear();
  Trace::enable();
  Trace::instant("outside-before", "test");
  std::vector<TraceEvent> Captured;
  {
    TraceCapture Cap;
    Trace::instant("inside", "test");
    { TraceSpan S("span", "test"); }
    Captured = Cap.take();
  }
  Trace::instant("outside-after", "test");
  Trace::disable();

  ASSERT_EQ(Captured.size(), 2u);
  EXPECT_EQ(Captured[0].Name, "inside");
  EXPECT_EQ(Captured[1].Name, "span");

  // The global buffer holds only the outside events.
  auto Global = Trace::take();
  ASSERT_EQ(Global.size(), 2u);
  EXPECT_EQ(Global[0].Name, "outside-before");
  EXPECT_EQ(Global[1].Name, "outside-after");
}

TEST(Trace, RenderJsonShapeAndEscaping) {
  TraceEvent A;
  A.Name = "with \"quotes\"\nand\tcontrol";
  A.Cat = "test";
  A.Ph = 'X';
  A.Ts = 10;
  A.Dur = 5;
  A.Tid = 2;
  A.Args.emplace_back("key", "va\\lue");
  TraceEvent B;
  B.Name = "first-by-tid";
  B.Cat = "test";
  B.Ph = 'i';
  B.Ts = 99;
  B.Tid = 1;
  std::string J = Trace::renderJson({A, B});

  // Escaping: the raw control characters never appear unescaped.
  EXPECT_EQ(J.find('\t'), std::string::npos);
  EXPECT_NE(J.find("\\\"quotes\\\""), std::string::npos);
  EXPECT_NE(J.find("\\n"), std::string::npos);
  EXPECT_NE(J.find("\\t"), std::string::npos);
  EXPECT_NE(J.find("\\\\lue"), std::string::npos);

  // Ordering: events sorted by (tid, ts), so tid 1 renders first.
  EXPECT_LT(J.find("first-by-tid"), J.find("quotes"));

  // Document shape.
  EXPECT_EQ(J.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(J.find("\"displayTimeUnit\""), std::string::npos);

  // Empty document is still a valid trace.
  std::string Empty = Trace::renderJson({});
  EXPECT_EQ(Empty.rfind("{\"traceEvents\":[", 0), 0u);
}

TEST(Trace, WorkerStatsCountersExist) {
  // The counters sldb-fuzz --worker-stats folds into its totals line;
  // interning them here pins the names (a rename breaks this test, not
  // silently the tool).
  for (const char *Name :
       {"classifier.queries", "classifier.cache.hits",
        "classifier.cache.misses", "analysis.cache.hits",
        "analysis.cache.misses", "pipeline.pass.runs",
        "pipeline.pass.changed", "campaign.units"})
    (void)Stats::counter(Name);
  Stats::reset();
  SUCCEED();
}

//===----------------------------------------------------------------------===//
// Arena
//===----------------------------------------------------------------------===//

TEST(Arena, AlignmentIsRespected) {
  Arena A(64); // Small first slab to force growth quickly.
  // Mixed-alignment requests: every returned pointer must satisfy the
  // requested alignment even as the bump pointer crosses slab boundaries.
  for (std::size_t Align : {1u, 2u, 4u, 8u, 16u, 32u}) {
    for (int I = 0; I < 16; ++I) {
      void *P = A.allocate(Align + I, Align);
      ASSERT_NE(P, nullptr);
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(P) % Align, 0u)
          << "misaligned " << Align << "-byte allocation";
    }
  }
}

TEST(Arena, SlabGrowthAndOversizedRequests) {
  Arena A(64);
  EXPECT_EQ(A.bytesAllocated(), 0u);
  // Fill well past the first slab.
  for (int I = 0; I < 100; ++I)
    A.allocate(32, 8);
  EXPECT_GE(A.bytesAllocated(), 3200u);
  EXPECT_GT(A.numSlabs(), 1u);
  EXPECT_GE(A.bytesReserved(), A.bytesAllocated());
  // An allocation far larger than any slab must still succeed (dedicated
  // slab) and be usable end to end.
  std::size_t Before = A.numSlabs();
  char *Big = static_cast<char *>(A.allocate(1 << 22, 8));
  ASSERT_NE(Big, nullptr);
  Big[0] = 1;
  Big[(1 << 22) - 1] = 2; // Touch both ends: the slab really is that big.
  EXPECT_GT(A.numSlabs(), Before);
}

TEST(Arena, ResetReusesReservedMemory) {
  Arena A(128);
  for (int I = 0; I < 200; ++I)
    A.allocate(64, 8);
  std::size_t Reserved = A.bytesReserved();
  std::size_t Slabs = A.numSlabs();
  A.reset();
  EXPECT_EQ(A.bytesAllocated(), 0u);
  // Reset recycles, it does not release: the reservation is unchanged.
  EXPECT_EQ(A.bytesReserved(), Reserved);
  EXPECT_EQ(A.numSlabs(), Slabs);
  // Refilling the same volume must not grow the reservation.
  for (int I = 0; I < 200; ++I)
    A.allocate(64, 8);
  EXPECT_EQ(A.bytesReserved(), Reserved);
  EXPECT_EQ(A.numSlabs(), Slabs);
}

TEST(Arena, SoftLimitIsStickyUntilReset) {
  Arena A(64);
  A.setLimit(256);
  EXPECT_EQ(A.limit(), 256u);
  EXPECT_FALSE(A.limitExceeded());
  // Under budget: nothing trips.
  void *P = A.allocate(128, 8);
  ASSERT_NE(P, nullptr);
  EXPECT_FALSE(A.limitExceeded());
  // The allocation that crosses the budget still succeeds (soft limit:
  // callers built on infallible allocation never see null) but the
  // arena goes sticky-exceeded.
  P = A.allocate(256, 8);
  ASSERT_NE(P, nullptr);
  EXPECT_TRUE(A.limitExceeded());
  // Sticky: later small allocations do not clear it.
  A.allocate(8, 8);
  EXPECT_TRUE(A.limitExceeded());
  // reset() clears the flag but keeps the budget armed for the next
  // tenant (the service's per-load lifecycle).
  A.reset();
  EXPECT_FALSE(A.limitExceeded());
  EXPECT_EQ(A.limit(), 256u);
  A.allocate(512, 8);
  EXPECT_TRUE(A.limitExceeded());
}

TEST(Arena, TryAllocateIsHard) {
  Arena A(64);
  A.setLimit(128);
  // Within budget: real memory.
  void *P = A.tryAllocate(64, 8);
  ASSERT_NE(P, nullptr);
  EXPECT_FALSE(A.limitExceeded());
  // Over budget: null, nothing allocated, and the sticky flag trips so
  // phase-boundary audits still see the refusal.
  std::size_t Before = A.bytesAllocated();
  EXPECT_EQ(A.tryAllocate(1024, 8), nullptr);
  EXPECT_EQ(A.bytesAllocated(), Before);
  EXPECT_TRUE(A.limitExceeded());
  // The arena itself stays usable for in-budget requests.
  void *Q = A.tryAllocate(32, 8);
  EXPECT_NE(Q, nullptr);
}

TEST(Arena, UnlimitedByDefault) {
  Arena A(64);
  EXPECT_EQ(A.limit(), 0u);
  for (int I = 0; I < 100; ++I)
    A.allocate(1024, 8);
  EXPECT_FALSE(A.limitExceeded());
}

TEST(Arena, MakeConstructsObjects) {
  struct Point {
    int X, Y;
    Point(int X, int Y) : X(X), Y(Y) {}
  };
  Arena A;
  Point *P = A.make<Point>(3, 4);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(P->X, 3);
  EXPECT_EQ(P->Y, 4);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(P) % alignof(Point), 0u);
}
