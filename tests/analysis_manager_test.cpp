//===- tests/analysis_manager_test.cpp -------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analysis manager contract: caching (same object back), explicit
/// invalidation with dependency closure, prerequisite materialization,
/// and — the property that actually keeps the refactor honest — that a
/// cached analysis surviving a pass boundary equals the one a fresh
/// computation would produce, checked after every (pass, function) step
/// of the full pipeline over a fuzz corpus.
///
//===----------------------------------------------------------------------===//

#include "analysis/AliasInfo.h"
#include "analysis/AnalysisManager.h"
#include "fuzz/ProgramGen.h"
#include "ir/IRGen.h"
#include "opt/Pass.h"

#include <gtest/gtest.h>

using namespace sldb;

namespace {

const char *SimpleLoop = R"(
int main() {
  int i;
  int s;
  s = 0;
  for (i = 0; i < 10; i = i + 1) {
    if (i > 5) {
      s = s + i * 2;
    } else {
      s = s - i;
    }
  }
  print(s);
  return s;
}
)";

std::unique_ptr<IRModule> compile(const char *Src) {
  DiagnosticEngine Diags;
  auto M = compileToIR(Src, Diags);
  EXPECT_TRUE(M) << Diags.str();
  return M;
}

TEST(AnalysisManager, CacheHitReturnsSameObject) {
  auto M = compile(SimpleLoop);
  AnalysisManager AM(*M->Info);
  IRFunction &F = *M->Funcs[0];

  CFGContext &A = AM.getResult<CFGContext>(F);
  CFGContext &B = AM.getResult<CFGContext>(F);
  EXPECT_EQ(&A, &B);
  EXPECT_EQ(AM.stats().Misses[static_cast<unsigned>(AnalysisID::CFG)], 1u);
  EXPECT_EQ(AM.stats().Hits[static_cast<unsigned>(AnalysisID::CFG)], 1u);
}

TEST(AnalysisManager, GetCachedNeverComputes) {
  auto M = compile(SimpleLoop);
  AnalysisManager AM(*M->Info);
  IRFunction &F = *M->Funcs[0];

  EXPECT_EQ(AM.getCached<CFGContext>(F), nullptr);
  AM.getResult<CFGContext>(F);
  EXPECT_NE(AM.getCached<CFGContext>(F), nullptr);
}

TEST(AnalysisManager, PrerequisitesMaterializeThroughTheCache) {
  auto M = compile(SimpleLoop);
  AnalysisManager AM(*M->Info);
  IRFunction &F = *M->Funcs[0];

  // Liveness pulls in the CFG and the value index; loops pull in
  // dominators.
  AM.getResult<Liveness>(F);
  EXPECT_NE(AM.getCached<CFGContext>(F), nullptr);
  EXPECT_NE(AM.getCached<ValueIndex>(F), nullptr);
  AM.getResult<LoopInfo>(F);
  EXPECT_NE(AM.getCached<Dominators>(F), nullptr);

  // The prerequisite CFG is shared, not rebuilt: one miss only.
  EXPECT_EQ(AM.stats().Misses[static_cast<unsigned>(AnalysisID::CFG)], 1u);
}

TEST(AnalysisManager, PreserveAllKeepsEverything) {
  auto M = compile(SimpleLoop);
  AnalysisManager AM(*M->Info);
  IRFunction &F = *M->Funcs[0];

  CFGContext *CFG = &AM.getResult<CFGContext>(F);
  Liveness *Live = &AM.getResult<Liveness>(F);
  AM.invalidate(F, PreservedAnalyses::all());
  EXPECT_EQ(AM.getCached<CFGContext>(F), CFG);
  EXPECT_EQ(AM.getCached<Liveness>(F), Live);
}

TEST(AnalysisManager, CfgShapePreservesShapeDropsInstructionLevel) {
  auto M = compile(SimpleLoop);
  AnalysisManager AM(*M->Info);
  IRFunction &F = *M->Funcs[0];

  CFGContext *CFG = &AM.getResult<CFGContext>(F);
  Dominators *Dom = &AM.getResult<Dominators>(F);
  LoopInfo *LI = &AM.getResult<LoopInfo>(F);
  AM.getResult<Liveness>(F);
  AM.getResult<ReachingDefs>(F);

  AM.invalidate(F, PreservedAnalyses::cfgShape());
  EXPECT_EQ(AM.getCached<CFGContext>(F), CFG);
  EXPECT_EQ(AM.getCached<Dominators>(F), Dom);
  EXPECT_EQ(AM.getCached<LoopInfo>(F), LI);
  EXPECT_EQ(AM.getCached<ValueIndex>(F), nullptr);
  EXPECT_EQ(AM.getCached<Liveness>(F), nullptr);
  EXPECT_EQ(AM.getCached<ReachingDefs>(F), nullptr);
}

TEST(AnalysisManager, InvalidationClosesOverDependencies) {
  auto M = compile(SimpleLoop);
  AnalysisManager AM(*M->Info);
  IRFunction &F = *M->Funcs[0];

  // Dropping the CFG drops everything built on it, even when the pass
  // claims the dependents are preserved.
  AM.getResult<ReachingDefs>(F);
  AM.getResult<LoopInfo>(F);
  PreservedAnalyses PA = PreservedAnalyses::all();
  PA.abandon(AnalysisID::CFG);
  AM.invalidate(F, PA);
  EXPECT_EQ(AM.getCached<CFGContext>(F), nullptr);
  EXPECT_EQ(AM.getCached<Dominators>(F), nullptr);
  EXPECT_EQ(AM.getCached<LoopInfo>(F), nullptr);
  EXPECT_EQ(AM.getCached<ReachingDefs>(F), nullptr);

  // Dropping dominators drops loops but keeps the CFG.
  AM.getResult<LoopInfo>(F);
  PA = PreservedAnalyses::all();
  PA.abandon(AnalysisID::Dominators);
  AM.invalidate(F, PA);
  EXPECT_NE(AM.getCached<CFGContext>(F), nullptr);
  EXPECT_EQ(AM.getCached<Dominators>(F), nullptr);
  EXPECT_EQ(AM.getCached<LoopInfo>(F), nullptr);

  // Dropping the value index drops liveness and reaching defs.
  AM.getResult<Liveness>(F);
  AM.getResult<ReachingDefs>(F);
  PA = PreservedAnalyses::all();
  PA.abandon(AnalysisID::Values);
  AM.invalidate(F, PA);
  EXPECT_NE(AM.getCached<CFGContext>(F), nullptr);
  EXPECT_EQ(AM.getCached<ValueIndex>(F), nullptr);
  EXPECT_EQ(AM.getCached<Liveness>(F), nullptr);
  EXPECT_EQ(AM.getCached<ReachingDefs>(F), nullptr);
}

TEST(AnalysisManager, InvalidationIsPerFunction) {
  auto M = compile(R"(
int helper(int x) { return x * 2; }
int main() { print(helper(21)); return 0; }
)");
  ASSERT_GE(M->Funcs.size(), 2u);
  AnalysisManager AM(*M->Info);
  IRFunction &F0 = *M->Funcs[0];
  IRFunction &F1 = *M->Funcs[1];

  CFGContext *C0 = &AM.getResult<CFGContext>(F0);
  CFGContext *C1 = &AM.getResult<CFGContext>(F1);
  AM.invalidateAll(F0);
  EXPECT_EQ(AM.getCached<CFGContext>(F0), nullptr);
  EXPECT_EQ(AM.getCached<CFGContext>(F1), C1);
  (void)C0;
}

//===----------------------------------------------------------------------===//
// Property: after every pass, every surviving cached analysis equals a
// fresh computation.
//===----------------------------------------------------------------------===//

void expectCFGEqual(const CFGContext &Cached, const CFGContext &Fresh,
                    const char *PassName) {
  ASSERT_EQ(Cached.numBlocks(), Fresh.numBlocks()) << PassName;
  for (unsigned B = 0; B < Cached.numBlocks(); ++B) {
    EXPECT_EQ(Cached.block(B), Fresh.block(B)) << PassName << " block " << B;
    EXPECT_EQ(Cached.preds(B), Fresh.preds(B)) << PassName << " block " << B;
    EXPECT_EQ(Cached.succs(B), Fresh.succs(B)) << PassName << " block " << B;
  }
  EXPECT_EQ(Cached.exits(), Fresh.exits()) << PassName;
}

/// Compares every cached analysis of \p F against one computed from
/// scratch.  A stale survivor here means a pass lied about what it
/// preserved (or the invalidation closure has a hole).
void checkCachedAgainstFresh(IRFunction &F, IRModule &M, AnalysisManager &AM,
                             const char *PassName) {
  const CFGContext *CFG = AM.getCached<CFGContext>(F);
  if (!CFG)
    return; // Nothing else can be cached without the CFG.
  CFGContext Fresh(F);
  expectCFGEqual(*CFG, Fresh, PassName);

  if (const Dominators *Dom = AM.getCached<Dominators>(F)) {
    Dominators FreshDom(Fresh);
    for (unsigned B = 0; B < Fresh.numBlocks(); ++B)
      EXPECT_TRUE(Dom->domSet(B) == FreshDom.domSet(B))
          << PassName << " dominators of block " << B;
  }
  if (const PostDominators *PDom = AM.getCached<PostDominators>(F)) {
    PostDominators FreshPDom(Fresh);
    for (unsigned B = 0; B < Fresh.numBlocks(); ++B)
      EXPECT_TRUE(PDom->postDomSet(B) == FreshPDom.postDomSet(B))
          << PassName << " post-dominators of block " << B;
  }
  if (const LoopInfo *LI = AM.getCached<LoopInfo>(F)) {
    Dominators FreshDom(Fresh);
    LoopInfo FreshLI(Fresh, FreshDom);
    ASSERT_EQ(LI->loops().size(), FreshLI.loops().size()) << PassName;
    for (unsigned L = 0; L < LI->loops().size(); ++L) {
      EXPECT_EQ(LI->loops()[L].Header, FreshLI.loops()[L].Header)
          << PassName;
      EXPECT_TRUE(LI->loops()[L].Blocks == FreshLI.loops()[L].Blocks)
          << PassName;
      EXPECT_EQ(LI->loops()[L].Latches, FreshLI.loops()[L].Latches)
          << PassName;
      EXPECT_EQ(LI->loops()[L].ExitBlocks, FreshLI.loops()[L].ExitBlocks)
          << PassName;
    }
  }
  const ValueIndex *VI = AM.getCached<ValueIndex>(F);
  if (VI) {
    ValueIndex FreshVI(F, *M.Info);
    ASSERT_EQ(VI->size(), FreshVI.size()) << PassName;
    ASSERT_EQ(VI->trackedVars(), FreshVI.trackedVars()) << PassName;
    for (VarId V : VI->trackedVars())
      EXPECT_EQ(VI->varIndex(V), FreshVI.varIndex(V)) << PassName;
  }
  if (const Liveness *Live = AM.getCached<Liveness>(F)) {
    ASSERT_NE(VI, nullptr) << PassName; // Liveness keeps VI alive.
    AliasInfo FreshAI(F, *M.Info);
    Liveness FreshLive(Fresh, *VI, *M.Info, FreshAI);
    for (unsigned B = 0; B < Fresh.numBlocks(); ++B) {
      EXPECT_TRUE(Live->liveIn(B) == FreshLive.liveIn(B))
          << PassName << " live-in of block " << B;
      EXPECT_TRUE(Live->liveOut(B) == FreshLive.liveOut(B))
          << PassName << " live-out of block " << B;
    }
  }
  if (const ReachingDefs *RD = AM.getCached<ReachingDefs>(F)) {
    ASSERT_NE(VI, nullptr) << PassName;
    AliasInfo FreshAI(F, *M.Info);
    ReachingDefs FreshRD(Fresh, *VI, *M.Info, FreshAI);
    ASSERT_EQ(RD->numDefs(), FreshRD.numDefs()) << PassName;
    for (unsigned B = 0; B < Fresh.numBlocks(); ++B)
      EXPECT_TRUE(RD->reachIn(B) == FreshRD.reachIn(B))
          << PassName << " reach-in of block " << B;
  }
}

TEST(AnalysisManagerProperty, CachedEqualsFreshAfterEveryPass) {
  for (unsigned Seed = 0; Seed < 12; ++Seed) {
    GenOptions G;
    std::string Src = generateProgram(3000 + Seed, G);
    DiagnosticEngine Diags;
    auto M = compileToIR(Src, Diags);
    ASSERT_TRUE(M) << "seed " << 3000 + Seed << ": " << Diags.str();

    PipelineConfig Config;
    Config.FixpointPropagation = true; // Exercise the cluster driver too.
    Config.AfterPass = checkCachedAgainstFresh;
    runPipelineEx(*M, OptOptions::all(), Config);
    if (::testing::Test::HasFailure()) {
      ADD_FAILURE() << "stale cached analysis for fuzz seed "
                    << 3000 + Seed;
      return;
    }
  }
}

} // namespace
