//===- tests/parallel_campaign_test.cpp ------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel-campaign contract: a campaign report is a pure function
/// of (seed range, config) — never of --jobs, scheduling, or shard
/// decomposition.  Digests here serialize *everything* report-visible
/// (counts, coverage, firings, and the failure list in order), so any
/// nondeterministic aggregation shows up as a diff, not a flake.  Also
/// covers the FaultInjector thread-ownership rule and the campaign
/// config validation (seed-space wrap, shard range).
///
//===----------------------------------------------------------------------===//

#include "fuzz/Campaign.h"
#include "support/FaultInjector.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <thread>

using namespace sldb;

namespace {

/// Serializes every deterministic field of a campaign result, including
/// failure ordering (the part most easily scrambled by a parallel
/// merge).  Worker stats are wall-clock and deliberately excluded.
std::string digest(const CampaignResult &R) {
  std::ostringstream D;
  D << "programs " << R.Programs << "\nruns " << R.Runs
    << "\nfailed_compiles " << R.FailedCompiles << "\nstops " << R.Stops
    << "\nobservations " << R.Observations << "\ncoverage "
    << R.Coverage.WithHoisted << " " << R.Coverage.WithSunk << " "
    << R.Coverage.WithDeadMarks << " " << R.Coverage.WithAvailMarks << " "
    << R.Coverage.WithSRRecords << "\n";
  for (const PassFiring &F : R.Coverage.Firings)
    D << "firing " << F.Name << " " << F.Changed << "\n";
  for (const CampaignFailure &F : R.Failures) {
    D << "failure seed " << F.Seed << " promote " << F.Promote << " "
      << F.FaultName << " " << F.ProcessOutcome << "\n";
    for (const Violation &V : F.Violations)
      D << "  violation " << V.str() << "\n";
  }
  D << "config_error " << R.ConfigError << "\n";
  return D.str();
}

std::string digest(const InjectCampaignResult &R) {
  std::ostringstream D;
  D << "programs " << R.Programs << "\nruns " << R.Runs
    << "\ncompile_errors " << R.CompileErrors << "\ndegraded "
    << R.DegradedRuns << "\ncrashes " << R.Crashes << "\nhangs "
    << R.Hangs << "\nunsound " << R.UnsoundRuns << "\n";
  for (const CampaignFailure &F : R.Failures)
    D << "failure seed " << F.Seed << " fault " << F.FaultName << "\n";
  D << "config_error " << R.ConfigError << "\n";
  return D.str();
}

CampaignConfig smallCampaign() {
  CampaignConfig C;
  C.Seed = 11;
  C.Count = 10;
  C.Shrink = false;
  C.WriteFailures = false;
  return C;
}

} // namespace

TEST(ParallelCampaign, ReportIdenticalAcrossJobCounts) {
  CampaignConfig C = smallCampaign();
  C.Jobs = 1;
  std::string Serial = digest(runCampaign(C));
  for (unsigned Jobs : {2u, 8u}) {
    C.Jobs = Jobs;
    EXPECT_EQ(digest(runCampaign(C)), Serial) << "jobs " << Jobs;
  }
}

TEST(ParallelCampaign, InjectReportIdenticalAcrossJobCounts) {
  InjectCampaignConfig C;
  C.Seed = 3;
  C.Count = 3;
  C.Shrink = false;
  C.WriteFailures = false;
  C.Isolate = false; // In-process: concurrent armed faults per thread.
  C.Jobs = 1;
  std::string Serial = digest(runInjectCampaign(C));
  for (unsigned Jobs : {3u, 8u}) {
    C.Jobs = Jobs;
    EXPECT_EQ(digest(runInjectCampaign(C)), Serial) << "jobs " << Jobs;
  }
}

TEST(ParallelCampaign, ShardsConcatenateToWholeCampaign) {
  CampaignConfig C = smallCampaign();
  C.Jobs = 2;
  CampaignResult Whole = runCampaign(C);

  CampaignResult Merged;
  for (unsigned I = 0; I < 3; ++I) {
    C.ShardIndex = I;
    C.ShardCount = 3;
    CampaignResult S = runCampaign(C);
    ASSERT_TRUE(S.ConfigError.empty()) << S.ConfigError;
    Merged.Programs += S.Programs;
    Merged.Runs += S.Runs;
    Merged.FailedCompiles += S.FailedCompiles;
    Merged.Stops += S.Stops;
    Merged.Observations += S.Observations;
    Merged.Coverage.WithHoisted += S.Coverage.WithHoisted;
    Merged.Coverage.WithSunk += S.Coverage.WithSunk;
    Merged.Coverage.WithDeadMarks += S.Coverage.WithDeadMarks;
    Merged.Coverage.WithAvailMarks += S.Coverage.WithAvailMarks;
    Merged.Coverage.WithSRRecords += S.Coverage.WithSRRecords;
    if (Merged.Coverage.Firings.empty()) {
      Merged.Coverage.Firings = S.Coverage.Firings;
    } else {
      for (std::size_t K = 0; K < Merged.Coverage.Firings.size() &&
                              K < S.Coverage.Firings.size();
           ++K)
        Merged.Coverage.Firings[K].Changed +=
            S.Coverage.Firings[K].Changed;
    }
    for (const CampaignFailure &F : S.Failures)
      Merged.Failures.push_back(F);
  }
  EXPECT_EQ(digest(Merged), digest(Whole));
}

TEST(ParallelCampaign, SeedRangeOverflowIsRejected) {
  CampaignConfig C = smallCampaign();
  C.Seed = 0xFFFFFFFEu;
  C.Count = 10;
  CampaignResult R = runCampaign(C);
  EXPECT_FALSE(R.ConfigError.empty());
  EXPECT_FALSE(R.sound());
  EXPECT_EQ(R.Programs, 0u);

  // The last representable seed is fine.
  C.Count = 2; // Seeds 0xFFFFFFFE, 0xFFFFFFFF.
  C.Gen.TopStmts = 4;
  C.Gen.Helpers = false;
  R = runCampaign(C);
  EXPECT_TRUE(R.ConfigError.empty()) << R.ConfigError;
  EXPECT_EQ(R.Programs, 2u);

  InjectCampaignConfig IC;
  IC.Seed = 0xFFFFFFF0u;
  IC.Count = 1000;
  InjectCampaignResult IR = runInjectCampaign(IC);
  EXPECT_FALSE(IR.ConfigError.empty());
  EXPECT_FALSE(IR.sound());
}

TEST(ParallelCampaign, BadShardConfigIsRejected) {
  CampaignConfig C = smallCampaign();
  C.ShardIndex = 3;
  C.ShardCount = 3;
  EXPECT_FALSE(runCampaign(C).ConfigError.empty());
  C.ShardIndex = 0;
  C.ShardCount = 0;
  EXPECT_FALSE(runCampaign(C).ConfigError.empty());
}

TEST(ParallelCampaign, WorkerStatsAccountForEveryUnit) {
  CampaignConfig C = smallCampaign();
  C.Jobs = 4;
  CampaignResult R = runCampaign(C);
  unsigned Units = 0;
  for (const CampaignWorkerStats &W : R.Workers)
    Units += W.Units;
  // Two modes per seed; compile failures would run both modes too.
  EXPECT_EQ(Units, C.Count * 2);
}

TEST(FaultInjectorThreads, ArmedStateIsThreadOwned) {
  FaultInjector::arm(FaultId::DropDeadMarker, 42);
  EXPECT_TRUE(FaultInjector::armed(FaultId::DropDeadMarker));

  std::thread T([] {
    // A fresh thread starts pristine, whatever the spawner armed.
    EXPECT_EQ(FaultInjector::current(), FaultId::None);
    FaultInjector::arm(FaultId::TruncateStmtMap, 7);
    EXPECT_TRUE(FaultInjector::armed(FaultId::TruncateStmtMap));
    // This thread's oracle-pristine window must not disturb siblings.
    FaultInjector::suspend();
    EXPECT_EQ(FaultInjector::current(), FaultId::None);
    FaultInjector::resume();
    EXPECT_TRUE(FaultInjector::armed(FaultId::TruncateStmtMap));
    FaultInjector::disarm();
  });
  T.join();

  // The spawner's fault survived the other thread's arm/suspend/disarm.
  EXPECT_TRUE(FaultInjector::armed(FaultId::DropDeadMarker));
  FaultInjector::disarm();
  EXPECT_EQ(FaultInjector::current(), FaultId::None);
}

TEST(FaultInjectorThreads, RngStreamsAreIndependent) {
  FaultInjector::arm(FaultId::TrapVMMidRun, 1);
  std::uint32_t MainFirst = FaultInjector::rand();

  std::uint32_t ThreadFirst = 0;
  std::thread T([&] {
    FaultInjector::arm(FaultId::TrapVMMidRun, 1);
    ThreadFirst = FaultInjector::rand();
    // Draw more values; must not advance the main thread's stream.
    for (int I = 0; I < 100; ++I)
      FaultInjector::rand();
    FaultInjector::disarm();
  });
  T.join();

  // Same (fault, seed) => same deterministic stream, per thread.
  EXPECT_EQ(ThreadFirst, MainFirst);
  // Main thread's stream position is unaffected by the sibling's draws.
  FaultInjector::arm(FaultId::TrapVMMidRun, 1);
  EXPECT_EQ(FaultInjector::rand(), MainFirst);
  FaultInjector::disarm();
}
