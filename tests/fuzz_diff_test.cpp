//===- tests/fuzz_diff_test.cpp - Differential fuzzing oracle --*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
// Tier-1 wrapper around the differential fuzzing harness (src/fuzz/):
//
//  * a fixed-seed 200-program corpus must run the lockstep O0/optimized
//    oracle with ZERO soundness violations (the paper's truthfulness
//    guarantee, checked against ground truth instead of proved);
//  * the corpus must actually exercise every endangering optimization —
//    hoisting (PRE/LICM), sinking (PDE), dead-assignment elimination and
//    induction-variable strength reduction — both at the pass level
//    (pipeline firing counts) and at the machine level (hoisted/sunk
//    instructions, MDEAD/MAVAIL markers, SR records);
//  * the harness must have teeth: an intentionally unsound classifier
//    (the undefended FaultInjector points) must be caught;
//  * the reproducer shrinker must preserve the predicate while shrinking.
//
//===----------------------------------------------------------------------===//

#include "core/Classifier.h"
#include "fuzz/Campaign.h"
#include "fuzz/ProgramGen.h"
#include "fuzz/Reduce.h"
#include "ir/IRGen.h"
#include "support/FaultInjector.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace sldb;

namespace {

/// The fixed tier-1 corpus, run once and shared across tests (a campaign
/// compiles and executes 400 builds; repeating it per test would dominate
/// suite runtime).
const CampaignResult &corpus() {
  static CampaignResult R = [] {
    CampaignConfig C;
    C.Seed = 1;
    C.Count = 200;
    C.BothPromoteModes = true;
    C.Shrink = false;
    C.WriteFailures = false;
    return runCampaign(C);
  }();
  return R;
}

std::string failureSummary(const CampaignResult &R) {
  std::string S;
  for (const CampaignFailure &F : R.Failures) {
    S += "seed " + std::to_string(F.Seed) +
         (F.Promote ? " (promote on): " : " (promote off): ");
    if (!F.Violations.empty())
      S += F.Violations.front().str();
    S += "\n";
  }
  return S;
}

/// Restores the intact classifier even when an assertion fails mid-test.
struct FaultGuard {
  ~FaultGuard() { FaultInjector::disarm(); }
};

} // namespace

TEST(FuzzDiff, FixedCorpusIsSound) {
  const CampaignResult &R = corpus();
  EXPECT_EQ(R.FailedCompiles, 0u)
      << "generated programs must always compile";
  EXPECT_EQ(R.Programs, 200u);
  EXPECT_EQ(R.Runs, 400u) << "each program runs promote-on and promote-off";
  EXPECT_GT(R.Observations, 0u);
  EXPECT_TRUE(R.sound()) << failureSummary(R);
}

TEST(FuzzDiff, CorpusExercisesEveryEndangeringOpt) {
  const CampaignCoverage &Cov = corpus().Coverage;
  // Pass-level: every Table 1 transformation the classifier reasons
  // about fired at least once over the corpus.
  EXPECT_GT(Cov.fired("partial-redundancy-elimination(hoisting)"), 0u);
  EXPECT_GT(Cov.fired("loop-invariant-code-motion"), 0u);
  EXPECT_GT(Cov.fired("partial-dead-code-elimination(sinking)"), 0u);
  EXPECT_GT(Cov.fired("dead-assignment-elimination"), 0u);
  EXPECT_GT(Cov.fired("strength-reduction-and-ivopt"), 0u);
  // Machine-level: the transformations left the artifacts the debugger's
  // analyses consume, so the oracle really judged endangered variables.
  EXPECT_GT(Cov.WithHoisted, 0u) << "no program had a hoisted instruction";
  EXPECT_GT(Cov.WithSunk, 0u) << "no program had a sunk instruction";
  EXPECT_GT(Cov.WithDeadMarks, 0u) << "no program had an MDEAD marker";
  EXPECT_GT(Cov.WithAvailMarks, 0u) << "no program had an MAVAIL marker";
  EXPECT_GT(Cov.WithSRRecords, 0u) << "no program had an SR recovery";
}

namespace {

// Figure-2 shape with loop-computed (unfoldable) values steering
// execution down the ELSE path, where PRE lands the hoisted `x = y + z`:
// at the original occurrence's stop, x already holds the future value.
const char *HoistVictim = R"(
  int main() {
    int u = 0; int v = 0;
    for (int i = 0; i < 3; i = i + 1) { u = u + 1; }
    for (int i = 0; i < 7; i = i + 1) { v = v + 1; }
    int y = v - u;
    int z = v + u;
    int x = u - v;
    if (u > v) {
      x = y + z;
    } else {
      u = u + 1;
    }
    x = y + z;
    print(x);
    print(u);
    return 0;
  }
)";

// `int v = a` is dead (overwritten before use) and eliminated with the
// copy recovery `a`; the surviving real assignment `v = s + 1` is the
// only kill of that marker's dead reach.  (The RHS is an Add so neither
// copy- nor constant-propagation can bypass the assignment, and `s` is a
// loop accumulator so nothing folds.)
const char *DeadKillVictim = R"(
  int main() {
    int a = 5;
    int s = 0;
    for (int i = 0; i < 3; i = i + 1) { s = s + i; }
    int v = a;
    v = s + 1;
    print(v);
    print(a);
    return 0;
  }
)";

} // namespace

TEST(FuzzDiff, BrokenHoistReachIsCaught) {
  // Sanity: the intact classifier judges the program sound.
  ASSERT_TRUE(checkProgram(HoistVictim, /*Promote=*/true).empty());

  FaultGuard G;
  FaultInjector::arm(FaultId::ClassifierSuppressHoistGen, /*Seed=*/1);
  std::vector<Violation> V = checkProgram(HoistVictim, /*Promote=*/true);
  ASSERT_FALSE(V.empty())
      << "suppressing hoist-reach GEN must produce an unsound verdict";
  bool SawUnsoundCurrent = false;
  for (const Violation &Viol : V)
    if (Viol.Kind == ViolationKind::UnsoundCurrent)
      SawUnsoundCurrent = true;
  EXPECT_TRUE(SawUnsoundCurrent) << V.front().str();
}

TEST(FuzzDiff, BrokenDeadReachKillIsCaught) {
  ASSERT_TRUE(checkProgram(DeadKillVictim, /*Promote=*/true).empty());

  FaultGuard G;
  FaultInjector::arm(FaultId::ClassifierSuppressDeadAssignKill, /*Seed=*/1);
  std::vector<Violation> V = checkProgram(DeadKillVictim, /*Promote=*/true);
  ASSERT_FALSE(V.empty())
      << "suppressing the dead-reach assignment kill must resurrect the "
         "eliminated copy's recovery past the fresh assignment";
  bool SawBadValue = false;
  for (const Violation &Viol : V)
    if (Viol.Kind == ViolationKind::UnsoundCurrent ||
        Viol.Kind == ViolationKind::WrongRecovery)
      SawBadValue = true;
  EXPECT_TRUE(SawBadValue) << V.front().str();
}

TEST(FuzzDiff, ShrinkerPreservesPredicateAndShrinks) {
  // Brace-region deletion: the loop and the helper must vanish; the
  // marked line must survive.  The predicate is syntactic so the test is
  // independent of compiler behavior.
  const std::string Src = R"(int helper(int x) {
  int t = x + 1;
  return t;
}
int main() {
  int keep = 42;
  int junk1 = 1;
  int junk2 = 2;
  for (int i = 0; i < 3; i = i + 1) {
    junk1 = junk1 + junk2;
  }
  print(keep);
  return 0;
}
)";
  auto Pred = [](const std::string &S) {
    return S.find("keep = 42") != std::string::npos &&
           S.find("print(keep)") != std::string::npos;
  };
  ASSERT_TRUE(Pred(Src));
  std::string Reduced = reduceProgram(Src, Pred);
  EXPECT_TRUE(Pred(Reduced));
  EXPECT_LT(Reduced.size(), Src.size());
  EXPECT_EQ(Reduced.find("helper"), std::string::npos);
  EXPECT_EQ(Reduced.find("for ("), std::string::npos);
  EXPECT_EQ(Reduced.find("junk2 = 2"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Aliasing generator grammar (arrays, pointers, address-taken locals)
//===----------------------------------------------------------------------===//

TEST(FuzzDiff, AliasGeneratorNeverReadsUninitializedArrayElements) {
  // The aliasing grammar's safety discipline: every `int aN[K];`
  // declaration is immediately followed by K constant-index stores, one
  // per element, before any other mention of the array.  This is what
  // makes array reads judgeable against ground truth — a generated read
  // of an uninitialized element would make the oracle's expected value
  // garbage.  Seed 7 is the original regression seed (first corpus seed
  // whose program declares an array); the sweep pins the discipline for
  // the whole tier-1 range.
  GenOptions G;
  G.Alias = true;
  G.AliasPct = 100; // Plant every aliasing idiom: maximize arrays.
  unsigned ArraysSeen = 0;
  for (std::uint32_t Seed = 1; Seed <= 80; ++Seed) {
    std::string Src = generateProgram(Seed, G);
    DiagnosticEngine Diags;
    auto M = compileToIR(Src, Diags);
    ASSERT_TRUE(M != nullptr)
        << "seed " << Seed << " failed to compile:\n" << Diags.str()
        << "\n" << Src;

    // Scan declarations textually: generation is line-oriented.
    std::istringstream In(Src);
    std::vector<std::string> Lines;
    for (std::string L; std::getline(In, L);)
      Lines.push_back(L);
    for (std::size_t I = 0; I < Lines.size(); ++I) {
      std::size_t P = Lines[I].find("int a");
      if (P == std::string::npos ||
          Lines[I].find('[') == std::string::npos)
        continue;
      std::size_t NameEnd = Lines[I].find('[');
      std::string Name = Lines[I].substr(P + 4, NameEnd - P - 4);
      unsigned K = static_cast<unsigned>(
          std::stoul(Lines[I].substr(NameEnd + 1)));
      ++ArraysSeen;
      ASSERT_LE(I + K, Lines.size() - 1) << Src;
      for (unsigned J = 0; J < K; ++J) {
        std::string Expect = Name + "[" + std::to_string(J) + "] = ";
        EXPECT_NE(Lines[I + 1 + J].find(Expect), std::string::npos)
            << "seed " << Seed << ": element " << J << " of " << Name
            << " not initialized immediately after declaration:\n" << Src;
      }
    }
  }
  EXPECT_GT(ArraysSeen, 40u)
      << "the sweep should exercise many array declarations";
}

TEST(FuzzDiff, AliasRegressionSeedStaysSound) {
  // Seed 7 generates an array init/reduce pair plus an address-taken
  // scalar with an indirect store (the shapes that once risked judging
  // a variable against a stale or garbage expected value).  Keep it
  // pinned through the full lockstep oracle in both promote modes.
  CampaignConfig C;
  C.Seed = 7;
  C.Count = 1;
  C.Gen.Alias = true;
  C.Gen.AliasPct = 100;
  C.BothPromoteModes = true;
  C.Shrink = false;
  C.WriteFailures = false;
  CampaignResult R = runCampaign(C);
  EXPECT_EQ(R.FailedCompiles, 0u);
  EXPECT_TRUE(R.sound()) << failureSummary(R);
  EXPECT_GT(R.Observations, 0u);
}
