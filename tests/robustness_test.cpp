//===- tests/robustness_test.cpp - Fault-tolerance tier-1 tests -*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
// The failure-model contract (DESIGN.md "Failure model"):
//
//  * hostile or degenerate input produces diagnostics, never signals —
//    every file in tests/crashes/ must run through the sldbc binary to a
//    normal process exit;
//  * resource exhaustion is budgeted: parser recursion depth, VM stack,
//    and VM fuel all trap with a message naming the limit;
//  * corrupted debug annotations degrade the classifier to conservative
//    verdicts (Suspect/Nonresident, never Current, never Recoverable)
//    with a diagnostic finding, instead of asserting;
//  * the degraded path is never *less* conservative than the fault-free
//    path for the same (breakpoint, variable) query.
//
//===----------------------------------------------------------------------===//

#include "codegen/ISel.h"
#include "core/Classifier.h"
#include "fuzz/ProgramGen.h"
#include "ir/IRGen.h"
#include "opt/Pass.h"
#include "support/Diagnostics.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <dirent.h>
#include <memory>
#include <string>
#include <sys/wait.h>
#include <vector>

using namespace sldb;

namespace {

std::vector<std::string> crashCorpus() {
  std::vector<std::string> Files;
  DIR *D = opendir(SLDB_CRASH_DIR);
  if (!D)
    return Files;
  while (dirent *E = readdir(D)) {
    std::string Name = E->d_name;
    if (Name.size() > 6 && Name.rfind(".minic") == Name.size() - 6)
      Files.push_back(std::string(SLDB_CRASH_DIR) + "/" + Name);
  }
  closedir(D);
  return Files;
}

/// Runs sldbc on \p File, returns the raw wait status (-1 on spawn
/// failure).  Output is discarded; only the exit discipline matters.
int runSldbc(const std::string &File, const std::string &ExtraArgs) {
  std::string Cmd = std::string("'") + SLDB_SLDBC_PATH + "' " + ExtraArgs +
                    " '" + File + "' > /dev/null 2>&1";
  return std::system(Cmd.c_str());
}

/// Compiles \p Src at -O2 with register promotion, the configuration
/// where every annotation kind (markers, hoist keys, recoveries) is
/// live.  Fails the surrounding test on any compile error.
std::unique_ptr<IRModule> compileOpt(const char *Src) {
  DiagnosticEngine Diags;
  auto M = compileToIR(Src, Diags);
  if (!M) {
    ADD_FAILURE() << "test program failed to compile: " << Diags.str();
    return nullptr;
  }
  Status PS = runPipelineEx(*M, OptOptions::all(), PipelineConfig());
  if (!PS.ok()) {
    ADD_FAILURE() << "pipeline failed: " << PS.str();
    return nullptr;
  }
  return M;
}

Expected<MachineModule> machineOf(const IRModule &M) {
  CodegenOptions CG;
  CG.PromoteVars = true;
  CG.Schedule = false;
  return compileToMachineE(M, CG);
}

// A program where dead-assignment elimination leaves an MDEAD marker
// with a copy recovery (same shape as the fuzz teeth tests).
const char *MarkerProgram = R"(
  int main() {
    int a = 5;
    int s = 0;
    for (int i = 0; i < 3; i = i + 1) { s = s + i; }
    int v = a;
    v = s + 1;
    print(v);
    print(a);
    return 0;
  }
)";

/// Conservativeness rank of a verdict: how little the debugger claims to
/// know.  Degrading may only move a verdict toward *higher* rank (less
/// knowledge); Noncurrent and Suspect both display a warned actual
/// value, Uninitialized and Nonresident display nothing.
int rank(const Classification &C) {
  switch (C.Kind) {
  case VarClass::Current:
    return 0;
  case VarClass::Noncurrent:
  case VarClass::Suspect:
    return 1;
  case VarClass::Uninitialized:
  case VarClass::Nonresident:
    return 2;
  }
  return 2;
}

} // namespace

//===----------------------------------------------------------------------===//
// Crash corpus: hostile input through the real driver binary
//===----------------------------------------------------------------------===//

TEST(Robustness, CrashCorpusExitsCleanly) {
  std::vector<std::string> Files = crashCorpus();
  ASSERT_FALSE(Files.empty()) << "crash corpus missing at " SLDB_CRASH_DIR;
  for (const std::string &F : Files) {
    for (const char *Mode : {"-O0", "-O2"}) {
      // The fuel bound keeps the adversarial loop/recursion programs
      // terminating; compile-error programs never reach the VM.
      int St = runSldbc(F, std::string(Mode) + " --fuel 200000");
      ASSERT_NE(St, -1) << "failed to spawn sldbc for " << F;
      EXPECT_TRUE(WIFEXITED(St))
          << F << " (" << Mode << ") killed sldbc with signal "
          << (WIFSIGNALED(St) ? WTERMSIG(St) : 0)
          << " — hostile input must produce a diagnostic, not a crash";
    }
  }
}

TEST(Robustness, FuelTrapNamesBudget) {
  std::string Cmd = std::string("'") + SLDB_SLDBC_PATH + "' -O0 --fuel 5000 '" +
                    SLDB_CRASH_DIR + "/infinite-loop.minic' 2>&1";
  FILE *P = popen(Cmd.c_str(), "r");
  ASSERT_NE(P, nullptr);
  std::string Out;
  char Buf[256];
  while (std::fgets(Buf, sizeof(Buf), P))
    Out += Buf;
  int St = pclose(P);
  ASSERT_TRUE(WIFEXITED(St));
  EXPECT_EQ(WEXITSTATUS(St), 1) << Out;
  EXPECT_NE(Out.find("fuel budget 5000"), std::string::npos)
      << "trap message must name the exhausted budget, got: " << Out;
}

//===----------------------------------------------------------------------===//
// Parser recursion guard
//===----------------------------------------------------------------------===//

TEST(Robustness, ParserRecursionGuardReportsDiagnostic) {
  std::string Deep = "int main() {\n  return " + std::string(400, '(') +
                     "1" + std::string(400, ')') + ";\n}\n";
  DiagnosticEngine Diags;
  auto M = compileToIR(Deep, Diags);
  EXPECT_EQ(M, nullptr);
  ASSERT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.str().find("recursion limit"), std::string::npos)
      << Diags.str();
}

TEST(Robustness, ShallowNestingStillParses) {
  std::string Ok = "int main() {\n  return " + std::string(50, '(') + "1" +
                   std::string(50, ')') + ";\n}\n";
  DiagnosticEngine Diags;
  EXPECT_NE(compileToIR(Ok, Diags), nullptr) << Diags.str();
}

//===----------------------------------------------------------------------===//
// Structured errors instead of asserts
//===----------------------------------------------------------------------===//

TEST(Robustness, TooManyCallArgsIsStatusNotAssert) {
  const char *Src = R"(
    int wide(int a, int b, int c, int d, int e, int f, int g,
             int h, int i, int j) {
      return a + j;
    }
    int main() { return wide(1, 2, 3, 4, 5, 6, 7, 8, 9, 10); }
  )";
  DiagnosticEngine Diags;
  auto M = compileToIR(Src, Diags);
  ASSERT_NE(M, nullptr) << Diags.str();
  CodegenOptions CG;
  Expected<MachineModule> MM = compileToMachineE(*M, CG);
  ASSERT_FALSE(static_cast<bool>(MM));
  EXPECT_FALSE(MM.status().str().empty());
}

//===----------------------------------------------------------------------===//
// Degraded mode: corrupted annotations yield conservative verdicts
//===----------------------------------------------------------------------===//

TEST(Robustness, CorruptedMarkerDegradesInsteadOfAsserting) {
  auto M = compileOpt(MarkerProgram);
  ASSERT_NE(M, nullptr);
  Expected<MachineModule> MME = machineOf(*M);
  ASSERT_TRUE(static_cast<bool>(MME)) << MME.status().str();
  MachineModule &MM = *MME;

  // Deliberately destroy one dead marker (the DropDeadMarker injection,
  // applied by hand): the census no longer matches, which is
  // unattributable damage, so the whole function must degrade.
  MachineFunction *Victim = nullptr;
  for (MachineFunction &MF : MM.Funcs)
    for (MachineBlock &B : MF.Blocks)
      for (MInstr &I : B.Insts)
        if (I.Op == MOp::MDEAD && !Victim) {
          I.Op = MOp::MNOP;
          I.MarkVar = InvalidVar;
          Victim = &MF;
        }
  ASSERT_NE(Victim, nullptr) << "program must produce an MDEAD marker";

  Classifier C(*Victim, *MM.Info);
  EXPECT_FALSE(C.annotationFindings().empty())
      << "the verifier must report the marker-census mismatch";

  unsigned Queries = 0;
  for (std::size_t S = 0; S < Victim->StmtAddr.size(); ++S) {
    if (Victim->StmtAddr[S] < 0)
      continue;
    auto Addr = static_cast<std::uint32_t>(Victim->StmtAddr[S]);
    for (VarId V : MM.Info->func(Victim->Id).Locals) {
      if (!MM.Info->var(V).isScalar())
        continue;
      Classification R = C.classify(Addr, V);
      ++Queries;
      EXPECT_TRUE(C.degraded(V));
      EXPECT_TRUE(R.Degraded);
      EXPECT_NE(R.Kind, VarClass::Current)
          << "degraded verdicts must never claim Current";
      EXPECT_FALSE(R.Recoverable)
          << "degraded verdicts must never trust recovery records";
    }
  }
  EXPECT_GT(Queries, 0u);
}

TEST(Robustness, CorruptedMarkerStmtDegradesOnlyItsVariable) {
  auto M = compileOpt(MarkerProgram);
  ASSERT_NE(M, nullptr);
  Expected<MachineModule> MME = machineOf(*M);
  ASSERT_TRUE(static_cast<bool>(MME)) << MME.status().str();
  MachineModule &MM = *MME;

  MachineFunction *Victim = nullptr;
  VarId Damaged = InvalidVar;
  for (MachineFunction &MF : MM.Funcs)
    for (MachineBlock &B : MF.Blocks)
      for (MInstr &I : B.Insts)
        if (I.Op == MOp::MDEAD && !Victim) {
          I.MarkStmt = 0xFFFF; // Out of the function's statement range.
          Damaged = I.MarkVar;
          Victim = &MF;
        }
  ASSERT_NE(Victim, nullptr);
  ASSERT_NE(Damaged, InvalidVar);

  Classifier C(*Victim, *MM.Info);
  EXPECT_FALSE(C.annotationFindings().empty());
  EXPECT_TRUE(C.degraded(Damaged))
      << "the marker's variable must enter degraded mode";
  bool OthersIntact = false;
  for (VarId V : MM.Info->func(Victim->Id).Locals)
    if (V != Damaged && !C.degraded(V))
      OthersIntact = true;
  EXPECT_TRUE(OthersIntact)
      << "attributable damage must not degrade unrelated variables";
}

//===----------------------------------------------------------------------===//
// Property: degrading never makes a verdict less conservative
//===----------------------------------------------------------------------===//

TEST(Robustness, DegradedNeverLessConservativeThanFaultFree) {
  unsigned Compared = 0;
  for (std::uint32_t Seed = 1; Seed <= 25; ++Seed) {
    std::string Src = generateProgram(Seed);
    DiagnosticEngine Diags;
    auto M = compileToIR(Src, Diags);
    ASSERT_NE(M, nullptr) << "seed " << Seed << ": " << Diags.str();
    Status PS = runPipelineEx(*M, OptOptions::all(), PipelineConfig());
    ASSERT_TRUE(PS.ok()) << PS.str();
    Expected<MachineModule> MME = machineOf(*M);
    ASSERT_TRUE(static_cast<bool>(MME)) << MME.status().str();
    MachineModule &MM = *MME;

    for (const MachineFunction &MF : MM.Funcs) {
      Classifier FaultFree(MF, *MM.Info);
      Classifier Degraded(MF, *MM.Info);
      Degraded.degradeAllVariables();
      ASSERT_TRUE(FaultFree.annotationFindings().empty())
          << "seed " << Seed << " " << MF.Name << ": "
          << FaultFree.annotationFindings().front().Message;

      for (std::size_t S = 0; S < MF.StmtAddr.size(); ++S) {
        if (MF.StmtAddr[S] < 0)
          continue;
        auto Addr = static_cast<std::uint32_t>(MF.StmtAddr[S]);
        for (VarId V : MM.Info->func(MF.Id).Locals) {
          if (!MM.Info->var(V).isScalar())
            continue;
          Classification A = FaultFree.classify(Addr, V);
          Classification B = Degraded.classify(Addr, V);
          ++Compared;
          EXPECT_GE(rank(B), rank(A))
              << "seed " << Seed << " " << MF.Name << " s" << S << " var "
              << MM.Info->var(V).Name << ": degraded "
              << varClassName(B.Kind) << " is less conservative than "
              << varClassName(A.Kind);
          EXPECT_FALSE(B.Recoverable);
          EXPECT_NE(B.Kind, VarClass::Current);
        }
      }
    }
  }
  EXPECT_GT(Compared, 1000u) << "property compared too few verdicts";
}
