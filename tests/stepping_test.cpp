//===- tests/stepping_test.cpp - Stepping / line-table oracle ---*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for source-level stepping (Debugger::stepStmt /
/// Machine::startPaused) and the stepping fuzz oracle
/// (fuzz/StepOracle.h, `sldb-fuzz --oracle=step`): the unoptimized step
/// sequence must follow source statement order, the optimized build must
/// never invent (phantom) or lose (vanished) anchored statement stops,
/// and the campaign report must be --jobs invariant.
///
//===----------------------------------------------------------------------===//

#include "codegen/ISel.h"
#include "core/Debugger.h"
#include "fuzz/QualityCampaign.h"
#include "ir/IRGen.h"
#include "opt/Pass.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

using namespace sldb;

namespace {

// Figure programs as in tests/explain_golden_test.cpp.
const char *Fig2 = R"(
  int main() {
    int u = 7; int v = 3; int y = 2; int z = 4;
    int x = u - v;        // s4: E0
    if (u > v) {
      x = y + z;          // s6: E1
    } else {
      u = u + 1;          // s7 (hoisted E3 lands after this)
    }
    x = y + z;            // s8: E2 -> avail marker
    print(x);             // s9: Bkpt3
    print(u);
    return 0;
  }
)";

const char *Fig3 = R"(
  int main() {
    int u = 5; int v = 2; int y = 3; int z = 4;
    int x = y + z;       // s4: E0, partially dead -> sunk, marker here
    if (u > v) {
      x = u - v;         // s6: E1
      print(x);          // s7
    } else {
      print(x);          // s8 (sunk copy lands before this)
    }
    print(u);            // s9: join
    return 0;
  }
)";

const char *Fig4 = R"(
  int main() {
    int a = 7;
    int c = a;          // s1: dead (c never used) -> marker, recover=a
    print(a);           // s2
    return a;
  }
)";

MachineModule buildO0(std::string_view Src,
                      std::vector<std::unique_ptr<IRModule>> &Pool) {
  DiagnosticEngine Diags;
  auto M = compileToIR(Src, Diags);
  EXPECT_TRUE(M != nullptr) << Diags.str();
  runPipeline(*M, OptOptions::none());
  CodegenOptions CG;
  CG.PromoteVars = false;
  CG.Schedule = false;
  MachineModule MM = compileToMachine(*M, CG);
  Pool.push_back(std::move(M)); // Keep MM.Info alive.
  return MM;
}

//===----------------------------------------------------------------------===//
// Debugger::stepStmt unit behavior
//===----------------------------------------------------------------------===//

TEST(StepStmt, VisitsStatementsInSourceOrderAtO0) {
  const char *Src = R"(
    int main() {
      int a = 1;
      int b = 2;
      print(a + b);
      return 0;
    }
  )";
  std::vector<std::unique_ptr<IRModule>> Pool;
  MachineModule MM = buildO0(Src, Pool);
  Debugger Dbg(MM);

  // startPaused stops before executing anything, at the first statement.
  ASSERT_EQ(Dbg.startPaused(), StopReason::Breakpoint);
  std::vector<StmtId> Seq;
  auto S0 = Dbg.currentStmt();
  ASSERT_TRUE(S0.has_value());
  Seq.push_back(*S0);

  StopReason R = StopReason::Breakpoint;
  while ((R = Dbg.stepStmt()) == StopReason::Breakpoint) {
    auto S = Dbg.currentStmt();
    ASSERT_TRUE(S.has_value());
    Seq.push_back(*S);
    ASSERT_LT(Seq.size(), 64u) << "stepping never terminated";
  }
  EXPECT_EQ(R, StopReason::Exited);
  // Straight-line code: statements in source order, each exactly once.
  EXPECT_EQ(Seq, (std::vector<StmtId>{0, 1, 2, 3}));
}

TEST(StepStmt, LoopBodyVisitedOncePerIteration) {
  const char *Src = R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 3; i = i + 1) {
        s = s + i;
      }
      print(s);
      return 0;
    }
  )";
  std::vector<std::unique_ptr<IRModule>> Pool;
  MachineModule MM = buildO0(Src, Pool);
  Debugger Dbg(MM);
  ASSERT_EQ(Dbg.startPaused(), StopReason::Breakpoint);

  // Count visits per statement over the whole run.
  std::vector<unsigned> Visits(64, 0);
  auto S0 = Dbg.currentStmt();
  ASSERT_TRUE(S0.has_value());
  ++Visits[*S0];
  unsigned Steps = 0;
  StopReason R;
  while ((R = Dbg.stepStmt()) == StopReason::Breakpoint) {
    auto S = Dbg.currentStmt();
    ASSERT_TRUE(S.has_value());
    ++Visits[*S];
    ASSERT_LT(++Steps, 256u) << "stepping never terminated";
  }
  EXPECT_EQ(R, StopReason::Exited);
  // The body statement (`s = s + i`) must be visited exactly 3 times.
  const MachineFunction *MF = MM.findFunc("main");
  ASSERT_NE(MF, nullptr);
  const FuncInfo &FI = MM.Info->func(MF->Id);
  bool FoundBody = false;
  for (StmtId S = 0; S < FI.Stmts.size(); ++S)
    if (Visits[S] == 3)
      FoundBody = true;
  EXPECT_TRUE(FoundBody) << "no statement stepped exactly 3 times";
}

TEST(StepStmt, FollowsCallsIntoHelpers) {
  const char *Src = R"(
    int twice(int x) {
      return x + x;
    }
    int main() {
      int a = 5;
      print(twice(a));
      return 0;
    }
  )";
  std::vector<std::unique_ptr<IRModule>> Pool;
  MachineModule MM = buildO0(Src, Pool);
  Debugger Dbg(MM);
  ASSERT_EQ(Dbg.startPaused(), StopReason::Breakpoint);
  FuncId Main = Dbg.currentFunction();
  bool LeftMain = false;
  unsigned Steps = 0;
  StopReason R;
  while ((R = Dbg.stepStmt()) == StopReason::Breakpoint) {
    if (Dbg.currentFunction() != Main)
      LeftMain = true;
    ASSERT_LT(++Steps, 64u) << "stepping never terminated";
  }
  EXPECT_EQ(R, StopReason::Exited);
  EXPECT_TRUE(LeftMain) << "stepStmt never stopped inside the callee";
}

//===----------------------------------------------------------------------===//
// checkStepping verdict matrix (synthetic results)
//===----------------------------------------------------------------------===//

StepResult cleanResult() {
  StepResult R;
  R.Compiled = true;
  R.SrcEnd = R.OptEnd = StopReason::Exited;
  R.SrcExit = R.OptExit = 0;
  R.SrcOutput = R.OptOutput = "1\n";
  return R;
}

StepVisit visit(std::uint64_t SrcN, std::uint64_t OptN, bool HasCode,
                bool Anchored) {
  StepVisit V;
  V.Func = 0;
  V.Stmt = 2;
  V.Line = 3;
  V.SrcVisits = SrcN;
  V.OptVisits = OptN;
  V.OptHasCode = HasCode;
  V.OptAnchored = Anchored;
  return V;
}

TEST(CheckStepping, FlagsPhantomStopOnAnchoredStatement) {
  StepResult R = cleanResult();
  R.Visits.push_back(visit(1, 2, true, true));
  auto Vs = checkStepping(R);
  ASSERT_EQ(Vs.size(), 1u);
  EXPECT_EQ(Vs[0].Kind, ViolationKind::PhantomStop);
  EXPECT_EQ(Vs[0].Stmt, 2u);
}

TEST(CheckStepping, FlagsVanishedStopWhenCodeExists) {
  StepResult R = cleanResult();
  R.Visits.push_back(visit(3, 0, true, true));
  auto Vs = checkStepping(R);
  ASSERT_EQ(Vs.size(), 1u);
  EXPECT_EQ(Vs[0].Kind, ViolationKind::VanishedStop);
}

TEST(CheckStepping, HoistedAnchorIsExempt) {
  // A hoisted/sunk anchor may legally run a different number of times
  // (LICM preheader): not anchored, no phantom/vanished verdict.
  StepResult R = cleanResult();
  R.Visits.push_back(visit(1, 2, true, false));
  R.Visits.push_back(visit(3, 0, true, false));
  EXPECT_TRUE(checkStepping(R).empty());
}

TEST(CheckStepping, FoldedAwayStatementIsExempt) {
  // No code at all for the statement: legitimately optimized out.
  StepResult R = cleanResult();
  R.Visits.push_back(visit(2, 0, false, false));
  EXPECT_TRUE(checkStepping(R).empty());
}

TEST(CheckStepping, CappedRunJudgesNothing) {
  StepResult R = cleanResult();
  R.Capped = true;
  R.Visits.push_back(visit(1, 5, true, true));
  R.OptOutput = "different";
  EXPECT_TRUE(checkStepping(R).empty());
}

TEST(CheckStepping, FlagsBehaviorMismatch) {
  StepResult R = cleanResult();
  R.OptOutput = "2\n";
  auto Vs = checkStepping(R);
  ASSERT_EQ(Vs.size(), 1u);
  EXPECT_EQ(Vs[0].Kind, ViolationKind::BehaviorMismatch);
}

//===----------------------------------------------------------------------===//
// End-to-end oracle runs
//===----------------------------------------------------------------------===//

TEST(StepOracle, FigureProgramsStepClean) {
  for (const char *Src : {Fig2, Fig3, Fig4}) {
    for (bool Promote : {false, true}) {
      StepOracleOptions O;
      O.Promote = Promote;
      StepResult R = runStepLockstep(Src, O);
      ASSERT_TRUE(R.Compiled) << R.CompileError;
      EXPECT_FALSE(R.Capped);
      EXPECT_FALSE(R.Visits.empty());
      std::string Report;
      for (const Violation &V : checkStepping(R))
        Report += V.str() + "\n";
      EXPECT_TRUE(Report.empty()) << Report;
    }
  }
}

TEST(StepOracle, SingleStatementProgram) {
  StepOracleOptions O;
  StepResult R = runStepLockstep("int main() { return 0; }", O);
  ASSERT_TRUE(R.Compiled) << R.CompileError;
  EXPECT_TRUE(checkStepping(R).empty());
  EXPECT_EQ(R.SrcEnd, StopReason::Exited);
  EXPECT_EQ(R.OptEnd, StopReason::Exited);
}

TEST(StepCampaign, FuzzSliceIsSound) {
  StepCampaignConfig C;
  C.Seed = 1;
  C.Count = 40;
  C.Shrink = false;
  C.WriteFailures = false;
  C.Jobs = 2;
  StepCampaignResult R = runStepCampaign(C);
  EXPECT_TRUE(R.sound()) << renderStepCampaignReport(R);
  EXPECT_EQ(R.Programs, 40u);
  EXPECT_EQ(R.Runs, 80u); // Both promote modes.
  EXPECT_EQ(R.FailedCompiles, 0u);
  EXPECT_GT(R.StmtsChecked, 0u);
}

TEST(StepCampaign, ReportIsJobsInvariant) {
  StepCampaignConfig C;
  C.Seed = 11;
  C.Count = 12;
  C.Shrink = false;
  C.Jobs = 1;
  std::string R1 = renderStepCampaignReport(runStepCampaign(C));
  C.Jobs = 8;
  std::string R8 = renderStepCampaignReport(runStepCampaign(C));
  EXPECT_EQ(R1, R8);
}

TEST(StepCampaign, ShardsPartitionTheSeedRange) {
  StepCampaignConfig C;
  C.Seed = 1;
  C.Count = 10;
  C.Shrink = false;
  unsigned Programs = 0;
  for (unsigned I = 0; I < 3; ++I) {
    C.ShardIndex = I;
    C.ShardCount = 3;
    StepCampaignResult R = runStepCampaign(C);
    EXPECT_TRUE(R.ConfigError.empty()) << R.ConfigError;
    Programs += R.Programs;
  }
  EXPECT_EQ(Programs, 10u);
}

//===----------------------------------------------------------------------===//
// CLI surface: the sldbc REPL `s`/`step` command
//===----------------------------------------------------------------------===//

#ifdef SLDB_SLDBC_PATH

std::string runCommand(const std::string &Cmd) {
  std::string Out;
  FILE *P = popen(Cmd.c_str(), "r");
  EXPECT_TRUE(P != nullptr) << Cmd;
  if (!P)
    return Out;
  char Buf[4096];
  std::size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), P)) > 0)
    Out.append(Buf, N);
  pclose(P);
  return Out;
}

TEST(SldbcCli, StepCommandWalksStatements) {
  std::string Cmd = std::string("'") + SLDB_SLDBC_PATH +
                    "' --debug --cmd s --cmd s --cmd s --cmd q '"
                    SLDB_INPUT_DIR "/recovery.mc' 2>/dev/null";
  std::string Out = runCommand(Cmd);
  // First `s` starts paused at main's first statement; the next two
  // advance one statement each.
  EXPECT_NE(Out.find("stopped in main() at statement 0"), std::string::npos)
      << Out;
  EXPECT_NE(Out.find("stopped in main() at statement 1"), std::string::npos)
      << Out;
}

#endif // SLDB_SLDBC_PATH

} // namespace
