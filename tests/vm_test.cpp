//===- tests/vm_test.cpp - Simulator semantics + verifier ------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "codegen/ISel.h"
#include "codegen/MachineVerifier.h"
#include "ir/IRGen.h"
#include "opt/Pass.h"
#include "vm/Machine.h"

#include <gtest/gtest.h>

using namespace sldb;

namespace {

MachineModule build(std::string_view Src, bool Optimize = true,
                    bool Promote = true) {
  DiagnosticEngine Diags;
  auto M = compileToIR(Src, Diags);
  EXPECT_TRUE(M != nullptr) << Diags.str();
  if (Optimize)
    runPipeline(*M, OptOptions::all());
  CodegenOptions CG;
  CG.PromoteVars = Promote;
  MachineModule MM = compileToMachine(*M, CG);
  static std::vector<std::unique_ptr<IRModule>> Pool;
  Pool.push_back(std::move(M));
  return MM;
}

} // namespace

TEST(MachineVerifier, CleanOnAllConfigs) {
  const char *Src = R"(
    int helper(int a, double b) { return a + (b > 0.5); }
    int main() {
      int arr[4];
      for (int i = 0; i < 4; i = i + 1) arr[i] = helper(i, i * 0.3);
      print(arr[3]);
      return 0;
    }
  )";
  for (bool Opt : {false, true})
    for (bool Promote : {false, true}) {
      MachineModule MM = build(Src, Opt, Promote);
      std::vector<std::string> Errors;
      bool OK = verifyMachineModule(MM, Errors);
      std::string Joined;
      for (auto &E : Errors)
        Joined += E + "\n";
      EXPECT_TRUE(OK) << Joined;
    }
}

TEST(VMExec, StepExecutesExactlyOneInstruction) {
  MachineModule MM = build("int main() { int x = 1; return x + 2; }",
                           /*Optimize=*/false);
  Machine VM(MM);
  VM.run(); // Runs to completion first...
  Machine VM2(MM);
  // ... then re-drive manually: set a breakpoint at address 0 and step.
  VM2.setBreakpoint({0, 0});
  ASSERT_EQ(VM2.run(), StopReason::Breakpoint);
  std::uint64_t C0 = VM2.instrCount();
  VM2.step();
  EXPECT_EQ(VM2.instrCount(), C0 + 1);
}

TEST(VMExec, BreakpointAtEntryFires) {
  MachineModule MM = build("int main() { return 7; }", false);
  Machine VM(MM);
  VM.setBreakpoint({0, 0});
  EXPECT_EQ(VM.run(), StopReason::Breakpoint);
  EXPECT_EQ(VM.pc().Local, 0u);
  EXPECT_EQ(VM.resume(), StopReason::Exited);
  EXPECT_EQ(VM.exitValue(), 7);
}

TEST(VMExec, RecursionMaintainsFrames) {
  MachineModule MM = build(R"(
    int fact(int n) {
      if (n <= 1) return 1;
      return n * fact(n - 1);
    }
    int main() { return fact(6); }
  )",
                           false);
  const MachineFunction *Fact = MM.findFunc("fact");
  ASSERT_NE(Fact, nullptr);
  std::uint32_t FactIdx =
      static_cast<std::uint32_t>(Fact - &MM.Funcs[0]);
  Machine VM(MM);
  VM.setBreakpoint({FactIdx, 0});
  std::size_t MaxDepth = 0;
  StopReason R = VM.run();
  while (R == StopReason::Breakpoint) {
    MaxDepth = std::max(MaxDepth, VM.frameDepth());
    R = VM.resume();
  }
  EXPECT_EQ(R, StopReason::Exited);
  EXPECT_EQ(VM.exitValue(), 720);
  EXPECT_GE(MaxDepth, 5u); // fact(6..2) nest.
}

TEST(VMExec, CalleeSavesEverythingExceptReturnValue) {
  // The caller's locals must survive a call that heavily uses registers.
  MachineModule MM = build(R"(
    int churn(int n) {
      int a = n; int b = a + 1; int c = b + 1; int d = c + 1;
      int e = d + 1; int f = e + 1; int g = f + 1; int h = g + 1;
      return a + b + c + d + e + f + g + h;
    }
    int main() {
      int keep1 = 101; int keep2 = 202; int keep3 = 303;
      int r = churn(5);
      print(keep1); print(keep2); print(keep3); print(r);
      return 0;
    }
  )");
  Machine VM(MM);
  ASSERT_EQ(VM.run(), StopReason::Exited);
  EXPECT_EQ(VM.outputText(), "101\n202\n303\n68\n");
}

TEST(VMExec, MarkersAreFreeAtRuntime) {
  // Dead markers occupy addresses but execute as zero-cost no-ops and
  // are excluded from the dynamic instruction count.
  const char *Src = R"(
    int main() {
      int dead1 = 1;
      int dead2 = 2;
      int live = 42;
      print(live);
      return 0;
    }
  )";
  MachineModule MM = build(Src, /*Optimize=*/true);
  unsigned Markers = 0;
  for (const MachineBlock &B : MM.Funcs[0].Blocks)
    for (const MInstr &I : B.Insts)
      Markers += I.Op == MOp::MDEAD;
  EXPECT_GE(Markers, 2u);
  Machine VM(MM);
  ASSERT_EQ(VM.run(), StopReason::Exited);
  // Count executed real instructions by hand: everything except markers.
  std::uint64_t Real = 0;
  for (const MachineBlock &B : MM.Funcs[0].Blocks)
    for (const MInstr &I : B.Insts)
      Real += !I.isMarker();
  EXPECT_EQ(VM.instrCount(), Real); // Straight-line main.
}

TEST(VMExec, MemoryInspection) {
  MachineModule MM = build(R"(
    int table[4];
    int main() {
      table[0] = 11; table[1] = 22; table[2] = 33; table[3] = 44;
      return 0;
    }
  )",
                           false);
  Machine VM(MM);
  ASSERT_EQ(VM.run(), StopReason::Exited);
  std::size_t Base = MM.GlobalAddr.at(MM.Info->Globals[0]);
  EXPECT_EQ(VM.readMemInt(Base + 0), 11);
  EXPECT_EQ(VM.readMemInt(Base + 3), 44);
}

TEST(VMExec, TrapOnBadPointer) {
  MachineModule MM2 = build(R"(
    int main() {
      int x = 5;
      int* p = &x;
      p = p + 100000000;    // way outside memory
      return *p;
    }
  )",
                           false);
  Machine VM(MM2);
  EXPECT_EQ(VM.run(), StopReason::Trapped);
}

TEST(VMExec, RerunIsDeterministic) {
  MachineModule MM = build(R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 10; i = i + 1) s = s + i * i;
      print(s);
      return s;
    }
  )");
  Machine VM(MM);
  ASSERT_EQ(VM.run(), StopReason::Exited);
  std::string Out1 = VM.outputText();
  std::int64_t Exit1 = VM.exitValue();
  ASSERT_EQ(VM.run(), StopReason::Exited); // Full reset + rerun.
  EXPECT_EQ(VM.outputText(), Out1);
  EXPECT_EQ(VM.exitValue(), Exit1);
}
