//===- tests/frontend_test.cpp - Lexer/Parser/Sema tests -------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "frontend/Sema.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace sldb;

namespace {

std::vector<Token> lex(std::string_view Src) {
  DiagnosticEngine Diags;
  Lexer L(Src, Diags);
  auto Toks = L.lexAll();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return Toks;
}

FrontendResult check(std::string_view Src) {
  DiagnosticEngine Diags;
  FrontendResult FR = runFrontend(Src, Diags);
  EXPECT_TRUE(FR.TU != nullptr) << Diags.str();
  EXPECT_TRUE(FR.Info != nullptr) << Diags.str();
  return FR;
}

std::string checkError(std::string_view Src) {
  DiagnosticEngine Diags;
  FrontendResult FR = runFrontend(Src, Diags);
  EXPECT_TRUE(FR.Info == nullptr);
  EXPECT_TRUE(Diags.hasErrors());
  return Diags.str();
}

} // namespace

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(Lexer, Keywords) {
  auto T = lex("int double void if else while do for return break continue");
  ASSERT_EQ(T.size(), 12u);
  EXPECT_EQ(T[0].Kind, TokKind::KwInt);
  EXPECT_EQ(T[1].Kind, TokKind::KwDouble);
  EXPECT_EQ(T[2].Kind, TokKind::KwVoid);
  EXPECT_EQ(T[3].Kind, TokKind::KwIf);
  EXPECT_EQ(T[4].Kind, TokKind::KwElse);
  EXPECT_EQ(T[5].Kind, TokKind::KwWhile);
  EXPECT_EQ(T[6].Kind, TokKind::KwDo);
  EXPECT_EQ(T[7].Kind, TokKind::KwFor);
  EXPECT_EQ(T[8].Kind, TokKind::KwReturn);
  EXPECT_EQ(T[9].Kind, TokKind::KwBreak);
  EXPECT_EQ(T[10].Kind, TokKind::KwContinue);
  EXPECT_EQ(T[11].Kind, TokKind::Eof);
}

TEST(Lexer, NumbersAndIdentifiers) {
  auto T = lex("x12 42 3.5 1e3 7.25e-2 _y");
  EXPECT_EQ(T[0].Kind, TokKind::Identifier);
  EXPECT_EQ(T[0].Text, "x12");
  EXPECT_EQ(T[1].Kind, TokKind::IntLiteral);
  EXPECT_EQ(T[1].IntVal, 42);
  EXPECT_EQ(T[2].Kind, TokKind::DoubleLiteral);
  EXPECT_DOUBLE_EQ(T[2].DoubleVal, 3.5);
  EXPECT_EQ(T[3].Kind, TokKind::DoubleLiteral);
  EXPECT_DOUBLE_EQ(T[3].DoubleVal, 1000.0);
  EXPECT_EQ(T[4].Kind, TokKind::DoubleLiteral);
  EXPECT_DOUBLE_EQ(T[4].DoubleVal, 0.0725);
  EXPECT_EQ(T[5].Kind, TokKind::Identifier);
  EXPECT_EQ(T[5].Text, "_y");
}

TEST(Lexer, OperatorsMaximalMunch) {
  auto T = lex("+ += ++ - -= -- << <= < >> >= > == = != ! && & || |");
  TokKind Expected[] = {
      TokKind::Plus,      TokKind::PlusAssign, TokKind::PlusPlus,
      TokKind::Minus,     TokKind::MinusAssign, TokKind::MinusMinus,
      TokKind::Shl,       TokKind::LessEq,     TokKind::Less,
      TokKind::Shr,       TokKind::GreaterEq,  TokKind::Greater,
      TokKind::EqEq,      TokKind::Assign,     TokKind::BangEq,
      TokKind::Bang,      TokKind::AmpAmp,     TokKind::Amp,
      TokKind::PipePipe,  TokKind::Pipe,       TokKind::Eof};
  ASSERT_EQ(T.size(), std::size(Expected));
  for (std::size_t I = 0; I < T.size(); ++I)
    EXPECT_EQ(T[I].Kind, Expected[I]) << I;
}

TEST(Lexer, CommentsAndLocations) {
  auto T = lex("a // line comment\n/* block\ncomment */ b");
  ASSERT_EQ(T.size(), 3u);
  EXPECT_EQ(T[0].Text, "a");
  EXPECT_EQ(T[1].Text, "b");
  EXPECT_EQ(T[0].Loc.Line, 1u);
  EXPECT_EQ(T[1].Loc.Line, 3u);
}

TEST(Lexer, ErrorOnBadChar) {
  DiagnosticEngine Diags;
  Lexer L("int $", Diags);
  L.lexAll();
  EXPECT_TRUE(Diags.hasErrors());
}

//===----------------------------------------------------------------------===//
// Parser + Sema
//===----------------------------------------------------------------------===//

TEST(Frontend, MinimalProgram) {
  auto FR = check("int main() { return 0; }");
  ASSERT_EQ(FR.TU->Functions.size(), 1u);
  EXPECT_EQ(FR.Info->Funcs[0].Name, "main");
  EXPECT_EQ(FR.Info->Funcs[0].Stmts.size(), 1u);
}

TEST(Frontend, StatementIdsAreDense) {
  auto FR = check(R"(
    int main() {
      int x = 1;
      int y = 2;
      if (x < y) { x = y; } else { y = x; }
      while (x > 0) { x = x - 1; }
      return y;
    }
  )");
  const FuncInfo &FI = FR.Info->Funcs[0];
  // x=1, y=2, if, x=y, y=x, while, x=x-1, return  => 8 statements.
  EXPECT_EQ(FI.Stmts.size(), 8u);
}

TEST(Frontend, ScopeSnapshotPerStatement) {
  auto FR = check(R"(
    int main() {
      int a = 1;
      {
        int b = 2;
        a = b;
      }
      a = 3;
      return a;
    }
  )");
  const FuncInfo &FI = FR.Info->Funcs[0];
  ASSERT_EQ(FI.Stmts.size(), 5u);
  EXPECT_EQ(FI.Stmts[0].ScopeVars.size(), 1u); // a (its own decl).
  EXPECT_EQ(FI.Stmts[1].ScopeVars.size(), 2u); // a, b.
  EXPECT_EQ(FI.Stmts[2].ScopeVars.size(), 2u); // a = b.
  EXPECT_EQ(FI.Stmts[3].ScopeVars.size(), 1u); // b out of scope.
  EXPECT_EQ(FI.Stmts[4].ScopeVars.size(), 1u);
}

TEST(Frontend, ParamsAreInScope) {
  auto FR = check("int f(int a, double b) { return a; }");
  const FuncInfo &FI = FR.Info->Funcs[0];
  EXPECT_EQ(FI.Params.size(), 2u);
  ASSERT_EQ(FI.Stmts.size(), 1u);
  EXPECT_EQ(FI.Stmts[0].ScopeVars.size(), 2u);
}

TEST(Frontend, AddressTakenMarksVariable) {
  auto FR = check(R"(
    int main() {
      int x = 0;
      int* p = &x;
      *p = 5;
      return x;
    }
  )");
  bool FoundX = false;
  for (const VarInfo &VI : FR.Info->Vars)
    if (VI.Name == "x") {
      FoundX = true;
      EXPECT_TRUE(VI.AddressTaken);
      EXPECT_FALSE(VI.isPromotable());
    }
  EXPECT_TRUE(FoundX);
}

TEST(Frontend, ArrayDecaysToPointer) {
  auto FR = check(R"(
    int main() {
      int a[10];
      int* p = a;
      a[3] = 7;
      return p[3];
    }
  )");
  for (const VarInfo &VI : FR.Info->Vars)
    if (VI.Name == "a") {
      EXPECT_EQ(VI.ArraySize, 10u);
      EXPECT_FALSE(VI.isPromotable());
    }
}

TEST(Frontend, ImplicitConversions) {
  auto FR = check(R"(
    double f(double x) { return x; }
    int main() {
      double d = 1;       // int -> double
      int i = 2.5;        // double -> int
      d = f(3);           // arg conversion
      i = d + 1;          // result conversion
      return i;
    }
  )");
  (void)FR;
}

TEST(Frontend, ForLoopIncGetsOwnStmtId) {
  auto FR = check(R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 10; i = i + 1) { s = s + i; }
      return s;
    }
  )");
  const auto &FI = FR.Info->Funcs[0];
  // s=0, i=0 (decl), for, s=s+i, i=i+1 (inc), return => 6.
  EXPECT_EQ(FI.Stmts.size(), 6u);
}

TEST(Frontend, GlobalsTracked) {
  auto FR = check(R"(
    int g = 5;
    int table[16];
    int main() { return g; }
  )");
  EXPECT_EQ(FR.Info->Globals.size(), 2u);
  EXPECT_EQ(FR.Info->var(FR.Info->Globals[0]).Storage, StorageKind::Global);
}

//===----------------------------------------------------------------------===//
// Sema errors
//===----------------------------------------------------------------------===//

TEST(SemaErrors, UndeclaredVariable) {
  auto Msg = checkError("int main() { return missing; }");
  EXPECT_NE(Msg.find("undeclared"), std::string::npos);
}

TEST(SemaErrors, Redefinition) {
  auto Msg = checkError("int main() { int x = 1; int x = 2; return x; }");
  EXPECT_NE(Msg.find("redefinition"), std::string::npos);
}

TEST(SemaErrors, BreakOutsideLoop) {
  auto Msg = checkError("int main() { break; return 0; }");
  EXPECT_NE(Msg.find("break"), std::string::npos);
}

TEST(SemaErrors, WrongArgCount) {
  auto Msg = checkError(R"(
    int f(int a) { return a; }
    int main() { return f(1, 2); }
  )");
  EXPECT_NE(Msg.find("wrong number of arguments"), std::string::npos);
}

TEST(SemaErrors, AssignToRValue) {
  auto Msg = checkError("int main() { 3 = 4; return 0; }");
  EXPECT_NE(Msg.find("lvalue"), std::string::npos);
}

TEST(SemaErrors, DerefNonPointer) {
  auto Msg = checkError("int main() { int x = 1; return *x; }");
  EXPECT_NE(Msg.find("dereference"), std::string::npos);
}

TEST(SemaErrors, VoidReturnWithValue) {
  auto Msg = checkError("void f() { return 3; } int main() { return 0; }");
  EXPECT_NE(Msg.find("void function"), std::string::npos);
}

TEST(SemaErrors, CallUndeclaredFunction) {
  auto Msg = checkError("int main() { return nosuch(1); }");
  EXPECT_NE(Msg.find("undeclared function"), std::string::npos);
}
