//===- tests/eval_test.cpp - Benchmark programs + harness ------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "eval/Measure.h"
#include "ir/IRGen.h"
#include "ir/Interp.h"
#include "opt/Pass.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace sldb;

namespace {

class BenchProgramTest
    : public ::testing::TestWithParam<std::size_t> {};

} // namespace

TEST(BenchPrograms, EightProgramsInTableOrder) {
  const auto &Ps = benchmarkPrograms();
  ASSERT_EQ(Ps.size(), 8u);
  const char *Expected[] = {"li",     "eqntott",  "espresso", "gcc",
                            "alvinn", "compress", "ear",      "sc"};
  for (std::size_t I = 0; I < 8; ++I)
    EXPECT_STREQ(Ps[I].Name, Expected[I]);
}

TEST_P(BenchProgramTest, CompilesAndRuns) {
  const BenchProgram &P = benchmarkPrograms()[GetParam()];
  DiagnosticEngine Diags;
  auto M = compileToIR(P.Source, Diags);
  ASSERT_TRUE(M != nullptr) << P.Name << ": " << Diags.str();
  ExecResult R = interpretIR(*M);
  EXPECT_FALSE(R.Trapped) << P.Name << ": " << R.TrapMsg;
  EXPECT_FALSE(R.Output.empty()) << P.Name;
}

TEST_P(BenchProgramTest, OptimizationPreservesBehavior) {
  const BenchProgram &P = benchmarkPrograms()[GetParam()];
  CodeQuality Q = measureCodeQuality(P);
  EXPECT_TRUE(Q.OutputsMatch) << P.Name;
  EXPECT_LT(Q.InstrOptimized, Q.InstrUnoptimized)
      << P.Name << ": optimization must reduce dynamic instructions";
}

TEST_P(BenchProgramTest, SourceStatsSane) {
  const BenchProgram &P = benchmarkPrograms()[GetParam()];
  SourceStats S = sourceStats(P);
  EXPECT_GT(S.LinesOfCode, 40u) << P.Name;
  EXPECT_GE(S.Functions, 1u);
  EXPECT_GT(S.Breakpoints, 20u);
  EXPECT_GT(S.VarsPerBreakpoint, 0.5) << P.Name;
}

TEST_P(BenchProgramTest, ClassificationAveragesSane) {
  const BenchProgram &P = benchmarkPrograms()[GetParam()];
  // Figure 5(a) configuration: global optimizations, no register
  // allocation of user variables.
  ClassAverages A =
      measureClassification(P, OptOptions::all(), /*Promote=*/false);
  EXPECT_GT(A.Breakpoints, 0u);
  // Without promotion every initialized variable is memory-resident.
  EXPECT_EQ(A.Nonresident, 0.0) << P.Name;
  EXPECT_GT(A.Current, 0.0) << P.Name;

  // Figure 5(b): with register allocation.
  ClassAverages B =
      measureClassification(P, OptOptions::all(), /*Promote=*/true);
  EXPECT_GT(B.Current + B.Nonresident + B.Uninitialized + B.endangered(),
            0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllPrograms, BenchProgramTest, ::testing::Range<std::size_t>(0, 8),
    [](const ::testing::TestParamInfo<std::size_t> &Info) {
      return std::string(benchmarkPrograms()[Info.param].Name);
    });

TEST(MeasureParallel, CorpusMeasurementMatchesSerial) {
  // The pooled corpus sweep must be bit-identical to the serial
  // per-program harness: each program's measurement is thread-confined,
  // so only scheduling differs.
  const auto &Ps = benchmarkPrograms();
  std::vector<ClassAverages> Par =
      measureClassificationAll(Ps, OptOptions::all(), /*Promote=*/true,
                               /*EnableRecovery=*/true, /*Jobs=*/3);
  ASSERT_EQ(Par.size(), Ps.size());
  for (std::size_t I = 0; I < Ps.size(); ++I) {
    ClassAverages Ser =
        measureClassification(Ps[I], OptOptions::all(), true);
    EXPECT_EQ(Par[I].Breakpoints, Ser.Breakpoints) << Ps[I].Name;
    EXPECT_EQ(Par[I].Uninitialized, Ser.Uninitialized) << Ps[I].Name;
    EXPECT_EQ(Par[I].Current, Ser.Current) << Ps[I].Name;
    EXPECT_EQ(Par[I].Recovered, Ser.Recovered) << Ps[I].Name;
    EXPECT_EQ(Par[I].Noncurrent, Ser.Noncurrent) << Ps[I].Name;
    EXPECT_EQ(Par[I].Suspect, Ser.Suspect) << Ps[I].Name;
    EXPECT_EQ(Par[I].Nonresident, Ser.Nonresident) << Ps[I].Name;
  }
}

TEST(Coverage, GoldenThreeLevelReport) {
  // Debuggability coverage: integer (breakpoint, variable) class counts
  // over the eval corpus at three configurations — unoptimized (O0),
  // optimized without register promotion (Figure 5(a)), and fully
  // optimized (Figure 5(b)).  The rendered report is golden so any
  // change to how much of the corpus stays Current/Recoverable vs
  // endangered is a visible, deliberate diff.
  const auto &Ps = benchmarkPrograms();
  std::vector<CoverageCounts> Rows = {
      measureCoverage(Ps, levelSpec(PipelineLevel::O0)),
      measureCoverage(Ps, levelSpec(PipelineLevel::O2Frame)),
      measureCoverage(Ps, levelSpec(PipelineLevel::O2)),
  };
  // Structural sanity before the byte diff: every level classifies the
  // same set of source points or fewer (optimization can only remove
  // code locations), and O0 endangers nothing.
  EXPECT_EQ(Rows[0].endangered(), 0u)
      << "unoptimized code must have no endangered variables";
  EXPECT_GT(Rows[1].endangered() + Rows[1].Nonresident, 0u)
      << "optimization endangered nothing: corpus lost its point";

  std::string Got = renderCoverageReport(Rows);
  const char *Update = std::getenv("SLDB_UPDATE_GOLDENS");
  std::string Path = std::string(SLDB_GOLDEN_DIR) + "/coverage.txt";
  if (Update && *Update && std::string(Update) != "0") {
    std::ofstream Out(Path, std::ios::binary);
    ASSERT_TRUE(Out) << "cannot write " << Path;
    Out << Got;
    return;
  }
  std::ifstream In(Path);
  ASSERT_TRUE(In) << "missing golden " << Path
                  << " (regenerate with SLDB_UPDATE_GOLDENS=1)";
  std::stringstream Buf;
  Buf << In.rdbuf();
  EXPECT_EQ(Got, Buf.str())
      << "coverage report changed; regenerate tests/golden/coverage.txt "
         "deliberately if the optimizer/classifier change is intended";
}
