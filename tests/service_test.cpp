//===- tests/service_test.cpp - Classification-service tests ---*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The service robustness envelope, in-process through ServiceCore (no
/// transport): protocol parsing/rendering, batch splitting, admission
/// control and shedding, arena/session budgets, fuel deadlines,
/// fault-containment quarantine, the graceful-interrupt flag, and the
/// headline determinism contract — a fixed 500-request stream answered
/// byte-identically at --jobs 1/4/8 and under session-interleave
/// shuffles — plus one end-to-end `sldbd --replay` CLI smoke.
///
//===----------------------------------------------------------------------===//

#include "fuzz/QueryGen.h"
#include "service/Protocol.h"
#include "service/ServiceCore.h"
#include "support/FaultInjector.h"
#include "support/Interrupt.h"
#include "support/Percentiles.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

using namespace sldb;

namespace {

/// Runs a whole stream through one core, concatenating all responses.
std::string runStream(ServiceCore &Core, const QueryStream &Stream) {
  std::string Out;
  for (const auto &Batch : Stream.Batches)
    for (const std::string &R : Core.processBatch(Batch)) {
      Out += R;
      Out += '\n';
    }
  return Out;
}

/// One-batch convenience.
std::vector<std::string> run(ServiceCore &Core,
                             std::vector<std::string> Lines) {
  return Core.processBatch(Lines);
}

} // namespace

//===----------------------------------------------------------------------===//
// Protocol
//===----------------------------------------------------------------------===//

TEST(Protocol, ParsesVerbAndSession) {
  Request R = parseRequest("@s1 classify m f 3 x");
  EXPECT_EQ(R.V, Verb::Classify);
  EXPECT_EQ(R.Session, "s1");
  ASSERT_EQ(R.Args.size(), 4u);
  EXPECT_EQ(R.Args[0], "m");
  EXPECT_EQ(R.Args[3], "x");

  R = parseRequest("health");
  EXPECT_EQ(R.V, Verb::Health);
  EXPECT_TRUE(R.Session.empty());
  EXPECT_TRUE(R.Args.empty());
}

TEST(Protocol, UnknownVerbAndArityAreInvalid) {
  Request R = parseRequest("frobnicate m");
  EXPECT_EQ(R.V, Verb::Invalid);
  EXPECT_FALSE(R.Error.empty());

  // Too few operands for classify.
  R = parseRequest("classify m f");
  EXPECT_EQ(R.V, Verb::Invalid);
  EXPECT_FALSE(R.Error.empty());

  // A bare @session with no verb.
  R = parseRequest("@s1");
  EXPECT_EQ(R.V, Verb::Invalid);
}

TEST(Protocol, AdmissionAndBarrierClasses) {
  EXPECT_TRUE(parseRequest("health").bypassesAdmission());
  EXPECT_TRUE(parseRequest("stats").bypassesAdmission());
  EXPECT_TRUE(parseRequest("shutdown").bypassesAdmission());
  EXPECT_FALSE(parseRequest("step m 3").bypassesAdmission());
  EXPECT_TRUE(parseRequest("load m seed:1").isBarrier());
  EXPECT_TRUE(parseRequest("shutdown").isBarrier());
  EXPECT_FALSE(parseRequest("classify m f 0 x").isBarrier());
}

TEST(Protocol, RenderersEchoSession) {
  EXPECT_EQ(renderOk("", "done"), "ok done");
  EXPECT_EQ(renderOk("s2", "done"), "@s2 ok done");
  EXPECT_EQ(renderErr("s2", ErrorCode::InvalidRequest, "nope"),
            "@s2 err invalid-request nope");
  EXPECT_EQ(renderShed("s1", 50), "@s1 shed retry-after-ms=50");
  EXPECT_EQ(renderShed("", 10), "shed retry-after-ms=10");
}

TEST(Protocol, SplitBatches) {
  auto B = splitBatches("a\nb\n\nc\r\n\n\n\nd\ne");
  ASSERT_EQ(B.size(), 3u);
  EXPECT_EQ(B[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(B[1], (std::vector<std::string>{"c"}));
  // Trailing unterminated batch is kept.
  EXPECT_EQ(B[2], (std::vector<std::string>{"d", "e"}));
  EXPECT_TRUE(splitBatches("").empty());
  EXPECT_TRUE(splitBatches("\n\n\n").empty());
}

//===----------------------------------------------------------------------===//
// ServiceCore basics
//===----------------------------------------------------------------------===//

TEST(Service, LoadAndQuery) {
  ServiceCore Core(ServiceLimits(), 1);
  auto R = run(Core, {"@s1 load m seed:1"});
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R[0].rfind("@s1 ok loaded m ", 0), 0u) << R[0];
  EXPECT_NE(R[0].find("quarantined=0"), std::string::npos) << R[0];
  EXPECT_EQ(Core.numModules(), 1u);
  EXPECT_EQ(Core.numQuarantined(), 0u);

  // classify-all at statement 0 of main answers with a variable list.
  R = run(Core, {"@s1 classify-all m main 0"});
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R[0].rfind("@s1 ok n=", 0), 0u) << R[0];

  // Unknown entities are invalid-request, not crashes.
  R = run(Core, {"classify nosuch main 0 x", "classify m nosuch 0 x",
                 "classify m main 99999 x", "bogus-verb"});
  ASSERT_EQ(R.size(), 4u);
  for (const std::string &Line : R)
    EXPECT_EQ(Line.rfind("err invalid-request ", 0), 0u) << Line;
}

TEST(Service, DuplicateLoadAndModuleCap) {
  ServiceLimits L;
  L.MaxModules = 2;
  ServiceCore Core(L, 1);
  auto R = run(Core, {"load a seed:1"});
  EXPECT_EQ(R[0].rfind("ok loaded", 0), 0u);
  R = run(Core, {"load a seed:2"});
  EXPECT_EQ(R[0].rfind("err invalid-request ", 0), 0u) << R[0];
  R = run(Core, {"load b seed:2"});
  EXPECT_EQ(R[0].rfind("ok loaded", 0), 0u);
  // Registry is full: structured refusal.
  R = run(Core, {"load c seed:3"});
  EXPECT_EQ(R[0].rfind("err resource-exhausted ", 0), 0u) << R[0];
  EXPECT_EQ(Core.numModules(), 2u);
}

TEST(Service, UnknownLevelIsStructuredNotQuarantined) {
  ServiceCore Core(ServiceLimits(), 1);

  // A load naming a future/misspelled pipeline level is refused with a
  // structured err unknown-level before anything compiles: no module
  // registered, nothing quarantined, the name stays free.
  auto R = run(Core, {"@s1 load m seed:1 O9-hyperssa"});
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R[0].rfind("@s1 err unknown-level ", 0), 0u) << R[0];
  EXPECT_NE(R[0].find("O9-hyperssa"), std::string::npos) << R[0];
  EXPECT_EQ(Core.numModules(), 0u);
  EXPECT_EQ(Core.numQuarantined(), 0u);

  // The service is healthy afterwards: the same name loads at a real
  // SSA-tier level and serves queries.
  R = run(Core, {"@s1 load m seed:1 O2nl-ssa"});
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R[0].rfind("@s1 ok loaded m ", 0), 0u) << R[0];
  R = run(Core, {"@s1 classify-all m main 0"});
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R[0].rfind("@s1 ok n=", 0), 0u) << R[0];

  // Frame-resident single-pass levels load too.
  R = run(Core, {"load f seed:2 ssa"});
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R[0].rfind("ok loaded f ", 0), 0u) << R[0];

  // Arity guard: a fourth operand is still a parse error.
  Request Req = parseRequest("load m seed:1 O2 extra");
  EXPECT_EQ(Req.V, Verb::Invalid);
}

TEST(Service, HealthAndStatsShape) {
  ServiceCore Core(ServiceLimits(), 1);
  run(Core, {"load m seed:1"});
  auto R = run(Core, {"health", "stats"});
  ASSERT_EQ(R.size(), 2u);
  EXPECT_NE(R[0].find("modules=1"), std::string::npos) << R[0];
  EXPECT_NE(R[0].find("quarantined=0"), std::string::npos) << R[0];
  EXPECT_NE(R[1].find("unsound=0"), std::string::npos) << R[1];
  EXPECT_NE(R[1].find("requests="), std::string::npos) << R[1];
}

TEST(Service, ShutdownLatches) {
  ServiceCore Core(ServiceLimits(), 1);
  EXPECT_FALSE(Core.shutdownRequested());
  auto R = run(Core, {"shutdown"});
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R[0].rfind("ok ", 0), 0u);
  EXPECT_TRUE(Core.shutdownRequested());
}

//===----------------------------------------------------------------------===//
// Robustness envelope
//===----------------------------------------------------------------------===//

TEST(Service, LoadArenaBudgetIsStructured) {
  ServiceLimits L;
  L.LoadArenaBytes = 4096; // No module compiles into 4 KB.
  ServiceCore Core(L, 1);
  auto R = run(Core, {"load m seed:1"});
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R[0].rfind("err resource-exhausted ", 0), 0u) << R[0];
  // The failed load left nothing behind.
  EXPECT_EQ(Core.numModules(), 0u);
}

TEST(Service, SessionBudgetCapsTotals) {
  ServiceLimits L;
  L.SessionArenaBytes = 1 << 20; // Roughly enough for a handful of loads.
  ServiceCore Core(L, 1);
  // Load until the session budget refuses; it must refuse eventually and
  // the refusal must be structured.
  bool Refused = false;
  for (int I = 0; I < 64 && !Refused; ++I) {
    auto R = run(Core, {"@s1 load m" + std::to_string(I) +
                        " seed:" + std::to_string(I + 1)});
    ASSERT_EQ(R.size(), 1u);
    if (R[0].find("err resource-exhausted") != std::string::npos)
      Refused = true;
    else
      EXPECT_NE(R[0].find("ok loaded"), std::string::npos) << R[0];
  }
  EXPECT_TRUE(Refused);
  // A different session still has budget.
  auto R = run(Core, {"@s2 load other seed:1"});
  EXPECT_NE(R[0].find("ok loaded"), std::string::npos) << R[0];
}

TEST(Service, FuelDeadlineIsResourceExhausted) {
  ServiceLimits L;
  L.RequestFuel = 50; // Far too little to finish any program.
  ServiceCore Core(L, 1);
  run(Core, {"load m seed:1"});
  auto R = run(Core, {"step m 10000"});
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R[0].rfind("err resource-exhausted ", 0), 0u) << R[0];
  // The module is NOT quarantined: a deadline is the envelope working,
  // not a fault in the module.
  EXPECT_EQ(Core.numQuarantined(), 0u);
  // And the core still answers afterwards.
  auto R2 = run(Core, {"classify-all m main 0"});
  EXPECT_EQ(R2[0].rfind("ok n=", 0), 0u) << R2[0];
}

TEST(Service, StepCapIsValidated) {
  ServiceLimits L;
  L.MaxStepsPerRequest = 10;
  ServiceCore Core(L, 1);
  run(Core, {"load m seed:1"});
  // Over the cap is a budget refusal (the request is well-formed; the
  // service declines the work), not a parse error.
  auto R = run(Core, {"step m 11"});
  EXPECT_EQ(R[0].rfind("err resource-exhausted ", 0), 0u) << R[0];
  R = run(Core, {"step m 5"});
  EXPECT_EQ(R[0].rfind("ok ", 0), 0u) << R[0];
}

TEST(Service, AdmissionShedsBeyondQueueDepth) {
  ServiceLimits L;
  L.QueueDepth = 2;
  L.RetryAfterMs = 7;
  ServiceCore Core(L, 1);
  run(Core, {"load m seed:1"});
  // Five queries + one bypass verb in one batch: exactly the first two
  // queries are admitted, health answers regardless.
  auto R = run(Core, {"classify-all m main 0", "classify-all m main 0",
                      "classify-all m main 0", "classify-all m main 0",
                      "@s9 classify-all m main 0", "health"});
  ASSERT_EQ(R.size(), 6u);
  EXPECT_EQ(R[0].rfind("ok n=", 0), 0u);
  EXPECT_EQ(R[1].rfind("ok n=", 0), 0u);
  EXPECT_EQ(R[2], "shed retry-after-ms=7");
  EXPECT_EQ(R[3], "shed retry-after-ms=7");
  EXPECT_EQ(R[4], "@s9 shed retry-after-ms=7");
  EXPECT_EQ(R[5].rfind("ok ", 0), 0u) << R[5];
}

//===----------------------------------------------------------------------===//
// Fault containment
//===----------------------------------------------------------------------===//

TEST(Service, FaultyLoadIsQuarantinedAndDegraded) {
  const FaultPoint *P = FaultInjector::findPoint("drop-dead-marker");
  ASSERT_NE(P, nullptr);
  ServiceCore Core(ServiceLimits(), 1);
  FaultInjector::arm(P->Id, 3);
  auto R = run(Core, {"load bad seed:3"});
  FaultInjector::disarm();
  ASSERT_EQ(R.size(), 1u);
  ASSERT_NE(R[0].find("quarantined=1"), std::string::npos) << R[0];
  EXPECT_EQ(Core.numQuarantined(), 1u);

  // Every answer from the quarantined module is conservatively
  // degraded: never Current, never Recoverable, and flagged.
  R = run(Core, {"classify-all bad main 0"});
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R[0].rfind("ok n=", 0), 0u) << R[0];
  EXPECT_NE(R[0].find("quarantined=1"), std::string::npos) << R[0];
  EXPECT_EQ(R[0].find("=current"), std::string::npos) << R[0];
  EXPECT_EQ(R[0].find(",rec"), std::string::npos) << R[0];

  // A pristine load alongside is unaffected (containment, not
  // contagion).
  R = run(Core, {"load good seed:3"});
  EXPECT_NE(R[0].find("quarantined=0"), std::string::npos) << R[0];
  EXPECT_EQ(Core.numQuarantined(), 1u);

  // The containment audit saw nothing unsound.
  R = run(Core, {"stats"});
  EXPECT_NE(R[0].find("unsound=0"), std::string::npos) << R[0];
  EXPECT_NE(R[0].find("quarantined=1"), std::string::npos) << R[0];
}

//===----------------------------------------------------------------------===//
// Determinism
//===----------------------------------------------------------------------===//

namespace {

QueryStream canonicalStream() {
  QueryStreamOptions QO;
  QO.Sessions = 4;
  QO.ModulesPerSession = 2;
  // 8 loads + 4x125 queries + stats/health sprinkled by the generator:
  // >= 500 requests total, the tentpole's canned-stream size.
  QO.QueriesPerSession = 125;
  QO.BaseSeed = 7;
  return generateQueryStream(QO);
}

} // namespace

TEST(Service, DeterministicAcrossJobs) {
  QueryStream Stream = canonicalStream();
  ASSERT_GE(Stream.numRequests(), 500u);
  std::string Baseline;
  for (unsigned Jobs : {1u, 4u, 8u}) {
    ServiceCore Core(ServiceLimits(), Jobs);
    std::string Out = runStream(Core, Stream);
    if (Baseline.empty())
      Baseline = Out;
    else
      EXPECT_EQ(Out, Baseline) << "responses diverged at jobs=" << Jobs;
  }
  EXPECT_NE(Baseline.find("ok"), std::string::npos);
}

TEST(Service, DeterministicUnderInterleaveShuffle) {
  // Sessions own disjoint modules, so any session-interleave must leave
  // every request's response unchanged.  Compare per-line: request ->
  // response maps across shuffles.
  std::map<std::string, std::string> Baseline;
  for (std::uint64_t Shuffle : {0ull, 11ull, 42ull}) {
    QueryStreamOptions QO;
    QO.Sessions = 3;
    QO.ModulesPerSession = 2;
    QO.QueriesPerSession = 50;
    QO.BaseSeed = 7;
    QO.ShuffleSeed = Shuffle;
    QueryStream Stream = generateQueryStream(QO);
    ServiceCore Core(ServiceLimits(), 4);
    for (const auto &Batch : Stream.Batches) {
      std::vector<std::string> Resp = Core.processBatch(Batch);
      ASSERT_EQ(Resp.size(), Batch.size());
      for (std::size_t I = 0; I < Batch.size(); ++I) {
        auto It = Baseline.find(Batch[I]);
        if (It == Baseline.end())
          Baseline.emplace(Batch[I], Resp[I]);
        else
          EXPECT_EQ(Resp[I], It->second)
              << "shuffle " << Shuffle << " changed the answer to: "
              << Batch[I];
      }
    }
  }
}

TEST(Service, QuarantineConvergesIdenticallyAcrossJobs) {
  // Same determinism bar with a defended fault armed during the loads:
  // which modules end up quarantined — and every degraded answer — must
  // not depend on the worker count.
  const FaultPoint *P = FaultInjector::findPoint("truncate-stmt-map");
  ASSERT_NE(P, nullptr);
  QueryStreamOptions QO;
  QO.Sessions = 3;
  QO.ModulesPerSession = 2;
  QO.QueriesPerSession = 60;
  QO.BaseSeed = 5;
  QueryStream Stream = generateQueryStream(QO);

  std::string Baseline;
  std::size_t QuarantinedAt1 = 0;
  for (unsigned Jobs : {1u, 4u, 8u}) {
    ServiceCore Core(ServiceLimits(), Jobs);
    FaultInjector::arm(P->Id, 9);
    std::string Out = runStream(Core, Stream);
    FaultInjector::disarm();
    if (Baseline.empty()) {
      Baseline = Out;
      QuarantinedAt1 = Core.numQuarantined();
      // The fault must actually bite for this test to mean anything.
      EXPECT_GT(QuarantinedAt1, 0u);
    } else {
      EXPECT_EQ(Out, Baseline) << "quarantine diverged at jobs=" << Jobs;
      EXPECT_EQ(Core.numQuarantined(), QuarantinedAt1);
    }
  }
}

//===----------------------------------------------------------------------===//
// Graceful interrupt
//===----------------------------------------------------------------------===//

// The load driver's latency summary (support/Percentiles.h).  The empty
// set is the regression of record: a stream where every request was shed
// completes with zero latency samples, and the old report computed
// percentiles over it — the line must degrade to n/a instead.
TEST(LoadReport, EmptyLatencySetSaysNa) {
  EXPECT_EQ(latencyReportLine({}), "latency-us n/a (no completed batches)");
}

TEST(LoadReport, PercentilesAreNearestRank) {
  // Single sample: every percentile is that sample.
  EXPECT_EQ(latencyReportLine({42}),
            "latency-us p50=42 p90=42 p99=42 max=42");

  // 1..100 (shuffled on input — the helper sorts): nearest-rank lands on
  // round values and max is the true maximum.
  std::vector<std::uint64_t> S;
  for (std::uint64_t V = 100; V >= 1; --V)
    S.push_back(V);
  EXPECT_EQ(latencyReportLine(S),
            "latency-us p50=51 p90=90 p99=99 max=100");

  std::vector<std::uint64_t> Sorted(S);
  std::sort(Sorted.begin(), Sorted.end());
  EXPECT_EQ(percentileOfSorted(Sorted, 0.0), 1u);
  EXPECT_EQ(percentileOfSorted(Sorted, 1.0), 100u);
}

TEST(Interrupt, FlagLifecycle) {
  clearInterruptForTesting();
  EXPECT_FALSE(interruptRequested());
  requestInterrupt();
  EXPECT_TRUE(interruptRequested());
  // Sticky until explicitly cleared.
  EXPECT_TRUE(interruptRequested());
  clearInterruptForTesting();
  EXPECT_FALSE(interruptRequested());
}

//===----------------------------------------------------------------------===//
// CLI smoke: sldbd --replay
//===----------------------------------------------------------------------===//

#ifdef SLDB_SLDBD_PATH
TEST(ServiceCLI, ReplaySmoke) {
  std::string Dir = ::testing::TempDir();
  std::string StreamPath = Dir + "/sldbd_replay_stream.txt";
  std::string OutPath = Dir + "/sldbd_replay_out.txt";
  {
    std::ofstream S(StreamPath);
    S << "@s1 load m seed:1\n\n"
      << "@s1 classify-all m main 0\nhealth\n\n"
      << "shutdown\n\n";
  }
  std::string Cmd = std::string(SLDB_SLDBD_PATH) + " --jobs 2 --replay " +
                    StreamPath + " > " + OutPath + " 2>/dev/null";
  int RC = std::system(Cmd.c_str());
  EXPECT_EQ(RC, 0);
  std::ifstream In(OutPath);
  std::stringstream SS;
  SS << In.rdbuf();
  std::string Out = SS.str();
  EXPECT_NE(Out.find("@s1 ok loaded m "), std::string::npos) << Out;
  EXPECT_NE(Out.find("@s1 ok n="), std::string::npos) << Out;
  EXPECT_NE(Out.find("ok modules=1"), std::string::npos) << Out;
  EXPECT_NE(Out.find("ok bye"), std::string::npos) << Out;
  std::remove(StreamPath.c_str());
  std::remove(OutPath.c_str());
}
#endif
