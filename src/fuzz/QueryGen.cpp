//===- fuzz/QueryGen.cpp --------------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "fuzz/QueryGen.h"

#include "codegen/ISel.h"
#include "fuzz/ProgramGen.h"
#include "ir/IRGen.h"
#include "opt/Pass.h"
#include "support/Diagnostics.h"
#include "support/FaultInjector.h"

#include <deque>

using namespace sldb;

namespace {

/// xorshift64* — the repo's standard deterministic stream PRNG.
struct Rng {
  std::uint64_t S;
  explicit Rng(std::uint64_t Seed) : S(Seed ? Seed : 0x9e3779b97f4a7c15ull) {}
  std::uint64_t next() {
    S ^= S >> 12;
    S ^= S << 25;
    S ^= S >> 27;
    return S * 0x2545f4914f6cdd1dull;
  }
  std::uint32_t below(std::uint32_t N) {
    return N ? static_cast<std::uint32_t>(next() % N) : 0;
  }
  bool pct(unsigned P) { return below(100) < P; }
};

/// The queryable shape of one compiled module.
struct ModuleShape {
  std::string Name;
  std::uint32_t Seed = 0;
  /// Per function: name plus the statements that still emit code, each
  /// with the variable names in scope there.
  struct FuncShape {
    std::string Name;
    std::vector<std::pair<StmtId, std::vector<std::string>>> Stmts;
  };
  std::vector<FuncShape> Funcs;
};

/// Compiles seed \p Seed pristine and extracts the query targets.
/// Returns false when the program does not compile (the stream then
/// still loads it — the daemon's error is part of the workload).
bool learnShape(std::uint32_t Seed, ModuleShape &Shape) {
  // The workload generator must stay pristine even when the caller
  // (soak harness) has a fault armed for the daemon under test.
  FaultInjector::suspend();
  Arena A(1 << 16);
  DiagnosticEngine Diags;
  std::unique_ptr<IRModule> IR =
      compileToIR(generateProgram(Seed, GenOptions()), Diags, &A);
  bool Ok = false;
  if (IR && runPipelineEx(*IR, OptOptions::all(), PipelineConfig()).ok()) {
    Expected<MachineModule> MME =
        compileToMachineE(*IR, CodegenOptions(), &A);
    if (MME) {
      const ProgramInfo &Info = *MME->Info;
      for (FuncId F = 0; F < MME->Funcs.size(); ++F) {
        const MachineFunction &MF = MME->Funcs[F];
        ModuleShape::FuncShape FS;
        FS.Name = MF.Name;
        const FuncInfo &FI = Info.func(F);
        for (StmtId S = 0; S < FI.Stmts.size(); ++S) {
          if (S >= MF.StmtAddr.size() || MF.StmtAddr[S] < 0)
            continue;
          std::vector<std::string> Names;
          for (VarId V : FI.Stmts[S].ScopeVars)
            Names.push_back(Info.var(V).Name);
          for (VarId G : Info.Globals)
            Names.push_back(Info.var(G).Name);
          FS.Stmts.emplace_back(S, std::move(Names));
        }
        if (!FS.Stmts.empty())
          Shape.Funcs.push_back(std::move(FS));
      }
      Ok = !Shape.Funcs.empty();
    }
  }
  FaultInjector::resume();
  return Ok;
}

std::string makeQuery(Rng &R, const std::string &Session,
                      const ModuleShape &M, const QueryStreamOptions &O) {
  std::string Tag = "@" + Session + " ";
  if (R.pct(O.InvalidPct)) {
    // Deliberately invalid, but *deterministically* answered: unknown
    // entities and malformed operands, never timing-dependent.
    switch (R.below(5)) {
    case 0:
      return Tag + "classify no-such-module main 0 v0";
    case 1:
      return Tag + "classify " + M.Name + " no_such_func 0 v0";
    case 2:
      return Tag + "classify " + M.Name + " " + M.Funcs[0].Name +
             " 9999 v0";
    case 3:
      return Tag + "frobnicate " + M.Name;
    default:
      return Tag + "step " + M.Name + " not-a-number";
    }
  }
  const ModuleShape::FuncShape &F = M.Funcs[R.below(
      static_cast<std::uint32_t>(M.Funcs.size()))];
  const auto &StmtEntry =
      F.Stmts[R.below(static_cast<std::uint32_t>(F.Stmts.size()))];
  if (R.pct(O.StepPct))
    return Tag + "step " + M.Name + " " +
           std::to_string(1 + R.below(O.StepCount));
  switch (R.below(3)) {
  case 0: {
    if (StmtEntry.second.empty())
      return Tag + "classify-all " + M.Name + " " + F.Name + " " +
             std::to_string(StmtEntry.first);
    const std::string &Var =
        StmtEntry.second[R.below(
            static_cast<std::uint32_t>(StmtEntry.second.size()))];
    return Tag + "classify " + M.Name + " " + F.Name + " " +
           std::to_string(StmtEntry.first) + " " + Var;
  }
  case 1:
    return Tag + "classify-all " + M.Name + " " + F.Name + " " +
           std::to_string(StmtEntry.first);
  default: {
    if (StmtEntry.second.empty())
      return Tag + "classify-all " + M.Name + " " + F.Name + " " +
             std::to_string(StmtEntry.first);
    const std::string &Var =
        StmtEntry.second[R.below(
            static_cast<std::uint32_t>(StmtEntry.second.size()))];
    return Tag + "explain " + M.Name + " " + F.Name + " " +
           std::to_string(StmtEntry.first) + " " + Var;
  }
  }
}

} // namespace

std::string QueryStream::text() const {
  std::string T;
  for (const auto &B : Batches) {
    for (const std::string &L : B) {
      T += L;
      T += '\n';
    }
    T += '\n';
  }
  return T;
}

QueryStream sldb::generateQueryStream(const QueryStreamOptions &O) {
  QueryStream Stream;

  // Learn every module's shape and build the leading load batch.
  // Sessions own disjoint modules, so any interleave of the per-session
  // query sequences leaves every response unchanged.
  std::vector<std::vector<ModuleShape>> PerSession(O.Sessions);
  std::vector<std::string> Loads;
  std::uint32_t Seed = O.BaseSeed;
  for (unsigned S = 0; S < O.Sessions; ++S) {
    for (unsigned M = 0; M < O.ModulesPerSession; ++M, ++Seed) {
      ModuleShape Shape;
      Shape.Seed = Seed;
      Shape.Name =
          O.NamePrefix + "s" + std::to_string(S) + "m" + std::to_string(M);
      std::string Session = O.NamePrefix + "s" + std::to_string(S);
      Loads.push_back("@" + Session + " load " + Shape.Name +
                      " seed:" + std::to_string(Seed));
      if (learnShape(Seed, Shape))
        PerSession[S].push_back(std::move(Shape));
    }
  }
  Stream.Batches.push_back(std::move(Loads));

  // Per-session query queues.
  std::vector<std::deque<std::string>> Queues(O.Sessions);
  for (unsigned S = 0; S < O.Sessions; ++S) {
    if (PerSession[S].empty())
      continue;
    Rng R(static_cast<std::uint64_t>(O.BaseSeed) * 1000003 + S);
    std::string Session = O.NamePrefix + "s" + std::to_string(S);
    for (unsigned Q = 0; Q < O.QueriesPerSession; ++Q) {
      const ModuleShape &M = PerSession[S][R.below(
          static_cast<std::uint32_t>(PerSession[S].size()))];
      Queues[S].push_back(makeQuery(R, Session, M, O));
    }
  }

  // Interleave: round-robin by default, seeded shuffle on request.
  // Per-session order is always preserved (a session is a serial
  // client); only the cross-session weave varies.
  std::vector<std::string> Flat;
  Rng Shuf(O.ShuffleSeed);
  while (true) {
    std::vector<unsigned> Alive;
    for (unsigned S = 0; S < O.Sessions; ++S)
      if (!Queues[S].empty())
        Alive.push_back(S);
    if (Alive.empty())
      break;
    unsigned Pick =
        O.ShuffleSeed
            ? Alive[Shuf.below(static_cast<std::uint32_t>(Alive.size()))]
            : Alive[Flat.size() % Alive.size()];
    Flat.push_back(std::move(Queues[Pick].front()));
    Queues[Pick].pop_front();
  }

  // Chunk into protocol batches.
  std::vector<std::string> Batch;
  for (std::string &L : Flat) {
    Batch.push_back(std::move(L));
    if (O.BatchLines && Batch.size() >= O.BatchLines) {
      Stream.Batches.push_back(std::move(Batch));
      Batch.clear();
    }
  }
  if (!Batch.empty())
    Stream.Batches.push_back(std::move(Batch));
  return Stream;
}
