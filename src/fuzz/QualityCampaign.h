//===- fuzz/QualityCampaign.h - Stepping & cross-level campaigns -*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two quality-oracle campaigns layered on the differential fuzzing
/// infrastructure (`sldb-fuzz --oracle=step|crosslevel`):
///
///  * Stepping campaign — every seed through the stepping/line-table
///    oracle (fuzz/StepOracle.h) in both promote modes, judging phantom
///    and vanished statement boundaries.
///
///  * Cross-level campaign — every seed swept across the whole pipeline
///    lattice (eval/CrossLevel.h), plus a lockstep ground-truth run at
///    every *judgeable* level.  The lockstep runs serve three purposes:
///    soundness at every level (not just the default heaviest pipeline),
///    dynamic judgment of the sweep's availability-regression candidates
///    (a candidate whose More level the oracle proves sound is
///    *explained*; one where the oracle finds the shown value wrong is
///    *unexplained* — the tier-1 failure), and the measured conservatism
///    rate per level (Measure.h ConservatismCounts).
///
/// Both runners follow Campaign.cpp's determinism contract: independent
/// units in index-keyed slots, merged in seed-major order — reports are
/// byte-identical for any --jobs value.
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_FUZZ_QUALITYCAMPAIGN_H
#define SLDB_FUZZ_QUALITYCAMPAIGN_H

#include "eval/CrossLevel.h"
#include "fuzz/Campaign.h"
#include "fuzz/StepOracle.h"

#include <string>
#include <vector>

namespace sldb {

//===----------------------------------------------------------------------===//
// Stepping campaign
//===----------------------------------------------------------------------===//

struct StepCampaignConfig {
  std::uint32_t Seed = 1; ///< First seed; program i uses Seed + i.
  unsigned Count = 200;
  GenOptions Gen;

  /// Run each program twice (promote / frame), as the diff campaign.
  bool BothPromoteModes = true;
  bool Promote = true; ///< Mode for single-mode campaigns.

  /// Non-empty: run at this named pipeline level (CampaignConfig::Level
  /// contract — must resolve and be judgeable, one mode, the level's
  /// own promotion).
  std::string Level;

  bool Shrink = true;
  bool WriteFailures = false;
  std::string FailureDir = "fuzz-failures";

  unsigned MaxEvents = 20000; ///< Per-build stop-event cap.
  std::uint64_t Fuel = 50'000'000;

  /// Pool / shard controls (Campaign.h determinism contract).
  unsigned Jobs = 1;
  unsigned ShardIndex = 0;
  unsigned ShardCount = 1;
};

struct StepCampaignResult {
  unsigned Programs = 0;
  unsigned Runs = 0;           ///< Stepping executions (<= 2x programs).
  unsigned FailedCompiles = 0; ///< Generator bugs: must stay zero.
  unsigned CappedRuns = 0;     ///< Runs exempted from the multiset checks.
  std::uint64_t StmtsChecked = 0; ///< Visit rows judged.
  std::vector<CampaignFailure> Failures;

  std::string ConfigError;
  unsigned SkippedUnits = 0; ///< As CampaignResult::SkippedUnits.
  std::vector<CampaignWorkerStats> Workers;

  bool sound() const {
    return Failures.empty() && FailedCompiles == 0 && ConfigError.empty();
  }
};

StepCampaignResult runStepCampaign(const StepCampaignConfig &C);

/// Judges one program's stepping in one mode (reproducer mode and the
/// shrinker's predicate).  \p Opts overrides the optimized build's pass
/// selection (level campaigns); null keeps the default lockstep set.
std::vector<Violation> checkStepProgram(const std::string &Src, bool Promote,
                                        unsigned MaxEvents = 20000,
                                        const OptOptions *Opts = nullptr);

/// Deterministic campaign summary (failures render via renderFailure).
std::string renderStepCampaignReport(const StepCampaignResult &R);

//===----------------------------------------------------------------------===//
// Cross-level campaign
//===----------------------------------------------------------------------===//

/// A sweep candidate with its dynamic verdict.
struct JudgedRegression {
  enum class Judgment : std::uint8_t {
    Explained,  ///< Lockstep proved the More level sound at this point.
    Unexplained,///< Lockstep found the More level unsound here: FAIL.
    Unjudged    ///< More level not judgeable (peel/unroll): static only.
  };
  AvailRegression R;
  Judgment J = Judgment::Unjudged;
};

const char *judgmentName(JudgedRegression::Judgment J);

struct CrossLevelCampaignConfig {
  std::uint32_t Seed = 1;
  unsigned Count = 200;
  GenOptions Gen;

  bool Shrink = true;
  bool WriteFailures = false;
  std::string FailureDir = "fuzz-failures";

  unsigned MaxStops = 1000; ///< Per-lockstep-run observation cap.
  std::uint64_t Fuel = 50'000'000;

  unsigned Jobs = 1;
  unsigned ShardIndex = 0;
  unsigned ShardCount = 1;
};

struct CrossLevelCampaignResult {
  unsigned Programs = 0;
  unsigned CompileErrors = 0; ///< Generator bugs: must stay zero.
  unsigned LockstepRuns = 0;  ///< Judgeable-level ground-truth runs.
  unsigned UnsoundRuns = 0;   ///< Runs with any soundness violation.
  unsigned Unexplained = 0;   ///< Regressions the oracle could not excuse.

  /// Per-level counts summed over the corpus (all levels / judgeable
  /// levels, both in pipelineLevels() order).
  std::vector<CoverageCounts> Levels;
  std::vector<ConservatismCounts> Conservatism;

  /// All candidates with judgments, in (seed, point) order.
  std::vector<JudgedRegression> Regressions;

  /// Unsound lockstep runs, shrunk/archived like diff-campaign failures.
  std::vector<CampaignFailure> Failures;

  std::string ConfigError;
  unsigned SkippedUnits = 0; ///< As CampaignResult::SkippedUnits.
  std::vector<CampaignWorkerStats> Workers;

  bool sound() const {
    return Unexplained == 0 && UnsoundRuns == 0 && CompileErrors == 0 &&
           ConfigError.empty();
  }
};

CrossLevelCampaignResult
runCrossLevelCampaign(const CrossLevelCampaignConfig &C);

/// Deterministic campaign report: the level quality table, the
/// conservatism table, and one judged line per regression candidate.
std::string
renderCrossLevelCampaignReport(const CrossLevelCampaignResult &R);

} // namespace sldb

#endif // SLDB_FUZZ_QUALITYCAMPAIGN_H
