//===- fuzz/Campaign.h - Differential fuzzing campaigns ---------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives whole fuzzing campaigns: generate N seeded programs, run each
/// through the lockstep oracle in both codegen configurations (variables
/// promoted to registers / kept in frame slots), judge every run with the
/// soundness checker, aggregate optimization coverage, and turn any
/// violation into a minimized on-disk reproducer.  Both `tools/sldb-fuzz`
/// and the tier-1 `fuzz_diff_test` are thin wrappers around this.
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_FUZZ_CAMPAIGN_H
#define SLDB_FUZZ_CAMPAIGN_H

#include "fuzz/DiffCheck.h"
#include "fuzz/ProgramGen.h"
#include "support/Trace.h"

#include <cstdint>
#include <string>
#include <vector>

namespace sldb {

/// Campaign parameters.
struct CampaignConfig {
  std::uint32_t Seed = 1;  ///< First seed; program i uses Seed + i.
  unsigned Count = 200;    ///< Number of generated programs.
  GenOptions Gen;

  /// Run each program twice: PromoteVars on (Figure 5(b)) and off
  /// (Figure 5(a)).  Off still exercises hoist/dead reach, on adds the
  /// residence tables.
  bool BothPromoteModes = true;

  /// Codegen configuration for single-mode campaigns (ignored when
  /// BothPromoteModes is set).
  bool Promote = true;

  /// Non-empty: run the whole campaign at this named pipeline level
  /// (eval/Levels.h) instead of the default lockstep set — one mode,
  /// with the level's own pass selection and promotion.  The name must
  /// resolve via findLevel() and the level must be judgeable(); the
  /// campaign refuses with a ConfigError otherwise.
  std::string Level;

  /// Shrink each failing program to a minimal reproducer (greedy
  /// statement deletion preserving the violation kind).
  bool Shrink = true;

  /// Write reproducers (source + violation report) into FailureDir.
  bool WriteFailures = false;
  std::string FailureDir = "fuzz-failures";

  unsigned MaxStops = 4000; ///< Per-run observation cap.

  /// Run every (seed, mode) check in a forked child under a wall-clock
  /// watchdog (fuzz/Isolation.h): a seed that crashes or hangs the
  /// compiler is recorded, reduced, and archived instead of killing the
  /// campaign.  Trades the in-process coverage accounting (stops /
  /// observations / pass firings) of passing runs for containment.
  bool Isolate = false;
  unsigned TimeoutMs = 20'000; ///< Watchdog budget per isolated run.

  /// Where crash/hang reproducers are archived (isolated mode, with
  /// WriteFailures).
  std::string CrashDir = "fuzz-crashes";

  /// Worker threads fanning the campaign's (seed, mode) units across a
  /// work-stealing pool (support/ThreadPool.h).  0 means all hardware
  /// cores.  The report is byte-identical for every value: unit results
  /// land in index-keyed slots and are merged in (seed, mode) order
  /// after the pool drains.  Isolated mode composes: each worker forks
  /// its own watchdogged child, so `--jobs N --isolate` is a pool of N
  /// concurrent children.
  unsigned Jobs = 1;

  /// Distributed campaigns (`--shard i/k`): run only the i-th of k
  /// contiguous slices of the seed range.  Concatenating the k shard
  /// reports in shard order reproduces the unsharded campaign.
  unsigned ShardIndex = 0;
  unsigned ShardCount = 1;

  /// Capture each unit's trace events (support/Trace.h) and merge them
  /// into CampaignResult::Trace in seed-major unit order with the unit
  /// ordinal as the tid — the merged event *sequence* is identical for
  /// every Jobs value (timestamps remain wall clock).  Only effective
  /// while Trace::enabled(); isolated (forked) units lose their events
  /// to the fork, like the coverage stats.
  bool CollectTrace = false;
};

/// One failing program.
struct CampaignFailure {
  std::uint32_t Seed = 0;
  bool Promote = true;
  std::string Source;  ///< Generated program.
  std::string Reduced; ///< Minimized reproducer (empty if not shrunk).
  std::vector<Violation> Violations;
  std::string Path;    ///< Written reproducer path (when writing).

  /// Process-level outcome ("crash (signal 11)", "timeout") for seeds
  /// caught by the isolation layer; empty for in-process soundness
  /// failures.
  std::string ProcessOutcome;

  /// Fault point armed for the run (inject campaigns; empty otherwise).
  std::string FaultName;

  /// Pipeline level of the run (cross-level campaigns; empty for the
  /// default lockstep configuration).
  std::string Level;
};

/// How much of the optimizer the corpus actually exercised.
struct CampaignCoverage {
  /// Programs whose optimized build contains machine-level evidence of
  /// each endangering transformation.
  unsigned WithHoisted = 0;    ///< IsHoisted instructions (PRE/LICM).
  unsigned WithSunk = 0;       ///< IsSunk instructions (PDE).
  unsigned WithDeadMarks = 0;  ///< MDEAD markers (DCE/PDE eliminations).
  unsigned WithAvailMarks = 0; ///< MAVAIL markers (PRE originals).
  unsigned WithSRRecords = 0;  ///< IV strength-reduction recoveries.

  /// Per-pipeline-slot firing counts summed over all programs (slot
  /// order and names follow the pipeline).
  std::vector<PassFiring> Firings;

  /// Total times a pass with the given name fired, across all slots.
  unsigned fired(const std::string &PassName) const;
};

/// Per-worker campaign statistics (diagnostic only — wall-clock based
/// and therefore nondeterministic; never part of the campaign report).
struct CampaignWorkerStats {
  unsigned Worker = 0;
  unsigned Units = 0;         ///< (seed, mode) / (seed, fault) checks run.
  unsigned Steals = 0;        ///< Units taken from a sibling's queue.
  unsigned InitialQueue = 0;  ///< Starting queue depth.
  std::uint64_t BusyUs = 0;
  std::uint32_t SlowestSeed = 0; ///< Seed of the slowest unit.
  std::uint64_t SlowestUs = 0;

  double unitsPerSec() const {
    return BusyUs ? 1e6 * static_cast<double>(Units) / BusyUs : 0.0;
  }
};

/// Aggregate campaign outcome.
struct CampaignResult {
  unsigned Programs = 0;      ///< Generated.
  unsigned Runs = 0;          ///< Lockstep executions (<= 2x programs).
  unsigned FailedCompiles = 0;///< Generator bugs: must stay zero.
  std::uint64_t Stops = 0;    ///< Paired statement-boundary stops.
  std::uint64_t Observations = 0; ///< Variable observations judged.
  std::vector<CampaignFailure> Failures;
  CampaignCoverage Coverage;

  /// Non-empty when the campaign refused to run (seed-range overflow,
  /// bad shard spec).  Nothing else in the result is meaningful then.
  std::string ConfigError;

  /// Units fast-drained because an interrupt (SIGINT/SIGTERM, see
  /// support/Interrupt.h) arrived mid-campaign.  Nonzero marks the
  /// report as *partial*: aggregates cover only the units that ran, and
  /// the driver still flushes every reproducer collected so far.
  unsigned SkippedUnits = 0;

  /// One entry per pool worker (diagnostic; see CampaignWorkerStats).
  std::vector<CampaignWorkerStats> Workers;

  /// Captured trace events in seed-major unit order (CollectTrace);
  /// tid = 1-based unit ordinal.
  std::vector<TraceEvent> Trace;

  bool sound() const {
    return Failures.empty() && FailedCompiles == 0 && ConfigError.empty();
  }
};

/// Runs a campaign.
CampaignResult runCampaign(const CampaignConfig &C);

/// Fault-injection campaign parameters (`sldb-fuzz --inject`): every
/// seed is checked once per *defended* FaultInjector point, with the
/// fault armed for the optimized build only (the oracle build compiles
/// with injection suspended).  The contract under injection is weaker
/// than the clean campaign's — conservative degradation, compile errors,
/// and behavioral divergence from an injected VM trap are all acceptable
/// — but process crashes, hangs, and the three *unsound* violation kinds
/// (UnsoundCurrent, WrongRecovery, MissedUninitialized) never are.
struct InjectCampaignConfig {
  std::uint32_t Seed = 1;
  unsigned Count = 200;
  GenOptions Gen;
  bool Promote = true;      ///< Codegen configuration for the runs.

  /// Non-empty: arm every fault under this named pipeline level instead
  /// of the default lockstep set (CampaignConfig::Level contract — must
  /// resolve and be judgeable, with the level's own promotion).
  std::string Level;
  unsigned MaxStops = 4000;
  std::uint64_t Fuel = 50'000'000;

  bool Isolate = true;      ///< Fork + watchdog per run (the default).
  unsigned TimeoutMs = 20'000;

  bool Shrink = true;       ///< Reduce unsound/crashing seeds.
  bool WriteFailures = false;
  std::string CrashDir = "fuzz-crashes";

  /// Pool / sharding controls, with the same determinism contract as
  /// CampaignConfig: units here are (seed, fault-point) pairs, merged
  /// in seed-major order.
  unsigned Jobs = 1;
  unsigned ShardIndex = 0;
  unsigned ShardCount = 1;

  /// As CampaignConfig::CollectTrace, over (seed, fault) units.
  bool CollectTrace = false;
};

/// Aggregate inject-campaign outcome.
struct InjectCampaignResult {
  unsigned Programs = 0;
  unsigned Runs = 0;           ///< seed x fault-point checks executed.
  unsigned CompileErrors = 0;  ///< Runs refused by the hardened pipeline.
  unsigned DegradedRuns = 0;   ///< Runs with only conservative findings.
  unsigned Crashes = 0;        ///< Child processes killed by a signal.
  unsigned Hangs = 0;          ///< Watchdog expirations.
  unsigned UnsoundRuns = 0;    ///< Runs with an unsound violation.
  std::vector<CampaignFailure> Failures; ///< Crash/hang/unsound records.

  std::string ConfigError;     ///< As CampaignResult::ConfigError.
  unsigned SkippedUnits = 0;   ///< As CampaignResult::SkippedUnits.
  std::vector<CampaignWorkerStats> Workers;

  /// As CampaignResult::Trace, in (seed, fault) unit order.
  std::vector<TraceEvent> Trace;

  /// The acceptance bar: no crash, no hang, no unsound verdict under
  /// any injected fault.
  bool sound() const {
    return Crashes == 0 && Hangs == 0 && UnsoundRuns == 0 &&
           ConfigError.empty();
  }
};

/// Runs the fault-injection campaign over all defended fault points.
InjectCampaignResult runInjectCampaign(const InjectCampaignConfig &C);

/// True for the violation kinds that remain failures under fault
/// injection (a conservative or divergent finding is the degradation
/// working as designed; these three are the debugger lying).
bool isUnsoundViolation(ViolationKind K);

/// Judges one program in one configuration (used by the reproducer mode
/// of sldb-fuzz and by the shrinker's predicate).  \p Opts overrides the
/// optimized build's pass selection (level campaigns); null keeps the
/// default lockstep set.
std::vector<Violation> checkProgram(const std::string &Src, bool Promote,
                                    unsigned MaxStops = 4000,
                                    const OptOptions *Opts = nullptr);

/// Renders a failure as the on-disk reproducer format: the violation
/// report as comments, then the (reduced, when available) source.
std::string renderFailure(const CampaignFailure &F);

} // namespace sldb

#endif // SLDB_FUZZ_CAMPAIGN_H
