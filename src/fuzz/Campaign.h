//===- fuzz/Campaign.h - Differential fuzzing campaigns ---------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives whole fuzzing campaigns: generate N seeded programs, run each
/// through the lockstep oracle in both codegen configurations (variables
/// promoted to registers / kept in frame slots), judge every run with the
/// soundness checker, aggregate optimization coverage, and turn any
/// violation into a minimized on-disk reproducer.  Both `tools/sldb-fuzz`
/// and the tier-1 `fuzz_diff_test` are thin wrappers around this.
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_FUZZ_CAMPAIGN_H
#define SLDB_FUZZ_CAMPAIGN_H

#include "fuzz/DiffCheck.h"
#include "fuzz/ProgramGen.h"

#include <cstdint>
#include <string>
#include <vector>

namespace sldb {

/// Campaign parameters.
struct CampaignConfig {
  std::uint32_t Seed = 1;  ///< First seed; program i uses Seed + i.
  unsigned Count = 200;    ///< Number of generated programs.
  GenOptions Gen;

  /// Run each program twice: PromoteVars on (Figure 5(b)) and off
  /// (Figure 5(a)).  Off still exercises hoist/dead reach, on adds the
  /// residence tables.
  bool BothPromoteModes = true;

  /// Codegen configuration for single-mode campaigns (ignored when
  /// BothPromoteModes is set).
  bool Promote = true;

  /// Shrink each failing program to a minimal reproducer (greedy
  /// statement deletion preserving the violation kind).
  bool Shrink = true;

  /// Write reproducers (source + violation report) into FailureDir.
  bool WriteFailures = false;
  std::string FailureDir = "fuzz-failures";

  unsigned MaxStops = 4000; ///< Per-run observation cap.
};

/// One failing program.
struct CampaignFailure {
  std::uint32_t Seed = 0;
  bool Promote = true;
  std::string Source;  ///< Generated program.
  std::string Reduced; ///< Minimized reproducer (empty if not shrunk).
  std::vector<Violation> Violations;
  std::string Path;    ///< Written reproducer path (when writing).
};

/// How much of the optimizer the corpus actually exercised.
struct CampaignCoverage {
  /// Programs whose optimized build contains machine-level evidence of
  /// each endangering transformation.
  unsigned WithHoisted = 0;    ///< IsHoisted instructions (PRE/LICM).
  unsigned WithSunk = 0;       ///< IsSunk instructions (PDE).
  unsigned WithDeadMarks = 0;  ///< MDEAD markers (DCE/PDE eliminations).
  unsigned WithAvailMarks = 0; ///< MAVAIL markers (PRE originals).
  unsigned WithSRRecords = 0;  ///< IV strength-reduction recoveries.

  /// Per-pipeline-slot firing counts summed over all programs (slot
  /// order and names follow the pipeline).
  std::vector<PassFiring> Firings;

  /// Total times a pass with the given name fired, across all slots.
  unsigned fired(const std::string &PassName) const;
};

/// Aggregate campaign outcome.
struct CampaignResult {
  unsigned Programs = 0;      ///< Generated.
  unsigned Runs = 0;          ///< Lockstep executions (<= 2x programs).
  unsigned FailedCompiles = 0;///< Generator bugs: must stay zero.
  std::uint64_t Stops = 0;    ///< Paired statement-boundary stops.
  std::uint64_t Observations = 0; ///< Variable observations judged.
  std::vector<CampaignFailure> Failures;
  CampaignCoverage Coverage;

  bool sound() const { return Failures.empty() && FailedCompiles == 0; }
};

/// Runs a campaign.
CampaignResult runCampaign(const CampaignConfig &C);

/// Judges one program in one configuration (used by the reproducer mode
/// of sldb-fuzz and by the shrinker's predicate).
std::vector<Violation> checkProgram(const std::string &Src, bool Promote,
                                    unsigned MaxStops = 4000);

/// Renders a failure as the on-disk reproducer format: the violation
/// report as comments, then the (reduced, when available) source.
std::string renderFailure(const CampaignFailure &F);

} // namespace sldb

#endif // SLDB_FUZZ_CAMPAIGN_H
