//===- fuzz/ProgramGen.h - Random MiniC program generator -------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded random generator of well-formed MiniC programs for the
/// differential-fuzzing oracle (the harness "Who's Debugging the
/// Debuggers?" built for production toolchains, specialized to this
/// compiler's optimizer).  The programs are shaped to exercise exactly the
/// transformations that endanger variables in the paper: redundant
/// assignments across joins (PRE hoisting), loop-invariant assignments
/// (LICM hoisting), partially dead assignments (PDE sinking), fully dead
/// assignments with recoverable right-hand sides (DCE + §2.5 recovery),
/// and multiplied induction variables (strength reduction + LFTR).
///
/// Generated programs terminate by construction (all loops count a
/// dedicated, otherwise-untouched counter), never divide by a non-constant
/// (no traps), and initialize locals unless deliberately testing the
/// uninitialized classification.  Generation is deterministic per seed.
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_FUZZ_PROGRAMGEN_H
#define SLDB_FUZZ_PROGRAMGEN_H

#include <cstdint>
#include <string>

namespace sldb {

/// Sampling weights for statement and operator choices.  The default is
/// uniform-ish; fromBenchmarks() derives the weights from the eight
/// SPEC92 stand-in programs of eval/Programs.cpp so that generated code
/// resembles the Table 2 workload shapes (loop-heavy, +/* dominated,
/// compare-driven control flow).
struct GenWeights {
  // Statement-kind weights.
  double Assign = 6.0;
  double If = 2.0;
  double For = 2.0;
  double While = 1.0;
  double Print = 1.0;
  double Call = 1.0;

  // Binary-operator weights (division/modulus are only emitted with
  // non-zero constant divisors).
  double Add = 4.0;
  double Sub = 3.0;
  double Mul = 2.0;
  double Div = 0.5;
  double Rem = 0.5;
  double Cmp = 2.0;

  static GenWeights uniform() { return GenWeights(); }

  /// Counts tokens across the benchmark sources of eval/Programs.cpp and
  /// turns the frequencies into weights.
  static const GenWeights &fromBenchmarks();
};

/// Tunables for one generated program.
struct GenOptions {
  GenWeights Weights = GenWeights::fromBenchmarks();
  unsigned NumVars = 6;       ///< Locals v0..v{N-1} declared in main.
  unsigned TopStmts = 10;     ///< Statements at the top level of main.
  unsigned MaxDepth = 2;      ///< Nesting depth of if/for/while bodies.
  unsigned MaxLoopTrip = 5;   ///< Upper bound on any loop trip count.
  bool Helpers = true;        ///< Emit 0-2 helper functions + calls.
  bool Globals = true;        ///< Emit 0-2 global scalars.
  /// Probability (percent) of planting each optimization idiom: a PRE
  /// redundancy pair, a LICM invariant, a PDE partially-dead store, a DCE
  /// dead store with recoverable RHS, a strength-reducible IV loop.
  unsigned IdiomPct = 60;
  /// Probability (percent) of declaring one deliberately uninitialized
  /// local (exercises the uninitialized verdict / debug-table match).
  unsigned UninitPct = 25;
  /// Enable the aliasing grammar: fixed-size arrays, pointers (`&`, `*`,
  /// pointer arithmetic on array bases), and address-taken locals,
  /// including indirect stores that must kill propagation facts.  The
  /// idioms are safe by construction: every array element is written
  /// before any read of it, and pointer offsets into arrays are tracked
  /// constants kept in bounds.  Off by default so pre-existing seeds keep
  /// producing byte-identical programs.
  bool Alias = false;
  /// Probability (percent) of planting each aliasing idiom (array
  /// init+reduce loop, pointer-to-scalar indirect store, pointer
  /// arithmetic over an array, address passed to a mutating helper) when
  /// Alias is enabled.
  unsigned AliasPct = 60;
};

/// Generates one MiniC program.  Deterministic: the same (seed, options)
/// pair always yields the same source text.
std::string generateProgram(std::uint32_t Seed, const GenOptions &Opts = {});

} // namespace sldb

#endif // SLDB_FUZZ_PROGRAMGEN_H
