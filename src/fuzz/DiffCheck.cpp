//===- fuzz/DiffCheck.cpp -------------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "fuzz/DiffCheck.h"

using namespace sldb;

const char *sldb::violationKindName(ViolationKind K) {
  switch (K) {
  case ViolationKind::UnsoundCurrent:
    return "unsound-current";
  case ViolationKind::WrongRecovery:
    return "wrong-recovery";
  case ViolationKind::SpuriousUninitialized:
    return "spurious-uninitialized";
  case ViolationKind::MissedUninitialized:
    return "missed-uninitialized";
  case ViolationKind::NonresidentInconsistent:
    return "nonresident-inconsistent";
  case ViolationKind::LockstepDiverged:
    return "lockstep-diverged";
  case ViolationKind::BehaviorMismatch:
    return "behavior-mismatch";
  case ViolationKind::ProcessCrash:
    return "process-crash";
  case ViolationKind::ProcessHang:
    return "process-hang";
  case ViolationKind::PhantomStop:
    return "phantom-stop";
  case ViolationKind::VanishedStop:
    return "vanished-stop";
  }
  return "?";
}

std::string Violation::str() const {
  std::string S = violationKindName(Kind);
  if (Stmt != InvalidStmt)
    S += " at s" + std::to_string(Stmt);
  if (!Var.empty())
    S += " var '" + Var + "'";
  if (!Detail.empty())
    S += ": " + Detail;
  return S;
}

namespace {

std::string valueStr(const VarReport &R) {
  if (!R.HasValue)
    return "<no value>";
  return R.IsDouble ? std::to_string(R.DoubleValue)
                    : std::to_string(R.IntValue);
}

bool valuesDiffer(const VarReport &A, const VarReport &B) {
  if (A.IsDouble != B.IsDouble)
    return true;
  return A.IsDouble ? A.DoubleValue != B.DoubleValue
                    : A.IntValue != B.IntValue;
}

} // namespace

std::vector<Violation> sldb::checkSoundness(const LockstepResult &R) {
  std::vector<Violation> Out;
  if (!R.Compiled)
    return Out;

  if (!R.PairError.empty())
    Out.push_back(
        {ViolationKind::LockstepDiverged, InvalidFunc, InvalidStmt, "",
         R.PairError});

  for (const StopObservation &Stop : R.Stops) {
    for (const VarObservation &V : Stop.Vars) {
      const VarReport &E = V.Expected;
      const VarReport &Opt = V.Opt;
      auto Add = [&](ViolationKind K, std::string Detail) {
        Out.push_back({K, Stop.Func, Stop.Stmt, Opt.Name,
                       std::move(Detail)});
      };

      // --- Initialization agreement -----------------------------------
      bool ExpectedUninit = E.Class.Kind == VarClass::Uninitialized;
      if (Opt.Class.Kind == VarClass::Uninitialized) {
        // Conservative disagreement (some-path init removed by branch
        // folding) is fine; definite initialization is not negotiable.
        if (V.ExpectedInitAllPaths)
          Add(ViolationKind::SpuriousUninitialized,
              "initialized on every unoptimized path, expected value " +
                  valueStr(E));
        continue; // No value checks for an uninitialized verdict.
      }
      if (ExpectedUninit) {
        // The optimized build may legitimately *know more* (a hoisted
        // instance already assigned the future value) — every such case
        // carries a warning verdict.  A clean Current means the debugger
        // presents garbage as truth.
        if (Opt.Class.Kind == VarClass::Current && !Opt.Class.Recoverable)
          Add(ViolationKind::MissedUninitialized,
              "no unoptimized path initializes it, yet it reads as "
              "current (" +
                  valueStr(Opt) + ")");
        continue; // Expected value is garbage: nothing to compare.
      }

      // --- Residence table agreement ----------------------------------
      if (Opt.Class.Kind == VarClass::Nonresident) {
        if (V.OptTableResident)
          Add(ViolationKind::NonresidentInconsistent,
              "verdict nonresident but the storage tables locate it");
        if (Opt.HasValue)
          Add(ViolationKind::NonresidentInconsistent,
              "verdict nonresident but a value was displayed");
        continue;
      }
      // Any remaining verdict displays the runtime location's content —
      // except a recovery, which displays the recovered expression.
      if (!Opt.Class.Recoverable && !V.OptTableResident)
        Add(ViolationKind::NonresidentInconsistent,
            std::string("verdict ") + varClassName(Opt.Class.Kind) +
                " displays storage the tables say is dead");

      // --- Value truthfulness (the core of the contract) --------------
      if (!E.HasValue || !Opt.HasValue)
        continue;
      // Pointers hold frame addresses, and the two builds lay out their
      // frames differently: a differing pointer value says nothing about
      // soundness.  The verdict-level checks above still applied.
      if (V.IsPtr)
        continue;
      bool Differ = valuesDiffer(E, Opt);
      if (Opt.Class.Recoverable) {
        // A recovered value claims to BE the expected value (§2.5).
        if (Differ)
          Add(ViolationKind::WrongRecovery,
              "recovered " + valueStr(Opt) + " but expected " +
                  valueStr(E));
        continue;
      }
      if (Opt.Class.Kind == VarClass::Current && Differ)
        Add(ViolationKind::UnsoundCurrent,
            "shown without warning as " + valueStr(Opt) +
                " but expected " + valueStr(E));
      // Suspect/Noncurrent with a differing value: honest warning,
      // exactly what the paper allows.  Nothing to report.
    }
  }

  // --- Behavioral equivalence of the two builds -----------------------
  if (R.ExpectedEnd != R.OptEnd)
    Out.push_back({ViolationKind::BehaviorMismatch, InvalidFunc,
                   InvalidStmt, "",
                   "end states differ (oracle " +
                       std::to_string(static_cast<int>(R.ExpectedEnd)) +
                       " vs optimized " +
                       std::to_string(static_cast<int>(R.OptEnd)) + ")"});
  else if (R.ExpectedEnd == StopReason::Exited &&
           R.ExpectedExit != R.OptExit)
    Out.push_back({ViolationKind::BehaviorMismatch, InvalidFunc,
                   InvalidStmt, "",
                   "exit values differ (" +
                       std::to_string(R.ExpectedExit) + " vs " +
                       std::to_string(R.OptExit) + ")"});
  if (R.ExpectedOutput != R.OptOutput)
    Out.push_back({ViolationKind::BehaviorMismatch, InvalidFunc,
                   InvalidStmt, "", "program outputs differ"});
  return Out;
}
