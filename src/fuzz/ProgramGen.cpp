//===- fuzz/ProgramGen.cpp ------------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "fuzz/ProgramGen.h"

#include "eval/Programs.h"
#include "frontend/Lexer.h"
#include "support/Diagnostics.h"

#include <random>
#include <vector>

using namespace sldb;

//===----------------------------------------------------------------------===//
// Weights from the benchmark corpus
//===----------------------------------------------------------------------===//

const GenWeights &GenWeights::fromBenchmarks() {
  static const GenWeights W = [] {
    // Token frequencies across the eight Table-2 stand-in programs.
    std::uint64_t NIf = 0, NFor = 0, NWhile = 0, NAssign = 0, NPrint = 0,
                  NCall = 0, NAdd = 0, NSub = 0, NMul = 0, NDiv = 0,
                  NRem = 0, NCmp = 0;
    for (const BenchProgram &P : benchmarkPrograms()) {
      DiagnosticEngine Diags;
      Lexer L(P.Source, Diags);
      std::vector<Token> Toks = L.lexAll();
      for (std::size_t I = 0; I < Toks.size(); ++I) {
        switch (Toks[I].Kind) {
        case TokKind::KwIf:
          ++NIf;
          break;
        case TokKind::KwFor:
          ++NFor;
          break;
        case TokKind::KwWhile:
          ++NWhile;
          break;
        case TokKind::Assign:
          ++NAssign;
          break;
        case TokKind::Plus:
          ++NAdd;
          break;
        case TokKind::Minus:
          ++NSub;
          break;
        case TokKind::Star:
          ++NMul;
          break;
        case TokKind::Slash:
          ++NDiv;
          break;
        case TokKind::Percent:
          ++NRem;
          break;
        case TokKind::Less:
        case TokKind::Greater:
        case TokKind::EqEq:
        case TokKind::BangEq:
          ++NCmp;
          break;
        case TokKind::Identifier:
          if (I + 1 < Toks.size() && Toks[I + 1].Kind == TokKind::LParen) {
            if (Toks[I].Text == "print")
              ++NPrint;
            else
              ++NCall;
          }
          break;
        default:
          break;
        }
      }
    }
    // Normalize against the assignment count so the default statement mix
    // (assignment-dominated, as in the SPEC-style sources) is preserved.
    auto Scaled = [&](std::uint64_t N, double Base) {
      return NAssign ? Base * static_cast<double>(N) /
                           static_cast<double>(NAssign)
                     : 1.0;
    };
    GenWeights G;
    G.Assign = 6.0;
    G.If = std::max(0.5, Scaled(NIf, 6.0));
    G.For = std::max(0.5, Scaled(NFor, 6.0));
    G.While = std::max(0.25, Scaled(NWhile, 6.0));
    G.Print = std::max(0.25, Scaled(NPrint, 6.0));
    G.Call = std::max(0.25, Scaled(NCall, 6.0));
    std::uint64_t OpTotal = NAdd + NSub + NMul + NDiv + NRem + NCmp;
    auto OpW = [&](std::uint64_t N) {
      return OpTotal ? std::max(0.25, 12.0 * static_cast<double>(N) /
                                          static_cast<double>(OpTotal))
                     : 1.0;
    };
    G.Add = OpW(NAdd);
    G.Sub = OpW(NSub);
    G.Mul = OpW(NMul);
    G.Div = OpW(NDiv) * 0.5; // Constant-divisor only; keep rare.
    G.Rem = OpW(NRem) * 0.5;
    G.Cmp = OpW(NCmp);
    return G;
  }();
  return W;
}

//===----------------------------------------------------------------------===//
// Generator
//===----------------------------------------------------------------------===//

namespace {

class Generator {
public:
  Generator(std::uint32_t Seed, const GenOptions &Opts)
      : Rng(Seed), Opts(Opts), W(Opts.Weights) {}

  std::string generate();

private:
  std::mt19937 Rng;
  GenOptions Opts;
  GenWeights W;
  std::string Out;

  std::vector<std::string> Vars;       ///< Assignable in-scope scalars.
  std::vector<std::string> ReadOnly;   ///< Loop counters etc.: read-only.
  std::vector<std::string> Helpers;    ///< Helper function names.
  std::vector<std::string> PtrHelpers; ///< Helpers taking (int*, int).
  unsigned NextLoop = 0;
  unsigned NextAlias = 0; ///< Unique suffix for arrays and pointers.
  int Indent = 1;

  unsigned pct() { return Rng() % 100; }
  bool chance(unsigned P) { return pct() < P; }
  unsigned range(unsigned Lo, unsigned Hi) { // Inclusive.
    return Lo + Rng() % (Hi - Lo + 1);
  }

  int smallConst() { return static_cast<int>(Rng() % 19) - 9; }

  void line(const std::string &S) {
    Out.append(static_cast<std::size_t>(Indent) * 2, ' ');
    Out += S;
    Out += '\n';
  }

  const std::string &pickVar() {
    return Vars[Rng() % Vars.size()];
  }

  /// Any readable name (assignable var or read-only counter).
  const std::string &pickReadable() {
    if (!ReadOnly.empty() && Rng() % 4 == 0)
      return ReadOnly[Rng() % ReadOnly.size()];
    return pickVar();
  }

  std::string atom() {
    if (Rng() % 3 == 0)
      return std::to_string(smallConst());
    return pickReadable();
  }

  enum class OpKind { Add, Sub, Mul, Div, Rem, Cmp };

  OpKind pickOp() {
    double Total = W.Add + W.Sub + W.Mul + W.Div + W.Rem + W.Cmp;
    double R = std::uniform_real_distribution<double>(0.0, Total)(Rng);
    if ((R -= W.Add) < 0)
      return OpKind::Add;
    if ((R -= W.Sub) < 0)
      return OpKind::Sub;
    if ((R -= W.Mul) < 0)
      return OpKind::Mul;
    if ((R -= W.Div) < 0)
      return OpKind::Div;
    if ((R -= W.Rem) < 0)
      return OpKind::Rem;
    return OpKind::Cmp;
  }

  std::string expr(unsigned Depth) {
    if (Depth == 0 || Rng() % 3 == 0)
      return atom();
    switch (pickOp()) {
    case OpKind::Add:
      return "(" + expr(Depth - 1) + " + " + expr(Depth - 1) + ")";
    case OpKind::Sub:
      return "(" + expr(Depth - 1) + " - " + expr(Depth - 1) + ")";
    case OpKind::Mul:
      return "(" + expr(Depth - 1) + " * " + expr(Depth - 1) + ")";
    case OpKind::Div:
      // Non-zero constant divisor only: generated programs never trap.
      return "(" + expr(Depth - 1) + " / " +
             std::to_string(2 + Rng() % 7) + ")";
    case OpKind::Rem:
      return "(" + expr(Depth - 1) + " % " +
             std::to_string(2 + Rng() % 7) + ")";
    case OpKind::Cmp: {
      static const char *Cmps[] = {"<", ">", "<=", ">=", "==", "!="};
      return "(" + expr(Depth - 1) + " " + Cmps[Rng() % 6] + " " +
             expr(Depth - 1) + ")";
    }
    }
    return atom();
  }

  std::string cond() {
    static const char *Cmps[] = {"<", ">", "<=", ">=", "==", "!="};
    return "(" + expr(1) + " " + Cmps[Rng() % 6] + " " + expr(1) + ")";
  }

  //===--- Statement generation -------------------------------------------===//

  void stmts(unsigned Count, unsigned Depth) {
    for (unsigned I = 0; I < Count; ++I)
      stmt(Depth);
  }

  void stmt(unsigned Depth) {
    double Total = W.Assign + W.Print +
                   (Depth ? W.If + W.For + W.While : 0.0) +
                   (Helpers.empty() ? 0.0 : W.Call);
    double R = std::uniform_real_distribution<double>(0.0, Total)(Rng);
    if ((R -= W.Assign) < 0)
      return assignStmt();
    if ((R -= W.Print) < 0)
      return line("print(" + expr(1) + ");");
    if (!Helpers.empty() && (R -= W.Call) < 0)
      return line(pickVar() + " = " + Helpers[Rng() % Helpers.size()] +
                  "(" + expr(1) + ", " + expr(1) + ");");
    if (Depth && (R -= W.If) < 0)
      return ifStmt(Depth - 1);
    if (Depth && (R -= W.For) < 0)
      return forStmt(Depth - 1);
    if (Depth)
      return whileStmt(Depth - 1);
    assignStmt();
  }

  void assignStmt() { line(pickVar() + " = " + expr(2) + ";"); }

  void ifStmt(unsigned Depth) {
    line("if " + cond() + " {");
    ++Indent;
    stmts(range(1, 3), Depth);
    --Indent;
    if (chance(70)) {
      line("} else {");
      ++Indent;
      stmts(range(1, 3), Depth);
      --Indent;
    }
    line("}");
  }

  /// Bounded counting loop; the counter is read-only inside the body.
  void forStmt(unsigned Depth, bool WithIVIdiom = false) {
    std::string I = "i" + std::to_string(NextLoop++);
    unsigned Trip = range(2, Opts.MaxLoopTrip);
    line("for (int " + I + " = 0; " + I + " < " + std::to_string(Trip) +
         "; " + I + " = " + I + " + 1) {");
    ++Indent;
    ReadOnly.push_back(I);
    if (WithIVIdiom) {
      // Strength-reducible use: the only consumers of the counter are the
      // loop test and this multiply, so IV opt can strength-reduce and
      // LFTR can retire the counter (affine §2.5 recovery).
      const std::string &X = pickVar();
      const std::string &Acc = pickVar();
      line(X + " = " + I + " * " + std::to_string(2 + Rng() % 7) + ";");
      line(Acc + " = " + Acc + " + " + X + ";");
    }
    stmts(range(1, 2), Depth);
    ReadOnly.pop_back();
    --Indent;
    line("}");
  }

  /// While loop over a dedicated fresh counter: always terminates.
  void whileStmt(unsigned Depth) {
    std::string C = "w" + std::to_string(NextLoop++);
    line("int " + C + " = " + std::to_string(range(1, Opts.MaxLoopTrip)) +
         ";");
    line("while (" + C + " > 0) {");
    ++Indent;
    ReadOnly.push_back(C);
    stmts(range(1, 2), Depth);
    ReadOnly.pop_back();
    line(C + " = " + C + " - 1;");
    --Indent;
    line("}");
  }

  //===--- Optimization idioms (paper §2 shapes) --------------------------===//

  /// Partial redundancy: `x = a + b` computed on one branch and repeated
  /// after the join — PRE hoists the second instance into the other branch
  /// and leaves an avail marker at the join (Figure 2).
  void idiomPRE() {
    const std::string &X = pickVar();
    std::string A = pickReadable(), B = pickReadable();
    line("if " + cond() + " {");
    ++Indent;
    line(X + " = " + A + " + " + B + ";");
    --Indent;
    line("} else {");
    ++Indent;
    assignStmt();
    --Indent;
    line("}");
    line(X + " = " + A + " + " + B + ";");
  }

  /// Loop-invariant assignment inside a bounded loop (LICM hoists it to
  /// the preheader; the destination becomes endangered in the loop).
  void idiomLICM() {
    std::string X = pickVar();
    std::string A, B;
    do
      A = pickReadable();
    while (A == X);
    do
      B = pickReadable();
    while (B == X);
    std::string I = "i" + std::to_string(NextLoop++);
    unsigned Trip = range(2, Opts.MaxLoopTrip);
    line("for (int " + I + " = 0; " + I + " < " + std::to_string(Trip) +
         "; " + I + " = " + I + " + 1) {");
    ++Indent;
    line(X + " = " + A + " * " + B + ";");
    const std::string &Acc = pickVar();
    line(Acc + " = " + Acc + " + " + X + ";");
    --Indent;
    line("}");
  }

  /// Partially dead store: killed on the then-path, used on the else-path
  /// — PDE sinks it onto the else edge and leaves a dead marker at the
  /// original site (Figure 3).
  void idiomPDE() {
    const std::string &X = pickVar();
    line(X + " = " + expr(1) + ";");
    line("if " + cond() + " {");
    ++Indent;
    line(X + " = " + expr(1) + ";");
    --Indent;
    line("} else {");
    ++Indent;
    line("print(" + X + ");");
    --Indent;
    line("}");
  }

  /// Fully dead store whose right-hand side survives (a constant or
  /// another variable): DCE eliminates it and records a §2.5 recovery.
  void idiomDCE() {
    const std::string &X = pickVar();
    std::string RHS =
        chance(50) ? std::to_string(smallConst()) : pickReadable();
    line(X + " = " + RHS + ";");
    // Overwrite a couple of statements later without reading X, keeping
    // the store dead on every path.
    line("print(" + pickReadable() + ");");
    line(X + " = " + expr(1) + ";");
  }

  //===--- Aliasing idioms (arrays, pointers, address-taken locals) -------===//

  /// Declares a fresh int array and initializes every element with a
  /// constant.  Generated programs never read an uninitialized array
  /// element: each element is written here before any idiom reads it.
  std::string declArray(unsigned &SizeOut) {
    std::string A = "a" + std::to_string(NextAlias++);
    unsigned N = range(3, 5);
    line("int " + A + "[" + std::to_string(N) + "];");
    for (unsigned J = 0; J < N; ++J)
      line(A + "[" + std::to_string(J) + "] = " +
           std::to_string(smallConst()) + ";");
    SizeOut = N;
    return A;
  }

  /// Array overwrite + reduction: a counting loop rewrites every element
  /// (trip count equals the array size, so accesses are in bounds), then
  /// a second loop folds the elements into a scalar.  Exercises Load/
  /// Store with a loop-variant index against LICM/PRE/IV opt.
  void idiomArrayLoop() {
    unsigned N;
    std::string A = declArray(N);
    std::string I = "i" + std::to_string(NextLoop++);
    line("for (int " + I + " = 0; " + I + " < " + std::to_string(N) +
         "; " + I + " = " + I + " + 1) {");
    ++Indent;
    ReadOnly.push_back(I);
    line(A + "[" + I + "] = " + I + " * " +
         std::to_string(2 + Rng() % 5) + " + " + atom() + ";");
    ReadOnly.pop_back();
    --Indent;
    line("}");
    std::string J = "i" + std::to_string(NextLoop++);
    const std::string &Acc = pickVar();
    line("for (int " + J + " = 0; " + J + " < " + std::to_string(N) +
         "; " + J + " = " + J + " + 1) {");
    ++Indent;
    line(Acc + " = " + Acc + " + " + A + "[" + J + "];");
    --Indent;
    line("}");
  }

  /// Address-taken scalar with an indirect store: `p = &t; *p = e;` must
  /// kill any propagated facts about t, and t itself must stay
  /// unpromoted (frame-resident) through the whole pipeline.
  void idiomPtrScalar() {
    std::string P = "p" + std::to_string(NextAlias++);
    const std::string &T = pickVar();
    line("int* " + P + " = &" + T + ";");
    line(T + " = " + expr(1) + ";"); // Direct def a prop pass might forward.
    line("*" + P + " = " + expr(1) + ";"); // Indirect kill of T.
    const std::string &X = pickVar();
    line(X + " = *" + P + " + " + std::to_string(range(0, 4)) + ";");
    line("print(" + T + ");"); // Observes the indirectly stored value.
  }

  /// Pointer arithmetic over an array: the pointer starts at a constant
  /// element and is bumped by tracked constant deltas, so every access
  /// stays in [0, N) by construction.
  void idiomPtrArray() {
    unsigned N;
    std::string A = declArray(N);
    std::string P = "p" + std::to_string(NextAlias++);
    unsigned C1 = Rng() % N; // Current pointed-to index, tracked exactly.
    line("int* " + P + " = " + A + " + " + std::to_string(C1) + ";");
    unsigned C2 = Rng() % N;
    int Delta = static_cast<int>(C2) - static_cast<int>(C1);
    if (Delta > 0)
      line(P + " = " + P + " + " + std::to_string(Delta) + ";");
    else if (Delta < 0)
      line(P + " = " + P + " - " + std::to_string(-Delta) + ";");
    line("*" + P + " = " + expr(1) + ";"); // Clobbers a[C2] via the pointer.
    unsigned K = N - 1 > C2 ? Rng() % (N - C2) : 0; // C2 + K < N.
    const std::string &X = pickVar();
    line(X + " = " + P + "[" + std::to_string(K) + "];");
    const std::string &Y = pickVar();
    // Direct read-back: may or may not be the clobbered element, either
    // way the optimizer must not forward a stale pre-store value.
    line(Y + " = " + A + "[" + std::to_string(Rng() % N) + "];");
  }

  /// Scalar escaping to a call: `fnp(&t, e)` mutates t through the
  /// pointer parameter, so every pass must treat the call as a possible
  /// def (and read) of t.
  void idiomPtrCall() {
    const std::string &T = pickVar();
    const std::string &X = pickVar();
    line(X + " = " + PtrHelpers[Rng() % PtrHelpers.size()] + "(&" + T +
         ", " + expr(1) + ");");
    line("print(" + T + ");");
  }

  //===--- Program assembly -----------------------------------------------===//

  void helperFunc(const std::string &Name) {
    Out += "int " + Name + "(int p0, int p1) {\n";
    Vars = {"p0", "p1"};
    ReadOnly.clear();
    Indent = 1;
    line("int h0 = p0 + " + std::to_string(range(1, 5)) + ";");
    Vars.push_back("h0");
    stmts(range(1, 3), 1);
    line("return " + expr(1) + ";");
    Out += "}\n\n";
  }

  /// Helper taking a pointer parameter that it stores through: calls
  /// passing `&t` make t escape, which the alias analysis must treat as
  /// clobbered (and read) by any later call.
  void ptrHelperFunc(const std::string &Name) {
    Out += "int " + Name + "(int* q0, int k0) {\n";
    Indent = 1;
    line("if (k0 > " + std::to_string(smallConst()) + ") {");
    ++Indent;
    line("*q0 = *q0 + k0;");
    --Indent;
    line("}");
    line("return *q0 + " + std::to_string(range(1, 5)) + ";");
    Out += "}\n\n";
  }
};

std::string Generator::generate() {
  Out.clear();
  std::vector<std::string> Globals;
  if (Opts.Globals && chance(60)) {
    unsigned N = range(1, 2);
    for (unsigned G = 0; G < N; ++G) {
      Globals.push_back("g" + std::to_string(G));
      // Global initializers are literal-only in the grammar (no unary
      // minus): keep them non-negative.
      Out += "int " + Globals.back() + " = " +
             std::to_string(Rng() % 10) + ";\n";
    }
    Out += "\n";
  }
  if (Opts.Helpers && chance(50)) {
    unsigned N = range(1, 2);
    for (unsigned H = 0; H < N; ++H) {
      // Register the helper only after its body is generated: a helper
      // may call earlier helpers, but never itself (unbounded
      // recursion).
      std::string Name = "fn" + std::to_string(H);
      helperFunc(Name);
      Helpers.push_back(Name);
    }
  }
  if (Opts.Alias && Opts.Helpers) {
    ptrHelperFunc("fnp0");
    PtrHelpers.push_back("fnp0");
  }

  Out += "int main() {\n";
  Indent = 1;
  Vars.clear();
  ReadOnly.clear();
  for (unsigned V = 0; V < Opts.NumVars; ++V) {
    Vars.push_back("v" + std::to_string(V));
    line("int v" + std::to_string(V) + " = " +
         std::to_string(smallConst()) + ";");
  }
  for (const std::string &G : Globals)
    Vars.push_back(G);
  bool Uninit = chance(Opts.UninitPct);
  if (Uninit)
    line("int u0;"); // Deliberately uninitialized until late (or never).

  // Plant the optimization idioms at random positions among the generic
  // statements; each idiom appears with probability IdiomPct (aliasing
  // idioms 6..9 with probability AliasPct, and only when Alias is on so
  // pre-existing seeds keep their exact random stream).
  std::vector<unsigned> Plan; // 0 = generic, 1..5 = idiom, 6..9 = alias.
  for (unsigned S = 0; S < Opts.TopStmts; ++S)
    Plan.push_back(0);
  for (unsigned Idiom = 1; Idiom <= 5; ++Idiom)
    if (chance(Opts.IdiomPct))
      Plan[Rng() % Plan.size()] = Idiom;
  if (Opts.Alias)
    for (unsigned Idiom = 6; Idiom <= 9; ++Idiom)
      if (chance(Opts.AliasPct))
        Plan[Rng() % Plan.size()] = Idiom;

  for (unsigned Step : Plan) {
    switch (Step) {
    case 1:
      idiomPRE();
      break;
    case 2:
      idiomLICM();
      break;
    case 3:
      idiomPDE();
      break;
    case 4:
      idiomDCE();
      break;
    case 5:
      forStmt(/*Depth=*/1, /*WithIVIdiom=*/true);
      break;
    case 6:
      idiomArrayLoop();
      break;
    case 7:
      idiomPtrScalar();
      break;
    case 8:
      idiomPtrArray();
      break;
    case 9:
      if (!PtrHelpers.empty())
        idiomPtrCall();
      else
        idiomPtrScalar();
      break;
    default:
      stmt(Opts.MaxDepth);
      break;
    }
  }

  if (Uninit && chance(50)) {
    line("u0 = " + expr(1) + ";");
    line("print(u0);");
  }
  // Keep the first few locals observably live at the end.
  for (unsigned V = 0; V < 3 && V < Opts.NumVars; ++V)
    line("print(v" + std::to_string(V) + ");");
  line("return v0;");
  Out += "}\n";
  return Out;
}

} // namespace

std::string sldb::generateProgram(std::uint32_t Seed,
                                  const GenOptions &Opts) {
  // Decorrelate consecutive seeds (mt19937 with nearby seeds produces
  // correlated early draws).
  std::uint32_t Mixed = Seed * 0x9E3779B9u + 0x85EBCA6Bu;
  return Generator(Mixed ^ (Mixed >> 16), Opts).generate();
}
