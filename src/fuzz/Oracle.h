//===- fuzz/Oracle.h - Lockstep O0/optimized ground-truth oracle -*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ground-truth half of the differential fuzzing harness.  A program is
/// compiled twice — unoptimized and unpromoted (the semantics oracle: every
/// variable lives in its frame slot and is updated in source order) and
/// optimized — and both builds run under their debuggers with a breakpoint
/// on every statement.  At each paired stop the oracle records, for every
/// in-scope variable, the *expected* value (unoptimized semantics) next to
/// everything the optimized debugger claims: its Figure-1 verdict, the
/// value it would display, and what the debug tables say about residence.
///
/// DiffCheck.h consumes these observations and asserts the soundness
/// contract; this header is only about faithfully collecting them.
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_FUZZ_ORACLE_H
#define SLDB_FUZZ_ORACLE_H

#include "core/Debugger.h"
#include "opt/Pass.h"

#include <string>
#include <string_view>
#include <vector>

namespace sldb {

/// One variable, observed at one paired stop.
struct VarObservation {
  /// What the unoptimized build's debugger reports (the expected value;
  /// its verdict is trivially sound because nothing was transformed).
  VarReport Expected;

  /// What the optimized build's debugger reports.
  VarReport Opt;

  /// Whether the optimized build's debug tables (Storage / ResidentAt)
  /// say the variable occupies a live location at the stop address —
  /// the ground truth the Nonresident verdict must agree with.
  bool OptTableResident = false;

  /// Whether the *unoptimized* build initializes the variable on every
  /// path to this stop (intersect-meet reaching of any definition).
  /// When true, an optimized-side Uninitialized verdict contradicts the
  /// source semantics.  (The some-path case is left alone: branch
  /// folding may legitimately remove a some-path definition.)
  bool ExpectedInitAllPaths = false;

  /// Raw contents of the variable's storage home in the optimized build,
  /// read with no residence check (Debugger::peekStorage) — what a naive
  /// debugger would have printed.  Feeds the conservatism metric: a
  /// Suspect/Nonresident verdict whose raw value nevertheless equals the
  /// expected value was conservative, not necessary.
  bool RawValid = false;
  bool RawIsDouble = false;
  std::int64_t RawInt = 0;
  double RawDouble = 0.0;

  /// Whether the variable has pointer type.  A pointer's value is a
  /// frame (or global) address, and the two builds lay frames out
  /// differently — so value comparisons between the builds are
  /// meaningless for pointers, while the classification verdicts
  /// (init / residence agreement) still apply.
  bool IsPtr = false;
};

/// One paired statement-boundary stop.
struct StopObservation {
  FuncId Func = InvalidFunc;
  StmtId Stmt = InvalidStmt;
  std::vector<VarObservation> Vars;
};

/// Lockstep configuration.
struct LockstepOptions {
  /// Optimizations for the non-oracle build.  Defaults to the heaviest
  /// pipeline whose statement structure can still be paired one-to-one:
  /// everything except loop peeling and unrolling, which duplicate
  /// statements and break the syntactic pairing (same restriction as the
  /// NeverMisleads suite).  Scheduling is likewise off — endangerment
  /// from instruction scheduling is the authors' PLDI'93 paper, out of
  /// scope here (paper §1.3).
  OptOptions Opts = lockstepOpts();

  /// Promote source variables to registers in the optimized build
  /// (Figure 5(b) configuration).  Running a corpus in both modes
  /// exercises the residence tables as well as the reach analyses.
  bool Promote = true;

  /// Collect at most this many paired stops.
  unsigned MaxStops = 4000;

  /// Execution fuel (VM step budget) for both builds.  A generated
  /// program that loops forever stops with StopReason::StepLimit and a
  /// trap message naming the budget instead of hanging the campaign.
  std::uint64_t Fuel = 50'000'000;

  /// Record per-pipeline-slot firing counts (pass coverage).
  bool InstrumentPasses = false;

  static OptOptions lockstepOpts() {
    OptOptions O = OptOptions::all();
    O.LoopPeel = false;
    O.LoopUnroll = false;
    return O;
  }
};

/// Everything one lockstep run observed.
struct LockstepResult {
  bool Compiled = false;
  std::string CompileError;

  /// Non-empty when the two builds' stop sequences could not be paired
  /// (after skipping oracle-only stops for vanished statements).  Always
  /// a harness finding: the statement map lost a statement it shouldn't
  /// have, or the optimizer miscompiled control flow.
  std::string PairError;

  std::vector<StopObservation> Stops;

  /// End-state comparison (behavioral equivalence of the two builds).
  StopReason ExpectedEnd = StopReason::Running;
  StopReason OptEnd = StopReason::Running;
  std::int64_t ExpectedExit = 0, OptExit = 0;
  std::string ExpectedOutput, OptOutput;

  /// Pipeline firing counts (when InstrumentPasses), plus machine-level
  /// evidence of the paper's endangering transformations in the
  /// optimized build.
  std::vector<PassFiring> Firings;
  unsigned NumHoisted = 0;   ///< IsHoisted instructions (PRE/LICM).
  unsigned NumSunk = 0;      ///< IsSunk instructions (PDE).
  unsigned NumDeadMarks = 0; ///< MDEAD markers (eliminated assignments).
  unsigned NumAvailMarks = 0;///< MAVAIL markers (PRE originals).
  unsigned NumSRRecords = 0; ///< Strength-reduction/IV recovery records.
};

/// Compiles \p Src twice and runs both builds in lockstep, recording one
/// StopObservation per paired stop.  Never asserts: all findings are in
/// the result for DiffCheck to judge.
LockstepResult runLockstep(std::string_view Src, const LockstepOptions &O);

} // namespace sldb

#endif // SLDB_FUZZ_ORACLE_H
