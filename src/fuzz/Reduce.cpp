//===- fuzz/Reduce.cpp ----------------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Reduce.h"

#include <vector>

using namespace sldb;

namespace {

std::vector<std::string> splitLines(const std::string &S) {
  std::vector<std::string> Lines;
  std::string Cur;
  for (char C : S) {
    if (C == '\n') {
      Lines.push_back(Cur);
      Cur.clear();
    } else {
      Cur += C;
    }
  }
  if (!Cur.empty())
    Lines.push_back(Cur);
  return Lines;
}

std::string joinLines(const std::vector<std::string> &Lines) {
  std::string S;
  for (const std::string &L : Lines) {
    S += L;
    S += '\n';
  }
  return S;
}

int braceDelta(const std::string &Line) {
  int D = 0;
  for (char C : Line) {
    if (C == '{')
      ++D;
    else if (C == '}')
      --D;
  }
  return D;
}

/// Extent of the deletion candidate starting at \p I: a single line, or —
/// when the line opens more braces than it closes — the whole region up
/// to the line that rebalances it (inclusive).  Returns one past the last
/// line of the candidate, or 0 if the region never closes (malformed).
std::size_t candidateEnd(const std::vector<std::string> &Lines,
                         std::size_t I) {
  int D = braceDelta(Lines[I]);
  if (D <= 0)
    return I + 1;
  for (std::size_t J = I + 1; J < Lines.size(); ++J) {
    D += braceDelta(Lines[J]);
    if (D <= 0)
      return J + 1;
  }
  return 0;
}

} // namespace

std::string sldb::reduceProgram(const std::string &Src,
                                const ReducePredicate &StillFails,
                                unsigned MaxChecks) {
  std::vector<std::string> Lines = splitLines(Src);
  unsigned Checks = 0;
  bool Progress = true;
  while (Progress && Checks < MaxChecks) {
    Progress = false;
    for (std::size_t I = 0; I < Lines.size() && Checks < MaxChecks; ++I) {
      if (Lines[I].find_first_not_of(" \t") == std::string::npos)
        continue; // Blank lines are harmless; drop them at the end.
      std::size_t End = candidateEnd(Lines, I);
      if (End == 0)
        continue;
      // A lone `}` can only be deleted as part of its region; skipping it
      // keeps every candidate brace-balanced.
      if (braceDelta(Lines[I]) < 0)
        continue;
      std::vector<std::string> Candidate;
      Candidate.reserve(Lines.size() - (End - I));
      Candidate.insert(Candidate.end(), Lines.begin(),
                       Lines.begin() + static_cast<std::ptrdiff_t>(I));
      Candidate.insert(Candidate.end(),
                       Lines.begin() + static_cast<std::ptrdiff_t>(End),
                       Lines.end());
      ++Checks;
      if (StillFails(joinLines(Candidate))) {
        Lines = std::move(Candidate);
        Progress = true;
        // Retry the same index: the next line slid into this slot.
        --I;
      }
    }
  }
  // Strip blank lines for the final artifact.
  std::vector<std::string> Final;
  for (std::string &L : Lines)
    if (L.find_first_not_of(" \t") != std::string::npos)
      Final.push_back(std::move(L));
  return joinLines(Final);
}
