//===- fuzz/StepOracle.cpp ------------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "fuzz/StepOracle.h"

#include "codegen/ISel.h"
#include "ir/IRGen.h"
#include "support/Diagnostics.h"
#include "support/FaultInjector.h"

#include <map>

using namespace sldb;

namespace {

/// The instruction at a function-local address (blocks are laid out
/// consecutively); nullptr when out of range.
const MInstr *instrAt(const MachineFunction &MF, std::uint32_t Addr) {
  std::uint32_t B = 0;
  while (B + 1 < MF.BlockAddr.size() && MF.BlockAddr[B + 1] <= Addr)
    ++B;
  std::uint32_t Off = Addr - MF.BlockAddr[B];
  if (Off >= MF.Blocks[B].Insts.size())
    return nullptr;
  return &MF.Blocks[B].Insts[Off];
}

using VisitKey = std::pair<FuncId, StmtId>;

/// Single-steps one build to completion, counting statement-boundary
/// stops.  Returns true when the event cap was hit (counts truncated).
bool stepSide(Debugger &D, unsigned MaxEvents,
              std::map<VisitKey, std::uint64_t> &Count, StopReason &End) {
  StopReason R = D.startPaused();
  unsigned Events = 0;
  while (R == StopReason::Breakpoint) {
    if (auto S = D.currentStmt())
      ++Count[{D.currentFunction(), *S}];
    if (++Events >= MaxEvents)
      return true;
    R = D.stepStmt();
  }
  End = R;
  return R == StopReason::StepLimit;
}

} // namespace

StepResult sldb::runStepLockstep(std::string_view Src,
                                 const StepOracleOptions &O) {
  StepResult R;

  DiagnosticEngine D0, D2;
  auto M0 = compileToIR(Src, D0);
  auto M2 = compileToIR(Src, D2);
  if (!M0 || !M2) {
    R.CompileError = D0.hasErrors() ? D0.str() : "frontend error";
    return R;
  }
  Status PS = runPipelineEx(*M2, O.Opts, PipelineConfig());
  if (!PS.ok()) {
    R.CompileError = PS.str();
    return R;
  }

  // The oracle build stays pristine under an armed FaultInjector, as in
  // the variable oracle.
  FaultInjector::suspend();
  CodegenOptions CGOracle;
  CGOracle.PromoteVars = false;
  CGOracle.Schedule = false;
  Expected<MachineModule> MMOE = compileToMachineE(*M0, CGOracle);
  FaultInjector::resume();
  if (!MMOE) {
    R.CompileError = "oracle build: " + MMOE.status().str();
    return R;
  }
  CodegenOptions CGOpt;
  CGOpt.PromoteVars = O.Promote;
  CGOpt.Schedule = false;
  Expected<MachineModule> MM2E = compileToMachineE(*M2, CGOpt);
  if (!MM2E) {
    R.CompileError = MM2E.status().str();
    return R;
  }
  MachineModule &MMO = *MMOE;
  MachineModule &MM2 = *MM2E;
  R.Compiled = true;

  FaultInjector::suspend();
  Debugger SrcDbg(MMO, O.Fuel);
  FaultInjector::resume();
  Debugger OptDbg(MM2, O.Fuel);

  std::map<VisitKey, std::uint64_t> SrcCount, OptCount;
  FaultInjector::suspend();
  bool SrcCapped = stepSide(SrcDbg, O.MaxEvents, SrcCount, R.SrcEnd);
  FaultInjector::resume();
  bool OptCapped = stepSide(OptDbg, O.MaxEvents, OptCount, R.OptEnd);
  R.Capped = SrcCapped || OptCapped;

  R.SrcExit = SrcDbg.machine().exitValue();
  R.OptExit = OptDbg.machine().exitValue();
  R.SrcOutput = SrcDbg.machine().outputText();
  R.OptOutput = OptDbg.machine().outputText();

  // Merge the two count maps into one deterministic visit table.
  std::map<VisitKey, StepVisit> Merged;
  auto Row = [&](VisitKey K) -> StepVisit & {
    StepVisit &V = Merged[K];
    if (V.Func == InvalidFunc) {
      V.Func = K.first;
      V.Stmt = K.second;
      const FuncInfo &FI = MM2.Info->func(K.first);
      if (K.second < FI.Stmts.size())
        V.Line = FI.Stmts[K.second].Loc.Line;
      const MachineFunction &MF = MM2.Funcs[K.first];
      if (K.second < MF.StmtAddr.size() && MF.StmtAddr[K.second] >= 0) {
        V.OptHasCode = true;
        const MInstr *I =
            instrAt(MF, static_cast<std::uint32_t>(MF.StmtAddr[K.second]));
        V.OptAnchored = I && !I->IsHoisted && !I->IsSunk;
      }
    }
    return V;
  };
  for (const auto &[K, N] : SrcCount)
    Row(K).SrcVisits = N;
  for (const auto &[K, N] : OptCount)
    Row(K).OptVisits = N;
  for (auto &[K, V] : Merged)
    R.Visits.push_back(V);
  return R;
}

std::vector<Violation> sldb::checkStepping(const StepResult &R) {
  std::vector<Violation> Out;
  if (!R.Compiled || R.Capped)
    return Out;

  for (const StepVisit &V : R.Visits) {
    if (!V.OptAnchored)
      continue; // Hoisted/sunk anchors legally run a different count.
    if (V.OptVisits > V.SrcVisits)
      Out.push_back({ViolationKind::PhantomStop, V.Func, V.Stmt, "",
                     "line " + std::to_string(V.Line) +
                         ": optimized build stops " +
                         std::to_string(V.OptVisits) + "x but source runs " +
                         std::to_string(V.SrcVisits) + "x"});
    else if (V.SrcVisits > 0 && V.OptHasCode && V.OptVisits == 0)
      Out.push_back({ViolationKind::VanishedStop, V.Func, V.Stmt, "",
                     "line " + std::to_string(V.Line) + ": source runs " +
                         std::to_string(V.SrcVisits) +
                         "x but the optimized build never stops there"});
  }

  if (R.SrcEnd != R.OptEnd)
    Out.push_back({ViolationKind::BehaviorMismatch, InvalidFunc,
                   InvalidStmt, "",
                   "end states differ (oracle " +
                       std::to_string(static_cast<int>(R.SrcEnd)) +
                       " vs optimized " +
                       std::to_string(static_cast<int>(R.OptEnd)) + ")"});
  else if (R.SrcEnd == StopReason::Exited && R.SrcExit != R.OptExit)
    Out.push_back({ViolationKind::BehaviorMismatch, InvalidFunc,
                   InvalidStmt, "",
                   "exit values differ (" + std::to_string(R.SrcExit) +
                       " vs " + std::to_string(R.OptExit) + ")"});
  if (R.SrcOutput != R.OptOutput)
    Out.push_back({ViolationKind::BehaviorMismatch, InvalidFunc,
                   InvalidStmt, "", "program outputs differ"});
  return Out;
}
