//===- fuzz/Isolation.h - Fork-based crash isolation ------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Crash containment for fuzzing campaigns: runs one check in a forked
/// child process under a wall-clock watchdog, so a seed that crashes the
/// compiler (or hangs it) is *recorded* instead of killing the whole
/// campaign.  The child reports back over a pipe; the parent classifies
/// the outcome as Ok / Violation / Crash (fatal signal or unexpected
/// exit) / Timeout (watchdog SIGKILL).
///
/// POSIX-only (fork/pipe/waitpid), like the rest of the harness's
/// process plumbing.  The child must not return from the callback by
/// throwing — the project builds with -fno-exceptions — and must treat
/// the callback as its entire remaining life: it exits immediately
/// afterwards without running parent-side destructors twice.
///
/// Safe to call concurrently from a worker pool (parallel campaigns run
/// one forked child per worker): the watchdog polls with exponential
/// backoff instead of spinning a core per child, children are reaped on
/// every exit path (no zombies), and the report drain is non-blocking so
/// a sibling worker's child holding an inherited copy of our pipe's
/// write end cannot stall us.  Children fork from a multithreaded parent
/// and only run the calling thread; post-fork allocation in the child
/// relies on glibc's fork() taking the malloc locks (true since 2.24).
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_FUZZ_ISOLATION_H
#define SLDB_FUZZ_ISOLATION_H

#include <functional>
#include <string>

namespace sldb {

/// How an isolated check ended.
enum class IsolatedStatus : std::uint8_t {
  Ok,        ///< Child exited 0: the check passed.
  Violation, ///< Child exited 1: the check failed cleanly (report set).
  Crash,     ///< Child died on a signal or exited with another code.
  Timeout    ///< Watchdog expired; child was SIGKILLed.
};

const char *isolatedStatusName(IsolatedStatus S);

struct IsolatedOutcome {
  IsolatedStatus Status = IsolatedStatus::Ok;
  int Signal = 0;     ///< Fatal signal number (Crash only; 0 otherwise).
  std::string Report; ///< Whatever the child wrote (capped at ~60 KB).
};

/// Forks and runs \p Check in the child.  The callback returns
/// (passed, report): `passed` selects exit status 0 vs 1 and `report`
/// is sent to the parent over a pipe.  The parent waits at most
/// \p TimeoutMs wall-clock milliseconds, then SIGKILLs the child and
/// reports Timeout.  Never throws and never propagates the child's
/// death to the caller.
IsolatedOutcome
runIsolated(unsigned TimeoutMs,
            const std::function<std::pair<bool, std::string>()> &Check);

} // namespace sldb

#endif // SLDB_FUZZ_ISOLATION_H
