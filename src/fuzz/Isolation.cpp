//===- fuzz/Isolation.cpp -------------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Isolation.h"

#include <cerrno>
#include <csignal>
#include <cstdint>
#include <sys/wait.h>
#include <unistd.h>

using namespace sldb;

const char *sldb::isolatedStatusName(IsolatedStatus S) {
  switch (S) {
  case IsolatedStatus::Ok:
    return "ok";
  case IsolatedStatus::Violation:
    return "violation";
  case IsolatedStatus::Crash:
    return "crash";
  case IsolatedStatus::Timeout:
    return "timeout";
  }
  return "?";
}

namespace {

/// Cap on the child's report so it always fits the pipe's kernel buffer:
/// the parent only reads after the child exits, and a child blocked on a
/// full pipe would read as a hang.
constexpr std::size_t MaxReportBytes = 60'000;

void writeAll(int Fd, const char *Data, std::size_t N) {
  while (N > 0) {
    ssize_t W = ::write(Fd, Data, N);
    if (W <= 0) {
      if (W < 0 && errno == EINTR)
        continue;
      return;
    }
    Data += W;
    N -= static_cast<std::size_t>(W);
  }
}

} // namespace

IsolatedOutcome sldb::runIsolated(
    unsigned TimeoutMs,
    const std::function<std::pair<bool, std::string>()> &Check) {
  IsolatedOutcome Out;

  int Pipe[2];
  if (::pipe(Pipe) != 0) {
    // No pipe: degrade to running in-process (a crash then kills the
    // campaign, but the alternative is not running the check at all).
    auto [Passed, Report] = Check();
    Out.Status = Passed ? IsolatedStatus::Ok : IsolatedStatus::Violation;
    Out.Report = std::move(Report);
    return Out;
  }

  pid_t Child = ::fork();
  if (Child < 0) {
    ::close(Pipe[0]);
    ::close(Pipe[1]);
    auto [Passed, Report] = Check();
    Out.Status = Passed ? IsolatedStatus::Ok : IsolatedStatus::Violation;
    Out.Report = std::move(Report);
    return Out;
  }

  if (Child == 0) {
    ::close(Pipe[0]);
    auto [Passed, Report] = Check();
    if (Report.size() > MaxReportBytes)
      Report.resize(MaxReportBytes);
    writeAll(Pipe[1], Report.data(), Report.size());
    ::close(Pipe[1]);
    ::_exit(Passed ? 0 : 1);
  }

  ::close(Pipe[1]);

  // Watchdog: poll the child with a coarse sleep; wall-clock, so a child
  // spinning in an interpreter loop (or wedged in a syscall) is caught
  // either way.
  constexpr unsigned PollUs = 2000;
  std::uint64_t WaitedUs = 0;
  const std::uint64_t LimitUs = static_cast<std::uint64_t>(TimeoutMs) * 1000;
  int WStatus = 0;
  bool Exited = false;
  for (;;) {
    pid_t W = ::waitpid(Child, &WStatus, WNOHANG);
    if (W == Child) {
      Exited = true;
      break;
    }
    if (W < 0 && errno != EINTR)
      break;
    if (WaitedUs >= LimitUs)
      break;
    ::usleep(PollUs);
    WaitedUs += PollUs;
  }
  if (!Exited) {
    ::kill(Child, SIGKILL);
    ::waitpid(Child, &WStatus, 0);
    Out.Status = IsolatedStatus::Timeout;
  }

  // Drain the child's report (the child has exited or been killed, so
  // this reads to EOF without blocking indefinitely).
  char Buf[4096];
  for (;;) {
    ssize_t N = ::read(Pipe[0], Buf, sizeof(Buf));
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      break;
    if (Out.Report.size() < MaxReportBytes)
      Out.Report.append(Buf, Buf + N);
  }
  ::close(Pipe[0]);

  if (!Exited)
    return Out;
  if (WIFEXITED(WStatus)) {
    int Code = WEXITSTATUS(WStatus);
    Out.Status = Code == 0   ? IsolatedStatus::Ok
                 : Code == 1 ? IsolatedStatus::Violation
                             : IsolatedStatus::Crash;
  } else if (WIFSIGNALED(WStatus)) {
    Out.Status = IsolatedStatus::Crash;
    Out.Signal = WTERMSIG(WStatus);
  } else {
    Out.Status = IsolatedStatus::Crash;
  }
  return Out;
}
