//===- fuzz/Isolation.cpp -------------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Isolation.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace sldb;

const char *sldb::isolatedStatusName(IsolatedStatus S) {
  switch (S) {
  case IsolatedStatus::Ok:
    return "ok";
  case IsolatedStatus::Violation:
    return "violation";
  case IsolatedStatus::Crash:
    return "crash";
  case IsolatedStatus::Timeout:
    return "timeout";
  }
  return "?";
}

namespace {

/// Cap on the child's report so it always fits the pipe's kernel buffer:
/// the parent only reads after the child exits, and a child blocked on a
/// full pipe would read as a hang.
constexpr std::size_t MaxReportBytes = 60'000;

void writeAll(int Fd, const char *Data, std::size_t N) {
  while (N > 0) {
    ssize_t W = ::write(Fd, Data, N);
    if (W <= 0) {
      if (W < 0 && errno == EINTR)
        continue;
      return;
    }
    Data += W;
    N -= static_cast<std::size_t>(W);
  }
}

/// Reaps \p Child with a blocking waitpid, retrying on EINTR so no exit
/// path can leave a zombie behind (a pool of workers each leaking one
/// per unit would exhaust the process table mid-campaign).
void reapBlocking(pid_t Child, int &WStatus) {
  for (;;) {
    pid_t W = ::waitpid(Child, &WStatus, 0);
    if (W == Child || (W < 0 && errno != EINTR))
      return;
  }
}

std::uint64_t nowUs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace

IsolatedOutcome sldb::runIsolated(
    unsigned TimeoutMs,
    const std::function<std::pair<bool, std::string>()> &Check) {
  IsolatedOutcome Out;

  int Pipe[2];
  if (::pipe(Pipe) != 0) {
    // No pipe: degrade to running in-process (a crash then kills the
    // campaign, but the alternative is not running the check at all).
    auto [Passed, Report] = Check();
    Out.Status = Passed ? IsolatedStatus::Ok : IsolatedStatus::Violation;
    Out.Report = std::move(Report);
    return Out;
  }

  pid_t Child = ::fork();
  if (Child < 0) {
    ::close(Pipe[0]);
    ::close(Pipe[1]);
    auto [Passed, Report] = Check();
    Out.Status = Passed ? IsolatedStatus::Ok : IsolatedStatus::Violation;
    Out.Report = std::move(Report);
    return Out;
  }

  if (Child == 0) {
    ::close(Pipe[0]);
    auto [Passed, Report] = Check();
    if (Report.size() > MaxReportBytes)
      Report.resize(MaxReportBytes);
    writeAll(Pipe[1], Report.data(), Report.size());
    ::close(Pipe[1]);
    ::_exit(Passed ? 0 : 1);
  }

  ::close(Pipe[1]);
  // Non-blocking read end: when runIsolated runs from a worker pool, a
  // sibling worker's child forked inside our pipe's lifetime inherits a
  // copy of our write end, so draining "to EOF" could block until that
  // unrelated child exits.  With O_NONBLOCK the post-reap drain stops at
  // EAGAIN instead — everything our own child wrote before _exit is
  // already in the kernel buffer (the report cap keeps it under one
  // pipe buffer), so nothing is lost.
  ::fcntl(Pipe[0], F_SETFL, O_NONBLOCK);

  // Watchdog: wall-clock deadline, so a child spinning in an
  // interpreter loop (or wedged in a syscall) is caught either way.
  // Poll with exponential backoff — a pool runs one watchdog per
  // worker, and a tight poll per child would burn a core each; backoff
  // keeps wakeups negligible while still catching a fast child within
  // a few hundred microseconds.
  const std::uint64_t DeadlineUs =
      nowUs() + static_cast<std::uint64_t>(TimeoutMs) * 1000;
  unsigned SleepUs = 200;
  constexpr unsigned MaxSleepUs = 20'000;
  int WStatus = 0;
  bool Exited = false;
  for (;;) {
    pid_t W = ::waitpid(Child, &WStatus, WNOHANG);
    if (W == Child) {
      Exited = true;
      break;
    }
    if (W < 0 && errno != EINTR) {
      // waitpid refused (should not happen for our own child): reap
      // defensively below rather than risk a zombie.
      break;
    }
    if (nowUs() >= DeadlineUs)
      break;
    ::usleep(SleepUs);
    SleepUs = std::min(SleepUs * 2, MaxSleepUs);
  }
  if (!Exited) {
    ::kill(Child, SIGKILL);
    reapBlocking(Child, WStatus);
    Out.Status = IsolatedStatus::Timeout;
  }

  // Drain the child's buffered report (child already reaped, so all of
  // its writes are visible; EAGAIN/EOF both mean done).
  char Buf[4096];
  for (;;) {
    ssize_t N = ::read(Pipe[0], Buf, sizeof(Buf));
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      break;
    if (Out.Report.size() < MaxReportBytes)
      Out.Report.append(Buf, Buf + N);
  }
  ::close(Pipe[0]);

  if (!Exited)
    return Out;
  if (WIFEXITED(WStatus)) {
    int Code = WEXITSTATUS(WStatus);
    Out.Status = Code == 0   ? IsolatedStatus::Ok
                 : Code == 1 ? IsolatedStatus::Violation
                             : IsolatedStatus::Crash;
  } else if (WIFSIGNALED(WStatus)) {
    Out.Status = IsolatedStatus::Crash;
    Out.Signal = WTERMSIG(WStatus);
  } else {
    Out.Status = IsolatedStatus::Crash;
  }
  return Out;
}
