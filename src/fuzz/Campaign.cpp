//===- fuzz/Campaign.cpp --------------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Campaign.h"

#include "fuzz/Reduce.h"

#include <filesystem>
#include <fstream>

using namespace sldb;

unsigned CampaignCoverage::fired(const std::string &PassName) const {
  unsigned N = 0;
  for (const PassFiring &F : Firings)
    if (F.Name == PassName)
      N += F.Changed;
  return N;
}

std::vector<Violation> sldb::checkProgram(const std::string &Src,
                                          bool Promote,
                                          unsigned MaxStops) {
  LockstepOptions LO;
  LO.Promote = Promote;
  LO.MaxStops = MaxStops;
  LockstepResult R = runLockstep(Src, LO);
  if (!R.Compiled) {
    // Surface the compile failure as a violation so campaign-level
    // accounting never silently drops a program.
    return {{ViolationKind::LockstepDiverged, InvalidFunc, InvalidStmt, "",
             "does not compile: " + R.CompileError}};
  }
  return checkSoundness(R);
}

std::string sldb::renderFailure(const CampaignFailure &F) {
  std::string S;
  S += "// sldb-fuzz reproducer\n";
  S += "// seed: " + std::to_string(F.Seed) + "\n";
  S += "// promote-vars: " + std::string(F.Promote ? "on" : "off") + "\n";
  for (const Violation &V : F.Violations)
    S += "// violation: " + V.str() + "\n";
  S += "//\n";
  S += "// Reproduce: sldb-fuzz --repro <this file>";
  S += F.Promote ? "\n" : " --no-promote\n";
  S += F.Reduced.empty() ? F.Source : F.Reduced;
  return S;
}

namespace {

/// Shrink predicate: still compiles and still produces a violation of
/// the original kind (any statement/variable — the shrinker may move
/// statement numbers around).
bool sameKindStillFails(const std::string &Candidate, bool Promote,
                        ViolationKind Kind, unsigned MaxStops) {
  for (const Violation &V : checkProgram(Candidate, Promote, MaxStops))
    if (V.Kind == Kind &&
        V.Detail.rfind("does not compile", 0) == std::string::npos)
      return true;
  return false;
}

} // namespace

CampaignResult sldb::runCampaign(const CampaignConfig &C) {
  CampaignResult R;
  for (unsigned I = 0; I < C.Count; ++I) {
    std::uint32_t Seed = C.Seed + I;
    std::string Src = generateProgram(Seed, C.Gen);
    ++R.Programs;

    for (int Mode = 0; Mode < (C.BothPromoteModes ? 2 : 1); ++Mode) {
      bool Promote = C.BothPromoteModes ? Mode == 0 : C.Promote;
      LockstepOptions LO;
      LO.Promote = Promote;
      LO.MaxStops = C.MaxStops;
      // Instrument the pipeline once per program: the IR pipeline does
      // not depend on the codegen configuration.
      LO.InstrumentPasses = Promote || !C.BothPromoteModes;
      LockstepResult LR = runLockstep(Src, LO);
      ++R.Runs;

      if (!LR.Compiled) {
        ++R.FailedCompiles;
        CampaignFailure F;
        F.Seed = Seed;
        F.Promote = Promote;
        F.Source = Src;
        F.Violations = {{ViolationKind::LockstepDiverged, InvalidFunc,
                         InvalidStmt, "",
                         "generated program does not compile: " +
                             LR.CompileError}};
        R.Failures.push_back(std::move(F));
        break; // The other mode cannot compile either.
      }

      R.Stops += LR.Stops.size();
      for (const StopObservation &S : LR.Stops)
        R.Observations += S.Vars.size();

      if (LO.InstrumentPasses) {
        if (R.Coverage.Firings.empty()) {
          R.Coverage.Firings = LR.Firings;
        } else {
          for (std::size_t S = 0;
               S < R.Coverage.Firings.size() && S < LR.Firings.size(); ++S)
            R.Coverage.Firings[S].Changed += LR.Firings[S].Changed;
        }
        if (LR.NumHoisted)
          ++R.Coverage.WithHoisted;
        if (LR.NumSunk)
          ++R.Coverage.WithSunk;
        if (LR.NumDeadMarks)
          ++R.Coverage.WithDeadMarks;
        if (LR.NumAvailMarks)
          ++R.Coverage.WithAvailMarks;
        if (LR.NumSRRecords)
          ++R.Coverage.WithSRRecords;
      }

      std::vector<Violation> Vs = checkSoundness(LR);
      if (Vs.empty())
        continue;

      CampaignFailure F;
      F.Seed = Seed;
      F.Promote = Promote;
      F.Source = Src;
      F.Violations = std::move(Vs);
      if (C.Shrink) {
        ViolationKind Kind = F.Violations.front().Kind;
        F.Reduced = reduceProgram(
            Src,
            [&](const std::string &Cand) {
              return sameKindStillFails(Cand, Promote, Kind, C.MaxStops);
            },
            /*MaxChecks=*/400);
      }
      if (C.WriteFailures) {
        std::error_code EC;
        std::filesystem::create_directories(C.FailureDir, EC);
        F.Path = C.FailureDir + "/seed-" + std::to_string(Seed) +
                 (Promote ? "-promote" : "-frame") + ".minic";
        std::ofstream Out(F.Path);
        Out << renderFailure(F);
      }
      R.Failures.push_back(std::move(F));
    }
  }
  return R;
}
