//===- fuzz/Campaign.cpp --------------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Parallel execution model: both campaign runners decompose into
// independent work units — (seed, promote-mode) for the differential
// campaign, (seed, fault-point) for the injection campaign — and fan the
// units across a work-stealing ThreadPool.  Every unit writes its
// outcome into a slot indexed by its position in the canonical
// seed-major unit order; after the pool drains, a single-threaded merge
// walks the slots *in that order* to build the result.  The report is
// therefore byte-identical for any --jobs value (including 1, which
// runs inline without threads): scheduling can only change *when* a
// slot is filled, never what the merge reads from it.
//
// Thread confinement: a unit does everything on one worker thread —
// generate, arm its fault (FaultInjector state is thread_local),
// compile, run, judge, shrink — so no unit can observe another's armed
// fault or PRNG stream.  Reproducer files are written by the merge, not
// the workers, so filename dedup needs no locking.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Campaign.h"

#include "eval/Levels.h"
#include "fuzz/Isolation.h"
#include "fuzz/Reduce.h"
#include "support/FaultInjector.h"
#include "support/Interrupt.h"
#include "support/Sharder.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"

#include <filesystem>
#include <fstream>
#include <limits>
#include <set>

using namespace sldb;

unsigned CampaignCoverage::fired(const std::string &PassName) const {
  unsigned N = 0;
  for (const PassFiring &F : Firings)
    if (F.Name == PassName)
      N += F.Changed;
  return N;
}

std::vector<Violation> sldb::checkProgram(const std::string &Src,
                                          bool Promote, unsigned MaxStops,
                                          const OptOptions *Opts) {
  LockstepOptions LO;
  if (Opts)
    LO.Opts = *Opts;
  LO.Promote = Promote;
  LO.MaxStops = MaxStops;
  LockstepResult R = runLockstep(Src, LO);
  if (!R.Compiled) {
    // Surface the compile failure as a violation so campaign-level
    // accounting never silently drops a program.
    return {{ViolationKind::LockstepDiverged, InvalidFunc, InvalidStmt, "",
             "does not compile: " + R.CompileError}};
  }
  return checkSoundness(R);
}

std::string sldb::renderFailure(const CampaignFailure &F) {
  std::string S;
  S += "// sldb-fuzz reproducer\n";
  S += "// seed: " + std::to_string(F.Seed) + "\n";
  S += "// promote-vars: " + std::string(F.Promote ? "on" : "off") + "\n";
  if (!F.FaultName.empty())
    S += "// injected-fault: " + F.FaultName + "\n";
  if (!F.Level.empty())
    S += "// level: " + F.Level + "\n";
  if (!F.ProcessOutcome.empty())
    S += "// process-outcome: " + F.ProcessOutcome + "\n";
  for (const Violation &V : F.Violations)
    S += "// violation: " + V.str() + "\n";
  S += "//\n";
  S += "// Reproduce: sldb-fuzz --repro <this file>";
  if (!F.Level.empty())
    S += " --level " + F.Level;
  S += F.Promote ? "\n" : " --no-promote\n";
  S += F.Reduced.empty() ? F.Source : F.Reduced;
  return S;
}

namespace {

/// Shrink predicate: still compiles and still produces a violation of
/// the original kind (any statement/variable — the shrinker may move
/// statement numbers around).
bool sameKindStillFails(const std::string &Candidate, bool Promote,
                        ViolationKind Kind, unsigned MaxStops,
                        const OptOptions *Opts = nullptr) {
  for (const Violation &V : checkProgram(Candidate, Promote, MaxStops, Opts))
    if (V.Kind == Kind &&
        V.Detail.rfind("does not compile", 0) == std::string::npos)
      return true;
  return false;
}

std::string processOutcomeText(const IsolatedOutcome &O) {
  if (O.Status == IsolatedStatus::Timeout)
    return "timeout (watchdog expired)";
  if (O.Signal != 0)
    return "crash (signal " + std::to_string(O.Signal) + ")";
  return "crash (abnormal exit)";
}

/// Rejects configurations the runners cannot execute faithfully.
/// Returns an empty string when valid.
std::string configError(std::uint32_t Seed, unsigned Count,
                        unsigned ShardIndex, unsigned ShardCount) {
  const std::uint64_t Last =
      static_cast<std::uint64_t>(Seed) + (Count ? Count - 1 : 0);
  if (Last > std::numeric_limits<std::uint32_t>::max())
    return "seed range overflows 32 bits: --seed " + std::to_string(Seed) +
           " --count " + std::to_string(Count) + " reaches seed " +
           std::to_string(Last) +
           " > 4294967295; later seeds would wrap and re-run earlier "
           "programs (double-counting coverage) — split the range or "
           "lower --seed/--count";
  if (ShardCount == 0)
    return "shard count must be >= 1";
  if (ShardIndex >= ShardCount)
    return "shard index " + std::to_string(ShardIndex) +
           " out of range for " + std::to_string(ShardCount) + " shard(s)";
  return "";
}

/// Merge-time reproducer writer.  The stem already encodes (seed, mode,
/// fault), so collisions only arise if one campaign produces two
/// records for the same triple; a numeric suffix then keeps both
/// instead of silently clobbering the first.
std::string writeReproducerDeduped(const CampaignFailure &F,
                                   const std::string &Dir,
                                   std::set<std::string> &UsedPaths) {
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  std::string Stem = Dir + "/seed-" + std::to_string(F.Seed) +
                     (F.FaultName.empty() ? "" : "-" + F.FaultName) +
                     (F.Promote ? "-promote" : "-frame");
  std::string Path = Stem + ".minic";
  for (unsigned N = 2; !UsedPaths.insert(Path).second; ++N)
    Path = Stem + "-" + std::to_string(N) + ".minic";
  std::ofstream Out(Path);
  Out << renderFailure(F);
  return Path;
}

/// Builds the crash/hang record for a seed the isolation layer caught,
/// reducing it with a fork-based predicate (re-running the candidate in
/// this process would reproduce the crash in the campaign itself).
CampaignFailure
makeProcessFailure(std::uint32_t Seed, bool Promote, const std::string &Src,
                   const std::string &FaultName, const IsolatedOutcome &O,
                   bool Shrink, unsigned TimeoutMs,
                   const std::function<std::pair<bool, std::string>(
                       const std::string &)> &Check) {
  CampaignFailure F;
  F.Seed = Seed;
  F.Promote = Promote;
  F.Source = Src;
  F.FaultName = FaultName;
  F.ProcessOutcome = processOutcomeText(O);
  ViolationKind K = O.Status == IsolatedStatus::Timeout
                        ? ViolationKind::ProcessHang
                        : ViolationKind::ProcessCrash;
  F.Violations = {{K, InvalidFunc, InvalidStmt, "", F.ProcessOutcome}};
  if (Shrink)
    F.Reduced = reduceProgram(
        Src,
        [&](const std::string &Cand) {
          IsolatedOutcome CO =
              runIsolated(TimeoutMs, [&] { return Check(Cand); });
          return CO.Status == IsolatedStatus::Crash ||
                 CO.Status == IsolatedStatus::Timeout;
        },
        /*MaxChecks=*/120);
  return F;
}

/// Translates pool stats into campaign-level worker stats, resolving
/// each worker's slowest unit index to its seed via \p SeedOfUnit.
std::vector<CampaignWorkerStats>
toCampaignStats(const std::vector<WorkerStats> &WS,
                const std::function<std::uint32_t(std::size_t)> &SeedOfUnit) {
  std::vector<CampaignWorkerStats> Out;
  Out.reserve(WS.size());
  for (const WorkerStats &S : WS) {
    CampaignWorkerStats C;
    C.Worker = S.Worker;
    C.Units = S.Tasks;
    C.Steals = S.Steals;
    C.InitialQueue = S.InitialQueue;
    C.BusyUs = S.BusyUs;
    C.SlowestUs = S.SlowestUs;
    if (S.SlowestIndex != SIZE_MAX)
      C.SlowestSeed = SeedOfUnit(S.SlowestIndex);
    Out.push_back(C);
  }
  return Out;
}

} // namespace

bool sldb::isUnsoundViolation(ViolationKind K) {
  return K == ViolationKind::UnsoundCurrent ||
         K == ViolationKind::WrongRecovery ||
         K == ViolationKind::MissedUninitialized;
}

//===----------------------------------------------------------------------===//
// Differential campaign
//===----------------------------------------------------------------------===//

namespace {

/// One (seed, mode) unit's outcome: everything the merge needs, nothing
/// shared while workers run.
struct ModeOutcome {
  bool Skipped = false;     ///< Fast-drained after an interrupt.
  bool Ran = false;         ///< Counts as a lockstep run.
  bool CompileFail = false; ///< Generator bug; mode 1 is skipped.
  bool HasFailure = false;  ///< F holds a soundness/process failure.
  CampaignFailure F;
  std::uint64_t Stops = 0;
  std::uint64_t Observations = 0;
  bool Instrumented = false;
  std::vector<PassFiring> Firings;
  bool Hoisted = false, Sunk = false, DeadMarks = false,
       AvailMarks = false, SRRecords = false;
  std::vector<TraceEvent> Trace; ///< Unit-local capture (CollectTrace).
};

/// Runs one (seed, mode) unit.  Thread-confined: everything from
/// generation to shrinking happens on the calling worker.
ModeOutcome runModeUnitImpl(const CampaignConfig &C, std::uint32_t Seed,
                            bool Promote, bool Instrument) {
  ModeOutcome O;
  std::string Src = generateProgram(Seed, C.Gen);

  // Level campaigns override the optimized build's pass set; validated
  // by runCampaign before any unit runs.
  const LevelSpec *Spec = C.Level.empty() ? nullptr : findLevel(C.Level);
  const OptOptions *Opts = Spec ? &Spec->Opts : nullptr;

  if (C.Isolate) {
    // Containment first: probe the (seed, mode) in a forked child.
    // A clean child skips the in-process run (its coverage stats are
    // lost to the fork — the documented trade); a child that failed
    // *cleanly* is re-run in-process below for the full
    // shrink-and-record path, which is safe precisely because the
    // child proved the seed does not bring the process down.
    auto Probe = [&](const std::string &S) -> std::pair<bool, std::string> {
      std::vector<Violation> Vs = checkProgram(S, Promote, C.MaxStops, Opts);
      std::string Rep;
      for (const Violation &V : Vs)
        Rep += V.str() + "\n";
      return {Vs.empty(), Rep};
    };
    IsolatedOutcome IO =
        runIsolated(C.TimeoutMs, [&] { return Probe(Src); });
    if (IO.Status == IsolatedStatus::Ok) {
      O.Ran = true;
      return O;
    }
    if (IO.Status == IsolatedStatus::Crash ||
        IO.Status == IsolatedStatus::Timeout) {
      O.Ran = true;
      O.F = makeProcessFailure(Seed, Promote, Src, "", IO, C.Shrink,
                               C.TimeoutMs, Probe);
      O.F.Level = C.Level;
      O.HasFailure = true;
      return O;
    }
  }

  LockstepOptions LO;
  if (Opts)
    LO.Opts = *Opts;
  LO.Promote = Promote;
  LO.MaxStops = C.MaxStops;
  LO.InstrumentPasses = Instrument;
  LockstepResult LR = runLockstep(Src, LO);
  O.Ran = true;

  if (!LR.Compiled) {
    O.CompileFail = true;
    O.F.Seed = Seed;
    O.F.Promote = Promote;
    O.F.Source = Src;
    O.F.Level = C.Level;
    O.F.Violations = {{ViolationKind::LockstepDiverged, InvalidFunc,
                       InvalidStmt, "",
                       "generated program does not compile: " +
                           LR.CompileError}};
    return O;
  }

  O.Stops = LR.Stops.size();
  for (const StopObservation &S : LR.Stops)
    O.Observations += S.Vars.size();

  if (Instrument) {
    O.Instrumented = true;
    O.Firings = LR.Firings;
    O.Hoisted = LR.NumHoisted != 0;
    O.Sunk = LR.NumSunk != 0;
    O.DeadMarks = LR.NumDeadMarks != 0;
    O.AvailMarks = LR.NumAvailMarks != 0;
    O.SRRecords = LR.NumSRRecords != 0;
  }

  std::vector<Violation> Vs = checkSoundness(LR);
  if (Vs.empty())
    return O;

  O.F.Seed = Seed;
  O.F.Promote = Promote;
  O.F.Source = Src;
  O.F.Level = C.Level;
  O.F.Violations = std::move(Vs);
  if (C.Shrink) {
    ViolationKind Kind = O.F.Violations.front().Kind;
    O.F.Reduced = reduceProgram(
        Src,
        [&](const std::string &Cand) {
          return sameKindStillFails(Cand, Promote, Kind, C.MaxStops, Opts);
        },
        /*MaxChecks=*/400);
  }
  O.HasFailure = true;
  return O;
}

/// Trace-capturing wrapper: diverts the worker thread's events for the
/// unit's duration so the merge can rebuild a deterministic, seed-major
/// trace whatever the pool's scheduling was.
ModeOutcome runModeUnit(const CampaignConfig &C, std::uint32_t Seed,
                        bool Promote, bool Instrument) {
  Stats::counter("campaign.units").add();
  if (!C.CollectTrace)
    return runModeUnitImpl(C, Seed, Promote, Instrument);
  TraceCapture Cap;
  ModeOutcome O;
  {
    TraceSpan Span("campaign.unit", "campaign");
    Span.arg("seed", static_cast<std::uint64_t>(Seed));
    Span.arg("promote", Promote ? "on" : "off");
    O = runModeUnitImpl(C, Seed, Promote, Instrument);
  }
  O.Trace = Cap.take();
  return O;
}

} // namespace

CampaignResult sldb::runCampaign(const CampaignConfig &Cfg) {
  CampaignResult R;
  R.ConfigError =
      configError(Cfg.Seed, Cfg.Count, Cfg.ShardIndex, Cfg.ShardCount);
  if (!R.ConfigError.empty())
    return R;

  // Level campaigns collapse to one mode with the level's own settings.
  CampaignConfig C = Cfg;
  if (!C.Level.empty()) {
    const LevelSpec *Spec = findLevel(C.Level);
    if (!Spec) {
      R.ConfigError = "unknown pipeline level: " + C.Level;
      return R;
    }
    if (!judgeable(*Spec)) {
      R.ConfigError = "pipeline level '" + C.Level +
                      "' duplicates or splices statements and cannot be "
                      "judged by the lockstep oracle";
      return R;
    }
    C.BothPromoteModes = false;
    C.Promote = Spec->Promote;
  }

  const ShardRange Shard =
      Sharder::slice(C.Count, C.ShardIndex, C.ShardCount);
  const unsigned Modes = C.BothPromoteModes ? 2 : 1;
  const std::size_t NumUnits = Shard.size() * Modes;

  // Canonical unit order: seed-major, promote mode before frame mode —
  // the exact order the serial loop visited.
  auto SeedOfUnit = [&](std::size_t U) {
    return static_cast<std::uint32_t>(C.Seed + Shard.Begin + U / Modes);
  };
  auto PromoteOfUnit = [&](std::size_t U) {
    return C.BothPromoteModes ? (U % Modes) == 0 : C.Promote;
  };

  std::vector<ModeOutcome> Out(NumUnits);
  ThreadPool Pool(C.Jobs ? C.Jobs : ThreadPool::hardwareJobs());
  std::vector<WorkerStats> WS =
      Pool.parallelFor(NumUnits, [&](std::size_t U, unsigned) {
        // Interrupt fast-drain: remaining units become no-ops so the
        // pool empties quickly and the merge below still flushes every
        // finished unit's reproducers (partial report, nothing lost).
        if (interruptRequested()) {
          Out[U].Skipped = true;
          return;
        }
        bool Promote = PromoteOfUnit(U);
        // Instrument the pipeline once per program: the IR pipeline
        // does not depend on the codegen configuration.
        bool Instrument = Promote || !C.BothPromoteModes;
        Out[U] = runModeUnit(C, SeedOfUnit(U), Promote, Instrument);
      });
  R.Workers = toCampaignStats(WS, SeedOfUnit);

  // Deterministic merge in unit order.
  std::set<std::string> UsedPaths;
  for (std::size_t SI = 0; SI < Shard.size(); ++SI) {
    bool SeedRan = false;
    for (unsigned M = 0; M < Modes; ++M)
      SeedRan |= !Out[SI * Modes + M].Skipped;
    if (SeedRan)
      ++R.Programs;
    for (unsigned M = 0; M < Modes; ++M) {
      ModeOutcome &O = Out[SI * Modes + M];
      if (O.Skipped) {
        ++R.SkippedUnits;
        continue;
      }
      // Trace first: the compile-fail break below must not drop the
      // unit's events.
      for (TraceEvent &E : O.Trace) {
        E.Tid = static_cast<std::uint32_t>(SI * Modes + M + 1);
        R.Trace.push_back(std::move(E));
      }
      if (O.Ran)
        ++R.Runs;
      if (O.CompileFail) {
        ++R.FailedCompiles;
        R.Failures.push_back(std::move(O.F));
        break; // The other mode cannot compile either.
      }
      R.Stops += O.Stops;
      R.Observations += O.Observations;
      if (O.Instrumented) {
        if (R.Coverage.Firings.empty()) {
          R.Coverage.Firings = std::move(O.Firings);
        } else {
          for (std::size_t S = 0; S < R.Coverage.Firings.size() &&
                                  S < O.Firings.size();
               ++S)
            R.Coverage.Firings[S].Changed += O.Firings[S].Changed;
        }
        R.Coverage.WithHoisted += O.Hoisted;
        R.Coverage.WithSunk += O.Sunk;
        R.Coverage.WithDeadMarks += O.DeadMarks;
        R.Coverage.WithAvailMarks += O.AvailMarks;
        R.Coverage.WithSRRecords += O.SRRecords;
      }
      if (O.HasFailure) {
        if (C.WriteFailures)
          O.F.Path = writeReproducerDeduped(
              O.F,
              O.F.ProcessOutcome.empty() ? C.FailureDir : C.CrashDir,
              UsedPaths);
        R.Failures.push_back(std::move(O.F));
      }
    }
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Fault-injection campaign
//===----------------------------------------------------------------------===//

namespace {

/// Runs one seed under one armed fault and judges it.  The fault is
/// armed on the calling thread for the whole lockstep run (the oracle
/// side compiles and runs with injection suspended, see fuzz/Oracle.cpp)
/// and disarmed before returning.
std::vector<Violation> injectCheck(const std::string &Src,
                                   const InjectCampaignConfig &C,
                                   FaultId Id, std::uint32_t Seed) {
  FaultInjector::arm(Id, Seed);
  LockstepOptions LO;
  LO.Promote = C.Promote;
  LO.MaxStops = C.MaxStops;
  LO.Fuel = C.Fuel;
  if (!C.Level.empty())
    if (const LevelSpec *Spec = findLevel(C.Level))
      LO.Opts = Spec->Opts;
  LockstepResult R = runLockstep(Src, LO);
  FaultInjector::disarm();
  if (!R.Compiled)
    return {{ViolationKind::LockstepDiverged, InvalidFunc, InvalidStmt, "",
             "does not compile: " + R.CompileError}};
  return checkSoundness(R);
}

/// Child-side protocol for an isolated inject check: first report line
/// is the summary (compile-error / unsound / degraded / clean), then
/// one line per unsound violation.  Exit status 1 iff unsound.
std::pair<bool, std::string>
injectProbe(const std::string &Src, const InjectCampaignConfig &C,
            FaultId Id, std::uint32_t Seed) {
  std::vector<Violation> Vs = injectCheck(Src, C, Id, Seed);
  bool CompileError =
      !Vs.empty() && Vs.front().Detail.rfind("does not compile", 0) == 0;
  std::string Rep;
  std::vector<const Violation *> Unsound;
  for (const Violation &V : Vs)
    if (isUnsoundViolation(V.Kind))
      Unsound.push_back(&V);
  if (!Unsound.empty())
    Rep = "unsound\n";
  else if (CompileError)
    Rep = "compile-error\n";
  else if (!Vs.empty())
    Rep = "degraded\n";
  else
    Rep = "clean\n";
  for (const Violation *V : Unsound) {
    std::string Line = V->str();
    for (char &Ch : Line)
      if (Ch == '\n')
        Ch = ' ';
    Rep += Line + "\n";
  }
  return {Unsound.empty(), Rep};
}

/// One (seed, fault-point) unit's outcome.
struct InjectOutcome {
  bool Skipped = false; ///< Fast-drained after an interrupt.
  enum class Kind : std::uint8_t {
    Clean,
    CompileError,
    Degraded,
    Unsound,
    Crash,
    Hang
  };
  Kind K = Kind::Clean;
  bool HasFailure = false;
  CampaignFailure F;
  std::vector<TraceEvent> Trace; ///< Unit-local capture (CollectTrace).
};

/// Runs one (seed, fault-point) unit on the calling worker thread.
InjectOutcome runInjectUnitImpl(const InjectCampaignConfig &C,
                                std::uint32_t Seed, const FaultPoint &P) {
  InjectOutcome O;
  std::string Src = generateProgram(Seed, C.Gen);

  auto RecordUnsound = [&](const std::string &Report) {
    O.K = InjectOutcome::Kind::Unsound;
    O.F.Seed = Seed;
    O.F.Promote = C.Promote;
    O.F.Source = Src;
    O.F.FaultName = P.Name;
    O.F.Level = C.Level;
    O.F.Violations = {{ViolationKind::UnsoundCurrent, InvalidFunc,
                       InvalidStmt, "", Report}};
    if (C.Shrink)
      O.F.Reduced = reduceProgram(
          Src,
          [&](const std::string &Cand) {
            if (!C.Isolate) {
              for (const Violation &V : injectCheck(Cand, C, P.Id, Seed))
                if (isUnsoundViolation(V.Kind))
                  return true;
              return false;
            }
            IsolatedOutcome CO = runIsolated(C.TimeoutMs, [&] {
              return injectProbe(Cand, C, P.Id, Seed);
            });
            return CO.Status == IsolatedStatus::Violation;
          },
          /*MaxChecks=*/120);
    O.HasFailure = true;
  };

  if (!C.Isolate) {
    std::vector<Violation> Vs = injectCheck(Src, C, P.Id, Seed);
    bool CompileError =
        !Vs.empty() &&
        Vs.front().Detail.rfind("does not compile", 0) == 0;
    std::string Unsound;
    for (const Violation &V : Vs)
      if (isUnsoundViolation(V.Kind))
        Unsound += V.str() + "\n";
    if (!Unsound.empty())
      RecordUnsound(Unsound);
    else if (CompileError)
      O.K = InjectOutcome::Kind::CompileError;
    else if (!Vs.empty())
      O.K = InjectOutcome::Kind::Degraded;
    return O;
  }

  IsolatedOutcome IO =
      runIsolated(C.TimeoutMs, [&] { return injectProbe(Src, C, P.Id, Seed); });
  switch (IO.Status) {
  case IsolatedStatus::Ok:
    if (IO.Report.rfind("compile-error", 0) == 0)
      O.K = InjectOutcome::Kind::CompileError;
    else if (IO.Report.rfind("degraded", 0) == 0)
      O.K = InjectOutcome::Kind::Degraded;
    break;
  case IsolatedStatus::Violation:
    RecordUnsound(IO.Report);
    break;
  case IsolatedStatus::Crash:
  case IsolatedStatus::Timeout:
    O.K = IO.Status == IsolatedStatus::Timeout ? InjectOutcome::Kind::Hang
                                               : InjectOutcome::Kind::Crash;
    O.F = makeProcessFailure(Seed, C.Promote, Src, P.Name, IO, C.Shrink,
                             C.TimeoutMs, [&](const std::string &Cand) {
                               return injectProbe(Cand, C, P.Id, Seed);
                             });
    O.F.Level = C.Level;
    O.HasFailure = true;
    break;
  }
  return O;
}

/// Trace-capturing wrapper (see runModeUnit).
InjectOutcome runInjectUnit(const InjectCampaignConfig &C,
                            std::uint32_t Seed, const FaultPoint &P) {
  Stats::counter("campaign.units").add();
  if (!C.CollectTrace)
    return runInjectUnitImpl(C, Seed, P);
  TraceCapture Cap;
  InjectOutcome O;
  {
    TraceSpan Span("campaign.unit", "campaign");
    Span.arg("seed", static_cast<std::uint64_t>(Seed));
    Span.arg("fault", P.Name);
    O = runInjectUnitImpl(C, Seed, P);
  }
  O.Trace = Cap.take();
  return O;
}

} // namespace

InjectCampaignResult sldb::runInjectCampaign(const InjectCampaignConfig &Cfg) {
  InjectCampaignConfig C = Cfg;
  InjectCampaignResult R;
  R.ConfigError =
      configError(C.Seed, C.Count, C.ShardIndex, C.ShardCount);
  if (!R.ConfigError.empty())
    return R;
  if (!C.Level.empty()) {
    const LevelSpec *Spec = findLevel(C.Level);
    if (!Spec) {
      R.ConfigError = "unknown pipeline level: " + C.Level;
      return R;
    }
    if (!judgeable(*Spec)) {
      R.ConfigError = "pipeline level '" + C.Level +
                      "' duplicates or splices statements and cannot be "
                      "judged by the lockstep oracle";
      return R;
    }
    C.Promote = Spec->Promote;
  }

  // Every *defended* fault point: the two undefended classifier faults
  // are the oracle's teeth (their whole purpose is to be caught as
  // unsound) and are exercised by the differential suite instead.
  std::vector<const FaultPoint *> Points;
  for (const FaultPoint &P : FaultInjector::points())
    if (P.Defended)
      Points.push_back(&P);

  const ShardRange Shard =
      Sharder::slice(C.Count, C.ShardIndex, C.ShardCount);
  const std::size_t PerSeed = Points.size();
  const std::size_t NumUnits = Shard.size() * PerSeed;

  auto SeedOfUnit = [&](std::size_t U) {
    return static_cast<std::uint32_t>(C.Seed + Shard.Begin + U / PerSeed);
  };

  std::vector<InjectOutcome> Out(NumUnits);
  ThreadPool Pool(C.Jobs ? C.Jobs : ThreadPool::hardwareJobs());
  std::vector<WorkerStats> WS =
      Pool.parallelFor(NumUnits, [&](std::size_t U, unsigned) {
        if (interruptRequested()) {
          Out[U].Skipped = true;
          return;
        }
        Out[U] = runInjectUnit(C, SeedOfUnit(U), *Points[U % PerSeed]);
      });
  R.Workers = toCampaignStats(WS, SeedOfUnit);

  // Deterministic merge in (seed, fault-point) order.
  std::set<std::string> UsedPaths;
  for (std::size_t SI = 0; SI < Shard.size(); ++SI) {
    bool SeedRan = false;
    for (std::size_t PI = 0; PI < PerSeed; ++PI)
      SeedRan |= !Out[SI * PerSeed + PI].Skipped;
    if (SeedRan)
      ++R.Programs;
    for (std::size_t PI = 0; PI < PerSeed; ++PI) {
      InjectOutcome &O = Out[SI * PerSeed + PI];
      if (O.Skipped) {
        ++R.SkippedUnits;
        continue;
      }
      for (TraceEvent &E : O.Trace) {
        E.Tid = static_cast<std::uint32_t>(SI * PerSeed + PI + 1);
        R.Trace.push_back(std::move(E));
      }
      ++R.Runs;
      switch (O.K) {
      case InjectOutcome::Kind::Clean:
        break;
      case InjectOutcome::Kind::CompileError:
        ++R.CompileErrors;
        break;
      case InjectOutcome::Kind::Degraded:
        ++R.DegradedRuns;
        break;
      case InjectOutcome::Kind::Unsound:
        ++R.UnsoundRuns;
        break;
      case InjectOutcome::Kind::Crash:
        ++R.Crashes;
        break;
      case InjectOutcome::Kind::Hang:
        ++R.Hangs;
        break;
      }
      if (O.HasFailure) {
        if (C.WriteFailures)
          O.F.Path = writeReproducerDeduped(O.F, C.CrashDir, UsedPaths);
        R.Failures.push_back(std::move(O.F));
      }
    }
  }
  return R;
}
