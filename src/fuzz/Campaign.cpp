//===- fuzz/Campaign.cpp --------------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Campaign.h"

#include "fuzz/Isolation.h"
#include "fuzz/Reduce.h"
#include "support/FaultInjector.h"

#include <filesystem>
#include <fstream>

using namespace sldb;

unsigned CampaignCoverage::fired(const std::string &PassName) const {
  unsigned N = 0;
  for (const PassFiring &F : Firings)
    if (F.Name == PassName)
      N += F.Changed;
  return N;
}

std::vector<Violation> sldb::checkProgram(const std::string &Src,
                                          bool Promote,
                                          unsigned MaxStops) {
  LockstepOptions LO;
  LO.Promote = Promote;
  LO.MaxStops = MaxStops;
  LockstepResult R = runLockstep(Src, LO);
  if (!R.Compiled) {
    // Surface the compile failure as a violation so campaign-level
    // accounting never silently drops a program.
    return {{ViolationKind::LockstepDiverged, InvalidFunc, InvalidStmt, "",
             "does not compile: " + R.CompileError}};
  }
  return checkSoundness(R);
}

std::string sldb::renderFailure(const CampaignFailure &F) {
  std::string S;
  S += "// sldb-fuzz reproducer\n";
  S += "// seed: " + std::to_string(F.Seed) + "\n";
  S += "// promote-vars: " + std::string(F.Promote ? "on" : "off") + "\n";
  if (!F.FaultName.empty())
    S += "// injected-fault: " + F.FaultName + "\n";
  if (!F.ProcessOutcome.empty())
    S += "// process-outcome: " + F.ProcessOutcome + "\n";
  for (const Violation &V : F.Violations)
    S += "// violation: " + V.str() + "\n";
  S += "//\n";
  S += "// Reproduce: sldb-fuzz --repro <this file>";
  S += F.Promote ? "\n" : " --no-promote\n";
  S += F.Reduced.empty() ? F.Source : F.Reduced;
  return S;
}

namespace {

/// Shrink predicate: still compiles and still produces a violation of
/// the original kind (any statement/variable — the shrinker may move
/// statement numbers around).
bool sameKindStillFails(const std::string &Candidate, bool Promote,
                        ViolationKind Kind, unsigned MaxStops) {
  for (const Violation &V : checkProgram(Candidate, Promote, MaxStops))
    if (V.Kind == Kind &&
        V.Detail.rfind("does not compile", 0) == std::string::npos)
      return true;
  return false;
}

std::string processOutcomeText(const IsolatedOutcome &O) {
  if (O.Status == IsolatedStatus::Timeout)
    return "timeout (watchdog expired)";
  if (O.Signal != 0)
    return "crash (signal " + std::to_string(O.Signal) + ")";
  return "crash (abnormal exit)";
}

void writeReproducer(CampaignFailure &F, const std::string &Dir) {
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  F.Path = Dir + "/seed-" + std::to_string(F.Seed) +
           (F.FaultName.empty() ? "" : "-" + F.FaultName) +
           (F.Promote ? "-promote" : "-frame") + ".minic";
  std::ofstream Out(F.Path);
  Out << renderFailure(F);
}

/// Builds the crash/hang record for a seed the isolation layer caught,
/// reducing it with a fork-based predicate (re-running the candidate in
/// this process would reproduce the crash in the campaign itself).
CampaignFailure
makeProcessFailure(std::uint32_t Seed, bool Promote, const std::string &Src,
                   const std::string &FaultName, const IsolatedOutcome &O,
                   bool Shrink, unsigned TimeoutMs,
                   const std::function<std::pair<bool, std::string>(
                       const std::string &)> &Check) {
  CampaignFailure F;
  F.Seed = Seed;
  F.Promote = Promote;
  F.Source = Src;
  F.FaultName = FaultName;
  F.ProcessOutcome = processOutcomeText(O);
  ViolationKind K = O.Status == IsolatedStatus::Timeout
                        ? ViolationKind::ProcessHang
                        : ViolationKind::ProcessCrash;
  F.Violations = {{K, InvalidFunc, InvalidStmt, "", F.ProcessOutcome}};
  if (Shrink)
    F.Reduced = reduceProgram(
        Src,
        [&](const std::string &Cand) {
          IsolatedOutcome CO =
              runIsolated(TimeoutMs, [&] { return Check(Cand); });
          return CO.Status == IsolatedStatus::Crash ||
                 CO.Status == IsolatedStatus::Timeout;
        },
        /*MaxChecks=*/120);
  return F;
}

} // namespace

bool sldb::isUnsoundViolation(ViolationKind K) {
  return K == ViolationKind::UnsoundCurrent ||
         K == ViolationKind::WrongRecovery ||
         K == ViolationKind::MissedUninitialized;
}

CampaignResult sldb::runCampaign(const CampaignConfig &C) {
  CampaignResult R;
  for (unsigned I = 0; I < C.Count; ++I) {
    std::uint32_t Seed = C.Seed + I;
    std::string Src = generateProgram(Seed, C.Gen);
    ++R.Programs;

    for (int Mode = 0; Mode < (C.BothPromoteModes ? 2 : 1); ++Mode) {
      bool Promote = C.BothPromoteModes ? Mode == 0 : C.Promote;

      if (C.Isolate) {
        // Containment first: probe the (seed, mode) in a forked child.
        // A clean child skips the in-process run (its coverage stats are
        // lost to the fork — the documented trade); a child that failed
        // *cleanly* is re-run in-process below for the full
        // shrink-and-record path, which is safe precisely because the
        // child proved the seed does not bring the process down.
        auto Probe = [&](const std::string &S) -> std::pair<bool, std::string> {
          std::vector<Violation> Vs = checkProgram(S, Promote, C.MaxStops);
          std::string Rep;
          for (const Violation &V : Vs)
            Rep += V.str() + "\n";
          return {Vs.empty(), Rep};
        };
        IsolatedOutcome IO = runIsolated(C.TimeoutMs,
                                         [&] { return Probe(Src); });
        if (IO.Status == IsolatedStatus::Ok) {
          ++R.Runs;
          continue;
        }
        if (IO.Status == IsolatedStatus::Crash ||
            IO.Status == IsolatedStatus::Timeout) {
          ++R.Runs;
          CampaignFailure F = makeProcessFailure(
              Seed, Promote, Src, "", IO, C.Shrink, C.TimeoutMs, Probe);
          if (C.WriteFailures)
            writeReproducer(F, C.CrashDir);
          R.Failures.push_back(std::move(F));
          continue;
        }
      }

      LockstepOptions LO;
      LO.Promote = Promote;
      LO.MaxStops = C.MaxStops;
      // Instrument the pipeline once per program: the IR pipeline does
      // not depend on the codegen configuration.
      LO.InstrumentPasses = Promote || !C.BothPromoteModes;
      LockstepResult LR = runLockstep(Src, LO);
      ++R.Runs;

      if (!LR.Compiled) {
        ++R.FailedCompiles;
        CampaignFailure F;
        F.Seed = Seed;
        F.Promote = Promote;
        F.Source = Src;
        F.Violations = {{ViolationKind::LockstepDiverged, InvalidFunc,
                         InvalidStmt, "",
                         "generated program does not compile: " +
                             LR.CompileError}};
        R.Failures.push_back(std::move(F));
        break; // The other mode cannot compile either.
      }

      R.Stops += LR.Stops.size();
      for (const StopObservation &S : LR.Stops)
        R.Observations += S.Vars.size();

      if (LO.InstrumentPasses) {
        if (R.Coverage.Firings.empty()) {
          R.Coverage.Firings = LR.Firings;
        } else {
          for (std::size_t S = 0;
               S < R.Coverage.Firings.size() && S < LR.Firings.size(); ++S)
            R.Coverage.Firings[S].Changed += LR.Firings[S].Changed;
        }
        if (LR.NumHoisted)
          ++R.Coverage.WithHoisted;
        if (LR.NumSunk)
          ++R.Coverage.WithSunk;
        if (LR.NumDeadMarks)
          ++R.Coverage.WithDeadMarks;
        if (LR.NumAvailMarks)
          ++R.Coverage.WithAvailMarks;
        if (LR.NumSRRecords)
          ++R.Coverage.WithSRRecords;
      }

      std::vector<Violation> Vs = checkSoundness(LR);
      if (Vs.empty())
        continue;

      CampaignFailure F;
      F.Seed = Seed;
      F.Promote = Promote;
      F.Source = Src;
      F.Violations = std::move(Vs);
      if (C.Shrink) {
        ViolationKind Kind = F.Violations.front().Kind;
        F.Reduced = reduceProgram(
            Src,
            [&](const std::string &Cand) {
              return sameKindStillFails(Cand, Promote, Kind, C.MaxStops);
            },
            /*MaxChecks=*/400);
      }
      if (C.WriteFailures) {
        std::error_code EC;
        std::filesystem::create_directories(C.FailureDir, EC);
        F.Path = C.FailureDir + "/seed-" + std::to_string(Seed) +
                 (Promote ? "-promote" : "-frame") + ".minic";
        std::ofstream Out(F.Path);
        Out << renderFailure(F);
      }
      R.Failures.push_back(std::move(F));
    }
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Fault-injection campaign
//===----------------------------------------------------------------------===//

namespace {

/// Runs one seed under one armed fault and judges it.  The fault is
/// armed for the whole lockstep run (the oracle side compiles and runs
/// with injection suspended, see fuzz/Oracle.cpp) and disarmed before
/// returning.
std::vector<Violation> injectCheck(const std::string &Src,
                                   const InjectCampaignConfig &C,
                                   FaultId Id, std::uint32_t Seed) {
  FaultInjector::arm(Id, Seed);
  LockstepOptions LO;
  LO.Promote = C.Promote;
  LO.MaxStops = C.MaxStops;
  LO.Fuel = C.Fuel;
  LockstepResult R = runLockstep(Src, LO);
  FaultInjector::disarm();
  if (!R.Compiled)
    return {{ViolationKind::LockstepDiverged, InvalidFunc, InvalidStmt, "",
             "does not compile: " + R.CompileError}};
  return checkSoundness(R);
}

/// Child-side protocol for an isolated inject check: first report line
/// is the summary (compile-error / unsound / degraded / clean), then
/// one line per unsound violation.  Exit status 1 iff unsound.
std::pair<bool, std::string>
injectProbe(const std::string &Src, const InjectCampaignConfig &C,
            FaultId Id, std::uint32_t Seed) {
  std::vector<Violation> Vs = injectCheck(Src, C, Id, Seed);
  bool CompileError =
      !Vs.empty() && Vs.front().Detail.rfind("does not compile", 0) == 0;
  std::string Rep;
  std::vector<const Violation *> Unsound;
  for (const Violation &V : Vs)
    if (isUnsoundViolation(V.Kind))
      Unsound.push_back(&V);
  if (!Unsound.empty())
    Rep = "unsound\n";
  else if (CompileError)
    Rep = "compile-error\n";
  else if (!Vs.empty())
    Rep = "degraded\n";
  else
    Rep = "clean\n";
  for (const Violation *V : Unsound) {
    std::string Line = V->str();
    for (char &Ch : Line)
      if (Ch == '\n')
        Ch = ' ';
    Rep += Line + "\n";
  }
  return {Unsound.empty(), Rep};
}

} // namespace

InjectCampaignResult sldb::runInjectCampaign(const InjectCampaignConfig &C) {
  InjectCampaignResult R;

  // Every *defended* fault point: the two undefended classifier faults
  // are the oracle's teeth (their whole purpose is to be caught as
  // unsound) and are exercised by the differential suite instead.
  std::vector<const FaultPoint *> Points;
  for (const FaultPoint &P : FaultInjector::points())
    if (P.Defended)
      Points.push_back(&P);

  for (unsigned I = 0; I < C.Count; ++I) {
    std::uint32_t Seed = C.Seed + I;
    std::string Src = generateProgram(Seed, C.Gen);
    ++R.Programs;

    for (const FaultPoint *P : Points) {
      ++R.Runs;
      auto RecordUnsound = [&](const std::string &Report) {
        ++R.UnsoundRuns;
        CampaignFailure F;
        F.Seed = Seed;
        F.Promote = C.Promote;
        F.Source = Src;
        F.FaultName = P->Name;
        F.Violations = {{ViolationKind::UnsoundCurrent, InvalidFunc,
                         InvalidStmt, "", Report}};
        if (C.Shrink)
          F.Reduced = reduceProgram(
              Src,
              [&](const std::string &Cand) {
                if (!C.Isolate) {
                  for (const Violation &V :
                       injectCheck(Cand, C, P->Id, Seed))
                    if (isUnsoundViolation(V.Kind))
                      return true;
                  return false;
                }
                IsolatedOutcome CO = runIsolated(C.TimeoutMs, [&] {
                  return injectProbe(Cand, C, P->Id, Seed);
                });
                return CO.Status == IsolatedStatus::Violation;
              },
              /*MaxChecks=*/120);
        if (C.WriteFailures)
          writeReproducer(F, C.CrashDir);
        R.Failures.push_back(std::move(F));
      };

      if (!C.Isolate) {
        std::vector<Violation> Vs = injectCheck(Src, C, P->Id, Seed);
        bool CompileError = !Vs.empty() &&
                            Vs.front().Detail.rfind("does not compile", 0) ==
                                0;
        std::string Unsound;
        for (const Violation &V : Vs)
          if (isUnsoundViolation(V.Kind))
            Unsound += V.str() + "\n";
        if (!Unsound.empty())
          RecordUnsound(Unsound);
        else if (CompileError)
          ++R.CompileErrors;
        else if (!Vs.empty())
          ++R.DegradedRuns;
        continue;
      }

      IsolatedOutcome IO = runIsolated(C.TimeoutMs, [&] {
        return injectProbe(Src, C, P->Id, Seed);
      });
      switch (IO.Status) {
      case IsolatedStatus::Ok: {
        if (IO.Report.rfind("compile-error", 0) == 0)
          ++R.CompileErrors;
        else if (IO.Report.rfind("degraded", 0) == 0)
          ++R.DegradedRuns;
        break;
      }
      case IsolatedStatus::Violation:
        RecordUnsound(IO.Report);
        break;
      case IsolatedStatus::Crash:
      case IsolatedStatus::Timeout: {
        if (IO.Status == IsolatedStatus::Timeout)
          ++R.Hangs;
        else
          ++R.Crashes;
        CampaignFailure F = makeProcessFailure(
            Seed, C.Promote, Src, P->Name, IO, C.Shrink, C.TimeoutMs,
            [&](const std::string &Cand) {
              return injectProbe(Cand, C, P->Id, Seed);
            });
        if (C.WriteFailures)
          writeReproducer(F, C.CrashDir);
        R.Failures.push_back(std::move(F));
        break;
      }
      }
    }
  }
  return R;
}
