//===- fuzz/QualityCampaign.cpp -------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Same parallel execution model as Campaign.cpp: independent units —
// (seed, promote-mode) for the stepping campaign, one seed for the
// cross-level campaign — write their outcomes into slots indexed by
// canonical seed-major order, and a single-threaded merge walks the
// slots in that order.  Reports are byte-identical for any --jobs value.
//
//===----------------------------------------------------------------------===//

#include "fuzz/QualityCampaign.h"

#include "eval/Levels.h"
#include "fuzz/Reduce.h"
#include "support/Interrupt.h"
#include "support/Sharder.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"

#include <filesystem>
#include <fstream>
#include <limits>
#include <set>

using namespace sldb;

namespace {

/// Config validation, identical contract to Campaign.cpp's: the seed
/// range must not wrap and the shard spec must be in range.
std::string configError(std::uint32_t Seed, unsigned Count,
                        unsigned ShardIndex, unsigned ShardCount) {
  const std::uint64_t Last =
      static_cast<std::uint64_t>(Seed) + (Count ? Count - 1 : 0);
  if (Last > std::numeric_limits<std::uint32_t>::max())
    return "seed range overflows 32 bits: --seed " + std::to_string(Seed) +
           " --count " + std::to_string(Count) + " reaches seed " +
           std::to_string(Last) +
           " > 4294967295; later seeds would wrap and re-run earlier "
           "programs (double-counting coverage) — split the range or "
           "lower --seed/--count";
  if (ShardCount == 0)
    return "shard count must be >= 1";
  if (ShardIndex >= ShardCount)
    return "shard index " + std::to_string(ShardIndex) +
           " out of range for " + std::to_string(ShardCount) + " shard(s)";
  return "";
}

/// Merge-time reproducer writer (as Campaign.cpp): the stem encodes
/// (seed, mode, level); numeric suffixes keep unexpected collisions.
std::string writeReproducerDeduped(const CampaignFailure &F,
                                   const std::string &Dir,
                                   std::set<std::string> &UsedPaths) {
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  std::string Stem = Dir + "/seed-" + std::to_string(F.Seed) +
                     (F.Level.empty() ? "" : "-" + F.Level) +
                     (F.Promote ? "-promote" : "-frame");
  std::string Path = Stem + ".minic";
  for (unsigned N = 2; !UsedPaths.insert(Path).second; ++N)
    Path = Stem + "-" + std::to_string(N) + ".minic";
  std::ofstream Out(Path);
  Out << renderFailure(F);
  return Path;
}

std::vector<CampaignWorkerStats>
toCampaignStats(const std::vector<WorkerStats> &WS,
                const std::function<std::uint32_t(std::size_t)> &SeedOfUnit) {
  std::vector<CampaignWorkerStats> Out;
  Out.reserve(WS.size());
  for (const WorkerStats &S : WS) {
    CampaignWorkerStats C;
    C.Worker = S.Worker;
    C.Units = S.Tasks;
    C.Steals = S.Steals;
    C.InitialQueue = S.InitialQueue;
    C.BusyUs = S.BusyUs;
    C.SlowestUs = S.SlowestUs;
    if (S.SlowestIndex != SIZE_MAX)
      C.SlowestSeed = SeedOfUnit(S.SlowestIndex);
    Out.push_back(C);
  }
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Stepping campaign
//===----------------------------------------------------------------------===//

std::vector<Violation> sldb::checkStepProgram(const std::string &Src,
                                              bool Promote,
                                              unsigned MaxEvents,
                                              const OptOptions *Opts) {
  StepOracleOptions O;
  if (Opts)
    O.Opts = *Opts;
  O.Promote = Promote;
  O.MaxEvents = MaxEvents;
  StepResult R = runStepLockstep(Src, O);
  if (!R.Compiled)
    return {{ViolationKind::LockstepDiverged, InvalidFunc, InvalidStmt, "",
             "does not compile: " + R.CompileError}};
  return checkStepping(R);
}

namespace {

/// Shrink predicate for stepping failures: still a violation of the
/// original kind (statement ids may move under the shrinker).
bool stepKindStillFails(const std::string &Candidate, bool Promote,
                        ViolationKind Kind, unsigned MaxEvents,
                        const OptOptions *Opts = nullptr) {
  for (const Violation &V :
       checkStepProgram(Candidate, Promote, MaxEvents, Opts))
    if (V.Kind == Kind &&
        V.Detail.rfind("does not compile", 0) == std::string::npos)
      return true;
  return false;
}

/// One (seed, mode) stepping unit's outcome.
struct StepOutcome {
  bool Skipped = false; ///< Fast-drained after an interrupt.
  bool Ran = false;
  bool CompileFail = false;
  bool Capped = false;
  bool HasFailure = false;
  std::uint64_t Stmts = 0;
  CampaignFailure F;
};

StepOutcome runStepUnit(const StepCampaignConfig &C, std::uint32_t Seed,
                        bool Promote) {
  Stats::counter("campaign.units").add();
  StepOutcome O;
  std::string Src = generateProgram(Seed, C.Gen);

  // Validated by runStepCampaign before any unit runs.
  const LevelSpec *Spec = C.Level.empty() ? nullptr : findLevel(C.Level);
  const OptOptions *Opts = Spec ? &Spec->Opts : nullptr;

  StepOracleOptions SO;
  if (Opts)
    SO.Opts = *Opts;
  SO.Promote = Promote;
  SO.MaxEvents = C.MaxEvents;
  SO.Fuel = C.Fuel;
  StepResult R = runStepLockstep(Src, SO);
  O.Ran = true;

  if (!R.Compiled) {
    O.CompileFail = true;
    O.F.Seed = Seed;
    O.F.Promote = Promote;
    O.F.Source = Src;
    O.F.Level = C.Level;
    O.F.Violations = {{ViolationKind::LockstepDiverged, InvalidFunc,
                       InvalidStmt, "",
                       "generated program does not compile: " +
                           R.CompileError}};
    return O;
  }
  O.Capped = R.Capped;
  O.Stmts = R.Visits.size();
  Stats::histogram("step.visit_rows").record(R.Visits.size());

  std::vector<Violation> Vs = checkStepping(R);
  if (Vs.empty())
    return O;

  O.F.Seed = Seed;
  O.F.Promote = Promote;
  O.F.Source = Src;
  O.F.Level = C.Level;
  O.F.Violations = std::move(Vs);
  if (C.Shrink) {
    ViolationKind Kind = O.F.Violations.front().Kind;
    O.F.Reduced = reduceProgram(
        Src,
        [&](const std::string &Cand) {
          return stepKindStillFails(Cand, Promote, Kind, C.MaxEvents, Opts);
        },
        /*MaxChecks=*/400);
  }
  O.HasFailure = true;
  return O;
}

} // namespace

StepCampaignResult sldb::runStepCampaign(const StepCampaignConfig &Cfg) {
  StepCampaignResult R;
  R.ConfigError =
      configError(Cfg.Seed, Cfg.Count, Cfg.ShardIndex, Cfg.ShardCount);
  if (!R.ConfigError.empty())
    return R;

  // Level campaigns collapse to one mode with the level's own settings.
  StepCampaignConfig C = Cfg;
  if (!C.Level.empty()) {
    const LevelSpec *Spec = findLevel(C.Level);
    if (!Spec) {
      R.ConfigError = "unknown pipeline level: " + C.Level;
      return R;
    }
    if (!judgeable(*Spec)) {
      R.ConfigError = "pipeline level '" + C.Level +
                      "' duplicates or splices statements and cannot be "
                      "judged by the lockstep oracle";
      return R;
    }
    C.BothPromoteModes = false;
    C.Promote = Spec->Promote;
  }

  const ShardRange Shard =
      Sharder::slice(C.Count, C.ShardIndex, C.ShardCount);
  const unsigned Modes = C.BothPromoteModes ? 2 : 1;
  const std::size_t NumUnits = Shard.size() * Modes;

  auto SeedOfUnit = [&](std::size_t U) {
    return static_cast<std::uint32_t>(C.Seed + Shard.Begin + U / Modes);
  };
  auto PromoteOfUnit = [&](std::size_t U) {
    return C.BothPromoteModes ? (U % Modes) == 0 : C.Promote;
  };

  std::vector<StepOutcome> Out(NumUnits);
  ThreadPool Pool(C.Jobs ? C.Jobs : ThreadPool::hardwareJobs());
  std::vector<WorkerStats> WS =
      Pool.parallelFor(NumUnits, [&](std::size_t U, unsigned) {
        if (interruptRequested()) {
          Out[U].Skipped = true;
          return;
        }
        Out[U] = runStepUnit(C, SeedOfUnit(U), PromoteOfUnit(U));
      });
  R.Workers = toCampaignStats(WS, SeedOfUnit);

  std::set<std::string> UsedPaths;
  for (std::size_t SI = 0; SI < Shard.size(); ++SI) {
    bool SeedRan = false;
    for (unsigned M = 0; M < Modes; ++M)
      SeedRan |= !Out[SI * Modes + M].Skipped;
    if (SeedRan)
      ++R.Programs;
    for (unsigned M = 0; M < Modes; ++M) {
      StepOutcome &O = Out[SI * Modes + M];
      if (O.Skipped) {
        ++R.SkippedUnits;
        continue;
      }
      if (O.Ran)
        ++R.Runs;
      if (O.CompileFail) {
        ++R.FailedCompiles;
        R.Failures.push_back(std::move(O.F));
        break; // The other mode cannot compile either.
      }
      if (O.Capped)
        ++R.CappedRuns;
      R.StmtsChecked += O.Stmts;
      if (O.HasFailure) {
        if (C.WriteFailures)
          O.F.Path = writeReproducerDeduped(O.F, C.FailureDir, UsedPaths);
        R.Failures.push_back(std::move(O.F));
      }
    }
  }
  return R;
}

std::string sldb::renderStepCampaignReport(const StepCampaignResult &R) {
  if (!R.ConfigError.empty())
    return "config error: " + R.ConfigError + "\n";
  std::string S;
  S += "programs:       " + std::to_string(R.Programs) + "\n";
  S += "stepping runs:  " + std::to_string(R.Runs) + "\n";
  S += "stmts checked:  " + std::to_string(R.StmtsChecked) + "\n";
  S += "capped runs:    " + std::to_string(R.CappedRuns) + "\n";
  S += "failed compiles:" + std::string(" ") +
       std::to_string(R.FailedCompiles) + "\n";
  S += "failures:       " + std::to_string(R.Failures.size()) + "\n";
  return S;
}

//===----------------------------------------------------------------------===//
// Cross-level campaign
//===----------------------------------------------------------------------===//

const char *sldb::judgmentName(JudgedRegression::Judgment J) {
  switch (J) {
  case JudgedRegression::Judgment::Explained:
    return "explained";
  case JudgedRegression::Judgment::Unexplained:
    return "UNEXPLAINED";
  case JudgedRegression::Judgment::Unjudged:
    return "unjudged";
  }
  return "?";
}

namespace {

/// Accumulates one lockstep run's observations into a level's measured
/// conservatism.  Only observations with a trustworthy expected value
/// participate; verdicts already shown via recovery are not
/// conservative — the debugger displayed the value.
void accumulateConservatism(ConservatismCounts &CC,
                            const LockstepResult &LR) {
  for (const StopObservation &Stop : LR.Stops)
    for (const VarObservation &V : Stop.Vars) {
      const VarReport &E = V.Expected;
      if (!E.HasValue || E.Class.Kind == VarClass::Uninitialized)
        continue;
      if (V.Opt.Class.Recoverable)
        continue;
      auto Matches = [&](bool IsD, std::int64_t I, double D) {
        if (IsD != E.IsDouble)
          return false;
        return IsD ? D == E.DoubleValue : I == E.IntValue;
      };
      switch (V.Opt.Class.Kind) {
      case VarClass::Noncurrent:
        ++CC.Noncurrent;
        if (V.Opt.HasValue &&
            Matches(V.Opt.IsDouble, V.Opt.IntValue, V.Opt.DoubleValue))
          ++CC.NoncurrentMatched;
        break;
      case VarClass::Suspect:
        ++CC.Suspect;
        if (V.Opt.HasValue &&
            Matches(V.Opt.IsDouble, V.Opt.IntValue, V.Opt.DoubleValue))
          ++CC.SuspectMatched;
        break;
      case VarClass::Nonresident:
        // The verdict displays nothing; the *raw* storage home is the
        // what-if: would a naive debugger have printed the right value?
        ++CC.Nonresident;
        if (V.RawValid && Matches(V.RawIsDouble, V.RawInt, V.RawDouble))
          ++CC.NonresidentMatched;
        break;
      default:
        break;
      }
    }
}

/// Lockstep judgment of one program at one level (shrink predicate).
std::vector<Violation> levelCheck(const std::string &Src,
                                  const LevelSpec &Spec, unsigned MaxStops,
                                  std::uint64_t Fuel) {
  LockstepOptions LO;
  LO.Opts = Spec.Opts;
  LO.Promote = Spec.Promote;
  LO.MaxStops = MaxStops;
  LO.Fuel = Fuel;
  LockstepResult LR = runLockstep(Src, LO);
  if (!LR.Compiled)
    return {{ViolationKind::LockstepDiverged, InvalidFunc, InvalidStmt, "",
             "does not compile: " + LR.CompileError}};
  return checkSoundness(LR);
}

/// One seed's cross-level unit outcome.
struct XLOutcome {
  bool Skipped = false; ///< Fast-drained after an interrupt.
  bool CompileFail = false;
  unsigned LockstepRuns = 0;
  unsigned UnsoundRuns = 0;
  std::vector<CoverageCounts> Levels;         ///< All levels.
  std::vector<ConservatismCounts> Cons;       ///< Judgeable levels.
  std::vector<JudgedRegression> Regs;
  std::vector<CampaignFailure> Failures;
};

XLOutcome runXLUnit(const CrossLevelCampaignConfig &C, std::uint32_t Seed) {
  Stats::counter("campaign.units").add();
  XLOutcome O;
  std::string Src = generateProgram(Seed, C.Gen);
  std::string Name = "seed-" + std::to_string(Seed);

  ProgramSweep PS = sweepProgram(Name, Src);
  if (!PS.Compiled) {
    O.CompileFail = true;
    CampaignFailure F;
    F.Seed = Seed;
    F.Source = Src;
    F.Violations = {{ViolationKind::LockstepDiverged, InvalidFunc,
                     InvalidStmt, "",
                     "generated program does not compile: " +
                         PS.CompileError}};
    O.Failures.push_back(std::move(F));
    return O;
  }
  O.Levels = std::move(PS.Levels);
  Stats::histogram("crosslevel.candidates").record(PS.Regressions.size());

  // One ground-truth run per judgeable level: soundness, conservatism,
  // and the evidence base for judging this seed's candidates.
  const auto &Table = pipelineLevels();
  std::vector<std::vector<Violation>> LevelViolations(Table.size());
  for (std::size_t L = 0; L < Table.size(); ++L) {
    const LevelSpec &Spec = Table[L];
    if (!judgeable(Spec))
      continue;
    LockstepOptions LO;
    LO.Opts = Spec.Opts;
    LO.Promote = Spec.Promote;
    LO.MaxStops = C.MaxStops;
    LO.Fuel = C.Fuel;
    LockstepResult LR = runLockstep(Src, LO);
    ++O.LockstepRuns;
    if (!LR.Compiled) {
      // The sweep compiled this program; a level refusing it now is a
      // pipeline bug worth surfacing as an unsound run.
      ++O.UnsoundRuns;
      CampaignFailure F;
      F.Seed = Seed;
      F.Promote = Spec.Promote;
      F.Source = Src;
      F.Level = Spec.Name;
      F.Violations = {{ViolationKind::LockstepDiverged, InvalidFunc,
                       InvalidStmt, "",
                       "compiles in the sweep but not under lockstep: " +
                           LR.CompileError}};
      O.Failures.push_back(std::move(F));
      continue;
    }

    ConservatismCounts CC;
    CC.Level = Spec.Name;
    accumulateConservatism(CC, LR);
    O.Cons.push_back(CC);
    Stats::histogram("crosslevel.conservative_verdicts").record(CC.total());

    LevelViolations[L] = checkSoundness(LR);
    if (LevelViolations[L].empty())
      continue;
    ++O.UnsoundRuns;
    CampaignFailure F;
    F.Seed = Seed;
    F.Promote = Spec.Promote;
    F.Source = Src;
    F.Level = Spec.Name;
    F.Violations = LevelViolations[L];
    if (C.Shrink) {
      ViolationKind Kind = F.Violations.front().Kind;
      F.Reduced = reduceProgram(
          Src,
          [&](const std::string &Cand) {
            for (const Violation &V :
                 levelCheck(Cand, Spec, C.MaxStops, C.Fuel))
              if (V.Kind == Kind && V.Detail.rfind("does not compile", 0) ==
                                        std::string::npos)
                return true;
            return false;
          },
          /*MaxChecks=*/400);
    }
    O.Failures.push_back(std::move(F));
  }

  // Judge the sweep's candidates against the ground truth at each
  // candidate's More level.
  for (AvailRegression &Reg : PS.Regressions) {
    JudgedRegression J;
    const LevelSpec &More = levelSpec(Reg.More);
    if (!judgeable(More)) {
      J.J = JudgedRegression::Judgment::Unjudged;
    } else {
      J.J = JudgedRegression::Judgment::Explained;
      for (const Violation &V :
           LevelViolations[static_cast<std::size_t>(Reg.More)])
        if (isUnsoundViolation(V.Kind) && V.Func == Reg.Func &&
            V.Stmt == Reg.Stmt && V.Var == Reg.VarName) {
          J.J = JudgedRegression::Judgment::Unexplained;
          break;
        }
    }
    J.R = std::move(Reg);
    O.Regs.push_back(std::move(J));
  }
  return O;
}

} // namespace

CrossLevelCampaignResult
sldb::runCrossLevelCampaign(const CrossLevelCampaignConfig &C) {
  CrossLevelCampaignResult R;
  R.ConfigError = configError(C.Seed, C.Count, C.ShardIndex, C.ShardCount);
  if (!R.ConfigError.empty())
    return R;

  const auto &Table = pipelineLevels();
  R.Levels.resize(Table.size());
  for (std::size_t L = 0; L < Table.size(); ++L) {
    R.Levels[L].Level = Table[L].Name;
    if (judgeable(Table[L])) {
      ConservatismCounts CC;
      CC.Level = Table[L].Name;
      R.Conservatism.push_back(CC);
    }
  }

  const ShardRange Shard =
      Sharder::slice(C.Count, C.ShardIndex, C.ShardCount);
  const std::size_t NumUnits = Shard.size();
  auto SeedOfUnit = [&](std::size_t U) {
    return static_cast<std::uint32_t>(C.Seed + Shard.Begin + U);
  };

  std::vector<XLOutcome> Out(NumUnits);
  ThreadPool Pool(C.Jobs ? C.Jobs : ThreadPool::hardwareJobs());
  std::vector<WorkerStats> WS =
      Pool.parallelFor(NumUnits, [&](std::size_t U, unsigned) {
        if (interruptRequested()) {
          Out[U].Skipped = true;
          return;
        }
        Out[U] = runXLUnit(C, SeedOfUnit(U));
      });
  R.Workers = toCampaignStats(WS, SeedOfUnit);

  std::set<std::string> UsedPaths;
  for (std::size_t U = 0; U < NumUnits; ++U) {
    XLOutcome &O = Out[U];
    if (O.Skipped) {
      ++R.SkippedUnits;
      continue;
    }
    ++R.Programs;
    R.LockstepRuns += O.LockstepRuns;
    R.UnsoundRuns += O.UnsoundRuns;
    if (O.CompileFail)
      ++R.CompileErrors;
    for (std::size_t L = 0; L < O.Levels.size() && L < R.Levels.size(); ++L)
      R.Levels[L].add(O.Levels[L]);
    // Match by label: a level whose lockstep build failed produced no
    // conservatism row for this seed, so indices may not align.
    for (const ConservatismCounts &CC : O.Cons)
      for (ConservatismCounts &Row : R.Conservatism)
        if (Row.Level == CC.Level) {
          Row.add(CC);
          break;
        }
    for (JudgedRegression &J : O.Regs) {
      if (J.J == JudgedRegression::Judgment::Unexplained)
        ++R.Unexplained;
      R.Regressions.push_back(std::move(J));
    }
    for (CampaignFailure &F : O.Failures) {
      if (C.WriteFailures)
        F.Path = writeReproducerDeduped(F, C.FailureDir, UsedPaths);
      R.Failures.push_back(std::move(F));
    }
  }
  return R;
}

std::string
sldb::renderCrossLevelCampaignReport(const CrossLevelCampaignResult &R) {
  if (!R.ConfigError.empty())
    return "config error: " + R.ConfigError + "\n";
  std::string S = renderLevelReport(R.Levels);
  S += "\n";
  S += renderConservatismReport(R.Conservatism);
  S += "\n";
  S += "programs: " + std::to_string(R.Programs) + ", lockstep runs: " +
       std::to_string(R.LockstepRuns) + ", unsound runs: " +
       std::to_string(R.UnsoundRuns);
  if (R.CompileErrors)
    S += ", compile errors: " + std::to_string(R.CompileErrors);
  S += "\n";

  unsigned Explained = 0, Unjudged = 0;
  for (const JudgedRegression &J : R.Regressions) {
    if (J.J == JudgedRegression::Judgment::Explained)
      ++Explained;
    else if (J.J == JudgedRegression::Judgment::Unjudged)
      ++Unjudged;
  }
  S += "regressions: " + std::to_string(R.Regressions.size()) +
       " candidate(s): " + std::to_string(Explained) + " explained, " +
       std::to_string(Unjudged) + " unjudged, " +
       std::to_string(R.Unexplained) + " unexplained\n";
  for (const JudgedRegression &J : R.Regressions)
    S += "  [" + std::string(judgmentName(J.J)) + "] " + J.R.str() + "\n";
  return S;
}
