//===- fuzz/Oracle.cpp ----------------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Oracle.h"

#include "analysis/Dataflow.h"
#include "codegen/ISel.h"
#include "ir/IRGen.h"
#include "support/Diagnostics.h"
#include "support/FaultInjector.h"

#include <unordered_map>

using namespace sldb;

namespace {

//===----------------------------------------------------------------------===//
// All-paths initialization over the unoptimized build
//===----------------------------------------------------------------------===//

/// Intersect-meet variant of the classifier's init reach, computed on the
/// oracle (unoptimized) machine code: a set bit means every path from
/// entry to the block performs the definition.  The unoptimized build has
/// no markers, so the GEN sets reduce to real assignments.
class AllPathsInit {
public:
  AllPathsInit(const MachineFunction &MF, const ProgramInfo &Info) : MF(MF) {
    unsigned NumBlocks = static_cast<unsigned>(MF.Blocks.size());
    std::vector<std::vector<unsigned>> Preds(NumBlocks), Succs(NumBlocks);
    std::vector<unsigned> Exits;
    for (unsigned B = 0; B < NumBlocks; ++B) {
      for (unsigned S : MF.Blocks[B].Succs)
        Succs[B].push_back(S);
      for (unsigned P : MF.Blocks[B].Preds)
        Preds[B].push_back(P);
      if (!MF.Blocks[B].Insts.empty() &&
          MF.Blocks[B].Insts.back().Op == MOp::RET)
        Exits.push_back(B);
    }
    for (VarId V : Info.func(MF.Id).Locals)
      if (Info.var(V).isScalar() && !VarIdx.count(V)) {
        VarIdx[V] = static_cast<unsigned>(Vars.size());
        Vars.push_back(V);
      }

    DataflowProblem P;
    P.Dir = FlowDir::Forward;
    P.Meet = FlowMeet::Intersect;
    P.Universe = static_cast<unsigned>(Vars.size());
    P.Gen.assign(NumBlocks, BitVector(P.Universe));
    P.Kill.assign(NumBlocks, BitVector(P.Universe));
    P.Boundary = BitVector(P.Universe);
    for (unsigned B = 0; B < NumBlocks; ++B)
      for (const MInstr &I : MF.Blocks[B].Insts)
        if (I.DestVar != InvalidVar) {
          auto It = VarIdx.find(I.DestVar);
          if (It != VarIdx.end())
            P.Gen[B].set(It->second);
        }
    In = solveDataflowGeneric(NumBlocks, Preds, Succs, Exits, P).In;
  }

  /// Whether every path to (and through the block prefix before) \p Addr
  /// defines \p V.  Globals count as initialized.
  bool at(std::uint32_t Addr, VarId V) const {
    auto It = VarIdx.find(V);
    if (It == VarIdx.end())
      return false; // Unknown local: never provably initialized.
    unsigned B = 0;
    while (B + 1 < MF.Blocks.size() && MF.BlockAddr[B + 1] <= Addr)
      ++B;
    BitVector State = In[B];
    std::uint32_t A = MF.BlockAddr[B];
    for (const MInstr &I : MF.Blocks[B].Insts) {
      if (A >= Addr)
        break;
      if (I.DestVar != InvalidVar) {
        auto DIt = VarIdx.find(I.DestVar);
        if (DIt != VarIdx.end())
          State.set(DIt->second);
      }
      ++A;
    }
    return State.test(It->second);
  }

private:
  const MachineFunction &MF;
  std::unordered_map<VarId, unsigned> VarIdx;
  std::vector<VarId> Vars;
  std::vector<BitVector> In;
};

/// What the optimized build's debug tables claim about residence at an
/// address — the ground truth the Nonresident verdict is checked against
/// (same rule as the classifier's residence step, recomputed here
/// independently of the verdict).
bool tableResident(const MachineFunction &MF, const ProgramInfo &Info,
                   std::uint32_t Addr, VarId V) {
  if (Info.var(V).Storage == StorageKind::Global)
    return true;
  auto SIt = MF.Storage.find(V);
  if (SIt == MF.Storage.end() || SIt->second.K == VarStorage::Kind::None)
    return false;
  if (SIt->second.K != VarStorage::Kind::InReg)
    return true; // Frame/global memory: resident once initialized.
  auto RIt = MF.ResidentAt.find(V);
  return RIt != MF.ResidentAt.end() && Addr < RIt->second.size() &&
         RIt->second.test(Addr);
}

} // namespace

LockstepResult sldb::runLockstep(std::string_view Src,
                                 const LockstepOptions &O) {
  LockstepResult R;

  DiagnosticEngine D0, D2;
  auto M0 = compileToIR(Src, D0);
  auto M2 = compileToIR(Src, D2);
  if (!M0 || !M2) {
    R.CompileError = D0.hasErrors() ? D0.str() : "frontend error";
    return R;
  }
  Status PS = O.InstrumentPasses
                  ? runPipelineInstrumented(*M2, O.Opts, R.Firings)
                  : runPipelineEx(*M2, O.Opts, PipelineConfig());
  if (!PS.ok()) {
    R.CompileError = PS.str();
    return R;
  }

  // The oracle build must stay pristine: an armed FaultInjector may only
  // corrupt the optimized build it is aimed at, never the ground truth.
  FaultInjector::suspend();
  CodegenOptions CGOracle;
  CGOracle.PromoteVars = false;
  CGOracle.Schedule = false;
  Expected<MachineModule> MMOE = compileToMachineE(*M0, CGOracle);
  FaultInjector::resume();
  if (!MMOE) {
    R.CompileError = "oracle build: " + MMOE.status().str();
    return R;
  }
  CodegenOptions CGOpt;
  CGOpt.PromoteVars = O.Promote;
  CGOpt.Schedule = false;
  Expected<MachineModule> MM2E = compileToMachineE(*M2, CGOpt);
  if (!MM2E) {
    R.CompileError = MM2E.status().str();
    return R;
  }
  MachineModule &MMO = *MMOE;
  MachineModule &MM2 = *MM2E;
  R.Compiled = true;

  // Machine-level evidence of the endangering transformations.
  for (const MachineFunction &MF : MM2.Funcs)
    for (const MachineBlock &B : MF.Blocks)
      for (const MInstr &I : B.Insts) {
        if (I.IsHoisted)
          ++R.NumHoisted;
        if (I.IsSunk)
          ++R.NumSunk;
        if (I.Op == MOp::MDEAD)
          ++R.NumDeadMarks;
        if (I.Op == MOp::MAVAIL)
          ++R.NumAvailMarks;
      }
  for (const auto &F : M2->Funcs)
    R.NumSRRecords += static_cast<unsigned>(F->SRRecords.size());

  // Suspend faults around the oracle debugger's construction too: the
  // VM-trap fault arms at Machine construction and must not fire in the
  // ground-truth run.
  FaultInjector::suspend();
  Debugger Expected(MMO, O.Fuel);
  FaultInjector::resume();
  Debugger Opt(MM2, O.Fuel);
  Expected.breakEverywhere();
  Opt.breakEverywhere();

  std::vector<std::unique_ptr<AllPathsInit>> Init(MMO.Funcs.size());

  StopReason RO = Expected.run();
  StopReason R2 = Opt.run();
  // The iteration bound also covers oracle-only stops (vanished
  // statements), which do not produce observations.
  unsigned Iter = 0, IterMax = O.MaxStops * 4 + 64;
  while (RO == StopReason::Breakpoint && R2 == StopReason::Breakpoint &&
         R.Stops.size() < O.MaxStops && ++Iter < IterMax) {
    auto SO = Expected.currentStmt();
    auto S2 = Opt.currentStmt();
    if (!SO || !S2) {
      R.PairError = "breakpoint stop without a statement mapping";
      break;
    }
    if (Expected.currentFunction() != Opt.currentFunction() || *SO != *S2) {
      // Statements whose code vanished entirely from the optimized build
      // (folded branches, merged blocks) stop only the oracle; skip them.
      const MachineFunction &OptF =
          Opt.module().Funcs[Expected.currentFunction()];
      bool Vanished =
          *SO >= OptF.StmtAddr.size() || OptF.StmtAddr[*SO] < 0;
      if (!Vanished) {
        R.PairError = "stop sequences diverged: oracle at " +
                      MMO.Funcs[Expected.currentFunction()].Name + " s" +
                      std::to_string(*SO) + ", optimized at " +
                      MM2.Funcs[Opt.currentFunction()].Name + " s" +
                      std::to_string(*S2);
        break;
      }
      RO = Expected.resume();
      continue;
    }

    StopObservation Stop;
    Stop.Func = Expected.currentFunction();
    Stop.Stmt = *SO;

    std::vector<VarReport> ScopeO = Expected.reportScope();
    std::vector<VarReport> Scope2 = Opt.reportScope();
    if (ScopeO.size() != Scope2.size()) {
      R.PairError = "scope size mismatch at s" + std::to_string(*SO);
      break;
    }

    std::uint32_t AddrO = Expected.machine().pc().Local;
    std::uint32_t Addr2 = Opt.machine().pc().Local;
    const MachineFunction &MFO = MMO.Funcs[Stop.Func];
    const MachineFunction &MF2 = MM2.Funcs[Stop.Func];
    if (!Init[Stop.Func])
      Init[Stop.Func] = std::make_unique<AllPathsInit>(MFO, *MMO.Info);

    for (std::size_t I = 0; I < Scope2.size(); ++I) {
      if (ScopeO[I].Var != Scope2[I].Var) {
        R.PairError = "scope variable mismatch at s" + std::to_string(*SO);
        break;
      }
      VarObservation VO;
      VO.Expected = ScopeO[I];
      VO.Opt = Scope2[I];
      VO.OptTableResident =
          tableResident(MF2, *MM2.Info, Addr2, Scope2[I].Var);
      VO.ExpectedInitAllPaths = Init[Stop.Func]->at(AddrO, ScopeO[I].Var);
      VO.RawValid = Opt.peekStorage(Scope2[I].Var, VO.RawIsDouble,
                                    VO.RawInt, VO.RawDouble);
      VO.IsPtr = MM2.Info->var(Scope2[I].Var).Ty.Kind == TypeKind::Ptr;
      Stop.Vars.push_back(std::move(VO));
    }
    if (!R.PairError.empty())
      break;
    R.Stops.push_back(std::move(Stop));

    RO = Expected.resume();
    R2 = Opt.resume();
  }

  // Drain to completion so the end states compare program behavior, not
  // the observation cap.  (A run still at a breakpoint after the drain
  // bound is reported as-is.)
  for (unsigned G = 0; RO == StopReason::Breakpoint && G < 200000; ++G)
    RO = Expected.resume();
  for (unsigned G = 0; R2 == StopReason::Breakpoint && G < 200000; ++G)
    R2 = Opt.resume();

  R.ExpectedEnd = RO;
  R.OptEnd = R2;
  R.ExpectedExit = Expected.machine().exitValue();
  R.OptExit = Opt.machine().exitValue();
  R.ExpectedOutput = Expected.machine().outputText();
  R.OptOutput = Opt.machine().outputText();
  return R;
}
