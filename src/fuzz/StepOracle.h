//===- fuzz/StepOracle.h - Stepping / line-table oracle ---------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stepping half of the cross-level oracle: single-step the
/// unoptimized and the optimized build *independently* (no pairing — the
/// optimized step sequence is legitimately reordered) and compare the
/// per-statement visit multisets.  The line table must never invent or
/// lose statement boundaries:
///
///   Phantom stop — the optimized build stops at a statement more often
///   than the source executes it.  Checked only for *anchored*
///   statements, whose start instruction is neither hoisted nor sunk: a
///   hoisted anchor (LICM preheader) legitimately executes even when the
///   loop body never runs, and the step count difference is the honest
///   footprint of the transformation, not a table bug.
///
///   Vanished stop — a statement the source executes, for which the
///   optimized build *has* anchored code, is never stepped to.  (A
///   statement with no code at all is fine — folded away — and a
///   hoisted/sunk anchor may legally run a different number of times.)
///
/// Behavioral divergence (exit state, output) is reported as in the
/// variable oracle.  Runs that hit the event cap skip the multiset
/// checks: a truncated count proves nothing.
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_FUZZ_STEPORACLE_H
#define SLDB_FUZZ_STEPORACLE_H

#include "fuzz/DiffCheck.h"

#include <string>
#include <string_view>
#include <vector>

namespace sldb {

/// Stepping configuration (mirrors LockstepOptions).
struct StepOracleOptions {
  /// Optimizations for the non-oracle build: the heaviest pipeline whose
  /// statements still correspond one-to-one (no peel/unroll), exactly
  /// the variable oracle's restriction.
  OptOptions Opts = LockstepOptions::lockstepOpts();

  /// Promote source variables to registers in the optimized build.
  bool Promote = true;

  /// Per-build cap on statement-boundary stop events; a run that reaches
  /// it is marked Capped and exempted from the multiset checks.
  unsigned MaxEvents = 20000;

  /// Execution fuel (VM step budget) for both builds.
  std::uint64_t Fuel = 50'000'000;
};

/// Visit counts for one statement, accumulated over a whole run.
struct StepVisit {
  FuncId Func = InvalidFunc;
  StmtId Stmt = InvalidStmt;
  unsigned Line = 0;          ///< Source line of the statement.
  std::uint64_t SrcVisits = 0; ///< Stops in the unoptimized build.
  std::uint64_t OptVisits = 0; ///< Stops in the optimized build.
  bool OptHasCode = false;    ///< StmtAddr maps it in the optimized build.
  bool OptAnchored = false;   ///< Its start instruction is neither
                              ///< hoisted nor sunk.
};

/// Everything one stepping run observed.
struct StepResult {
  bool Compiled = false;
  std::string CompileError;

  /// Either build hit MaxEvents (or ran out of fuel): visit counts are
  /// truncated and must not be judged.
  bool Capped = false;

  /// Per-statement visit counts in (function, statement) order.
  std::vector<StepVisit> Visits;

  /// End-state comparison, as in LockstepResult.
  StopReason SrcEnd = StopReason::Running;
  StopReason OptEnd = StopReason::Running;
  std::int64_t SrcExit = 0, OptExit = 0;
  std::string SrcOutput, OptOutput;
};

/// Compiles \p Src twice (unoptimized-unpromoted oracle vs. \p O) and
/// single-steps both builds to completion, counting statement-boundary
/// stops per statement.  Never asserts: findings are in the result for
/// checkStepping to judge.
StepResult runStepLockstep(std::string_view Src, const StepOracleOptions &O);

/// Judges one stepping run: PhantomStop / VanishedStop per the header
/// comment, plus BehaviorMismatch for end-state divergence.  Empty means
/// the run's line table stepped soundly.
std::vector<Violation> checkStepping(const StepResult &R);

} // namespace sldb

#endif // SLDB_FUZZ_STEPORACLE_H
