//===- fuzz/Reduce.h - Greedy reproducer shrinker ---------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Greedy statement-deletion minimizer for fuzzing reproducers, in the
/// spirit of delta debugging: repeatedly delete one source line — or a
/// whole brace-balanced region, so `if`/`for`/`while` constructs and
/// function bodies are removed atomically — and keep the deletion whenever
/// the caller's predicate still holds (typically "still compiles and still
/// violates the soundness contract the same way").  Runs to a fixpoint.
///
/// The reducer is syntax-light: it never parses, it only tracks brace
/// depth, so it works on any brace-structured source.  Deletions that make
/// the program uncompilable are rejected by the predicate itself.
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_FUZZ_REDUCE_H
#define SLDB_FUZZ_REDUCE_H

#include <functional>
#include <string>

namespace sldb {

/// Predicate deciding whether a candidate program still reproduces the
/// failure of interest.  Must be deterministic.
using ReducePredicate = std::function<bool(const std::string &)>;

/// Shrinks \p Src while \p StillFails holds.  Returns the smallest
/// variant found (at worst, \p Src itself — the input is assumed to
/// satisfy the predicate).  \p MaxChecks bounds the number of predicate
/// evaluations, since each one typically compiles and runs two builds.
std::string reduceProgram(const std::string &Src,
                          const ReducePredicate &StillFails,
                          unsigned MaxChecks = 2000);

} // namespace sldb

#endif // SLDB_FUZZ_REDUCE_H
