//===- fuzz/QueryGen.h - Deterministic service query streams ----*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates deterministic request streams for the classification
/// daemon: the workload side of the service robustness story, used by
/// `sldb-load` (replay/soak) and the determinism test.
///
/// The generator compiles each module's generated program in-process
/// (pristine — fault injection belongs to the daemon under test, not to
/// the workload) to learn its real shape — function names, statements
/// that survived optimization, variables in scope — so the emitted
/// classify/classify-all/explain/step requests hit live targets, with a
/// configurable fraction of deliberately invalid requests mixed in.
///
/// Determinism: the same options always yield the same batches, and the
/// session-interleave shuffle is itself seeded.  Each session queries
/// only its own modules, so any two shuffles of the same stream must
/// produce identical per-request responses — the property
/// tests/service_test.cpp replays at --jobs 1/4/8.
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_FUZZ_QUERYGEN_H
#define SLDB_FUZZ_QUERYGEN_H

#include <cstdint>
#include <string>
#include <vector>

namespace sldb {

struct QueryStreamOptions {
  unsigned Sessions = 4;
  unsigned ModulesPerSession = 2;
  unsigned QueriesPerSession = 100;

  /// Module seeds are BaseSeed, BaseSeed+1, ... across sessions.
  std::uint32_t BaseSeed = 1;

  /// Percent of queries that are deliberately invalid (unknown module /
  /// function / variable, out-of-range statement, bad verb).
  unsigned InvalidPct = 5;

  /// Percent of valid queries that are `step` (the rest split between
  /// classify, classify-all, and explain).
  unsigned StepPct = 10;

  /// Source-steps per step request.
  unsigned StepCount = 25;

  /// Query lines per batch (protocol blocks; loads form their own
  /// leading batch).
  unsigned BatchLines = 64;

  /// Seed of the session-interleave shuffle; 0 = round-robin.
  std::uint64_t ShuffleSeed = 0;

  /// Prepended to every module name and session tag, so independent
  /// streams aimed at one daemon (sldb-load clients, soak iterations)
  /// never collide in the module registry.
  std::string NamePrefix;
};

/// A generated stream: batches of request lines, loads first.
struct QueryStream {
  std::vector<std::vector<std::string>> Batches;

  /// Renders as protocol text: lines separated by '\n', batches by a
  /// blank line, trailing blank line included.
  std::string text() const;

  std::size_t numRequests() const {
    std::size_t N = 0;
    for (const auto &B : Batches)
      N += B.size();
    return N;
  }
};

/// Generates the stream.  Deterministic per options.
QueryStream generateQueryStream(const QueryStreamOptions &Opts);

} // namespace sldb

#endif // SLDB_FUZZ_QUERYGEN_H
