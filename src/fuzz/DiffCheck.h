//===- fuzz/DiffCheck.h - Soundness contract checker ------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Judges the observations of one lockstep run against the paper's
/// truthfulness guarantee ("the debugger never misleads the user").  The
/// contract is asymmetric:
///
///   Conservative is OK.  The classifier may report Suspect or Noncurrent
///   for a variable whose runtime value happens to equal the expected
///   value — the warning is unnecessary but honest.
///
///   Unsound is a FAIL.  The classifier must never (a) report Current
///   (no warning) when the displayed value differs from the unoptimized
///   semantics, (b) show a §2.5 *recovered* value that differs from the
///   expected value, (c) report Uninitialized for a variable every source
///   path initializes, or show a clean value for one no source path
///   initializes, or (d) disagree with the debug tables about residence.
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_FUZZ_DIFFCHECK_H
#define SLDB_FUZZ_DIFFCHECK_H

#include "fuzz/Oracle.h"

#include <string>
#include <vector>

namespace sldb {

/// Ways a lockstep run can violate the soundness contract.
enum class ViolationKind : std::uint8_t {
  /// Verdict Current (value shown with no warning) but the displayed
  /// value differs from the unoptimized build's value.
  UnsoundCurrent,
  /// A recovered expected value (§2.5) differs from the true expected
  /// value.
  WrongRecovery,
  /// Verdict Uninitialized although the unoptimized build initializes
  /// the variable on every path to the stop.
  SpuriousUninitialized,
  /// Clean Current verdict although no definition reaches the stop in
  /// the unoptimized build (the value shown is garbage).
  MissedUninitialized,
  /// Verdict disagrees with the Storage/ResidentAt tables: Nonresident
  /// for a variable the tables locate, or a value-displaying verdict for
  /// one they do not.
  NonresidentInconsistent,
  /// The two builds' statement-boundary stop sequences could not be
  /// paired (statement map or control-flow bug).
  LockstepDiverged,
  /// The two builds disagree on output / exit state: a miscompile, found
  /// incidentally by the harness.
  BehaviorMismatch,
  /// The check's child process died on a signal (isolated campaigns).
  ProcessCrash,
  /// The check's child process exceeded the watchdog and was killed.
  ProcessHang,
  /// Stepping oracle: the optimized build stops at a statement more often
  /// than the source semantics executes it (phantom line-table entry).
  PhantomStop,
  /// Stepping oracle: a statement the source executes, and for which the
  /// optimized build emitted code, is never stopped at (vanished from the
  /// step sequence).
  VanishedStop
};

const char *violationKindName(ViolationKind K);

/// One soundness violation, with enough context to debug it.
struct Violation {
  ViolationKind Kind;
  FuncId Func = InvalidFunc;
  StmtId Stmt = InvalidStmt;
  std::string Var;    ///< Variable name; empty for run-level violations.
  std::string Detail; ///< Human-readable explanation with both values.

  std::string str() const;
};

/// Applies the soundness contract to every observation of \p R.  An empty
/// result means the run is sound; order is stop order.
std::vector<Violation> checkSoundness(const LockstepResult &R);

} // namespace sldb

#endif // SLDB_FUZZ_DIFFCHECK_H
