//===- ir/Interp.h - IR interpreter ----------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A direct interpreter for the IR, used as the semantic oracle in
/// differential tests: for every program, unoptimized IR, optimized IR and
/// the compiled machine code must produce identical observable output.
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_IR_INTERP_H
#define SLDB_IR_INTERP_H

#include "ir/IR.h"

#include <cstdint>
#include <string>
#include <vector>

namespace sldb {

/// Result of executing a program.
struct ExecResult {
  bool Trapped = false;
  std::string TrapMsg;
  std::int64_t ExitValue = 0;
  std::uint64_t InstrCount = 0;          ///< Executed instructions.
  std::vector<std::string> Output;       ///< One entry per print call.

  /// Joins Output with newlines (for golden comparisons).
  std::string outputText() const {
    std::string S;
    for (const std::string &Line : Output) {
      S += Line;
      S += '\n';
    }
    return S;
  }
};

/// Runs `main()` of \p M.  \p MaxSteps bounds execution (traps beyond it).
ExecResult interpretIR(const IRModule &M,
                       std::uint64_t MaxSteps = 50'000'000);

} // namespace sldb

#endif // SLDB_IR_INTERP_H
