//===- ir/IRGen.h - AST to IR lowering -------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers the type-checked MiniC AST into the three-address IR.  Every
/// emitted instruction is tagged with the StmtId of the source statement
/// it implements, and instructions that complete an assignment to a source
/// variable are tagged IsSourceAssign — the raw material for the paper's
/// optimization bookkeeping.
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_IR_IRGEN_H
#define SLDB_IR_IRGEN_H

#include "frontend/Sema.h"
#include "ir/IR.h"

#include <memory>

namespace sldb {

/// Lowers a checked translation unit into an IR module.  Takes ownership
/// of the symbol tables.  Internal lowering inconsistencies (AST shapes
/// Sema should have rejected) are reported to \p Diags when provided and
/// yield null instead of asserting.  When \p A is given the module is
/// built in that arena (batch compilation); otherwise it owns its own.
std::unique_ptr<IRModule> generateIR(const TranslationUnit &TU,
                                     std::unique_ptr<ProgramInfo> Info,
                                     DiagnosticEngine *Diags = nullptr,
                                     Arena *A = nullptr);

/// Convenience driver: front end + IR generation.  Returns null and fills
/// \p Diags on error.  \p A as in generateIR.
std::unique_ptr<IRModule> compileToIR(std::string_view Source,
                                      DiagnosticEngine &Diags,
                                      Arena *A = nullptr);

} // namespace sldb

#endif // SLDB_IR_IRGEN_H
