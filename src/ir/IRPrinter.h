//===- ir/IRPrinter.h - Textual IR dump ------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders IR functions and modules as readable text, including the debug
/// annotations (statement ids, hoisted/sunk flags, markers) so tests can
/// assert on the bookkeeping the optimizer performs.
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_IR_IRPRINTER_H
#define SLDB_IR_IRPRINTER_H

#include "ir/IR.h"

#include <string>

namespace sldb {

/// Renders one value ("x", "t3", "42", "2.5").
std::string printValue(const Value &V, const ProgramInfo *Info);

/// Renders one instruction (no trailing newline).
std::string printInstr(const Instr &I, const ProgramInfo *Info);

/// Renders a whole function.
std::string printFunction(const IRFunction &F, const ProgramInfo *Info);

/// Renders a whole module.
std::string printModule(const IRModule &M);

/// Returns the mnemonic for an opcode ("add", "br", ...).
const char *opcodeName(Opcode Op);

} // namespace sldb

#endif // SLDB_IR_IRPRINTER_H
