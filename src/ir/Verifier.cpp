//===- ir/Verifier.cpp ----------------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include "ir/IRPrinter.h"

#include <unordered_set>

using namespace sldb;

namespace {

class FunctionVerifier {
public:
  FunctionVerifier(const IRFunction &F, const ProgramInfo &Info,
                   std::vector<std::string> &Errors)
      : F(F), Info(Info), Errors(Errors) {}

  bool run();

private:
  void check(bool Cond, const BasicBlock &B, const Instr *I,
             const std::string &Msg) {
    if (Cond)
      return;
    std::string Where = F.Name + "/" + B.Name;
    if (I)
      Where += ": " + printInstr(*I, &Info);
    Errors.push_back(Where + ": " + Msg);
    OK = false;
  }

  void checkValue(const Value &V, const BasicBlock &B, const Instr &I);
  void checkInstr(const Instr &I, const BasicBlock &B, bool IsLast);

  const IRFunction &F;
  const ProgramInfo &Info;
  std::vector<std::string> &Errors;
  std::unordered_set<const BasicBlock *> Owned;
  bool OK = true;
};

} // namespace

void FunctionVerifier::checkValue(const Value &V, const BasicBlock &B,
                                  const Instr &I) {
  switch (V.K) {
  case Value::Kind::None:
    check(false, B, &I, "unexpected empty operand");
    return;
  case Value::Kind::Temp:
    check(V.Id < F.NextTemp, B, &I, "temp id out of range");
    return;
  case Value::Kind::Var:
    check(V.Id < Info.Vars.size(), B, &I, "var id out of range");
    return;
  case Value::Kind::ConstInt:
  case Value::Kind::ConstDouble:
    return;
  }
}

void FunctionVerifier::checkInstr(const Instr &I, const BasicBlock &B,
                                  bool IsLast) {
  if (I.isTerm())
    check(IsLast, B, &I, "terminator in the middle of a block");
  else
    check(!IsLast, B, &I, "block does not end in a terminator");

  unsigned ExpectedOps = 0;
  bool NeedsDest = false;
  switch (I.Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Rem:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::CmpEQ:
  case Opcode::CmpNE:
  case Opcode::CmpLT:
  case Opcode::CmpLE:
  case Opcode::CmpGT:
  case Opcode::CmpGE:
    ExpectedOps = 2;
    NeedsDest = true;
    break;
  case Opcode::Neg:
  case Opcode::Not:
  case Opcode::Copy:
  case Opcode::CastItoD:
  case Opcode::CastDtoI:
  case Opcode::AddrOf:
  case Opcode::Load:
    ExpectedOps = 1;
    NeedsDest = true;
    break;
  case Opcode::Store:
    ExpectedOps = 2;
    break;
  case Opcode::CondBr:
    ExpectedOps = 1;
    break;
  case Opcode::Call:
  case Opcode::Ret:
  case Opcode::Br:
  case Opcode::DeadMarker:
  case Opcode::AvailMarker:
  case Opcode::Nop:
    ExpectedOps = static_cast<unsigned>(I.Ops.size()); // Variable arity.
    break;
  case Opcode::Phi:
    ExpectedOps = static_cast<unsigned>(I.Ops.size()); // One per pred.
    NeedsDest = true;
    break;
  }
  check(I.Ops.size() == ExpectedOps, B, &I, "wrong operand count");
  if (NeedsDest)
    check(I.Dest.isTemp() || I.Dest.isVar(), B, &I,
          "instruction requires a destination");

  for (const Value &V : I.Ops)
    checkValue(V, B, I);
  if (I.Dest.isTemp() || I.Dest.isVar())
    checkValue(I.Dest, B, I);

  for (unsigned S = 0, E = I.numSuccs(); S != E; ++S) {
    check(I.Succs[S] != nullptr, B, &I, "null successor");
    if (I.Succs[S])
      check(Owned.count(I.Succs[S]) != 0, B, &I,
            "successor not owned by this function");
  }

  if (I.Op == Opcode::CondBr && !I.Ops.empty())
    check(I.Ops[0].Ty == IRType::Int, B, &I,
          "condbr condition must have int type");

  if (I.Op == Opcode::AddrOf && !I.Ops.empty())
    check(I.Ops[0].isVar(), B, &I, "addrof operand must be a variable");

  if (I.isMark()) {
    check(I.MarkVar < Info.Vars.size(), B, &I, "marker var out of range");
    if (I.Op == Opcode::AvailMarker)
      check(I.HoistKey < F.HoistKeys.size(), B, &I,
            "avail marker with invalid hoist key");
  }

  if (I.IsHoisted && I.IsSourceAssign)
    check(I.HoistKey < F.HoistKeys.size(), B, &I,
          "hoisted source assignment without hoist key");

  if (I.IsSourceAssign)
    check(I.Dest.isVar(), B, &I,
          "source-assign annotation on non-variable destination");

  if (I.Op == Opcode::Phi) {
    check(!I.Ops.empty(), B, &I, "phi with no incoming values");
    check(I.PhiPreds.size() == I.Ops.size(), B, &I,
          "phi predecessor list does not match operand count");
    for (BasicBlock *P : I.PhiPreds) {
      check(P != nullptr, B, &I, "null phi predecessor");
      if (P)
        check(Owned.count(P) != 0, B, &I,
              "phi predecessor not owned by this function");
    }
  } else {
    check(I.PhiPreds.empty(), B, &I,
          "phi predecessor list on a non-phi instruction");
  }
}

bool FunctionVerifier::run() {
  if (F.Blocks.empty()) {
    Errors.push_back(F.Name + ": function has no blocks");
    return false;
  }

  for (const BasicBlock *B : F.Blocks)
    Owned.insert(B);

  for (const auto &B : F.Blocks) {
    check(!B->Insts.empty(), *B, nullptr, "empty block");
    if (B->Insts.empty())
      continue;
    check(B->Insts.back().isTerm(), *B, nullptr,
          "block does not end in a terminator");
    std::size_t Idx = 0, Last = B->Insts.size() - 1;
    bool SeenNonPhi = false;
    for (const Instr &I : B->Insts) {
      checkInstr(I, *B, Idx == Last);
      if (I.Op == Opcode::Phi)
        check(!SeenNonPhi, *B, &I, "phi not at the head of its block");
      else
        SeenNonPhi = true;
      ++Idx;
    }
  }
  return OK;
}

bool sldb::verifyFunction(const IRFunction &F, const ProgramInfo &Info,
                          std::vector<std::string> &Errors) {
  FunctionVerifier V(F, Info, Errors);
  return V.run();
}

bool sldb::verifyModule(const IRModule &M, std::vector<std::string> &Errors) {
  bool OK = true;
  for (const auto &F : M.Funcs)
    OK &= verifyFunction(*F, *M.Info, Errors);
  return OK;
}

bool sldb::verifyFunctionAnnotations(const IRFunction &F,
                                     const ProgramInfo &Info,
                                     std::vector<AnnotationFinding> &Findings) {
  std::size_t Before = Findings.size();
  auto Note = [&](VarId V, std::string Msg) {
    Findings.push_back({V, F.Name + ": " + std::move(Msg)});
  };

  for (HoistKeyId K = 0; K < F.HoistKeys.size(); ++K)
    if (F.HoistKeys[K].V >= Info.Vars.size())
      Note(InvalidVar,
           "hoist key " + std::to_string(K) + " names a bogus variable");

  for (const auto &B : F.Blocks) {
    for (const Instr &I : B->Insts) {
      if (I.Stmt != InvalidStmt && I.Stmt >= F.NumStmts)
        Note(I.destVar(), "instruction statement id out of range");
      if (I.isMark()) {
        // A marker that misnames its variable poisons the whole
        // function: the real victim variable can no longer be found.
        if (I.MarkVar >= Info.Vars.size()) {
          Note(InvalidVar, "marker names a bogus variable");
          continue;
        }
        if (I.MarkStmt != InvalidStmt && I.MarkStmt >= F.NumStmts)
          Note(I.MarkVar, "marker statement id out of range");
        if (I.Op == Opcode::AvailMarker && I.HoistKey >= F.HoistKeys.size())
          Note(I.MarkVar, "avail marker with dangling hoist key");
        if (I.Op == Opcode::DeadMarker) {
          const Value &R = I.Recovery;
          bool WellTyped =
              R.K == Value::Kind::None || R.K == Value::Kind::ConstInt ||
              R.K == Value::Kind::ConstDouble ||
              (R.K == Value::Kind::Temp && R.Id < F.NextTemp) ||
              (R.K == Value::Kind::Var && R.Id < Info.Vars.size());
          if (!WellTyped)
            Note(I.MarkVar, "dead marker with ill-typed recovery value");
        }
      } else if (I.Op == Opcode::Phi) {
        // Phi annotations are merges: MarkVar names the source variable
        // whose versions meet here, and Stmt/HoistKey are either a fact
        // every incoming version agrees on or Invalid (conservative).
        if (I.MarkVar != InvalidVar && I.MarkVar >= Info.Vars.size())
          Note(InvalidVar, "phi names a bogus merged variable");
        if (I.HoistKey != InvalidHoistKey && I.HoistKey >= F.HoistKeys.size())
          Note(I.MarkVar, "phi with dangling merged hoist key");
      } else if (I.IsHoisted && I.HoistKey != InvalidHoistKey &&
                 I.HoistKey >= F.HoistKeys.size()) {
        Note(I.destVar(), "hoisted instruction with dangling hoist key");
      }
    }
  }
  return Findings.size() == Before;
}
