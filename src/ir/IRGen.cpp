//===- ir/IRGen.cpp -------------------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/IRGen.h"

#include "support/Casting.h"

using namespace sldb;

namespace {

/// Per-function IR generation state.
class IRGen {
public:
  IRGen(IRModule &M, IRFunction &F, const ProgramInfo &Info)
      : M(M), F(F), Info(Info) {}

  void genFunction(const FuncDecl &FD);

  /// Non-empty when lowering hit an internal inconsistency (an AST shape
  /// Sema should have rejected).  The module must be discarded; the
  /// driver turns this into a diagnostic instead of asserting.
  std::string InternalErr;

private:
  void internalError(const char *Msg) {
    if (InternalErr.empty())
      InternalErr = Msg;
  }

  // Emission helpers.
  Instr &emit(Instr I) {
    I.Stmt = CurStmt;
    Cur->Insts.push_back(std::move(I));
    return Cur->Insts.back();
  }
  Instr &emitBinary(Opcode Op, IRType Ty, Value Dest, Value A, Value B) {
    Instr I;
    I.Op = Op;
    I.Ty = Ty;
    I.Dest = Dest;
    I.Ops = {A, B};
    return emit(std::move(I));
  }
  Instr &emitUnary(Opcode Op, IRType Ty, Value Dest, Value A) {
    Instr I;
    I.Op = Op;
    I.Ty = Ty;
    I.Dest = Dest;
    I.Ops = {A};
    return emit(std::move(I));
  }
  void emitBr(BasicBlock *Target) {
    if (Cur->hasTerm())
      return; // Unreachable fall-through (e.g. after return).
    Instr I;
    I.Op = Opcode::Br;
    I.Succs[0] = Target;
    emit(std::move(I));
  }
  void emitCondBr(Value Cond, BasicBlock *T, BasicBlock *E) {
    Instr I;
    I.Op = Opcode::CondBr;
    I.Ops = {Cond};
    I.Succs[0] = T;
    I.Succs[1] = E;
    emit(std::move(I));
  }
  void setBlock(BasicBlock *B) { Cur = B; }

  // Statements.
  void genStmt(const Stmt *S);
  void genCompound(const CompoundStmt *S);

  // Expressions.
  Value genExpr(const Expr *E);
  Value genAddr(const Expr *E);
  void genCond(const Expr *E, BasicBlock *TrueB, BasicBlock *FalseB);
  Value genShortCircuit(const BinaryExpr *E);
  Value genCall(const CallExpr *E);
  Value genAssign(const AssignExpr *E);
  Value genIncDec(const UnaryExpr *E);

  /// Assigns \p V to source variable \p Var as statement \p CurStmt.
  /// Retargets the just-emitted defining instruction when possible so
  /// source assignments stay single IR instructions (`x = y + z`), the
  /// unit the paper's hoisting/sinking/elimination bookkeeping tracks.
  void storeToVar(VarId Var, Value V);

  IRType varIRType(VarId Id) const {
    const VarInfo &VI = Info.var(Id);
    if (VI.ArraySize != 0)
      return IRType::Ptr;
    return irTypeFor(VI.Ty);
  }

  IRModule &M;
  IRFunction &F;
  const ProgramInfo &Info;
  BasicBlock *Cur = nullptr;
  StmtId CurStmt = InvalidStmt;

  struct LoopCtx {
    BasicBlock *BreakTarget;
    BasicBlock *ContinueTarget;
  };
  std::vector<LoopCtx> Loops;
};

} // namespace

void IRGen::storeToVar(VarId Var, Value V) {
  IRType Ty = varIRType(Var);
  Value Dest = Value::var(Var, Ty);
  // Retarget the defining instruction if V is a temp defined by the last
  // instruction in the current block.
  if (V.isTemp() && !Cur->Insts.empty()) {
    Instr &Last = Cur->Insts.back();
    if (Last.Dest.isTemp() && Last.Dest.Id == V.Id && !Last.isTerm() &&
        Last.Op != Opcode::AddrOf) {
      Last.Dest = Dest;
      Last.IsSourceAssign = true;
      Last.Stmt = CurStmt;
      return;
    }
  }
  Instr &I = emitUnary(Opcode::Copy, Ty, Dest, V);
  I.IsSourceAssign = true;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void IRGen::genFunction(const FuncDecl &FD) {
  Cur = F.newBlock("entry");
  genCompound(FD.Body.get());
  // Fall-through return.
  if (!Cur->hasTerm()) {
    Instr I;
    I.Op = Opcode::Ret;
    if (F.RetTy != IRType::Void)
      I.Ops = {F.RetTy == IRType::Double ? Value::constDouble(0.0)
                                         : Value::constInt(0)};
    CurStmt = InvalidStmt;
    emit(std::move(I));
  }
  F.NumStmts = static_cast<std::uint32_t>(Info.func(F.Id).Stmts.size());
  // Give any unterminated unreachable continuation blocks a terminator,
  // then drop everything unreachable from the entry.
  for (auto &B : F.Blocks)
    if (!B->hasTerm()) {
      Instr I;
      I.Op = Opcode::Ret;
      if (F.RetTy != IRType::Void)
        I.Ops = {F.RetTy == IRType::Double ? Value::constDouble(0.0)
                                           : Value::constInt(0)};
      B->Insts.push_back(std::move(I));
    }
  F.removeUnreachable();
  F.recomputePreds();
}

void IRGen::genCompound(const CompoundStmt *S) {
  for (const StmtPtr &Child : S->Body)
    genStmt(Child.get());
}

void IRGen::genStmt(const Stmt *S) {
  CurStmt = S->Id;
  switch (S->getKind()) {
  case Stmt::Kind::Decl: {
    const auto *DS = cast<DeclStmt>(S);
    if (DS->Decl.Init) {
      Value V = genExpr(DS->Decl.Init.get());
      storeToVar(DS->Decl.Var, V);
    }
    return;
  }
  case Stmt::Kind::Expr:
    genExpr(cast<ExprStmt>(S)->E.get());
    return;
  case Stmt::Kind::Compound:
    genCompound(cast<CompoundStmt>(S));
    return;
  case Stmt::Kind::If: {
    const auto *IS = cast<IfStmt>(S);
    BasicBlock *ThenB = F.newBlock("then");
    BasicBlock *JoinB = F.newBlock("endif");
    BasicBlock *ElseB = IS->Else ? F.newBlock("else") : JoinB;
    genCond(IS->Cond.get(), ThenB, ElseB);
    setBlock(ThenB);
    genStmt(IS->Then.get());
    // Structural glue branches carry the control statement's id, not the
    // last inner statement's: a statement's breakpoint address must never
    // land on a lower-addressed join jump that executes after its code.
    CurStmt = S->Id;
    emitBr(JoinB);
    if (IS->Else) {
      setBlock(ElseB);
      genStmt(IS->Else.get());
      CurStmt = S->Id;
      emitBr(JoinB);
    }
    setBlock(JoinB);
    return;
  }
  case Stmt::Kind::While: {
    const auto *WS = cast<WhileStmt>(S);
    BasicBlock *CondB = F.newBlock("while.cond");
    BasicBlock *BodyB = F.newBlock("while.body");
    BasicBlock *ExitB = F.newBlock("while.end");
    emitBr(CondB);
    setBlock(CondB);
    CurStmt = S->Id;
    genCond(WS->Cond.get(), BodyB, ExitB);
    Loops.push_back({ExitB, CondB});
    setBlock(BodyB);
    genStmt(WS->Body.get());
    CurStmt = S->Id; // Back edge belongs to the loop statement.
    emitBr(CondB);
    Loops.pop_back();
    setBlock(ExitB);
    return;
  }
  case Stmt::Kind::Do: {
    const auto *DS = cast<DoStmt>(S);
    BasicBlock *BodyB = F.newBlock("do.body");
    BasicBlock *CondB = F.newBlock("do.cond");
    BasicBlock *ExitB = F.newBlock("do.end");
    emitBr(BodyB);
    Loops.push_back({ExitB, CondB});
    setBlock(BodyB);
    genStmt(DS->Body.get());
    CurStmt = S->Id;
    emitBr(CondB);
    Loops.pop_back();
    setBlock(CondB);
    CurStmt = S->Id;
    genCond(DS->Cond.get(), BodyB, ExitB);
    setBlock(ExitB);
    return;
  }
  case Stmt::Kind::For: {
    const auto *FS = cast<ForStmt>(S);
    if (FS->Init)
      genStmt(FS->Init.get());
    CurStmt = S->Id;
    BasicBlock *CondB = F.newBlock("for.cond");
    BasicBlock *BodyB = F.newBlock("for.body");
    BasicBlock *IncB = F.newBlock("for.inc");
    BasicBlock *ExitB = F.newBlock("for.end");
    emitBr(CondB);
    setBlock(CondB);
    CurStmt = S->Id;
    if (FS->Cond)
      genCond(FS->Cond.get(), BodyB, ExitB);
    else
      emitBr(BodyB);
    Loops.push_back({ExitB, IncB});
    setBlock(BodyB);
    genStmt(FS->Body.get());
    CurStmt = FS->IncId != InvalidStmt ? FS->IncId : S->Id;
    emitBr(IncB);
    Loops.pop_back();
    setBlock(IncB);
    CurStmt = FS->IncId;
    if (FS->Inc)
      genExpr(FS->Inc.get());
    emitBr(CondB);
    setBlock(ExitB);
    return;
  }
  case Stmt::Kind::Return: {
    const auto *RS = cast<ReturnStmt>(S);
    Instr I;
    I.Op = Opcode::Ret;
    if (RS->Value)
      I.Ops = {genExpr(RS->Value.get())};
    emit(std::move(I));
    // Code after a return in the same block is unreachable; give it a
    // fresh block so the CFG stays well-formed.
    setBlock(F.newBlock("dead"));
    return;
  }
  case Stmt::Kind::Break: {
    BasicBlock *Dead = F.newBlock("dead");
    if (Loops.empty())
      internalError("break outside loop survived Sema");
    emitBr(Loops.empty() ? Dead : Loops.back().BreakTarget);
    setBlock(Dead);
    return;
  }
  case Stmt::Kind::Continue: {
    BasicBlock *Dead = F.newBlock("dead");
    if (Loops.empty())
      internalError("continue outside loop survived Sema");
    emitBr(Loops.empty() ? Dead : Loops.back().ContinueTarget);
    setBlock(Dead);
    return;
  }
  case Stmt::Kind::Empty:
    return;
  }
  sldb_unreachable("bad statement kind");
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

static Opcode opcodeForBinary(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return Opcode::Add;
  case BinaryOp::Sub:
    return Opcode::Sub;
  case BinaryOp::Mul:
    return Opcode::Mul;
  case BinaryOp::Div:
    return Opcode::Div;
  case BinaryOp::Rem:
    return Opcode::Rem;
  case BinaryOp::And:
    return Opcode::And;
  case BinaryOp::Or:
    return Opcode::Or;
  case BinaryOp::Xor:
    return Opcode::Xor;
  case BinaryOp::Shl:
    return Opcode::Shl;
  case BinaryOp::Shr:
    return Opcode::Shr;
  case BinaryOp::EQ:
    return Opcode::CmpEQ;
  case BinaryOp::NE:
    return Opcode::CmpNE;
  case BinaryOp::LT:
    return Opcode::CmpLT;
  case BinaryOp::LE:
    return Opcode::CmpLE;
  case BinaryOp::GT:
    return Opcode::CmpGT;
  case BinaryOp::GE:
    return Opcode::CmpGE;
  case BinaryOp::LogAnd:
  case BinaryOp::LogOr:
    break;
  }
  sldb_unreachable("not a simple binary op");
}

static Opcode opcodeForAssign(AssignOp Op) {
  switch (Op) {
  case AssignOp::Add:
    return Opcode::Add;
  case AssignOp::Sub:
    return Opcode::Sub;
  case AssignOp::Mul:
    return Opcode::Mul;
  case AssignOp::Div:
    return Opcode::Div;
  case AssignOp::Rem:
    return Opcode::Rem;
  case AssignOp::Plain:
    break;
  }
  sldb_unreachable("plain assignment has no opcode");
}

void IRGen::genCond(const Expr *E, BasicBlock *TrueB, BasicBlock *FalseB) {
  if (const auto *BE = dyn_cast<BinaryExpr>(E)) {
    if (BE->Op == BinaryOp::LogAnd) {
      BasicBlock *Mid = F.newBlock("and.rhs");
      genCond(BE->LHS.get(), Mid, FalseB);
      setBlock(Mid);
      genCond(BE->RHS.get(), TrueB, FalseB);
      return;
    }
    if (BE->Op == BinaryOp::LogOr) {
      BasicBlock *Mid = F.newBlock("or.rhs");
      genCond(BE->LHS.get(), TrueB, Mid);
      setBlock(Mid);
      genCond(BE->RHS.get(), TrueB, FalseB);
      return;
    }
  }
  if (const auto *UE = dyn_cast<UnaryExpr>(E)) {
    if (UE->Op == UnaryOp::LogNot) {
      genCond(UE->Sub.get(), FalseB, TrueB);
      return;
    }
  }
  Value V = genExpr(E);
  emitCondBr(V, TrueB, FalseB);
}

Value IRGen::genShortCircuit(const BinaryExpr *E) {
  // t = 0; if (cond) t = 1;
  Value T = F.newTemp(IRType::Int);
  emitUnary(Opcode::Copy, IRType::Int, T, Value::constInt(0));
  BasicBlock *SetB = F.newBlock("sc.true");
  BasicBlock *JoinB = F.newBlock("sc.end");
  genCond(E, SetB, JoinB);
  setBlock(SetB);
  emitUnary(Opcode::Copy, IRType::Int, T, Value::constInt(1));
  emitBr(JoinB);
  setBlock(JoinB);
  return T;
}

Value IRGen::genAddr(const Expr *E) {
  if (const auto *VR = dyn_cast<VarRefExpr>(E)) {
    // Address of a variable (array name or &scalar).
    Value T = F.newTemp(IRType::Ptr);
    emitUnary(Opcode::AddrOf, IRType::Ptr, T,
              Value::var(VR->Var, varIRType(VR->Var)));
    return T;
  }
  if (const auto *UE = dyn_cast<UnaryExpr>(E)) {
    if (UE->Op == UnaryOp::Deref)
      return genExpr(UE->Sub.get());
    if (UE->Op == UnaryOp::AddrOf)
      return genAddr(UE->Sub.get());
  }
  if (const auto *IE = dyn_cast<IndexExpr>(E)) {
    Value Base = genExpr(IE->Base.get());
    Value Idx = genExpr(IE->Index.get());
    Value T = F.newTemp(IRType::Ptr);
    emitBinary(Opcode::Add, IRType::Ptr, T, Base, Idx);
    return T;
  }
  sldb_unreachable("genAddr on non-lvalue");
}

Value IRGen::genAssign(const AssignExpr *E) {
  // Simple variable target.
  if (const auto *VR = dyn_cast<VarRefExpr>(E->Target.get());
      VR && !VR->IsArray) {
    VarId Var = VR->Var;
    IRType Ty = varIRType(Var);
    Value RHS;
    if (E->Op == AssignOp::Plain) {
      RHS = genExpr(E->Value.get());
      storeToVar(Var, RHS);
    } else {
      Value Old = Value::var(Var, Ty);
      Value New = genExpr(E->Value.get());
      Value T = F.newTemp(Ty);
      emitBinary(opcodeForAssign(E->Op), Ty, T, Old, New);
      storeToVar(Var, T);
    }
    return Value::var(Var, Ty);
  }

  // Memory target (deref or index).
  IRType ElemTy = irTypeFor(E->Target->Ty);
  Value Addr;
  if (const auto *UE = dyn_cast<UnaryExpr>(E->Target.get());
      UE && UE->Op == UnaryOp::Deref) {
    Addr = genExpr(UE->Sub.get());
  } else if (const auto *IE = dyn_cast<IndexExpr>(E->Target.get())) {
    Value Base = genExpr(IE->Base.get());
    Value Idx = genExpr(IE->Index.get());
    Addr = F.newTemp(IRType::Ptr);
    emitBinary(Opcode::Add, IRType::Ptr, Addr, Base, Idx);
  } else if (const auto *VRA = dyn_cast<VarRefExpr>(E->Target.get())) {
    // &scalar var target: cannot happen (handled above); arrays are not
    // assignable.
    (void)VRA;
    sldb_unreachable("bad assignment target");
  } else {
    sldb_unreachable("bad assignment target");
  }

  Value RHS;
  if (E->Op == AssignOp::Plain) {
    RHS = genExpr(E->Value.get());
  } else {
    Value Old = F.newTemp(ElemTy);
    emitUnary(Opcode::Load, ElemTy, Old, Addr);
    Value New = genExpr(E->Value.get());
    RHS = F.newTemp(ElemTy);
    emitBinary(opcodeForAssign(E->Op), ElemTy, RHS, Old, New);
  }
  Instr I;
  I.Op = Opcode::Store;
  I.Ty = ElemTy;
  I.Ops = {Addr, RHS};
  emit(std::move(I));
  return RHS;
}

Value IRGen::genIncDec(const UnaryExpr *E) {
  bool IsInc = E->Op == UnaryOp::PreInc || E->Op == UnaryOp::PostInc;
  bool IsPost = E->Op == UnaryOp::PostInc || E->Op == UnaryOp::PostDec;
  Opcode Op = IsInc ? Opcode::Add : Opcode::Sub;

  if (const auto *VR = dyn_cast<VarRefExpr>(E->Sub.get());
      VR && !VR->IsArray) {
    VarId Var = VR->Var;
    IRType Ty = varIRType(Var);
    Value Old = Value::var(Var, Ty);
    Value Saved;
    if (IsPost) {
      Saved = F.newTemp(Ty);
      emitUnary(Opcode::Copy, Ty, Saved, Old);
    }
    Value T = F.newTemp(Ty);
    emitBinary(Op, Ty, T, Old, Value::constInt(1));
    storeToVar(Var, T);
    return IsPost ? Saved : Value::var(Var, Ty);
  }

  // Memory lvalue.
  IRType ElemTy = irTypeFor(E->Sub->Ty);
  Value Addr = genAddr(E->Sub.get());
  Value Old = F.newTemp(ElemTy);
  emitUnary(Opcode::Load, ElemTy, Old, Addr);
  Value New = F.newTemp(ElemTy);
  emitBinary(Op, ElemTy, New, Old, Value::constInt(1));
  Instr I;
  I.Op = Opcode::Store;
  I.Ty = ElemTy;
  I.Ops = {Addr, New};
  emit(std::move(I));
  return IsPost ? Old : New;
}

Value IRGen::genCall(const CallExpr *E) {
  Instr I;
  I.Op = Opcode::Call;
  I.Ops.reserve(E->Args.size());
  for (const ExprPtr &A : E->Args)
    I.Ops.push_back(genExpr(A.get()));
  I.Callee = E->Func;
  I.BuiltinKind = E->BuiltinKind;
  I.Ty = irTypeFor(E->Ty);
  Value Result = Value::none();
  if (I.Ty != IRType::Void) {
    Result = F.newTemp(I.Ty);
    I.Dest = Result;
  }
  emit(std::move(I));
  return Result;
}

Value IRGen::genExpr(const Expr *E) {
  switch (E->getKind()) {
  case Expr::Kind::IntLiteral:
    return Value::constInt(cast<IntLiteralExpr>(E)->Value);
  case Expr::Kind::DoubleLiteral:
    return Value::constDouble(cast<DoubleLiteralExpr>(E)->Value);
  case Expr::Kind::VarRef: {
    const auto *VR = cast<VarRefExpr>(E);
    if (VR->IsArray)
      return genAddr(E);
    return Value::var(VR->Var, varIRType(VR->Var));
  }
  case Expr::Kind::Unary: {
    const auto *UE = cast<UnaryExpr>(E);
    switch (UE->Op) {
    case UnaryOp::Neg: {
      Value Sub = genExpr(UE->Sub.get());
      IRType Ty = irTypeFor(E->Ty);
      Value T = F.newTemp(Ty);
      emitUnary(Opcode::Neg, Ty, T, Sub);
      return T;
    }
    case UnaryOp::LogNot: {
      Value Sub = genExpr(UE->Sub.get());
      Value T = F.newTemp(IRType::Int);
      emitBinary(Opcode::CmpEQ, IRType::Int, T, Sub, Value::constInt(0));
      return T;
    }
    case UnaryOp::BitNot: {
      Value Sub = genExpr(UE->Sub.get());
      Value T = F.newTemp(IRType::Int);
      emitUnary(Opcode::Not, IRType::Int, T, Sub);
      return T;
    }
    case UnaryOp::Deref: {
      Value Addr = genExpr(UE->Sub.get());
      IRType Ty = irTypeFor(E->Ty);
      Value T = F.newTemp(Ty);
      emitUnary(Opcode::Load, Ty, T, Addr);
      return T;
    }
    case UnaryOp::AddrOf: {
      if (const auto *VR = dyn_cast<VarRefExpr>(UE->Sub.get());
          VR && !VR->IsArray) {
        Value T = F.newTemp(IRType::Ptr);
        emitUnary(Opcode::AddrOf, IRType::Ptr, T,
                  Value::var(VR->Var, varIRType(VR->Var)));
        return T;
      }
      return genAddr(UE->Sub.get());
    }
    case UnaryOp::PreInc:
    case UnaryOp::PreDec:
    case UnaryOp::PostInc:
    case UnaryOp::PostDec:
      return genIncDec(UE);
    }
    sldb_unreachable("bad unary op");
  }
  case Expr::Kind::Binary: {
    const auto *BE = cast<BinaryExpr>(E);
    if (BE->Op == BinaryOp::LogAnd || BE->Op == BinaryOp::LogOr)
      return genShortCircuit(BE);
    Value L = genExpr(BE->LHS.get());
    Value R = genExpr(BE->RHS.get());
    IRType Ty = irTypeFor(E->Ty);
    Value T = F.newTemp(Ty == IRType::Void ? IRType::Int : Ty);
    emitBinary(opcodeForBinary(BE->Op),
               isCompareOp(opcodeForBinary(BE->Op)) ? IRType::Int : Ty, T, L,
               R);
    return T;
  }
  case Expr::Kind::Assign:
    return genAssign(cast<AssignExpr>(E));
  case Expr::Kind::Index: {
    const auto *IE = cast<IndexExpr>(E);
    Value Base = genExpr(IE->Base.get());
    Value Idx = genExpr(IE->Index.get());
    Value Addr = F.newTemp(IRType::Ptr);
    emitBinary(Opcode::Add, IRType::Ptr, Addr, Base, Idx);
    IRType Ty = irTypeFor(E->Ty);
    Value T = F.newTemp(Ty);
    emitUnary(Opcode::Load, Ty, T, Addr);
    return T;
  }
  case Expr::Kind::Call:
    return genCall(cast<CallExpr>(E));
  case Expr::Kind::Ternary: {
    const auto *TE = cast<TernaryExpr>(E);
    IRType Ty = irTypeFor(E->Ty);
    Value T = F.newTemp(Ty);
    BasicBlock *ThenB = F.newBlock("sel.then");
    BasicBlock *ElseB = F.newBlock("sel.else");
    BasicBlock *JoinB = F.newBlock("sel.end");
    genCond(TE->Cond.get(), ThenB, ElseB);
    setBlock(ThenB);
    Value TV = genExpr(TE->Then.get());
    emitUnary(Opcode::Copy, Ty, T, TV);
    emitBr(JoinB);
    setBlock(ElseB);
    Value EV = genExpr(TE->Else.get());
    emitUnary(Opcode::Copy, Ty, T, EV);
    emitBr(JoinB);
    setBlock(JoinB);
    return T;
  }
  case Expr::Kind::Cast: {
    const auto *CE = cast<CastExpr>(E);
    Value Sub = genExpr(CE->Sub.get());
    IRType To = irTypeFor(E->Ty);
    if (To == IRType::Double && Sub.Ty == IRType::Int) {
      if (Sub.isConstInt())
        return Value::constDouble(static_cast<double>(Sub.IntVal));
      Value T = F.newTemp(IRType::Double);
      emitUnary(Opcode::CastItoD, IRType::Double, T, Sub);
      return T;
    }
    if (To == IRType::Int && Sub.Ty == IRType::Double) {
      if (Sub.isConstDouble())
        return Value::constInt(static_cast<std::int64_t>(Sub.DblVal));
      Value T = F.newTemp(IRType::Int);
      emitUnary(Opcode::CastDtoI, IRType::Int, T, Sub);
      return T;
    }
    return Sub;
  }
  }
  sldb_unreachable("bad expression kind");
}

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

std::unique_ptr<IRModule> sldb::generateIR(const TranslationUnit &TU,
                                           std::unique_ptr<ProgramInfo> Info,
                                           DiagnosticEngine *Diags,
                                           Arena *A) {
  auto M = std::make_unique<IRModule>(A);
  M->Info = std::move(Info);

  for (const VarDecl &G : TU.Globals) {
    if (!G.Init)
      continue;
    if (const auto *IL = dyn_cast<IntLiteralExpr>(G.Init.get()))
      M->GlobalInits.emplace_back(G.Var, Value::constInt(IL->Value));
    else if (const auto *DL = dyn_cast<DoubleLiteralExpr>(G.Init.get()))
      M->GlobalInits.emplace_back(G.Var, Value::constDouble(DL->Value));
  }

  for (const auto &FD : TU.Functions) {
    IRFunction *F =
        M->newFunction(FD->Func, FD->Name, irTypeFor(FD->RetTy));
    for (const VarDecl &P : FD->Params)
      F->Params.push_back(P.Var);
    IRGen Gen(*M, *F, *M->Info);
    Gen.genFunction(*FD);
    if (!Gen.InternalErr.empty()) {
      // An AST shape Sema should have rejected reached lowering: report
      // it as a structured diagnostic and discard the module rather than
      // asserting (DESIGN.md "Failure model").
      if (Diags)
        Diags->error(SourceLoc(), "internal error lowering '" + FD->Name +
                                      "': " + Gen.InternalErr);
      return nullptr;
    }
  }
  return M;
}

std::unique_ptr<IRModule> sldb::compileToIR(std::string_view Source,
                                            DiagnosticEngine &Diags,
                                            Arena *A) {
  FrontendResult FR = runFrontend(Source, Diags);
  if (!FR.TU)
    return nullptr;
  return generateIR(*FR.TU, std::move(FR.Info), &Diags, A);
}
