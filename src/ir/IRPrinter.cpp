//===- ir/IRPrinter.cpp ---------------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/IRPrinter.h"

#include <cstdio>

using namespace sldb;

const char *sldb::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::Div:
    return "div";
  case Opcode::Rem:
    return "rem";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Shl:
    return "shl";
  case Opcode::Shr:
    return "shr";
  case Opcode::CmpEQ:
    return "cmpeq";
  case Opcode::CmpNE:
    return "cmpne";
  case Opcode::CmpLT:
    return "cmplt";
  case Opcode::CmpLE:
    return "cmple";
  case Opcode::CmpGT:
    return "cmpgt";
  case Opcode::CmpGE:
    return "cmpge";
  case Opcode::Neg:
    return "neg";
  case Opcode::Not:
    return "not";
  case Opcode::Copy:
    return "copy";
  case Opcode::CastItoD:
    return "itod";
  case Opcode::CastDtoI:
    return "dtoi";
  case Opcode::AddrOf:
    return "addrof";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::Call:
    return "call";
  case Opcode::Br:
    return "br";
  case Opcode::CondBr:
    return "condbr";
  case Opcode::Ret:
    return "ret";
  case Opcode::DeadMarker:
    return "dead_marker";
  case Opcode::AvailMarker:
    return "avail_marker";
  case Opcode::Nop:
    return "nop";
  case Opcode::Phi:
    return "phi";
  }
  return "???";
}

std::string sldb::printValue(const Value &V, const ProgramInfo *Info) {
  switch (V.K) {
  case Value::Kind::None:
    return "<none>";
  case Value::Kind::Temp:
    return "t" + std::to_string(V.Id);
  case Value::Kind::Var:
    if (Info && V.Id < Info->Vars.size())
      return Info->var(V.Id).Name;
    return "v" + std::to_string(V.Id);
  case Value::Kind::ConstInt:
    return std::to_string(V.IntVal);
  case Value::Kind::ConstDouble: {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%g", V.DblVal);
    return Buf;
  }
  }
  return "?";
}

std::string sldb::printInstr(const Instr &I, const ProgramInfo *Info) {
  std::string S;
  auto Val = [&](const Value &V) { return printValue(V, Info); };

  switch (I.Op) {
  case Opcode::Br:
    S = "br " + I.Succs[0]->Name;
    break;
  case Opcode::CondBr:
    S = "condbr " + Val(I.Ops[0]) + ", " + I.Succs[0]->Name + ", " +
        I.Succs[1]->Name;
    break;
  case Opcode::Ret:
    S = I.Ops.empty() ? std::string("ret") : "ret " + Val(I.Ops[0]);
    break;
  case Opcode::Store:
    S = "store [" + Val(I.Ops[0]) + "] = " + Val(I.Ops[1]);
    break;
  case Opcode::Load:
    S = Val(I.Dest) + " = load [" + Val(I.Ops[0]) + "]";
    break;
  case Opcode::Call: {
    S = I.Dest.isNone() ? std::string("call ") : Val(I.Dest) + " = call ";
    if (I.BuiltinKind == Builtin::PrintInt)
      S += "print";
    else if (I.BuiltinKind == Builtin::PrintDouble)
      S += "printd";
    else if (Info && I.Callee < Info->Funcs.size())
      S += Info->func(I.Callee).Name;
    else
      S += "f" + std::to_string(I.Callee);
    S += "(";
    for (std::size_t A = 0; A < I.Ops.size(); ++A) {
      if (A)
        S += ", ";
      S += Val(I.Ops[A]);
    }
    S += ")";
    break;
  }
  case Opcode::DeadMarker: {
    std::string VarName = Info && I.MarkVar < Info->Vars.size()
                              ? Info->var(I.MarkVar).Name
                              : "v" + std::to_string(I.MarkVar);
    S = "dead_marker " + VarName + " @s" + std::to_string(I.MarkStmt);
    if (!I.Recovery.isNone())
      S += " recover=" + Val(I.Recovery);
    break;
  }
  case Opcode::AvailMarker: {
    std::string VarName = Info && I.MarkVar < Info->Vars.size()
                              ? Info->var(I.MarkVar).Name
                              : "v" + std::to_string(I.MarkVar);
    S = "avail_marker " + VarName + " @s" + std::to_string(I.MarkStmt) +
        " key=" + std::to_string(I.HoistKey);
    break;
  }
  case Opcode::Nop:
    S = "nop";
    break;
  case Opcode::Phi: {
    S = Val(I.Dest) + " = phi";
    for (std::size_t A = 0; A < I.Ops.size(); ++A) {
      S += (A ? ", [" : " [") + Val(I.Ops[A]);
      S += ", ";
      S += A < I.PhiPreds.size() && I.PhiPreds[A] ? I.PhiPreds[A]->Name
                                                  : "?";
      S += "]";
    }
    if (I.MarkVar != InvalidVar) {
      S += " var=";
      S += Info && I.MarkVar < Info->Vars.size()
               ? Info->var(I.MarkVar).Name
               : "v" + std::to_string(I.MarkVar);
    }
    break;
  }
  default: {
    S = Val(I.Dest) + " = " + opcodeName(I.Op);
    for (std::size_t A = 0; A < I.Ops.size(); ++A)
      S += (A ? ", " : " ") + Val(I.Ops[A]);
    break;
  }
  }

  // Annotations.
  std::string Ann;
  if (I.Stmt != InvalidStmt)
    Ann += " s" + std::to_string(I.Stmt);
  if (I.IsSourceAssign)
    Ann += " src-assign";
  if (I.IsHoisted)
    Ann += " hoisted(key=" + std::to_string(I.HoistKey) + ")";
  if (I.IsSunk)
    Ann += " sunk";
  if (!Ann.empty())
    S += "  ;" + Ann;
  return S;
}

std::string sldb::printFunction(const IRFunction &F,
                                const ProgramInfo *Info) {
  std::string S = "func " + F.Name + "(";
  for (std::size_t I = 0; I < F.Params.size(); ++I) {
    if (I)
      S += ", ";
    S += Info ? Info->var(F.Params[I]).Name
              : "v" + std::to_string(F.Params[I]);
  }
  S += ") {\n";
  for (const auto &B : F.Blocks) {
    S += B->Name + ":";
    if (!B->Preds.empty()) {
      S += "    ; preds:";
      for (const BasicBlock *P : B->Preds)
        S += " " + P->Name;
    }
    S += "\n";
    for (const Instr &I : B->Insts)
      S += "  " + printInstr(I, Info) + "\n";
  }
  S += "}\n";
  return S;
}

std::string sldb::printModule(const IRModule &M) {
  std::string S;
  for (const auto &F : M.Funcs) {
    S += printFunction(*F, M.Info.get());
    S += "\n";
  }
  return S;
}
