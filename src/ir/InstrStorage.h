//===- ir/InstrStorage.h - Arena-backed instruction storage -----*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense, stable instruction storage.  Every instruction of a function
/// lives in one InstrPool: slab-allocated slots carved from the function's
/// arena, each addressed by a dense InstrId that never moves (pointers and
/// ids stay valid across inserts and erases elsewhere).  Basic blocks hold
/// InstrLists — intrusive doubly-linked chains of pool ids — giving the
/// std::list mutation idioms (O(1) insert/erase/splice while iterating)
/// without per-node heap allocation or pointer-chasing across the heap:
/// within a block, consecutive instructions are overwhelmingly adjacent in
/// the slab, because IRGen appends in order.
///
/// Erased slots are recycled through a free list, so the id space stays
/// dense under pass churn; an id is only reused after its slot is freed
/// (same invalidation contract as a std::list iterator/pointer).
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_IR_INSTRSTORAGE_H
#define SLDB_IR_INSTRSTORAGE_H

#include "support/Arena.h"

#include <cassert>
#include <cstdint>
#include <iterator>
#include <utility>
#include <vector>

namespace sldb {

struct Instr;

/// Dense identity of an instruction slot within its function's pool.
using InstrId = std::uint32_t;
inline constexpr InstrId InvalidInstr = ~InstrId(0);

/// Slab-allocated instruction slots with intrusive prev/next links.
class InstrPool {
public:
  struct Node {
    // Defined in IR.h (Instr must be complete); see makeNode below.
    alignas(8) unsigned char Storage[1];
  };

  explicit InstrPool(Arena &A) : A(A) {}
  InstrPool(const InstrPool &) = delete;
  InstrPool &operator=(const InstrPool &) = delete;
  ~InstrPool();

  Instr &instr(InstrId Id);
  const Instr &instr(InstrId Id) const;

  InstrId prevOf(InstrId Id) const;
  InstrId nextOf(InstrId Id) const;
  void setPrev(InstrId Id, InstrId P);
  void setNext(InstrId Id, InstrId N);

  /// Allocates a slot holding \p I.  O(1); reuses freed slots first.
  InstrId alloc(Instr &&I);

  /// Releases a slot: its payload is cleared and the id goes back on the
  /// free list for reuse.  Pointers/iterators to OTHER slots stay valid.
  void free(InstrId Id);

  /// Upper bound (exclusive) of ids ever handed out: dense analyses can
  /// size flat arrays by this.
  InstrId idBound() const { return NumCreated; }

  /// Live slots (created minus freed).
  std::uint32_t liveCount() const { return NumCreated - NumFree; }

private:
  static constexpr unsigned SlabShift = 6; ///< 64 slots per slab.
  static constexpr unsigned SlabSlots = 1u << SlabShift;
  static constexpr unsigned SlabMask = SlabSlots - 1;

  struct Slot; ///< { Instr I; InstrId Prev, Next; } — defined in IR.h.
  Slot *slot(InstrId Id) const;

  Arena &A;
  std::vector<Slot *> Slabs;
  InstrId NumCreated = 0;
  InstrId FreeHead = InvalidInstr;
  std::uint32_t NumFree = 0;
};

/// An intrusive, index-linked instruction sequence inside one InstrPool.
/// Mirrors the std::list<Instr> surface the passes use; all mutation is
/// O(1) and never moves other elements.
class InstrList {
public:
  InstrList() = default;
  explicit InstrList(InstrPool *P) : P(P) {}

  InstrList(const InstrList &RHS) { *this = RHS; }
  InstrList &operator=(const InstrList &RHS);

  InstrList(InstrList &&RHS) noexcept
      : P(RHS.P), Head(RHS.Head), Tail(RHS.Tail), Count(RHS.Count) {
    RHS.Head = RHS.Tail = InvalidInstr;
    RHS.Count = 0;
  }

  ~InstrList() { clear(); }

  template <bool IsConst> class IterImpl {
    using PoolT = std::conditional_t<IsConst, const InstrPool, InstrPool>;

  public:
    using iterator_category = std::bidirectional_iterator_tag;
    using value_type = Instr;
    using difference_type = std::ptrdiff_t;
    using pointer = std::conditional_t<IsConst, const Instr *, Instr *>;
    using reference = std::conditional_t<IsConst, const Instr &, Instr &>;

    IterImpl() = default;
    IterImpl(PoolT *P, const InstrList *L, InstrId Id)
        : P(P), L(L), Id(Id) {}

    /// iterator -> const_iterator.
    template <bool C = IsConst, typename = std::enable_if_t<C>>
    IterImpl(const IterImpl<false> &RHS)
        : P(RHS.pool()), L(RHS.list()), Id(RHS.id()) {}

    reference operator*() const { return P->instr(Id); }
    pointer operator->() const { return &P->instr(Id); }

    IterImpl &operator++() {
      Id = P->nextOf(Id);
      return *this;
    }
    IterImpl operator++(int) {
      IterImpl T = *this;
      ++*this;
      return T;
    }
    IterImpl &operator--() {
      Id = (Id == InvalidInstr) ? L->Tail : P->prevOf(Id);
      return *this;
    }
    IterImpl operator--(int) {
      IterImpl T = *this;
      --*this;
      return T;
    }

    bool operator==(const IterImpl &RHS) const { return Id == RHS.Id; }
    bool operator!=(const IterImpl &RHS) const { return Id != RHS.Id; }

    PoolT *pool() const { return P; }
    const InstrList *list() const { return L; }
    InstrId id() const { return Id; }

  private:
    PoolT *P = nullptr;
    const InstrList *L = nullptr;
    InstrId Id = InvalidInstr;
  };

  using iterator = IterImpl<false>;
  using const_iterator = IterImpl<true>;
  using reverse_iterator = std::reverse_iterator<iterator>;
  using const_reverse_iterator = std::reverse_iterator<const_iterator>;

  iterator begin() { return iterator(P, this, Head); }
  iterator end() { return iterator(P, this, InvalidInstr); }
  const_iterator begin() const { return const_iterator(P, this, Head); }
  const_iterator end() const {
    return const_iterator(P, this, InvalidInstr);
  }
  reverse_iterator rbegin() { return reverse_iterator(end()); }
  reverse_iterator rend() { return reverse_iterator(begin()); }
  const_reverse_iterator rbegin() const {
    return const_reverse_iterator(end());
  }
  const_reverse_iterator rend() const {
    return const_reverse_iterator(begin());
  }

  bool empty() const { return Count == 0; }
  std::uint32_t size() const { return Count; }

  Instr &front() {
    assert(Count && "front() on empty list");
    return P->instr(Head);
  }
  const Instr &front() const {
    return const_cast<InstrList *>(this)->front();
  }
  Instr &back() {
    assert(Count && "back() on empty list");
    return P->instr(Tail);
  }
  const Instr &back() const {
    return const_cast<InstrList *>(this)->back();
  }

  void push_back(Instr I); // defined in IR.h (needs Instr complete)

  void pop_back() {
    assert(Count && "pop_back on empty list");
    eraseId(Tail);
  }

  /// Inserts before \p Pos; returns an iterator to the new instruction.
  iterator insert(const_iterator Pos, Instr I); // defined in IR.h

  /// Erases \p Pos; returns the iterator after it.
  iterator erase(const_iterator Pos) {
    InstrId Next = P->nextOf(Pos.id());
    eraseId(Pos.id());
    return iterator(P, this, Next);
  }

  void clear() {
    while (Count)
      eraseId(Head);
  }

  /// Moves every instruction of \p Other (same pool) before \p Pos.
  /// O(1): only links are rewritten; ids and pointers stay stable.
  void splice(const_iterator Pos, InstrList &Other);

  InstrPool *pool() const { return P; }

private:
  friend class IterImpl<false>;
  friend class IterImpl<true>;

  InstrId insertId(InstrId Before, Instr &&I);
  void eraseId(InstrId Id);

  InstrPool *P = nullptr;
  InstrId Head = InvalidInstr;
  InstrId Tail = InvalidInstr;
  std::uint32_t Count = 0;
};

} // namespace sldb

#endif // SLDB_IR_INSTRSTORAGE_H
