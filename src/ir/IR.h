//===- ir/IR.h - Three-address intermediate representation -----*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine-independent IR: a control-flow graph of basic blocks holding
/// three-address instructions whose operands are source variables, compiler
/// temporaries, or constants.  This mirrors cmcc's design (paper §3): a
/// non-SSA IR analyzed with bit-vector data-flow, annotated in place by the
/// optimizer's debug bookkeeping:
///
///  * every instruction carries the StmtId of the source statement it was
///    generated from;
///  * instructions that complete an assignment to a source variable carry
///    that variable (IsSourceAssign / destVar());
///  * code inserted by code hoisting or sinking is flagged IsHoisted /
///    IsSunk and carries a *hoist key* naming the assignment expression;
///  * eliminated assignments are replaced by DeadMarker / AvailMarker
///    pseudo-instructions (ignored by optimizations, used by the debugger
///    analyses), optionally carrying a recovery value.
///
/// Memory model (DESIGN.md "IR memory model & batch compilation"): every
/// function, block, and instruction of a module lives in one Arena.
/// Instructions sit in a per-function InstrPool — dense, stable InstrIds
/// chained into per-block InstrLists — so pass mutation keeps the std::list
/// idioms (O(1) insert/erase/splice, stable pointers) without a heap node
/// per instruction.  The IRModule owns the arena (or borrows a caller's,
/// for batch compilation) and destroys its functions; the arena itself
/// never runs destructors.
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_IR_IR_H
#define SLDB_IR_IR_H

#include "frontend/Ast.h"
#include "frontend/Symbols.h"
#include "ir/InstrStorage.h"
#include "support/Arena.h"
#include "support/Casting.h"
#include "support/SmallVector.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace sldb {

//===----------------------------------------------------------------------===//
// Types and values
//===----------------------------------------------------------------------===//

/// IR-level value types.  Pointers are untyped word addresses (MiniC memory
/// is word-addressed); load/store instructions carry the element type.
enum class IRType : std::uint8_t { Void, Int, Double, Ptr };

/// Converts a front-end type to an IR type.
inline IRType irTypeFor(QualType Ty) {
  switch (Ty.Kind) {
  case TypeKind::Void:
    return IRType::Void;
  case TypeKind::Int:
    return IRType::Int;
  case TypeKind::Double:
    return IRType::Double;
  case TypeKind::Ptr:
    return IRType::Ptr;
  }
  sldb_unreachable("bad type kind");
}

/// Identity of a compiler temporary, dense per function.
using TempId = std::uint32_t;

/// A small value: an operand or destination of an instruction.
/// Values are plain copyable structs (no use lists); def-use information is
/// computed on demand by the analysis library.
struct Value {
  enum class Kind : std::uint8_t { None, Temp, Var, ConstInt, ConstDouble };

  Kind K = Kind::None;
  IRType Ty = IRType::Void;
  std::uint32_t Id = 0;        ///< TempId or VarId.
  std::int64_t IntVal = 0;
  double DblVal = 0.0;

  static Value none() { return Value(); }
  static Value temp(TempId Id, IRType Ty) {
    Value V;
    V.K = Kind::Temp;
    V.Ty = Ty;
    V.Id = Id;
    return V;
  }
  static Value var(VarId Id, IRType Ty) {
    Value V;
    V.K = Kind::Var;
    V.Ty = Ty;
    V.Id = Id;
    return V;
  }
  static Value constInt(std::int64_t N) {
    Value V;
    V.K = Kind::ConstInt;
    V.Ty = IRType::Int;
    V.IntVal = N;
    return V;
  }
  static Value constDouble(double D) {
    Value V;
    V.K = Kind::ConstDouble;
    V.Ty = IRType::Double;
    V.DblVal = D;
    return V;
  }

  bool isNone() const { return K == Kind::None; }
  bool isTemp() const { return K == Kind::Temp; }
  bool isVar() const { return K == Kind::Var; }
  bool isConstInt() const { return K == Kind::ConstInt; }
  bool isConstDouble() const { return K == Kind::ConstDouble; }
  bool isConst() const { return isConstInt() || isConstDouble(); }

  bool operator==(const Value &RHS) const {
    if (K != RHS.K)
      return false;
    switch (K) {
    case Kind::None:
      return true;
    case Kind::Temp:
    case Kind::Var:
      return Id == RHS.Id;
    case Kind::ConstInt:
      return IntVal == RHS.IntVal;
    case Kind::ConstDouble:
      return DblVal == RHS.DblVal;
    }
    return false;
  }
  bool operator!=(const Value &RHS) const { return !(*this == RHS); }
};

//===----------------------------------------------------------------------===//
// Instructions
//===----------------------------------------------------------------------===//

/// IR opcodes.
enum class Opcode : std::uint8_t {
  // Binary arithmetic/logic (result type = Ty; Div/Rem trap on zero).
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  // Comparisons (operand type from operands; result Int 0/1).
  CmpEQ,
  CmpNE,
  CmpLT,
  CmpLE,
  CmpGT,
  CmpGE,
  // Unary.
  Neg,
  Not,
  // Data movement / conversion.
  Copy,
  CastItoD,
  CastDtoI,
  // Memory.  AddrOf yields the word address of a variable.
  AddrOf,
  Load,
  Store,
  // Calls (Ops = arguments).
  Call,
  // Terminators.
  Br,
  CondBr,
  Ret,
  // Debug bookkeeping pseudo-instructions (paper §3).
  DeadMarker,
  AvailMarker,
  Nop,
  // SSA phi node (SSA tier only: inserted by SsaConstruct, eliminated by
  // SsaDestruct before the pipeline ends; never reaches codegen or the
  // interpreter).  Ops[i] is the value flowing in from PhiPreds[i].
  Phi
};

/// Returns true for Br/CondBr/Ret.
inline bool isTerminator(Opcode Op) {
  return Op == Opcode::Br || Op == Opcode::CondBr || Op == Opcode::Ret;
}

/// Returns true for the debug marker pseudo-instructions.
inline bool isMarker(Opcode Op) {
  return Op == Opcode::DeadMarker || Op == Opcode::AvailMarker;
}

/// Returns true for binary ALU opcodes (Add..CmpGE).
inline bool isBinaryOp(Opcode Op) {
  return Op >= Opcode::Add && Op <= Opcode::CmpGE;
}

/// Returns true for comparison opcodes.
inline bool isCompareOp(Opcode Op) {
  return Op >= Opcode::CmpEQ && Op <= Opcode::CmpGE;
}

/// Identity of a hoistable assignment-expression key (see
/// IRFunction::HoistKeys); dense per function.
using HoistKeyId = std::uint32_t;
inline constexpr HoistKeyId InvalidHoistKey = ~HoistKeyId(0);

class BasicBlock;

/// One three-address instruction.
struct Instr {
  /// Operand list.  Two elements of inline storage: everything except a
  /// Call with 3+ arguments fits without touching the heap.
  using OpsVec = SmallVector<Value, 2>;

  Opcode Op = Opcode::Nop;
  IRType Ty = IRType::Void; ///< Result type.
  Value Dest;               ///< Temp or Var destination (or None).
  OpsVec Ops;               ///< Operands (see opcode conventions).
  FuncId Callee = InvalidFunc;
  Builtin BuiltinKind = Builtin::None;
  BasicBlock *Succs[2] = {nullptr, nullptr}; ///< Br: [0]; CondBr: [T, F].

  /// For Phi only: the predecessor block each operand flows in from
  /// (parallel to Ops).  Kept in sync with the block's predecessor set by
  /// the SSA passes; the verifier checks arity and membership.
  SmallVector<BasicBlock *, 2> PhiPreds;

  //===--- Debug annotations (paper §3 bookkeeping) -----------------------===//

  /// Source statement this instruction was generated from.
  StmtId Stmt = InvalidStmt;

  /// True if this instruction completes a source-level assignment to
  /// Dest (which is then a Var).  Set by IR generation; preserved (and
  /// copied) by optimizations.
  bool IsSourceAssign = false;

  /// True if this instruction was inserted by a code-hoisting
  /// transformation (PRE, LICM).
  bool IsHoisted = false;

  /// True if this instruction was inserted by a code-sinking
  /// transformation (partial dead-code elimination).
  bool IsSunk = false;

  /// For hoisted source assignments and AvailMarkers: the key of the
  /// assignment expression (index into IRFunction::HoistKeys).
  HoistKeyId HoistKey = InvalidHoistKey;

  /// For markers: the variable whose assignment was eliminated, and the
  /// statement id of the eliminated source assignment.
  VarId MarkVar = InvalidVar;
  StmtId MarkStmt = InvalidStmt;

  /// For DeadMarkers: optional recovery value — the eliminated
  /// assignment's right-hand side when it survives as a temporary,
  /// constant, or variable the debugger can read (paper §2.5).
  Value Recovery;

  /// Affine recovery for strength-reduced induction variables: the
  /// expected value of MarkVar is value(Recovery) / RecoveryScale.
  /// When RecoveryIsIV is set the relation is a loop invariant maintained
  /// by the strength-reduction updates, so redefinitions of the recovery
  /// temp do *not* invalidate it (unlike plain recovery).
  std::int64_t RecoveryScale = 1;
  bool RecoveryIsIV = false;

  //===--- Queries --------------------------------------------------------===//

  bool isTerm() const { return isTerminator(Op); }
  bool isMark() const { return isMarker(Op); }

  /// Returns the destination variable if this instruction writes a source
  /// variable, else InvalidVar.
  VarId destVar() const {
    return Dest.isVar() ? Dest.Id : InvalidVar;
  }

  /// Returns true if this instruction has observable side effects (and so
  /// cannot be deleted even if its result is unused).
  bool hasSideEffects() const {
    switch (Op) {
    case Opcode::Store:
    case Opcode::Call:
    case Opcode::Br:
    case Opcode::CondBr:
    case Opcode::Ret:
    case Opcode::DeadMarker:
    case Opcode::AvailMarker:
      return true;
    case Opcode::Div:
    case Opcode::Rem:
      // May trap on zero divisor; deleting changes behavior only for
      // faulting programs — we still treat them as deletable when dead,
      // as cmcc's optimizer did (C leaves this undefined).
      return false;
    default:
      return false;
    }
  }

  /// Number of successor blocks (terminators only).
  unsigned numSuccs() const {
    if (Op == Opcode::Br)
      return 1;
    if (Op == Opcode::CondBr)
      return 2;
    return 0;
  }
};

//===----------------------------------------------------------------------===//
// Basic blocks
//===----------------------------------------------------------------------===//

/// A basic block: a label plus a straight-line instruction list ending in a
/// terminator.  Blocks are arena-placed by IRFunction::newBlock and their
/// instructions live in the owning function's InstrPool.
class BasicBlock {
public:
  BasicBlock(InstrPool *P, std::uint32_t Id, std::string Name)
      : Id(Id), Name(std::move(Name)), Insts(P) {}

  std::uint32_t Id;
  std::string Name;
  InstrList Insts;

  /// Predecessors; maintained by IRFunction::recomputePreds().
  std::vector<BasicBlock *> Preds;

  /// Position of this block in the CFGContext traversal order (reverse
  /// post-order); maintained by CFGContext so the dataflow kernels can map
  /// block -> dense index without hashing.
  std::uint32_t CtxIndex = 0;

  /// The terminator (last instruction).  The block must be non-empty.
  Instr &term() {
    assert(!Insts.empty() && Insts.back().isTerm() &&
           "block has no terminator");
    return Insts.back();
  }
  const Instr &term() const {
    return const_cast<BasicBlock *>(this)->term();
  }

  bool hasTerm() const { return !Insts.empty() && Insts.back().isTerm(); }

  /// Non-allocating successor view: a pointer range into the
  /// terminator's successor array.  Stays valid while the terminator
  /// instruction itself is not erased.
  struct SuccRange {
    BasicBlock *const *First = nullptr;
    BasicBlock *const *Last = nullptr;
    BasicBlock *const *begin() const { return First; }
    BasicBlock *const *end() const { return Last; }
    std::size_t size() const { return static_cast<std::size_t>(Last - First); }
    bool empty() const { return First == Last; }
    BasicBlock *operator[](std::size_t I) const { return First[I]; }
  };

  SuccRange succRange() const {
    if (!hasTerm())
      return {};
    const Instr &T = Insts.back();
    return {T.Succs, T.Succs + T.numSuccs()};
  }

  /// Successor list (0, 1, or 2 blocks).  Allocates; prefer succRange()
  /// in hot paths.
  std::vector<BasicBlock *> succs() const {
    SuccRange R = succRange();
    return std::vector<BasicBlock *>(R.begin(), R.end());
  }

  /// Replaces every successor edge to \p From with \p To.
  void replaceSucc(BasicBlock *From, BasicBlock *To) {
    assert(hasTerm() && "no terminator");
    Instr &T = Insts.back();
    for (unsigned I = 0, E = T.numSuccs(); I != E; ++I)
      if (T.Succs[I] == From)
        T.Succs[I] = To;
  }
};

//===----------------------------------------------------------------------===//
// Functions and modules
//===----------------------------------------------------------------------===//

/// The assignment-expression key used by hoist-reach bookkeeping: names
/// "assignments of `A op B` to variable V" so that hoisted instances and
/// the redundant copies they make available can be matched by the debugger
/// (paper Definition 1: the analysis only needs to know that *some*
/// instance of the key was hoisted / eliminated, not which).
struct HoistKey {
  VarId V = InvalidVar;
  Opcode Op = Opcode::Nop;
  IRType Ty = IRType::Void;
  Value A, B;

  bool operator==(const HoistKey &RHS) const {
    return V == RHS.V && Op == RHS.Op && Ty == RHS.Ty && A == RHS.A &&
           B == RHS.B;
  }
};

/// One debug-bookkeeping integrity violation found by an annotation
/// verifier (ir/Verifier.h at the IR level, core/AnnotationVerifier.h at
/// the machine level).  `Var == InvalidVar` means the damage cannot be
/// attributed to a single variable and the whole function's debug info is
/// untrustworthy.  Findings never abort compilation: the Classifier
/// degrades the affected variables to conservative answers instead
/// (DESIGN.md "Failure model").
struct AnnotationFinding {
  VarId Var = InvalidVar;
  std::string Message;
};

/// An IR function: CFG + symbol references + bookkeeping tables.
///
/// Functions are arena-placed by IRModule::newFunction; the function
/// destroys its blocks (and its InstrPool the instructions), the arena
/// reclaims the memory when the module goes away.
class IRFunction {
public:
  /// Arena backing this function's blocks and instruction pool; owned by
  /// the IRModule.  Declared first: Pool is built over it.
  Arena &A;

  /// Storage for every instruction of this function.
  InstrPool Pool;

  IRFunction(Arena &A, FuncId Id, std::string Name, IRType RetTy)
      : A(A), Pool(A), Id(Id), Name(std::move(Name)), RetTy(RetTy) {}

  IRFunction(const IRFunction &) = delete;
  IRFunction &operator=(const IRFunction &) = delete;

  ~IRFunction() {
    for (BasicBlock *B : Blocks)
      B->~BasicBlock();
  }

  FuncId Id;
  std::string Name;
  IRType RetTy;
  std::vector<VarId> Params;

  std::vector<BasicBlock *> Blocks; ///< Blocks[0] = entry; arena-placed.
  TempId NextTemp = 0;
  std::uint32_t NextBlockId = 0;

  /// Assignment-expression keys referenced by hoisted instructions and
  /// AvailMarkers (HoistKeyId indexes here).
  std::vector<HoistKey> HoistKeys;

  /// Strength-reduction records: source induction variable V relates to
  /// the strength-reduced temporary as value(V) == value(Temp) / Scale,
  /// maintained as a loop invariant.  Dead-code elimination consults this
  /// to attach affine recovery to the markers of eliminated IV updates
  /// (paper §2.5).
  struct SRRecord {
    VarId V = InvalidVar;
    Value Temp;
    std::int64_t Scale = 1;
  };
  std::vector<SRRecord> SRRecords;

  /// Number of source statements (breakpoints) in this function.
  std::uint32_t NumStmts = 0;

  /// Debug-bookkeeping integrity findings, recomputed after every pass
  /// when the pipeline runs with VerifyAnnotations (the default) and
  /// carried through instruction selection into the MachineFunction so
  /// the Classifier can degrade the affected variables.
  std::vector<AnnotationFinding> AnnotationFindings;

  BasicBlock *entry() { return Blocks.front(); }
  const BasicBlock *entry() const { return Blocks.front(); }

  /// Creates a new empty block (appended; layout order = Blocks order).
  BasicBlock *newBlock(const std::string &NameHint) {
    BasicBlock *B = A.make<BasicBlock>(
        &Pool, NextBlockId, NameHint + std::to_string(NextBlockId));
    ++NextBlockId;
    Blocks.push_back(B);
    return B;
  }

  /// Allocates a fresh temporary of type \p Ty.
  Value newTemp(IRType Ty) { return Value::temp(NextTemp++, Ty); }

  /// Interns an assignment-expression key.
  HoistKeyId internHoistKey(const HoistKey &Key) {
    for (HoistKeyId I = 0; I < HoistKeys.size(); ++I)
      if (HoistKeys[I] == Key)
        return I;
    HoistKeys.push_back(Key);
    return static_cast<HoistKeyId>(HoistKeys.size() - 1);
  }

  /// Rebuilds every block's predecessor list from the terminators.
  void recomputePreds();

  /// Returns blocks in reverse post-order from the entry.  Unreachable
  /// blocks are appended at the end in layout order.
  std::vector<BasicBlock *> rpo();

  /// Removes blocks unreachable from the entry.  Returns true if any
  /// block was removed.  Debug markers in removed blocks are dropped:
  /// unreachable code never executes, so it carries no data-value
  /// information (paper §3, "basic block deletion").
  bool removeUnreachable();

  /// Splits the edge \p From -> \p To by inserting a fresh block
  /// containing only a Br.  Returns the new block.
  BasicBlock *splitEdge(BasicBlock *From, BasicBlock *To);
};

/// A compiled module: functions plus the symbol tables from Sema.
///
/// The module owns the arena every function/block/instruction lives in —
/// or borrows one from the caller (batch compilation: one arena reused
/// across modules, reset between them).
class IRModule {
public:
  /// With no argument the module creates and owns its arena; passing
  /// \p Ext makes it compile into the caller's arena instead.  In that
  /// case the module must be destroyed before the arena is reset.
  explicit IRModule(Arena *Ext = nullptr)
      : OwnedArena(Ext ? nullptr : new Arena(1 << 16)),
        A(Ext ? Ext : OwnedArena.get()) {}

  IRModule(const IRModule &) = delete;
  IRModule &operator=(const IRModule &) = delete;

  ~IRModule() {
    for (IRFunction *F : Funcs)
      F->~IRFunction();
  }

  Arena &arena() { return *A; }

  /// Creates a function in this module's arena.
  IRFunction *newFunction(FuncId Id, std::string Name, IRType RetTy) {
    IRFunction *F = A->make<IRFunction>(*A, Id, std::move(Name), RetTy);
    Funcs.push_back(F);
    return F;
  }

  std::unique_ptr<ProgramInfo> Info;
  std::vector<IRFunction *> Funcs; ///< Arena-placed; destroyed by ~IRModule.

  /// Constant initializers for global scalars.
  std::vector<std::pair<VarId, Value>> GlobalInits;

  IRFunction *findFunc(const std::string &Name) {
    for (IRFunction *F : Funcs)
      if (F->Name == Name)
        return F;
    return nullptr;
  }

private:
  std::unique_ptr<Arena> OwnedArena; ///< Null when borrowing.
  Arena *A;
};

//===----------------------------------------------------------------------===//
// InstrPool / InstrList implementation
//===----------------------------------------------------------------------===//
// Lives here (not in InstrStorage.h) because the slot layout needs Instr
// complete.  Everything is inline: these are the hottest paths in the
// compiler (every pass iteration walks them).

struct InstrPool::Slot {
  Instr I;
  InstrId Prev = InvalidInstr;
  InstrId Next = InvalidInstr;
};

inline InstrPool::Slot *InstrPool::slot(InstrId Id) const {
  assert(Id < NumCreated && "bad instruction id");
  return &Slabs[Id >> SlabShift][Id & SlabMask];
}

inline Instr &InstrPool::instr(InstrId Id) { return slot(Id)->I; }
inline const Instr &InstrPool::instr(InstrId Id) const {
  return slot(Id)->I;
}
inline InstrId InstrPool::prevOf(InstrId Id) const { return slot(Id)->Prev; }
inline InstrId InstrPool::nextOf(InstrId Id) const { return slot(Id)->Next; }
inline void InstrPool::setPrev(InstrId Id, InstrId P) { slot(Id)->Prev = P; }
inline void InstrPool::setNext(InstrId Id, InstrId N) { slot(Id)->Next = N; }

inline InstrId InstrPool::alloc(Instr &&I) {
  if (FreeHead != InvalidInstr) {
    InstrId Id = FreeHead;
    Slot *S = slot(Id);
    FreeHead = S->Next;
    --NumFree;
    S->I = std::move(I);
    S->Prev = S->Next = InvalidInstr;
    return Id;
  }
  if ((NumCreated & SlabMask) == 0)
    Slabs.push_back(A.allocate<Slot>(SlabSlots));
  InstrId Id = NumCreated++;
  Slot *S = new (&Slabs[Id >> SlabShift][Id & SlabMask]) Slot();
  S->I = std::move(I);
  return Id;
}

inline void InstrPool::free(InstrId Id) {
  Slot *S = slot(Id);
  // Clear the payload so any heap-spilled operand list is released now;
  // the slot object stays alive for reuse.
  S->I = Instr();
  S->Prev = InvalidInstr;
  S->Next = FreeHead;
  FreeHead = Id;
  ++NumFree;
}

inline InstrPool::~InstrPool() {
  // The arena reclaims the slabs; only non-trivial members of Instr (the
  // operand list when heap-spilled) need destruction.  Freed slots hold
  // empty instructions, so destroying every created slot is safe.
  for (InstrId Id = 0; Id < NumCreated; ++Id)
    slot(Id)->~Slot();
}

inline void InstrList::push_back(Instr I) {
  insertId(InvalidInstr, std::move(I));
}

inline InstrList::iterator InstrList::insert(const_iterator Pos, Instr I) {
  return iterator(P, this, insertId(Pos.id(), std::move(I)));
}

inline InstrId InstrList::insertId(InstrId Before, Instr &&I) {
  assert(P && "instruction list has no pool");
  InstrId Id = P->alloc(std::move(I));
  InstrId Prev = (Before == InvalidInstr) ? Tail : P->prevOf(Before);
  P->setPrev(Id, Prev);
  P->setNext(Id, Before);
  if (Prev != InvalidInstr)
    P->setNext(Prev, Id);
  else
    Head = Id;
  if (Before != InvalidInstr)
    P->setPrev(Before, Id);
  else
    Tail = Id;
  ++Count;
  return Id;
}

inline void InstrList::eraseId(InstrId Id) {
  InstrId Prev = P->prevOf(Id), Next = P->nextOf(Id);
  if (Prev != InvalidInstr)
    P->setNext(Prev, Next);
  else
    Head = Next;
  if (Next != InvalidInstr)
    P->setPrev(Next, Prev);
  else
    Tail = Prev;
  P->free(Id);
  --Count;
}

inline InstrList &InstrList::operator=(const InstrList &RHS) {
  if (this == &RHS)
    return *this;
  clear();
  if (!P)
    P = RHS.P;
  for (const Instr &I : RHS)
    push_back(I);
  return *this;
}

inline void InstrList::splice(const_iterator Pos, InstrList &Other) {
  if (&Other == this || Other.Count == 0)
    return;
  if (!P)
    P = Other.P;
  assert(P == Other.P && "splice across pools");
  InstrId Before = Pos.id();
  InstrId Prev = (Before == InvalidInstr) ? Tail : P->prevOf(Before);
  if (Prev != InvalidInstr)
    P->setNext(Prev, Other.Head);
  else
    Head = Other.Head;
  P->setPrev(Other.Head, Prev);
  P->setNext(Other.Tail, Before);
  if (Before != InvalidInstr)
    P->setPrev(Before, Other.Tail);
  else
    Tail = Other.Tail;
  Count += Other.Count;
  Other.Head = Other.Tail = InvalidInstr;
  Other.Count = 0;
}

} // namespace sldb

#endif // SLDB_IR_IR_H
