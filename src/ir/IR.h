//===- ir/IR.h - Three-address intermediate representation -----*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine-independent IR: a control-flow graph of basic blocks holding
/// three-address instructions whose operands are source variables, compiler
/// temporaries, or constants.  This mirrors cmcc's design (paper §3): a
/// non-SSA IR analyzed with bit-vector data-flow, annotated in place by the
/// optimizer's debug bookkeeping:
///
///  * every instruction carries the StmtId of the source statement it was
///    generated from;
///  * instructions that complete an assignment to a source variable carry
///    that variable (IsSourceAssign / destVar());
///  * code inserted by code hoisting or sinking is flagged IsHoisted /
///    IsSunk and carries a *hoist key* naming the assignment expression;
///  * eliminated assignments are replaced by DeadMarker / AvailMarker
///    pseudo-instructions (ignored by optimizations, used by the debugger
///    analyses), optionally carrying a recovery value.
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_IR_IR_H
#define SLDB_IR_IR_H

#include "frontend/Ast.h"
#include "frontend/Symbols.h"
#include "support/Casting.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <vector>

namespace sldb {

//===----------------------------------------------------------------------===//
// Types and values
//===----------------------------------------------------------------------===//

/// IR-level value types.  Pointers are untyped word addresses (MiniC memory
/// is word-addressed); load/store instructions carry the element type.
enum class IRType : std::uint8_t { Void, Int, Double, Ptr };

/// Converts a front-end type to an IR type.
inline IRType irTypeFor(QualType Ty) {
  switch (Ty.Kind) {
  case TypeKind::Void:
    return IRType::Void;
  case TypeKind::Int:
    return IRType::Int;
  case TypeKind::Double:
    return IRType::Double;
  case TypeKind::Ptr:
    return IRType::Ptr;
  }
  sldb_unreachable("bad type kind");
}

/// Identity of a compiler temporary, dense per function.
using TempId = std::uint32_t;

/// A small value: an operand or destination of an instruction.
/// Values are plain copyable structs (no use lists); def-use information is
/// computed on demand by the analysis library.
struct Value {
  enum class Kind : std::uint8_t { None, Temp, Var, ConstInt, ConstDouble };

  Kind K = Kind::None;
  IRType Ty = IRType::Void;
  std::uint32_t Id = 0;        ///< TempId or VarId.
  std::int64_t IntVal = 0;
  double DblVal = 0.0;

  static Value none() { return Value(); }
  static Value temp(TempId Id, IRType Ty) {
    Value V;
    V.K = Kind::Temp;
    V.Ty = Ty;
    V.Id = Id;
    return V;
  }
  static Value var(VarId Id, IRType Ty) {
    Value V;
    V.K = Kind::Var;
    V.Ty = Ty;
    V.Id = Id;
    return V;
  }
  static Value constInt(std::int64_t N) {
    Value V;
    V.K = Kind::ConstInt;
    V.Ty = IRType::Int;
    V.IntVal = N;
    return V;
  }
  static Value constDouble(double D) {
    Value V;
    V.K = Kind::ConstDouble;
    V.Ty = IRType::Double;
    V.DblVal = D;
    return V;
  }

  bool isNone() const { return K == Kind::None; }
  bool isTemp() const { return K == Kind::Temp; }
  bool isVar() const { return K == Kind::Var; }
  bool isConstInt() const { return K == Kind::ConstInt; }
  bool isConstDouble() const { return K == Kind::ConstDouble; }
  bool isConst() const { return isConstInt() || isConstDouble(); }

  bool operator==(const Value &RHS) const {
    if (K != RHS.K)
      return false;
    switch (K) {
    case Kind::None:
      return true;
    case Kind::Temp:
    case Kind::Var:
      return Id == RHS.Id;
    case Kind::ConstInt:
      return IntVal == RHS.IntVal;
    case Kind::ConstDouble:
      return DblVal == RHS.DblVal;
    }
    return false;
  }
  bool operator!=(const Value &RHS) const { return !(*this == RHS); }
};

//===----------------------------------------------------------------------===//
// Instructions
//===----------------------------------------------------------------------===//

/// IR opcodes.
enum class Opcode : std::uint8_t {
  // Binary arithmetic/logic (result type = Ty; Div/Rem trap on zero).
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  // Comparisons (operand type from operands; result Int 0/1).
  CmpEQ,
  CmpNE,
  CmpLT,
  CmpLE,
  CmpGT,
  CmpGE,
  // Unary.
  Neg,
  Not,
  // Data movement / conversion.
  Copy,
  CastItoD,
  CastDtoI,
  // Memory.  AddrOf yields the word address of a variable.
  AddrOf,
  Load,
  Store,
  // Calls (Ops = arguments).
  Call,
  // Terminators.
  Br,
  CondBr,
  Ret,
  // Debug bookkeeping pseudo-instructions (paper §3).
  DeadMarker,
  AvailMarker,
  Nop
};

/// Returns true for Br/CondBr/Ret.
inline bool isTerminator(Opcode Op) {
  return Op == Opcode::Br || Op == Opcode::CondBr || Op == Opcode::Ret;
}

/// Returns true for the debug marker pseudo-instructions.
inline bool isMarker(Opcode Op) {
  return Op == Opcode::DeadMarker || Op == Opcode::AvailMarker;
}

/// Returns true for binary ALU opcodes (Add..CmpGE).
inline bool isBinaryOp(Opcode Op) {
  return Op >= Opcode::Add && Op <= Opcode::CmpGE;
}

/// Returns true for comparison opcodes.
inline bool isCompareOp(Opcode Op) {
  return Op >= Opcode::CmpEQ && Op <= Opcode::CmpGE;
}

/// Identity of a hoistable assignment-expression key (see
/// IRFunction::HoistKeys); dense per function.
using HoistKeyId = std::uint32_t;
inline constexpr HoistKeyId InvalidHoistKey = ~HoistKeyId(0);

class BasicBlock;

/// One three-address instruction.
struct Instr {
  Opcode Op = Opcode::Nop;
  IRType Ty = IRType::Void; ///< Result type.
  Value Dest;               ///< Temp or Var destination (or None).
  std::vector<Value> Ops;   ///< Operands (see opcode conventions).
  FuncId Callee = InvalidFunc;
  Builtin BuiltinKind = Builtin::None;
  BasicBlock *Succs[2] = {nullptr, nullptr}; ///< Br: [0]; CondBr: [T, F].

  //===--- Debug annotations (paper §3 bookkeeping) -----------------------===//

  /// Source statement this instruction was generated from.
  StmtId Stmt = InvalidStmt;

  /// True if this instruction completes a source-level assignment to
  /// Dest (which is then a Var).  Set by IR generation; preserved (and
  /// copied) by optimizations.
  bool IsSourceAssign = false;

  /// True if this instruction was inserted by a code-hoisting
  /// transformation (PRE, LICM).
  bool IsHoisted = false;

  /// True if this instruction was inserted by a code-sinking
  /// transformation (partial dead-code elimination).
  bool IsSunk = false;

  /// For hoisted source assignments and AvailMarkers: the key of the
  /// assignment expression (index into IRFunction::HoistKeys).
  HoistKeyId HoistKey = InvalidHoistKey;

  /// For markers: the variable whose assignment was eliminated, and the
  /// statement id of the eliminated source assignment.
  VarId MarkVar = InvalidVar;
  StmtId MarkStmt = InvalidStmt;

  /// For DeadMarkers: optional recovery value — the eliminated
  /// assignment's right-hand side when it survives as a temporary,
  /// constant, or variable the debugger can read (paper §2.5).
  Value Recovery;

  /// Affine recovery for strength-reduced induction variables: the
  /// expected value of MarkVar is value(Recovery) / RecoveryScale.
  /// When RecoveryIsIV is set the relation is a loop invariant maintained
  /// by the strength-reduction updates, so redefinitions of the recovery
  /// temp do *not* invalidate it (unlike plain recovery).
  std::int64_t RecoveryScale = 1;
  bool RecoveryIsIV = false;

  //===--- Queries --------------------------------------------------------===//

  bool isTerm() const { return isTerminator(Op); }
  bool isMark() const { return isMarker(Op); }

  /// Returns the destination variable if this instruction writes a source
  /// variable, else InvalidVar.
  VarId destVar() const {
    return Dest.isVar() ? Dest.Id : InvalidVar;
  }

  /// Returns true if this instruction has observable side effects (and so
  /// cannot be deleted even if its result is unused).
  bool hasSideEffects() const {
    switch (Op) {
    case Opcode::Store:
    case Opcode::Call:
    case Opcode::Br:
    case Opcode::CondBr:
    case Opcode::Ret:
    case Opcode::DeadMarker:
    case Opcode::AvailMarker:
      return true;
    case Opcode::Div:
    case Opcode::Rem:
      // May trap on zero divisor; deleting changes behavior only for
      // faulting programs — we still treat them as deletable when dead,
      // as cmcc's optimizer did (C leaves this undefined).
      return false;
    default:
      return false;
    }
  }

  /// Number of successor blocks (terminators only).
  unsigned numSuccs() const {
    if (Op == Opcode::Br)
      return 1;
    if (Op == Opcode::CondBr)
      return 2;
    return 0;
  }
};

//===----------------------------------------------------------------------===//
// Basic blocks
//===----------------------------------------------------------------------===//

/// A basic block: a label plus a straight-line instruction list ending in a
/// terminator.
class BasicBlock {
public:
  BasicBlock(std::uint32_t Id, std::string Name)
      : Id(Id), Name(std::move(Name)) {}

  std::uint32_t Id;
  std::string Name;
  std::list<Instr> Insts;

  /// Predecessors; maintained by IRFunction::recomputePreds().
  std::vector<BasicBlock *> Preds;

  /// The terminator (last instruction).  The block must be non-empty.
  Instr &term() {
    assert(!Insts.empty() && Insts.back().isTerm() &&
           "block has no terminator");
    return Insts.back();
  }
  const Instr &term() const {
    return const_cast<BasicBlock *>(this)->term();
  }

  bool hasTerm() const { return !Insts.empty() && Insts.back().isTerm(); }

  /// Successor list (0, 1, or 2 blocks).
  std::vector<BasicBlock *> succs() const {
    std::vector<BasicBlock *> S;
    if (!hasTerm())
      return S;
    const Instr &T = Insts.back();
    for (unsigned I = 0, E = T.numSuccs(); I != E; ++I)
      S.push_back(T.Succs[I]);
    return S;
  }

  /// Replaces every successor edge to \p From with \p To.
  void replaceSucc(BasicBlock *From, BasicBlock *To) {
    assert(hasTerm() && "no terminator");
    Instr &T = Insts.back();
    for (unsigned I = 0, E = T.numSuccs(); I != E; ++I)
      if (T.Succs[I] == From)
        T.Succs[I] = To;
  }
};

//===----------------------------------------------------------------------===//
// Functions and modules
//===----------------------------------------------------------------------===//

/// The assignment-expression key used by hoist-reach bookkeeping: names
/// "assignments of `A op B` to variable V" so that hoisted instances and
/// the redundant copies they make available can be matched by the debugger
/// (paper Definition 1: the analysis only needs to know that *some*
/// instance of the key was hoisted / eliminated, not which).
struct HoistKey {
  VarId V = InvalidVar;
  Opcode Op = Opcode::Nop;
  IRType Ty = IRType::Void;
  Value A, B;

  bool operator==(const HoistKey &RHS) const {
    return V == RHS.V && Op == RHS.Op && Ty == RHS.Ty && A == RHS.A &&
           B == RHS.B;
  }
};

/// One debug-bookkeeping integrity violation found by an annotation
/// verifier (ir/Verifier.h at the IR level, core/AnnotationVerifier.h at
/// the machine level).  `Var == InvalidVar` means the damage cannot be
/// attributed to a single variable and the whole function's debug info is
/// untrustworthy.  Findings never abort compilation: the Classifier
/// degrades the affected variables to conservative answers instead
/// (DESIGN.md "Failure model").
struct AnnotationFinding {
  VarId Var = InvalidVar;
  std::string Message;
};

/// An IR function: CFG + symbol references + bookkeeping tables.
class IRFunction {
public:
  IRFunction(FuncId Id, std::string Name, IRType RetTy)
      : Id(Id), Name(std::move(Name)), RetTy(RetTy) {}

  FuncId Id;
  std::string Name;
  IRType RetTy;
  std::vector<VarId> Params;

  std::vector<std::unique_ptr<BasicBlock>> Blocks; ///< Blocks[0] = entry.
  TempId NextTemp = 0;
  std::uint32_t NextBlockId = 0;

  /// Assignment-expression keys referenced by hoisted instructions and
  /// AvailMarkers (HoistKeyId indexes here).
  std::vector<HoistKey> HoistKeys;

  /// Strength-reduction records: source induction variable V relates to
  /// the strength-reduced temporary as value(V) == value(Temp) / Scale,
  /// maintained as a loop invariant.  Dead-code elimination consults this
  /// to attach affine recovery to the markers of eliminated IV updates
  /// (paper §2.5).
  struct SRRecord {
    VarId V = InvalidVar;
    Value Temp;
    std::int64_t Scale = 1;
  };
  std::vector<SRRecord> SRRecords;

  /// Number of source statements (breakpoints) in this function.
  std::uint32_t NumStmts = 0;

  /// Debug-bookkeeping integrity findings, recomputed after every pass
  /// when the pipeline runs with VerifyAnnotations (the default) and
  /// carried through instruction selection into the MachineFunction so
  /// the Classifier can degrade the affected variables.
  std::vector<AnnotationFinding> AnnotationFindings;

  BasicBlock *entry() { return Blocks.front().get(); }
  const BasicBlock *entry() const { return Blocks.front().get(); }

  /// Creates a new empty block (appended; layout order = Blocks order).
  BasicBlock *newBlock(const std::string &NameHint) {
    Blocks.push_back(std::make_unique<BasicBlock>(
        NextBlockId, NameHint + std::to_string(NextBlockId)));
    ++NextBlockId;
    return Blocks.back().get();
  }

  /// Allocates a fresh temporary of type \p Ty.
  Value newTemp(IRType Ty) { return Value::temp(NextTemp++, Ty); }

  /// Interns an assignment-expression key.
  HoistKeyId internHoistKey(const HoistKey &Key) {
    for (HoistKeyId I = 0; I < HoistKeys.size(); ++I)
      if (HoistKeys[I] == Key)
        return I;
    HoistKeys.push_back(Key);
    return static_cast<HoistKeyId>(HoistKeys.size() - 1);
  }

  /// Rebuilds every block's predecessor list from the terminators.
  void recomputePreds();

  /// Returns blocks in reverse post-order from the entry.  Unreachable
  /// blocks are appended at the end in layout order.
  std::vector<BasicBlock *> rpo();

  /// Removes blocks unreachable from the entry.  Returns true if any
  /// block was removed.  Debug markers in removed blocks are dropped:
  /// unreachable code never executes, so it carries no data-value
  /// information (paper §3, "basic block deletion").
  bool removeUnreachable();

  /// Splits the edge \p From -> \p To by inserting a fresh block
  /// containing only a Br.  Returns the new block.
  BasicBlock *splitEdge(BasicBlock *From, BasicBlock *To);
};

/// A compiled module: functions plus the symbol tables from Sema.
class IRModule {
public:
  std::unique_ptr<ProgramInfo> Info;
  std::vector<std::unique_ptr<IRFunction>> Funcs;

  /// Constant initializers for global scalars.
  std::vector<std::pair<VarId, Value>> GlobalInits;

  IRFunction *findFunc(const std::string &Name) {
    for (auto &F : Funcs)
      if (F->Name == Name)
        return F.get();
    return nullptr;
  }
};

} // namespace sldb

#endif // SLDB_IR_IR_H
