//===- ir/IR.cpp - CFG utilities ------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/IR.h"

#include <algorithm>
#include <unordered_set>

using namespace sldb;

void IRFunction::recomputePreds() {
  for (auto &B : Blocks)
    B->Preds.clear();
  for (auto &B : Blocks)
    for (BasicBlock *S : B->succs())
      S->Preds.push_back(B.get());
}

std::vector<BasicBlock *> IRFunction::rpo() {
  std::vector<BasicBlock *> Order;
  if (Blocks.empty())
    return Order;
  std::unordered_set<BasicBlock *> Visited;
  // Iterative post-order DFS.
  std::vector<std::pair<BasicBlock *, unsigned>> Stack;
  Stack.emplace_back(entry(), 0);
  Visited.insert(entry());
  std::vector<BasicBlock *> Post;
  while (!Stack.empty()) {
    auto &[B, NextSucc] = Stack.back();
    std::vector<BasicBlock *> Succs = B->succs();
    if (NextSucc < Succs.size()) {
      BasicBlock *S = Succs[NextSucc++];
      if (Visited.insert(S).second)
        Stack.emplace_back(S, 0);
      continue;
    }
    Post.push_back(B);
    Stack.pop_back();
  }
  Order.assign(Post.rbegin(), Post.rend());
  // Append unreachable blocks in layout order so analyses still see them.
  for (auto &B : Blocks)
    if (!Visited.count(B.get()))
      Order.push_back(B.get());
  return Order;
}

bool IRFunction::removeUnreachable() {
  std::unordered_set<BasicBlock *> Reachable;
  std::vector<BasicBlock *> Work{entry()};
  Reachable.insert(entry());
  while (!Work.empty()) {
    BasicBlock *B = Work.back();
    Work.pop_back();
    for (BasicBlock *S : B->succs())
      if (Reachable.insert(S).second)
        Work.push_back(S);
  }
  std::size_t Before = Blocks.size();
  Blocks.erase(std::remove_if(Blocks.begin(), Blocks.end(),
                              [&](const std::unique_ptr<BasicBlock> &B) {
                                return !Reachable.count(B.get());
                              }),
               Blocks.end());
  if (Blocks.size() != Before) {
    recomputePreds();
    return true;
  }
  return false;
}

BasicBlock *IRFunction::splitEdge(BasicBlock *From, BasicBlock *To) {
  BasicBlock *Mid = newBlock("split");
  Instr Jump;
  Jump.Op = Opcode::Br;
  Jump.Succs[0] = To;
  Mid->Insts.push_back(Jump);
  From->replaceSucc(To, Mid);
  recomputePreds();
  return Mid;
}
