//===- ir/IR.cpp - CFG utilities ------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/IR.h"

#include <algorithm>

using namespace sldb;

void IRFunction::recomputePreds() {
  for (BasicBlock *B : Blocks)
    B->Preds.clear();
  for (BasicBlock *B : Blocks)
    for (BasicBlock *S : B->succRange())
      S->Preds.push_back(B);
}

std::vector<BasicBlock *> IRFunction::rpo() {
  std::vector<BasicBlock *> Order;
  if (Blocks.empty())
    return Order;
  // Block ids are assigned monotonically and never reused, so a flat
  // byte map indexed by id replaces a hash set on the hot path.
  std::vector<char> Visited(NextBlockId, 0);
  // Iterative post-order DFS.
  std::vector<std::pair<BasicBlock *, unsigned>> Stack;
  Stack.emplace_back(entry(), 0);
  Visited[entry()->Id] = 1;
  std::vector<BasicBlock *> Post;
  while (!Stack.empty()) {
    auto &[B, NextSucc] = Stack.back();
    BasicBlock::SuccRange Succs = B->succRange();
    if (NextSucc < Succs.size()) {
      BasicBlock *S = Succs[NextSucc++];
      if (!Visited[S->Id]) {
        Visited[S->Id] = 1;
        Stack.emplace_back(S, 0);
      }
      continue;
    }
    Post.push_back(B);
    Stack.pop_back();
  }
  Order.assign(Post.rbegin(), Post.rend());
  // Append unreachable blocks in layout order so analyses still see them.
  for (BasicBlock *B : Blocks)
    if (!Visited[B->Id])
      Order.push_back(B);
  return Order;
}

bool IRFunction::removeUnreachable() {
  std::vector<char> Reachable(NextBlockId, 0);
  std::vector<BasicBlock *> Work{entry()};
  Reachable[entry()->Id] = 1;
  while (!Work.empty()) {
    BasicBlock *B = Work.back();
    Work.pop_back();
    for (BasicBlock *S : B->succRange())
      if (!Reachable[S->Id]) {
        Reachable[S->Id] = 1;
        Work.push_back(S);
      }
  }
  std::size_t Before = Blocks.size();
  Blocks.erase(std::remove_if(Blocks.begin(), Blocks.end(),
                              [&](BasicBlock *B) {
                                if (Reachable[B->Id])
                                  return false;
                                // Release the block's instructions back to
                                // the pool; the arena keeps the memory.
                                B->~BasicBlock();
                                return true;
                              }),
               Blocks.end());
  if (Blocks.size() != Before) {
    recomputePreds();
    return true;
  }
  return false;
}

BasicBlock *IRFunction::splitEdge(BasicBlock *From, BasicBlock *To) {
  BasicBlock *Mid = newBlock("split");
  Instr Jump;
  Jump.Op = Opcode::Br;
  Jump.Succs[0] = To;
  Mid->Insts.push_back(std::move(Jump));
  From->replaceSucc(To, Mid);
  // Incremental pred update, reproducing recomputePreds() order exactly:
  // Mid is the last block, so its entries in To->Preds go at the end
  // (one per redirected From->To edge), and From's entries disappear.
  std::size_t Redirected = 0;
  auto &TP = To->Preds;
  TP.erase(std::remove_if(TP.begin(), TP.end(),
                          [&](BasicBlock *P) {
                            if (P != From)
                              return false;
                            ++Redirected;
                            return true;
                          }),
           TP.end());
  if (Redirected == 0)
    Redirected = 1; // Stale preds: still record the edge we created.
  TP.insert(TP.end(), Redirected, Mid);
  Mid->Preds.assign(Redirected, From);
  return Mid;
}
