//===- ir/Interp.cpp ------------------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Interp.h"

#include "support/Casting.h"
#include "support/ZeroedBuffer.h"

#include <cmath>
#include <cstdio>
#include <unordered_map>

using namespace sldb;

namespace {

/// One 64-bit memory word; MiniC memory is word-addressed.
struct Word {
  std::int64_t I = 0;
  double D = 0.0;
};

/// A runtime value.
struct RtVal {
  IRType Ty = IRType::Int;
  std::int64_t I = 0;
  double D = 0.0;

  static RtVal ofInt(std::int64_t V, IRType Ty = IRType::Int) {
    RtVal R;
    R.Ty = Ty;
    R.I = V;
    return R;
  }
  static RtVal ofDouble(double V) {
    RtVal R;
    R.Ty = IRType::Double;
    R.D = V;
    return R;
  }
};

/// One activation record.
struct Frame {
  const IRFunction *F = nullptr;
  const BasicBlock *BB = nullptr;
  InstrList::const_iterator IP;
  std::unordered_map<VarId, RtVal> RegVars;   ///< Promoted variables.
  std::unordered_map<TempId, RtVal> Temps;
  std::unordered_map<VarId, std::size_t> MemVars; ///< Memory-homed locals.
  std::size_t SavedSP = 0;
  Value RetDest; ///< Caller-side destination for the return value.
};

class Interpreter {
public:
  Interpreter(const IRModule &M, std::uint64_t MaxSteps)
      : M(M), Info(*M.Info), MaxSteps(MaxSteps), Mem(1 << 22) {}

  ExecResult run();

private:
  void trap(const std::string &Msg) {
    if (!Result.Trapped) {
      Result.Trapped = true;
      Result.TrapMsg = Msg;
    }
  }

  RtVal eval(const Value &V, Frame &Fr);
  void writeDest(const Value &Dest, RtVal V, Frame &Fr);
  std::size_t varAddr(VarId Id, Frame &Fr);
  bool checkAddr(std::size_t Addr) {
    if (Addr < Mem.size())
      return true;
    trap("memory access out of bounds at address " + std::to_string(Addr));
    return false;
  }
  void pushFrame(const IRFunction *F, const std::vector<RtVal> &Args,
                 Value RetDest);
  void execute(const Instr &I, Frame &Fr, bool &Advanced);

  const IRModule &M;
  const ProgramInfo &Info;
  std::uint64_t MaxSteps;
  ExecResult Result;

  ZeroedBuffer<Word> Mem; ///< 4M words, lazily-mapped zero pages.
  std::size_t SP = 0; ///< Bump allocator top for frames.
  std::unordered_map<VarId, std::size_t> GlobalAddr;
  std::unordered_map<VarId, RtVal> GlobalRegs; ///< Scalar globals.
  std::vector<Frame> Stack;
};

} // namespace

std::size_t Interpreter::varAddr(VarId Id, Frame &Fr) {
  auto It = Fr.MemVars.find(Id);
  if (It != Fr.MemVars.end())
    return It->second;
  auto G = GlobalAddr.find(Id);
  if (G != GlobalAddr.end())
    return G->second;
  trap("address taken of unallocated variable '" + Info.var(Id).Name + "'");
  return 0;
}

RtVal Interpreter::eval(const Value &V, Frame &Fr) {
  switch (V.K) {
  case Value::Kind::ConstInt:
    return RtVal::ofInt(V.IntVal, V.Ty);
  case Value::Kind::ConstDouble:
    return RtVal::ofDouble(V.DblVal);
  case Value::Kind::Temp: {
    auto It = Fr.Temps.find(V.Id);
    if (It != Fr.Temps.end())
      return It->second;
    return RtVal::ofInt(0, V.Ty); // Uninitialized temps read as zero.
  }
  case Value::Kind::Var: {
    const VarInfo &VI = Info.var(V.Id);
    if (VI.Storage == StorageKind::Global) {
      if (VI.isScalar() && !VI.AddressTaken) {
        auto It = GlobalRegs.find(V.Id);
        return It != GlobalRegs.end() ? It->second : RtVal::ofInt(0, V.Ty);
      }
      std::size_t Addr = GlobalAddr.at(V.Id);
      if (VI.ArraySize != 0)
        return RtVal::ofInt(static_cast<std::int64_t>(Addr), IRType::Ptr);
      const Word &W = Mem[Addr];
      return VI.Ty.isDouble() ? RtVal::ofDouble(W.D)
                              : RtVal::ofInt(W.I, V.Ty);
    }
    if (VI.isPromotable()) {
      auto It = Fr.RegVars.find(V.Id);
      return It != Fr.RegVars.end() ? It->second : RtVal::ofInt(0, V.Ty);
    }
    std::size_t Addr = varAddr(V.Id, Fr);
    if (VI.ArraySize != 0)
      return RtVal::ofInt(static_cast<std::int64_t>(Addr), IRType::Ptr);
    if (!checkAddr(Addr))
      return RtVal::ofInt(0);
    const Word &W = Mem[Addr];
    return VI.Ty.isDouble() ? RtVal::ofDouble(W.D) : RtVal::ofInt(W.I, V.Ty);
  }
  case Value::Kind::None:
    break;
  }
  trap("evaluating an empty value");
  return RtVal::ofInt(0);
}

void Interpreter::writeDest(const Value &Dest, RtVal V, Frame &Fr) {
  if (Dest.isTemp()) {
    Fr.Temps[Dest.Id] = V;
    return;
  }
  if (!Dest.isVar()) {
    trap("internal error: bad destination operand");
    return;
  }
  const VarInfo &VI = Info.var(Dest.Id);
  if (VI.Storage == StorageKind::Global) {
    if (VI.isScalar() && !VI.AddressTaken) {
      GlobalRegs[Dest.Id] = V;
      return;
    }
    std::size_t Addr = GlobalAddr.at(Dest.Id);
    Word &W = Mem[Addr];
    if (VI.Ty.isDouble())
      W.D = V.D;
    else
      W.I = V.I;
    return;
  }
  if (VI.isPromotable()) {
    Fr.RegVars[Dest.Id] = V;
    return;
  }
  std::size_t Addr = varAddr(Dest.Id, Fr);
  if (!checkAddr(Addr))
    return;
  Word &W = Mem[Addr];
  if (VI.Ty.isDouble())
    W.D = V.D;
  else
    W.I = V.I;
}

void Interpreter::pushFrame(const IRFunction *F,
                            const std::vector<RtVal> &Args, Value RetDest) {
  Frame Fr;
  Fr.F = F;
  Fr.BB = F->entry();
  Fr.IP = Fr.BB->Insts.begin();
  Fr.SavedSP = SP;
  Fr.RetDest = RetDest;

  // Allocate memory-homed locals.
  for (VarId Id : Info.func(F->Id).Locals) {
    const VarInfo &VI = Info.var(Id);
    if (VI.isPromotable())
      continue;
    std::size_t Size = VI.ArraySize ? VI.ArraySize : 1;
    if (SP + Size > Mem.size()) {
      trap("stack overflow");
      return;
    }
    for (std::size_t I = 0; I < Size; ++I)
      Mem[SP + I] = Word();
    Fr.MemVars[Id] = SP;
    SP += Size;
  }

  // Bind parameters.
  const FuncInfo &FI = Info.func(F->Id);
  for (std::size_t I = 0; I < FI.Params.size() && I < Args.size(); ++I) {
    Value P = Value::var(FI.Params[I], IRType::Int);
    writeDest(P, Args[I], Fr);
  }
  Stack.push_back(std::move(Fr));
}

void Interpreter::execute(const Instr &I, Frame &Fr, bool &Advanced) {
  Advanced = false;
  auto A = [&](unsigned N) { return eval(I.Ops[N], Fr); };

  switch (I.Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Rem: {
    RtVal L = A(0), R = A(1);
    if (I.Ty == IRType::Double) {
      double X = L.D, Y = R.D, Z = 0;
      switch (I.Op) {
      case Opcode::Add:
        Z = X + Y;
        break;
      case Opcode::Sub:
        Z = X - Y;
        break;
      case Opcode::Mul:
        Z = X * Y;
        break;
      case Opcode::Div:
        Z = Y == 0 ? 0 : X / Y;
        break;
      default:
        trap("rem on double");
        return;
      }
      writeDest(I.Dest, RtVal::ofDouble(Z), Fr);
      break;
    }
    std::int64_t X = L.I, Y = R.I, Z = 0;
    switch (I.Op) {
    case Opcode::Add:
      Z = X + Y;
      break;
    case Opcode::Sub:
      Z = X - Y;
      break;
    case Opcode::Mul:
      Z = X * Y;
      break;
    case Opcode::Div:
      if (Y == 0) {
        trap("integer division by zero");
        return;
      }
      Z = X / Y;
      break;
    case Opcode::Rem:
      if (Y == 0) {
        trap("integer remainder by zero");
        return;
      }
      Z = X % Y;
      break;
    default:
      break;
    }
    writeDest(I.Dest, RtVal::ofInt(Z, I.Ty), Fr);
    break;
  }
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr: {
    std::int64_t X = A(0).I, Y = A(1).I, Z = 0;
    switch (I.Op) {
    case Opcode::And:
      Z = X & Y;
      break;
    case Opcode::Or:
      Z = X | Y;
      break;
    case Opcode::Xor:
      Z = X ^ Y;
      break;
    case Opcode::Shl:
      Z = X << (Y & 63);
      break;
    case Opcode::Shr:
      Z = X >> (Y & 63);
      break;
    default:
      break;
    }
    writeDest(I.Dest, RtVal::ofInt(Z), Fr);
    break;
  }
  case Opcode::CmpEQ:
  case Opcode::CmpNE:
  case Opcode::CmpLT:
  case Opcode::CmpLE:
  case Opcode::CmpGT:
  case Opcode::CmpGE: {
    RtVal L = A(0), R = A(1);
    bool IsD = I.Ops[0].Ty == IRType::Double || I.Ops[1].Ty == IRType::Double;
    bool B = false;
    if (IsD) {
      double X = L.D, Y = R.D;
      switch (I.Op) {
      case Opcode::CmpEQ:
        B = X == Y;
        break;
      case Opcode::CmpNE:
        B = X != Y;
        break;
      case Opcode::CmpLT:
        B = X < Y;
        break;
      case Opcode::CmpLE:
        B = X <= Y;
        break;
      case Opcode::CmpGT:
        B = X > Y;
        break;
      case Opcode::CmpGE:
        B = X >= Y;
        break;
      default:
        break;
      }
    } else {
      std::int64_t X = L.I, Y = R.I;
      switch (I.Op) {
      case Opcode::CmpEQ:
        B = X == Y;
        break;
      case Opcode::CmpNE:
        B = X != Y;
        break;
      case Opcode::CmpLT:
        B = X < Y;
        break;
      case Opcode::CmpLE:
        B = X <= Y;
        break;
      case Opcode::CmpGT:
        B = X > Y;
        break;
      case Opcode::CmpGE:
        B = X >= Y;
        break;
      default:
        break;
      }
    }
    writeDest(I.Dest, RtVal::ofInt(B ? 1 : 0), Fr);
    break;
  }
  case Opcode::Neg: {
    RtVal V = A(0);
    if (I.Ty == IRType::Double)
      writeDest(I.Dest, RtVal::ofDouble(-V.D), Fr);
    else
      writeDest(I.Dest, RtVal::ofInt(-V.I), Fr);
    break;
  }
  case Opcode::Not:
    writeDest(I.Dest, RtVal::ofInt(~A(0).I), Fr);
    break;
  case Opcode::Copy:
    writeDest(I.Dest, A(0), Fr);
    break;
  case Opcode::CastItoD:
    writeDest(I.Dest, RtVal::ofDouble(static_cast<double>(A(0).I)), Fr);
    break;
  case Opcode::CastDtoI:
    writeDest(I.Dest,
              RtVal::ofInt(static_cast<std::int64_t>(A(0).D)), Fr);
    break;
  case Opcode::AddrOf: {
    std::size_t Addr = varAddr(I.Ops[0].Id, Fr);
    writeDest(I.Dest, RtVal::ofInt(static_cast<std::int64_t>(Addr),
                                   IRType::Ptr),
              Fr);
    break;
  }
  case Opcode::Load: {
    std::size_t Addr = static_cast<std::size_t>(A(0).I);
    if (!checkAddr(Addr))
      return;
    const Word &W = Mem[Addr];
    if (I.Ty == IRType::Double)
      writeDest(I.Dest, RtVal::ofDouble(W.D), Fr);
    else
      writeDest(I.Dest, RtVal::ofInt(W.I, I.Ty), Fr);
    break;
  }
  case Opcode::Store: {
    std::size_t Addr = static_cast<std::size_t>(A(0).I);
    if (!checkAddr(Addr))
      return;
    RtVal V = A(1);
    Word &W = Mem[Addr];
    if (I.Ty == IRType::Double)
      W.D = V.D;
    else
      W.I = V.I;
    break;
  }
  case Opcode::Call: {
    if (I.BuiltinKind == Builtin::PrintInt) {
      Result.Output.push_back(std::to_string(A(0).I));
      break;
    }
    if (I.BuiltinKind == Builtin::PrintDouble) {
      char Buf[64];
      std::snprintf(Buf, sizeof(Buf), "%.6g", A(0).D);
      Result.Output.emplace_back(Buf);
      break;
    }
    const IRFunction *Callee = nullptr;
    for (const IRFunction *G : M.Funcs)
      if (G->Id == I.Callee)
        Callee = G;
    if (!Callee) {
      trap("call to unknown function");
      return;
    }
    std::vector<RtVal> Args;
    Args.reserve(I.Ops.size());
    for (unsigned N = 0; N < I.Ops.size(); ++N)
      Args.push_back(A(N));
    if (Stack.size() >= 4096) {
      trap("call stack overflow");
      return;
    }
    // Advance the caller's IP past the call before pushing.
    ++Fr.IP;
    Advanced = true;
    pushFrame(Callee, Args, I.Dest);
    break;
  }
  case Opcode::Br:
    Fr.BB = I.Succs[0];
    Fr.IP = Fr.BB->Insts.begin();
    Advanced = true;
    break;
  case Opcode::CondBr: {
    bool Taken = A(0).I != 0;
    Fr.BB = Taken ? I.Succs[0] : I.Succs[1];
    Fr.IP = Fr.BB->Insts.begin();
    Advanced = true;
    break;
  }
  case Opcode::Ret: {
    RtVal V = I.Ops.empty() ? RtVal::ofInt(0) : A(0);
    SP = Fr.SavedSP;
    Value Dest = Fr.RetDest;
    Stack.pop_back();
    if (Stack.empty()) {
      Result.ExitValue = V.Ty == IRType::Double
                             ? static_cast<std::int64_t>(V.D)
                             : V.I;
    } else if (!Dest.isNone()) {
      writeDest(Dest, V, Stack.back());
    }
    Advanced = true;
    break;
  }
  case Opcode::DeadMarker:
  case Opcode::AvailMarker:
  case Opcode::Nop:
    break;
  case Opcode::Phi:
    // SsaDestruct always runs before the pipeline ends; a surviving phi
    // is a pipeline bug, not an executable instruction.
    trap("phi reached the interpreter (SSA not destructed)");
    break;
  }
}

ExecResult Interpreter::run() {
  // Lay out globals.
  for (VarId Id : Info.Globals) {
    const VarInfo &VI = Info.var(Id);
    if (VI.isScalar() && !VI.AddressTaken)
      continue; // Kept in GlobalRegs.
    std::size_t Size = VI.ArraySize ? VI.ArraySize : 1;
    GlobalAddr[Id] = SP;
    SP += Size;
  }
  for (const auto &[Id, Init] : M.GlobalInits) {
    const VarInfo &VI = Info.var(Id);
    RtVal V = Init.isConstDouble() ? RtVal::ofDouble(Init.DblVal)
                                   : RtVal::ofInt(Init.IntVal);
    if (VI.isScalar() && !VI.AddressTaken) {
      GlobalRegs[Id] = V;
    } else {
      Word &W = Mem[GlobalAddr[Id]];
      if (VI.Ty.isDouble())
        W.D = V.D;
      else
        W.I = V.I;
    }
  }

  const IRFunction *Main = nullptr;
  for (const IRFunction *F : M.Funcs)
    if (F->Name == "main")
      Main = F;
  if (!Main) {
    trap("no main function");
    return Result;
  }
  pushFrame(Main, {}, Value::none());

  while (!Stack.empty() && !Result.Trapped) {
    Frame &Fr = Stack.back();
    if (Fr.IP == Fr.BB->Insts.end()) {
      trap("fell off the end of a block");
      break;
    }
    const Instr &I = *Fr.IP;
    if (!I.isMark() && I.Op != Opcode::Nop) {
      if (++Result.InstrCount > MaxSteps) {
        trap("step limit exceeded (fuel budget " +
             std::to_string(MaxSteps) + " instructions)");
        break;
      }
    }
    bool Advanced = false;
    execute(I, Fr, Advanced);
    if (Result.Trapped)
      break;
    if (!Advanced)
      ++Stack.back().IP;
  }
  return Result;
}

ExecResult sldb::interpretIR(const IRModule &M, std::uint64_t MaxSteps) {
  Interpreter I(M, MaxSteps);
  return I.run();
}
