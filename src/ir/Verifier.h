//===- ir/Verifier.h - IR well-formedness checks ---------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural and type checks for IR functions; run after IR generation
/// and after every optimization pass in tests to catch pass bugs early.
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_IR_VERIFIER_H
#define SLDB_IR_VERIFIER_H

#include "ir/IR.h"

#include <string>
#include <vector>

namespace sldb {

/// Checks one function; appends human-readable problems to \p Errors.
/// Returns true if the function is well-formed.
bool verifyFunction(const IRFunction &F, const ProgramInfo &Info,
                    std::vector<std::string> &Errors);

/// Checks a whole module.
bool verifyModule(const IRModule &M, std::vector<std::string> &Errors);

/// Checks the debug-bookkeeping annotations of \p F (markers name real
/// variables and statements, hoist keys point into F.HoistKeys, recovery
/// operands are well-typed).  Unlike verifyFunction this never gates
/// compilation: the pipeline records the findings on the function and the
/// Classifier degrades the affected variables (DESIGN.md "Failure
/// model").  Returns true if no findings were appended.
bool verifyFunctionAnnotations(const IRFunction &F, const ProgramInfo &Info,
                               std::vector<AnnotationFinding> &Findings);

} // namespace sldb

#endif // SLDB_IR_VERIFIER_H
