//===- service/Protocol.cpp -----------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "service/Protocol.h"

using namespace sldb;

const char *sldb::verbName(Verb V) {
  switch (V) {
  case Verb::Invalid:
    return "invalid";
  case Verb::Load:
    return "load";
  case Verb::Classify:
    return "classify";
  case Verb::ClassifyAll:
    return "classify-all";
  case Verb::Explain:
    return "explain";
  case Verb::Step:
    return "step";
  case Verb::Health:
    return "health";
  case Verb::StatsVerb:
    return "stats";
  case Verb::Shutdown:
    return "shutdown";
  }
  return "invalid";
}

namespace {

std::vector<std::string> splitWords(std::string_view S) {
  std::vector<std::string> Words;
  std::size_t I = 0;
  while (I < S.size()) {
    while (I < S.size() && (S[I] == ' ' || S[I] == '\t'))
      ++I;
    std::size_t B = I;
    while (I < S.size() && S[I] != ' ' && S[I] != '\t')
      ++I;
    if (I > B)
      Words.emplace_back(S.substr(B, I - B));
  }
  return Words;
}

struct VerbArity {
  Verb V;
  const char *Name;
  unsigned MinArgs, MaxArgs;
  const char *Usage;
};

constexpr VerbArity Verbs[] = {
    {Verb::Load, "load", 2, 3, "load <name> seed:<N>|file:<path> [<level>]"},
    {Verb::Classify, "classify", 4, 4, "classify <module> <func> <stmt> <var>"},
    {Verb::ClassifyAll, "classify-all", 3, 3,
     "classify-all <module> <func> <stmt>"},
    {Verb::Explain, "explain", 4, 4, "explain <module> <func> <stmt> <var>"},
    {Verb::Step, "step", 2, 2, "step <module> <nsteps>"},
    {Verb::Health, "health", 0, 0, "health"},
    {Verb::StatsVerb, "stats", 0, 0, "stats"},
    {Verb::Shutdown, "shutdown", 0, 0, "shutdown"},
};

} // namespace

Request sldb::parseRequest(std::string_view Line) {
  Request R;
  std::vector<std::string> Words = splitWords(Line);
  std::size_t At = 0;
  if (!Words.empty() && Words[0].size() > 1 && Words[0][0] == '@') {
    R.Session = Words[0].substr(1);
    At = 1;
  }
  if (Words.size() <= At) {
    R.Error = "empty request";
    return R;
  }
  const std::string &Name = Words[At];
  for (const VerbArity &VA : Verbs) {
    if (Name == VA.Name) {
      unsigned NArgs = static_cast<unsigned>(Words.size() - At - 1);
      if (NArgs < VA.MinArgs || NArgs > VA.MaxArgs) {
        R.Error = std::string("usage: ") + VA.Usage;
        return R;
      }
      R.V = VA.V;
      R.Args.assign(Words.begin() + At + 1, Words.end());
      return R;
    }
  }
  R.Error = "unknown verb '" + Name + "'";
  return R;
}

namespace {
std::string prefix(const std::string &Session) {
  return Session.empty() ? std::string() : "@" + Session + " ";
}
} // namespace

std::string sldb::renderOk(const std::string &Session,
                           const std::string &Payload) {
  std::string S = prefix(Session) + "ok";
  if (!Payload.empty()) {
    S += ' ';
    S += Payload;
  }
  return S;
}

std::string sldb::renderErr(const std::string &Session, ErrorCode C,
                            const std::string &Msg) {
  std::string S = prefix(Session) + "err ";
  S += errorCodeName(C);
  if (!Msg.empty()) {
    S += ' ';
    S += Msg;
  }
  return S;
}

std::string sldb::renderShed(const std::string &Session,
                             std::uint32_t RetryAfterMs) {
  return prefix(Session) + "shed retry-after-ms=" +
         std::to_string(RetryAfterMs);
}

std::vector<std::vector<std::string>> sldb::splitBatches(std::string_view T) {
  std::vector<std::vector<std::string>> Batches;
  std::vector<std::string> Cur;
  std::size_t I = 0;
  while (I <= T.size()) {
    std::size_t E = T.find('\n', I);
    bool Last = E == std::string_view::npos;
    std::string_view Line = T.substr(I, Last ? T.size() - I : E - I);
    if (!Line.empty() && Line.back() == '\r')
      Line.remove_suffix(1);
    if (Line.empty()) {
      if (!Cur.empty()) {
        Batches.push_back(std::move(Cur));
        Cur.clear();
      }
    } else {
      Cur.emplace_back(Line);
    }
    if (Last)
      break;
    I = E + 1;
  }
  if (!Cur.empty())
    Batches.push_back(std::move(Cur));
  return Batches;
}
