//===- service/ServiceCore.cpp --------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "service/ServiceCore.h"

#include "codegen/ISel.h"
#include "core/Debugger.h"
#include "eval/Levels.h"
#include "fuzz/ProgramGen.h"
#include "ir/IRGen.h"
#include "opt/Pass.h"
#include "support/Diagnostics.h"
#include "support/FaultInjector.h"
#include "support/Stats.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <optional>

using namespace sldb;

namespace {

bool parseU64(const std::string &S, std::uint64_t &Out) {
  if (S.empty())
    return false;
  char *End = nullptr;
  errno = 0;
  unsigned long long V = std::strtoull(S.c_str(), &End, 10);
  if (errno != 0 || End != S.c_str() + S.size())
    return false;
  Out = V;
  return true;
}

std::uint64_t nowUs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Reads a whole file; nullopt on error or when larger than \p MaxBytes.
std::optional<std::string> readFileCapped(const std::string &Path,
                                          std::size_t MaxBytes,
                                          std::string &Err) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    Err = "cannot open '" + Path + "'";
    return std::nullopt;
  }
  std::string Text;
  char Buf[4096];
  std::size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0) {
    Text.append(Buf, N);
    if (MaxBytes && Text.size() > MaxBytes) {
      std::fclose(F);
      Err = "'" + Path + "' exceeds " + std::to_string(MaxBytes) + " bytes";
      return std::nullopt;
    }
  }
  bool ReadErr = std::ferror(F) != 0;
  std::fclose(F);
  if (ReadErr) {
    Err = "read error on '" + Path + "'";
    return std::nullopt;
  }
  return Text;
}

const char *varClassToken(VarClass C) {
  switch (C) {
  case VarClass::Uninitialized:
    return "uninitialized";
  case VarClass::Nonresident:
    return "nonresident";
  case VarClass::Noncurrent:
    return "noncurrent";
  case VarClass::Suspect:
    return "suspect";
  case VarClass::Current:
    return "current";
  }
  return "?";
}

} // namespace

std::size_t ServiceCore::numQuarantined() const {
  std::size_t N = 0;
  for (const auto &KV : Modules)
    N += KV.second->Quarantined ? 1 : 0;
  return N;
}

std::string ServiceCore::renderClass(const Classification &C) {
  std::string S = varClassToken(C.Kind);
  if (C.Recoverable)
    S += ",rec";
  if (C.Degraded)
    S += ",deg";
  return S;
}

void ServiceCore::auditContainment(const LoadedModule &Mod,
                                   const Classification &C) {
  if (Mod.Quarantined &&
      (C.Kind == VarClass::Current || C.Recoverable)) {
    // The containment promise is broken: a quarantined module produced a
    // trusting verdict.  Diagnostic only — nothing branches on it — but
    // the soak harness asserts it stays zero.
    static StatCounter &Unsound = Stats::counter("service.unsound");
    Unsound.add(1);
    Counters.Unsound.fetch_add(1, std::memory_order_relaxed);
  }
}

//===----------------------------------------------------------------------===//
// load
//===----------------------------------------------------------------------===//

std::string ServiceCore::doLoad(const Request &R) {
  static StatCounter &Loads = Stats::counter("service.loads");
  static StatCounter &LoadFails = Stats::counter("service.load_failures");
  const std::string &Name = R.Args[0];
  const std::string &Spec = R.Args[1];

  if (Modules.count(Name))
    return renderErr(R.Session, ErrorCode::InvalidRequest,
                     "module '" + Name + "' already loaded");
  if (Limits.MaxModules && Modules.size() >= Limits.MaxModules) {
    LoadFails.add(1);
    return renderErr(R.Session, ErrorCode::ResourceExhausted,
                     "module registry full (" +
                         std::to_string(Limits.MaxModules) + " modules)");
  }

  // Optional pipeline level (eval/Levels.h), resolved before any
  // compilation: a request naming an unknown or future level gets a
  // structured refusal and the registry stays untouched — a bad level
  // name must never quarantine anything.
  const LevelSpec *Lvl = nullptr;
  if (R.Args.size() > 2) {
    Lvl = findLevel(R.Args[2]);
    if (!Lvl) {
      LoadFails.add(1);
      return renderErr(R.Session, ErrorCode::UnknownLevel,
                       "unknown pipeline level '" + R.Args[2] + "'");
    }
  }

  // Resolve the source text.
  std::string Source;
  if (Spec.rfind("seed:", 0) == 0) {
    std::uint64_t Seed = 0;
    if (!parseU64(Spec.substr(5), Seed))
      return renderErr(R.Session, ErrorCode::InvalidRequest,
                       "bad seed in '" + Spec + "'");
    GenOptions GO;
    GO.TopStmts = Limits.GenTopStmts;
    Source = generateProgram(static_cast<std::uint32_t>(Seed), GO);
  } else if (Spec.rfind("file:", 0) == 0) {
    std::string Err;
    std::optional<std::string> Text = readFileCapped(
        Spec.substr(5), Limits.LoadArenaBytes ? Limits.LoadArenaBytes : 0,
        Err);
    if (!Text) {
      LoadFails.add(1);
      return renderErr(R.Session, ErrorCode::InvalidRequest, Err);
    }
    Source = std::move(*Text);
  } else {
    return renderErr(R.Session, ErrorCode::InvalidRequest,
                     "load spec must be seed:<N> or file:<path>");
  }

  // Compile into a fresh budgeted arena — the batch lifecycle of `sldbc
  // --batch`, one arena per module, kept alive for the module's lifetime.
  auto Mod = std::make_unique<LoadedModule>();
  Mod->Name = Name;
  Mod->Session = R.Session;
  Mod->A = std::make_unique<Arena>(1 << 16);
  Mod->A->setLimit(Limits.LoadArenaBytes);

  auto overBudget = [&](const char *Phase) {
    LoadFails.add(1);
    static StatCounter &Exhausted = Stats::counter("service.budget_refusals");
    Exhausted.add(1);
    return renderErr(R.Session, ErrorCode::ResourceExhausted,
                     std::string("arena budget exceeded during ") + Phase +
                         " (limit " + std::to_string(Limits.LoadArenaBytes) +
                         " bytes)");
  };

  DiagnosticEngine Diags;
  Mod->IR = compileToIR(Source, Diags, Mod->A.get());
  if (!Mod->IR) {
    LoadFails.add(1);
    std::string Msg = Diags.str();
    std::size_t NL = Msg.find('\n');
    if (NL != std::string::npos)
      Msg.resize(NL);
    return renderErr(R.Session, ErrorCode::InvalidIR,
                     Msg.empty() ? "compilation failed" : Msg);
  }
  if (Mod->A->limitExceeded())
    return overBudget("frontend");

  Status PS = runPipelineEx(*Mod->IR, Lvl ? Lvl->Opts : OptOptions::all(),
                            PipelineConfig());
  if (!PS.ok()) {
    LoadFails.add(1);
    return renderErr(R.Session, PS.code(), PS.message());
  }
  if (Mod->A->limitExceeded())
    return overBudget("optimizer");

  CodegenOptions CG;
  if (Lvl)
    CG.PromoteVars = Lvl->Promote;
  Expected<MachineModule> MME =
      compileToMachineE(*Mod->IR, CG, Mod->A.get());
  if (!MME) {
    LoadFails.add(1);
    return renderErr(R.Session, MME.status().code(), MME.status().message());
  }
  if (Mod->A->limitExceeded())
    return overBudget("codegen");
  Mod->MM = std::make_unique<MachineModule>(std::move(*MME));

  // Per-session memory budget across loads.
  std::size_t Bytes = Mod->A->bytesAllocated();
  if (Limits.SessionArenaBytes &&
      SessionBytes[R.Session] + Bytes > Limits.SessionArenaBytes) {
    LoadFails.add(1);
    static StatCounter &Exhausted = Stats::counter("service.budget_refusals");
    Exhausted.add(1);
    return renderErr(R.Session, ErrorCode::ResourceExhausted,
                     "session arena budget exceeded (limit " +
                         std::to_string(Limits.SessionArenaBytes) +
                         " bytes)");
  }

  // Eagerly build every function's classifier so quarantine is decided
  // here, once, deterministically — not by whichever query arrives first.
  // The classifier build runs pristine (an armed injected fault belongs
  // to the *compile*, which is over), so the verifier judges exactly the
  // tables the module will serve from.
  FaultInjector::suspend();
  bool Damaged = false;
  std::string FirstFinding;
  for (const MachineFunction &MF : Mod->MM->Funcs) {
    auto C = std::make_unique<Classifier>(MF, *Mod->MM->Info);
    if (!C->annotationFindings().empty() && !Damaged) {
      Damaged = true;
      FirstFinding = MF.Name + ": " + C->annotationFindings()[0].Message;
    }
    Mod->Classifiers.push_back(std::move(C));
    Mod->FuncLocks.push_back(std::make_unique<std::mutex>());
  }
  FaultInjector::resume();

  if (Damaged) {
    // First Status failure of this module: the annotation verifier
    // rejected its debug bookkeeping.  Quarantine — every answer from
    // now on comes from the degraded fail-safe path.
    Mod->Quarantined = true;
    Mod->QuarantineReason = FirstFinding;
    for (auto &C : Mod->Classifiers)
      C->degradeAllVariables();
    static StatCounter &Quar = Stats::counter("service.quarantined_modules");
    Quar.add(1);
  }

  std::size_t Funcs = Mod->MM->Funcs.size();
  bool Quarantined = Mod->Quarantined;
  SessionBytes[R.Session] += Bytes;
  Modules[Name] = std::move(Mod);
  Loads.add(1);

  return renderOk(R.Session, "loaded " + Name +
                                 " funcs=" + std::to_string(Funcs) +
                                 " bytes=" + std::to_string(Bytes) +
                                 " quarantined=" +
                                 (Quarantined ? "1" : "0"));
}

//===----------------------------------------------------------------------===//
// Query resolution
//===----------------------------------------------------------------------===//

bool ServiceCore::resolve(const Request &R, ResolvedQuery &Q,
                          std::string &Err, bool NeedStmt) {
  auto It = Modules.find(R.Args[0]);
  if (It == Modules.end()) {
    Err = "unknown module '" + R.Args[0] + "'";
    return false;
  }
  Q.Mod = It->second.get();
  const ProgramInfo &Info = *Q.Mod->MM->Info;
  Q.F = Info.findFunc(R.Args[1]);
  if (Q.F == InvalidFunc || Q.F >= Q.Mod->MM->Funcs.size()) {
    Err = "unknown function '" + R.Args[1] + "'";
    return false;
  }
  Q.MF = &Q.Mod->MM->Funcs[Q.F];
  Q.C = Q.Mod->Classifiers[Q.F].get();
  Q.Lock = Q.Mod->FuncLocks[Q.F].get();
  if (!NeedStmt)
    return true;
  std::uint64_t S = 0;
  if (!parseU64(R.Args[2], S) || S >= Info.func(Q.F).Stmts.size()) {
    Err = "function '" + R.Args[1] + "' has no statement " + R.Args[2];
    return false;
  }
  Q.S = static_cast<StmtId>(S);
  std::int32_t Addr = Q.MF->StmtAddr.size() > S ? Q.MF->StmtAddr[S] : -1;
  if (Addr < 0) {
    Err = "statement " + R.Args[2] + " emitted no code (optimized away)";
    return false;
  }
  Q.Addr = static_cast<std::uint32_t>(Addr);
  return true;
}

namespace {

/// Variable lookup at a statement: scope locals shadow globals, the
/// debugger's rule.
VarId findVarAt(const ProgramInfo &Info, FuncId F, StmtId S,
                const std::string &Name) {
  for (VarId V : Info.func(F).Stmts[S].ScopeVars)
    if (Info.var(V).Name == Name)
      return V;
  for (VarId V : Info.Globals)
    if (Info.var(V).Name == Name)
      return V;
  return InvalidVar;
}

} // namespace

//===----------------------------------------------------------------------===//
// classify / classify-all / explain
//===----------------------------------------------------------------------===//

std::string ServiceCore::doClassify(const Request &R, bool All) {
  ResolvedQuery Q;
  std::string Err;
  if (!resolve(R, Q, Err))
    return renderErr(R.Session, ErrorCode::InvalidRequest, Err);
  const ProgramInfo &Info = *Q.Mod->MM->Info;
  if (Q.Mod->Quarantined)
    Counters.QuarantineHits.fetch_add(1, std::memory_order_relaxed);

  if (!All) {
    VarId V = findVarAt(Info, Q.F, Q.S, R.Args[3]);
    if (V == InvalidVar)
      return renderErr(R.Session, ErrorCode::InvalidRequest,
                       "no variable '" + R.Args[3] + "' in scope");
    Classification C;
    {
      std::lock_guard<std::mutex> L(*Q.Lock);
      C = Q.C->classify(Q.Addr, V);
    }
    auditContainment(*Q.Mod, C);
    std::string Payload = renderClass(C);
    if (C.Cause != EndangerCause::None)
      Payload += std::string(" cause=") + endangerCauseName(C.Cause);
    if (Q.Mod->Quarantined)
      Payload += " quarantined=1";
    return renderOk(R.Session, Payload);
  }

  // classify-all: every scope variable plus the globals, scope order.
  std::vector<VarId> Vars = Info.func(Q.F).Stmts[Q.S].ScopeVars;
  for (VarId G : Info.Globals)
    Vars.push_back(G);
  std::vector<Classification> Cs;
  {
    std::lock_guard<std::mutex> L(*Q.Lock);
    Cs = Q.C->classifyAll(Q.Addr, Vars);
  }
  std::string Payload = "n=" + std::to_string(Vars.size());
  for (std::size_t I = 0; I < Vars.size(); ++I) {
    auditContainment(*Q.Mod, Cs[I]);
    Payload += ' ';
    Payload += Info.var(Vars[I]).Name;
    Payload += '=';
    Payload += renderClass(Cs[I]);
  }
  if (Q.Mod->Quarantined)
    Payload += " quarantined=1";
  return renderOk(R.Session, Payload);
}

std::string ServiceCore::doExplain(const Request &R) {
  ResolvedQuery Q;
  std::string Err;
  if (!resolve(R, Q, Err))
    return renderErr(R.Session, ErrorCode::InvalidRequest, Err);
  const ProgramInfo &Info = *Q.Mod->MM->Info;
  VarId V = findVarAt(Info, Q.F, Q.S, R.Args[3]);
  if (V == InvalidVar)
    return renderErr(R.Session, ErrorCode::InvalidRequest,
                     "no variable '" + R.Args[3] + "' in scope");
  if (Q.Mod->Quarantined)
    Counters.QuarantineHits.fetch_add(1, std::memory_order_relaxed);
  Explanation E;
  std::string Json;
  {
    std::lock_guard<std::mutex> L(*Q.Lock);
    E = Q.C->explain(Q.Addr, V);
    Json = Q.C->renderExplainJson(E);
  }
  auditContainment(*Q.Mod, E.Result);
  return renderOk(R.Session, Json);
}

//===----------------------------------------------------------------------===//
// step
//===----------------------------------------------------------------------===//

std::string ServiceCore::doStep(
    const Request &R,
    std::vector<std::pair<std::string, std::string>> &DeferredQuarantine) {
  ResolvedQuery Q;
  std::string Err;
  // step only needs the module; reuse resolve's module lookup by faking
  // the function operand lookup ourselves.
  auto It = Modules.find(R.Args[0]);
  if (It == Modules.end())
    return renderErr(R.Session, ErrorCode::InvalidRequest,
                     "unknown module '" + R.Args[0] + "'");
  LoadedModule &Mod = *It->second;
  (void)Q;
  (void)Err;

  std::uint64_t N = 0;
  if (!parseU64(R.Args[1], N) || N == 0)
    return renderErr(R.Session, ErrorCode::InvalidRequest,
                     "bad step count '" + R.Args[1] + "'");
  if (Limits.MaxStepsPerRequest && N > Limits.MaxStepsPerRequest)
    return renderErr(R.Session, ErrorCode::ResourceExhausted,
                     "step count exceeds per-request cap (" +
                         std::to_string(Limits.MaxStepsPerRequest) + ")");

  // A fresh, self-contained session per request: deterministic, nothing
  // shared, fuel-bounded.  The VM only reads the module.
  Debugger D(*Mod.MM, Limits.RequestFuel);
  const std::uint64_t StartUs = nowUs();
  const std::uint64_t WallUs =
      static_cast<std::uint64_t>(Limits.RequestWallMs) * 1000;

  auto quarantine = [&](const std::string &Reason) {
    DeferredQuarantine.emplace_back(Mod.Name, Reason);
  };

  StopReason SR = D.startPaused();
  if (SR == StopReason::Trapped) {
    quarantine("vm setup trap: " + D.machine().trapMessage());
    return renderErr(R.Session, ErrorCode::InternalError,
                     "vm setup trap: " + D.machine().trapMessage());
  }

  std::string Trace;
  std::uint64_t Stops = 0;
  static constexpr std::uint64_t MaxTraceStops = 16;
  std::string End = "paused";
  for (std::uint64_t I = 0; I < N; ++I) {
    if (WallUs && nowUs() - StartUs > WallUs) {
      // Cooperative wall backstop.  Deterministic message (no timing
      // data), but reaching it at all is load-dependent — streams under
      // the determinism contract stay far below the wall.
      Counters.Timeouts.fetch_add(1, std::memory_order_relaxed);
      static StatCounter &TO = Stats::counter("service.wall_timeouts");
      TO.add(1);
      return renderErr(R.Session, ErrorCode::ResourceExhausted,
                       "wall deadline exceeded");
    }
    SR = D.stepStmt();
    if (SR == StopReason::Breakpoint) {
      ++Stops;
      if (Stops <= MaxTraceStops) {
        if (!Trace.empty())
          Trace += ',';
        FuncId F = D.currentFunction();
        std::optional<StmtId> St = D.currentStmt();
        Trace += Mod.MM->Info->func(F).Name;
        Trace += ':';
        Trace += St ? std::to_string(*St) : "?";
      }
      continue;
    }
    if (SR == StopReason::Exited) {
      End = "exit:" + std::to_string(D.machine().exitValue());
      break;
    }
    if (SR == StopReason::StepLimit) {
      // The fuel deadline — deterministic by construction.
      Counters.Timeouts.fetch_add(1, std::memory_order_relaxed);
      static StatCounter &Fuel = Stats::counter("service.fuel_timeouts");
      Fuel.add(1);
      return renderErr(R.Session, ErrorCode::ResourceExhausted,
                       "fuel budget exhausted (" +
                           std::to_string(Limits.RequestFuel) +
                           " instructions)");
    }
    // Trapped: a runtime Status failure of this module — contain it.
    quarantine("vm trap: " + D.machine().trapMessage());
    return renderErr(R.Session, ErrorCode::InternalError,
                     "vm trap: " + D.machine().trapMessage());
  }

  std::string Payload = "steps=" + std::to_string(Stops);
  if (Stops > MaxTraceStops)
    Trace += ",+" + std::to_string(Stops - MaxTraceStops) + "more";
  if (!Trace.empty())
    Payload += " stops=" + Trace;
  Payload += " end=" + End;
  return renderOk(R.Session, Payload);
}

//===----------------------------------------------------------------------===//
// health / stats
//===----------------------------------------------------------------------===//

std::string ServiceCore::doHealth(const Request &R) {
  // Deterministic snapshot: registry shape and stream-determined
  // counters only (no wall-clock, no timeout counts).
  std::string P = "modules=" + std::to_string(Modules.size()) +
                  " quarantined=" + std::to_string(numQuarantined()) +
                  " sessions=" + std::to_string(SessionBytes.size()) +
                  " requests=" +
                  std::to_string(
                      Counters.Requests.load(std::memory_order_relaxed)) +
                  " shed=" +
                  std::to_string(Counters.Shed.load(std::memory_order_relaxed));
  return renderOk(R.Session, P);
}

std::string ServiceCore::doStats(const Request &R) {
  // Name-sorted key=value line.  Includes the nondeterministic envelope
  // counters (wall timeouts), so determinism-contract streams use
  // `health` instead.
  std::string P =
      "quarantine-hits=" +
      std::to_string(Counters.QuarantineHits.load(std::memory_order_relaxed)) +
      " quarantined=" + std::to_string(numQuarantined()) +
      " requests=" +
      std::to_string(Counters.Requests.load(std::memory_order_relaxed)) +
      " shed=" + std::to_string(Counters.Shed.load(std::memory_order_relaxed)) +
      " timeouts=" +
      std::to_string(Counters.Timeouts.load(std::memory_order_relaxed)) +
      " unsound=" +
      std::to_string(Counters.Unsound.load(std::memory_order_relaxed));
  return renderOk(R.Session, P);
}

//===----------------------------------------------------------------------===//
// Dispatch + batch engine
//===----------------------------------------------------------------------===//

std::string ServiceCore::execute(
    const Request &R,
    std::vector<std::pair<std::string, std::string>> &DeferredQuarantine) {
  Counters.Requests.fetch_add(1, std::memory_order_relaxed);
  static StatCounter &Reqs = Stats::counter("service.requests");
  Reqs.add(1);
  const std::uint64_t T0 = nowUs();
  std::string Resp;
  switch (R.V) {
  case Verb::Invalid:
    Resp = renderErr(R.Session, ErrorCode::InvalidRequest, R.Error);
    break;
  case Verb::Load:
    Resp = doLoad(R);
    break;
  case Verb::Classify:
    Resp = doClassify(R, /*All=*/false);
    break;
  case Verb::ClassifyAll:
    Resp = doClassify(R, /*All=*/true);
    break;
  case Verb::Explain:
    Resp = doExplain(R);
    break;
  case Verb::Step:
    Resp = doStep(R, DeferredQuarantine);
    break;
  case Verb::Health:
    Resp = doHealth(R);
    break;
  case Verb::StatsVerb:
    Resp = doStats(R);
    break;
  case Verb::Shutdown:
    ShutdownSeen = true;
    Resp = renderOk(R.Session, "bye");
    break;
  }
  // Per-verb latency histogram (diagnostic only; never in a response).
  Stats::histogram(std::string("service.latency_us.") + verbName(R.V))
      .record(nowUs() - T0);
  return Resp;
}

std::vector<std::string>
ServiceCore::processBatch(const std::vector<std::string> &Lines) {
  const std::size_t N = Lines.size();
  std::vector<std::string> Responses(N);
  std::vector<Request> Reqs(N);
  std::vector<bool> Shedded(N, false);

  // Admission control: the batch is the queue.  The first QueueDepth
  // non-bypass requests are admitted; the rest are shed with the
  // retry-after hint.  Batch composition comes from the stream (blank
  // line delimiters), so shedding is deterministic.
  std::size_t Admitted = 0;
  for (std::size_t I = 0; I < N; ++I) {
    Reqs[I] = parseRequest(Lines[I]);
    if (Reqs[I].bypassesAdmission())
      continue;
    if (Limits.QueueDepth && Admitted >= Limits.QueueDepth) {
      Shedded[I] = true;
      Responses[I] = renderShed(Reqs[I].Session, Limits.RetryAfterMs);
      Counters.Shed.fetch_add(1, std::memory_order_relaxed);
      static StatCounter &Shed = Stats::counter("service.shed");
      Shed.add(1);
    } else {
      ++Admitted;
    }
  }

  // Split into serial barriers and parallel query runs.
  std::size_t I = 0;
  while (I < N) {
    if (Shedded[I]) {
      ++I;
      continue;
    }
    if (Reqs[I].isBarrier()) {
      std::vector<std::pair<std::string, std::string>> DQ;
      Responses[I] = execute(Reqs[I], DQ);
      ++I;
      continue;
    }
    // Collect the run of non-barrier indices.
    std::vector<std::size_t> Run;
    while (I < N && (Shedded[I] || !Reqs[I].isBarrier())) {
      if (!Shedded[I])
        Run.push_back(I);
      ++I;
    }
    if (Run.empty())
      continue;
    // Execute the run on the pool.  Each request writes its own slot;
    // runtime quarantine transitions are deferred into per-slot lists
    // and applied below in request order, so every request in the run
    // sees the same registry snapshot at any Jobs.
    std::vector<std::vector<std::pair<std::string, std::string>>> DQ(
        Run.size());
    Pool.parallelFor(Run.size(), [&](std::size_t K, unsigned) {
      Responses[Run[K]] = execute(Reqs[Run[K]], DQ[K]);
    });
    for (std::size_t K = 0; K < Run.size(); ++K) {
      for (const auto &Q : DQ[K]) {
        auto It = Modules.find(Q.first);
        if (It == Modules.end() || It->second->Quarantined)
          continue;
        It->second->Quarantined = true;
        It->second->QuarantineReason = Q.second;
        for (auto &C : It->second->Classifiers)
          C->degradeAllVariables();
        static StatCounter &Quar =
            Stats::counter("service.quarantined_modules");
        Quar.add(1);
      }
    }
  }
  return Responses;
}
