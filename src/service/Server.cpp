//===- service/Server.cpp -------------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include "support/Interrupt.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace sldb;

namespace {

std::uint64_t nowMs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace

Server::Server(ServiceCore &Core, std::uint32_t HardWallMs)
    : Core(Core), HardWallMs(HardWallMs) {
  if (!HardWallMs)
    return;
  Watchdog = std::thread([this] {
    // Crash-only: a batch that outlives the hard wall is unrecoverable
    // by definition (every cooperative deadline inside it already
    // failed); kill the process and let the supervisor restart from
    // zero state.
    while (!Stopping.load(std::memory_order_relaxed)) {
      std::uint64_t Start = BatchStartMs.load(std::memory_order_relaxed);
      if (Start && nowMs() - Start > this->HardWallMs) {
        std::fprintf(stderr,
                     "sldbd: watchdog: batch exceeded %u ms hard wall; "
                     "crash-only exit\n",
                     this->HardWallMs);
        std::fflush(stderr);
        ::_exit(WatchdogExitCode);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  });
}

Server::~Server() {
  Stopping.store(true, std::memory_order_relaxed);
  if (Watchdog.joinable())
    Watchdog.join();
}

std::vector<std::string>
Server::guarded(const std::vector<std::string> &Lines) {
  BatchStartMs.store(nowMs(), std::memory_order_relaxed);
  std::vector<std::string> Responses = Core.processBatch(Lines);
  BatchStartMs.store(0, std::memory_order_relaxed);
  return Responses;
}

int Server::runStdio(std::FILE *In, std::FILE *Out) {
  std::vector<std::string> Batch;
  std::string Line;
  int C;
  auto flush = [&]() {
    if (Batch.empty())
      return;
    std::vector<std::string> Responses = guarded(Batch);
    for (const std::string &R : Responses)
      std::fprintf(Out, "%s\n", R.c_str());
    std::fprintf(Out, "\n");
    std::fflush(Out);
    Batch.clear();
  };
  while (!Core.shutdownRequested() && !interruptRequested()) {
    C = std::fgetc(In);
    if (C == EOF) {
      flush();
      break;
    }
    if (C == '\n') {
      if (!Line.empty() && Line.back() == '\r')
        Line.pop_back();
      if (Line.empty())
        flush();
      else
        Batch.push_back(Line);
      Line.clear();
      continue;
    }
    Line.push_back(static_cast<char>(C));
  }
  if (!Line.empty())
    Batch.push_back(Line);
  flush();
  return 0;
}

int Server::runSocket(const std::string &Path) {
  int Listen = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Listen < 0) {
    std::perror("sldbd: socket");
    return 1;
  }
  sockaddr_un Addr = {};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    std::fprintf(stderr, "sldbd: socket path too long: %s\n", Path.c_str());
    ::close(Listen);
    return 1;
  }
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  ::unlink(Path.c_str());
  if (::bind(Listen, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      ::listen(Listen, 16) < 0) {
    std::perror("sldbd: bind/listen");
    ::close(Listen);
    return 1;
  }

  struct Conn {
    int Fd = -1;
    std::string InBuf;
    std::vector<std::string> Batch;
  };
  std::vector<Conn> Conns;

  auto processConn = [&](Conn &C) -> bool {
    // Consume complete lines from the buffer; a blank line completes a
    // batch, which is answered immediately on this connection.
    std::size_t Pos;
    while ((Pos = C.InBuf.find('\n')) != std::string::npos) {
      std::string Line = C.InBuf.substr(0, Pos);
      C.InBuf.erase(0, Pos + 1);
      if (!Line.empty() && Line.back() == '\r')
        Line.pop_back();
      if (!Line.empty()) {
        C.Batch.push_back(std::move(Line));
        continue;
      }
      if (C.Batch.empty())
        continue;
      std::vector<std::string> Responses = guarded(C.Batch);
      C.Batch.clear();
      std::string Out;
      for (const std::string &R : Responses) {
        Out += R;
        Out += '\n';
      }
      Out += '\n';
      std::size_t Off = 0;
      while (Off < Out.size()) {
        ssize_t W = ::send(C.Fd, Out.data() + Off, Out.size() - Off,
                           MSG_NOSIGNAL);
        if (W <= 0)
          return false; // Peer gone; drop the connection.
        Off += static_cast<std::size_t>(W);
      }
      if (Core.shutdownRequested())
        return false;
    }
    return true;
  };

  int Ret = 0;
  while (!Core.shutdownRequested() && !interruptRequested()) {
    std::vector<pollfd> Fds;
    Fds.push_back({Listen, POLLIN, 0});
    for (const Conn &C : Conns)
      Fds.push_back({C.Fd, POLLIN, 0});
    int NR = ::poll(Fds.data(), Fds.size(), 250);
    if (NR < 0) {
      if (errno == EINTR)
        continue;
      std::perror("sldbd: poll");
      Ret = 1;
      break;
    }
    if (NR == 0)
      continue;
    if (Fds[0].revents & POLLIN) {
      int Fd = ::accept(Listen, nullptr, nullptr);
      if (Fd >= 0) {
        Conn C;
        C.Fd = Fd;
        Conns.push_back(std::move(C));
      }
    }
    for (std::size_t I = 0; I < Conns.size();) {
      // Fds[I+1] mirrors Conns[I] from this poll round; newly accepted
      // connections (appended above) simply wait for the next round.
      bool Alive = true;
      if (I + 1 < Fds.size() && (Fds[I + 1].revents & (POLLIN | POLLHUP))) {
        char Buf[4096];
        ssize_t N = ::recv(Conns[I].Fd, Buf, sizeof(Buf), 0);
        if (N <= 0)
          Alive = false;
        else {
          Conns[I].InBuf.append(Buf, static_cast<std::size_t>(N));
          Alive = processConn(Conns[I]);
        }
      }
      if (!Alive || Core.shutdownRequested()) {
        ::close(Conns[I].Fd);
        Conns.erase(Conns.begin() + static_cast<std::ptrdiff_t>(I));
        if (Core.shutdownRequested())
          break;
      } else {
        ++I;
      }
    }
  }
  for (const Conn &C : Conns)
    ::close(C.Fd);
  ::close(Listen);
  ::unlink(Path.c_str());
  return Ret;
}
