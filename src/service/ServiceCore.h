//===- service/ServiceCore.h - Module registry + request engine -*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's engine, transport-free so tests can drive it in-process.
/// A ServiceCore owns a registry of loaded modules and answers protocol
/// requests batch by batch, wrapping each request in the robustness
/// envelope (DESIGN.md "Service robustness model"):
///
///  * deadlines — per-request VM fuel (deterministic) plus a cooperative
///    wall-clock backstop; both surface as ResourceExhausted;
///  * budgets — every load compiles into its own Arena with a byte
///    limit, and per-session totals are capped; over budget is a
///    structured ResourceExhausted, never an OOM abort;
///  * admission control — at most QueueDepth non-bypass requests per
///    batch; the rest are shed with a retry-after hint;
///  * containment — a module is quarantined on its first Status failure
///    (annotation-verifier findings at load, traps/internal errors at
///    runtime); a quarantined module answers conservatively-degraded
///    (never Current, never Recoverable) from then on, and a counter
///    (`service.unsound`) audits that promise on every answer.
///
/// Determinism rule: responses to a fixed request stream are
/// byte-identical at any Jobs.  Queries inside one batch run in
/// parallel against a *snapshot* of the registry; barrier verbs (load,
/// shutdown) split batches, and runtime quarantine transitions are
/// applied after the parallel section in request order.  Wall-clock
/// expiry and shed responses carry no timing data, so even the
/// nondeterministic escapes render deterministically.
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_SERVICE_SERVICECORE_H
#define SLDB_SERVICE_SERVICECORE_H

#include "core/Classifier.h"
#include "ir/IR.h"
#include "service/Protocol.h"
#include "support/Arena.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sldb {

/// Robustness-envelope knobs.
struct ServiceLimits {
  /// VM fuel per step/load request — the deterministic deadline.
  std::uint64_t RequestFuel = 2'000'000;

  /// Cooperative wall-clock backstop per request, milliseconds; 0
  /// disables.  Only pathological requests (a wedged dataflow, a VM bug
  /// the fuel cannot catch) ever hit it.
  std::uint32_t RequestWallMs = 10'000;

  /// Arena budget per load (bytes); 0 = unlimited.
  std::size_t LoadArenaBytes = std::size_t(64) << 20;

  /// Total arena bytes one session may hold across its loads; 0 =
  /// unlimited.
  std::size_t SessionArenaBytes = std::size_t(256) << 20;

  /// Modules the registry will hold before refusing loads.
  std::size_t MaxModules = 64;

  /// Admission control: non-bypass requests admitted per batch.
  std::size_t QueueDepth = 1024;

  /// Hint carried by shed responses.
  std::uint32_t RetryAfterMs = 50;

  /// Generated-module shape for `load ... seed:<N>`.
  unsigned GenTopStmts = 10;

  /// Max source-steps a single `step` request may ask for.
  std::uint64_t MaxStepsPerRequest = 100'000;
};

/// One loaded module: the arena-backed compile artifacts plus the
/// eagerly-built classifiers and the quarantine latch.  Members are
/// ordered so destruction tears down classifiers, then machine code,
/// then IR, then the arena (the IR memory model's ownership rule).
struct LoadedModule {
  std::string Name;
  std::string Session; ///< Session that loaded it (budget accounting).
  std::unique_ptr<Arena> A;
  std::unique_ptr<IRModule> IR;
  std::unique_ptr<MachineModule> MM; ///< Heap: classifiers hold refs.
  std::vector<std::unique_ptr<Classifier>> Classifiers; ///< Per function.
  /// One lock per function: Classifier's per-address cache is mutable,
  /// so concurrent queries against the same function serialize on its
  /// stripe while different functions proceed in parallel.
  std::vector<std::unique_ptr<std::mutex>> FuncLocks;

  bool Quarantined = false;
  std::string QuarantineReason;
};

/// The transport-free daemon engine.  processBatch() is the only entry
/// point and must be called from one thread at a time (the server's
/// accept loop); internal query parallelism rides the ThreadPool.
class ServiceCore {
public:
  ServiceCore(ServiceLimits Limits, unsigned Jobs)
      : Limits(Limits), Pool(Jobs) {}

  /// Processes one protocol batch: returns exactly one response line per
  /// request line, in request order.  Barrier verbs (load/shutdown)
  /// serialize; the query runs between barriers execute on the pool.
  std::vector<std::string> processBatch(const std::vector<std::string> &Lines);

  /// True once a `shutdown` request was processed.
  bool shutdownRequested() const { return ShutdownSeen; }

  std::size_t numModules() const { return Modules.size(); }
  std::size_t numQuarantined() const;
  const ServiceLimits &limits() const { return Limits; }

private:
  /// Executes one request against the current registry snapshot.
  /// \p DeferredQuarantine collects runtime-failure quarantine requests
  /// (module name + reason) to be applied after the parallel section.
  std::string execute(const Request &R,
                      std::vector<std::pair<std::string, std::string>>
                          &DeferredQuarantine);

  std::string doLoad(const Request &R);
  std::string doClassify(const Request &R, bool All);
  std::string doExplain(const Request &R);
  std::string doStep(const Request &R,
                     std::vector<std::pair<std::string, std::string>>
                         &DeferredQuarantine);
  std::string doHealth(const Request &R);
  std::string doStats(const Request &R);

  /// Resolves module/function/statement operands; returns non-ok and
  /// fills \p Err on failure.
  struct ResolvedQuery {
    LoadedModule *Mod = nullptr;
    const MachineFunction *MF = nullptr;
    Classifier *C = nullptr;
    std::mutex *Lock = nullptr;
    FuncId F = InvalidFunc;
    StmtId S = InvalidStmt;
    std::uint32_t Addr = 0;
  };
  bool resolve(const Request &R, ResolvedQuery &Q, std::string &Err,
               bool NeedStmt = true);

  /// Audits the containment promise: bumps `service.unsound` if a
  /// quarantined module produced a Current or Recoverable verdict.
  void auditContainment(const LoadedModule &Mod, const Classification &C);

  /// Renders one classification as a response fragment.
  static std::string renderClass(const Classification &C);

  /// Stream-determined counters (requests, shed, quarantine hits) plus
  /// the envelope escapes (timeouts) and the containment audit
  /// (unsound).  Atomics: bumped from inside parallel query runs.
  struct ServiceCounters {
    std::atomic<std::uint64_t> Requests{0};
    std::atomic<std::uint64_t> Shed{0};
    std::atomic<std::uint64_t> Timeouts{0};
    std::atomic<std::uint64_t> QuarantineHits{0};
    std::atomic<std::uint64_t> Unsound{0};
  };

  ServiceLimits Limits;
  ThreadPool Pool;
  std::map<std::string, std::unique_ptr<LoadedModule>> Modules;
  std::map<std::string, std::size_t> SessionBytes; ///< Arena bytes held.
  ServiceCounters Counters;
  bool ShutdownSeen = false;
};

} // namespace sldb

#endif // SLDB_SERVICE_SERVICECORE_H
