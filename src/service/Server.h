//===- service/Server.h - sldbd transports + watchdog -----------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Transport layer over ServiceCore: a stdin/stdout loop and a local
/// unix-domain socket, both speaking the blank-line-batched protocol of
/// service/Protocol.h, plus the crash-only watchdog.
///
/// Crash-only semantics: the server keeps no durable state — the module
/// registry is rebuilt from load requests — so the watchdog's answer to
/// a wedged batch (one that outlived the cooperative deadlines) is
/// `_exit(WatchdogExitCode)`, and the supervisor's answer is restart.
/// There is deliberately no "try to unstick it" path; DESIGN.md
/// "Service robustness model".
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_SERVICE_SERVER_H
#define SLDB_SERVICE_SERVER_H

#include "service/ServiceCore.h"

#include <atomic>
#include <string>
#include <thread>

namespace sldb {

class Server {
public:
  /// Exit status of a watchdog kill (distinct from every libc/sanitizer
  /// convention so supervisors and the soak harness can tell it apart).
  static constexpr int WatchdogExitCode = 87;

  /// \p HardWallMs bounds one *batch* end to end; 0 disables the
  /// watchdog.  It must dominate the per-request cooperative wall
  /// deadline times the batch size — the watchdog is the backstop for
  /// bugs the cooperative checks cannot see (a wedged dataflow loop),
  /// not a scheduler.
  Server(ServiceCore &Core, std::uint32_t HardWallMs);
  ~Server();

  /// Reads request batches from \p In until EOF or a shutdown request;
  /// writes each batch's responses followed by a blank line to \p Out,
  /// flushing per batch.  Returns 0, or nonzero on I/O error.
  int runStdio(std::FILE *In, std::FILE *Out);

  /// Serves the same protocol on a unix-domain socket at \p Path
  /// (unlinked and re-bound on startup, unlinked on exit).  Single
  /// poll loop; per-connection batches are processed in arrival order.
  /// Returns 0 after a shutdown request, nonzero on socket errors.
  int runSocket(const std::string &Path);

private:
  /// Watchdog hooks around every processBatch call.
  std::vector<std::string> guarded(const std::vector<std::string> &Lines);

  ServiceCore &Core;
  std::uint32_t HardWallMs;
  std::atomic<std::uint64_t> BatchStartMs{0}; ///< 0 = idle.
  std::atomic<bool> Stopping{false};
  std::thread Watchdog;
};

} // namespace sldb

#endif // SLDB_SERVICE_SERVER_H
