//===- service/Protocol.h - sldbd request/response protocol -----*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The line-oriented request protocol of the classification daemon
/// (`sldbd`).  One request per line:
///
///   [@<session>] <verb> [args...]
///
/// Verbs: `load <name> seed:<N>|file:<path>`, `classify <module> <func>
/// <stmt> <var>`, `classify-all <module> <func> <stmt>`, `explain
/// <module> <func> <stmt> <var>`, `step <module> <n>`, `health`,
/// `stats`, `shutdown`.  Blank lines are *batch delimiters*: the server
/// processes each block of lines as one admission-controlled batch and
/// answers them in block order, so batch composition — and therefore
/// shedding — is fixed by the stream, never by arrival timing.
///
/// Responses are one line each, echoing the session prefix:
///
///   [@<session>] ok <payload>
///   [@<session>] err <error-code> <message>
///   [@<session>] shed retry-after-ms=<N>
///
/// Every response to a fixed request stream is byte-identical at any
/// `--jobs` (the service determinism rule; tests/service_test.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_SERVICE_PROTOCOL_H
#define SLDB_SERVICE_PROTOCOL_H

#include "support/Status.h"

#include <string>
#include <string_view>
#include <vector>

namespace sldb {

/// Request verbs.  Invalid carries a parse diagnostic in Request::Error.
enum class Verb : std::uint8_t {
  Invalid = 0,
  Load,
  Classify,
  ClassifyAll,
  Explain,
  Step,
  Health,
  StatsVerb,
  Shutdown,
};

const char *verbName(Verb V);

/// One parsed request line.
struct Request {
  Verb V = Verb::Invalid;
  std::string Session;           ///< Empty when the line had no @prefix.
  std::vector<std::string> Args; ///< Whitespace-split operands.
  std::string Error;             ///< Parse diagnostic when V == Invalid.

  /// True for verbs that bypass admission control (cheap, diagnostic, or
  /// lifecycle: health / stats / shutdown must answer even under load).
  bool bypassesAdmission() const {
    return V == Verb::Health || V == Verb::StatsVerb || V == Verb::Shutdown;
  }

  /// True for verbs that are *barriers*: they mutate the module registry
  /// and therefore serialize against the surrounding query batch.
  bool isBarrier() const { return V == Verb::Load || V == Verb::Shutdown; }
};

/// Parses one request line (no trailing newline).  Never fails hard: an
/// unparseable line yields Verb::Invalid with Error set, which the
/// server answers with `err invalid-argument ...`.
Request parseRequest(std::string_view Line);

/// Response renderers.  All take the session tag so the reply can be
/// routed by the client; Session may be empty.
std::string renderOk(const std::string &Session, const std::string &Payload);
std::string renderErr(const std::string &Session, ErrorCode C,
                      const std::string &Msg);
std::string renderShed(const std::string &Session, std::uint32_t RetryAfterMs);

/// Splits \p Text into blank-line-delimited batches of request lines
/// ('\r' tolerated).  Consecutive blank lines collapse; a trailing
/// unterminated batch is included.
std::vector<std::vector<std::string>> splitBatches(std::string_view Text);

} // namespace sldb

#endif // SLDB_SERVICE_PROTOCOL_H
