//===- analysis/DomFrontiers.h - Dominance frontiers ------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominance frontiers over the dense CFG indices: DF(b) is the set of
/// blocks y such that b dominates a predecessor of y but not y itself
/// (strictly).  SSA construction places a phi for a variable in every
/// block of the iterated frontier of its definition blocks.
///
/// Derived from the bit-vector Dominators sets: the immediate dominator
/// of a block is its strict dominator with the largest dominator set,
/// then the classic Cytron runner walk fills the frontiers.
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_ANALYSIS_DOMFRONTIERS_H
#define SLDB_ANALYSIS_DOMFRONTIERS_H

#include "analysis/CFGContext.h"
#include "analysis/Dominators.h"

#include <vector>

namespace sldb {

/// Dominance frontiers plus the immediate-dominator tree they are
/// derived from (SSA renaming walks the same tree).
class DomFrontiers {
public:
  DomFrontiers(const CFGContext &CFG, const Dominators &Dom);

  /// Frontier of block \p B (dense CFG indices, ascending).
  const std::vector<unsigned> &frontier(unsigned B) const { return DF[B]; }

  /// Immediate dominator of block \p B; ~0u for the entry and for
  /// blocks unreachable from it.
  unsigned idom(unsigned B) const { return Idom[B]; }

  /// Children of block \p B in the dominator tree (ascending indices).
  const std::vector<unsigned> &domChildren(unsigned B) const {
    return Children[B];
  }

private:
  std::vector<unsigned> Idom;
  std::vector<std::vector<unsigned>> Children;
  std::vector<std::vector<unsigned>> DF;
};

} // namespace sldb

#endif // SLDB_ANALYSIS_DOMFRONTIERS_H
