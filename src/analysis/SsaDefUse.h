//===- analysis/SsaDefUse.h - Temp def-use chains ---------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sparse def-use chains for compiler temporaries, the substrate of the
/// SSA-form passes (GVN, sparse propagation, phi coalescing).  For every
/// temp the analysis records its defining instructions and every
/// instruction that reads it — including reads the dense use iterator
/// deliberately skips: a DeadMarker's recovery value and the function's
/// strength-reduction records both keep a temp alive for the *debugger*,
/// and an SSA pass that rewrites or deletes the def must know.
///
/// Only temps with exactly one def are in SSA form; pre-existing temps
/// can be multi-def (loop peeling/unrolling clones them), and the SSA
/// passes restrict themselves to singleDef() temps.
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_ANALYSIS_SSADEFUSE_H
#define SLDB_ANALYSIS_SSADEFUSE_H

#include "analysis/CFGContext.h"

#include <vector>

namespace sldb {

/// Def-use chains over the function's temps, addressed by InstrId (valid
/// until the next mutation invalidates the analysis).
class SsaDefUse {
public:
  explicit SsaDefUse(const CFGContext &CFG);

  /// Number of defining instructions of temp \p T (0 for undefined /
  /// out-of-range temps).
  unsigned numDefs(TempId T) const {
    return T < Defs.size() ? Defs[T].NumDefs : 0;
  }

  /// True when temp \p T has exactly one defining instruction.
  bool singleDef(TempId T) const { return numDefs(T) == 1; }

  /// The single def's instruction id / block index; only meaningful when
  /// singleDef(T).
  InstrId defOf(TempId T) const { return Defs[T].Def; }
  unsigned defBlockOf(TempId T) const { return Defs[T].Block; }

  /// Instruction ids reading temp \p T (operands, phi incomings, and
  /// DeadMarker recovery values), one entry per reading instruction
  /// occurrence.
  const std::vector<InstrId> &usesOf(TempId T) const {
    static const std::vector<InstrId> Empty;
    return T < Uses.size() ? Uses[T] : Empty;
  }

  /// Total use count of \p T, counting non-instruction references
  /// (SRRecords) on top of usesOf().
  unsigned numUses(TempId T) const {
    return T < Uses.size()
               ? static_cast<unsigned>(Uses[T].size()) + ExternalUses[T]
               : 0;
  }

  /// Dense CFG index of the block holding instruction \p Id at analysis
  /// time; ~0u for pool ids not linked into any block.
  unsigned blockOfInstr(InstrId Id) const {
    return Id < InstrBlock.size() ? InstrBlock[Id] : ~0u;
  }

  /// Position of instruction \p Id within its block (0-based), so
  /// intra-block before/after queries need no list walk.
  unsigned ordinalOf(InstrId Id) const {
    return Id < InstrOrdinal.size() ? InstrOrdinal[Id] : 0;
  }

private:
  struct DefInfo {
    unsigned NumDefs = 0;
    InstrId Def = InvalidInstr;
    unsigned Block = ~0u;
  };
  std::vector<DefInfo> Defs;
  std::vector<std::vector<InstrId>> Uses;
  std::vector<unsigned> ExternalUses;  ///< SRRecord references.
  std::vector<unsigned> InstrBlock;    ///< Pool id -> dense block index.
  std::vector<unsigned> InstrOrdinal;  ///< Pool id -> position in block.
};

} // namespace sldb

#endif // SLDB_ANALYSIS_SSADEFUSE_H
