//===- analysis/Liveness.h - Live variables ---------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic backward live-variable analysis over the ValueIndex universe
/// (variables + temporaries), with per-instruction queries.  Drives dead
/// assignment elimination, partial dead-code elimination (sinking), and
/// register allocation.
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_ANALYSIS_LIVENESS_H
#define SLDB_ANALYSIS_LIVENESS_H

#include "analysis/AliasInfo.h"
#include "analysis/CFGContext.h"
#include "analysis/Dataflow.h"
#include "analysis/InstrInfo.h"

namespace sldb {

/// Live-variable analysis result.
class Liveness {
public:
  /// \p AI refines the may-use rule: loads and calls only read the
  /// address-taken scalars their pointer operands may actually address.
  Liveness(const CFGContext &CFG, const ValueIndex &VI,
           const ProgramInfo &Info, const AliasInfo &AI);

  /// Live set at block entry / exit.
  const BitVector &liveIn(unsigned BlockIdx) const { return R.In[BlockIdx]; }
  const BitVector &liveOut(unsigned BlockIdx) const {
    return R.Out[BlockIdx];
  }

  /// Returns the live set immediately *after* instruction \p Pos of block
  /// \p BlockIdx executes (recomputed by a backward walk; O(block size)).
  BitVector liveAfter(unsigned BlockIdx, const Instr *Pos) const;

  /// Applies one instruction's transfer function (backward) to \p Live.
  void transfer(const Instr &I, BitVector &Live) const;

  const ValueIndex &values() const { return VI; }

private:
  const CFGContext &CFG;
  const ValueIndex &VI;
  const ProgramInfo &Info;
  const AliasInfo &AI;
  DataflowResult R;
};

} // namespace sldb

#endif // SLDB_ANALYSIS_LIVENESS_H
