//===- analysis/SsaDefUse.cpp ---------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/SsaDefUse.h"

using namespace sldb;

SsaDefUse::SsaDefUse(const CFGContext &CFG) {
  const IRFunction &F = CFG.function();
  Defs.resize(F.NextTemp);
  Uses.resize(F.NextTemp);
  ExternalUses.assign(F.NextTemp, 0);
  InstrBlock.assign(F.Pool.idBound(), ~0u);
  InstrOrdinal.assign(F.Pool.idBound(), 0);

  auto NoteUse = [&](const Value &V, InstrId Id) {
    if (V.isTemp() && V.Id < Uses.size())
      Uses[V.Id].push_back(Id);
  };

  for (unsigned BI = 0, N = CFG.numBlocks(); BI < N; ++BI) {
    const BasicBlock *B = CFG.block(BI);
    unsigned Ord = 0;
    for (auto It = B->Insts.begin(), E = B->Insts.end(); It != E; ++It) {
      const Instr &I = *It;
      const InstrId Id = It.id();
      InstrBlock[Id] = BI;
      InstrOrdinal[Id] = Ord++;
      if (I.Dest.isTemp() && I.Dest.Id < Defs.size()) {
        DefInfo &D = Defs[I.Dest.Id];
        ++D.NumDefs;
        D.Def = Id;
        D.Block = BI;
      }
      // AddrOf's operand is always a variable, so visiting every operand
      // uniformly is safe; marker operand lists are empty, their temp
      // reference is the recovery value below.
      for (const Value &V : I.Ops)
        NoteUse(V, Id);
      if (I.Op == Opcode::DeadMarker)
        NoteUse(I.Recovery, Id);
    }
  }
  for (const IRFunction::SRRecord &R : F.SRRecords)
    if (R.Temp.isTemp() && R.Temp.Id < ExternalUses.size())
      ++ExternalUses[R.Temp.Id];
}
