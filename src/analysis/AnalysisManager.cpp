//===- analysis/AnalysisManager.cpp - Cached function analyses ------------===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/AnalysisManager.h"

#include "support/Stats.h"
#include "support/Trace.h"

using namespace sldb;

void AnalysisManager::count(AnalysisID ID, bool Hit) {
  (Hit ? Stats.Hits : Stats.Misses)[static_cast<unsigned>(ID)]++;
  static StatCounter &Hits = sldb::Stats::counter("analysis.cache.hits");
  static StatCounter &Misses = sldb::Stats::counter("analysis.cache.misses");
  (Hit ? Hits : Misses).add();
}

const char *sldb::analysisName(AnalysisID ID) {
  switch (ID) {
  case AnalysisID::CFG:
    return "cfg";
  case AnalysisID::Dominators:
    return "dominators";
  case AnalysisID::PostDominators:
    return "post-dominators";
  case AnalysisID::Loops:
    return "loops";
  case AnalysisID::Values:
    return "value-index";
  case AnalysisID::Liveness:
    return "liveness";
  case AnalysisID::ReachingDefs:
    return "reaching-defs";
  case AnalysisID::DomFrontiers:
    return "dom-frontiers";
  case AnalysisID::SsaDefUse:
    return "ssa-def-use";
  case AnalysisID::Alias:
    return "alias";
  }
  return "?";
}

AnalysisDependence sldb::analysisDependence(AnalysisID ID) {
  switch (ID) {
  case AnalysisID::CFG:
  case AnalysisID::Dominators:
  case AnalysisID::PostDominators:
  case AnalysisID::Loops:
  case AnalysisID::DomFrontiers:
    return AnalysisDependence::CFGShape;
  case AnalysisID::Values:
  case AnalysisID::Liveness:
  case AnalysisID::ReachingDefs:
  case AnalysisID::SsaDefUse:
  case AnalysisID::Alias:
    return AnalysisDependence::Instruction;
  }
  return AnalysisDependence::Instruction;
}

namespace {

/// Direct prerequisites of each analysis (bitmask over AnalysisID).
unsigned dependsOn(AnalysisID ID) {
  auto Bit = [](AnalysisID D) { return 1u << static_cast<unsigned>(D); };
  switch (ID) {
  case AnalysisID::CFG:
  case AnalysisID::Values:
  case AnalysisID::Alias:
    return 0;
  case AnalysisID::Dominators:
  case AnalysisID::PostDominators:
    return Bit(AnalysisID::CFG);
  case AnalysisID::Loops:
  case AnalysisID::DomFrontiers:
    return Bit(AnalysisID::CFG) | Bit(AnalysisID::Dominators);
  case AnalysisID::Liveness:
  case AnalysisID::ReachingDefs:
    return Bit(AnalysisID::CFG) | Bit(AnalysisID::Values) |
           Bit(AnalysisID::Alias);
  case AnalysisID::SsaDefUse:
    return Bit(AnalysisID::CFG);
  }
  return 0;
}

} // namespace

void AnalysisManager::invalidate(IRFunction &F, const PreservedAnalyses &PA) {
  if (PA.areAllPreserved())
    return;
  auto It = Entries.find(&F);
  if (It == Entries.end())
    return;
  // Seed with the abandoned set, then close over dependents: an analysis
  // whose prerequisite dies dies with it (its result holds references
  // into the prerequisite).
  unsigned Dead = 0;
  for (unsigned I = 0; I < NumAnalysisIDs; ++I)
    if (!PA.isPreserved(static_cast<AnalysisID>(I)))
      Dead |= 1u << I;
  bool Grew = true;
  while (Grew) {
    Grew = false;
    for (unsigned I = 0; I < NumAnalysisIDs; ++I)
      if (!((Dead >> I) & 1u) && (dependsOn(static_cast<AnalysisID>(I)) & Dead)) {
        Dead |= 1u << I;
        Grew = true;
      }
  }
  FunctionEntry &E = It->second;
  auto Gone = [&](AnalysisID ID) {
    return (Dead >> static_cast<unsigned>(ID)) & 1u;
  };
  // Destroy dependents before prerequisites (results hold references).
  if (Gone(AnalysisID::SsaDefUse))
    E.SsaDU.reset();
  if (Gone(AnalysisID::DomFrontiers))
    E.DF.reset();
  if (Gone(AnalysisID::ReachingDefs))
    E.Reach.reset();
  if (Gone(AnalysisID::Liveness))
    E.Live.reset();
  if (Gone(AnalysisID::Alias))
    E.Alias.reset();
  if (Gone(AnalysisID::Loops))
    E.Loops.reset();
  if (Gone(AnalysisID::Dominators))
    E.Dom.reset();
  if (Gone(AnalysisID::PostDominators))
    E.PDom.reset();
  if (Gone(AnalysisID::Values))
    E.Values.reset();
  if (Gone(AnalysisID::CFG))
    E.CFG.reset();
}

namespace sldb {

template <> CFGContext &AnalysisManager::getResult<CFGContext>(IRFunction &F) {
  FunctionEntry &E = entry(F);
  count(AnalysisID::CFG, E.CFG != nullptr);
  if (!E.CFG) {
    TraceSpan Span("cfg", "analysis");
    Span.arg("function", F.Name);
    E.CFG = std::make_unique<CFGContext>(F);
  }
  return *E.CFG;
}

template <> Dominators &AnalysisManager::getResult<Dominators>(IRFunction &F) {
  CFGContext &CFG = getResult<CFGContext>(F);
  FunctionEntry &E = entry(F);
  count(AnalysisID::Dominators, E.Dom != nullptr);
  if (!E.Dom) {
    TraceSpan Span("dominators", "analysis");
    Span.arg("function", F.Name);
    E.Dom = std::make_unique<Dominators>(CFG);
  }
  return *E.Dom;
}

template <>
PostDominators &AnalysisManager::getResult<PostDominators>(IRFunction &F) {
  CFGContext &CFG = getResult<CFGContext>(F);
  FunctionEntry &E = entry(F);
  count(AnalysisID::PostDominators, E.PDom != nullptr);
  if (!E.PDom) {
    TraceSpan Span("post-dominators", "analysis");
    Span.arg("function", F.Name);
    E.PDom = std::make_unique<PostDominators>(CFG);
  }
  return *E.PDom;
}

template <> LoopInfo &AnalysisManager::getResult<LoopInfo>(IRFunction &F) {
  CFGContext &CFG = getResult<CFGContext>(F);
  Dominators &Dom = getResult<Dominators>(F);
  FunctionEntry &E = entry(F);
  count(AnalysisID::Loops, E.Loops != nullptr);
  if (!E.Loops) {
    TraceSpan Span("loops", "analysis");
    Span.arg("function", F.Name);
    E.Loops = std::make_unique<LoopInfo>(CFG, Dom);
  }
  return *E.Loops;
}

template <> ValueIndex &AnalysisManager::getResult<ValueIndex>(IRFunction &F) {
  FunctionEntry &E = entry(F);
  count(AnalysisID::Values, E.Values != nullptr);
  if (!E.Values) {
    TraceSpan Span("value-index", "analysis");
    Span.arg("function", F.Name);
    E.Values = std::make_unique<ValueIndex>(F, Info);
  }
  return *E.Values;
}

template <> Liveness &AnalysisManager::getResult<Liveness>(IRFunction &F) {
  CFGContext &CFG = getResult<CFGContext>(F);
  ValueIndex &VI = getResult<ValueIndex>(F);
  AliasInfo &AI = getResult<AliasInfo>(F);
  FunctionEntry &E = entry(F);
  count(AnalysisID::Liveness, E.Live != nullptr);
  if (!E.Live) {
    TraceSpan Span("liveness", "analysis");
    Span.arg("function", F.Name);
    E.Live = std::make_unique<Liveness>(CFG, VI, Info, AI);
  }
  return *E.Live;
}

template <>
ReachingDefs &AnalysisManager::getResult<ReachingDefs>(IRFunction &F) {
  CFGContext &CFG = getResult<CFGContext>(F);
  ValueIndex &VI = getResult<ValueIndex>(F);
  AliasInfo &AI = getResult<AliasInfo>(F);
  FunctionEntry &E = entry(F);
  count(AnalysisID::ReachingDefs, E.Reach != nullptr);
  if (!E.Reach) {
    TraceSpan Span("reaching-defs", "analysis");
    Span.arg("function", F.Name);
    E.Reach = std::make_unique<ReachingDefs>(CFG, VI, Info, AI);
  }
  return *E.Reach;
}

template <>
DomFrontiers &AnalysisManager::getResult<DomFrontiers>(IRFunction &F) {
  CFGContext &CFG = getResult<CFGContext>(F);
  Dominators &Dom = getResult<Dominators>(F);
  FunctionEntry &E = entry(F);
  count(AnalysisID::DomFrontiers, E.DF != nullptr);
  if (!E.DF) {
    TraceSpan Span("dom-frontiers", "analysis");
    Span.arg("function", F.Name);
    E.DF = std::make_unique<DomFrontiers>(CFG, Dom);
  }
  return *E.DF;
}

template <> SsaDefUse &AnalysisManager::getResult<SsaDefUse>(IRFunction &F) {
  CFGContext &CFG = getResult<CFGContext>(F);
  FunctionEntry &E = entry(F);
  count(AnalysisID::SsaDefUse, E.SsaDU != nullptr);
  if (!E.SsaDU) {
    TraceSpan Span("ssa-def-use", "analysis");
    Span.arg("function", F.Name);
    E.SsaDU = std::make_unique<SsaDefUse>(CFG);
  }
  return *E.SsaDU;
}

template <> AliasInfo &AnalysisManager::getResult<AliasInfo>(IRFunction &F) {
  FunctionEntry &E = entry(F);
  count(AnalysisID::Alias, E.Alias != nullptr);
  if (!E.Alias) {
    TraceSpan Span("alias", "analysis");
    Span.arg("function", F.Name);
    E.Alias = std::make_unique<AliasInfo>(F, Info);
  }
  return *E.Alias;
}

template <>
const CFGContext *
AnalysisManager::getCached<CFGContext>(const IRFunction &F) const {
  const FunctionEntry *E = findEntry(F);
  return E ? E->CFG.get() : nullptr;
}
template <>
const Dominators *
AnalysisManager::getCached<Dominators>(const IRFunction &F) const {
  const FunctionEntry *E = findEntry(F);
  return E ? E->Dom.get() : nullptr;
}
template <>
const PostDominators *
AnalysisManager::getCached<PostDominators>(const IRFunction &F) const {
  const FunctionEntry *E = findEntry(F);
  return E ? E->PDom.get() : nullptr;
}
template <>
const LoopInfo *
AnalysisManager::getCached<LoopInfo>(const IRFunction &F) const {
  const FunctionEntry *E = findEntry(F);
  return E ? E->Loops.get() : nullptr;
}
template <>
const ValueIndex *
AnalysisManager::getCached<ValueIndex>(const IRFunction &F) const {
  const FunctionEntry *E = findEntry(F);
  return E ? E->Values.get() : nullptr;
}
template <>
const Liveness *
AnalysisManager::getCached<Liveness>(const IRFunction &F) const {
  const FunctionEntry *E = findEntry(F);
  return E ? E->Live.get() : nullptr;
}
template <>
const ReachingDefs *
AnalysisManager::getCached<ReachingDefs>(const IRFunction &F) const {
  const FunctionEntry *E = findEntry(F);
  return E ? E->Reach.get() : nullptr;
}
template <>
const DomFrontiers *
AnalysisManager::getCached<DomFrontiers>(const IRFunction &F) const {
  const FunctionEntry *E = findEntry(F);
  return E ? E->DF.get() : nullptr;
}
template <>
const SsaDefUse *
AnalysisManager::getCached<SsaDefUse>(const IRFunction &F) const {
  const FunctionEntry *E = findEntry(F);
  return E ? E->SsaDU.get() : nullptr;
}
template <>
const AliasInfo *
AnalysisManager::getCached<AliasInfo>(const IRFunction &F) const {
  const FunctionEntry *E = findEntry(F);
  return E ? E->Alias.get() : nullptr;
}

} // namespace sldb
