//===- analysis/AnalysisManager.h - Cached function analyses ---*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A typed per-function analysis cache with explicit, dependency-aware
/// invalidation — the substrate the paper's thesis needs: debug
/// classification is "ordinary bit-vector data-flow over the compiler's
/// own IR", so the IR analyses must be computed once and shared, not
/// rebuilt by every consumer.
///
/// Passes request results with `AM.getResult<Dominators>(F)` and report
/// what they kept intact by returning a PreservedAnalyses set.  Analyses
/// register their dependence level: *CFG-shape* analyses (dominators,
/// loops) survive instruction rewrites that leave the block graph alone,
/// while *instruction-level* analyses (liveness, reaching definitions)
/// do not.  Invalidation is transitively closed over the dependency
/// graph, so dropping the CFG context drops everything built on it.
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_ANALYSIS_ANALYSISMANAGER_H
#define SLDB_ANALYSIS_ANALYSISMANAGER_H

#include "analysis/AliasInfo.h"
#include "analysis/CFGContext.h"
#include "analysis/DomFrontiers.h"
#include "analysis/Dominators.h"
#include "analysis/InstrInfo.h"
#include "analysis/Liveness.h"
#include "analysis/LoopInfo.h"
#include "analysis/ReachingDefs.h"
#include "analysis/SsaDefUse.h"

#include <cstdint>
#include <memory>
#include <unordered_map>

namespace sldb {

/// Dense identifiers of the cached analyses.
enum class AnalysisID : unsigned {
  CFG = 0,        ///< CFGContext (block order, edges).
  Dominators,     ///< Dominator sets.
  PostDominators, ///< Post-dominator sets.
  Loops,          ///< Natural-loop forest.
  Values,         ///< ValueIndex (dense value numbering).
  Liveness,       ///< Live variables.
  ReachingDefs,   ///< Reaching definitions.
  DomFrontiers,   ///< Dominance frontiers + dominator tree.
  SsaDefUse,      ///< Temp def-use chains (SSA-form passes).
  Alias,          ///< May-alias / address-taken / escape facts.
};
inline constexpr unsigned NumAnalysisIDs = 10;

/// What an analysis result depends on; decides which mutations kill it.
enum class AnalysisDependence {
  CFGShape,   ///< Valid while the block graph is unchanged.
  Instruction ///< Killed by any instruction-level rewrite.
};

const char *analysisName(AnalysisID ID);
AnalysisDependence analysisDependence(AnalysisID ID);

/// The set of analyses a pass left intact, returned from Pass::run.
/// A pass that mutated nothing returns all(); a pass that restructured
/// the CFG returns none(); a pass that only rewrote instructions in
/// place returns cfgShape().
class PreservedAnalyses {
public:
  static PreservedAnalyses all() {
    PreservedAnalyses PA;
    PA.Mask = (1u << NumAnalysisIDs) - 1;
    return PA;
  }
  static PreservedAnalyses none() { return PreservedAnalyses(); }

  /// Preserves exactly the CFG-shape analyses (CFG, dominators,
  /// post-dominators, loops); instruction-level results are dropped.
  static PreservedAnalyses cfgShape() {
    PreservedAnalyses PA;
    for (unsigned I = 0; I < NumAnalysisIDs; ++I)
      if (analysisDependence(static_cast<AnalysisID>(I)) ==
          AnalysisDependence::CFGShape)
        PA.Mask |= 1u << I;
    return PA;
  }

  PreservedAnalyses &preserve(AnalysisID ID) {
    Mask |= 1u << static_cast<unsigned>(ID);
    return *this;
  }
  PreservedAnalyses &abandon(AnalysisID ID) {
    Mask &= ~(1u << static_cast<unsigned>(ID));
    return *this;
  }

  bool isPreserved(AnalysisID ID) const {
    return (Mask >> static_cast<unsigned>(ID)) & 1u;
  }
  bool areAllPreserved() const {
    return Mask == ((1u << NumAnalysisIDs) - 1);
  }

  /// Meet with another set (used when a pass aggregates sub-steps).
  void intersect(const PreservedAnalyses &O) { Mask &= O.Mask; }

private:
  unsigned Mask = 0;
};

/// Cache hit/miss counters, per analysis kind.
struct AnalysisStats {
  std::uint64_t Hits[NumAnalysisIDs] = {};
  std::uint64_t Misses[NumAnalysisIDs] = {};

  std::uint64_t totalHits() const {
    std::uint64_t N = 0;
    for (std::uint64_t H : Hits)
      N += H;
    return N;
  }
  std::uint64_t totalMisses() const {
    std::uint64_t N = 0;
    for (std::uint64_t M : Misses)
      N += M;
    return N;
  }
};

/// Per-function cache of analysis results.  Results are owned by the
/// manager; references handed out stay valid until the analysis is
/// invalidated.  Dependencies are built through the cache, so e.g.
/// getResult<Liveness> first materializes (or reuses) the CFGContext and
/// ValueIndex it references.
class AnalysisManager {
public:
  explicit AnalysisManager(const ProgramInfo &Info) : Info(Info) {}

  AnalysisManager(const AnalysisManager &) = delete;
  AnalysisManager &operator=(const AnalysisManager &) = delete;

  /// Returns the cached result for \p F, computing it on a miss.
  /// Specialized for each analysis type below.
  template <typename AnalysisT> AnalysisT &getResult(IRFunction &F);

  /// Returns the cached result if present, else null (never computes).
  template <typename AnalysisT>
  const AnalysisT *getCached(const IRFunction &F) const;

  /// Drops every result for \p F not preserved by \p PA, transitively
  /// closing over analysis dependencies (dropping the CFG drops all
  /// dependents; dropping ValueIndex drops liveness/reaching defs;
  /// dropping dominators drops loops).
  void invalidate(IRFunction &F, const PreservedAnalyses &PA);

  /// Drops every result for \p F.
  void invalidateAll(IRFunction &F) {
    invalidate(F, PreservedAnalyses::none());
  }

  /// Drops everything for every function.
  void clear() { Entries.clear(); }

  const AnalysisStats &stats() const { return Stats; }

  const ProgramInfo &programInfo() const { return Info; }

private:
  struct FunctionEntry {
    std::unique_ptr<CFGContext> CFG;
    std::unique_ptr<Dominators> Dom;
    std::unique_ptr<PostDominators> PDom;
    std::unique_ptr<LoopInfo> Loops;
    std::unique_ptr<ValueIndex> Values;
    std::unique_ptr<Liveness> Live;
    std::unique_ptr<ReachingDefs> Reach;
    std::unique_ptr<DomFrontiers> DF;
    std::unique_ptr<SsaDefUse> SsaDU;
    std::unique_ptr<AliasInfo> Alias;
  };

  FunctionEntry &entry(const IRFunction &F) { return Entries[&F]; }
  const FunctionEntry *findEntry(const IRFunction &F) const {
    auto It = Entries.find(&F);
    return It == Entries.end() ? nullptr : &It->second;
  }

  /// Bumps both the manager's own counters and the process-wide Stats
  /// registry (analysis.cache.hits/misses), so campaign worker stats can
  /// report cache effectiveness without threading managers around.
  void count(AnalysisID ID, bool Hit);

  const ProgramInfo &Info;
  std::unordered_map<const IRFunction *, FunctionEntry> Entries;
  AnalysisStats Stats;
};

template <> CFGContext &AnalysisManager::getResult<CFGContext>(IRFunction &F);
template <> Dominators &AnalysisManager::getResult<Dominators>(IRFunction &F);
template <>
PostDominators &AnalysisManager::getResult<PostDominators>(IRFunction &F);
template <> LoopInfo &AnalysisManager::getResult<LoopInfo>(IRFunction &F);
template <> ValueIndex &AnalysisManager::getResult<ValueIndex>(IRFunction &F);
template <> Liveness &AnalysisManager::getResult<Liveness>(IRFunction &F);
template <>
ReachingDefs &AnalysisManager::getResult<ReachingDefs>(IRFunction &F);
template <>
DomFrontiers &AnalysisManager::getResult<DomFrontiers>(IRFunction &F);
template <> SsaDefUse &AnalysisManager::getResult<SsaDefUse>(IRFunction &F);
template <> AliasInfo &AnalysisManager::getResult<AliasInfo>(IRFunction &F);

template <>
const CFGContext *
AnalysisManager::getCached<CFGContext>(const IRFunction &F) const;
template <>
const Dominators *
AnalysisManager::getCached<Dominators>(const IRFunction &F) const;
template <>
const PostDominators *
AnalysisManager::getCached<PostDominators>(const IRFunction &F) const;
template <>
const LoopInfo *
AnalysisManager::getCached<LoopInfo>(const IRFunction &F) const;
template <>
const ValueIndex *
AnalysisManager::getCached<ValueIndex>(const IRFunction &F) const;
template <>
const Liveness *
AnalysisManager::getCached<Liveness>(const IRFunction &F) const;
template <>
const ReachingDefs *
AnalysisManager::getCached<ReachingDefs>(const IRFunction &F) const;
template <>
const DomFrontiers *
AnalysisManager::getCached<DomFrontiers>(const IRFunction &F) const;
template <>
const SsaDefUse *
AnalysisManager::getCached<SsaDefUse>(const IRFunction &F) const;
template <>
const AliasInfo *
AnalysisManager::getCached<AliasInfo>(const IRFunction &F) const;

} // namespace sldb

#endif // SLDB_ANALYSIS_ANALYSISMANAGER_H
