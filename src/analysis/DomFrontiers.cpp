//===- analysis/DomFrontiers.cpp ------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/DomFrontiers.h"

#include <algorithm>

using namespace sldb;

DomFrontiers::DomFrontiers(const CFGContext &CFG, const Dominators &Dom) {
  const unsigned N = CFG.numBlocks();
  Idom.assign(N, ~0u);
  Children.resize(N);
  DF.resize(N);

  // idom(b) = the strict dominator of b with the largest dominator set:
  // dominators of one block are totally ordered by domination, so the
  // "deepest" strict dominator is the immediate one.  Blocks whose
  // dominator set does not contain the entry are unreachable (their sets
  // are the vacuous full universe) and get no idom.
  for (unsigned B = 1; B < N; ++B) {
    const BitVector &DS = Dom.domSet(B);
    if (!DS.test(0))
      continue; // Unreachable from the entry.
    unsigned Best = ~0u, BestCount = 0;
    for (unsigned D = 0; D < N; ++D) {
      if (D == B || !DS.test(D))
        continue;
      unsigned C = Dom.domSet(D).count();
      if (Best == ~0u || C > BestCount) {
        Best = D;
        BestCount = C;
      }
    }
    Idom[B] = Best;
    if (Best != ~0u)
      Children[Best].push_back(B);
  }

  // Cytron et al.: for every join block, walk each predecessor up the
  // dominator tree until the join's idom; every block on the way has the
  // join in its frontier.
  for (unsigned B = 0; B < N; ++B) {
    const std::vector<unsigned> &Preds = CFG.preds(B);
    if (Preds.size() < 2)
      continue;
    for (unsigned P : Preds) {
      unsigned Runner = P;
      while (Runner != ~0u && Runner != Idom[B]) {
        std::vector<unsigned> &F = DF[Runner];
        if (std::find(F.begin(), F.end(), B) != F.end())
          break; // Already recorded via another pred; the rest of the
                 // chain has it too.
        F.push_back(B);
        if (Runner == B)
          break; // Self-loop head: b is in its own frontier, stop.
        Runner = Idom[Runner];
      }
    }
  }
  for (std::vector<unsigned> &F : DF)
    std::sort(F.begin(), F.end());
}
