//===- analysis/ReachingDefs.h - Reaching definitions -----------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic reaching-definitions analysis.  The universe has one bit per
/// definition site (instruction defining a tracked value), plus one
/// "unknown definition" pseudo-site per tracked value modeling parameter
/// values, clobbers through memory/calls, and function entry state.
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_ANALYSIS_REACHINGDEFS_H
#define SLDB_ANALYSIS_REACHINGDEFS_H

#include "analysis/AliasInfo.h"
#include "analysis/CFGContext.h"
#include "analysis/Dataflow.h"
#include "analysis/InstrInfo.h"

#include <unordered_map>
#include <vector>

namespace sldb {

/// Reaching definitions for one function.
class ReachingDefs {
public:
  /// \p AI refines the clobber rule: stores and calls only generate
  /// unknown definitions for scalars their pointers may actually reach.
  ReachingDefs(const CFGContext &CFG, const ValueIndex &VI,
               const ProgramInfo &Info, const AliasInfo &AI);

  /// One definition site.
  struct DefSite {
    const Instr *I = nullptr; ///< Null for pseudo (unknown) defs.
    unsigned BlockIdx = 0;
    unsigned ValueIdx = 0; ///< ValueIndex of the defined value.
  };

  unsigned numDefs() const { return static_cast<unsigned>(Defs.size()); }
  const DefSite &def(unsigned Idx) const { return Defs[Idx]; }

  /// The pseudo "unknown definition" bit of a value.
  unsigned unknownDef(unsigned ValueIdx) const {
    return UnknownBase + ValueIdx;
  }
  bool isUnknownDef(unsigned DefIdx) const { return Defs[DefIdx].I == nullptr; }

  /// Mask of all definition bits of one value.
  const BitVector &defsOfValue(unsigned ValueIdx) const {
    return DefsOf[ValueIdx];
  }

  /// Reaching-def set at block entry.
  const BitVector &reachIn(unsigned BlockIdx) const { return R.In[BlockIdx]; }

  /// Applies one instruction's transfer function (forward) to \p Reach.
  void transfer(const Instr &I, BitVector &Reach) const;

  /// Definition bit of instruction \p I, or ~0u if it defines nothing.
  unsigned defIndexOf(const Instr *I) const {
    auto It = DefOfInstr.find(I);
    return It == DefOfInstr.end() ? ~0u : It->second;
  }

private:
  const ValueIndex &VI;
  const ProgramInfo &Info;
  const AliasInfo &AI;
  std::vector<DefSite> Defs;
  unsigned UnknownBase = 0;
  std::vector<BitVector> DefsOf;
  std::unordered_map<const Instr *, unsigned> DefOfInstr;
  DataflowResult R;
};

} // namespace sldb

#endif // SLDB_ANALYSIS_REACHINGDEFS_H
