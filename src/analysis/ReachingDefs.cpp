//===- analysis/ReachingDefs.cpp ------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/ReachingDefs.h"

using namespace sldb;

ReachingDefs::ReachingDefs(const CFGContext &CFG, const ValueIndex &VI,
                           const ProgramInfo &Info, const AliasInfo &AI)
    : VI(VI), Info(Info), AI(AI) {
  // Enumerate real definition sites.
  for (unsigned B = 0; B < CFG.numBlocks(); ++B)
    for (const Instr &I : CFG.block(B)->Insts) {
      unsigned DIdx = VI.valueIndex(I.Dest);
      if (DIdx == ~0u)
        continue;
      DefOfInstr[&I] = static_cast<unsigned>(Defs.size());
      Defs.push_back({&I, B, DIdx});
    }
  UnknownBase = static_cast<unsigned>(Defs.size());
  // One pseudo unknown-def per tracked value.
  for (unsigned V = 0; V < VI.size(); ++V)
    Defs.push_back({nullptr, 0, V});

  const unsigned Universe = static_cast<unsigned>(Defs.size());
  DefsOf.assign(VI.size(), BitVector(Universe));
  for (unsigned D = 0; D < Universe; ++D)
    DefsOf[Defs[D].ValueIdx].set(D);

  DataflowProblem P;
  P.Dir = FlowDir::Forward;
  P.Meet = FlowMeet::Union;
  P.init(CFG, Universe);

  // At entry, every value has an unknown definition (parameters, globals,
  // zero-initialized locals).
  for (unsigned V = 0; V < VI.size(); ++V)
    P.Boundary.set(unknownDef(V));

  for (unsigned B = 0; B < CFG.numBlocks(); ++B) {
    BitVector Reach(Universe); // Gen accumulates; Kill likewise.
    BitVector Gen(Universe), Kill(Universe);
    for (const Instr &I : CFG.block(B)->Insts) {
      // Clobbers: calls/stores may redefine address-taken/global scalars.
      if (I.Op == Opcode::Store || I.Op == Opcode::Call) {
        for (VarId V : VI.trackedVars())
          if (AI.mayClobber(I, V)) {
            unsigned VIdx = VI.varIndex(V);
            // Unknown def: kill nothing (weak update), gen unknown bit.
            Gen.set(unknownDef(VIdx));
          }
      }
      unsigned D = defIndexOf(&I);
      if (D == ~0u)
        continue;
      unsigned VIdx = Defs[D].ValueIdx;
      Gen.subtract(DefsOf[VIdx]);
      Kill |= DefsOf[VIdx];
      Gen.set(D);
    }
    P.Gen[B] = std::move(Gen);
    P.Kill[B] = std::move(Kill);
    (void)Reach;
  }
  R = solveDataflow(CFG, P);
}

void ReachingDefs::transfer(const Instr &I, BitVector &Reach) const {
  if (I.Op == Opcode::Store || I.Op == Opcode::Call) {
    for (VarId V : VI.trackedVars())
      if (AI.mayClobber(I, V))
        Reach.set(unknownDef(VI.varIndex(V)));
  }
  auto It = DefOfInstr.find(&I);
  if (It == DefOfInstr.end())
    return;
  unsigned VIdx = Defs[It->second].ValueIdx;
  Reach.subtract(DefsOf[VIdx]);
  Reach.set(It->second);
}
