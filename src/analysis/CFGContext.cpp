//===- analysis/CFGContext.cpp --------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/CFGContext.h"

using namespace sldb;

CFGContext::CFGContext(IRFunction &F) : F(F) {
  F.recomputePreds();
  Order = F.rpo();
  for (unsigned I = 0; I < Order.size(); ++I)
    Index[Order[I]] = I;
  Preds.resize(Order.size());
  Succs.resize(Order.size());
  for (unsigned I = 0; I < Order.size(); ++I) {
    BasicBlock *B = Order[I];
    for (BasicBlock *S : B->succs()) {
      Succs[I].push_back(Index.at(S));
      Preds[Index.at(S)].push_back(I);
    }
    if (B->hasTerm() && B->term().Op == Opcode::Ret)
      Exits.push_back(I);
  }
}
