//===- analysis/CFGContext.cpp --------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/CFGContext.h"

using namespace sldb;

CFGContext::CFGContext(IRFunction &F) : F(F) {
  F.recomputePreds();
  Order = F.rpo();
  // Stamp each block with its traversal index so indexOf is a field read,
  // not a hash lookup.  A block belongs to at most one live CFGContext:
  // contexts are invalidated (and rebuilt) on any CFG mutation.
  for (unsigned I = 0; I < Order.size(); ++I)
    Order[I]->CtxIndex = I;
  Preds.resize(Order.size());
  Succs.resize(Order.size());
  for (unsigned I = 0; I < Order.size(); ++I) {
    BasicBlock *B = Order[I];
    for (BasicBlock *S : B->succRange()) {
      Succs[I].push_back(S->CtxIndex);
      Preds[S->CtxIndex].push_back(I);
    }
    if (B->hasTerm() && B->term().Op == Opcode::Ret)
      Exits.push_back(I);
  }
}
