//===- analysis/Liveness.cpp ----------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/Liveness.h"

using namespace sldb;

void Liveness::transfer(const Instr &I, BitVector &Live) const {
  // Backward: kill the def, then add uses.
  unsigned DestIdx = VI.valueIndex(I.Dest);
  if (DestIdx != ~0u)
    Live.reset(DestIdx);
  forEachUse(I, [&](const Value &U) {
    unsigned Idx = VI.valueIndex(U);
    if (Idx != ~0u)
      Live.set(Idx);
  });
  // May-uses (loads/calls reading address-taken or global scalars).
  if (I.Op == Opcode::Load || I.Op == Opcode::Call || I.Op == Opcode::Ret) {
    for (VarId V : VI.trackedVars())
      if (AI.mayRead(I, V))
        Live.set(VI.varIndex(V));
  }
  // AddrOf pins the variable: once its address is taken, any later memory
  // operation may read it, which the may-use rule above covers.
}

Liveness::Liveness(const CFGContext &CFG, const ValueIndex &VI,
                   const ProgramInfo &Info, const AliasInfo &AI)
    : CFG(CFG), VI(VI), Info(Info), AI(AI) {
  DataflowProblem P;
  P.Dir = FlowDir::Backward;
  P.Meet = FlowMeet::Union;
  P.init(CFG, VI.size());

  // Globals are live at function exits (the caller may read them).
  for (VarId V : VI.trackedVars())
    if (Info.var(V).Storage == StorageKind::Global)
      P.Boundary.set(VI.varIndex(V));

  for (unsigned B = 0; B < CFG.numBlocks(); ++B) {
    // Compute Gen (upward-exposed uses) and Kill (defs) by a backward
    // walk so that Out - Kill + Gen == In for the whole block.
    BitVector Gen(VI.size()), Kill(VI.size());
    const BasicBlock *BB = CFG.block(B);
    for (auto It = BB->Insts.rbegin(); It != BB->Insts.rend(); ++It) {
      const Instr &I = *It;
      unsigned DestIdx = VI.valueIndex(I.Dest);
      if (DestIdx != ~0u) {
        Gen.reset(DestIdx);
        Kill.set(DestIdx);
      }
      forEachUse(I, [&](const Value &U) {
        unsigned Idx = VI.valueIndex(U);
        if (Idx != ~0u)
          Gen.set(Idx);
      });
      if (I.Op == Opcode::Load || I.Op == Opcode::Call ||
          I.Op == Opcode::Ret) {
        for (VarId V : VI.trackedVars())
          if (AI.mayRead(I, V))
            Gen.set(VI.varIndex(V));
      }
    }
    P.Gen[B] = std::move(Gen);
    P.Kill[B] = std::move(Kill);
  }
  R = solveDataflow(CFG, P);
}

BitVector Liveness::liveAfter(unsigned BlockIdx, const Instr *Pos) const {
  BitVector Live = R.Out[BlockIdx];
  const BasicBlock *BB = CFG.block(BlockIdx);
  for (auto It = BB->Insts.rbegin(); It != BB->Insts.rend(); ++It) {
    if (&*It == Pos)
      return Live;
    transfer(*It, Live);
  }
  assert(false && "instruction not found in block");
  return Live;
}
