//===- analysis/LoopInfo.cpp ----------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopInfo.h"

#include <algorithm>

using namespace sldb;

LoopInfo::LoopInfo(const CFGContext &CFG, const Dominators &Dom) {
  const unsigned N = CFG.numBlocks();
  // Find back edges T -> H where H dominates T; merge loops per header.
  for (unsigned T = 0; T < N; ++T)
    for (unsigned H : CFG.succs(T)) {
      if (!Dom.dominates(H, T))
        continue;
      Loop *L = nullptr;
      for (Loop &Existing : Loops)
        if (Existing.Header == H)
          L = &Existing;
      if (!L) {
        Loops.push_back(Loop());
        L = &Loops.back();
        L->Header = H;
        L->Blocks = BitVector(N);
        L->Blocks.set(H);
      }
      L->Latches.push_back(T);
      // Natural loop body: walk backwards from the latch until the header.
      std::vector<unsigned> Work;
      if (!L->Blocks.test(T)) {
        L->Blocks.set(T);
        Work.push_back(T);
      }
      while (!Work.empty()) {
        unsigned B = Work.back();
        Work.pop_back();
        for (unsigned P : CFG.preds(B))
          if (!L->Blocks.test(P)) {
            L->Blocks.set(P);
            Work.push_back(P);
          }
      }
    }

  // Exit blocks.
  for (Loop &L : Loops)
    for (unsigned B : L.Blocks)
      for (unsigned S : CFG.succs(B))
        if (!L.contains(S) &&
            std::find(L.ExitBlocks.begin(), L.ExitBlocks.end(), S) ==
                L.ExitBlocks.end())
          L.ExitBlocks.push_back(S);
}

BasicBlock *sldb::findPreheader(const CFGContext &CFG, const Loop &L) {
  BasicBlock *Header = CFG.block(L.Header);
  BasicBlock *Candidate = nullptr;
  for (BasicBlock *P : Header->Preds) {
    unsigned PIdx = CFG.indexOf(P);
    if (L.contains(PIdx))
      continue; // Latch.
    if (Candidate)
      return nullptr; // Multiple outside predecessors.
    Candidate = P;
  }
  if (!Candidate)
    return nullptr;
  if (Candidate->succRange().size() != 1)
    return nullptr;
  return Candidate;
}

BasicBlock *sldb::getOrCreatePreheader(CFGContext &CFG, const Loop &L,
                                       bool &Changed) {
  Changed = false;
  if (BasicBlock *PH = findPreheader(CFG, L))
    return PH;
  IRFunction &F = CFG.function();
  BasicBlock *Header = CFG.block(L.Header);
  BasicBlock *PH = F.newBlock("preheader");
  Instr Jump;
  Jump.Op = Opcode::Br;
  Jump.Succs[0] = Header;
  PH->Insts.push_back(Jump);
  std::vector<BasicBlock *> Preds = Header->Preds;
  for (BasicBlock *P : Preds) {
    if (L.contains(CFG.indexOf(P)))
      continue; // Latches keep their back edge.
    P->replaceSucc(Header, PH);
  }
  F.recomputePreds();
  Changed = true;
  return PH;
}
