//===- analysis/Dataflow.cpp ----------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Worklist solver.  Blocks are processed in traversal order — reverse
// post-order for forward problems, post-order for backward ones (the
// CFGContext block order *is* RPO) — so most problems converge in one or
// two visits per block.  A block is re-queued only when the result side of
// an edge into it changed.  All BitVector scratch is allocated once before
// the loop and refilled in place: the inner loop is pure word-parallel
// set algebra over preallocated storage.
//
// The fixed point of a monotone gen/kill problem is unique, so the switch
// from the old repeated-sweep schedule changes iteration counts, never
// results.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dataflow.h"

using namespace sldb;

namespace {

/// Core solver over an abstract edge supplier.  \p edgesIn yields the
/// blocks whose results feed B (preds for forward, succs for backward);
/// \p edgesOut the blocks that consume B's result.
template <typename EdgesInFn, typename EdgesOutFn>
DataflowResult solveCore(unsigned N, const DataflowProblem &P,
                         const std::vector<unsigned> &Exits,
                         EdgesInFn edgesIn, EdgesOutFn edgesOut) {
  const bool Fwd = P.Dir == FlowDir::Forward;
  const bool Union = P.Meet == FlowMeet::Union;

  DataflowResult R;
  R.In.assign(N, BitVector(P.Universe, !Union));
  R.Out.assign(N, BitVector(P.Universe, !Union));

  // "Meet input" of a block: In for forward, Out for backward.
  // "Result" of a block:     Out for forward, In for backward.
  auto &MeetSide = Fwd ? R.In : R.Out;
  auto &ResultSide = Fwd ? R.Out : R.In;

  std::vector<bool> IsBoundary(N, false);
  if (Fwd) {
    if (N)
      IsBoundary[0] = true; // Entry block has index 0.
  } else {
    for (unsigned E : Exits)
      IsBoundary[E] = true;
  }

  // LIFO worklist, seeded so the first N pops visit every block in
  // traversal order (RPO forward, post-order backward).
  std::vector<unsigned> Work;
  Work.reserve(2 * N);
  std::vector<bool> OnList(N, true);
  for (unsigned Step = 0; Step < N; ++Step)
    Work.push_back(Fwd ? N - 1 - Step : Step);

  // Scratch reused across every visit; same-size BitVector assignment
  // rewrites the existing words without reallocating.
  const BitVector InitVal(P.Universe, !Union);
  BitVector NewMeet(P.Universe);
  BitVector NewResult(P.Universe);

  while (!Work.empty()) {
    unsigned B = Work.back();
    Work.pop_back();
    OnList[B] = false;

    // Meet over incoming edges (plus the boundary value for boundary
    // blocks).  A block with no incoming information keeps the top
    // (Intersect) or bottom (Union) value.
    const std::vector<unsigned> &Edges = edgesIn(B);
    bool First = true;
    for (unsigned E : Edges) {
      if (First) {
        NewMeet = ResultSide[E];
        First = false;
      } else if (Union) {
        NewMeet |= ResultSide[E];
      } else {
        NewMeet &= ResultSide[E];
      }
    }
    if (IsBoundary[B]) {
      if (First) {
        NewMeet = P.Boundary;
        First = false;
      } else if (Union) {
        NewMeet |= P.Boundary;
      } else {
        NewMeet &= P.Boundary;
      }
    }
    if (First)
      NewMeet = InitVal;

    NewResult = NewMeet;
    NewResult.subtract(P.Kill[B]);
    NewResult |= P.Gen[B];

    if (NewMeet != MeetSide[B])
      std::swap(MeetSide[B], NewMeet);
    if (NewResult != ResultSide[B]) {
      std::swap(ResultSide[B], NewResult);
      // B's result feeds its out-edges; requeue the consumers.
      for (unsigned S : edgesOut(B))
        if (!OnList[S]) {
          OnList[S] = true;
          Work.push_back(S);
        }
    }
  }
  return R;
}

} // namespace

DataflowResult sldb::solveDataflowGeneric(
    unsigned NumBlocks, const std::vector<std::vector<unsigned>> &Preds,
    const std::vector<std::vector<unsigned>> &Succs,
    const std::vector<unsigned> &Exits, const DataflowProblem &P) {
  const bool Fwd = P.Dir == FlowDir::Forward;
  return solveCore(
      NumBlocks, P, Exits,
      [&](unsigned B) -> const std::vector<unsigned> & {
        return Fwd ? Preds[B] : Succs[B];
      },
      [&](unsigned B) -> const std::vector<unsigned> & {
        return Fwd ? Succs[B] : Preds[B];
      });
}

DataflowResult sldb::solveDataflow(const CFGContext &CFG,
                                   const DataflowProblem &P) {
  // Reads the context's edge lists in place — no per-call CFG copy.
  const bool Fwd = P.Dir == FlowDir::Forward;
  return solveCore(
      CFG.numBlocks(), P, CFG.exits(),
      [&](unsigned B) -> const std::vector<unsigned> & {
        return Fwd ? CFG.preds(B) : CFG.succs(B);
      },
      [&](unsigned B) -> const std::vector<unsigned> & {
        return Fwd ? CFG.succs(B) : CFG.preds(B);
      });
}
