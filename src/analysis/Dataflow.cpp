//===- analysis/Dataflow.cpp ----------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/Dataflow.h"

using namespace sldb;

DataflowResult sldb::solveDataflowGeneric(
    unsigned NumBlocks, const std::vector<std::vector<unsigned>> &Preds,
    const std::vector<std::vector<unsigned>> &Succs,
    const std::vector<unsigned> &Exits, const DataflowProblem &P) {
  const unsigned N = NumBlocks;
  const bool Fwd = P.Dir == FlowDir::Forward;
  const bool Union = P.Meet == FlowMeet::Union;

  DataflowResult R;
  R.In.assign(N, BitVector(P.Universe, !Union));
  R.Out.assign(N, BitVector(P.Universe, !Union));

  // "Meet input" of a block: In for forward, Out for backward.
  // "Result" of a block:     Out for forward, In for backward.
  auto &MeetSide = Fwd ? R.In : R.Out;
  auto &ResultSide = Fwd ? R.Out : R.In;

  auto edgesIn = [&](unsigned B) -> const std::vector<unsigned> & {
    return Fwd ? Preds[B] : Succs[B];
  };
  auto isBoundary = [&](unsigned B) {
    if (Fwd)
      return B == 0; // Entry block has index 0.
    for (unsigned E : Exits)
      if (E == B)
        return true;
    return false;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    // Forward problems converge fastest in order; backward in reverse.
    for (unsigned Step = 0; Step < N; ++Step) {
      unsigned B = Fwd ? Step : N - 1 - Step;

      // Meet over incoming edges.
      BitVector NewMeet(P.Universe, !Union);
      const std::vector<unsigned> &Edges = edgesIn(B);
      if (Edges.empty() && !isBoundary(B)) {
        // No incoming information: keep the top (Intersect) or bottom
        // (Union) value.
      } else {
        bool First = true;
        for (unsigned E : Edges) {
          if (First) {
            NewMeet = ResultSide[E];
            First = false;
          } else if (Union) {
            NewMeet |= ResultSide[E];
          } else {
            NewMeet &= ResultSide[E];
          }
        }
        if (isBoundary(B)) {
          if (First) {
            NewMeet = P.Boundary;
            First = false;
          } else if (Union) {
            NewMeet |= P.Boundary;
          } else {
            NewMeet &= P.Boundary;
          }
        }
        if (First)
          NewMeet = BitVector(P.Universe, !Union);
      }

      BitVector NewResult = NewMeet;
      NewResult.subtract(P.Kill[B]);
      NewResult |= P.Gen[B];

      if (NewMeet != MeetSide[B] || NewResult != ResultSide[B]) {
        MeetSide[B] = std::move(NewMeet);
        ResultSide[B] = std::move(NewResult);
        Changed = true;
      }
    }
  }
  return R;
}

DataflowResult sldb::solveDataflow(const CFGContext &CFG,
                                   const DataflowProblem &P) {
  const unsigned N = CFG.numBlocks();
  std::vector<std::vector<unsigned>> Preds(N), Succs(N);
  for (unsigned B = 0; B < N; ++B) {
    Preds[B] = CFG.preds(B);
    Succs[B] = CFG.succs(B);
  }
  return solveDataflowGeneric(N, Preds, Succs, CFG.exits(), P);
}
