//===- analysis/AliasInfo.cpp - May-alias & address-taken facts -----------===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/AliasInfo.h"

#include <algorithm>

using namespace sldb;

namespace {

bool addRoot(PointsToSet &D, VarId R) {
  if (D.Unknown || D.contains(R))
    return false;
  D.Roots.insert(std::upper_bound(D.Roots.begin(), D.Roots.end(), R), R);
  return true;
}

bool setUnknown(PointsToSet &D) {
  if (D.Unknown)
    return false;
  D.Unknown = true;
  D.Roots.clear();
  return true;
}

bool unionInto(PointsToSet &D, const PointsToSet &S) {
  if (S.Unknown)
    return setUnknown(D);
  bool Changed = false;
  for (VarId R : S.Roots)
    Changed |= addRoot(D, R);
  return Changed;
}

} // namespace

AliasInfo::AliasInfo(const IRFunction &F, const ProgramInfo &Info)
    : Info(Info) {
  TempPT.resize(F.NextTemp);

  // Pointer-typed parameters address caller storage the function cannot
  // name; addresses of this function's own locals can reach a parameter
  // only after escaping through a route tracked below, so Unknown stays
  // conservative (see the recursion note in the header).
  for (VarId P : F.Params)
    if (Info.var(P).Ty.isPtr())
      VarPT[P].Unknown = true;

  // Pre-populate every pointer-typed variable slot so the fixpoint can
  // hold PointsToSet pointers without rehash invalidation, and collect
  // the AddrOf universe.
  for (const auto &B : F.Blocks)
    for (const Instr &I : B->Insts) {
      if (I.Op == Opcode::AddrOf && !I.Ops.empty() && I.Ops[0].isVar())
        AddressTakenIR[I.Ops[0].Id] = 1;
      if (I.Dest.isVar() && I.Dest.Ty == IRType::Ptr)
        VarPT[I.Dest.Id];
      for (const Value &Op : I.Ops)
        if (Op.isVar() && Op.Ty == IRType::Ptr)
          VarPT[Op.Id];
    }

  auto Slot = [&](const Value &V) -> PointsToSet * {
    if (V.isTemp())
      return V.Id < TempPT.size() ? &TempPT[V.Id] : nullptr;
    if (V.isVar()) {
      auto It = VarPT.find(V.Id);
      return It != VarPT.end() ? &It->second : nullptr;
    }
    return nullptr;
  };

  // Flow-insensitive fixpoint over the pointer-producing instructions.
  // The lattice is union-only (roots never leave a set), so the loop
  // terminates; sets are bounded by the AddrOf universe.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const auto &B : F.Blocks)
      for (const Instr &I : B->Insts) {
        PointsToSet *D = Slot(I.Dest);
        if (!D || I.Dest.Ty != IRType::Ptr)
          continue;
        switch (I.Op) {
        case Opcode::AddrOf:
          if (!I.Ops.empty() && I.Ops[0].isVar())
            Changed |= addRoot(*D, I.Ops[0].Id);
          else
            Changed |= setUnknown(*D);
          break;
        case Opcode::Copy:
        case Opcode::Add:
        case Opcode::Sub:
        case Opcode::Phi:
          // Pointer arithmetic stays within the pointed-to object in
          // defined MiniC programs (no casts, no int->ptr round trips),
          // so only the pointer-typed operands contribute roots.
          for (const Value &Op : I.Ops) {
            if (Op.Ty != IRType::Ptr)
              continue;
            if (const PointsToSet *S = Slot(Op))
              Changed |= unionInto(*D, *S);
            else
              Changed |= setUnknown(*D);
          }
          break;
        default:
          // Loads of stored pointers, call results, anything else that
          // manufactures a pointer: untracked.
          Changed |= setUnknown(*D);
          break;
        }
      }
  }

  // Escape scan: an address is visible to foreign code once it is
  // passed as a call argument, stored into memory, returned, or left in
  // a global pointer variable.
  auto EscapeValue = [&](const Value &V) {
    if (V.Ty != IRType::Ptr)
      return;
    if (const PointsToSet *S = Slot(V))
      escapeSet(*S);
  };
  for (const auto &B : F.Blocks)
    for (const Instr &I : B->Insts) {
      switch (I.Op) {
      case Opcode::Call:
        for (const Value &A : I.Ops)
          EscapeValue(A);
        break;
      case Opcode::Store:
        if (I.Ops.size() == 2)
          EscapeValue(I.Ops[1]);
        break;
      case Opcode::Ret:
        if (!I.Ops.empty())
          EscapeValue(I.Ops[0]);
        break;
      default:
        break;
      }
      if (I.Dest.isVar() && I.Dest.Ty == IRType::Ptr &&
          Info.var(I.Dest.Id).Storage == StorageKind::Global) {
        auto It = VarPT.find(I.Dest.Id);
        if (It != VarPT.end())
          escapeSet(It->second);
      }
    }
}

void AliasInfo::escapeSet(const PointsToSet &PT) {
  if (PT.Unknown) {
    // Unknown values cannot hold addresses that did not already escape,
    // but proving that here is not worth the risk: widen to the whole
    // AddrOf universe.
    for (const auto &KV : AddressTakenIR)
      Escaped[KV.first] = 1;
    return;
  }
  for (VarId R : PT.Roots)
    Escaped[R] = 1;
}

const PointsToSet *AliasInfo::pointsTo(const Value &Ptr) const {
  if (Ptr.isTemp())
    return Ptr.Id < TempPT.size() ? &TempPT[Ptr.Id] : nullptr;
  if (Ptr.isVar()) {
    auto It = VarPT.find(Ptr.Id);
    return It != VarPT.end() ? &It->second : nullptr;
  }
  return nullptr;
}

bool AliasInfo::typeMatches(IRType ElemTy, const VarInfo &V) const {
  switch (V.Ty.Kind) {
  case TypeKind::Int:
    return ElemTy == IRType::Int;
  case TypeKind::Double:
    return ElemTy == IRType::Double;
  case TypeKind::Ptr:
    return ElemTy == IRType::Ptr;
  default:
    return true;
  }
}

bool AliasInfo::mayClobber(const Instr &I, VarId V) const {
  const VarInfo &VI = Info.var(V);
  if (!VI.isScalar())
    return false;
  switch (I.Op) {
  case Opcode::Store: {
    // VarInfo::AddressTaken (set by Sema at every `&v` in the program)
    // is a sound superset of "some pointer may hold &v": addresses are
    // only born at AddrOf.
    if (!VI.AddressTaken)
      return false;
    const PointsToSet *PT = I.Ops.empty() ? nullptr : pointsTo(I.Ops[0]);
    if (!PT || PT->Unknown)
      return typeMatches(I.Ty, VI);
    return PT->contains(V);
  }
  case Opcode::Call:
    if (VI.Storage == StorageKind::Global)
      return true; // Callees assign globals directly.
    return VI.AddressTaken && escaped(V);
  default:
    return false;
  }
}

bool AliasInfo::mayRead(const Instr &I, VarId V) const {
  const VarInfo &VI = Info.var(V);
  if (!VI.isScalar())
    return false;
  switch (I.Op) {
  case Opcode::Load: {
    if (!VI.AddressTaken)
      return false;
    const PointsToSet *PT = I.Ops.empty() ? nullptr : pointsTo(I.Ops[0]);
    if (!PT || PT->Unknown)
      return typeMatches(I.Ty, VI);
    return PT->contains(V);
  }
  case Opcode::Call:
    if (VI.Storage == StorageKind::Global)
      return true;
    return VI.AddressTaken && escaped(V);
  case Opcode::Ret:
    return VI.Storage == StorageKind::Global;
  default:
    return false;
  }
}
