//===- analysis/Dominators.cpp --------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/Dominators.h"

using namespace sldb;

Dominators::Dominators(const CFGContext &CFG) {
  const unsigned N = CFG.numBlocks();
  Dom.assign(N, BitVector(N, true));
  Dom[0] = BitVector(N);
  Dom[0].set(0);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned B = 1; B < N; ++B) {
      BitVector NewDom(N, true);
      if (CFG.preds(B).empty())
        NewDom = BitVector(N); // Unreachable: dominated only by itself.
      for (unsigned P : CFG.preds(B))
        NewDom &= Dom[P];
      NewDom.set(B);
      if (NewDom != Dom[B]) {
        Dom[B] = std::move(NewDom);
        Changed = true;
      }
    }
  }
}

PostDominators::PostDominators(const CFGContext &CFG) {
  const unsigned N = CFG.numBlocks();
  PDom.assign(N, BitVector(N, true));
  for (unsigned E : CFG.exits()) {
    PDom[E] = BitVector(N);
    PDom[E].set(E);
  }
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned Step = 0; Step < N; ++Step) {
      unsigned B = N - 1 - Step;
      bool IsExit = false;
      for (unsigned E : CFG.exits())
        IsExit |= E == B;
      if (IsExit)
        continue;
      BitVector NewPD(N, true);
      if (CFG.succs(B).empty())
        NewPD = BitVector(N); // No path to exit: only itself.
      for (unsigned S : CFG.succs(B))
        NewPD &= PDom[S];
      NewPD.set(B);
      if (NewPD != PDom[B]) {
        PDom[B] = std::move(NewPD);
        Changed = true;
      }
    }
  }
}
