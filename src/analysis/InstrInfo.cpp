//===- analysis/InstrInfo.cpp ---------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/InstrInfo.h"

using namespace sldb;

std::vector<Value> sldb::instrUses(const Instr &I) {
  std::vector<Value> Uses;
  forEachUse(I, [&](const Value &V) { Uses.push_back(V); });
  return Uses;
}

bool sldb::instrMayClobberVar(const Instr &I, const VarInfo &V) {
  if (!V.isScalar())
    return false; // Arrays are not tracked as scalar data-flow values.
  switch (I.Op) {
  case Opcode::Store:
    // A store can write any address-taken scalar.
    return V.AddressTaken;
  case Opcode::Call:
    // A callee can write globals directly and address-taken locals
    // through escaped pointers.
    return V.AddressTaken || V.Storage == StorageKind::Global;
  default:
    return false;
  }
}

bool sldb::instrMayReadVar(const Instr &I, const VarInfo &V) {
  if (!V.isScalar())
    return false;
  switch (I.Op) {
  case Opcode::Load:
    return V.AddressTaken;
  case Opcode::Call:
    return V.AddressTaken || V.Storage == StorageKind::Global;
  case Opcode::Ret:
    // Values of globals must survive to the caller: treat returns as uses
    // of every global so assignments to them are never "dead" at exits.
    return V.Storage == StorageKind::Global;
  default:
    return false;
  }
}

ValueIndex::ValueIndex(const IRFunction &F, const ProgramInfo &Info) {
  VarIdx.assign(Info.Vars.size(), ~0u);
  TempIdx.assign(F.NextTemp, ~0u);
  auto AddVar = [&](VarId Id) {
    if (Id == InvalidVar || VarIdx[Id] != ~0u)
      return;
    if (!Info.var(Id).isScalar())
      return;
    VarIdx[Id] = Count++;
    Vars.push_back(Id);
  };
  // First pass: collect variables (they occupy the low indices so
  // isVarIndex() can answer by range).
  for (VarId P : F.Params)
    AddVar(P);
  for (const auto &B : F.Blocks)
    for (const Instr &I : B->Insts) {
      if (I.Dest.isVar())
        AddVar(I.Dest.Id);
      for (const Value &V : I.Ops)
        if (V.isVar())
          AddVar(V.Id);
      if (I.MarkVar != InvalidVar)
        AddVar(I.MarkVar);
      if (I.Recovery.isVar())
        AddVar(I.Recovery.Id);
    }
  // Globals referenced nowhere still matter for scope queries; callers
  // handle those separately.  Second pass: temps.
  for (const auto &B : F.Blocks)
    for (const Instr &I : B->Insts) {
      if (I.Dest.isTemp() && TempIdx[I.Dest.Id] == ~0u)
        TempIdx[I.Dest.Id] = Count++;
      for (const Value &V : I.Ops)
        if (V.isTemp() && TempIdx[V.Id] == ~0u)
          TempIdx[V.Id] = Count++;
      if (I.Recovery.isTemp() && TempIdx[I.Recovery.Id] == ~0u)
        TempIdx[I.Recovery.Id] = Count++;
    }
}
