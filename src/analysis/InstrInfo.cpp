//===- analysis/InstrInfo.cpp ---------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/InstrInfo.h"

using namespace sldb;

std::vector<Value> sldb::instrUses(const Instr &I) {
  std::vector<Value> Uses;
  switch (I.Op) {
  case Opcode::AddrOf:
    // The operand names a variable but its *address*, not its value, is
    // read; taking an address is not a use of the scalar value.
    return Uses;
  case Opcode::DeadMarker:
  case Opcode::AvailMarker:
  case Opcode::Nop:
  case Opcode::Br:
    return Uses;
  default:
    break;
  }
  for (const Value &V : I.Ops)
    if (V.isTemp() || V.isVar())
      Uses.push_back(V);
  return Uses;
}

bool sldb::instrMayClobberVar(const Instr &I, const VarInfo &V) {
  if (!V.isScalar())
    return false; // Arrays are not tracked as scalar data-flow values.
  switch (I.Op) {
  case Opcode::Store:
    // A store can write any address-taken scalar.
    return V.AddressTaken;
  case Opcode::Call:
    // A callee can write globals directly and address-taken locals
    // through escaped pointers.
    return V.AddressTaken || V.Storage == StorageKind::Global;
  default:
    return false;
  }
}

bool sldb::instrMayReadVar(const Instr &I, const VarInfo &V) {
  if (!V.isScalar())
    return false;
  switch (I.Op) {
  case Opcode::Load:
    return V.AddressTaken;
  case Opcode::Call:
    return V.AddressTaken || V.Storage == StorageKind::Global;
  case Opcode::Ret:
    // Values of globals must survive to the caller: treat returns as uses
    // of every global so assignments to them are never "dead" at exits.
    return V.Storage == StorageKind::Global;
  default:
    return false;
  }
}

ValueIndex::ValueIndex(const IRFunction &F, const ProgramInfo &Info) {
  auto AddVar = [&](VarId Id) {
    if (Id == InvalidVar || VarIdx.count(Id))
      return;
    if (!Info.var(Id).isScalar())
      return;
    VarIdx[Id] = Count++;
    Vars.push_back(Id);
  };
  // First pass: collect variables (they occupy the low indices so
  // isVarIndex() can answer by range).
  for (VarId P : F.Params)
    AddVar(P);
  for (const auto &B : F.Blocks)
    for (const Instr &I : B->Insts) {
      if (I.Dest.isVar())
        AddVar(I.Dest.Id);
      for (const Value &V : I.Ops)
        if (V.isVar())
          AddVar(V.Id);
      if (I.MarkVar != InvalidVar)
        AddVar(I.MarkVar);
      if (I.Recovery.isVar())
        AddVar(I.Recovery.Id);
    }
  // Globals referenced nowhere still matter for scope queries; callers
  // handle those separately.  Second pass: temps.
  for (const auto &B : F.Blocks)
    for (const Instr &I : B->Insts) {
      if (I.Dest.isTemp() && !TempIdx.count(I.Dest.Id))
        TempIdx[I.Dest.Id] = Count++;
      for (const Value &V : I.Ops)
        if (V.isTemp() && !TempIdx.count(V.Id))
          TempIdx[V.Id] = Count++;
      if (I.Recovery.isTemp() && !TempIdx.count(I.Recovery.Id))
        TempIdx[I.Recovery.Id] = Count++;
    }
}
