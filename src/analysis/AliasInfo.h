//===- analysis/AliasInfo.h - May-alias & address-taken facts ---*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Conservative per-function may-alias analysis for MiniC's pointer
/// fragment: fixed-size arrays, single-level pointers, `&` on scalar
/// variables, and pointer arithmetic on array bases.  The analysis
/// refines the maximally-conservative free functions in InstrInfo.h
/// (which kill every address-taken scalar at every Store/Call) with two
/// facts the IR can prove:
///
///  - *Points-to roots.*  Every pointer-typed value is mapped, flow
///    insensitively, to the set of variables whose storage it may
///    address.  Addresses are only born at AddrOf instructions, survive
///    Copy/Phi and pointer arithmetic (which stays within the object in
///    defined MiniC programs: there are no casts and no pointer-to-
///    pointer round trips through integers), and become *unknown* when
///    loaded back out of memory, produced by a call, or received as a
///    parameter.  A Store through a pointer with a known root set kills
///    exactly the scalars in that set; a store through an unknown
///    pointer falls back to the syntactic address-taken rule, filtered
///    by the store's element type (MiniC has no pointer casts, so an
///    int store can never write a double's slot).
///
///  - *Escape.*  A call can only write an address-taken local if the
///    local's address actually reached foreign code: passed as a call
///    argument, stored into memory, returned, or assigned to a global
///    pointer.  Locals whose address only ever feeds direct loads and
///    stores inside the function are invisible to callees, so calls do
///    not kill their data-flow facts.  (An *unknown* pointer value can
///    only contain a local's address if that address already escaped
///    through one of the tracked routes first — addresses of locals are
///    only created inside their own function — so unknown values never
///    widen the escaped set.)
///
/// Soundness note for the recursion edge case: a known root set {v}
/// always names the *current* activation's v (the AddrOf executed in
/// this frame).  Addresses of other activations of the same function
/// arrive only through parameters or memory, both of which map to
/// *unknown* and therefore stay conservative.
///
/// Registered with AnalysisManager as AnalysisID::Alias (instruction-
/// level dependence: any instruction mutation invalidates it).
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_ANALYSIS_ALIASINFO_H
#define SLDB_ANALYSIS_ALIASINFO_H

#include "analysis/InstrInfo.h"
#include "frontend/Symbols.h"
#include "ir/IR.h"

#include <unordered_map>
#include <vector>

namespace sldb {

/// What a pointer-typed value may address.
struct PointsToSet {
  /// True when the value escapes tracking (loaded from memory, call
  /// result, incoming parameter): it may address any object whose
  /// address was ever taken.  Roots is meaningless then.
  bool Unknown = false;

  /// Root variables (locals, params, globals; scalars and arrays) whose
  /// storage the value may address.  Sorted, unique.
  std::vector<VarId> Roots;

  bool contains(VarId V) const {
    for (VarId R : Roots)
      if (R == V)
        return true;
    return false;
  }
};

class AliasInfo {
public:
  AliasInfo(const IRFunction &F, const ProgramInfo &Info);

  /// Whether an AddrOf of \p V appears anywhere in the function body
  /// (IR-level; unlike VarInfo::AddressTaken this ignores other
  /// functions, so it is exact for locals).
  bool addressTaken(VarId V) const { return AddressTakenIR.count(V) != 0; }

  /// Whether \p V's address may be reachable by callees or through
  /// memory: it was passed as a call argument, stored, returned, or
  /// assigned to a global pointer variable.
  bool escaped(VarId V) const { return Escaped.count(V) != 0; }

  /// Points-to roots of pointer value \p Ptr, or nullptr for values the
  /// analysis does not track (non-pointer values, constants).  A result
  /// with Unknown set means "any address-taken object".
  const PointsToSet *pointsTo(const Value &Ptr) const;

  /// Refinement of instrMayClobberVar(): may executing \p I overwrite
  /// the current activation's storage of scalar \p V?
  bool mayClobber(const Instr &I, VarId V) const;

  /// Refinement of instrMayReadVar(): may executing \p I observe the
  /// value of scalar \p V other than through a named operand?
  bool mayRead(const Instr &I, VarId V) const;

private:
  const ProgramInfo &Info;

  std::unordered_map<VarId, char> AddressTakenIR;
  std::unordered_map<VarId, char> Escaped;

  /// Per-temp points-to (index = TempId); empty Roots + !Unknown means
  /// "addresses nothing" (also the state of untracked non-ptr temps).
  std::vector<PointsToSet> TempPT;
  /// Per-variable points-to for pointer-typed variables.
  std::unordered_map<VarId, PointsToSet> VarPT;

  /// True when the store/load element type \p ElemTy can describe
  /// variable \p V's scalar slot (no casts in MiniC, so types must
  /// match exactly).
  bool typeMatches(IRType ElemTy, const VarInfo &V) const;

  void escapeSet(const PointsToSet &PT);
};

} // namespace sldb

#endif // SLDB_ANALYSIS_ALIASINFO_H
