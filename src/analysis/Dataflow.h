//===- analysis/Dataflow.h - Iterative bit-vector solver --------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The generic iterative gen/kill bit-vector data-flow solver.  All of the
/// paper's analyses — reaching definitions, liveness, availability, and the
/// novel hoist-reach and dead-reach problems — instantiate this framework,
/// exactly as cmcc reused its optimizer's data-flow modules (paper §1,
/// "the data-flow analysis required to support the debugger ... uses the
/// same modules").
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_ANALYSIS_DATAFLOW_H
#define SLDB_ANALYSIS_DATAFLOW_H

#include "analysis/CFGContext.h"
#include "support/BitVector.h"

#include <vector>

namespace sldb {

/// Direction of propagation.
enum class FlowDir { Forward, Backward };

/// Meet operator: union ("along some path") or intersection ("along all
/// paths").  The paper's suspect/noncurrent split is exactly the difference
/// between these two meets over the same gen/kill sets (Lemmas 2/3, 5/6).
enum class FlowMeet { Union, Intersect };

/// A gen/kill data-flow problem over a fixed universe of facts.
struct DataflowProblem {
  FlowDir Dir = FlowDir::Forward;
  FlowMeet Meet = FlowMeet::Union;
  unsigned Universe = 0;

  /// Per-block transfer function pieces, indexed by CFG block index.
  std::vector<BitVector> Gen, Kill;

  /// Value at the boundary (entry for forward, virtual exit for backward).
  BitVector Boundary;

  /// Initializes Gen/Kill/Boundary to empty sets for \p CFG.
  void init(const CFGContext &CFG, unsigned UniverseSize) {
    Universe = UniverseSize;
    Gen.assign(CFG.numBlocks(), BitVector(Universe));
    Kill.assign(CFG.numBlocks(), BitVector(Universe));
    Boundary = BitVector(Universe);
  }
};

/// Fixed point of a data-flow problem: In/Out per block.
struct DataflowResult {
  std::vector<BitVector> In, Out;
};

/// Solves \p P over \p CFG by worklist iteration to the maximum (Intersect)
/// or minimum (Union) fixed point.
DataflowResult solveDataflow(const CFGContext &CFG, const DataflowProblem &P);

/// Graph-agnostic variant: \p Preds / \p Succs are edge lists by block
/// index (block 0 = entry), \p Exits lists the blocks meeting the virtual
/// exit.  Used by the debugger-side analyses, which run over *machine*
/// CFGs (paper §3: the analyses are performed on the final
/// instruction-level representation).
DataflowResult
solveDataflowGeneric(unsigned NumBlocks,
                     const std::vector<std::vector<unsigned>> &Preds,
                     const std::vector<std::vector<unsigned>> &Succs,
                     const std::vector<unsigned> &Exits,
                     const DataflowProblem &P);

} // namespace sldb

#endif // SLDB_ANALYSIS_DATAFLOW_H
