//===- analysis/InstrInfo.h - Use/def queries -------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Conservative use/def queries for instructions, including the may-use /
/// may-def effects of calls, loads and stores on address-taken and global
/// variables.  Also provides ValueIndex, the dense numbering of the
/// variables and temporaries a function touches (the bit positions of the
/// data-flow universes).
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_ANALYSIS_INSTRINFO_H
#define SLDB_ANALYSIS_INSTRINFO_H

#include "ir/IR.h"

#include <unordered_map>
#include <vector>

namespace sldb {

/// Returns the values directly read by \p I (operands only, no may-uses).
std::vector<Value> instrUses(const Instr &I);

/// Visits the values directly read by \p I (operands only, no may-uses)
/// without materializing a vector — the form the hot data-flow transfer
/// loops use.
template <typename Fn> inline void forEachUse(const Instr &I, Fn &&F) {
  switch (I.Op) {
  case Opcode::AddrOf:
    // The operand names a variable but its *address*, not its value, is
    // read; taking an address is not a use of the scalar value.
  case Opcode::DeadMarker:
  case Opcode::AvailMarker:
  case Opcode::Nop:
  case Opcode::Br:
    return;
  default:
    break;
  }
  for (const Value &V : I.Ops)
    if (V.isTemp() || V.isVar())
      F(V);
}

/// Returns true if \p I may write variable \p V through memory or a call
/// (not counting a direct destination).
bool instrMayClobberVar(const Instr &I, const VarInfo &V);

/// Returns true if \p I may read variable \p V indirectly (through memory
/// or a call).
bool instrMayReadVar(const Instr &I, const VarInfo &V);

/// Dense numbering of the scalar values (variables and temps) appearing in
/// one function: bit positions for liveness-style universes.
class ValueIndex {
public:
  ValueIndex(const IRFunction &F, const ProgramInfo &Info);

  unsigned size() const { return Count; }

  /// Index of a variable; ~0u if the variable is not tracked (arrays).
  unsigned varIndex(VarId V) const {
    return V < VarIdx.size() ? VarIdx[V] : ~0u;
  }

  /// Index of a temporary.  Temps minted after construction (by the
  /// running pass) are out of range and untracked, as before.
  unsigned tempIndex(TempId T) const {
    return T < TempIdx.size() ? TempIdx[T] : ~0u;
  }

  /// Index of a Value (Temp or Var); ~0u otherwise.
  unsigned valueIndex(const Value &V) const {
    if (V.isVar())
      return varIndex(V.Id);
    if (V.isTemp())
      return tempIndex(V.Id);
    return ~0u;
  }

  /// All tracked variables (for iterating may-def sets).
  const std::vector<VarId> &trackedVars() const { return Vars; }

  /// Reverse lookup: returns true + fills \p V if index \p Idx is a var.
  bool isVarIndex(unsigned Idx, VarId &V) const {
    if (Idx < Vars.size()) {
      V = Vars[Idx];
      return true;
    }
    return false;
  }

private:
  // Dense tables: VarId indexes ProgramInfo::Vars, TempId is allocated
  // densely per function, so flat vectors beat hashing on every operand
  // lookup.  ~0u marks untracked slots.
  std::vector<unsigned> VarIdx;
  std::vector<unsigned> TempIdx;
  std::vector<VarId> Vars;
  unsigned Count = 0;
};

} // namespace sldb

#endif // SLDB_ANALYSIS_INSTRINFO_H
