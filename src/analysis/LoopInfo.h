//===- analysis/LoopInfo.h - Natural loop detection -------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Natural-loop detection from back edges, plus preheader creation.  Used
/// by loop-invariant code motion, induction-variable optimization and loop
/// peeling/unrolling.
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_ANALYSIS_LOOPINFO_H
#define SLDB_ANALYSIS_LOOPINFO_H

#include "analysis/CFGContext.h"
#include "analysis/Dominators.h"
#include "support/BitVector.h"

#include <vector>

namespace sldb {

/// One natural loop.
struct Loop {
  unsigned Header = 0;            ///< Block index of the header.
  BitVector Blocks;               ///< Membership over block indices.
  std::vector<unsigned> Latches;  ///< Back-edge sources.
  std::vector<unsigned> ExitBlocks; ///< Blocks outside with a pred inside.

  bool contains(unsigned BlockIdx) const { return Blocks.test(BlockIdx); }
};

/// All natural loops of a function (loops with the same header merged).
class LoopInfo {
public:
  LoopInfo(const CFGContext &CFG, const Dominators &Dom);

  const std::vector<Loop> &loops() const { return Loops; }

private:
  std::vector<Loop> Loops;
};

/// Returns the preheader of \p L (the unique predecessor of the header
/// from outside the loop that has the header as its only successor), or
/// null if there is none.  \p CFG must be current.
BasicBlock *findPreheader(const CFGContext &CFG, const Loop &L);

/// Ensures \p L has a preheader, creating one if necessary by redirecting
/// all non-latch predecessors of the header through a fresh block.
/// Invalidates the CFGContext if it creates a block (returns true then).
BasicBlock *getOrCreatePreheader(CFGContext &CFG, const Loop &L,
                                 bool &Changed);

} // namespace sldb

#endif // SLDB_ANALYSIS_LOOPINFO_H
