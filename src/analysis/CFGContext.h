//===- analysis/CFGContext.h - Dense CFG indexing ---------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Snapshot of a function's CFG with dense block indices, used by every
/// data-flow analysis.  Analyses are invalidated by CFG mutation; passes
/// rebuild the context after structural changes.
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_ANALYSIS_CFGCONTEXT_H
#define SLDB_ANALYSIS_CFGCONTEXT_H

#include "ir/IR.h"

#include <vector>

namespace sldb {

/// Dense, immutable view of a function's CFG.
class CFGContext {
public:
  explicit CFGContext(IRFunction &F);

  IRFunction &function() const { return F; }

  unsigned numBlocks() const { return static_cast<unsigned>(Order.size()); }

  /// Blocks in reverse post-order (entry first; unreachable blocks last).
  const std::vector<BasicBlock *> &blocks() const { return Order; }

  unsigned indexOf(const BasicBlock *B) const {
    assert(B->CtxIndex < Order.size() && Order[B->CtxIndex] == B &&
           "block not in CFG context");
    return B->CtxIndex;
  }

  BasicBlock *block(unsigned Idx) const { return Order[Idx]; }

  const std::vector<unsigned> &preds(unsigned Idx) const {
    return Preds[Idx];
  }
  const std::vector<unsigned> &succs(unsigned Idx) const {
    return Succs[Idx];
  }

  /// Indices of blocks whose terminator is Ret (function exits).
  const std::vector<unsigned> &exits() const { return Exits; }

private:
  IRFunction &F;
  std::vector<BasicBlock *> Order;
  std::vector<std::vector<unsigned>> Preds, Succs;
  std::vector<unsigned> Exits;
};

} // namespace sldb

#endif // SLDB_ANALYSIS_CFGCONTEXT_H
