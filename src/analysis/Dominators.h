//===- analysis/Dominators.h - Dominator/post-dominator sets ----*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator and post-dominator sets via iterative bit-vector iteration.
/// The paper's code-motion invariants are phrased with these relations:
/// hoisting copies an expression to blocks *post-dominated* by the original
/// block; sinking moves it to blocks *dominated* by it (paper §2).
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_ANALYSIS_DOMINATORS_H
#define SLDB_ANALYSIS_DOMINATORS_H

#include "analysis/CFGContext.h"
#include "support/BitVector.h"

#include <vector>

namespace sldb {

/// Dominator sets: Dom[b] = blocks that dominate b.
class Dominators {
public:
  explicit Dominators(const CFGContext &CFG);

  /// Returns true if block \p A dominates block \p B (indices).
  bool dominates(unsigned A, unsigned B) const { return Dom[B].test(A); }

  const BitVector &domSet(unsigned B) const { return Dom[B]; }

private:
  std::vector<BitVector> Dom;
};

/// Post-dominator sets: PDom[b] = blocks that post-dominate b.  A virtual
/// exit joins all Ret blocks; blocks that cannot reach any exit (infinite
/// loops) are post-dominated by everything (vacuous) — callers relying on
/// safety must also require reachability.
class PostDominators {
public:
  explicit PostDominators(const CFGContext &CFG);

  /// Returns true if block \p A post-dominates block \p B (indices).
  bool postDominates(unsigned A, unsigned B) const { return PDom[B].test(A); }

  const BitVector &postDomSet(unsigned B) const { return PDom[B]; }

private:
  std::vector<BitVector> PDom;
};

} // namespace sldb

#endif // SLDB_ANALYSIS_DOMINATORS_H
