//===- frontend/Token.h - MiniC tokens -------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds for the MiniC language, the C subset the reproduction uses
/// as its source language (the paper's substrate, cmcc, compiled ANSI C).
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_FRONTEND_TOKEN_H
#define SLDB_FRONTEND_TOKEN_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <string>

namespace sldb {

/// Lexical token kinds.
enum class TokKind : std::uint8_t {
  Eof,
  Identifier,
  IntLiteral,
  DoubleLiteral,

  // Keywords.
  KwInt,
  KwDouble,
  KwVoid,
  KwIf,
  KwElse,
  KwWhile,
  KwDo,
  KwFor,
  KwReturn,
  KwBreak,
  KwContinue,

  // Punctuation.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semicolon,
  Comma,
  Question,
  Colon,

  // Operators.
  Assign,        // =
  PlusAssign,    // +=
  MinusAssign,   // -=
  StarAssign,    // *=
  SlashAssign,   // /=
  PercentAssign, // %=
  PlusPlus,      // ++
  MinusMinus,    // --
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Amp,      // &
  Pipe,     // |
  Caret,    // ^
  Tilde,    // ~
  Bang,     // !
  AmpAmp,   // &&
  PipePipe, // ||
  Shl,      // <<
  Shr,      // >>
  EqEq,
  BangEq,
  Less,
  LessEq,
  Greater,
  GreaterEq,

  Unknown
};

/// Returns a human-readable spelling for diagnostics.
const char *tokKindName(TokKind Kind);

/// One lexed token.
struct Token {
  TokKind Kind = TokKind::Eof;
  SourceLoc Loc;
  std::string Text;     ///< Identifier spelling (identifiers only).
  std::int64_t IntVal = 0;
  double DoubleVal = 0.0;

  bool is(TokKind K) const { return Kind == K; }
};

} // namespace sldb

#endif // SLDB_FRONTEND_TOKEN_H
