//===- frontend/Parser.h - MiniC recursive-descent parser ------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for MiniC producing the AST of Ast.h.  Errors
/// are reported to the DiagnosticEngine; parsing stops at the first error
/// (the tools treat any error as fatal for the file).
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_FRONTEND_PARSER_H
#define SLDB_FRONTEND_PARSER_H

#include "frontend/Ast.h"
#include "frontend/Token.h"
#include "support/Diagnostics.h"

#include <memory>
#include <vector>

namespace sldb {

/// Parses a token stream into a TranslationUnit.
class Parser {
public:
  Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags)
      : Tokens(std::move(Tokens)), Diags(Diags) {}

  /// Parses the whole unit.  Returns null on error.
  std::unique_ptr<TranslationUnit> parse();

  /// Convenience: lex + parse a source buffer.
  static std::unique_ptr<TranslationUnit> parseSource(std::string_view Source,
                                                      DiagnosticEngine &Diags);

private:
  const Token &cur() const { return Tokens[Pos]; }
  const Token &peekAhead(unsigned N = 1) const {
    return Tokens[Pos + N < Tokens.size() ? Pos + N : Tokens.size() - 1];
  }
  Token consume() { return Tokens[Pos++]; }
  bool at(TokKind K) const { return cur().is(K); }
  bool accept(TokKind K);
  bool expect(TokKind K, const char *Context);
  void errorAtCur(const std::string &Message);

  bool atTypeStart() const;
  bool parseType(QualType &Ty);

  bool parseGlobal(TranslationUnit &TU);
  std::unique_ptr<FuncDecl> parseFunction(QualType RetTy, std::string Name,
                                          SourceLoc Loc);
  bool parseVarDecl(QualType BaseTy, VarDecl &Decl);

  StmtPtr parseStmt();
  StmtPtr parseCompound();
  StmtPtr parseIf();
  StmtPtr parseWhile();
  StmtPtr parseDo();
  StmtPtr parseFor();
  StmtPtr parseDeclStmt();

  ExprPtr parseExpr();
  ExprPtr parseAssignment();
  ExprPtr parseTernary();
  ExprPtr parseBinary(int MinPrec);
  ExprPtr parseUnary();
  ExprPtr parsePostfix();
  ExprPtr parsePrimary();

  /// Recursion-depth guard: adversarial input (thousands of nested
  /// parentheses or blocks) must yield a diagnostic through the
  /// DiagnosticEngine, not a native stack overflow.  parseStmt and
  /// parseUnary cover every recursive cycle of the grammar.
  static constexpr unsigned MaxRecursionDepth = 200;
  struct DepthScope {
    Parser &P;
    explicit DepthScope(Parser &P) : P(P) { ++P.Depth; }
    ~DepthScope() { --P.Depth; }
  };
  bool atDepthLimit();

  std::vector<Token> Tokens;
  DiagnosticEngine &Diags;
  std::size_t Pos = 0;
  unsigned Depth = 0;
  bool HadError = false;
};

} // namespace sldb

#endif // SLDB_FRONTEND_PARSER_H
