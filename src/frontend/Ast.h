//===- frontend/Ast.h - MiniC abstract syntax trees ------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST node classes for MiniC, using LLVM-style kind discriminators and
/// classof() so isa<>/cast<>/dyn_cast<> work without compiler RTTI.
/// Semantic analysis decorates nodes in place (types, resolved variable
/// ids, statement ids).
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_FRONTEND_AST_H
#define SLDB_FRONTEND_AST_H

#include "support/Casting.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace sldb {

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

/// Scalar type kinds of MiniC.
enum class TypeKind : std::uint8_t { Void, Int, Double, Ptr };

/// A MiniC type: a scalar kind, plus the pointee kind for pointers.
/// Arrays are a property of declarations (see VarDecl::ArraySize), and an
/// array-typed expression decays to Ptr.
struct QualType {
  TypeKind Kind = TypeKind::Void;
  TypeKind Pointee = TypeKind::Void; ///< Valid only when Kind == Ptr.

  QualType() = default;
  explicit QualType(TypeKind Kind) : Kind(Kind) {}
  QualType(TypeKind Kind, TypeKind Pointee) : Kind(Kind), Pointee(Pointee) {}

  static QualType intTy() { return QualType(TypeKind::Int); }
  static QualType doubleTy() { return QualType(TypeKind::Double); }
  static QualType voidTy() { return QualType(TypeKind::Void); }
  static QualType ptrTo(TypeKind Elem) {
    return QualType(TypeKind::Ptr, Elem);
  }

  bool isInt() const { return Kind == TypeKind::Int; }
  bool isDouble() const { return Kind == TypeKind::Double; }
  bool isVoid() const { return Kind == TypeKind::Void; }
  bool isPtr() const { return Kind == TypeKind::Ptr; }
  bool isArithmetic() const { return isInt() || isDouble(); }

  bool operator==(const QualType &RHS) const {
    if (Kind != RHS.Kind)
      return false;
    return Kind != TypeKind::Ptr || Pointee == RHS.Pointee;
  }
  bool operator!=(const QualType &RHS) const { return !(*this == RHS); }

  /// Renders like "int", "double*", ...
  std::string str() const;
};

/// Dense identity of a resolved variable (assigned by Sema; see VarTable).
using VarId = std::uint32_t;
inline constexpr VarId InvalidVar = ~VarId(0);

/// Dense identity of a function.
using FuncId = std::uint32_t;
inline constexpr FuncId InvalidFunc = ~FuncId(0);

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Base class of all MiniC expressions.
class Expr {
public:
  enum class Kind : std::uint8_t {
    IntLiteral,
    DoubleLiteral,
    VarRef,
    Unary,
    Binary,
    Assign,
    Index,
    Call,
    Ternary,
    Cast
  };

  Kind getKind() const { return K; }
  SourceLoc getLoc() const { return Loc; }

  /// Result type, filled in by Sema.
  QualType Ty;

  virtual ~Expr() = default;

protected:
  Expr(Kind K, SourceLoc Loc) : K(K), Loc(Loc) {}

private:
  Kind K;
  SourceLoc Loc;
};

using ExprPtr = std::unique_ptr<Expr>;

/// An integer literal.
class IntLiteralExpr : public Expr {
public:
  IntLiteralExpr(SourceLoc Loc, std::int64_t Value)
      : Expr(Kind::IntLiteral, Loc), Value(Value) {}

  std::int64_t Value;

  static bool classof(const Expr *E) {
    return E->getKind() == Kind::IntLiteral;
  }
};

/// A floating-point literal.
class DoubleLiteralExpr : public Expr {
public:
  DoubleLiteralExpr(SourceLoc Loc, double Value)
      : Expr(Kind::DoubleLiteral, Loc), Value(Value) {}

  double Value;

  static bool classof(const Expr *E) {
    return E->getKind() == Kind::DoubleLiteral;
  }
};

/// A reference to a named variable.  Sema resolves Var.
class VarRefExpr : public Expr {
public:
  VarRefExpr(SourceLoc Loc, std::string Name)
      : Expr(Kind::VarRef, Loc), Name(std::move(Name)) {}

  std::string Name;
  VarId Var = InvalidVar;
  bool IsArray = false; ///< Declared as an array (decays to pointer).

  static bool classof(const Expr *E) { return E->getKind() == Kind::VarRef; }
};

/// Unary operator kinds.
enum class UnaryOp : std::uint8_t {
  Neg,
  LogNot,
  BitNot,
  Deref,
  AddrOf,
  PreInc,
  PreDec,
  PostInc,
  PostDec
};

/// A unary expression.
class UnaryExpr : public Expr {
public:
  UnaryExpr(SourceLoc Loc, UnaryOp Op, ExprPtr Sub)
      : Expr(Kind::Unary, Loc), Op(Op), Sub(std::move(Sub)) {}

  UnaryOp Op;
  ExprPtr Sub;

  static bool classof(const Expr *E) { return E->getKind() == Kind::Unary; }
};

/// Binary operator kinds (no assignment; see AssignExpr).
enum class BinaryOp : std::uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  LogAnd,
  LogOr,
  EQ,
  NE,
  LT,
  LE,
  GT,
  GE
};

/// A binary expression.
class BinaryExpr : public Expr {
public:
  BinaryExpr(SourceLoc Loc, BinaryOp Op, ExprPtr LHS, ExprPtr RHS)
      : Expr(Kind::Binary, Loc), Op(Op), LHS(std::move(LHS)),
        RHS(std::move(RHS)) {}

  BinaryOp Op;
  ExprPtr LHS, RHS;

  static bool classof(const Expr *E) { return E->getKind() == Kind::Binary; }
};

/// Assignment operator kinds; compound forms expand during IR generation.
enum class AssignOp : std::uint8_t { Plain, Add, Sub, Mul, Div, Rem };

/// An assignment `lhs op= rhs`; the LHS must be an lvalue (variable,
/// dereference, or index expression).
class AssignExpr : public Expr {
public:
  AssignExpr(SourceLoc Loc, AssignOp Op, ExprPtr Target, ExprPtr Value)
      : Expr(Kind::Assign, Loc), Op(Op), Target(std::move(Target)),
        Value(std::move(Value)) {}

  AssignOp Op;
  ExprPtr Target, Value;

  static bool classof(const Expr *E) { return E->getKind() == Kind::Assign; }
};

/// An array/pointer index `base[idx]`.
class IndexExpr : public Expr {
public:
  IndexExpr(SourceLoc Loc, ExprPtr Base, ExprPtr Index)
      : Expr(Kind::Index, Loc), Base(std::move(Base)),
        Index(std::move(Index)) {}

  ExprPtr Base, Index;

  static bool classof(const Expr *E) { return E->getKind() == Kind::Index; }
};

/// Builtin functions recognized by Sema.
enum class Builtin : std::uint8_t { None, PrintInt, PrintDouble };

/// A function call `f(args...)`.
class CallExpr : public Expr {
public:
  CallExpr(SourceLoc Loc, std::string Callee, std::vector<ExprPtr> Args)
      : Expr(Kind::Call, Loc), Callee(std::move(Callee)),
        Args(std::move(Args)) {}

  std::string Callee;
  std::vector<ExprPtr> Args;
  FuncId Func = InvalidFunc;        ///< Resolved by Sema (non-builtins).
  Builtin BuiltinKind = Builtin::None;

  static bool classof(const Expr *E) { return E->getKind() == Kind::Call; }
};

/// A conditional expression `cond ? then : else`.
class TernaryExpr : public Expr {
public:
  TernaryExpr(SourceLoc Loc, ExprPtr Cond, ExprPtr Then, ExprPtr Else)
      : Expr(Kind::Ternary, Loc), Cond(std::move(Cond)),
        Then(std::move(Then)), Else(std::move(Else)) {}

  ExprPtr Cond, Then, Else;

  static bool classof(const Expr *E) { return E->getKind() == Kind::Ternary; }
};

/// An implicit numeric conversion inserted by Sema (int <-> double).
class CastExpr : public Expr {
public:
  CastExpr(SourceLoc Loc, QualType To, ExprPtr Sub)
      : Expr(Kind::Cast, Loc), Sub(std::move(Sub)) {
    Ty = To;
  }

  ExprPtr Sub;

  static bool classof(const Expr *E) { return E->getKind() == Kind::Cast; }
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

/// Identity of a source statement (see support/SourceLoc.h); assigned by
/// Sema in source order, per function.  Every statement is a potential
/// breakpoint.

/// Base class of all MiniC statements.
class Stmt {
public:
  enum class Kind : std::uint8_t {
    Decl,
    Expr,
    Compound,
    If,
    While,
    Do,
    For,
    Return,
    Break,
    Continue,
    Empty
  };

  Kind getKind() const { return K; }
  SourceLoc getLoc() const { return Loc; }

  /// Breakpoint identity, assigned by Sema (InvalidStmt for compounds).
  StmtId Id = InvalidStmt;

  virtual ~Stmt() = default;

protected:
  Stmt(Kind K, SourceLoc Loc) : K(K), Loc(Loc) {}

private:
  Kind K;
  SourceLoc Loc;
};

using StmtPtr = std::unique_ptr<Stmt>;

/// A local or global variable declaration.
class VarDecl {
public:
  SourceLoc Loc;
  std::string Name;
  QualType Ty;
  std::uint32_t ArraySize = 0; ///< 0 = scalar; >0 = array of Ty elements.
  ExprPtr Init;                ///< Optional initializer (scalars only).
  VarId Var = InvalidVar;      ///< Resolved by Sema.
};

/// A declaration statement (one variable per statement, as in cmcc's IR).
class DeclStmt : public Stmt {
public:
  DeclStmt(SourceLoc Loc, VarDecl Decl)
      : Stmt(Kind::Decl, Loc), Decl(std::move(Decl)) {}

  VarDecl Decl;

  static bool classof(const Stmt *S) { return S->getKind() == Kind::Decl; }
};

/// An expression statement.
class ExprStmt : public Stmt {
public:
  ExprStmt(SourceLoc Loc, ExprPtr E)
      : Stmt(Kind::Expr, Loc), E(std::move(E)) {}

  ExprPtr E;

  static bool classof(const Stmt *S) { return S->getKind() == Kind::Expr; }
};

/// A `{ ... }` block.
class CompoundStmt : public Stmt {
public:
  CompoundStmt(SourceLoc Loc, std::vector<StmtPtr> Body)
      : Stmt(Kind::Compound, Loc), Body(std::move(Body)) {}

  std::vector<StmtPtr> Body;

  static bool classof(const Stmt *S) {
    return S->getKind() == Kind::Compound;
  }
};

/// An if/else statement.
class IfStmt : public Stmt {
public:
  IfStmt(SourceLoc Loc, ExprPtr Cond, StmtPtr Then, StmtPtr Else)
      : Stmt(Kind::If, Loc), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}

  ExprPtr Cond;
  StmtPtr Then;
  StmtPtr Else; ///< May be null.

  static bool classof(const Stmt *S) { return S->getKind() == Kind::If; }
};

/// A while loop.
class WhileStmt : public Stmt {
public:
  WhileStmt(SourceLoc Loc, ExprPtr Cond, StmtPtr Body)
      : Stmt(Kind::While, Loc), Cond(std::move(Cond)), Body(std::move(Body)) {}

  ExprPtr Cond;
  StmtPtr Body;

  static bool classof(const Stmt *S) { return S->getKind() == Kind::While; }
};

/// A do/while loop.
class DoStmt : public Stmt {
public:
  DoStmt(SourceLoc Loc, StmtPtr Body, ExprPtr Cond)
      : Stmt(Kind::Do, Loc), Body(std::move(Body)), Cond(std::move(Cond)) {}

  StmtPtr Body;
  ExprPtr Cond;

  static bool classof(const Stmt *S) { return S->getKind() == Kind::Do; }
};

/// A for loop.  Init is a DeclStmt, ExprStmt or null; Cond/Inc may be null.
class ForStmt : public Stmt {
public:
  ForStmt(SourceLoc Loc, StmtPtr Init, ExprPtr Cond, ExprPtr Inc,
          StmtPtr Body)
      : Stmt(Kind::For, Loc), Init(std::move(Init)), Cond(std::move(Cond)),
        Inc(std::move(Inc)), Body(std::move(Body)) {}

  StmtPtr Init;
  ExprPtr Cond;
  ExprPtr Inc;
  StmtPtr Body;

  /// Breakpoint id for the increment part (assigned by Sema); the paper's
  /// statement granularity treats `i = i + 1` in a for header as its own
  /// source assignment.
  StmtId IncId = InvalidStmt;

  static bool classof(const Stmt *S) { return S->getKind() == Kind::For; }
};

/// A return statement.
class ReturnStmt : public Stmt {
public:
  ReturnStmt(SourceLoc Loc, ExprPtr Value)
      : Stmt(Kind::Return, Loc), Value(std::move(Value)) {}

  ExprPtr Value; ///< May be null for `return;`.

  static bool classof(const Stmt *S) { return S->getKind() == Kind::Return; }
};

/// A break statement.
class BreakStmt : public Stmt {
public:
  explicit BreakStmt(SourceLoc Loc) : Stmt(Kind::Break, Loc) {}
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Break; }
};

/// A continue statement.
class ContinueStmt : public Stmt {
public:
  explicit ContinueStmt(SourceLoc Loc) : Stmt(Kind::Continue, Loc) {}
  static bool classof(const Stmt *S) {
    return S->getKind() == Kind::Continue;
  }
};

/// A lone `;`.
class EmptyStmt : public Stmt {
public:
  explicit EmptyStmt(SourceLoc Loc) : Stmt(Kind::Empty, Loc) {}
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Empty; }
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

/// A function definition.
class FuncDecl {
public:
  SourceLoc Loc;
  std::string Name;
  QualType RetTy;
  std::vector<VarDecl> Params;
  std::unique_ptr<CompoundStmt> Body;
  FuncId Func = InvalidFunc; ///< Resolved by Sema.
};

/// A whole parsed translation unit.
class TranslationUnit {
public:
  std::vector<VarDecl> Globals;
  std::vector<std::unique_ptr<FuncDecl>> Functions;
};

} // namespace sldb

#endif // SLDB_FRONTEND_AST_H
