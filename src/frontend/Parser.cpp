//===- frontend/Parser.cpp ------------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

#include "frontend/Lexer.h"
#include "support/Casting.h"

using namespace sldb;

std::unique_ptr<TranslationUnit>
Parser::parseSource(std::string_view Source, DiagnosticEngine &Diags) {
  Lexer Lex(Source, Diags);
  std::vector<Token> Tokens = Lex.lexAll();
  if (Diags.hasErrors())
    return nullptr;
  Parser P(std::move(Tokens), Diags);
  return P.parse();
}

bool Parser::accept(TokKind K) {
  if (!at(K))
    return false;
  consume();
  return true;
}

bool Parser::expect(TokKind K, const char *Context) {
  if (accept(K))
    return true;
  errorAtCur(std::string("expected ") + tokKindName(K) + " " + Context +
             ", found " + tokKindName(cur().Kind));
  return false;
}

void Parser::errorAtCur(const std::string &Message) {
  if (!HadError)
    Diags.error(cur().Loc, Message);
  HadError = true;
}

bool Parser::atDepthLimit() {
  if (Depth <= MaxRecursionDepth)
    return false;
  errorAtCur("nesting too deep (parser recursion limit " +
             std::to_string(MaxRecursionDepth) + " exceeded)");
  return true;
}

bool Parser::atTypeStart() const {
  return at(TokKind::KwInt) || at(TokKind::KwDouble) || at(TokKind::KwVoid);
}

bool Parser::parseType(QualType &Ty) {
  TypeKind Base;
  if (accept(TokKind::KwInt)) {
    Base = TypeKind::Int;
  } else if (accept(TokKind::KwDouble)) {
    Base = TypeKind::Double;
  } else if (accept(TokKind::KwVoid)) {
    Base = TypeKind::Void;
  } else {
    errorAtCur("expected type name");
    return false;
  }
  if (accept(TokKind::Star)) {
    if (Base == TypeKind::Void) {
      errorAtCur("pointer to void is not supported");
      return false;
    }
    if (at(TokKind::Star)) {
      errorAtCur("multi-level pointers are not supported");
      return false;
    }
    Ty = QualType::ptrTo(Base);
    return true;
  }
  Ty = QualType(Base);
  return true;
}

std::unique_ptr<TranslationUnit> Parser::parse() {
  auto TU = std::make_unique<TranslationUnit>();
  while (!at(TokKind::Eof) && !HadError) {
    if (!parseGlobal(*TU))
      return nullptr;
  }
  if (HadError)
    return nullptr;
  return TU;
}

bool Parser::parseGlobal(TranslationUnit &TU) {
  SourceLoc Loc = cur().Loc;
  QualType Ty;
  if (!parseType(Ty))
    return false;
  if (!at(TokKind::Identifier)) {
    errorAtCur("expected identifier after type");
    return false;
  }
  std::string Name = consume().Text;

  if (at(TokKind::LParen)) {
    auto FD = parseFunction(Ty, std::move(Name), Loc);
    if (!FD)
      return false;
    TU.Functions.push_back(std::move(FD));
    return true;
  }

  // Global variable.
  VarDecl Decl;
  Decl.Loc = Loc;
  Decl.Name = std::move(Name);
  Decl.Ty = Ty;
  if (accept(TokKind::LBracket)) {
    if (!at(TokKind::IntLiteral)) {
      errorAtCur("expected constant array size");
      return false;
    }
    Decl.ArraySize = static_cast<std::uint32_t>(consume().IntVal);
    if (!expect(TokKind::RBracket, "after array size"))
      return false;
  } else if (accept(TokKind::Assign)) {
    Decl.Init = parsePrimary();
    if (!Decl.Init)
      return false;
  }
  if (!expect(TokKind::Semicolon, "after global declaration"))
    return false;
  TU.Globals.push_back(std::move(Decl));
  return true;
}

std::unique_ptr<FuncDecl> Parser::parseFunction(QualType RetTy,
                                                std::string Name,
                                                SourceLoc Loc) {
  auto FD = std::make_unique<FuncDecl>();
  FD->Loc = Loc;
  FD->Name = std::move(Name);
  FD->RetTy = RetTy;
  expect(TokKind::LParen, "after function name");
  if (!accept(TokKind::RParen)) {
    do {
      SourceLoc PLoc = cur().Loc;
      QualType PTy;
      if (!parseType(PTy))
        return nullptr;
      if (PTy.isVoid() && FD->Params.empty() && at(TokKind::RParen)) {
        // `f(void)` style empty parameter list.
        break;
      }
      if (!at(TokKind::Identifier)) {
        errorAtCur("expected parameter name");
        return nullptr;
      }
      VarDecl P;
      P.Loc = PLoc;
      P.Ty = PTy;
      P.Name = consume().Text;
      FD->Params.push_back(std::move(P));
    } while (accept(TokKind::Comma));
    if (!expect(TokKind::RParen, "after parameter list"))
      return nullptr;
  }
  if (!at(TokKind::LBrace)) {
    errorAtCur("expected function body");
    return nullptr;
  }
  StmtPtr Body = parseCompound();
  if (!Body)
    return nullptr;
  FD->Body.reset(cast<CompoundStmt>(Body.release()));
  return FD;
}

bool Parser::parseVarDecl(QualType BaseTy, VarDecl &Decl) {
  Decl.Loc = cur().Loc;
  Decl.Ty = BaseTy;
  if (!at(TokKind::Identifier)) {
    errorAtCur("expected variable name");
    return false;
  }
  Decl.Name = consume().Text;
  if (accept(TokKind::LBracket)) {
    if (!at(TokKind::IntLiteral)) {
      errorAtCur("expected constant array size");
      return false;
    }
    Decl.ArraySize = static_cast<std::uint32_t>(consume().IntVal);
    if (!expect(TokKind::RBracket, "after array size"))
      return false;
    return true;
  }
  if (accept(TokKind::Assign)) {
    Decl.Init = parseAssignment();
    return Decl.Init != nullptr;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

StmtPtr Parser::parseStmt() {
  DepthScope Scope(*this);
  if (atDepthLimit())
    return nullptr;
  switch (cur().Kind) {
  case TokKind::LBrace:
    return parseCompound();
  case TokKind::KwIf:
    return parseIf();
  case TokKind::KwWhile:
    return parseWhile();
  case TokKind::KwDo:
    return parseDo();
  case TokKind::KwFor:
    return parseFor();
  case TokKind::KwReturn: {
    SourceLoc Loc = consume().Loc;
    ExprPtr Value;
    if (!at(TokKind::Semicolon)) {
      Value = parseExpr();
      if (!Value)
        return nullptr;
    }
    if (!expect(TokKind::Semicolon, "after return"))
      return nullptr;
    return std::make_unique<ReturnStmt>(Loc, std::move(Value));
  }
  case TokKind::KwBreak: {
    SourceLoc Loc = consume().Loc;
    if (!expect(TokKind::Semicolon, "after break"))
      return nullptr;
    return std::make_unique<BreakStmt>(Loc);
  }
  case TokKind::KwContinue: {
    SourceLoc Loc = consume().Loc;
    if (!expect(TokKind::Semicolon, "after continue"))
      return nullptr;
    return std::make_unique<ContinueStmt>(Loc);
  }
  case TokKind::Semicolon: {
    SourceLoc Loc = consume().Loc;
    return std::make_unique<EmptyStmt>(Loc);
  }
  default:
    if (atTypeStart())
      return parseDeclStmt();
    SourceLoc Loc = cur().Loc;
    ExprPtr E = parseExpr();
    if (!E)
      return nullptr;
    if (!expect(TokKind::Semicolon, "after expression"))
      return nullptr;
    return std::make_unique<ExprStmt>(Loc, std::move(E));
  }
}

StmtPtr Parser::parseCompound() {
  SourceLoc Loc = cur().Loc;
  expect(TokKind::LBrace, "to open block");
  std::vector<StmtPtr> Body;
  while (!at(TokKind::RBrace) && !at(TokKind::Eof) && !HadError) {
    StmtPtr S = parseStmt();
    if (!S)
      return nullptr;
    Body.push_back(std::move(S));
  }
  if (!expect(TokKind::RBrace, "to close block"))
    return nullptr;
  return std::make_unique<CompoundStmt>(Loc, std::move(Body));
}

StmtPtr Parser::parseIf() {
  SourceLoc Loc = consume().Loc; // 'if'
  if (!expect(TokKind::LParen, "after 'if'"))
    return nullptr;
  ExprPtr Cond = parseExpr();
  if (!Cond || !expect(TokKind::RParen, "after if condition"))
    return nullptr;
  StmtPtr Then = parseStmt();
  if (!Then)
    return nullptr;
  StmtPtr Else;
  if (accept(TokKind::KwElse)) {
    Else = parseStmt();
    if (!Else)
      return nullptr;
  }
  return std::make_unique<IfStmt>(Loc, std::move(Cond), std::move(Then),
                                  std::move(Else));
}

StmtPtr Parser::parseWhile() {
  SourceLoc Loc = consume().Loc; // 'while'
  if (!expect(TokKind::LParen, "after 'while'"))
    return nullptr;
  ExprPtr Cond = parseExpr();
  if (!Cond || !expect(TokKind::RParen, "after while condition"))
    return nullptr;
  StmtPtr Body = parseStmt();
  if (!Body)
    return nullptr;
  return std::make_unique<WhileStmt>(Loc, std::move(Cond), std::move(Body));
}

StmtPtr Parser::parseDo() {
  SourceLoc Loc = consume().Loc; // 'do'
  StmtPtr Body = parseStmt();
  if (!Body)
    return nullptr;
  if (!expect(TokKind::KwWhile, "after do body") ||
      !expect(TokKind::LParen, "after 'while'"))
    return nullptr;
  ExprPtr Cond = parseExpr();
  if (!Cond || !expect(TokKind::RParen, "after do-while condition") ||
      !expect(TokKind::Semicolon, "after do-while"))
    return nullptr;
  return std::make_unique<DoStmt>(Loc, std::move(Body), std::move(Cond));
}

StmtPtr Parser::parseFor() {
  SourceLoc Loc = consume().Loc; // 'for'
  if (!expect(TokKind::LParen, "after 'for'"))
    return nullptr;

  StmtPtr Init;
  if (accept(TokKind::Semicolon)) {
    // No init.
  } else if (atTypeStart()) {
    Init = parseDeclStmt();
    if (!Init)
      return nullptr;
  } else {
    SourceLoc ILoc = cur().Loc;
    ExprPtr E = parseExpr();
    if (!E || !expect(TokKind::Semicolon, "after for-init"))
      return nullptr;
    Init = std::make_unique<ExprStmt>(ILoc, std::move(E));
  }

  ExprPtr Cond;
  if (!at(TokKind::Semicolon)) {
    Cond = parseExpr();
    if (!Cond)
      return nullptr;
  }
  if (!expect(TokKind::Semicolon, "after for-condition"))
    return nullptr;

  ExprPtr Inc;
  if (!at(TokKind::RParen)) {
    Inc = parseExpr();
    if (!Inc)
      return nullptr;
  }
  if (!expect(TokKind::RParen, "after for-increment"))
    return nullptr;

  StmtPtr Body = parseStmt();
  if (!Body)
    return nullptr;
  return std::make_unique<ForStmt>(Loc, std::move(Init), std::move(Cond),
                                   std::move(Inc), std::move(Body));
}

StmtPtr Parser::parseDeclStmt() {
  SourceLoc Loc = cur().Loc;
  QualType Ty;
  if (!parseType(Ty))
    return nullptr;
  if (Ty.isVoid()) {
    errorAtCur("variables cannot have void type");
    return nullptr;
  }
  VarDecl Decl;
  if (!parseVarDecl(Ty, Decl))
    return nullptr;
  if (!expect(TokKind::Semicolon, "after declaration"))
    return nullptr;
  return std::make_unique<DeclStmt>(Loc, std::move(Decl));
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

ExprPtr Parser::parseExpr() { return parseAssignment(); }

static bool isAssignTok(TokKind K) {
  switch (K) {
  case TokKind::Assign:
  case TokKind::PlusAssign:
  case TokKind::MinusAssign:
  case TokKind::StarAssign:
  case TokKind::SlashAssign:
  case TokKind::PercentAssign:
    return true;
  default:
    return false;
  }
}

static AssignOp assignOpFor(TokKind K) {
  switch (K) {
  case TokKind::Assign:
    return AssignOp::Plain;
  case TokKind::PlusAssign:
    return AssignOp::Add;
  case TokKind::MinusAssign:
    return AssignOp::Sub;
  case TokKind::StarAssign:
    return AssignOp::Mul;
  case TokKind::SlashAssign:
    return AssignOp::Div;
  case TokKind::PercentAssign:
    return AssignOp::Rem;
  default:
    sldb_unreachable("not an assignment token");
  }
}

ExprPtr Parser::parseAssignment() {
  ExprPtr LHS = parseTernary();
  if (!LHS)
    return nullptr;
  if (!isAssignTok(cur().Kind))
    return LHS;
  Token Op = consume();
  ExprPtr RHS = parseAssignment();
  if (!RHS)
    return nullptr;
  return std::make_unique<AssignExpr>(Op.Loc, assignOpFor(Op.Kind),
                                      std::move(LHS), std::move(RHS));
}

ExprPtr Parser::parseTernary() {
  ExprPtr Cond = parseBinary(0);
  if (!Cond)
    return nullptr;
  if (!at(TokKind::Question))
    return Cond;
  SourceLoc Loc = consume().Loc;
  ExprPtr Then = parseExpr();
  if (!Then || !expect(TokKind::Colon, "in conditional expression"))
    return nullptr;
  ExprPtr Else = parseTernary();
  if (!Else)
    return nullptr;
  return std::make_unique<TernaryExpr>(Loc, std::move(Cond), std::move(Then),
                                       std::move(Else));
}

namespace {
struct BinOpInfo {
  TokKind Tok;
  BinaryOp Op;
  int Prec;
};
} // namespace

static const BinOpInfo *binOpInfo(TokKind K) {
  static const BinOpInfo Table[] = {
      {TokKind::PipePipe, BinaryOp::LogOr, 1},
      {TokKind::AmpAmp, BinaryOp::LogAnd, 2},
      {TokKind::Pipe, BinaryOp::Or, 3},
      {TokKind::Caret, BinaryOp::Xor, 4},
      {TokKind::Amp, BinaryOp::And, 5},
      {TokKind::EqEq, BinaryOp::EQ, 6},
      {TokKind::BangEq, BinaryOp::NE, 6},
      {TokKind::Less, BinaryOp::LT, 7},
      {TokKind::LessEq, BinaryOp::LE, 7},
      {TokKind::Greater, BinaryOp::GT, 7},
      {TokKind::GreaterEq, BinaryOp::GE, 7},
      {TokKind::Shl, BinaryOp::Shl, 8},
      {TokKind::Shr, BinaryOp::Shr, 8},
      {TokKind::Plus, BinaryOp::Add, 9},
      {TokKind::Minus, BinaryOp::Sub, 9},
      {TokKind::Star, BinaryOp::Mul, 10},
      {TokKind::Slash, BinaryOp::Div, 10},
      {TokKind::Percent, BinaryOp::Rem, 10}};
  for (const BinOpInfo &Info : Table)
    if (Info.Tok == K)
      return &Info;
  return nullptr;
}

ExprPtr Parser::parseBinary(int MinPrec) {
  ExprPtr LHS = parseUnary();
  if (!LHS)
    return nullptr;
  for (;;) {
    const BinOpInfo *Info = binOpInfo(cur().Kind);
    if (!Info || Info->Prec < MinPrec)
      return LHS;
    Token Op = consume();
    ExprPtr RHS = parseBinary(Info->Prec + 1);
    if (!RHS)
      return nullptr;
    LHS = std::make_unique<BinaryExpr>(Op.Loc, Info->Op, std::move(LHS),
                                       std::move(RHS));
  }
}

ExprPtr Parser::parseUnary() {
  DepthScope Scope(*this);
  if (atDepthLimit())
    return nullptr;
  SourceLoc Loc = cur().Loc;
  UnaryOp Op;
  switch (cur().Kind) {
  case TokKind::Minus:
    Op = UnaryOp::Neg;
    break;
  case TokKind::Bang:
    Op = UnaryOp::LogNot;
    break;
  case TokKind::Tilde:
    Op = UnaryOp::BitNot;
    break;
  case TokKind::Star:
    Op = UnaryOp::Deref;
    break;
  case TokKind::Amp:
    Op = UnaryOp::AddrOf;
    break;
  case TokKind::PlusPlus:
    Op = UnaryOp::PreInc;
    break;
  case TokKind::MinusMinus:
    Op = UnaryOp::PreDec;
    break;
  default:
    return parsePostfix();
  }
  consume();
  ExprPtr Sub = parseUnary();
  if (!Sub)
    return nullptr;
  return std::make_unique<UnaryExpr>(Loc, Op, std::move(Sub));
}

ExprPtr Parser::parsePostfix() {
  ExprPtr E = parsePrimary();
  if (!E)
    return nullptr;
  for (;;) {
    if (at(TokKind::LBracket)) {
      SourceLoc Loc = consume().Loc;
      ExprPtr Index = parseExpr();
      if (!Index || !expect(TokKind::RBracket, "after index"))
        return nullptr;
      E = std::make_unique<IndexExpr>(Loc, std::move(E), std::move(Index));
      continue;
    }
    if (at(TokKind::PlusPlus) || at(TokKind::MinusMinus)) {
      Token Op = consume();
      UnaryOp K = Op.is(TokKind::PlusPlus) ? UnaryOp::PostInc
                                           : UnaryOp::PostDec;
      E = std::make_unique<UnaryExpr>(Op.Loc, K, std::move(E));
      continue;
    }
    return E;
  }
}

ExprPtr Parser::parsePrimary() {
  SourceLoc Loc = cur().Loc;
  switch (cur().Kind) {
  case TokKind::IntLiteral: {
    Token T = consume();
    return std::make_unique<IntLiteralExpr>(Loc, T.IntVal);
  }
  case TokKind::DoubleLiteral: {
    Token T = consume();
    return std::make_unique<DoubleLiteralExpr>(Loc, T.DoubleVal);
  }
  case TokKind::Identifier: {
    Token T = consume();
    if (!at(TokKind::LParen))
      return std::make_unique<VarRefExpr>(Loc, std::move(T.Text));
    consume(); // '('
    std::vector<ExprPtr> Args;
    if (!accept(TokKind::RParen)) {
      do {
        ExprPtr Arg = parseAssignment();
        if (!Arg)
          return nullptr;
        Args.push_back(std::move(Arg));
      } while (accept(TokKind::Comma));
      if (!expect(TokKind::RParen, "after call arguments"))
        return nullptr;
    }
    return std::make_unique<CallExpr>(Loc, std::move(T.Text),
                                      std::move(Args));
  }
  case TokKind::LParen: {
    consume();
    ExprPtr E = parseExpr();
    if (!E || !expect(TokKind::RParen, "to close parenthesized expression"))
      return nullptr;
    return E;
  }
  default:
    errorAtCur(std::string("expected expression, found ") +
               tokKindName(cur().Kind));
    return nullptr;
  }
}
