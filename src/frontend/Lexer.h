//===- frontend/Lexer.h - MiniC lexer --------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for MiniC.  Supports `//` and `/* */` comments,
/// decimal integer and floating literals, and the operator set of the C
/// subset described in DESIGN.md.
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_FRONTEND_LEXER_H
#define SLDB_FRONTEND_LEXER_H

#include "frontend/Token.h"
#include "support/Diagnostics.h"

#include <string_view>
#include <vector>

namespace sldb {

/// Tokenizes a MiniC source buffer.
class Lexer {
public:
  Lexer(std::string_view Source, DiagnosticEngine &Diags)
      : Source(Source), Diags(Diags) {}

  /// Lexes the next token.
  Token next();

  /// Lexes the whole buffer (ending with an Eof token).
  std::vector<Token> lexAll();

private:
  char peek(unsigned Ahead = 0) const {
    return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
  }
  char advance();
  bool match(char Expected);
  void skipWhitespaceAndComments();
  SourceLoc loc() const { return SourceLoc(Line, Col); }

  Token lexNumber(SourceLoc Start);
  Token lexIdentifier(SourceLoc Start);
  Token makeToken(TokKind Kind, SourceLoc Loc) const;

  std::string_view Source;
  DiagnosticEngine &Diags;
  std::size_t Pos = 0;
  std::uint32_t Line = 1;
  std::uint32_t Col = 1;
};

} // namespace sldb

#endif // SLDB_FRONTEND_LEXER_H
