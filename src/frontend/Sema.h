//===- frontend/Sema.h - MiniC semantic analysis ---------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic analysis for MiniC: name resolution, type checking with
/// implicit int<->double conversions, statement-id assignment, and scope
/// snapshots per statement (the debugger's "variables in scope at each
/// breakpoint", paper Table 2).
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_FRONTEND_SEMA_H
#define SLDB_FRONTEND_SEMA_H

#include "frontend/Ast.h"
#include "frontend/Symbols.h"
#include "support/Diagnostics.h"

#include <memory>
#include <unordered_map>
#include <vector>

namespace sldb {

/// Runs semantic analysis over a parsed TranslationUnit, decorating the
/// AST in place and producing the ProgramInfo symbol tables.
class Sema {
public:
  Sema(TranslationUnit &TU, DiagnosticEngine &Diags)
      : TU(TU), Diags(Diags) {}

  /// Analyzes the unit.  Returns the symbol tables, or null on error.
  std::unique_ptr<ProgramInfo> run();

private:
  // Scope management.
  void pushScope();
  void popScope();
  VarId declareVar(VarDecl &Decl, StorageKind Storage);
  VarId lookupVar(const std::string &Name) const;

  // Statements.
  void checkFunction(FuncDecl &FD);
  void checkStmt(Stmt *S);
  StmtId newStmt(SourceLoc Loc);

  // Expressions.  Each returns the expression type (and may wrap children
  // in CastExpr); Void on error.
  QualType checkExpr(ExprPtr &E);
  QualType checkAssign(AssignExpr *E);
  QualType checkUnary(UnaryExpr *E, ExprPtr &Owner);
  QualType checkBinary(BinaryExpr *E);
  QualType checkCall(CallExpr *E);
  QualType checkIndex(IndexExpr *E);

  /// Inserts a cast so \p E has type \p To; errors if impossible.
  void coerce(ExprPtr &E, QualType To, const char *Context);
  bool isLValue(const Expr *E) const;

  void error(SourceLoc Loc, std::string Msg) {
    Diags.error(Loc, std::move(Msg));
  }

  TranslationUnit &TU;
  DiagnosticEngine &Diags;
  std::unique_ptr<ProgramInfo> Info;

  /// Innermost-last stack of name->VarId scopes.
  std::vector<std::unordered_map<std::string, VarId>> Scopes;
  FuncId CurFunc = InvalidFunc;
  QualType CurRetTy;
  unsigned LoopDepth = 0;
};

/// Convenience driver: parse + analyze \p Source.  On success returns the
/// decorated unit and its symbol tables.
struct FrontendResult {
  std::unique_ptr<TranslationUnit> TU;
  std::unique_ptr<ProgramInfo> Info;
};
FrontendResult runFrontend(std::string_view Source, DiagnosticEngine &Diags);

} // namespace sldb

#endif // SLDB_FRONTEND_SEMA_H
