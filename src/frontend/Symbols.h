//===- frontend/Symbols.h - Program symbol tables ---------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Symbol tables produced by semantic analysis and consumed by IR
/// generation, the optimizer's bookkeeping, and the debugger: variables,
/// functions, and the per-function statement (breakpoint) tables with
/// scope snapshots.  This is the compiler side of the paper's "symbol
/// table information for full symbolic debugging".
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_FRONTEND_SYMBOLS_H
#define SLDB_FRONTEND_SYMBOLS_H

#include "frontend/Ast.h"
#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace sldb {

/// Storage class of a variable.
enum class StorageKind : std::uint8_t { Global, Local, Param };

/// Everything the compiler and debugger know about one variable.
struct VarInfo {
  std::string Name;
  QualType Ty;
  std::uint32_t ArraySize = 0;     ///< 0 = scalar.
  StorageKind Storage = StorageKind::Local;
  FuncId Owner = InvalidFunc;      ///< Owning function (locals/params).
  bool AddressTaken = false;       ///< `&v` appears; not register-promotable.
  SourceLoc Loc;

  bool isScalar() const { return ArraySize == 0; }
  /// Register promotion candidates: scalar, not address-taken, not global.
  bool isPromotable() const {
    return isScalar() && !AddressTaken && Storage != StorageKind::Global;
  }
};

/// Per-statement (breakpoint) debug information.
struct StmtInfo {
  SourceLoc Loc;
  std::vector<VarId> ScopeVars; ///< Local variables visible here.
};

/// Everything known about one function.
struct FuncInfo {
  std::string Name;
  QualType RetTy;
  std::vector<VarId> Params;
  std::vector<VarId> Locals;     ///< All locals incl. params, decl order.
  std::vector<StmtInfo> Stmts;   ///< Indexed by StmtId (dense, per func).
  SourceLoc Loc;
};

/// Module-wide symbol tables.
class ProgramInfo {
public:
  std::vector<VarInfo> Vars;
  std::vector<FuncInfo> Funcs;
  std::vector<VarId> Globals;

  VarInfo &var(VarId Id) { return Vars[Id]; }
  const VarInfo &var(VarId Id) const { return Vars[Id]; }
  FuncInfo &func(FuncId Id) { return Funcs[Id]; }
  const FuncInfo &func(FuncId Id) const { return Funcs[Id]; }

  VarId addVar(VarInfo Info) {
    Vars.push_back(std::move(Info));
    return static_cast<VarId>(Vars.size() - 1);
  }

  /// Finds a function by name; returns InvalidFunc if absent.
  FuncId findFunc(const std::string &Name) const {
    for (FuncId I = 0; I < Funcs.size(); ++I)
      if (Funcs[I].Name == Name)
        return I;
    return InvalidFunc;
  }
};

} // namespace sldb

#endif // SLDB_FRONTEND_SYMBOLS_H
