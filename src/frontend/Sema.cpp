//===- frontend/Sema.cpp --------------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/Sema.h"

#include "frontend/Parser.h"
#include "support/Casting.h"

#include <algorithm>

using namespace sldb;

std::string QualType::str() const {
  switch (Kind) {
  case TypeKind::Void:
    return "void";
  case TypeKind::Int:
    return "int";
  case TypeKind::Double:
    return "double";
  case TypeKind::Ptr:
    return (Pointee == TypeKind::Int ? std::string("int*")
                                     : std::string("double*"));
  }
  sldb_unreachable("bad type kind");
}

FrontendResult sldb::runFrontend(std::string_view Source,
                                 DiagnosticEngine &Diags) {
  FrontendResult Result;
  Result.TU = Parser::parseSource(Source, Diags);
  if (!Result.TU)
    return Result;
  Sema S(*Result.TU, Diags);
  Result.Info = S.run();
  if (!Result.Info)
    Result.TU.reset();
  return Result;
}

//===----------------------------------------------------------------------===//
// Scopes
//===----------------------------------------------------------------------===//

void Sema::pushScope() { Scopes.emplace_back(); }

void Sema::popScope() { Scopes.pop_back(); }

VarId Sema::declareVar(VarDecl &Decl, StorageKind Storage) {
  auto &Scope = Scopes.back();
  if (Scope.count(Decl.Name)) {
    error(Decl.Loc, "redefinition of '" + Decl.Name + "'");
    return InvalidVar;
  }
  VarInfo Info;
  Info.Name = Decl.Name;
  Info.Ty = Decl.Ty;
  Info.ArraySize = Decl.ArraySize;
  Info.Storage = Storage;
  Info.Owner = CurFunc;
  Info.Loc = Decl.Loc;
  VarId Id = this->Info->addVar(std::move(Info));
  Scope.emplace(Decl.Name, Id);
  Decl.Var = Id;
  if (Storage == StorageKind::Global)
    this->Info->Globals.push_back(Id);
  else
    this->Info->func(CurFunc).Locals.push_back(Id);
  return Id;
}

VarId Sema::lookupVar(const std::string &Name) const {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto Found = It->find(Name);
    if (Found != It->end())
      return Found->second;
  }
  return InvalidVar;
}

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

std::unique_ptr<ProgramInfo> Sema::run() {
  Info = std::make_unique<ProgramInfo>();
  pushScope(); // Global scope.

  for (VarDecl &G : TU.Globals) {
    if (G.Init && !isa<IntLiteralExpr>(G.Init.get()) &&
        !isa<DoubleLiteralExpr>(G.Init.get())) {
      error(G.Loc, "global initializers must be literals");
      continue;
    }
    declareVar(G, StorageKind::Global);
  }

  // Register all functions first so forward calls resolve.
  for (auto &FD : TU.Functions) {
    if (Info->findFunc(FD->Name) != InvalidFunc) {
      error(FD->Loc, "redefinition of function '" + FD->Name + "'");
      continue;
    }
    FuncInfo FI;
    FI.Name = FD->Name;
    FI.RetTy = FD->RetTy;
    FI.Loc = FD->Loc;
    Info->Funcs.push_back(std::move(FI));
    FD->Func = static_cast<FuncId>(Info->Funcs.size() - 1);
  }

  for (auto &FD : TU.Functions)
    if (FD->Func != InvalidFunc)
      checkFunction(*FD);

  popScope();
  if (Diags.hasErrors())
    return nullptr;
  return std::move(Info);
}

void Sema::checkFunction(FuncDecl &FD) {
  CurFunc = FD.Func;
  CurRetTy = FD.RetTy;
  pushScope();
  for (VarDecl &P : FD.Params) {
    if (P.ArraySize != 0) {
      error(P.Loc, "array parameters are not supported; use a pointer");
      continue;
    }
    VarId Id = declareVar(P, StorageKind::Param);
    if (Id != InvalidVar)
      Info->func(CurFunc).Params.push_back(Id);
  }
  // The body's CompoundStmt shares the parameter scope (C semantics are
  // close enough for MiniC: no shadowing of params at the top level).
  for (StmtPtr &S : FD.Body->Body)
    checkStmt(S.get());
  popScope();
  CurFunc = InvalidFunc;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

StmtId Sema::newStmt(SourceLoc Loc) {
  FuncInfo &FI = Info->func(CurFunc);
  StmtInfo SI;
  SI.Loc = Loc;
  // Snapshot the visible local variables (skip the global scope).
  for (std::size_t I = 1; I < Scopes.size(); ++I)
    for (const auto &[Name, Id] : Scopes[I])
      SI.ScopeVars.push_back(Id);
  std::sort(SI.ScopeVars.begin(), SI.ScopeVars.end());
  FI.Stmts.push_back(std::move(SI));
  return static_cast<StmtId>(FI.Stmts.size() - 1);
}

void Sema::checkStmt(Stmt *S) {
  switch (S->getKind()) {
  case Stmt::Kind::Decl: {
    auto *DS = cast<DeclStmt>(S);
    declareVar(DS->Decl, StorageKind::Local);
    S->Id = newStmt(S->getLoc());
    if (DS->Decl.Init) {
      if (DS->Decl.ArraySize != 0) {
        error(DS->Decl.Loc, "array initializers are not supported");
        return;
      }
      checkExpr(DS->Decl.Init);
      coerce(DS->Decl.Init, DS->Decl.Ty, "in initializer");
    }
    return;
  }
  case Stmt::Kind::Expr: {
    S->Id = newStmt(S->getLoc());
    checkExpr(cast<ExprStmt>(S)->E);
    return;
  }
  case Stmt::Kind::Compound: {
    pushScope();
    for (StmtPtr &Child : cast<CompoundStmt>(S)->Body)
      checkStmt(Child.get());
    popScope();
    return;
  }
  case Stmt::Kind::If: {
    auto *IS = cast<IfStmt>(S);
    S->Id = newStmt(S->getLoc());
    QualType CondTy = checkExpr(IS->Cond);
    if (!CondTy.isInt() && !CondTy.isVoid())
      error(IS->Cond->getLoc(), "condition must have int type");
    checkStmt(IS->Then.get());
    if (IS->Else)
      checkStmt(IS->Else.get());
    return;
  }
  case Stmt::Kind::While: {
    auto *WS = cast<WhileStmt>(S);
    S->Id = newStmt(S->getLoc());
    QualType CondTy = checkExpr(WS->Cond);
    if (!CondTy.isInt() && !CondTy.isVoid())
      error(WS->Cond->getLoc(), "condition must have int type");
    ++LoopDepth;
    checkStmt(WS->Body.get());
    --LoopDepth;
    return;
  }
  case Stmt::Kind::Do: {
    auto *DS = cast<DoStmt>(S);
    S->Id = newStmt(S->getLoc());
    ++LoopDepth;
    checkStmt(DS->Body.get());
    --LoopDepth;
    QualType CondTy = checkExpr(DS->Cond);
    if (!CondTy.isInt() && !CondTy.isVoid())
      error(DS->Cond->getLoc(), "condition must have int type");
    return;
  }
  case Stmt::Kind::For: {
    auto *FS = cast<ForStmt>(S);
    pushScope(); // for-init declarations scope to the loop.
    if (FS->Init)
      checkStmt(FS->Init.get());
    S->Id = newStmt(S->getLoc());
    if (FS->Cond) {
      QualType CondTy = checkExpr(FS->Cond);
      if (!CondTy.isInt() && !CondTy.isVoid())
        error(FS->Cond->getLoc(), "condition must have int type");
    }
    ++LoopDepth;
    checkStmt(FS->Body.get());
    --LoopDepth;
    if (FS->Inc) {
      FS->IncId = newStmt(FS->Inc->getLoc());
      checkExpr(FS->Inc);
    }
    popScope();
    return;
  }
  case Stmt::Kind::Return: {
    auto *RS = cast<ReturnStmt>(S);
    S->Id = newStmt(S->getLoc());
    if (RS->Value) {
      if (CurRetTy.isVoid()) {
        error(S->getLoc(), "void function cannot return a value");
        return;
      }
      checkExpr(RS->Value);
      coerce(RS->Value, CurRetTy, "in return");
    } else if (!CurRetTy.isVoid()) {
      error(S->getLoc(), "non-void function must return a value");
    }
    return;
  }
  case Stmt::Kind::Break:
    S->Id = newStmt(S->getLoc());
    if (LoopDepth == 0)
      error(S->getLoc(), "'break' outside of a loop");
    return;
  case Stmt::Kind::Continue:
    S->Id = newStmt(S->getLoc());
    if (LoopDepth == 0)
      error(S->getLoc(), "'continue' outside of a loop");
    return;
  case Stmt::Kind::Empty:
    return;
  }
  sldb_unreachable("bad statement kind");
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

void Sema::coerce(ExprPtr &E, QualType To, const char *Context) {
  if (!E || E->Ty == To || E->Ty.isVoid())
    return;
  if (E->Ty.isInt() && To.isDouble()) {
    E = std::make_unique<CastExpr>(E->getLoc(), To, std::move(E));
    return;
  }
  if (E->Ty.isDouble() && To.isInt()) {
    E = std::make_unique<CastExpr>(E->getLoc(), To, std::move(E));
    return;
  }
  error(E->getLoc(), "cannot convert " + E->Ty.str() + " to " + To.str() +
                         " " + Context);
}

bool Sema::isLValue(const Expr *E) const {
  if (const auto *VR = dyn_cast<VarRefExpr>(E))
    return !VR->IsArray;
  return isa<UnaryExpr>(E)
             ? cast<UnaryExpr>(E)->Op == UnaryOp::Deref
             : isa<IndexExpr>(E);
}

QualType Sema::checkExpr(ExprPtr &E) {
  if (!E)
    return QualType::voidTy();
  switch (E->getKind()) {
  case Expr::Kind::IntLiteral:
    E->Ty = QualType::intTy();
    return E->Ty;
  case Expr::Kind::DoubleLiteral:
    E->Ty = QualType::doubleTy();
    return E->Ty;
  case Expr::Kind::VarRef: {
    auto *VR = cast<VarRefExpr>(E.get());
    VarId Id = lookupVar(VR->Name);
    if (Id == InvalidVar) {
      error(VR->getLoc(), "use of undeclared identifier '" + VR->Name + "'");
      E->Ty = QualType::voidTy();
      return E->Ty;
    }
    VR->Var = Id;
    const VarInfo &VI = Info->var(Id);
    if (VI.ArraySize != 0) {
      VR->IsArray = true;
      E->Ty = QualType::ptrTo(VI.Ty.Kind);
    } else {
      E->Ty = VI.Ty;
    }
    return E->Ty;
  }
  case Expr::Kind::Unary:
    return checkUnary(cast<UnaryExpr>(E.get()), E);
  case Expr::Kind::Binary:
    return checkBinary(cast<BinaryExpr>(E.get()));
  case Expr::Kind::Assign:
    return checkAssign(cast<AssignExpr>(E.get()));
  case Expr::Kind::Index:
    return checkIndex(cast<IndexExpr>(E.get()));
  case Expr::Kind::Call:
    return checkCall(cast<CallExpr>(E.get()));
  case Expr::Kind::Ternary: {
    auto *TE = cast<TernaryExpr>(E.get());
    QualType CondTy = checkExpr(TE->Cond);
    if (!CondTy.isInt() && !CondTy.isVoid())
      error(TE->Cond->getLoc(), "condition must have int type");
    QualType T1 = checkExpr(TE->Then);
    QualType T2 = checkExpr(TE->Else);
    if (T1.isArithmetic() && T2.isArithmetic() && T1 != T2) {
      coerce(TE->Then, QualType::doubleTy(), "in conditional");
      coerce(TE->Else, QualType::doubleTy(), "in conditional");
      E->Ty = QualType::doubleTy();
    } else if (T1 == T2) {
      E->Ty = T1;
    } else {
      error(TE->getLoc(), "incompatible branches of conditional");
      E->Ty = QualType::voidTy();
    }
    return E->Ty;
  }
  case Expr::Kind::Cast:
    // Only Sema creates casts; already typed.
    return E->Ty;
  }
  sldb_unreachable("bad expression kind");
}

QualType Sema::checkUnary(UnaryExpr *E, ExprPtr &Owner) {
  (void)Owner;
  QualType SubTy = checkExpr(E->Sub);
  switch (E->Op) {
  case UnaryOp::Neg:
    if (!SubTy.isArithmetic() && !SubTy.isVoid())
      error(E->getLoc(), "operand of unary '-' must be arithmetic");
    E->Ty = SubTy;
    return E->Ty;
  case UnaryOp::LogNot:
    if (!SubTy.isInt() && !SubTy.isVoid())
      error(E->getLoc(), "operand of '!' must have int type");
    E->Ty = QualType::intTy();
    return E->Ty;
  case UnaryOp::BitNot:
    if (!SubTy.isInt() && !SubTy.isVoid())
      error(E->getLoc(), "operand of '~' must have int type");
    E->Ty = QualType::intTy();
    return E->Ty;
  case UnaryOp::Deref:
    if (!SubTy.isPtr()) {
      if (!SubTy.isVoid())
        error(E->getLoc(), "cannot dereference non-pointer");
      E->Ty = QualType::voidTy();
      return E->Ty;
    }
    E->Ty = QualType(SubTy.Pointee);
    return E->Ty;
  case UnaryOp::AddrOf: {
    if (auto *VR = dyn_cast<VarRefExpr>(E->Sub.get())) {
      if (VR->Var != InvalidVar && !VR->IsArray) {
        Info->var(VR->Var).AddressTaken = true;
        E->Ty = QualType::ptrTo(SubTy.Kind);
        return E->Ty;
      }
      if (VR->IsArray) {
        // &arr is just arr in MiniC's flat memory model.
        E->Ty = SubTy;
        return E->Ty;
      }
    }
    if (isa<IndexExpr>(E->Sub.get())) {
      E->Ty = QualType::ptrTo(SubTy.Kind);
      return E->Ty;
    }
    error(E->getLoc(), "cannot take the address of this expression");
    E->Ty = QualType::voidTy();
    return E->Ty;
  }
  case UnaryOp::PreInc:
  case UnaryOp::PreDec:
  case UnaryOp::PostInc:
  case UnaryOp::PostDec:
    if (!isLValue(E->Sub.get())) {
      error(E->getLoc(), "operand of ++/-- must be an lvalue");
    } else if (!SubTy.isInt() && !SubTy.isPtr() && !SubTy.isVoid()) {
      error(E->getLoc(), "operand of ++/-- must have int or pointer type");
    }
    E->Ty = SubTy;
    return E->Ty;
  }
  sldb_unreachable("bad unary op");
}

QualType Sema::checkBinary(BinaryExpr *E) {
  QualType L = checkExpr(E->LHS);
  QualType R = checkExpr(E->RHS);
  if (L.isVoid() || R.isVoid()) {
    E->Ty = QualType::voidTy();
    return E->Ty;
  }
  switch (E->Op) {
  case BinaryOp::Add:
  case BinaryOp::Sub:
    // Pointer arithmetic: ptr +- int (word-scaled).
    if (L.isPtr() && R.isInt()) {
      E->Ty = L;
      return E->Ty;
    }
    if (E->Op == BinaryOp::Add && L.isInt() && R.isPtr()) {
      E->Ty = R;
      return E->Ty;
    }
    [[fallthrough]];
  case BinaryOp::Mul:
  case BinaryOp::Div: {
    if (!L.isArithmetic() || !R.isArithmetic()) {
      error(E->getLoc(), "invalid operands to arithmetic operator");
      E->Ty = QualType::voidTy();
      return E->Ty;
    }
    if (L.isDouble() || R.isDouble()) {
      coerce(E->LHS, QualType::doubleTy(), "in arithmetic");
      coerce(E->RHS, QualType::doubleTy(), "in arithmetic");
      E->Ty = QualType::doubleTy();
    } else {
      E->Ty = QualType::intTy();
    }
    return E->Ty;
  }
  case BinaryOp::Rem:
  case BinaryOp::And:
  case BinaryOp::Or:
  case BinaryOp::Xor:
  case BinaryOp::Shl:
  case BinaryOp::Shr:
  case BinaryOp::LogAnd:
  case BinaryOp::LogOr:
    if (!L.isInt() || !R.isInt()) {
      error(E->getLoc(), "operands must have int type");
      E->Ty = QualType::voidTy();
      return E->Ty;
    }
    E->Ty = QualType::intTy();
    return E->Ty;
  case BinaryOp::EQ:
  case BinaryOp::NE:
  case BinaryOp::LT:
  case BinaryOp::LE:
  case BinaryOp::GT:
  case BinaryOp::GE:
    if (L.isPtr() && R.isPtr()) {
      E->Ty = QualType::intTy();
      return E->Ty;
    }
    if (!L.isArithmetic() || !R.isArithmetic()) {
      error(E->getLoc(), "invalid operands to comparison");
      E->Ty = QualType::voidTy();
      return E->Ty;
    }
    if (L.isDouble() || R.isDouble()) {
      coerce(E->LHS, QualType::doubleTy(), "in comparison");
      coerce(E->RHS, QualType::doubleTy(), "in comparison");
    }
    E->Ty = QualType::intTy();
    return E->Ty;
  }
  sldb_unreachable("bad binary op");
}

QualType Sema::checkAssign(AssignExpr *E) {
  QualType TargetTy = checkExpr(E->Target);
  QualType ValueTy = checkExpr(E->Value);
  if (!isLValue(E->Target.get())) {
    error(E->getLoc(), "left side of assignment is not an lvalue");
    E->Ty = QualType::voidTy();
    return E->Ty;
  }
  if (TargetTy.isVoid() || ValueTy.isVoid()) {
    E->Ty = QualType::voidTy();
    return E->Ty;
  }
  if (E->Op != AssignOp::Plain && TargetTy.isPtr()) {
    if ((E->Op != AssignOp::Add && E->Op != AssignOp::Sub) ||
        !ValueTy.isInt()) {
      error(E->getLoc(), "invalid compound assignment to pointer");
      E->Ty = QualType::voidTy();
      return E->Ty;
    }
    E->Ty = TargetTy;
    return E->Ty;
  }
  if (E->Op == AssignOp::Rem &&
      (!TargetTy.isInt() || !ValueTy.isInt())) {
    error(E->getLoc(), "'%=' requires int operands");
    E->Ty = QualType::voidTy();
    return E->Ty;
  }
  coerce(E->Value, TargetTy, "in assignment");
  E->Ty = TargetTy;
  return E->Ty;
}

QualType Sema::checkIndex(IndexExpr *E) {
  QualType BaseTy = checkExpr(E->Base);
  QualType IdxTy = checkExpr(E->Index);
  if (!BaseTy.isPtr()) {
    if (!BaseTy.isVoid())
      error(E->getLoc(), "subscripted value is not an array or pointer");
    E->Ty = QualType::voidTy();
    return E->Ty;
  }
  if (!IdxTy.isInt() && !IdxTy.isVoid())
    error(E->getLoc(), "array index must have int type");
  E->Ty = QualType(BaseTy.Pointee);
  return E->Ty;
}

QualType Sema::checkCall(CallExpr *E) {
  // Builtins.
  if (E->Callee == "print" || E->Callee == "printd") {
    bool IsDouble = E->Callee == "printd";
    E->BuiltinKind = IsDouble ? Builtin::PrintDouble : Builtin::PrintInt;
    if (E->Args.size() != 1) {
      error(E->getLoc(), "'" + E->Callee + "' takes exactly one argument");
      E->Ty = QualType::voidTy();
      return E->Ty;
    }
    checkExpr(E->Args[0]);
    coerce(E->Args[0],
           IsDouble ? QualType::doubleTy() : QualType::intTy(),
           "in print argument");
    E->Ty = QualType::voidTy();
    return E->Ty;
  }

  FuncId Callee = Info->findFunc(E->Callee);
  if (Callee == InvalidFunc) {
    error(E->getLoc(), "call to undeclared function '" + E->Callee + "'");
    E->Ty = QualType::voidTy();
    return E->Ty;
  }
  E->Func = Callee;
  const FuncInfo &FI = Info->func(Callee);
  if (E->Args.size() != FI.Params.size()) {
    error(E->getLoc(), "wrong number of arguments to '" + E->Callee + "'");
    E->Ty = FI.RetTy;
    return E->Ty;
  }
  for (std::size_t I = 0; I < E->Args.size(); ++I) {
    checkExpr(E->Args[I]);
    coerce(E->Args[I], Info->var(FI.Params[I]).Ty, "in call argument");
  }
  E->Ty = FI.RetTy;
  return E->Ty;
}
