//===- frontend/Lexer.cpp -------------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include "support/Casting.h"

#include <cctype>
#include <cstdlib>

using namespace sldb;

const char *sldb::tokKindName(TokKind Kind) {
  switch (Kind) {
  case TokKind::Eof:
    return "end of file";
  case TokKind::Identifier:
    return "identifier";
  case TokKind::IntLiteral:
    return "integer literal";
  case TokKind::DoubleLiteral:
    return "double literal";
  case TokKind::KwInt:
    return "'int'";
  case TokKind::KwDouble:
    return "'double'";
  case TokKind::KwVoid:
    return "'void'";
  case TokKind::KwIf:
    return "'if'";
  case TokKind::KwElse:
    return "'else'";
  case TokKind::KwWhile:
    return "'while'";
  case TokKind::KwDo:
    return "'do'";
  case TokKind::KwFor:
    return "'for'";
  case TokKind::KwReturn:
    return "'return'";
  case TokKind::KwBreak:
    return "'break'";
  case TokKind::KwContinue:
    return "'continue'";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::LBrace:
    return "'{'";
  case TokKind::RBrace:
    return "'}'";
  case TokKind::LBracket:
    return "'['";
  case TokKind::RBracket:
    return "']'";
  case TokKind::Semicolon:
    return "';'";
  case TokKind::Comma:
    return "','";
  case TokKind::Question:
    return "'?'";
  case TokKind::Colon:
    return "':'";
  case TokKind::Assign:
    return "'='";
  case TokKind::PlusAssign:
    return "'+='";
  case TokKind::MinusAssign:
    return "'-='";
  case TokKind::StarAssign:
    return "'*='";
  case TokKind::SlashAssign:
    return "'/='";
  case TokKind::PercentAssign:
    return "'%='";
  case TokKind::PlusPlus:
    return "'++'";
  case TokKind::MinusMinus:
    return "'--'";
  case TokKind::Plus:
    return "'+'";
  case TokKind::Minus:
    return "'-'";
  case TokKind::Star:
    return "'*'";
  case TokKind::Slash:
    return "'/'";
  case TokKind::Percent:
    return "'%'";
  case TokKind::Amp:
    return "'&'";
  case TokKind::Pipe:
    return "'|'";
  case TokKind::Caret:
    return "'^'";
  case TokKind::Tilde:
    return "'~'";
  case TokKind::Bang:
    return "'!'";
  case TokKind::AmpAmp:
    return "'&&'";
  case TokKind::PipePipe:
    return "'||'";
  case TokKind::Shl:
    return "'<<'";
  case TokKind::Shr:
    return "'>>'";
  case TokKind::EqEq:
    return "'=='";
  case TokKind::BangEq:
    return "'!='";
  case TokKind::Less:
    return "'<'";
  case TokKind::LessEq:
    return "'<='";
  case TokKind::Greater:
    return "'>'";
  case TokKind::GreaterEq:
    return "'>='";
  case TokKind::Unknown:
    return "unknown token";
  }
  sldb_unreachable("bad token kind");
}

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

bool Lexer::match(char Expected) {
  if (peek() != Expected)
    return false;
  advance();
  return true;
}

void Lexer::skipWhitespaceAndComments() {
  const std::size_t N = Source.size();
  while (Pos < N) {
    char C = Source[Pos];
    // Plain whitespace dominates; update position inline instead of
    // paying a call per character.
    if (C == ' ' || C == '\t' || C == '\r') {
      ++Pos;
      ++Col;
      continue;
    }
    if (C == '\n') {
      ++Pos;
      ++Line;
      Col = 1;
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (Pos < Source.size() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLoc Start = loc();
      advance();
      advance();
      while (Pos < Source.size() && !(peek() == '*' && peek(1) == '/'))
        advance();
      if (Pos >= Source.size()) {
        Diags.error(Start, "unterminated block comment");
        return;
      }
      advance();
      advance();
      continue;
    }
    return;
  }
}

Token Lexer::makeToken(TokKind Kind, SourceLoc Loc) const {
  Token T;
  T.Kind = Kind;
  T.Loc = Loc;
  return T;
}

Token Lexer::lexNumber(SourceLoc Start) {
  std::size_t Begin = Pos;
  while (std::isdigit(static_cast<unsigned char>(peek())))
    advance();
  bool IsDouble = false;
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    IsDouble = true;
    advance();
    while (std::isdigit(static_cast<unsigned char>(peek())))
      advance();
  }
  if (peek() == 'e' || peek() == 'E') {
    unsigned Ahead = 1;
    if (peek(1) == '+' || peek(1) == '-')
      Ahead = 2;
    if (std::isdigit(static_cast<unsigned char>(peek(Ahead)))) {
      IsDouble = true;
      while (Ahead-- > 0)
        advance();
      advance();
      while (std::isdigit(static_cast<unsigned char>(peek())))
        advance();
    }
  }
  std::string Text(Source.substr(Begin, Pos - Begin));
  Token T = makeToken(IsDouble ? TokKind::DoubleLiteral : TokKind::IntLiteral,
                      Start);
  if (IsDouble)
    T.DoubleVal = std::strtod(Text.c_str(), nullptr);
  else
    T.IntVal = std::strtoll(Text.c_str(), nullptr, 10);
  return T;
}

Token Lexer::lexIdentifier(SourceLoc Start) {
  std::size_t Begin = Pos;
  const std::size_t N = Source.size();
  // Identifiers contain no newlines: scan to the end, then bump the
  // column once.
  while (Pos < N) {
    char C = Source[Pos];
    if (!std::isalnum(static_cast<unsigned char>(C)) && C != '_')
      break;
    ++Pos;
  }
  Col += static_cast<std::uint32_t>(Pos - Begin);
  std::string_view Text = Source.substr(Begin, Pos - Begin);

  static const struct {
    std::string_view Spelling;
    TokKind Kind;
  } Keywords[] = {
      {"int", TokKind::KwInt},         {"double", TokKind::KwDouble},
      {"void", TokKind::KwVoid},       {"if", TokKind::KwIf},
      {"else", TokKind::KwElse},       {"while", TokKind::KwWhile},
      {"do", TokKind::KwDo},           {"for", TokKind::KwFor},
      {"return", TokKind::KwReturn},   {"break", TokKind::KwBreak},
      {"continue", TokKind::KwContinue}};
  for (const auto &KW : Keywords)
    if (Text == KW.Spelling)
      return makeToken(KW.Kind, Start);

  Token T = makeToken(TokKind::Identifier, Start);
  T.Text.assign(Text);
  return T;
}

Token Lexer::next() {
  skipWhitespaceAndComments();
  SourceLoc Start = loc();
  if (Pos >= Source.size())
    return makeToken(TokKind::Eof, Start);

  char C = peek();
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber(Start);
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdentifier(Start);

  advance();
  switch (C) {
  case '(':
    return makeToken(TokKind::LParen, Start);
  case ')':
    return makeToken(TokKind::RParen, Start);
  case '{':
    return makeToken(TokKind::LBrace, Start);
  case '}':
    return makeToken(TokKind::RBrace, Start);
  case '[':
    return makeToken(TokKind::LBracket, Start);
  case ']':
    return makeToken(TokKind::RBracket, Start);
  case ';':
    return makeToken(TokKind::Semicolon, Start);
  case ',':
    return makeToken(TokKind::Comma, Start);
  case '?':
    return makeToken(TokKind::Question, Start);
  case ':':
    return makeToken(TokKind::Colon, Start);
  case '~':
    return makeToken(TokKind::Tilde, Start);
  case '+':
    if (match('='))
      return makeToken(TokKind::PlusAssign, Start);
    if (match('+'))
      return makeToken(TokKind::PlusPlus, Start);
    return makeToken(TokKind::Plus, Start);
  case '-':
    if (match('='))
      return makeToken(TokKind::MinusAssign, Start);
    if (match('-'))
      return makeToken(TokKind::MinusMinus, Start);
    return makeToken(TokKind::Minus, Start);
  case '*':
    return makeToken(match('=') ? TokKind::StarAssign : TokKind::Star, Start);
  case '/':
    return makeToken(match('=') ? TokKind::SlashAssign : TokKind::Slash,
                     Start);
  case '%':
    return makeToken(match('=') ? TokKind::PercentAssign : TokKind::Percent,
                     Start);
  case '&':
    return makeToken(match('&') ? TokKind::AmpAmp : TokKind::Amp, Start);
  case '|':
    return makeToken(match('|') ? TokKind::PipePipe : TokKind::Pipe, Start);
  case '^':
    return makeToken(TokKind::Caret, Start);
  case '!':
    return makeToken(match('=') ? TokKind::BangEq : TokKind::Bang, Start);
  case '=':
    return makeToken(match('=') ? TokKind::EqEq : TokKind::Assign, Start);
  case '<':
    if (match('<'))
      return makeToken(TokKind::Shl, Start);
    return makeToken(match('=') ? TokKind::LessEq : TokKind::Less, Start);
  case '>':
    if (match('>'))
      return makeToken(TokKind::Shr, Start);
    return makeToken(match('=') ? TokKind::GreaterEq : TokKind::Greater,
                     Start);
  default:
    Diags.error(Start, std::string("unexpected character '") + C + "'");
    return makeToken(TokKind::Unknown, Start);
  }
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  for (;;) {
    Tokens.push_back(next());
    if (Tokens.back().is(TokKind::Eof) || Tokens.back().is(TokKind::Unknown))
      break;
  }
  if (!Tokens.back().is(TokKind::Eof)) {
    Token Eof;
    Eof.Kind = TokKind::Eof;
    Eof.Loc = Tokens.back().Loc;
    Tokens.push_back(Eof);
  }
  return Tokens;
}
