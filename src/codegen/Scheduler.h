//===- codegen/Scheduler.h - Local list scheduling --------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Local (basic-block) list scheduling for the R3K pipeline model
/// (paper Table 1: "Instruction scheduling").  Annotations move with the
/// instructions they decorate; debug markers are scheduling barriers so
/// the gen/kill positions of the debugger's analyses stay exact.
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_CODEGEN_SCHEDULER_H
#define SLDB_CODEGEN_SCHEDULER_H

#include "codegen/MachineIR.h"

namespace sldb {

/// Schedules every block of \p MF in place (virtual-register code;
/// run before register allocation).
void scheduleFunction(MachineFunction &MF);

/// Latency of one instruction in the R3K pipeline model.
unsigned instrLatency(MOp Op);

} // namespace sldb

#endif // SLDB_CODEGEN_SCHEDULER_H
