//===- codegen/MachineIR.cpp - printing ------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "codegen/MachineIR.h"

#include <cstdio>

using namespace sldb;

std::string Reg::str() const {
  if (!isValid())
    return "<noreg>";
  std::string Prefix = Cls == RegClass::Int ? "r" : "f";
  if (isVirtual())
    return "v" + Prefix + std::to_string(N - VirtBase);
  return Prefix + std::to_string(N);
}

const char *sldb::mopName(MOp Op) {
  switch (Op) {
  case MOp::ADD:
    return "add";
  case MOp::SUB:
    return "sub";
  case MOp::MUL:
    return "mul";
  case MOp::DIV:
    return "div";
  case MOp::REM:
    return "rem";
  case MOp::AND:
    return "and";
  case MOp::OR:
    return "or";
  case MOp::XOR:
    return "xor";
  case MOp::SLL:
    return "sll";
  case MOp::SRA:
    return "sra";
  case MOp::SEQ:
    return "seq";
  case MOp::SNE:
    return "sne";
  case MOp::SLT:
    return "slt";
  case MOp::SLE:
    return "sle";
  case MOp::SGT:
    return "sgt";
  case MOp::SGE:
    return "sge";
  case MOp::NEG:
    return "neg";
  case MOp::NOT:
    return "not";
  case MOp::MOV:
    return "mov";
  case MOp::LI:
    return "li";
  case MOp::FADD:
    return "fadd";
  case MOp::FSUB:
    return "fsub";
  case MOp::FMUL:
    return "fmul";
  case MOp::FDIV:
    return "fdiv";
  case MOp::FNEG:
    return "fneg";
  case MOp::FMOV:
    return "fmov";
  case MOp::LID:
    return "lid";
  case MOp::FEQ:
    return "feq";
  case MOp::FNE:
    return "fne";
  case MOp::FLT:
    return "flt";
  case MOp::FLE:
    return "fle";
  case MOp::FGT:
    return "fgt";
  case MOp::FGE:
    return "fge";
  case MOp::CVTID:
    return "cvtid";
  case MOp::CVTDI:
    return "cvtdi";
  case MOp::LW:
    return "lw";
  case MOp::SW:
    return "sw";
  case MOp::LD:
    return "ld";
  case MOp::SD:
    return "sd";
  case MOp::LA:
    return "la";
  case MOp::J:
    return "j";
  case MOp::BNEZ:
    return "bnez";
  case MOp::JAL:
    return "jal";
  case MOp::RET:
    return "ret";
  case MOp::PRINTI:
    return "printi";
  case MOp::PRINTD:
    return "printd";
  case MOp::MDEAD:
    return "mdead";
  case MOp::MAVAIL:
    return "mavail";
  case MOp::MNOP:
    return "mnop";
  }
  return "???";
}

std::string sldb::printMInstr(const MInstr &I, const MachineFunction &F,
                              const ProgramInfo *Info) {
  std::string S = mopName(I.Op);
  auto AddReg = [&](const Reg &R) {
    if (R.isValid())
      S += " " + R.str();
  };
  AddReg(I.Dest);
  AddReg(I.Src0);
  AddReg(I.Src1);
  if (I.Op == MOp::LI)
    S += " " + std::to_string(I.Imm);
  if (I.Op == MOp::LID) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), " %g", I.FImm);
    S += Buf;
  }
  if (I.AddrReg.isValid())
    S += " [" + I.AddrReg.str() + "]";
  if (I.FrameSlot >= 0)
    S += " fp[" + std::to_string(I.FrameSlot) + "]";
  if (I.GlobalVar != InvalidVar)
    S += " @" + (Info ? Info->var(I.GlobalVar).Name
                      : std::to_string(I.GlobalVar));
  if (I.TargetBlock != ~0u)
    S += " ->" + F.Blocks[I.TargetBlock].Name;
  if (I.Callee != InvalidFunc)
    S += " fn" + std::to_string(I.Callee);
  if (I.Op == MOp::MDEAD || I.Op == MOp::MAVAIL) {
    S += " var=" +
         (Info ? Info->var(I.MarkVar).Name : std::to_string(I.MarkVar));
    S += " @s" + std::to_string(I.MarkStmt);
  }

  std::string Ann;
  if (I.Stmt != InvalidStmt)
    Ann += " s" + std::to_string(I.Stmt);
  if (I.DestVar != InvalidVar)
    Ann += " =>" +
           (Info ? Info->var(I.DestVar).Name : std::to_string(I.DestVar));
  if (I.IsHoisted)
    Ann += " hoisted(" + std::to_string(I.HoistKey) + ")";
  if (I.IsSunk)
    Ann += " sunk";
  if (!Ann.empty())
    S += "  ;" + Ann;
  return S;
}

std::string sldb::printMachineFunction(const MachineFunction &F,
                                       const ProgramInfo *Info) {
  std::string S = "machine func " + F.Name + " (frame " +
                  std::to_string(F.FrameSize) + "):\n";
  unsigned Addr = 0;
  for (const MachineBlock &B : F.Blocks) {
    S += B.Name + ":\n";
    for (const MInstr &I : B.Insts) {
      char Buf[16];
      std::snprintf(Buf, sizeof(Buf), "%4u: ", Addr++);
      S += Buf;
      S += printMInstr(I, F, Info);
      S += "\n";
    }
  }
  return S;
}
