//===- codegen/RegAlloc.cpp -----------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "codegen/RegAlloc.h"

#include "analysis/Dataflow.h"
#include "support/Casting.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>

using namespace sldb;

std::vector<Reg> sldb::minstrUses(const MInstr &I) {
  std::vector<Reg> Uses;
  forEachMUse(I, [&](const Reg &R) { Uses.push_back(R); });
  return Uses;
}

std::vector<Reg> sldb::minstrDefs(const MInstr &I) {
  std::vector<Reg> Defs;
  forEachMDef(I, [&](const Reg &R) { Defs.push_back(R); });
  return Defs;
}

namespace {

/// Register allocator state for one class within one function.
class Allocator {
public:
  Allocator(MachineFunction &MF, const ProgramInfo &Info) : MF(MF) {
    (void)Info;
    // Variable-homing vregs must not coalesce: their live range *is* the
    // debugger's residence information.
    for (const auto &[V, S] : MF.Storage)
      if (S.K == VarStorage::Kind::InReg)
        NoCoalesce.insert(key(S.R));
    // Recovery-source vregs must not coalesce either.  Coalescing
    // rewrites move-related vregs in the code itself, so once a marker's
    // recovery source merges with a sibling value, a def of the merged
    // register is indistinguishable from a def of the source and the
    // ownership analysis (computeDebugTables) certifies the recovery
    // while the register holds the sibling's value — the fuzzer found a
    // marker recovering another branch's constant this way.  Keeping the
    // source un-merged makes "def of the source's value" exactly "def
    // whose pre-rewrite destination is the source vreg"; every other
    // value colored into the register kills ownership.
    for (MachineBlock &B : MF.Blocks)
      for (MInstr &I : B.Insts) {
        if (I.Dest.isValid() && I.Dest.isVirtual())
          I.DestVreg = I.Dest;
        if (I.Recovery.K == MRecovery::Kind::InReg &&
            I.Recovery.R.isVirtual()) {
          I.Recovery.SrcVreg = I.Recovery.R;
          NoCoalesce.insert(key(I.Recovery.R));
        }
      }
  }

  /// Runs allocation for both classes; returns false if it failed to
  /// converge (should not happen).
  bool run();

  /// Per-address live sets of all virtual registers computed on the final
  /// (pre-rewrite) code; used for residence tables.  Valid after run().
  void computeDebugTables();

  /// Set when rewrite() met a virtual register the coloring never saw;
  /// the function's code is unusable and the caller must discard it.
  bool RewriteFailed = false;

private:
  static std::uint64_t key(const Reg &R) {
    return (static_cast<std::uint64_t>(R.Cls == RegClass::Fp) << 32) | R.N;
  }
  static unsigned numColors(RegClass Cls) {
    return Cls == RegClass::Int
               ? R3K::LastAllocInt - R3K::FirstAllocInt + 1
               : R3K::LastAllocFp - R3K::FirstAllocFp + 1;
  }
  static unsigned firstColor(RegClass Cls) {
    return Cls == RegClass::Int ? R3K::FirstAllocInt : R3K::FirstAllocFp;
  }

  bool allocateClass(RegClass Cls);
  void livenessPerBlock(
      RegClass Cls,
      const std::unordered_map<std::uint64_t, unsigned> &IdOf, unsigned NR,
      std::vector<BitVector> &LiveOut) const;
  void spill(const std::unordered_set<std::uint64_t> &ToSpill,
             RegClass Cls);
  void rewrite(const std::unordered_map<std::uint64_t, unsigned> &Color,
               RegClass Cls);

  MachineFunction &MF;
  std::unordered_set<std::uint64_t> NoCoalesce;
  std::unordered_map<std::uint64_t, std::int32_t> SpillSlot;
};

} // namespace

void Allocator::livenessPerBlock(
    RegClass Cls,
    const std::unordered_map<std::uint64_t, unsigned> &IdOf, unsigned NR,
    std::vector<BitVector> &LiveOut) const {
  const unsigned N = static_cast<unsigned>(MF.Blocks.size());
  // One instruction walk total: summarize each block as upward-exposed
  // uses and defs, then run the word-parallel fixpoint on the summaries
  // (In = Use ∪ (Out − Def), identical to the per-instruction backward
  // walk it replaces).
  std::vector<BitVector> Use(N, BitVector(NR)), Def(N, BitVector(NR));
  for (unsigned B = 0; B < N; ++B) {
    BitVector &U = Use[B], &D = Def[B];
    const auto &Insts = MF.Blocks[B].Insts;
    for (auto It = Insts.rbegin(); It != Insts.rend(); ++It) {
      forEachMDef(*It, [&](const Reg &R) {
        if (R.Cls == Cls) {
          unsigned Id = IdOf.at(key(R));
          U.reset(Id);
          D.set(Id);
        }
      });
      forEachMUse(*It, [&](const Reg &R) {
        if (R.Cls == Cls)
          U.set(IdOf.at(key(R)));
      });
    }
  }

  std::vector<BitVector> LiveIn(N, BitVector(NR));
  LiveOut.assign(N, BitVector(NR));
  BitVector Out(NR), In(NR);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned Step = 0; Step < N; ++Step) {
      unsigned B = N - 1 - Step;
      Out.reset();
      for (unsigned S : MF.Blocks[B].Succs)
        Out |= LiveIn[S];
      In = Out;
      In.subtract(Def[B]);
      In |= Use[B];
      if (In != LiveIn[B] || Out != LiveOut[B]) {
        std::swap(LiveIn[B], In);
        std::swap(LiveOut[B], Out);
        Changed = true;
      }
    }
  }
}

bool Allocator::allocateClass(RegClass Cls) {
  const unsigned K = numColors(Cls);

  for (int Round = 0; Round < 24; ++Round) {
    // --- Dense numbering of this class's registers.  All downstream
    // decision order is by register key (see the Virtuals sort), so the
    // enumeration order itself carries no meaning.
    std::unordered_map<std::uint64_t, unsigned> IdOf;
    std::vector<Reg> RegOf;
    auto Id = [&](const Reg &R) {
      auto [It, New] =
          IdOf.emplace(key(R), static_cast<unsigned>(RegOf.size()));
      if (New)
        RegOf.push_back(R);
      return It->second;
    };
    for (const MachineBlock &B : MF.Blocks)
      for (const MInstr &I : B.Insts) {
        forEachMDef(I, [&](const Reg &D) {
          if (D.Cls == Cls)
            Id(D);
        });
        forEachMUse(I, [&](const Reg &U) {
          if (U.Cls == Cls)
            Id(U);
        });
      }
    const unsigned NR = static_cast<unsigned>(RegOf.size());

    std::vector<BitVector> LiveOut;
    livenessPerBlock(Cls, IdOf, NR, LiveOut);

    // --- Interference graph as a dense adjacency bit-matrix.
    std::vector<BitVector> Adj(NR, BitVector(NR));
    std::vector<unsigned> Weight(NR, 0); // Spill cost.
    auto AddEdge = [&](unsigned A, unsigned B) {
      if (A == B)
        return;
      Adj[A].set(B);
      Adj[B].set(A);
    };

    std::vector<std::pair<unsigned, unsigned>> MoveEdges;
    for (unsigned B = 0; B < MF.Blocks.size(); ++B) {
      BitVector Live = LiveOut[B];
      auto &Insts = MF.Blocks[B].Insts;
      for (auto It = Insts.rbegin(); It != Insts.rend(); ++It) {
        const MInstr &I = *It;
        bool IsMove = (I.Op == MOp::MOV && Cls == RegClass::Int) ||
                      (I.Op == MOp::FMOV && Cls == RegClass::Fp);
        unsigned MoveSrc = ~0u, MoveDst = ~0u;
        if (IsMove && I.Src0.isValid())
          MoveSrc = IdOf.at(key(I.Src0));
        if (IsMove && I.Dest.isValid())
          MoveDst = IdOf.at(key(I.Dest));
        forEachMDef(I, [&](const Reg &D) {
          if (D.Cls != Cls)
            return;
          unsigned DK = IdOf.at(key(D));
          ++Weight[DK];
          for (unsigned L : Live)
            if (!(IsMove && L == MoveSrc && DK == MoveDst))
              AddEdge(DK, L);
        });
        forEachMDef(I, [&](const Reg &D) {
          if (D.Cls == Cls)
            Live.reset(IdOf.at(key(D)));
        });
        forEachMUse(I, [&](const Reg &U) {
          if (U.Cls != Cls)
            return;
          unsigned UK = IdOf.at(key(U));
          ++Weight[UK];
          Live.set(UK);
        });
        if (IsMove && I.Dest.isValid() && I.Src0.isValid() &&
            I.Dest.Cls == Cls && I.Dest.isVirtual() && I.Src0.isVirtual())
          MoveEdges.emplace_back(MoveDst, MoveSrc);
      }
    }

    // --- Briggs conservative coalescing.
    std::vector<unsigned> Alias(NR);
    for (unsigned N2 = 0; N2 < NR; ++N2)
      Alias[N2] = N2;
    auto Find = [&](unsigned X) {
      while (Alias[X] != X)
        X = Alias[X];
      return X;
    };
    std::vector<char> NoCo(NR, 0);
    for (unsigned N2 = 0; N2 < NR; ++N2)
      NoCo[N2] = NoCoalesce.count(key(RegOf[N2])) != 0;
    bool Coalesced = false;
    for (auto &[A0, B0] : MoveEdges) {
      unsigned A = Find(A0), B = Find(B0);
      if (A == B || NoCo[A] || NoCo[B])
        continue;
      if (Adj[A].test(B))
        continue;
      // Briggs: the merged node must have < K neighbors of significant
      // degree.
      BitVector Union = Adj[A];
      Union |= Adj[B];
      unsigned Significant = 0;
      for (unsigned N2 : Union)
        if (Adj[Find(N2)].count() >= K)
          ++Significant;
      if (Significant >= K)
        continue;
      // Merge B into A.  (A is not adjacent to B, so updating row A while
      // iterating row B is safe.)
      for (unsigned N2 : Adj[B]) {
        Adj[N2].reset(B);
        if (N2 != A) {
          Adj[N2].set(A);
          Adj[A].set(N2);
        }
      }
      Adj[B].reset();
      Weight[A] += Weight[B];
      Alias[B] = A;
      Coalesced = true;
    }
    if (Coalesced) {
      // Rewrite aliases in the code and delete identity moves, then
      // restart the round with a clean graph.
      for (MachineBlock &Blk : MF.Blocks) {
        for (auto It = Blk.Insts.begin(); It != Blk.Insts.end();) {
          auto Fix = [&](Reg &R) {
            if (!R.isValid() || R.Cls != Cls || !R.isVirtual())
              return;
            auto IIt = IdOf.find(key(R));
            if (IIt == IdOf.end())
              return; // Not in the graph (e.g. dead recovery source).
            R = RegOf[Find(IIt->second)];
          };
          Fix(It->Dest);
          Fix(It->Src0);
          Fix(It->Src1);
          Fix(It->AddrReg);
          if (It->Recovery.K == MRecovery::Kind::InReg)
            Fix(It->Recovery.R);
          bool IdentityMove =
              (It->Op == MOp::MOV || It->Op == MOp::FMOV) &&
              It->Dest == It->Src0 && It->DestVar == InvalidVar &&
              !It->IsHoisted && !It->IsSunk;
          if (IdentityMove)
            It = Blk.Insts.erase(It);
          else
            ++It;
        }
      }
      continue; // Next round rebuilds liveness and the graph.
    }

    // --- Simplify / select.
    std::vector<unsigned> Degree(NR, 0);
    for (unsigned N2 = 0; N2 < NR; ++N2)
      Degree[N2] = static_cast<unsigned>(Adj[N2].count());

    std::vector<unsigned> Stack;
    std::vector<char> Removed(NR, 0);
    // Decision order must stay keyed by register identity, not dense id.
    // Sorting (key, id) pairs directly beats an indirect comparator: the
    // keys are unique, so the order is the same.
    std::vector<std::pair<std::uint64_t, unsigned>> VKeys;
    for (unsigned N2 = 0; N2 < NR; ++N2)
      if (RegOf[N2].isVirtual())
        VKeys.emplace_back(key(RegOf[N2]), N2);
    std::sort(VKeys.begin(), VKeys.end());
    std::vector<unsigned> Virtuals;
    Virtuals.reserve(VKeys.size());
    for (const auto &[VK, N2] : VKeys)
      Virtuals.push_back(N2);

    auto RemoveNode = [&](unsigned N2) {
      Stack.push_back(N2);
      Removed[N2] = 1;
      for (unsigned M : Adj[N2])
        if (!Removed[M] && Degree[M] > 0)
          --Degree[M];
    };

    unsigned Pending = static_cast<unsigned>(Virtuals.size());
    while (Pending > 0) {
      bool Simplified = false;
      for (unsigned N2 : Virtuals) {
        if (Removed[N2] || Degree[N2] >= K)
          continue;
        RemoveNode(N2);
        --Pending;
        Simplified = true;
      }
      if (Simplified)
        continue;
      // Optimistic spill candidate: cheapest weight/degree.
      unsigned Best = ~0u;
      double BestCost = 1e300;
      for (unsigned N2 : Virtuals) {
        if (Removed[N2])
          continue;
        double Cost =
            static_cast<double>(Weight[N2]) / (Degree[N2] + 1.0);
        // Avoid re-spilling spill-code vregs (tiny ranges, huge cost).
        if (SpillSlot.count(key(RegOf[N2])))
          Cost = 1e290;
        if (Cost < BestCost) {
          BestCost = Cost;
          Best = N2;
        }
      }
      RemoveNode(Best);
      --Pending;
    }

    // Select colors.  Physical register numbers fit in a 64-bit mask.
    std::unordered_map<std::uint64_t, unsigned> Color;
    std::vector<int> ColorOf(NR, -1);
    std::unordered_set<std::uint64_t> Spilled;
    for (auto It = Stack.rbegin(); It != Stack.rend(); ++It) {
      unsigned N2 = *It;
      std::uint64_t Used = 0;
      for (unsigned M : Adj[N2]) {
        if (ColorOf[M] >= 0) {
          Used |= 1ull << ColorOf[M];
          continue;
        }
        const Reg &MR = RegOf[M];
        if (!MR.isVirtual())
          Used |= 1ull << MR.N; // Precolored.
      }
      bool Assigned = false;
      for (unsigned C = firstColor(Cls); C < firstColor(Cls) + K; ++C)
        if (!(Used >> C & 1)) {
          ColorOf[N2] = static_cast<int>(C);
          Color[key(RegOf[N2])] = C;
          Assigned = true;
          break;
        }
      if (!Assigned)
        Spilled.insert(key(RegOf[N2]));
    }

    if (Spilled.empty()) {
      rewrite(Color, Cls);
      return true;
    }
    spill(Spilled, Cls);
  }
  return false;
}

void Allocator::spill(const std::unordered_set<std::uint64_t> &ToSpill,
                      RegClass Cls) {
  // Assign spill slots.
  std::unordered_map<std::uint64_t, std::int32_t> SlotOf;
  for (std::uint64_t N : ToSpill) {
    std::int32_t Slot = static_cast<std::int32_t>(MF.FrameSize++);
    SlotOf[N] = Slot;
    SpillSlot[N] = Slot;
  }
  std::uint32_t NextVReg = 1u << 20; // High range for spill temps.
  for (MachineBlock &B : MF.Blocks)
    for (std::size_t Idx = 0; Idx < B.Insts.size(); ++Idx) {
      // Reloads before uses.  Re-reference after each insertion: the
      // instruction vector reallocates.
      auto SpillSlotOf = [&](const Reg &R) -> std::int32_t {
        if (!R.isValid() || R.Cls != Cls || !R.isVirtual())
          return -1;
        auto SIt = SlotOf.find(key(R));
        return SIt == SlotOf.end() ? -1 : SIt->second;
      };
      for (Reg MInstr::*Field :
           {&MInstr::Src0, &MInstr::Src1, &MInstr::AddrReg}) {
        std::int32_t Slot = SpillSlotOf(B.Insts[Idx].*Field);
        if (Slot < 0)
          continue;
        Reg Fresh = Reg::virt(Cls, NextVReg++ - Reg::VirtBase);
        MInstr Load;
        Load.Op = Cls == RegClass::Fp ? MOp::LD : MOp::LW;
        Load.Dest = Fresh;
        Load.FrameSlot = Slot;
        Load.Stmt = B.Insts[Idx].Stmt;
        B.Insts.insert(B.Insts.begin() + static_cast<std::ptrdiff_t>(Idx),
                       std::move(Load));
        ++Idx;
        B.Insts[Idx].*Field = Fresh;
      }
      // Marker recovery values held in a spilled register now live in the
      // spill slot.
      MInstr &I = B.Insts[Idx];
      if (I.Recovery.K == MRecovery::Kind::InReg &&
          I.Recovery.R.Cls == Cls && I.Recovery.R.isVirtual()) {
        auto SIt = SlotOf.find(key(I.Recovery.R));
        if (SIt != SlotOf.end()) {
          I.Recovery.K = MRecovery::Kind::InFrame;
          I.Recovery.Frame = SIt->second;
          I.Recovery.R = Reg::invalid();
        }
      }
      // Stores after defs.
      std::int32_t DefSlot = SpillSlotOf(B.Insts[Idx].Dest);
      if (DefSlot >= 0) {
        Reg Fresh = Reg::virt(Cls, NextVReg++ - Reg::VirtBase);
        B.Insts[Idx].Dest = Fresh;
        MInstr Store;
        Store.Op = Cls == RegClass::Fp ? MOp::SD : MOp::SW;
        Store.Src0 = Fresh;
        Store.FrameSlot = DefSlot;
        Store.Stmt = B.Insts[Idx].Stmt;
        B.Insts.insert(B.Insts.begin() + static_cast<std::ptrdiff_t>(Idx) +
                           1,
                       std::move(Store));
        ++Idx;
      }
    }

  // If a *variable-homing* vreg was spilled, the variable now lives in
  // its spill slot (always resident after init).
  for (auto &[V, S] : MF.Storage)
    if (S.K == VarStorage::Kind::InReg && S.R.isVirtual()) {
      auto SIt = SlotOf.find(key(S.R));
      if (SIt != SlotOf.end()) {
        S.K = VarStorage::Kind::Frame;
        S.Frame = SIt->second;
      }
    }
}

void Allocator::rewrite(
    const std::unordered_map<std::uint64_t, unsigned> &Color, RegClass Cls) {
  auto Fix = [&](Reg &R) {
    if (!R.isValid() || R.Cls != Cls || !R.isVirtual())
      return;
    auto It = Color.find(key(R));
    if (It == Color.end()) {
      // A vreg the coloring never saw: flag the failure and substitute an
      // in-range register so downstream passes stay memory-safe while the
      // caller discards the function.
      RewriteFailed = true;
      R = Reg::phys(Cls, Cls == RegClass::Int ? R3K::FirstAllocInt
                                              : R3K::FirstAllocFp);
      return;
    }
    R = Reg::phys(Cls, It->second);
  };
  for (MachineBlock &B : MF.Blocks)
    for (MInstr &I : B.Insts) {
      // Spill/reload code minted after construction has no recorded
      // identity yet; everything else keeps its pre-coalesce vreg.
      if (I.Dest.isValid() && I.Dest.Cls == Cls && I.Dest.isVirtual() &&
          !I.DestVreg.isValid())
        I.DestVreg = I.Dest;
      Fix(I.Dest);
      Fix(I.Src0);
      Fix(I.Src1);
      Fix(I.AddrReg);
      if (I.Recovery.K == MRecovery::Kind::InReg &&
          I.Recovery.R.Cls == Cls && I.Recovery.R.isVirtual()) {
        // A recovery value referenced only by the marker may have died
        // entirely (no node in the graph): the value is gone and the
        // expected value cannot be reconstructed (paper Â§2.5 only
        // recovers values that survive somewhere).
        auto It = Color.find(key(I.Recovery.R));
        if (It != Color.end()) {
          if (!I.Recovery.SrcVreg.isValid())
            I.Recovery.SrcVreg = I.Recovery.R;
          I.Recovery.R = Reg::phys(Cls, It->second);
        } else {
          I.Recovery = MRecovery();
        }
      }
    }
  // Storage table.
  for (auto &[V, S] : MF.Storage)
    if (S.K == VarStorage::Kind::InReg && S.R.isVirtual() &&
        S.R.Cls == Cls) {
      auto It = Color.find(key(S.R));
      if (It != Color.end())
        S.R = Reg::phys(Cls, It->second);
      else
        S.K = VarStorage::Kind::None; // Var never materialized.
    }
}

void Allocator::computeDebugTables() {
  // Layout: assign addresses.
  MF.BlockAddr.clear();
  std::uint32_t Addr = 0;
  for (MachineBlock &B : MF.Blocks) {
    MF.BlockAddr.push_back(Addr);
    Addr += static_cast<std::uint32_t>(B.Insts.size());
  }
  const std::uint32_t Total = Addr;
  const unsigned NB = static_cast<unsigned>(MF.Blocks.size());

  // Statement (syntactic breakpoint) addresses.  Preference order keeps
  // the breakpoint at the statement's *source* position even when code
  // moved (paper §5: the simple syntactic breakpoint model):
  //   1. the lowest-address instruction of the statement that was not
  //      itself hoisted or sunk — the statement's first surviving action
  //      (a call of `v = f(...)` whose dead store was eliminated must
  //      still anchor the stop *before* the call executes),
  //   2. a debug marker of the statement (the spot where an eliminated or
  //      moved assignment used to be) when nothing real survives,
  //   3. any instruction of the statement.
  MF.StmtAddr.assign(MF.NumStmts, -1);
  std::vector<int> StmtPrio(MF.NumStmts, 99);
  Addr = 0;
  for (MachineBlock &B : MF.Blocks)
    for (MInstr &I : B.Insts) {
      if (I.Stmt != InvalidStmt && I.Stmt < MF.NumStmts) {
        // Hoisted/sunk copies never define the syntactic position: if a
        // statement survives only as moved copies, it has no breakpoint
        // (it was optimized away from its source location).
        int Prio = 99;
        if (I.Op == MOp::MDEAD || I.Op == MOp::MAVAIL)
          Prio = 1;
        else if (!I.IsHoisted && !I.IsSunk && I.Op != MOp::J)
          Prio = 0; // Jumps stay at 99: structural glue, never an anchor.
        if (Prio < StmtPrio[I.Stmt]) {
          StmtPrio[I.Stmt] = Prio;
          MF.StmtAddr[I.Stmt] = static_cast<std::int32_t>(Addr);
        }
      }
      ++Addr;
    }

  // Residence of register-homed variables: V is resident at address A iff
  // every definition of V's physical register reaching A is an
  // instruction completing an assignment to V (DestVar == V).  This is a
  // forward all-paths ("must own") bit-vector problem, one bit per
  // register-homed variable — sound, and conservative at joins exactly
  // like the live-range model of [3].
  std::vector<VarId> RegVars;
  std::unordered_map<VarId, unsigned> RegVarIdx;
  for (const auto &[V, S] : MF.Storage)
    if (S.K == VarStorage::Kind::InReg) {
      RegVarIdx[V] = static_cast<unsigned>(RegVars.size());
      RegVars.push_back(V);
    }
  std::sort(RegVars.begin(), RegVars.end());
  for (unsigned Idx = 0; Idx < RegVars.size(); ++Idx)
    RegVarIdx[RegVars[Idx]] = Idx;
  const unsigned NV = static_cast<unsigned>(RegVars.size());

  std::vector<std::vector<unsigned>> Preds(NB), Succs(NB);
  std::vector<unsigned> Exits;
  for (unsigned B = 0; B < NB; ++B) {
    for (unsigned S : MF.Blocks[B].Succs)
      Succs[B].push_back(S);
    for (unsigned P : MF.Blocks[B].Preds)
      Preds[B].push_back(P);
    if (!MF.Blocks[B].Insts.empty() &&
        MF.Blocks[B].Insts.back().Op == MOp::RET)
      Exits.push_back(B);
  }

  auto RegKey = [](const Reg &R) {
    return (static_cast<std::uint64_t>(R.Cls == RegClass::Fp) << 32) | R.N;
  };
  // Physical-register key of each register-homed variable, precomputed:
  // OwnTransfer runs per definition of every instruction and must not
  // hash into Storage each time.
  std::vector<std::uint64_t> VarRegKey(NV);
  for (unsigned Idx = 0; Idx < NV; ++Idx)
    VarRegKey[Idx] = RegKey(MF.Storage.at(RegVars[Idx]).R);
  auto OwnTransfer = [&](const MInstr &I, BitVector &Own) {
    forEachMDef(I, [&](const Reg &D) {
      std::uint64_t DK = RegKey(D);
      for (unsigned Idx = 0; Idx < NV; ++Idx) {
        if (VarRegKey[Idx] != DK)
          continue;
        if (I.DestVar == RegVars[Idx] && D == I.Dest)
          Own.set(Idx);
        else
          Own.reset(Idx);
      }
    });
  };

  if (NV != 0) {
    DataflowProblem P;
    P.Dir = FlowDir::Forward;
    P.Meet = FlowMeet::Intersect;
    P.Universe = NV;
    P.Gen.assign(NB, BitVector(NV));
    P.Kill.assign(NB, BitVector(NV));
    P.Boundary = BitVector(NV);
    for (unsigned B = 0; B < NB; ++B) {
      // The per-bit transfer is monotone (set/reset independent of the
      // input), so Gen = f(0) and Kill = ~f(1) reproduce it exactly:
      // Out = (In - Kill) | Gen == In ? f(1) : f(0) per bit.  The
      // decision is input-independent, so one walk updates both states.
      BitVector Flow(NV, true), Zero(NV);
      for (const MInstr &I : MF.Blocks[B].Insts)
        forEachMDef(I, [&](const Reg &D) {
          std::uint64_t DK = RegKey(D);
          for (unsigned Idx = 0; Idx < NV; ++Idx) {
            if (VarRegKey[Idx] != DK)
              continue;
            if (I.DestVar == RegVars[Idx] && D == I.Dest) {
              Flow.set(Idx);
              Zero.set(Idx);
            } else {
              Flow.reset(Idx);
              Zero.reset(Idx);
            }
          }
        });
      P.Gen[B] = Zero;
      P.Kill[B] = Flow;
      P.Kill[B].flip();
      P.Kill[B].subtract(P.Gen[B]);
    }
    DataflowResult Own =
        solveDataflowGeneric(NB, Preds, Succs, Exits, P);

    // One walk of the code for all variables: expand the block-entry
    // solution instruction by instruction, scattering each live bit into
    // its variable's per-address residence map.
    std::vector<BitVector> Res(NV, BitVector(Total));
    for (unsigned B = 0; B < NB; ++B) {
      BitVector State = Own.In[B];
      std::uint32_t A = MF.BlockAddr[B];
      for (const MInstr &I : MF.Blocks[B].Insts) {
        for (unsigned Idx : State)
          Res[Idx].set(A);
        OwnTransfer(I, State);
        ++A;
      }
    }
    for (unsigned Idx = 0; Idx < NV; ++Idx)
      MF.ResidentAt[RegVars[Idx]] = std::move(Res[Idx]);
  }

  // Recovery validity for markers whose recovery value lives in a
  // register.  Sound rule:
  //  * at the marker, the register must actually hold the recovery
  //    source's value ("ownership": the reaching definitions of the
  //    register are definitions of the source vreg), and
  //  * plain recoveries stay valid until *any* redefinition of the
  //    register (a new value of the source changes the expected value;
  //    another value recycled into the register destroys it), while
  //  * IV-invariant recoveries (paper \xc2\xa72.5 strength reduction) survive
  //    updates *of the source itself* but die when another value takes
  //    the register.
  // The ownership solution depends only on (source vreg, physical
  // register); markers sharing that pair (common: several markers of the
  // same variable) reuse one solve.
  std::map<std::pair<std::uint64_t, std::uint64_t>, BitVector> OwnAtCache;
  for (unsigned B = 0; B < NB; ++B) {
    std::uint32_t A = MF.BlockAddr[B];
    for (std::size_t Idx = 0; Idx < MF.Blocks[B].Insts.size(); ++Idx, ++A) {
      const MInstr &I = MF.Blocks[B].Insts[Idx];
      if (I.Op != MOp::MDEAD || I.Recovery.K != MRecovery::Kind::InReg)
        continue;
      const Reg Src = I.Recovery.SrcVreg;
      const std::uint64_t PK = RegKey(I.Recovery.R);
      // Ownership: forward all-paths 1-bit problem.
      auto RecTransfer = [&](const MInstr &CI, BitVector &Own) {
        bool DefinesP = false;
        forEachMDef(CI, [&](const Reg &D) { DefinesP |= RegKey(D) == PK; });
        if (!DefinesP)
          return;
        if (CI.DestVreg == Src && RegKey(CI.Dest) == PK)
          Own.set(0);
        else
          Own.reset(0);
      };
      auto CacheIt = OwnAtCache.find({key(Src), PK});
      if (CacheIt == OwnAtCache.end()) {
        DataflowProblem OP;
        OP.Dir = FlowDir::Forward;
        OP.Meet = FlowMeet::Intersect;
        OP.Universe = 1;
        OP.Gen.assign(NB, BitVector(1));
        OP.Kill.assign(NB, BitVector(1));
        OP.Boundary = BitVector(1);
        for (unsigned B2 = 0; B2 < NB; ++B2) {
          BitVector Flow(1, true), Zero(1);
          for (const MInstr &CI : MF.Blocks[B2].Insts) {
            RecTransfer(CI, Flow);
            RecTransfer(CI, Zero);
          }
          OP.Gen[B2] = Zero;
          OP.Kill[B2] = Flow;
          OP.Kill[B2].flip();
          OP.Kill[B2].subtract(OP.Gen[B2]);
        }
        DataflowResult Own =
            solveDataflowGeneric(NB, Preds, Succs, Exits, OP);
        BitVector Expanded(Total);
        for (unsigned B2 = 0; B2 < NB; ++B2) {
          BitVector State = Own.In[B2];
          std::uint32_t A2 = MF.BlockAddr[B2];
          for (const MInstr &CI : MF.Blocks[B2].Insts) {
            if (State.test(0))
              Expanded.set(A2);
            RecTransfer(CI, State);
            ++A2;
          }
        }
        CacheIt = OwnAtCache.emplace(std::make_pair(key(Src), PK),
                                     std::move(Expanded))
                      .first;
      }
      const BitVector &OwnAt = CacheIt->second;

      BitVector Valid(Total);
      if (I.Recovery.IsIV) {
        Valid = OwnAt;
      } else if (OwnAt.test(A)) {
        // The register must hold the recovery source's value at the
        // marker in the first place (ownership); then:
        // Plain recovery: valid at an address iff on *every* path from
        // the function entry the marker has been passed and the register
        // has not been redefined since (a redefinition either changes
        // the source's value, altering the expected value, or recycles
        // the register for another value).  Forward all-paths problem:
        // gen at the marker, kill at any def of the register.
        const MInstr *MarkerPtr = &I;
        auto ValidTransfer = [&](const MInstr &CI, BitVector &St) {
          if (&CI == MarkerPtr) {
            St.set(0);
            return;
          }
          bool Redefines = false;
          forEachMDef(CI, [&](const Reg &D) { Redefines |= RegKey(D) == PK; });
          if (Redefines)
            St.reset(0);
        };
        DataflowProblem VP;
        VP.Dir = FlowDir::Forward;
        VP.Meet = FlowMeet::Intersect;
        VP.Universe = 1;
        VP.Gen.assign(NB, BitVector(1));
        VP.Kill.assign(NB, BitVector(1));
        VP.Boundary = BitVector(1);
        for (unsigned B2 = 0; B2 < NB; ++B2) {
          BitVector Flow(1, true), Zero(1);
          for (const MInstr &CI : MF.Blocks[B2].Insts) {
            ValidTransfer(CI, Flow);
            ValidTransfer(CI, Zero);
          }
          VP.Gen[B2] = Zero;
          VP.Kill[B2] = Flow;
          VP.Kill[B2].flip();
          VP.Kill[B2].subtract(VP.Gen[B2]);
        }
        DataflowResult VR =
            solveDataflowGeneric(NB, Preds, Succs, Exits, VP);
        for (unsigned B2 = 0; B2 < NB; ++B2) {
          BitVector State = VR.In[B2];
          std::uint32_t A2 = MF.BlockAddr[B2];
          for (const MInstr &CI : MF.Blocks[B2].Insts) {
            if (State.test(0))
              Valid.set(A2);
            ValidTransfer(CI, State);
            ++A2;
          }
        }
      }
      MF.RecoveryValidAt[A] = std::move(Valid);
    }
  }
}

bool Allocator::run() {
  return allocateClass(RegClass::Int) && allocateClass(RegClass::Fp);
}

Status sldb::allocateRegistersE(MachineFunction &MF,
                                const ProgramInfo &Info) {
  Allocator A(MF, Info);
  if (!A.run())
    return Status::error(ErrorCode::RegAllocFailure,
                         "register allocation failed to converge on '" +
                             MF.Name + "'");
  if (A.RewriteFailed)
    return Status::error(ErrorCode::RegAllocFailure,
                         "uncolored virtual register in '" + MF.Name + "'");
  A.computeDebugTables();
  return Status::success();
}

void sldb::allocateRegisters(MachineFunction &MF, const ProgramInfo &Info) {
  Status S = allocateRegistersE(MF, Info);
  if (!S.ok()) {
    std::fprintf(stderr, "sldb: %s\n", S.str().c_str());
    std::abort();
  }
}
