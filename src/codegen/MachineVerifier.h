//===- codegen/MachineVerifier.h - Machine-code checks ----------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural checks over final machine code: registers must be physical
/// and in range, memory operands well-formed, branch targets valid,
/// blocks terminated, debug tables consistent (statement addresses inside
/// the function, marker payloads valid, residence bitvectors sized).
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_CODEGEN_MACHINEVERIFIER_H
#define SLDB_CODEGEN_MACHINEVERIFIER_H

#include "codegen/MachineIR.h"

#include <string>
#include <vector>

namespace sldb {

/// Checks one compiled function; appends problems to \p Errors.
bool verifyMachineFunction(const MachineFunction &MF,
                           const ProgramInfo &Info,
                           std::vector<std::string> &Errors);

/// Checks a whole compiled module.
bool verifyMachineModule(const MachineModule &MM,
                         std::vector<std::string> &Errors);

} // namespace sldb

#endif // SLDB_CODEGEN_MACHINEVERIFIER_H
