//===- codegen/MachineIR.h - R3K machine representation ---------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine-level representation for the virtual R3K target, a MIPS-like
/// load/store RISC with the paper's register file: 26 integer and 16
/// floating-point registers available for allocation.  Debug annotations
/// (statement ids, hoisted/sunk flags, source-assignment destinations,
/// dead/avail markers with recovery payloads) are transferred from the IR
/// during instruction selection and survive register allocation and
/// scheduling — the "lowering" step of paper §3.
///
/// Addresses are instruction indices into the flattened per-function code;
/// markers occupy an address but execute as no-ops and are excluded from
/// dynamic instruction counts.
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_CODEGEN_MACHINEIR_H
#define SLDB_CODEGEN_MACHINEIR_H

#include "ir/IR.h"
#include "support/BitVector.h"
#include "support/PodVector.h"

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace sldb {

//===----------------------------------------------------------------------===//
// Registers
//===----------------------------------------------------------------------===//

/// Register classes of the R3K.
enum class RegClass : std::uint8_t { Int, Fp };

/// A register id: physical below the virtual base, virtual above it.
struct Reg {
  RegClass Cls = RegClass::Int;
  std::uint32_t N = 0;

  static constexpr std::uint32_t VirtBase = 1u << 16;

  static Reg phys(RegClass Cls, std::uint32_t N) { return {Cls, N}; }
  static Reg virt(RegClass Cls, std::uint32_t N) {
    return {Cls, VirtBase + N};
  }

  bool isVirtual() const { return N >= VirtBase; }
  bool isValid() const { return N != ~0u; }
  static Reg invalid() { return {RegClass::Int, ~0u}; }

  bool operator==(const Reg &RHS) const {
    return Cls == RHS.Cls && N == RHS.N;
  }
  bool operator!=(const Reg &RHS) const { return !(*this == RHS); }

  std::string str() const;
};

/// R3K register-file parameters (paper §4: "on a machine like the MIPS
/// R3000, there are only 26 integer and 16 floating point registers
/// available for register allocation").
struct R3K {
  static constexpr unsigned NumIntRegs = 32;
  static constexpr unsigned NumFpRegs = 20;

  // Reserved integer registers: r0 (zero), r1/r2 (assembler scratch),
  // r3 (integer return value), r30/r31 (sp/ra, unused by allocation).
  static constexpr unsigned IntRetReg = 3;
  static constexpr unsigned FirstIntArg = 4; ///< r4..r11: arguments.
  static constexpr unsigned NumArgRegs = 8;
  static constexpr unsigned FirstAllocInt = 4;
  static constexpr unsigned LastAllocInt = 29; ///< 26 allocatable.

  // FP: f0 return value, f1-f3 scratch, f4..f19 allocatable (16).
  static constexpr unsigned FpRetReg = 0;
  static constexpr unsigned FirstFpArg = 4; ///< f4..f11.
  static constexpr unsigned FirstAllocFp = 4;
  static constexpr unsigned LastAllocFp = 19; ///< 16 allocatable.
};

//===----------------------------------------------------------------------===//
// Instructions
//===----------------------------------------------------------------------===//

/// Machine opcodes.
enum class MOp : std::uint8_t {
  // Integer ALU (Dest, Src0, Src1).
  ADD,
  SUB,
  MUL,
  DIV,
  REM,
  AND,
  OR,
  XOR,
  SLL,
  SRA,
  SEQ,
  SNE,
  SLT,
  SLE,
  SGT,
  SGE,
  NEG,
  NOT,
  MOV,
  LI, // Dest, Imm.
  // Floating point.
  FADD,
  FSUB,
  FMUL,
  FDIV,
  FNEG,
  FMOV,
  LID, // Dest, FImm.
  FEQ, // Int dest, fp sources.
  FNE,
  FLT,
  FLE,
  FGT,
  FGE,
  CVTID, // Fp dest <- int src.
  CVTDI, // Int dest <- fp src.
  // Memory (word addressed).  LW/SW integer, LD/SD double.
  LW, // Dest, [addr reg] or frame/global operand.
  SW, // Src, [addr reg] or frame/global operand.
  LD,
  SD,
  LA, // Dest <- address of frame slot / global.
  // Control.
  J,    // Target block.
  BNEZ, // Cond reg, target block (fall through = next op J).
  JAL,  // Callee function index.
  RET,
  // Runtime services.
  PRINTI, // Src int reg.
  PRINTD, // Src fp reg.
  // Debug pseudo-instructions (zero-size at runtime).
  MDEAD,
  MAVAIL,
  MNOP
};

const char *mopName(MOp Op);

/// How an eliminated variable's expected value can be reconstructed at
/// run time (machine form of the IR marker Recovery value).
struct MRecovery {
  enum class Kind : std::uint8_t { None, Imm, FImm, InReg, InFrame };
  Kind K = Kind::None;
  std::int64_t Imm = 0;
  double FImm = 0.0;
  Reg R = Reg::invalid();
  std::int32_t Frame = 0;
  std::int64_t Scale = 1; ///< expected = recovered / Scale.
  bool IsIV = false;      ///< Loop-invariant relation (paper §2.5).

  /// Pre-allocation identity of R (the virtual register the recovery
  /// value lived in); kept by the register allocator so the validity
  /// analysis can tell the source's own definitions apart from other
  /// values recycled into the same physical register.
  Reg SrcVreg = Reg::invalid();

  /// When the recovery source is a source *variable* (the `c = a` case of
  /// paper §2.5), its identity: the classifier must additionally check
  /// that the source variable is itself unendangered at the marker —
  /// otherwise the alias would launder a stale value (e.g. a deleted
  /// self-copy `v = v`).
  VarId SrcVar = InvalidVar;
};

/// One machine instruction.
struct MInstr {
  MOp Op = MOp::MNOP;
  Reg Dest = Reg::invalid();
  Reg Src0 = Reg::invalid();
  Reg Src1 = Reg::invalid();
  std::int64_t Imm = 0;
  double FImm = 0.0;

  /// Memory operand: one of AddrReg (register indirect), FrameSlot, or
  /// GlobalVar.
  Reg AddrReg = Reg::invalid();
  std::int32_t FrameSlot = -1;
  VarId GlobalVar = InvalidVar;

  std::uint32_t TargetBlock = ~0u; ///< J/BNEZ.
  FuncId Callee = InvalidFunc;     ///< JAL.

  /// Pre-allocation identity of Dest (set by the register allocator's
  /// rewrite); used by the debug-table construction only.
  Reg DestVreg = Reg::invalid();

  //===--- Debug annotations ----------------------------------------------===//
  StmtId Stmt = InvalidStmt;
  /// Source variable whose assignment this instruction completes.
  VarId DestVar = InvalidVar;
  bool IsHoisted = false;
  bool IsSunk = false;
  HoistKeyId HoistKey = InvalidHoistKey;
  /// Markers.
  VarId MarkVar = InvalidVar;
  StmtId MarkStmt = InvalidStmt;
  MRecovery Recovery;

  bool isMarker() const {
    return Op == MOp::MDEAD || Op == MOp::MAVAIL || Op == MOp::MNOP;
  }
  bool isBranch() const { return Op == MOp::J || Op == MOp::BNEZ; }
  bool isTerminatorLike() const {
    return isBranch() || Op == MOp::RET;
  }
};

//===----------------------------------------------------------------------===//
// Blocks, functions, modules
//===----------------------------------------------------------------------===//

/// A machine basic block; mirrors its IR block 1:1.  The instruction
/// buffer is arena-backed when the block was built by instruction
/// selection (MachineModule::arena); hand-built blocks default to the
/// heap and need no arena.
struct MachineBlock {
  std::uint32_t Id = 0;
  std::string Name;
  PodVector<MInstr> Insts;
  std::vector<std::uint32_t> Succs, Preds; ///< Block indices.
};

/// Where a variable lives at run time.
struct VarStorage {
  enum class Kind : std::uint8_t {
    None,     ///< Never materialized (nonresident everywhere).
    InReg,    ///< Promoted to a register (resident while live).
    Frame,    ///< Frame slot (resident once initialized).
    GlobalMem ///< Global memory (resident once initialized).
  };
  Kind K = Kind::None;
  Reg R = Reg::invalid();
  std::int32_t Frame = -1;
  std::size_t GlobalAddr = 0;
};

/// One compiled function.
struct MachineFunction {
  FuncId Id = InvalidFunc;
  std::string Name;
  std::vector<MachineBlock> Blocks;
  std::uint32_t FrameSize = 0; ///< In words.
  std::vector<HoistKey> HoistKeys;
  std::uint32_t NumStmts = 0;

  /// Address (function-local instruction index) of each block start;
  /// filled by layout.
  std::vector<std::uint32_t> BlockAddr;

  /// stmt -> lowest function-local address of an instruction (or marker)
  /// annotated with the statement; -1 if the statement vanished.
  std::vector<std::int32_t> StmtAddr;

  /// Runtime storage per variable (locals and params of this function).
  std::unordered_map<VarId, VarStorage> Storage;

  /// For register-homed variables: bit per function-local address, set
  /// where the variable's value is live in its register (the conservative
  /// live-range residence model of [Adl-Tabatabai & Gross, POPL'93]).
  std::unordered_map<VarId, BitVector> ResidentAt;

  /// For dead markers whose recovery value lives in a register: bit per
  /// function-local address where that register still holds the recovery
  /// value.  Keyed by the marker's function-local address.
  std::unordered_map<std::uint32_t, BitVector> RecoveryValidAt;

  /// Marker census taken at instruction selection (the backend never
  /// deletes markers).  The AnnotationVerifier recounts and treats a
  /// mismatch as dropped debug bookkeeping: lost markers silently erase
  /// endangerment evidence, so the whole function degrades.
  std::uint32_t ExpectedDeadMarkers = 0;
  std::uint32_t ExpectedAvailMarkers = 0;

  /// Debug-bookkeeping integrity findings inherited from the IR pipeline
  /// (see IRFunction::AnnotationFindings); the Classifier merges these
  /// with its own machine-level verification and degrades the affected
  /// variables.
  std::vector<AnnotationFinding> IntegrityFindings;

  std::uint32_t numInstrs() const {
    std::uint32_t N = 0;
    for (const MachineBlock &B : Blocks)
      N += static_cast<std::uint32_t>(B.Insts.size());
    return N;
  }
};

/// A compiled module.
struct MachineModule {
  const ProgramInfo *Info = nullptr;
  std::vector<MachineFunction> Funcs;
  std::unordered_map<VarId, std::size_t> GlobalAddr; ///< Word addresses.
  std::size_t GlobalWords = 0;
  std::vector<std::pair<std::size_t, Value>> GlobalInits;

  const MachineFunction *findFunc(const std::string &Name) const {
    for (const MachineFunction &F : Funcs)
      if (F.Name == Name)
        return &F;
    return nullptr;
  }

  /// Arena for instruction buffers.  Created on first use; instruction
  /// selection can instead point it at an external arena (batch mode:
  /// one arena shared by the IR and machine module, reset together).
  Arena *arena() {
    if (!CodeArena) {
      OwnedArena = std::make_unique<Arena>(1 << 14);
      CodeArena = OwnedArena.get();
    }
    return CodeArena;
  }
  void setArena(Arena *Ext) { CodeArena = Ext; }

private:
  std::unique_ptr<Arena> OwnedArena; ///< Null when borrowing.
  Arena *CodeArena = nullptr;
};

/// Renders one machine instruction.
std::string printMInstr(const MInstr &I, const MachineFunction &F,
                        const ProgramInfo *Info);

/// Renders a machine function with addresses.
std::string printMachineFunction(const MachineFunction &F,
                                 const ProgramInfo *Info);

} // namespace sldb

#endif // SLDB_CODEGEN_MACHINEIR_H
