//===- codegen/Scheduler.cpp ----------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "codegen/Scheduler.h"

#include "codegen/RegAlloc.h"

#include <algorithm>

using namespace sldb;

unsigned sldb::instrLatency(MOp Op) {
  switch (Op) {
  case MOp::LW:
  case MOp::LD:
    return 2;
  case MOp::MUL:
    return 3;
  case MOp::DIV:
  case MOp::REM:
  case MOp::FDIV:
    return 8;
  case MOp::FADD:
  case MOp::FSUB:
    return 2;
  case MOp::FMUL:
    return 4;
  case MOp::CVTID:
  case MOp::CVTDI:
    return 2;
  default:
    return 1;
  }
}

namespace {

bool hasMemoryEffect(const MInstr &I) {
  switch (I.Op) {
  case MOp::SW:
  case MOp::SD:
  case MOp::JAL:
  case MOp::PRINTI:
  case MOp::PRINTD:
    return true;
  default:
    return false;
  }
}

bool readsMemory(const MInstr &I) {
  switch (I.Op) {
  case MOp::LW:
  case MOp::LD:
  case MOp::JAL:
    return true;
  default:
    return false;
  }
}

/// Schedules one region (no markers, no terminators inside).
void scheduleRegion(std::vector<MInstr> &Region) {
  const std::size_t N = Region.size();
  if (N < 2)
    return;

  // Dependence DAG.
  std::vector<std::vector<std::size_t>> Succs(N);
  std::vector<unsigned> PredCount(N, 0);
  auto AddDep = [&](std::size_t From, std::size_t To) {
    for (std::size_t S : Succs[From])
      if (S == To)
        return;
    Succs[From].push_back(To);
    ++PredCount[To];
  };

  // Use/def sets once per instruction, not once per pair.
  std::vector<std::vector<Reg>> Defs(N), Uses(N);
  for (std::size_t I2 = 0; I2 < N; ++I2) {
    Defs[I2] = minstrDefs(Region[I2]);
    Uses[I2] = minstrUses(Region[I2]);
  }

  for (std::size_t J = 0; J < N; ++J) {
    for (std::size_t I2 = 0; I2 < J; ++I2) {
      const MInstr &A = Region[I2];
      const MInstr &B = Region[J];
      bool Dep = false;
      // Register dependences.
      for (const Reg &D : Defs[I2]) {
        for (const Reg &U : Uses[J])
          Dep |= D == U; // RAW.
        for (const Reg &D2 : Defs[J])
          Dep |= D == D2; // WAW.
      }
      for (const Reg &U : Uses[I2])
        for (const Reg &D2 : Defs[J])
          Dep |= U == D2; // WAR.
      // Memory/effect ordering: side effects stay ordered; loads order
      // against effects but not against each other.
      if (hasMemoryEffect(A) && (hasMemoryEffect(B) || readsMemory(B)))
        Dep = true;
      if (readsMemory(A) && hasMemoryEffect(B))
        Dep = true;
      if (Dep)
        AddDep(I2, J);
    }
  }

  // Critical-path heights.
  std::vector<unsigned> Height(N, 0);
  for (std::size_t I2 = N; I2-- > 0;) {
    unsigned H = instrLatency(Region[I2].Op);
    for (std::size_t S : Succs[I2])
      H = std::max(H, instrLatency(Region[I2].Op) + Height[S]);
    Height[I2] = H;
  }

  // Cycle-driven list scheduling.
  std::vector<MInstr> Out;
  Out.reserve(N);
  std::vector<bool> Scheduled(N, false);
  std::vector<unsigned> ReadyAt(N, 0);
  unsigned Cycle = 0;
  std::size_t Done = 0;
  while (Done < N) {
    std::size_t Best = N;
    for (std::size_t I2 = 0; I2 < N; ++I2) {
      if (Scheduled[I2] || PredCount[I2] != 0 || ReadyAt[I2] > Cycle)
        continue;
      if (Best == N || Height[I2] > Height[Best] ||
          (Height[I2] == Height[Best] && I2 < Best))
        Best = I2;
    }
    if (Best == N) {
      ++Cycle;
      continue;
    }
    Scheduled[Best] = true;
    ++Done;
    Out.push_back(Region[Best]);
    unsigned Finish = Cycle + instrLatency(Region[Best].Op);
    for (std::size_t S : Succs[Best]) {
      --PredCount[S];
      ReadyAt[S] = std::max(ReadyAt[S], Finish);
    }
    ++Cycle;
  }
  Region = std::move(Out);
}

} // namespace

void sldb::scheduleFunction(MachineFunction &MF) {
  for (MachineBlock &B : MF.Blocks) {
    std::vector<MInstr> NewInsts;
    NewInsts.reserve(B.Insts.size());
    std::vector<MInstr> Region;
    auto Flush = [&]() {
      scheduleRegion(Region);
      for (MInstr &I : Region)
        NewInsts.push_back(std::move(I));
      Region.clear();
    };
    for (MInstr &I : B.Insts) {
      if (I.isMarker() || I.isTerminatorLike() || I.Op == MOp::JAL) {
        // Barriers keep markers, branches and calls anchored.
        Flush();
        NewInsts.push_back(std::move(I));
        continue;
      }
      Region.push_back(std::move(I));
    }
    Flush();
    B.Insts.assign(NewInsts.begin(), NewInsts.end());
  }
}
