//===- codegen/ISel.cpp ---------------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "codegen/ISel.h"

#include "codegen/RegAlloc.h"
#include "codegen/Scheduler.h"
#include "support/Casting.h"
#include "support/FaultInjector.h"

#include <cstdio>
#include <cstdlib>
#include <unordered_map>

using namespace sldb;

namespace {

class FunctionSelector {
public:
  FunctionSelector(const IRFunction &F, const IRModule &M,
                   MachineModule &MM, const CodegenOptions &Opts)
      : F(F), Info(*M.Info), MM(MM), Opts(Opts) {}

  MachineFunction run();

  /// Non-empty when selection met IR no lowering rule covers (an array
  /// used as a scalar, a call exceeding the R3K argument registers);
  /// the machine function is unusable and the caller must discard it.
  std::string Err;

private:
  void selectionError(const std::string &Msg) {
    if (Err.empty())
      Err = F.Name + ": " + Msg;
  }

  RegClass classFor(IRType Ty) const {
    return Ty == IRType::Double ? RegClass::Fp : RegClass::Int;
  }
  Reg newVReg(RegClass Cls) { return Reg::virt(Cls, NextVReg++); }
  Reg newVReg(IRType Ty) { return newVReg(classFor(Ty)); }

  MInstr &emit(MInstr I) {
    // Every machine instruction selected from a hoisted/sunk IR
    // instruction carries the flags (a moved assignment's operand
    // materializations moved with it; none of them may anchor the
    // statement's syntactic breakpoint).
    if (CurIRInstr) {
      I.IsHoisted |= CurIRInstr->IsHoisted;
      I.IsSunk |= CurIRInstr->IsSunk;
    }
    Cur->Insts.push_back(std::move(I));
    return Cur->Insts.back();
  }

  bool isPromoted(VarId V) const {
    if (!Opts.PromoteVars)
      return false;
    const VarInfo &VI = Info.var(V);
    return VI.isPromotable() && VI.Owner == F.Id;
  }

  /// Frame slot of a memory-homed local; allocates on first touch.
  std::int32_t frameSlot(VarId V) {
    auto It = FrameOf.find(V);
    if (It != FrameOf.end())
      return It->second;
    const VarInfo &VI = Info.var(V);
    std::int32_t Slot = static_cast<std::int32_t>(FrameSize);
    FrameSize += VI.ArraySize ? VI.ArraySize : 1;
    FrameOf[V] = Slot;
    return Slot;
  }

  /// The dedicated vreg of a promoted variable.
  Reg varReg(VarId V) {
    auto It = VRegOf.find(V);
    if (It != VRegOf.end())
      return It->second;
    Reg R = newVReg(classFor(irTypeFor(Info.var(V).Ty)));
    VRegOf[V] = R;
    return R;
  }

  Reg tempReg(TempId T, IRType Ty) {
    auto It = TRegOf.find(T);
    if (It != TRegOf.end())
      return It->second;
    Reg R = newVReg(Ty);
    TRegOf[T] = R;
    return R;
  }

  /// Materializes an operand value into a register.
  Reg useValue(const Value &V, StmtId Stmt);

  /// Emits the instruction(s) storing \p Src as the new value of variable
  /// \p V, annotated as the completion of the source assignment \p Src
  /// came from.
  void defineVar(VarId V, Reg Src, const Instr &From);

  MRecovery lowerRecovery(const Instr &Marker);
  void selectInstr(const Instr &I);
  void lowerCall(const Instr &I);

  const IRFunction &F;
  const ProgramInfo &Info;
  MachineModule &MM;
  const CodegenOptions &Opts;

  MachineFunction MF;
  MachineBlock *Cur = nullptr;
  const Instr *CurIRInstr = nullptr;
  std::uint32_t NextVReg = 0;
  std::uint32_t FrameSize = 0;
  std::unordered_map<VarId, std::int32_t> FrameOf;
  std::unordered_map<VarId, Reg> VRegOf;
  std::unordered_map<TempId, Reg> TRegOf;
  std::unordered_map<const BasicBlock *, std::uint32_t> BlockIdx;
};

} // namespace

Reg FunctionSelector::useValue(const Value &V, StmtId Stmt) {
  switch (V.K) {
  case Value::Kind::ConstInt: {
    Reg R = newVReg(RegClass::Int);
    MInstr LI;
    LI.Op = MOp::LI;
    LI.Dest = R;
    LI.Imm = V.IntVal;
    LI.Stmt = Stmt;
    emit(std::move(LI));
    return R;
  }
  case Value::Kind::ConstDouble: {
    Reg R = newVReg(RegClass::Fp);
    MInstr LD;
    LD.Op = MOp::LID;
    LD.Dest = R;
    LD.FImm = V.DblVal;
    LD.Stmt = Stmt;
    emit(std::move(LD));
    return R;
  }
  case Value::Kind::Temp:
    return tempReg(V.Id, V.Ty);
  case Value::Kind::Var: {
    VarId Id = V.Id;
    const VarInfo &VI = Info.var(Id);
    if (!VI.isScalar()) {
      selectionError("array '" + VI.Name + "' used as a value operand");
      return newVReg(RegClass::Int);
    }
    if (isPromoted(Id))
      return varReg(Id);
    // Memory-homed: load from frame or global.
    bool IsDouble = VI.Ty.isDouble();
    Reg R = newVReg(IsDouble ? RegClass::Fp : RegClass::Int);
    MInstr Load;
    Load.Op = IsDouble ? MOp::LD : MOp::LW;
    Load.Dest = R;
    Load.Stmt = Stmt;
    if (VI.Storage == StorageKind::Global)
      Load.GlobalVar = Id;
    else
      Load.FrameSlot = frameSlot(Id);
    emit(std::move(Load));
    return R;
  }
  case Value::Kind::None:
    break;
  }
  sldb_unreachable("bad operand value");
}

void FunctionSelector::defineVar(VarId V, Reg Src, const Instr &From) {
  const VarInfo &VI = Info.var(V);
  bool IsDouble = VI.Ty.isDouble();
  if (isPromoted(V)) {
    MInstr Mov;
    Mov.Op = IsDouble ? MOp::FMOV : MOp::MOV;
    Mov.Dest = varReg(V);
    Mov.Src0 = Src;
    Mov.Stmt = From.Stmt;
    Mov.DestVar = From.IsSourceAssign || From.Dest.isVar() ? V : InvalidVar;
    Mov.IsHoisted = From.IsHoisted;
    Mov.IsSunk = From.IsSunk;
    Mov.HoistKey = From.HoistKey;
    emit(std::move(Mov));
    return;
  }
  MInstr Store;
  Store.Op = IsDouble ? MOp::SD : MOp::SW;
  Store.Src0 = Src;
  Store.Stmt = From.Stmt;
  Store.DestVar = V;
  Store.IsHoisted = From.IsHoisted;
  Store.IsSunk = From.IsSunk;
  Store.HoistKey = From.HoistKey;
  if (VI.Storage == StorageKind::Global)
    Store.GlobalVar = V;
  else
    Store.FrameSlot = frameSlot(V);
  emit(std::move(Store));
}

MRecovery FunctionSelector::lowerRecovery(const Instr &Marker) {
  MRecovery R;
  const Value &V = Marker.Recovery;
  R.Scale = Marker.RecoveryScale;
  R.IsIV = Marker.RecoveryIsIV;
  switch (V.K) {
  case Value::Kind::None:
    return R;
  case Value::Kind::ConstInt:
    R.K = MRecovery::Kind::Imm;
    R.Imm = V.IntVal;
    return R;
  case Value::Kind::ConstDouble:
    R.K = MRecovery::Kind::FImm;
    R.FImm = V.DblVal;
    return R;
  case Value::Kind::Temp:
    R.K = MRecovery::Kind::InReg;
    R.R = tempReg(V.Id, V.Ty);
    return R;
  case Value::Kind::Var: {
    VarId Id = V.Id;
    R.SrcVar = Id;
    if (isPromoted(Id)) {
      R.K = MRecovery::Kind::InReg;
      R.R = varReg(Id);
      return R;
    }
    const VarInfo &VI = Info.var(Id);
    if (VI.Storage == StorageKind::Global) {
      // Resolved to an absolute address at layout time; store the var id
      // in Imm for now.
      R.K = MRecovery::Kind::InFrame;
      R.Frame = -1;
      R.Imm = Id;
      return R;
    }
    R.K = MRecovery::Kind::InFrame;
    R.Frame = frameSlot(Id);
    return R;
  }
  }
  return R;
}

void FunctionSelector::lowerCall(const Instr &I) {
  if (I.BuiltinKind == Builtin::PrintInt ||
      I.BuiltinKind == Builtin::PrintDouble) {
    Reg Arg = useValue(I.Ops[0], I.Stmt);
    MInstr P;
    P.Op = I.BuiltinKind == Builtin::PrintInt ? MOp::PRINTI : MOp::PRINTD;
    P.Src0 = Arg;
    P.Stmt = I.Stmt;
    emit(std::move(P));
    return;
  }

  // Evaluate arguments, then move them into the argument registers.
  std::vector<Reg> ArgRegs;
  for (const Value &A : I.Ops)
    ArgRegs.push_back(useValue(A, I.Stmt));
  unsigned IntIdx = 0, FpIdx = 0;
  for (Reg A : ArgRegs) {
    MInstr Mov;
    if (A.Cls == RegClass::Fp) {
      if (FpIdx >= R3K::NumArgRegs) {
        selectionError("call passes more than " +
                       std::to_string(R3K::NumArgRegs) +
                       " fp arguments (R3K calling convention)");
        continue;
      }
      Mov.Op = MOp::FMOV;
      Mov.Dest = Reg::phys(RegClass::Fp, R3K::FirstFpArg + FpIdx++);
    } else {
      if (IntIdx >= R3K::NumArgRegs) {
        selectionError("call passes more than " +
                       std::to_string(R3K::NumArgRegs) +
                       " integer arguments (R3K calling convention)");
        continue;
      }
      Mov.Op = MOp::MOV;
      Mov.Dest = Reg::phys(RegClass::Int, R3K::FirstIntArg + IntIdx++);
    }
    Mov.Src0 = A;
    Mov.Stmt = I.Stmt;
    emit(std::move(Mov));
  }

  MInstr Jal;
  Jal.Op = MOp::JAL;
  Jal.Callee = I.Callee;
  Jal.Imm = (static_cast<std::int64_t>(IntIdx) << 8) | FpIdx;
  Jal.Stmt = I.Stmt;
  emit(std::move(Jal));

  if (I.Dest.isNone())
    return;
  bool IsDouble = I.Ty == IRType::Double;
  Reg RV = IsDouble ? Reg::phys(RegClass::Fp, R3K::FpRetReg)
                    : Reg::phys(RegClass::Int, R3K::IntRetReg);
  if (I.Dest.isVar()) {
    defineVar(I.Dest.Id, RV, I);
    return;
  }
  MInstr Mov;
  Mov.Op = IsDouble ? MOp::FMOV : MOp::MOV;
  Mov.Dest = tempReg(I.Dest.Id, I.Ty);
  Mov.Src0 = RV;
  Mov.Stmt = I.Stmt;
  emit(std::move(Mov));
}

void FunctionSelector::selectInstr(const Instr &I) {
  auto DestReg = [&]() -> Reg {
    if (I.Dest.isTemp())
      return tempReg(I.Dest.Id, I.Ty);
    // Variable destination: compute into a scratch vreg, then defineVar.
    return newVReg(I.Ty);
  };
  auto FinishDest = [&](Reg Computed) {
    if (I.Dest.isVar())
      defineVar(I.Dest.Id, Computed, I);
  };
  auto Annotate = [&](MInstr &MI) {
    MI.Stmt = I.Stmt;
    if (I.Dest.isTemp()) {
      // Temps carry flags only for hoisted address computations etc.
      MI.IsHoisted = I.IsHoisted;
      MI.IsSunk = I.IsSunk;
    }
  };

  switch (I.Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Rem:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::CmpEQ:
  case Opcode::CmpNE:
  case Opcode::CmpLT:
  case Opcode::CmpLE:
  case Opcode::CmpGT:
  case Opcode::CmpGE: {
    bool FpOperands = I.Ops[0].Ty == IRType::Double ||
                      I.Ops[1].Ty == IRType::Double;
    Reg A = useValue(I.Ops[0], I.Stmt);
    Reg B = useValue(I.Ops[1], I.Stmt);
    MOp Op;
    switch (I.Op) {
    case Opcode::Add:
      Op = FpOperands ? MOp::FADD : MOp::ADD;
      break;
    case Opcode::Sub:
      Op = FpOperands ? MOp::FSUB : MOp::SUB;
      break;
    case Opcode::Mul:
      Op = FpOperands ? MOp::FMUL : MOp::MUL;
      break;
    case Opcode::Div:
      Op = FpOperands ? MOp::FDIV : MOp::DIV;
      break;
    case Opcode::Rem:
      Op = MOp::REM;
      break;
    case Opcode::And:
      Op = MOp::AND;
      break;
    case Opcode::Or:
      Op = MOp::OR;
      break;
    case Opcode::Xor:
      Op = MOp::XOR;
      break;
    case Opcode::Shl:
      Op = MOp::SLL;
      break;
    case Opcode::Shr:
      Op = MOp::SRA;
      break;
    case Opcode::CmpEQ:
      Op = FpOperands ? MOp::FEQ : MOp::SEQ;
      break;
    case Opcode::CmpNE:
      Op = FpOperands ? MOp::FNE : MOp::SNE;
      break;
    case Opcode::CmpLT:
      Op = FpOperands ? MOp::FLT : MOp::SLT;
      break;
    case Opcode::CmpLE:
      Op = FpOperands ? MOp::FLE : MOp::SLE;
      break;
    case Opcode::CmpGT:
      Op = FpOperands ? MOp::FGT : MOp::SGT;
      break;
    case Opcode::CmpGE:
      Op = FpOperands ? MOp::FGE : MOp::SGE;
      break;
    default:
      sldb_unreachable("covered above");
    }
    Reg D = DestReg();
    MInstr MI;
    MI.Op = Op;
    MI.Dest = D;
    MI.Src0 = A;
    MI.Src1 = B;
    Annotate(MI);
    emit(std::move(MI));
    FinishDest(D);
    return;
  }
  case Opcode::Neg:
  case Opcode::Not: {
    Reg A = useValue(I.Ops[0], I.Stmt);
    Reg D = DestReg();
    MInstr MI;
    MI.Op = I.Op == Opcode::Not
                ? MOp::NOT
                : (I.Ty == IRType::Double ? MOp::FNEG : MOp::NEG);
    MI.Dest = D;
    MI.Src0 = A;
    Annotate(MI);
    emit(std::move(MI));
    FinishDest(D);
    return;
  }
  case Opcode::Copy: {
    // Fold constants straight into the destination when possible.
    if (I.Dest.isVar() && I.Ops[0].isConst()) {
      Reg Tmp = useValue(I.Ops[0], I.Stmt);
      defineVar(I.Dest.Id, Tmp, I);
      return;
    }
    Reg A = useValue(I.Ops[0], I.Stmt);
    if (I.Dest.isVar()) {
      defineVar(I.Dest.Id, A, I);
      return;
    }
    Reg D = DestReg();
    MInstr MI;
    MI.Op = I.Ty == IRType::Double ? MOp::FMOV : MOp::MOV;
    MI.Dest = D;
    MI.Src0 = A;
    Annotate(MI);
    emit(std::move(MI));
    return;
  }
  case Opcode::CastItoD:
  case Opcode::CastDtoI: {
    Reg A = useValue(I.Ops[0], I.Stmt);
    Reg D = DestReg();
    MInstr MI;
    MI.Op = I.Op == Opcode::CastItoD ? MOp::CVTID : MOp::CVTDI;
    MI.Dest = D;
    MI.Src0 = A;
    Annotate(MI);
    emit(std::move(MI));
    FinishDest(D);
    return;
  }
  case Opcode::AddrOf: {
    VarId V = I.Ops[0].Id;
    const VarInfo &VI = Info.var(V);
    Reg D = DestReg();
    MInstr MI;
    MI.Op = MOp::LA;
    MI.Dest = D;
    if (VI.Storage == StorageKind::Global)
      MI.GlobalVar = V;
    else
      MI.FrameSlot = frameSlot(V);
    Annotate(MI);
    emit(std::move(MI));
    FinishDest(D);
    return;
  }
  case Opcode::Load: {
    Reg Addr = useValue(I.Ops[0], I.Stmt);
    Reg D = DestReg();
    MInstr MI;
    MI.Op = I.Ty == IRType::Double ? MOp::LD : MOp::LW;
    MI.Dest = D;
    MI.AddrReg = Addr;
    Annotate(MI);
    emit(std::move(MI));
    FinishDest(D);
    return;
  }
  case Opcode::Store: {
    Reg Addr = useValue(I.Ops[0], I.Stmt);
    Reg Val = useValue(I.Ops[1], I.Stmt);
    MInstr MI;
    MI.Op = I.Ty == IRType::Double ? MOp::SD : MOp::SW;
    MI.Src0 = Val;
    MI.AddrReg = Addr;
    MI.Stmt = I.Stmt;
    emit(std::move(MI));
    return;
  }
  case Opcode::Call:
    lowerCall(I);
    return;
  case Opcode::Br: {
    MInstr MI;
    MI.Op = MOp::J;
    MI.TargetBlock = BlockIdx.at(I.Succs[0]);
    MI.Stmt = I.Stmt;
    emit(std::move(MI));
    return;
  }
  case Opcode::CondBr: {
    Reg C = useValue(I.Ops[0], I.Stmt);
    MInstr B;
    B.Op = MOp::BNEZ;
    B.Src0 = C;
    B.TargetBlock = BlockIdx.at(I.Succs[0]);
    B.Stmt = I.Stmt;
    emit(std::move(B));
    MInstr JF;
    JF.Op = MOp::J;
    JF.TargetBlock = BlockIdx.at(I.Succs[1]);
    JF.Stmt = I.Stmt;
    emit(std::move(JF));
    return;
  }
  case Opcode::Ret: {
    if (!I.Ops.empty()) {
      Reg V = useValue(I.Ops[0], I.Stmt);
      MInstr Mov;
      bool IsDouble = I.Ops[0].Ty == IRType::Double;
      Mov.Op = IsDouble ? MOp::FMOV : MOp::MOV;
      Mov.Dest = IsDouble ? Reg::phys(RegClass::Fp, R3K::FpRetReg)
                          : Reg::phys(RegClass::Int, R3K::IntRetReg);
      Mov.Src0 = V;
      Mov.Stmt = I.Stmt;
      emit(std::move(Mov));
    }
    MInstr R;
    R.Op = MOp::RET;
    R.Stmt = I.Stmt;
    emit(std::move(R));
    return;
  }
  case Opcode::DeadMarker:
  case Opcode::AvailMarker: {
    MInstr MI;
    MI.Op = I.Op == Opcode::DeadMarker ? MOp::MDEAD : MOp::MAVAIL;
    MI.MarkVar = I.MarkVar;
    MI.MarkStmt = I.MarkStmt;
    MI.HoistKey = I.HoistKey;
    MI.Stmt = I.Stmt;
    if (I.Op == Opcode::DeadMarker)
      MI.Recovery = lowerRecovery(I);
    emit(std::move(MI));
    return;
  }
  case Opcode::Nop:
    return;
  case Opcode::Phi:
    // Phis only exist between SsaConstruct and SsaDestruct; the pipeline
    // always destructs before codegen, so one here is a pipeline bug.
    selectionError("phi reached instruction selection (SSA not destructed)");
    return;
  }
  sldb_unreachable("bad opcode in selection");
}

MachineFunction FunctionSelector::run() {
  MF.Id = F.Id;
  MF.Name = F.Name;
  MF.HoistKeys = F.HoistKeys;
  MF.NumStmts = F.NumStmts;

  // Create machine blocks mirroring the IR blocks.
  for (std::uint32_t BI = 0; BI < F.Blocks.size(); ++BI) {
    MachineBlock B;
    B.Id = BI;
    B.Name = F.Blocks[BI]->Name;
    B.Insts.setArena(MM.arena());
    MF.Blocks.push_back(std::move(B));
    BlockIdx[F.Blocks[BI]] = BI;
  }

  // Without register promotion every scalar local owns a frame slot from
  // the start (the unoptimized-storage model of Figure 5(a): variables
  // are always memory-resident, even if optimization removed every
  // access).
  if (!Opts.PromoteVars)
    for (VarId V : Info.func(F.Id).Locals)
      if (Info.var(V).isScalar())
        frameSlot(V);

  // Entry code: bind parameters from the argument registers.
  Cur = &MF.Blocks[0];
  unsigned IntIdx = 0, FpIdx = 0;
  for (VarId P : F.Params) {
    const VarInfo &VI = Info.var(P);
    bool IsDouble = VI.Ty.isDouble();
    Reg ArgReg = IsDouble
                     ? Reg::phys(RegClass::Fp, R3K::FirstFpArg + FpIdx++)
                     : Reg::phys(RegClass::Int, R3K::FirstIntArg + IntIdx++);
    Instr Pseudo; // Carrier for defineVar's annotations.
    Pseudo.Stmt = InvalidStmt;
    Pseudo.Dest = Value::var(P, irTypeFor(VI.Ty));
    defineVar(P, ArgReg, Pseudo);
  }

  for (std::uint32_t BI = 0; BI < F.Blocks.size(); ++BI) {
    Cur = &MF.Blocks[BI];
    for (const Instr &I : F.Blocks[BI]->Insts) {
      CurIRInstr = &I;
      selectInstr(I);
    }
    CurIRInstr = nullptr;
  }

  // Block edges.
  for (std::uint32_t BI = 0; BI < F.Blocks.size(); ++BI) {
    for (const BasicBlock *S : F.Blocks[BI]->succRange()) {
      std::uint32_t SI = BlockIdx.at(S);
      MF.Blocks[BI].Succs.push_back(SI);
      MF.Blocks[SI].Preds.push_back(BI);
    }
  }

  MF.FrameSize = FrameSize;

  // Record storage of every local/param (register-homed storage and
  // residence bits are completed by the register allocator).
  for (VarId V : Info.func(F.Id).Locals) {
    VarStorage S;
    auto FIt = FrameOf.find(V);
    if (FIt != FrameOf.end()) {
      S.K = VarStorage::Kind::Frame;
      S.Frame = FIt->second;
    } else if (VRegOf.count(V)) {
      S.K = VarStorage::Kind::InReg;
      S.R = VRegOf[V];
    } else {
      S.K = VarStorage::Kind::None; // Never touched by this function.
    }
    MF.Storage[V] = S;
  }

  // Marker census for the AnnotationVerifier (the backend never deletes
  // markers, so the counts must survive scheduling and allocation), plus
  // any integrity findings the IR pipeline already recorded.
  for (const MachineBlock &B : MF.Blocks)
    for (const MInstr &I : B.Insts) {
      if (I.Op == MOp::MDEAD)
        ++MF.ExpectedDeadMarkers;
      else if (I.Op == MOp::MAVAIL)
        ++MF.ExpectedAvailMarkers;
    }
  MF.IntegrityFindings = F.AnnotationFindings;
  return MF;
}

namespace {

MachineModule selectModuleImpl(const IRModule &M, const CodegenOptions &Opts,
                               std::string *Err,
                               Arena *CodeArena = nullptr) {
  MachineModule MM;
  MM.Info = M.Info.get();
  if (CodeArena)
    MM.setArena(CodeArena);

  // Lay out globals in module memory.
  for (VarId G : M.Info->Globals) {
    const VarInfo &VI = M.Info->var(G);
    MM.GlobalAddr[G] = MM.GlobalWords;
    MM.GlobalWords += VI.ArraySize ? VI.ArraySize : 1;
  }
  for (const auto &[V, Init] : M.GlobalInits)
    MM.GlobalInits.emplace_back(MM.GlobalAddr.at(V), Init);

  for (const auto &F : M.Funcs) {
    FunctionSelector Sel(*F, M, MM, Opts);
    MM.Funcs.push_back(Sel.run());
    if (Err && Err->empty() && !Sel.Err.empty())
      *Err = Sel.Err;
  }
  return MM;
}

/// Applies the armed machine-level fault (if any) to the finished module:
/// deliberate, seeded corruption of the debug bookkeeping that the
/// AnnotationVerifier must detect and the Classifier must survive.  The
/// generated *code* is never touched — only the annotations, matching
/// the threat model (a buggy pass corrupts bookkeeping, not semantics).
void injectMachineFaults(MachineModule &MM) {
  FaultId Id = FaultInjector::current();
  if (Id == FaultId::None || !MM.Info)
    return;

  using Victim = std::pair<MachineFunction *, MInstr *>;
  auto pickInstr = [&](auto Pred) -> Victim {
    std::vector<Victim> C;
    for (MachineFunction &F : MM.Funcs)
      for (MachineBlock &B : F.Blocks)
        for (MInstr &I : B.Insts)
          if (Pred(F, I))
            C.push_back({&F, &I});
    if (C.empty())
      return {nullptr, nullptr};
    return C[FaultInjector::rand() % C.size()];
  };

  switch (Id) {
  case FaultId::DropDeadMarker: {
    Victim V = pickInstr([](const MachineFunction &, const MInstr &I) {
      return I.Op == MOp::MDEAD;
    });
    if (V.second)
      V.second->Op = MOp::MNOP; // The marker silently vanishes.
    break;
  }
  case FaultId::CorruptMarkerVar: {
    Victim V = pickInstr([](const MachineFunction &, const MInstr &I) {
      return I.Op == MOp::MDEAD || I.Op == MOp::MAVAIL;
    });
    if (V.second)
      V.second->MarkVar = static_cast<VarId>(MM.Info->Vars.size()) + 7;
    break;
  }
  case FaultId::CorruptMarkerStmt: {
    Victim V = pickInstr([](const MachineFunction &, const MInstr &I) {
      return I.Op == MOp::MDEAD || I.Op == MOp::MAVAIL;
    });
    if (V.second)
      V.second->MarkStmt = V.first->NumStmts + 9;
    break;
  }
  case FaultId::CorruptHoistKey: {
    Victim V = pickInstr([](const MachineFunction &, const MInstr &I) {
      return (I.IsHoisted && I.HoistKey != InvalidHoistKey) ||
             I.Op == MOp::MAVAIL;
    });
    if (V.second)
      V.second->HoistKey =
          static_cast<HoistKeyId>(V.first->HoistKeys.size()) + 3;
    break;
  }
  case FaultId::CorruptRecoveryReg: {
    Victim V = pickInstr([](const MachineFunction &, const MInstr &I) {
      return I.Op == MOp::MDEAD && I.Recovery.K == MRecovery::Kind::InReg;
    });
    if (V.second)
      V.second->Recovery.R = Reg::phys(V.second->Recovery.R.Cls, 999);
    break;
  }
  case FaultId::TruncateStmtMap: {
    std::vector<MachineFunction *> C;
    for (MachineFunction &F : MM.Funcs)
      if (F.StmtAddr.size() >= 2)
        C.push_back(&F);
    if (!C.empty()) {
      MachineFunction &F = *C[FaultInjector::rand() % C.size()];
      F.StmtAddr.resize(F.StmtAddr.size() / 2);
    }
    break;
  }
  case FaultId::TruncateResidentAt: {
    std::vector<std::pair<MachineFunction *, VarId>> C;
    for (MachineFunction &F : MM.Funcs)
      for (auto &[V, Bits] : F.ResidentAt)
        if (Bits.size() >= 2)
          C.push_back({&F, V});
    if (!C.empty()) {
      auto [F, V] = C[FaultInjector::rand() % C.size()];
      BitVector &Bits = F->ResidentAt[V];
      Bits.resize(Bits.size() / 2);
    }
    break;
  }
  default:
    break; // Classifier/VM faults have their own hooks.
  }
}

} // namespace

MachineModule sldb::selectModule(const IRModule &M,
                                 const CodegenOptions &Opts,
                                 Arena *CodeArena) {
  return selectModuleImpl(M, Opts, nullptr, CodeArena);
}

Expected<MachineModule> sldb::compileToMachineE(const IRModule &M,
                                                const CodegenOptions &Opts,
                                                Arena *CodeArena) {
  std::string Err;
  MachineModule MM = selectModuleImpl(M, Opts, &Err, CodeArena);
  if (!Err.empty())
    return Status::error(ErrorCode::InvalidIR, Err);
  for (MachineFunction &MF : MM.Funcs) {
    if (Opts.Schedule)
      scheduleFunction(MF);
    Status S = allocateRegistersE(MF, *M.Info);
    if (!S.ok())
      return S;
  }
  injectMachineFaults(MM);
  return MM;
}

MachineModule sldb::compileToMachine(const IRModule &M,
                                     const CodegenOptions &Opts) {
  Expected<MachineModule> R = compileToMachineE(M, Opts);
  if (!R.ok()) {
    std::fprintf(stderr, "sldb: %s\n", R.status().str().c_str());
    std::abort();
  }
  return std::move(*R);
}
