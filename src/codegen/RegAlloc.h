//===- codegen/RegAlloc.h - Graph-coloring register allocation --*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Chaitin-style graph-coloring register allocation with Briggs
/// conservative coalescing and spilling (paper Table 1: "Global register
/// allocation (using graph coloring)", "Register coalescing"), plus the
/// debug outputs the paper's evaluation needs:
///
///  * final storage assignment per source variable (register or spill
///    slot) in MachineFunction::Storage;
///  * the conservative live-range *residence* bits per register-homed
///    variable (MachineFunction::ResidentAt) — the debugger reports a
///    variable nonresident outside its live range, where the allocator
///    may have reused the register ([3], paper §1.1);
///  * validity bits for marker recovery values that live in registers
///    (MachineFunction::RecoveryValidAt, keyed by marker address).
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_CODEGEN_REGALLOC_H
#define SLDB_CODEGEN_REGALLOC_H

#include "codegen/MachineIR.h"
#include "support/Status.h"

namespace sldb {

/// Allocates registers for \p MF in place, rewriting virtual registers to
/// physical ones, inserting spill code, updating Storage/ResidentAt, and
/// filling BlockAddr/StmtAddr (layout happens here because residence is
/// per final address).  Returns RegAllocFailure (and leaves \p MF in an
/// unusable but memory-safe state) instead of asserting when coloring
/// fails to converge or meets an uncolored register.
Status allocateRegistersE(MachineFunction &MF, const ProgramInfo &Info);

/// Legacy convenience wrapper: reports an allocation failure on stderr
/// and aborts.  Status-aware drivers use allocateRegistersE.
void allocateRegisters(MachineFunction &MF, const ProgramInfo &Info);

/// Registers read by \p I (including implicit uses).
std::vector<Reg> minstrUses(const MInstr &I);

/// Register written by \p I (invalid if none), plus implicit defs.
std::vector<Reg> minstrDefs(const MInstr &I);

/// Visits the registers read by \p I (including implicit uses) without
/// materializing a vector — for the allocator's liveness/interference
/// loops, which visit every instruction many times.
template <typename Fn> inline void forEachMUse(const MInstr &I, Fn &&F) {
  if (I.Src0.isValid())
    F(I.Src0);
  if (I.Src1.isValid())
    F(I.Src1);
  if (I.AddrReg.isValid())
    F(I.AddrReg);
  if (I.Op == MOp::JAL) {
    unsigned IntArgs = static_cast<unsigned>(I.Imm >> 8);
    unsigned FpArgs = static_cast<unsigned>(I.Imm & 0xff);
    for (unsigned A = 0; A < IntArgs; ++A)
      F(Reg::phys(RegClass::Int, R3K::FirstIntArg + A));
    for (unsigned A = 0; A < FpArgs; ++A)
      F(Reg::phys(RegClass::Fp, R3K::FirstFpArg + A));
  }
  if (I.Op == MOp::RET) {
    F(Reg::phys(RegClass::Int, R3K::IntRetReg));
    F(Reg::phys(RegClass::Fp, R3K::FpRetReg));
  }
}

/// Visits the registers written by \p I (including implicit defs).
template <typename Fn> inline void forEachMDef(const MInstr &I, Fn &&F) {
  if (I.Dest.isValid())
    F(I.Dest);
  if (I.Op == MOp::JAL) {
    F(Reg::phys(RegClass::Int, R3K::IntRetReg));
    F(Reg::phys(RegClass::Fp, R3K::FpRetReg));
  }
}

} // namespace sldb

#endif // SLDB_CODEGEN_REGALLOC_H
