//===- codegen/MachineVerifier.cpp ----------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "codegen/MachineVerifier.h"

#include "codegen/RegAlloc.h"

using namespace sldb;

namespace {

class Verifier {
public:
  Verifier(const MachineFunction &MF, const ProgramInfo &Info,
           std::vector<std::string> &Errors)
      : MF(MF), Info(Info), Errors(Errors) {}

  bool run();

private:
  void fail(const std::string &Msg) {
    Errors.push_back(MF.Name + ": " + Msg);
    OK = false;
  }
  void check(bool Cond, const std::string &Msg) {
    if (!Cond)
      fail(Msg);
  }
  void checkReg(const Reg &R, const char *What) {
    if (!R.isValid())
      return;
    check(!R.isVirtual(),
          std::string(What) + ": virtual register survived allocation");
    if (R.Cls == RegClass::Int)
      check(R.N < R3K::NumIntRegs, std::string(What) + ": r out of range");
    else
      check(R.N < R3K::NumFpRegs, std::string(What) + ": f out of range");
  }

  const MachineFunction &MF;
  const ProgramInfo &Info;
  std::vector<std::string> &Errors;
  bool OK = true;
};

} // namespace

bool Verifier::run() {
  const std::uint32_t Total = MF.numInstrs();
  check(MF.BlockAddr.size() == MF.Blocks.size(),
        "block address table size mismatch");

  for (std::size_t B = 0; B < MF.Blocks.size(); ++B) {
    const MachineBlock &Blk = MF.Blocks[B];
    check(!Blk.Insts.empty(), "empty machine block " + Blk.Name);
    for (const MInstr &I : Blk.Insts) {
      checkReg(I.Dest, "dest");
      checkReg(I.Src0, "src0");
      checkReg(I.Src1, "src1");
      checkReg(I.AddrReg, "addr");
      if (I.Recovery.K == MRecovery::Kind::InReg)
        checkReg(I.Recovery.R, "recovery");
      if (I.isBranch())
        check(I.TargetBlock < MF.Blocks.size(),
              "branch target out of range");
      if (I.Op == MOp::JAL)
        check(I.Callee != InvalidFunc, "jal without callee");
      if (I.Op == MOp::MDEAD || I.Op == MOp::MAVAIL)
        check(I.MarkVar < Info.Vars.size(), "marker var out of range");
      if (I.Op == MOp::MAVAIL)
        check(I.HoistKey < MF.HoistKeys.size(),
              "avail marker with bad hoist key");
      if (I.DestVar != InvalidVar)
        check(I.DestVar < Info.Vars.size(), "dest var out of range");
      if (I.FrameSlot >= 0)
        check(static_cast<std::uint32_t>(I.FrameSlot) < MF.FrameSize,
              "frame slot beyond frame size");
    }
    // Every block must end in control flow or fall into... the R3K has
    // no fallthrough: the last instruction must be a jump or return.
    const MInstr &Last = Blk.Insts.back();
    check(Last.Op == MOp::J || Last.Op == MOp::RET,
          "block " + Blk.Name + " does not end in J/RET");
    // Edges consistent with the terminator region.
    for (unsigned S : Blk.Succs)
      check(S < MF.Blocks.size(), "successor index out of range");
  }

  // Statement map inside the function.
  for (std::int32_t A : MF.StmtAddr)
    check(A < static_cast<std::int32_t>(Total), "statement address OOB");

  // Residence/validity bitvectors sized to the code.
  for (const auto &[V, Bits] : MF.ResidentAt) {
    check(V < Info.Vars.size(), "residence var out of range");
    check(Bits.size() == Total, "residence bitvector size mismatch");
  }
  for (const auto &[A, Bits] : MF.RecoveryValidAt) {
    check(A < Total, "recovery validity address OOB");
    check(Bits.size() == Total, "recovery bitvector size mismatch");
  }
  return OK;
}

bool sldb::verifyMachineFunction(const MachineFunction &MF,
                                 const ProgramInfo &Info,
                                 std::vector<std::string> &Errors) {
  Verifier V(MF, Info, Errors);
  return V.run();
}

bool sldb::verifyMachineModule(const MachineModule &MM,
                               std::vector<std::string> &Errors) {
  bool OK = true;
  for (const MachineFunction &F : MM.Funcs)
    OK &= verifyMachineFunction(F, *MM.Info, Errors);
  return OK;
}
