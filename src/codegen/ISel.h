//===- codegen/ISel.h - Instruction selection --------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers optimized IR to R3K machine code with virtual registers,
/// transferring all debug annotations (paper §3: "during code selection,
/// annotations are transferred from nodes in the machine-independent IR to
/// the selected instructions; IR marker nodes are lowered to special
/// marker instructions").
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_CODEGEN_ISEL_H
#define SLDB_CODEGEN_ISEL_H

#include "codegen/MachineIR.h"
#include "ir/IR.h"
#include "support/Status.h"

namespace sldb {

/// Code generation options.
struct CodegenOptions {
  /// Promote eligible source variables to registers (global register
  /// allocation of user variables).  Off reproduces the paper's Figure
  /// 5(a) configuration: every variable lives in its frame slot and is
  /// always resident; on reproduces Figure 5(b).
  bool PromoteVars = true;

  /// Run the local list scheduler.
  bool Schedule = true;
};

/// Selects machine code (virtual registers) for the whole module.
/// \p CodeArena, when given, backs the instruction buffers (batch mode:
/// share the IR module's arena and reset once per corpus entry);
/// otherwise the machine module creates its own.
MachineModule selectModule(const IRModule &M, const CodegenOptions &Opts,
                           Arena *CodeArena = nullptr);

/// Full back end: selection, optional scheduling, register allocation,
/// layout, and residence-table construction.  Returns a structured error
/// (InvalidIR, RegAllocFailure) instead of asserting when the input has
/// no lowering or allocation fails; the armed FaultInjector machine
/// faults (if any) are applied to the finished module's annotations.
Expected<MachineModule> compileToMachineE(const IRModule &M,
                                          const CodegenOptions &Opts,
                                          Arena *CodeArena = nullptr);

/// Legacy convenience wrapper around compileToMachineE: reports the
/// error on stderr and aborts.  Status-aware drivers use the E variant.
MachineModule compileToMachine(const IRModule &M, const CodegenOptions &Opts);

} // namespace sldb

#endif // SLDB_CODEGEN_ISEL_H
