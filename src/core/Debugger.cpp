//===- core/Debugger.cpp --------------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Debugger.h"

using namespace sldb;

Debugger::Debugger(const MachineModule &MM, std::uint64_t MaxSteps)
    : MM(MM), VM(MM, MaxSteps) {
  Classifiers.resize(MM.Funcs.size());
  StmtStarts.resize(MM.Funcs.size());
}

bool Debugger::isStmtStart(FuncId F, std::uint32_t Local) const {
  std::vector<bool> &Starts = StmtStarts[F];
  if (Starts.empty()) {
    const MachineFunction &MF = MM.Funcs[F];
    Starts.assign(MF.numInstrs() + 1, false);
    for (std::int32_t A : MF.StmtAddr)
      if (A >= 0 && static_cast<std::size_t>(A) < Starts.size())
        Starts[static_cast<std::size_t>(A)] = true;
  }
  return Local < Starts.size() && Starts[Local];
}

StopReason Debugger::stepStmt() {
  // Leave the current statement boundary first: execute at least one
  // instruction before testing for a stop.
  do {
    StopReason R = VM.step();
    if (R != StopReason::Running)
      return R;
  } while (!isStmtStart(VM.pc().Func, VM.pc().Local));
  VM.noteStop();
  return VM.state();
}

const Classifier &Debugger::classifier(FuncId F) const {
  if (!Classifiers[F]) {
    Classifiers[F] = std::make_unique<Classifier>(MM.Funcs[F], *MM.Info);
    if (ForceDegraded)
      Classifiers[F]->degradeAllVariables();
  }
  return *Classifiers[F];
}

void Debugger::degradeAllVariables() {
  ForceDegraded = true;
  for (auto &C : Classifiers)
    if (C)
      C->degradeAllVariables();
}

bool Debugger::setBreakpointAtStmt(FuncId F, StmtId S) {
  const MachineFunction &MF = MM.Funcs[F];
  if (S >= MF.StmtAddr.size() || MF.StmtAddr[S] < 0)
    return false;
  VM.setBreakpoint({F, static_cast<std::uint32_t>(MF.StmtAddr[S])});
  return true;
}

void Debugger::breakEverywhere() {
  for (FuncId F = 0; F < MM.Funcs.size(); ++F)
    for (StmtId S = 0; S < MM.Funcs[F].StmtAddr.size(); ++S)
      setBreakpointAtStmt(F, S);
}

std::optional<StmtId> Debugger::currentStmt() const {
  const MachineFunction &MF = MM.Funcs[VM.pc().Func];
  for (StmtId S = 0; S < MF.StmtAddr.size(); ++S)
    if (MF.StmtAddr[S] >= 0 &&
        static_cast<std::uint32_t>(MF.StmtAddr[S]) == VM.pc().Local)
      return S;
  return std::nullopt;
}

bool Debugger::readStorage(const VarStorage &S, bool IsDouble,
                           std::int64_t &I, double &D) const {
  switch (S.K) {
  case VarStorage::Kind::None:
    return false;
  case VarStorage::Kind::InReg:
    if (S.R.Cls == RegClass::Fp)
      D = VM.readFpReg(S.R.N);
    else
      I = VM.readIntReg(S.R.N);
    return true;
  case VarStorage::Kind::Frame: {
    std::size_t Addr = VM.framePointer() + static_cast<std::size_t>(S.Frame);
    if (IsDouble)
      D = VM.readMemDouble(Addr);
    else
      I = VM.readMemInt(Addr);
    return true;
  }
  case VarStorage::Kind::GlobalMem:
    if (IsDouble)
      D = VM.readMemDouble(S.GlobalAddr);
    else
      I = VM.readMemInt(S.GlobalAddr);
    return true;
  }
  return false;
}

bool Debugger::readRecovery(const MRecovery &R, std::int64_t &I, double &D,
                            bool &IsDouble) const {
  switch (R.K) {
  case MRecovery::Kind::None:
    return false;
  case MRecovery::Kind::Imm:
    I = R.Imm;
    IsDouble = false;
    return true;
  case MRecovery::Kind::FImm:
    D = R.FImm;
    IsDouble = true;
    return true;
  case MRecovery::Kind::InReg:
    // Defensive: a corrupted annotation may name a register that does
    // not exist; refuse the recovery rather than show a fabricated 0
    // (the VM read itself is bounds-clamped as a second line).
    if (!R.R.isValid() || R.R.isVirtual() ||
        R.R.N >= (R.R.Cls == RegClass::Fp ? R3K::NumFpRegs
                                          : R3K::NumIntRegs))
      return false;
    if (R.R.Cls == RegClass::Fp) {
      D = VM.readFpReg(R.R.N);
      IsDouble = true;
    } else {
      I = VM.readIntReg(R.R.N) / (R.Scale == 0 ? 1 : R.Scale);
      IsDouble = false;
    }
    return true;
  case MRecovery::Kind::InFrame: {
    if (R.Frame < 0) {
      // Global variable source.
      auto It = MM.GlobalAddr.find(static_cast<VarId>(R.Imm));
      if (It == MM.GlobalAddr.end())
        return false;
      I = VM.readMemInt(It->second);
      IsDouble = false;
      return true;
    }
    std::size_t Addr = VM.framePointer() + static_cast<std::size_t>(R.Frame);
    I = VM.readMemInt(Addr) / (R.Scale == 0 ? 1 : R.Scale);
    IsDouble = false;
    return true;
  }
  }
  return false;
}

VarReport Debugger::reportVar(VarId V) const {
  const MachineFunction &MF = MM.Funcs[VM.pc().Func];
  const Classifier &C = classifier(VM.pc().Func);
  const VarInfo &VI = MM.Info->var(V);

  VarReport R;
  R.Var = V;
  R.Name = VI.Name;
  R.Class = C.classify(VM.pc().Local, V);
  R.IsDouble = VI.Ty.isDouble();
  R.Warning = C.warningText(R.Class, V);

  if (R.Class.Recoverable) {
    // The variable is aliased to a surviving expression: show the
    // expected value reconstructed per paper §2.5.
    R.HasValue = readRecovery(R.Class.Recovery, R.IntValue, R.DoubleValue,
                              R.IsDouble);
    return R;
  }
  switch (R.Class.Kind) {
  case VarClass::Uninitialized:
  case VarClass::Nonresident:
    R.HasValue = false;
    break;
  case VarClass::Noncurrent:
  case VarClass::Suspect:
  case VarClass::Current: {
    // Show the actual value from the variable's storage.
    VarStorage S;
    if (VI.Storage == StorageKind::Global) {
      S.K = VarStorage::Kind::GlobalMem;
      auto It = MM.GlobalAddr.find(V);
      if (It != MM.GlobalAddr.end())
        S.GlobalAddr = It->second;
    } else {
      auto It = MF.Storage.find(V);
      if (It != MF.Storage.end())
        S = It->second;
    }
    R.HasValue = readStorage(S, R.IsDouble, R.IntValue, R.DoubleValue);
    break;
  }
  }
  return R;
}

bool Debugger::peekStorage(VarId V, bool &IsDouble, std::int64_t &I,
                           double &D) const {
  const MachineFunction &MF = MM.Funcs[VM.pc().Func];
  const VarInfo &VI = MM.Info->var(V);
  IsDouble = VI.Ty.isDouble();
  VarStorage S;
  if (VI.Storage == StorageKind::Global) {
    S.K = VarStorage::Kind::GlobalMem;
    auto It = MM.GlobalAddr.find(V);
    if (It == MM.GlobalAddr.end())
      return false;
    S.GlobalAddr = It->second;
  } else {
    auto It = MF.Storage.find(V);
    if (It == MF.Storage.end())
      return false;
    S = It->second;
  }
  return readStorage(S, IsDouble, I, D);
}

std::optional<VarReport> Debugger::queryVariable(
    const std::string &Name) const {
  FuncId F = VM.pc().Func;
  // Locals shadow globals.
  for (VarId V : MM.Info->func(F).Locals)
    if (MM.Info->var(V).Name == Name)
      return reportVar(V);
  for (VarId V : MM.Info->Globals)
    if (MM.Info->var(V).Name == Name)
      return reportVar(V);
  return std::nullopt;
}

std::optional<Explanation> Debugger::explainVariable(
    const std::string &Name) const {
  FuncId F = VM.pc().Func;
  const Classifier &C = classifier(F);
  // Locals shadow globals, as in queryVariable.
  for (VarId V : MM.Info->func(F).Locals)
    if (MM.Info->var(V).Name == Name)
      return C.explain(VM.pc().Local, V);
  for (VarId V : MM.Info->Globals)
    if (MM.Info->var(V).Name == Name)
      return C.explain(VM.pc().Local, V);
  return std::nullopt;
}

std::vector<VarReport> Debugger::reportScope() const {
  std::vector<VarReport> Out;
  std::optional<StmtId> S = currentStmt();
  if (!S)
    return Out;
  const FuncInfo &FI = MM.Info->func(VM.pc().Func);
  for (VarId V : FI.Stmts[*S].ScopeVars)
    Out.push_back(reportVar(V));
  return Out;
}
