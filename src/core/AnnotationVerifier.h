//===- core/AnnotationVerifier.h - Debug-bookkeeping integrity --*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Verifies the invariants the Classifier's soundness rests on: markers
/// reference real variables and statements, hoist/sink annotations point
/// into the function's key table, recovery facts are well-typed (register
/// in range, frame slot inside the frame, non-zero scale), and the debug
/// tables (StmtAddr, ResidentAt, RecoveryValidAt) are sized to the final
/// code.  A marker census taken at instruction selection is recounted to
/// detect markers that silently vanished in the backend.
///
/// Unlike codegen/MachineVerifier.h (a hard structural gate used by
/// tests), this verifier never rejects a module: it returns *findings*
/// attributed to the damaged variable — or to the whole function when the
/// damage cannot be attributed — and the Classifier answers conservative
/// SUSPECT/NONRESIDENT for those variables instead of risking a false
/// CURRENT or crashing (DESIGN.md "Failure model").
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_CORE_ANNOTATIONVERIFIER_H
#define SLDB_CORE_ANNOTATIONVERIFIER_H

#include "codegen/MachineIR.h"

#include <vector>

namespace sldb {

/// Checks the debug bookkeeping of one compiled function.  Appends one
/// AnnotationFinding per violation; `Var == InvalidVar` marks damage
/// affecting the whole function.  Returns true when nothing was found.
bool verifyMachineAnnotations(const MachineFunction &MF,
                              const ProgramInfo &Info,
                              std::vector<AnnotationFinding> &Findings);

} // namespace sldb

#endif // SLDB_CORE_ANNOTATIONVERIFIER_H
