//===- core/AnnotationVerifier.cpp ----------------------------------------===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/AnnotationVerifier.h"

namespace sldb {

bool verifyMachineAnnotations(const MachineFunction &MF,
                              const ProgramInfo &Info,
                              std::vector<AnnotationFinding> &Findings) {
  std::size_t Before = Findings.size();
  auto Note = [&](VarId V, std::string Msg) {
    Findings.push_back({V, MF.Name + ": " + std::move(Msg)});
  };

  const std::uint32_t Total = MF.numInstrs();

  // Location table: one slot per statement, addresses inside the code.
  // A truncated table makes breakpoints silently unplantable, and the
  // damage is not attributable to any one variable.
  if (MF.StmtAddr.size() != MF.NumStmts)
    Note(InvalidVar, "statement location table has " +
                         std::to_string(MF.StmtAddr.size()) +
                         " entries for " + std::to_string(MF.NumStmts) +
                         " statements");
  for (std::int32_t A : MF.StmtAddr)
    if (A >= static_cast<std::int32_t>(Total)) {
      Note(InvalidVar, "statement address beyond function end");
      break;
    }

  // Hoist-key table: keys must name real variables.
  for (std::size_t K = 0; K < MF.HoistKeys.size(); ++K)
    if (MF.HoistKeys[K].V >= Info.Vars.size()) {
      Note(InvalidVar, "hoist key names a bogus variable");
      break;
    }

  // Per-instruction annotations, plus the marker recount.
  std::uint32_t Dead = 0, Avail = 0;
  for (const MachineBlock &B : MF.Blocks) {
    for (const MInstr &I : B.Insts) {
      if (I.Op == MOp::MDEAD)
        ++Dead;
      else if (I.Op == MOp::MAVAIL)
        ++Avail;

      if (I.Op == MOp::MDEAD || I.Op == MOp::MAVAIL) {
        if (I.MarkVar >= Info.Vars.size()) {
          // The marker's victim variable is unrecoverable, so every
          // variable's endangerment evidence is in doubt.
          Note(InvalidVar, "marker names a bogus variable");
          continue;
        }
        if (I.MarkStmt != InvalidStmt && I.MarkStmt >= MF.NumStmts)
          Note(I.MarkVar, "marker statement id out of range");
        if (I.Op == MOp::MAVAIL && I.HoistKey >= MF.HoistKeys.size())
          Note(I.MarkVar, "avail marker with dangling hoist key");
        if (I.Op == MOp::MDEAD) {
          const MRecovery &R = I.Recovery;
          switch (R.K) {
          case MRecovery::Kind::None:
          case MRecovery::Kind::Imm:
          case MRecovery::Kind::FImm:
            break;
          case MRecovery::Kind::InReg: {
            unsigned Limit = R.R.Cls == RegClass::Fp ? R3K::NumFpRegs
                                                     : R3K::NumIntRegs;
            if (!R.R.isValid() || R.R.isVirtual() || R.R.N >= Limit)
              Note(I.MarkVar, "recovery register out of range");
            break;
          }
          case MRecovery::Kind::InFrame:
            if (R.Frame >= 0) {
              if (static_cast<std::uint32_t>(R.Frame) >= MF.FrameSize)
                Note(I.MarkVar, "recovery frame slot beyond frame size");
            } else if (R.Imm < 0 ||
                       static_cast<std::size_t>(R.Imm) >= Info.Vars.size()) {
              // Frame < 0 encodes a global recovery; Imm holds its id.
              Note(I.MarkVar, "recovery global id out of range");
            }
            break;
          }
          if (R.K != MRecovery::Kind::None && R.Scale == 0)
            Note(I.MarkVar, "recovery with zero scale");
          if (R.SrcVar != InvalidVar && R.SrcVar >= Info.Vars.size())
            Note(I.MarkVar, "recovery source variable out of range");
        }
      } else if (I.IsHoisted && I.HoistKey != InvalidHoistKey &&
                 I.HoistKey >= MF.HoistKeys.size()) {
        Note(I.DestVar, "hoisted instruction with dangling hoist key");
      }
    }
  }

  // Census: the backend transfers markers but never deletes them.  A
  // lost marker is lost endangerment evidence — whose, is unknowable.
  if (Dead != MF.ExpectedDeadMarkers || Avail != MF.ExpectedAvailMarkers)
    Note(InvalidVar,
         "marker census mismatch (selection recorded " +
             std::to_string(MF.ExpectedDeadMarkers) + "+" +
             std::to_string(MF.ExpectedAvailMarkers) + ", found " +
             std::to_string(Dead) + "+" + std::to_string(Avail) + ")");

  // Storage and residence tables.
  for (const auto &[V, S] : MF.Storage) {
    if (V >= Info.Vars.size()) {
      Note(InvalidVar, "storage table names a bogus variable");
      continue;
    }
    if (S.K == VarStorage::Kind::InReg &&
        (!S.R.isValid() || S.R.isVirtual()))
      Note(V, "register-homed variable without a physical register");
    if (S.K == VarStorage::Kind::Frame &&
        (S.Frame < 0 || static_cast<std::uint32_t>(S.Frame) >= MF.FrameSize))
      Note(V, "frame-homed variable outside the frame");
  }
  for (const auto &[V, Bits] : MF.ResidentAt) {
    if (V >= Info.Vars.size()) {
      Note(InvalidVar, "residence table names a bogus variable");
      continue;
    }
    if (Bits.size() != Total)
      Note(V, "residence bit-vector sized " + std::to_string(Bits.size()) +
                  " for " + std::to_string(Total) + " instructions");
  }
  for (const auto &[A, Bits] : MF.RecoveryValidAt)
    if (A >= Total || Bits.size() != Total) {
      Note(InvalidVar, "recovery validity table out of shape");
      break;
    }

  return Findings.size() == Before;
}

} // namespace sldb
