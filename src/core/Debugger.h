//===- core/Debugger.h - Non-invasive source-level debugger -----*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The user-facing source-level debugger for optimized code.  It is
/// *non-invasive* (paper §1.2): it debugs exactly the code the optimizing
/// compiler emitted, consuming only the debug tables the compiler produced
/// (statement map, storage/residence tables, annotations); no instruction
/// was inserted or constrained on its behalf.
///
/// At a breakpoint, queryVariable() classifies the variable per Figure 1
/// and returns its value together with the mandated warning — an
/// endangered value is always accompanied by a warning, so the debugger
/// never misleads the user.
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_CORE_DEBUGGER_H
#define SLDB_CORE_DEBUGGER_H

#include "core/Classifier.h"
#include "vm/Machine.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace sldb {

/// One variable's state at a breakpoint, as shown to the user.
struct VarReport {
  VarId Var = InvalidVar;
  std::string Name;
  Classification Class;

  /// Whether a value can be displayed (actual value for resident
  /// variables, recovered expected value when Class.Recoverable).
  bool HasValue = false;
  bool IsDouble = false;
  std::int64_t IntValue = 0;
  double DoubleValue = 0.0;

  /// Warning text; empty for current variables (paper Figure 1: "Show V
  /// without warnings").
  std::string Warning;
};

/// A source-level debugging session over compiled machine code.
class Debugger {
public:
  /// \p MaxSteps is the execution fuel budget forwarded to the VM; runs
  /// exceeding it stop with StopReason::StepLimit and a trap message
  /// naming the budget, so a hung debuggee cannot hang the session.
  explicit Debugger(const MachineModule &MM,
                    std::uint64_t MaxSteps = 50'000'000);

  /// Sets a (syntactic) breakpoint at statement \p S of function \p F.
  /// Returns false if the statement emitted no code at all.
  bool setBreakpointAtStmt(FuncId F, StmtId S);

  /// Sets breakpoints at every statement of every function.
  void breakEverywhere();

  StopReason run() { return VM.run(); }
  StopReason resume() { return VM.resume(); }

  /// Starts the program paused at main()'s first instruction (which is
  /// the first statement's code address) without executing anything.
  StopReason startPaused() { return VM.startPaused(); }

  /// Source-level single step: executes instructions until the PC lands
  /// on the *start address of any statement* (of whatever function
  /// execution is in — stepping follows calls and returns), then stops
  /// as if at a breakpoint.  Independent of the breakpoint set, so a
  /// stepping session observes exactly the statement-boundary sequence
  /// the line table induces.  Terminal stops (exit, trap, fuel) are
  /// returned as-is.
  StopReason stepStmt();

  Machine &machine() { return VM; }
  const MachineModule &module() const { return MM; }

  /// Current stop location as (function, statement); statement is the one
  /// whose breakpoint address matches the PC, if any.
  FuncId currentFunction() const { return VM.pc().Func; }
  std::optional<StmtId> currentStmt() const;

  /// Classifies and reads one variable by name at the current stop.
  std::optional<VarReport> queryVariable(const std::string &Name) const;

  /// Explain mode: the provenance chain behind queryVariable's verdict
  /// for \p Name at the current stop (same lookup rule: locals shadow
  /// globals).  nullopt when no such variable is in scope.
  std::optional<Explanation> explainVariable(const std::string &Name) const;

  /// Renders an explanation against the current function's classifier.
  std::string explainText(const Explanation &E) const {
    return classifier(VM.pc().Func).renderExplainText(E);
  }
  std::string explainJson(const Explanation &E) const {
    return classifier(VM.pc().Func).renderExplainJson(E);
  }

  /// Forces every classifier (current and future) into degraded mode;
  /// exercises the fail-safe path on an intact module (sldbc
  /// --degrade-all, the degraded golden explain test).
  void degradeAllVariables();

  /// Reports every local variable in scope at the current stop.
  std::vector<VarReport> reportScope() const;

  /// Raw debug-table read of \p V's storage home at the current stop,
  /// with no classification and no residence check: exactly what a
  /// naive debugger would print.  The conservatism metric compares this
  /// against the oracle's expected value to measure how often a
  /// warning/refusal verdict hid a value that was actually there.
  /// Returns false when the tables give the variable no location at all.
  bool peekStorage(VarId V, bool &IsDouble, std::int64_t &I,
                   double &D) const;

  /// Classifier of a function (exposed for the evaluation harness).
  /// Built on first use: a session stopping in a handful of functions
  /// never pays for the dataflow solves of the others.
  const Classifier &classifier(FuncId F) const;

private:
  VarReport reportVar(VarId V) const;
  bool readStorage(const VarStorage &S, bool IsDouble, std::int64_t &I,
                   double &D) const;
  bool readRecovery(const MRecovery &R, std::int64_t &I, double &D,
                    bool &IsDouble) const;

  /// Whether \p Local is the start address of some statement of \p F
  /// (lazily builds a per-function address set on first use).
  bool isStmtStart(FuncId F, std::uint32_t Local) const;

  const MachineModule &MM;
  Machine VM;
  mutable std::vector<std::unique_ptr<Classifier>> Classifiers;
  /// Per-function statement-start address sets for stepStmt(); built on
  /// first step into the function (indexed by address, 1 = stmt start).
  mutable std::vector<std::vector<bool>> StmtStarts;
  bool ForceDegraded = false; ///< Applied to lazily-built classifiers too.
};

} // namespace sldb

#endif // SLDB_CORE_DEBUGGER_H
